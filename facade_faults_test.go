package flowsched_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"flowsched"
)

// TestFacadeFaultInjection exercises the fault facade end to end: plan
// generation, JSON round-trip, faulty simulation and the zero-fault
// equivalence with Simulate.
func TestFacadeFaultInjection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	weights := flowsched.PopularityWeights(flowsched.PopularityShuffled, 8, 1, rng)
	inst, err := flowsched.GenerateWorkload(flowsched.WorkloadConfig{
		M: 8, N: 600, Rate: flowsched.RateForLoad(0.6, 8),
		Weights: weights, Strategy: flowsched.OverlappingReplication(3),
	}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}

	// Zero-fault equivalence through the facade.
	s1, m1, err := flowsched.Simulate(inst, flowsched.EFTRouter(flowsched.TieMin))
	if err != nil {
		t.Fatal(err)
	}
	s2, m2, err := flowsched.SimulateFaulty(inst, flowsched.EFTRouter(flowsched.TieMin),
		flowsched.EmptyFaultPlan(8), flowsched.RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s1.Machine, s2.Machine) || !reflect.DeepEqual(m1.Flows, m2.Flows) {
		t.Fatal("SimulateFaulty under the empty plan diverged from Simulate")
	}
	if m2.Availability() != 1 || m2.DroppedCount() != 0 {
		t.Fatal("healthy run reported faults")
	}

	// Generated plan: JSON round-trip then a faulty run with failovers.
	horizon := inst.Tasks[inst.N()-1].Release
	plan := flowsched.GenerateFaultPlan(8, horizon, horizon/6, horizon/20, rand.New(rand.NewSource(3)))
	if plan.IsEmpty() {
		t.Fatal("expected outages from GenerateFaultPlan")
	}
	var buf bytes.Buffer
	if err := plan.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := flowsched.ReadFaultPlanJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan, back) {
		t.Fatal("fault plan JSON round trip changed the plan")
	}
	_, fm, err := flowsched.SimulateFaulty(inst, flowsched.JSQRouter(), back,
		flowsched.RetryPolicy{MaxAttempts: 4, Backoff: 0.1, BackoffFactor: 2, Timeout: horizon})
	if err != nil {
		t.Fatal(err)
	}
	if fm.Availability() >= 1 {
		t.Fatalf("availability %v with a non-empty plan", fm.Availability())
	}
	if fm.TotalRetries() == 0 && fm.ParkedCount() == 0 {
		t.Fatal("heavy outages caused no failovers at all")
	}
	if fm.MaxFlow() <= 0 || fm.RecoverySpike() < 0 {
		t.Fatal("fault metrics incoherent")
	}

	// Scripted plan via the Outage/Down API.
	scripted := flowsched.EmptyFaultPlan(8).Down(0, 1, 5).Down(0, 2, 6)
	if err := scripted.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := scripted.Normalize().Outages; len(got) != 1 || (got[0] != flowsched.Outage{Server: 0, From: 1, Until: 6}) {
		t.Fatalf("Normalize merged to %v", got)
	}
}
