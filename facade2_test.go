package flowsched_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"flowsched"
)

func TestPublicPreemptive(t *testing.T) {
	inst := flowsched.NewInstance(2, []flowsched.Task{
		{Release: 0, Proc: 3},
		{Release: 0, Proc: 3},
		{Release: 0, Proc: 2},
	})
	opt, err := flowsched.PreemptiveOptimalFmax(inst, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-4) > 1e-4 {
		t.Fatalf("preemptive OPT = %v, want 4", opt)
	}
	if !flowsched.PreemptiveFeasible(inst, 4.001) || flowsched.PreemptiveFeasible(inst, 3.9) {
		t.Fatalf("feasibility oracle inconsistent around 4")
	}
	s, err := flowsched.PreemptiveMcNaughton(inst, opt+1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.MaxFlow() > opt+1e-4 {
		t.Fatalf("McNaughton Fmax %v exceeds OPT %v", s.MaxFlow(), opt)
	}
}

func TestPublicRing(t *testing.T) {
	r, err := flowsched.NewOrderedRing(6)
	if err != nil {
		t.Fatal(err)
	}
	set := r.ReplicaSet("some-key", 3)
	if set.Len() != 3 || !set.Contains(r.Primary("some-key")) {
		t.Fatalf("replica set %v broken", set)
	}
	hashed, err := flowsched.NewRing(6, 32)
	if err != nil {
		t.Fatal(err)
	}
	fr := hashed.OwnershipFractions()
	sum := 0.0
	for _, f := range fr {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ownership fractions sum to %v", sum)
	}
}

func TestPublicKeyWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kw, err := flowsched.GenerateKeyWorkload(flowsched.KeyWorkloadConfig{
		M: 8, N: 300, Rate: 4, NumKeys: 100, KeyBias: 1, K: 3,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := kw.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
	mw := kw.MachineWeights()
	if len(mw) != 8 {
		t.Fatalf("machine weights = %v", mw)
	}
	s, metrics, err := flowsched.Simulate(kw.Inst, flowsched.EFTRouter(nil))
	if err != nil || s.Validate() != nil {
		t.Fatalf("simulate: %v", err)
	}
	if metrics.MaxFlow() < 1 {
		t.Fatalf("Fmax = %v", metrics.MaxFlow())
	}
}

func TestPublicJSONRoundTrip(t *testing.T) {
	inst := flowsched.NewInstance(3, []flowsched.Task{
		{Release: 0, Proc: 1, Set: flowsched.NewProcSet(0, 2)},
		{Release: 1, Proc: 2},
	})
	var buf bytes.Buffer
	if err := flowsched.WriteInstanceJSON(&buf, inst); err != nil {
		t.Fatal(err)
	}
	back, err := flowsched.ReadInstanceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 2 || !back.Tasks[0].Set.Equal(flowsched.NewProcSet(0, 2)) {
		t.Fatalf("round trip lost data: %+v", back.Tasks)
	}

	s, err := flowsched.NewEFT(nil).Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := flowsched.WriteScheduleJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	back2, err := flowsched.ReadScheduleJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back2.MaxFlow() != s.MaxFlow() {
		t.Fatalf("schedule round trip changed Fmax")
	}
}

// TestPreemptionGap: preemptive OPT ≤ non-preemptive OPT ≤ EFT through the
// public API.
func TestPreemptionGap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tasks := make([]flowsched.Task, 8)
	for i := range tasks {
		tasks[i] = flowsched.Task{Release: rng.Float64() * 2, Proc: 0.5 + rng.Float64()*2}
	}
	inst := flowsched.NewInstance(2, tasks)
	eft, err := flowsched.NewEFT(flowsched.TieMin).Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	np, err := flowsched.OptimalBruteForce(inst)
	if err != nil {
		t.Fatal(err)
	}
	p, err := flowsched.PreemptiveOptimalFmax(inst, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if !(p <= np.MaxFlow()+1e-5 && np.MaxFlow() <= eft.MaxFlow()+1e-9) {
		t.Fatalf("ordering violated: preempt %v, nonpreempt %v, EFT %v", p, np.MaxFlow(), eft.MaxFlow())
	}
}

func TestPublicTraceWorkloadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	inst, err := flowsched.GenerateWorkload(flowsched.WorkloadConfig{
		M: 6, N: 100, Rate: 3, Strategy: flowsched.DisjointReplication(2),
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := flowsched.WorkloadToTrace(&buf, inst); err != nil {
		t.Fatal(err)
	}
	back, err := flowsched.WorkloadFromTrace(&buf, 6, flowsched.DisjointReplication(2))
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != inst.N() {
		t.Fatalf("trace round trip changed task count")
	}
}

func TestPublicNewRouters(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	inst, err := flowsched.GenerateWorkload(flowsched.WorkloadConfig{
		M: 6, N: 500, Rate: 4, Strategy: flowsched.OverlappingReplication(3),
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []flowsched.Router{
		flowsched.PowerOfTwoRouter(rand.New(rand.NewSource(1))),
		flowsched.RoundRobinRouter(),
		flowsched.NoisyEFTRouter(flowsched.TieMin, 0.3, rand.New(rand.NewSource(2))),
	} {
		s, metrics, err := flowsched.Simulate(inst, r)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if metrics.MaxFlow() < 1 {
			t.Fatalf("%s: Fmax = %v", r.Name(), metrics.MaxFlow())
		}
	}
	_, m, err := flowsched.Simulate(inst, flowsched.EFTRouter(nil))
	if err != nil {
		t.Fatal(err)
	}
	byKey := flowsched.FlowsByKey(inst, m)
	if len(byKey) == 0 {
		t.Fatal("no per-key stats")
	}
	hot, cold := flowsched.HotKeyPenalty(inst, m, 0.3)
	if hot <= 0 || cold <= 0 {
		t.Fatalf("penalty: %v %v", hot, cold)
	}
}

func TestPublicMixedWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	cfg := flowsched.MixedWorkloadConfig{
		M: 6, N: 200, Rate: 2, WriteFraction: 0.5,
		Strategy: flowsched.OverlappingReplication(3),
	}
	inst, err := flowsched.GenerateMixedWorkload(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if inst.N() <= 200 {
		t.Fatalf("writes should fan out: n = %d", inst.N())
	}
	if eff := flowsched.EffectiveLoad(cfg); eff <= 2.0/6 {
		t.Fatalf("effective load %v should exceed the read-only load", eff)
	}
	s, _, err := flowsched.Simulate(inst, flowsched.EFTRouter(nil))
	if err != nil || s.Validate() != nil {
		t.Fatalf("simulate mixed: %v", err)
	}
}
