package flowsched

// Facade over the overload-control subsystem (internal/overload +
// sim.RunGuarded): admission control, load shedding, per-server outlier
// ejection and the SLO guard / capacity estimator built on LP (15).

import (
	"flowsched/internal/obs"
	"flowsched/internal/overload"
	"flowsched/internal/replicate"
	"flowsched/internal/sim"
)

type (
	// OverloadConfig bundles the overload controls of one guarded run; any
	// field may be nil and a nil *OverloadConfig makes SimulateGuarded
	// byte-identical to SimulateFaulty.
	OverloadConfig = overload.Config
	// AdmissionPolicy decides, once per arriving task, whether it enters the
	// system (see AdmitAll, QueueBoundAdmission, DeadlineAdmission).
	AdmissionPolicy = overload.AdmissionPolicy
	// ClusterView is the read-only cluster snapshot handed to admission
	// policies.
	ClusterView = overload.View
	// Shedder trims standing queues when the oldest queued task of a machine
	// outgrows the watermark.
	Shedder = overload.Shedder
	// ShedPolicy selects the shedding victim order (ShedNewest, ShedOldest,
	// ShedRandom, ShedLargestStretch).
	ShedPolicy = overload.ShedPolicy
	// OutlierEjector is Envoy-style passive outlier detection: an EWMA of
	// per-server service-time inflation ejects gray-slowed servers from
	// processing sets, with cooldown re-admission.
	OutlierEjector = overload.Ejector
	// CapacityEstimator is the SLO guard: offered-load EWMAs per replication
	// set compared against the LP (15) capacity λ*, exposing a brownout
	// signal.
	CapacityEstimator = overload.Estimator
	// OverloadMetrics extends FaultMetrics with goodput, reject/shed
	// dispositions by reason, ejector activity and the conditional
	// Fmax/stretch of admitted tasks.
	OverloadMetrics = sim.OverloadMetrics
	// OverloadObserver is the optional probe extension receiving the
	// overload event stream (rejections, sheds, ejections, brownouts).
	OverloadObserver = obs.OverloadObserver
)

// Shedding victim orders.
const (
	ShedNewest         = overload.DropNewest
	ShedOldest         = overload.DropOldest
	ShedRandom         = overload.DropRandom
	ShedLargestStretch = overload.DropLargestStretch
)

// AdmitAll returns the baseline admission policy that accepts everything —
// past λ*, flow times grow without bound.
func AdmitAll() AdmissionPolicy { return overload.AdmitAll{} }

// QueueBoundAdmission rejects a task when every usable machine of its
// processing set exceeds the configured bounds: queue length above maxQueue
// (0 disables) or backlog above maxBacklog (0 disables).
func QueueBoundAdmission(maxQueue int, maxBacklog Time) AdmissionPolicy {
	return overload.QueueBound{MaxQueue: maxQueue, MaxBacklog: maxBacklog}
}

// DeadlineAdmission rejects a task when its predicted flow time (earliest
// finish over its processing set) exceeds d. SimulateGuarded enforces the
// budget at every dispatch, so completed tasks provably satisfy
// Fmax ≤ d + p_max — the auditor's "deadline" invariant.
func DeadlineAdmission(d Time) AdmissionPolicy { return overload.DeadlineAdmit{D: d} }

// ParseShedPolicy parses a shed policy name
// (newest | oldest | random | stretch).
func ParseShedPolicy(name string) (ShedPolicy, error) { return overload.ShedPolicyByName(name) }

// NewCapacityEstimator builds the SLO guard for a popularity weight vector
// and replication strategy: capacity comes from the max-load LP (15) and
// offered load is tracked per distinct replication set.
func NewCapacityEstimator(weights []float64, strategy ReplicationStrategy) (*CapacityEstimator, error) {
	return overload.NewEstimator(weights, strategy)
}

// NewCapacityEstimatorAt builds an SLO guard with a known capacity λ* and no
// per-set tracking.
func NewCapacityEstimatorAt(capacity float64) *CapacityEstimator {
	return overload.NewEstimatorCapacity(capacity)
}

// ValidateReplication checks a replication strategy against a cluster of m
// machines (e.g. replication factor k within [1, m]), returning a clear
// error instead of the late panic inside Strategy.Set.
func ValidateReplication(s ReplicationStrategy, m int) error {
	return replicate.Validate(s, m)
}

// SimulateGuarded is SimulateFaulty with the overload-control subsystem
// attached: admission control and load shedding keep admitted-task flow
// times bounded past the capacity λ*, outlier ejection routes around
// gray-slowed servers, and the SLO guard tracks offered load vs capacity. A
// nil cfg reproduces SimulateFaulty bit for bit; a nil plan means fault-free.
// probe may be nil, a Probe, or one that additionally implements
// OverloadObserver to receive the overload event stream.
func SimulateGuarded(inst *Instance, router Router, plan *FaultPlan, policy RetryPolicy, cfg *OverloadConfig, probe Probe) (*Schedule, *OverloadMetrics, error) {
	return sim.RunGuarded(inst, router, plan, policy, cfg, probe)
}
