# Convenience targets for the flowsched reproduction.

GO ?= go

.PHONY: all build test race bench experiments quick fuzz cover clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure at paper sizes (m=15, 10k tasks,
# 100 permutations).
experiments:
	$(GO) run ./cmd/experiments all

# Fast smoke run of the whole evaluation.
quick:
	$(GO) run ./cmd/experiments -quick all

fuzz:
	$(GO) test -fuzz=FuzzEFTDispatch -fuzztime=30s ./internal/sched/
	$(GO) test -fuzz=FuzzReadInstanceJSON -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzReadScheduleJSON -fuzztime=30s ./internal/core/

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
