# Convenience targets for the flowsched reproduction.

GO ?= go

.PHONY: all build check lint-determinism test race bench bench-update bench-go chaos chaos-short experiments quick profile fuzz cover clean

all: build check

build:
	$(GO) build ./...

# check is the default verify path: static analysis, the determinism lint,
# and the full test suite under the race detector.
check: lint-determinism
	$(GO) vet ./...
	$(GO) test -race ./...

# lint-determinism guards the replayable core: non-test files in
# internal/sim, internal/obs, internal/overload and internal/elastic must
# not read wall-clock time or the global math/rand stream. Seeded generators
# (rand.New(rand.NewSource(...)), *rand.Rand parameters) are allowed — the
# grep strips constructor/type mentions, then fails on any remaining
# time.Now() or rand.<Func> hit.
lint-determinism:
	@bad=$$(grep -nE 'time\.Now\(|\brand\.[A-Z]' \
		$$(find internal/sim internal/obs internal/overload internal/elastic internal/hedge internal/resilience -name '*.go' ! -name '*_test.go') \
		| grep -vE 'rand\.(New|NewSource|Rand|Source)' || true); \
	if [ -n "$$bad" ]; then \
		echo "determinism lint: wall clock / global rand in simulator core:"; \
		echo "$$bad"; exit 1; \
	fi
	@echo "determinism lint: ok"

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench is the regression gate: it runs the registered suite (cmd/bench,
# internal/benchreg) and exits non-zero if any benchmark's ns/op regressed
# more than 15% against the newest checked-in BENCH_<n>.json. It is kept
# out of `check` (tier-1): wall-clock measurements are machine-dependent.
bench:
	$(GO) run ./cmd/bench

# bench-update additionally records the run as the next BENCH_<n>.json.
bench-update:
	$(GO) run ./cmd/bench -update

# bench-go runs the full go test benchmark inventory (bench_test.go).
bench-go:
	$(GO) test -bench=. -benchmem ./...

# chaos is the long soak: thousands of randomized workload × fault plan ×
# router trials through the invariant auditor, with failing trials shrunk
# to replayable repro files under chaos-repros/. A short deterministic-seed
# smoke of the same harness already runs under the race detector in
# `make check` (TestChaosSmoke in internal/chaos).
chaos:
	$(GO) run ./cmd/chaos -trials 5000 -maxm 16 -maxn 500 -repro chaos-repros

# chaos-short is the 200-trial deterministic spot run (same seed as the
# checked-in smoke test). About a third of the trials churn membership
# (scripted scale events, occasionally the autoscaler) and another third
# hedge aged dispatches (delay, quantile or tied triggers, sampled in
# SampleParams), so this doubles as the membership-churn and hedged-
# execution soak CI runs on every push. The second step injects
# a known-broken router and asserts the black box works: a caught failure
# carries a flight-recorder dump that is written, read back and replayed to
# the identical event sequence.
chaos-short:
	$(GO) run ./cmd/chaos -trials 200
	$(GO) test ./internal/chaos -run 'TestFlightRecorderDumpReplay|TestRunAttachesFlightEvents' -count=1

# Regenerate every table and figure at paper sizes (m=15, 10k tasks,
# 100 permutations).
experiments:
	$(GO) run ./cmd/experiments all

# Fast smoke run of the whole evaluation.
quick:
	$(GO) run ./cmd/experiments -quick all

# profile captures CPU and heap profiles of a representative simulation
# sweep (flowsim with the observability probes attached). Inspect with
# `go tool pprof cpu.pprof` / `go tool pprof mem.pprof`.
profile:
	$(GO) run ./cmd/flowsim -m 15 -k 3 -n 20000 \
		-cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "profiles written: cpu.pprof mem.pprof (go tool pprof <file>)"

fuzz:
	$(GO) test -fuzz=FuzzEFTDispatch -fuzztime=30s ./internal/sched/
	$(GO) test -fuzz=FuzzReadInstanceJSON -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzReadScheduleJSON -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzReadPlanJSON -fuzztime=30s ./internal/faults/
	$(GO) test -fuzz=FuzzGuardedDisposition -fuzztime=30s ./internal/sim/
	$(GO) test -fuzz=FuzzElasticMembership -fuzztime=30s ./internal/sim/
	$(GO) test -fuzz=FuzzHedgedDispatch -fuzztime=30s ./internal/sim/
	$(GO) test -fuzz=FuzzBreakerStateMachine -fuzztime=30s ./internal/resilience/

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt cpu.pprof mem.pprof
