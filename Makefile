# Convenience targets for the flowsched reproduction.

GO ?= go

.PHONY: all build check test race bench bench-update bench-go experiments quick fuzz cover clean

all: build check

build:
	$(GO) build ./...

# check is the default verify path: static analysis plus the full test
# suite under the race detector.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench is the regression gate: it runs the registered suite (cmd/bench,
# internal/benchreg) and exits non-zero if any benchmark's ns/op regressed
# more than 15% against the newest checked-in BENCH_<n>.json. It is kept
# out of `check` (tier-1): wall-clock measurements are machine-dependent.
bench:
	$(GO) run ./cmd/bench

# bench-update additionally records the run as the next BENCH_<n>.json.
bench-update:
	$(GO) run ./cmd/bench -update

# bench-go runs the full go test benchmark inventory (bench_test.go).
bench-go:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure at paper sizes (m=15, 10k tasks,
# 100 permutations).
experiments:
	$(GO) run ./cmd/experiments all

# Fast smoke run of the whole evaluation.
quick:
	$(GO) run ./cmd/experiments -quick all

fuzz:
	$(GO) test -fuzz=FuzzEFTDispatch -fuzztime=30s ./internal/sched/
	$(GO) test -fuzz=FuzzReadInstanceJSON -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzReadScheduleJSON -fuzztime=30s ./internal/core/
	$(GO) test -fuzz=FuzzReadPlanJSON -fuzztime=30s ./internal/faults/

cover:
	$(GO) test -coverprofile=cover.out ./... && $(GO) tool cover -func=cover.out | tail -1

clean:
	rm -f cover.out test_output.txt bench_output.txt
