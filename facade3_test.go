package flowsched_test

import (
	"math/rand"
	"strings"
	"testing"

	"flowsched"
)

// Exercise the facade wrappers end to end so every public entry point is
// covered by at least one test.

func TestFacadeAdversaryWrappers(t *testing.T) {
	eft := flowsched.NewEFT(flowsched.TieMin)
	if r, err := flowsched.AdversaryFixedSizeK(eft, 9, 3, 0); err != nil || r.Ratio < r.TheoryRatio-0.01 {
		t.Fatalf("FixedSizeK: %v %v", r, err)
	}
	if r, err := flowsched.AdversaryNested(flowsched.NewEFT(flowsched.TieMin), 8); err != nil || r.Ratio < r.TheoryRatio-1e-9 {
		t.Fatalf("Nested: %v %v", r, err)
	}
	if r, err := flowsched.AdversaryInterval(flowsched.NewEFT(flowsched.TieMin), 500); err != nil || r.Ratio < 1.9 {
		t.Fatalf("Interval: %v %v", r, err)
	}
	if r, err := flowsched.AdversaryEFTStreamPadded(flowsched.TieMax, 6, 3, 0); err != nil || r.AlgFmax < 4 {
		t.Fatalf("Padded: %v %v", r, err)
	}
	inst, s := flowsched.EFTStreamSchedule(flowsched.TieMin, 6, 3, 2)
	if inst.N() != 12 || s.Validate() != nil {
		t.Fatalf("EFTStreamSchedule broken")
	}
}

func TestFacadeSmallWrappers(t *testing.T) {
	if s, err := flowsched.MachineRingInterval(5, 3, 6); err != nil || s.Len() != 3 {
		t.Fatalf("MachineRingInterval = %v, %v", s, err)
	}
	if _, err := flowsched.MachineRingInterval(0, 4, 3); err == nil {
		t.Fatalf("MachineRingInterval(0,4,3) should error: k exceeds the ring size")
	}
	if flowsched.AverageLoad(7.5, 15) != 0.5 {
		t.Fatalf("AverageLoad wrong")
	}
	rng := rand.New(rand.NewSource(1))
	tie := flowsched.TieRand(rng)
	if tie.Pick([]int{4}) != 4 {
		t.Fatalf("TieRand singleton")
	}
	if flowsched.NoReplication().Set(2, 5).Len() != 1 {
		t.Fatalf("NoReplication")
	}
	if flowsched.OffsetDisjointReplication(2, 1).Set(0, 6).Len() != 2 {
		t.Fatalf("OffsetDisjointReplication")
	}
	if flowsched.RandomReplication(3, rng).Set(0, 8).Len() != 3 {
		t.Fatalf("RandomReplication")
	}
	mo := flowsched.NewMaxLoadModel(flowsched.ZipfWeights(6, 1), flowsched.OverlappingReplication(2))
	if mo.MaxLoadHall() <= 0 {
		t.Fatalf("NewMaxLoadModel")
	}
	// MaxLoad's large-m path (flow bisection beyond the Hall limit).
	big := flowsched.MaxLoad(flowsched.ZipfWeights(30, 0), flowsched.DisjointReplication(3))
	if big < 29.9 {
		t.Fatalf("MaxLoad(m=30 uniform) = %v, want ≈ 30", big)
	}
	fam := flowsched.FamilyOf(flowsched.NewInstance(4, []flowsched.Task{
		{Release: 0, Proc: 1, Set: flowsched.MachineInterval(0, 1)},
	}))
	if len(fam.Sets) != 1 {
		t.Fatalf("FamilyOf")
	}
}

func TestFacadeSchedulersAndTimeline(t *testing.T) {
	inst := flowsched.NewInstance(2, []flowsched.Task{
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
		{Release: 1, Proc: 1},
	})
	hs, err := flowsched.NewEFTHeap().Run(inst)
	if err != nil || hs.Validate() != nil {
		t.Fatalf("NewEFTHeap: %v", err)
	}
	js, err := flowsched.NewJSQ().Run(inst)
	if err != nil || js.Validate() != nil {
		t.Fatalf("NewJSQ: %v", err)
	}
	var b strings.Builder
	flowsched.WriteMachineTimeline(&b, hs, 0)
	if !strings.Contains(b.String(), "M1:") {
		t.Fatalf("timeline output: %q", b.String())
	}
	// Adapter wrapper on a disjoint instance.
	dis := flowsched.NewInstance(4, []flowsched.Task{
		{Release: 0, Proc: 1, Set: flowsched.MachineInterval(0, 1)},
		{Release: 0, Proc: 1, Set: flowsched.MachineInterval(2, 3)},
	})
	ad := flowsched.NewPerSetAdapter("EFT-Min", func() flowsched.OnlineScheduler {
		return flowsched.NewEFT(flowsched.TieMin)
	})
	as, err := ad.Run(dis)
	if err != nil || as.Validate() != nil {
		t.Fatalf("NewPerSetAdapter: %v", err)
	}
	// NewSchedule + manual assignment.
	man := flowsched.NewSchedule(inst)
	man.Assign(0, 0, 0)
	man.Assign(1, 1, 0)
	man.Assign(2, 0, 1)
	if err := man.Validate(); err != nil {
		t.Fatalf("manual schedule: %v", err)
	}
	// Remaining simple routers.
	if _, _, err := flowsched.Simulate(inst, flowsched.JSQRouter()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := flowsched.Simulate(inst, flowsched.RandomRouter(rand.New(rand.NewSource(2)))); err != nil {
		t.Fatal(err)
	}
}

func TestPublicRatioHarness(t *testing.T) {
	sum, err := flowsched.MeasureCompetitiveness(
		flowsched.NewEFT(flowsched.TieMin),
		flowsched.UniformInstances(2, 8, 4, 2),
		flowsched.ExactBaseline(),
		30, 1,
	)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Worst > flowsched.CompetitiveBoundFIFO(2)+1e-9 {
		t.Fatalf("worst ratio %v exceeds Theorem 1 bound (seed %d)", sum.Worst, sum.WorstSeed)
	}
	sum2, err := flowsched.MeasureCompetitiveness(
		flowsched.NewEFT(flowsched.TieMin),
		flowsched.DisjointInstances(3, 2, 8, 3, 2),
		flowsched.LowerBoundBaseline(),
		20, 2,
	)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Worst < 1-1e-9 {
		t.Fatalf("ratio vs lower bound below 1: %+v", sum2)
	}
}

func TestPublicPreemptiveLmax(t *testing.T) {
	inst := flowsched.NewInstance(1, []flowsched.Task{
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
	})
	if !flowsched.PreemptiveFeasibleDeadlines(inst, []flowsched.Time{1, 2}) {
		t.Fatal("staggered deadlines should be feasible")
	}
	l, err := flowsched.PreemptiveOptimalLmax(inst, []flowsched.Time{1, 1}, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if l < 1-1e-5 || l > 1+1e-5 {
		t.Fatalf("Lmax = %v, want 1", l)
	}
}
