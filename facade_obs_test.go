package flowsched_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"flowsched"
)

// TestFacadeObservability exercises the observability facade end to end:
// probes through Observe, JSONL replay against Trace, quantiles from the
// streaming histogram, the time series and its SVG rendering, and the
// Prometheus exposition.
func TestFacadeObservability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	weights := flowsched.PopularityWeights(flowsched.PopularityShuffled, 6, 1, rng)
	inst, err := flowsched.GenerateWorkload(flowsched.WorkloadConfig{
		M: 6, N: 400, Rate: flowsched.RateForLoad(0.6, 6),
		Weights: weights, Strategy: flowsched.OverlappingReplication(3),
	}, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	router := flowsched.EFTRouter(flowsched.TieMin)

	sPlain, mPlain, err := flowsched.Simulate(inst, router)
	if err != nil {
		t.Fatal(err)
	}

	hist := flowsched.NewHistogramProbe()
	series, err := flowsched.NewTimeSeries(6, mPlain.Makespan/25)
	if err != nil {
		t.Fatal(err)
	}
	counters := &flowsched.ProbeCounters{}
	var events bytes.Buffer
	sink := flowsched.NewJSONLSink(&events)

	sObs, mObs, err := flowsched.Observe(inst, router, flowsched.MultiProbe(hist, series, counters, sink))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sPlain.Machine, sObs.Machine) || !reflect.DeepEqual(mPlain.Flows, mObs.Flows) {
		t.Fatal("Observe diverged from Simulate")
	}

	// The streaming histogram brackets the exact quantiles.
	g := hist.Flow.Growth()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := mObs.FlowQuantile(q)
		if hq := hist.Flow.Quantile(q); hq > exact*g*1.000001 {
			t.Errorf("q%v: histogram %v vs exact %v", q, hq, exact)
		}
	}
	if hist.Flow.Max() != mObs.MaxFlow() {
		t.Errorf("histogram max %v, metrics %v", hist.Flow.Max(), mObs.MaxFlow())
	}

	// JSONL replay reproduces the schedule's trace exactly.
	replayed, err := flowsched.ReplayJSONL(&events)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed, flowsched.Trace(sObs)) {
		t.Fatal("JSONL replay diverged from Trace")
	}

	// Counters and exposition.
	if counters.Arrivals != 400 || counters.Completions != 400 {
		t.Errorf("counters %+v", counters)
	}
	var prom strings.Builder
	if err := counters.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if err := hist.Flow.WriteProm(&prom, "flowsched_flow_time"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"flowsched_arrivals_total 400", `flowsched_flow_time{quantile="0.9"}`} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Time series + SVG.
	if len(series.Samples()) == 0 {
		t.Fatal("no samples recorded")
	}
	peak, _ := series.PeakBacklog()
	if peak <= 0 {
		t.Errorf("peak backlog %d", peak)
	}
	var svg bytes.Buffer
	if err := flowsched.WriteTimeSeriesSVG(&svg, series.Samples(), "EFT queue profile"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg.String(), "</svg>") {
		t.Fatal("incomplete SVG")
	}

	// ObserveFaulty under the empty plan reproduces Observe.
	counters2 := &flowsched.ProbeCounters{}
	_, mf, err := flowsched.ObserveFaulty(inst, router, nil, flowsched.RetryPolicy{}, counters2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mf.Flows, mObs.Flows) {
		t.Fatal("ObserveFaulty under nil plan diverged")
	}
	if counters2.Completions != 400 || counters2.Failovers != 0 {
		t.Errorf("faulty counters %+v", counters2)
	}
}
