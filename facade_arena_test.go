package flowsched_test

import (
	"math/rand"
	"reflect"
	"testing"

	"flowsched"
)

// TestFacadeRunArena exercises the exported run arena end to end: one arena
// reused across faulty, guarded and elastic runs reproduces the Simulate*
// family exactly, run after run.
func TestFacadeRunArena(t *testing.T) {
	inst, err := flowsched.GenerateWorkload(flowsched.WorkloadConfig{
		M: 6, N: 300, Rate: flowsched.RateForLoad(0.9, 6),
		Strategy: flowsched.OverlappingReplication(3),
	}, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	router := flowsched.EFTRouter(flowsched.TieMin)
	plan := flowsched.EmptyFaultPlan(6).Down(2, 3, 8)
	cfg := &flowsched.OverloadConfig{Admission: flowsched.DeadlineAdmission(15)}
	ecfg := &flowsched.ElasticConfig{
		Initial: 6, Min: 3, Max: 6, WarmUp: 0.5,
		Script: []flowsched.ScaleEvent{{At: 5, Delta: -2}},
	}

	arena := flowsched.NewRunArena()
	for run := 0; run < 3; run++ { // repeat: reuse must stay exact run after run
		sW, fmW, err := flowsched.SimulateFaulty(inst, router, plan, flowsched.RetryPolicy{MaxAttempts: 2})
		if err != nil {
			t.Fatal(err)
		}
		sA, fmA, err := arena.RunFaulty(inst, router, plan, flowsched.RetryPolicy{MaxAttempts: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sW.Machine, sA.Machine) || !reflect.DeepEqual(fmW.Attempts, fmA.Attempts) {
			t.Fatalf("run %d: arena RunFaulty diverges from SimulateFaulty", run)
		}

		_, emW, err := flowsched.SimulateElastic(inst, router, plan, flowsched.RetryPolicy{MaxAttempts: 2}, cfg, ecfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, emA, err := arena.RunElastic(inst, router, plan, flowsched.RetryPolicy{MaxAttempts: 2}, cfg, ecfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(emW.Rejected, emA.Rejected) ||
			!reflect.DeepEqual(emW.Membership, emA.Membership) ||
			emW.Handoffs != emA.Handoffs {
			t.Fatalf("run %d: arena RunElastic diverges from SimulateElastic", run)
		}
	}
}
