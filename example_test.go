package flowsched_test

import (
	"fmt"
	"os"

	"flowsched"
)

// ExampleNewEFT schedules three restricted tasks with the paper's EFT
// algorithm and prints the resulting assignment.
func ExampleNewEFT() {
	inst := flowsched.NewInstance(2, []flowsched.Task{
		{Release: 0, Proc: 2, Set: flowsched.NewProcSet(0)},         // only M1
		{Release: 0, Proc: 1},                                       // anywhere
		{Release: 1, Proc: 1, Set: flowsched.MachineInterval(0, 1)}, // M1 or M2
	})
	s, err := flowsched.NewEFT(flowsched.TieMin).Run(inst)
	if err != nil {
		panic(err)
	}
	for i := range inst.Tasks {
		fmt.Printf("task %d -> M%d at t=%v\n", i, s.Machine[i]+1, s.Start[i])
	}
	fmt.Printf("Fmax = %v\n", s.MaxFlow())
	// Output:
	// task 0 -> M1 at t=0
	// task 1 -> M2 at t=0
	// task 2 -> M2 at t=1
	// Fmax = 2
}

// ExampleMaxLoad computes the theoretical maximum cluster load (LP (15))
// for both replication strategies under a worst-case Zipf bias.
func ExampleMaxLoad() {
	weights := flowsched.ZipfWeights(6, 1) // P(E_j) = 1/(j·H_6)
	ov := flowsched.MaxLoad(weights, flowsched.OverlappingReplication(3))
	dj := flowsched.MaxLoad(weights, flowsched.DisjointReplication(3))
	fmt.Printf("overlapping: %.1f%%\n", flowsched.MaxLoadPercent(ov, 6))
	fmt.Printf("disjoint:    %.1f%%\n", flowsched.MaxLoadPercent(dj, 6))
	// Output:
	// overlapping: 100.0%
	// disjoint:    66.8%
}

// ExampleAdversaryEFTStream reproduces the paper's headline lower bound:
// the Theorem 8 stream drives EFT-Min to Fmax = m − k + 1 while the
// optimal schedule keeps every flow at 1.
func ExampleAdversaryEFTStream() {
	res, err := flowsched.AdversaryEFTStream(flowsched.TieMin, 6, 3, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("EFT-Min Fmax = %v, OPT = %v, ratio = %v (theory ≥ %v)\n",
		res.AlgFmax, res.OptFmax, res.Ratio, res.TheoryRatio)
	// Output:
	// EFT-Min Fmax = 4, OPT = 1, ratio = 4 (theory ≥ 4)
}

// ExampleStructures classifies the processing sets of an instance into the
// structures of Figure 1.
func ExampleStructures() {
	inst := flowsched.NewInstance(4, []flowsched.Task{
		{Release: 0, Proc: 1, Set: flowsched.MachineInterval(0, 1)},
		{Release: 0, Proc: 1, Set: flowsched.MachineInterval(2, 3)},
	})
	fmt.Println(flowsched.Structures(inst))
	// Output:
	// [disjoint nested interval]
}

// ExampleTrace derives the event trace of a schedule.
func ExampleTrace() {
	inst := flowsched.NewInstance(1, []flowsched.Task{
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
	})
	s, err := flowsched.NewEFT(nil).Run(inst)
	if err != nil {
		panic(err)
	}
	flowsched.WriteTrace(os.Stdout, flowsched.Trace(s))
	peak, _ := flowsched.PeakBacklog(flowsched.Trace(s))
	fmt.Printf("peak backlog: %d\n", peak)
	// Output:
	// 0.0000  arrival     task 0
	//     0.0000  arrival     task 1
	//     0.0000  start       task 0    on M1
	//     1.0000  completion  task 0    on M1
	//     1.0000  start       task 1    on M1
	//     2.0000  completion  task 1    on M1
	// peak backlog: 2
}
