package flowsched

// Facade over the robustness subsystem: gray failures and correlated zone
// outages (internal/faults), the schedule invariant auditor
// (internal/audit), and the randomized chaos/soak harness (internal/chaos).

import (
	"math/rand"

	"flowsched/internal/audit"
	"flowsched/internal/chaos"
	"flowsched/internal/faults"
)

type (
	// Slowdown marks one server degraded on [From, Until): work advances
	// at rate 1/Factor (a gray failure when Factor > 1). Factor-1 segments
	// are no-ops; a plan containing only those reproduces the healthy run
	// bit for bit.
	Slowdown = faults.Slowdown
	// CorrelatedFaultConfig parameterizes correlated zone outages over
	// ring-contiguous machine intervals (racks / availability zones).
	CorrelatedFaultConfig = faults.CorrelatedConfig
	// GrayFaultConfig parameterizes random gray-failure generation: an
	// MTBF/MTTR renewal process of slowdown segments per server.
	GrayFaultConfig = faults.GrayConfig

	// AuditViolation is one broken schedule invariant found by AuditSchedule.
	AuditViolation = audit.Violation
	// AuditOptions configures AuditSchedule: the fault plan the schedule
	// ran under, observed completions/drops, and which checks to skip.
	AuditOptions = audit.Options
	// AuditReport collects the violations of one audit; empty means every
	// invariant held.
	AuditReport = audit.Report

	// ChaosConfig parameterizes RunChaos: trial count, seed, sampling
	// bounds and the router pool.
	ChaosConfig = chaos.Config
	// ChaosSummary is the outcome of a RunChaos soak: failing trials with
	// their violations and shrunk repros.
	ChaosSummary = chaos.Summary
	// ChaosRepro is a self-contained, replayable reproduction of a failing
	// chaos trial.
	ChaosRepro = chaos.Repro
)

// GenerateCorrelatedFaultPlan draws correlated zone outages over
// [0, horizon): each zone is a ring-contiguous machine interval (the same
// intervals the overlapping replication strategy uses as processing sets)
// and an outage downs the whole zone at once.
func GenerateCorrelatedFaultPlan(m int, horizon Time, cfg CorrelatedFaultConfig, rng *rand.Rand) *FaultPlan {
	return faults.GenerateCorrelated(m, horizon, cfg, rng)
}

// GenerateGrayFaultPlan draws gray failures from a per-server MTBF/MTTR
// renewal process: degraded periods during which the server processes at
// 1/Factor speed.
func GenerateGrayFaultPlan(m int, horizon Time, cfg GrayFaultConfig, rng *rand.Rand) *FaultPlan {
	return faults.GenerateGray(m, horizon, cfg, rng)
}

// AuditSchedule checks every structural invariant of the schedule against
// its instance — assignment, release, eligibility, completion arithmetic
// (slowdown-adjusted under a fault plan), outage overlap, per-machine
// overlap, the offline lower bound and the FIFO ≡ EFT spot-check — and
// returns the structured report.
func AuditSchedule(inst *Instance, s *Schedule, opts AuditOptions) *AuditReport {
	return audit.Audit(inst, s, opts)
}

// RunChaos executes a randomized soak: seed-derived trials over workload ×
// replication × fault plan × router × retry policy, each simulated, audited
// and cross-checked; failing trials are shrunk to minimal repros. logf
// (optional) receives progress lines.
func RunChaos(cfg ChaosConfig, logf func(format string, args ...any)) (*ChaosSummary, error) {
	return chaos.Run(cfg, logf)
}
