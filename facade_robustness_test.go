package flowsched_test

import (
	"math/rand"
	"strings"
	"testing"

	"flowsched"
)

// TestFacadeGrayAndCorrelatedFaults exercises the gray-failure and
// correlated-outage facade: generated plans, the Slow builder and the
// slowdown-aware faulty simulation.
func TestFacadeGrayAndCorrelatedFaults(t *testing.T) {
	gray := flowsched.GenerateGrayFaultPlan(6, 100, flowsched.GrayFaultConfig{
		MTBF: 20, MTTR: 10, MinFactor: 2, MaxFactor: 4,
	}, rand.New(rand.NewSource(7)))
	if len(gray.Slowdowns) == 0 {
		t.Fatal("expected slowdowns from GenerateGrayFaultPlan")
	}
	for _, s := range gray.Slowdowns {
		if s.Factor < 2 || s.Factor > 4 {
			t.Fatalf("factor %v outside configured range", s.Factor)
		}
	}

	corr := flowsched.GenerateCorrelatedFaultPlan(6, 100, flowsched.CorrelatedFaultConfig{
		Zones: 3, MTBF: 20, MTTR: 5,
	}, rand.New(rand.NewSource(8)))
	if len(corr.Outages) == 0 {
		t.Fatal("expected outages from GenerateCorrelatedFaultPlan")
	}
	if err := corr.Validate(); err != nil {
		t.Fatal(err)
	}

	// A scripted slowdown doubles the service time of the only machine.
	inst := flowsched.NewInstance(1, []flowsched.Task{{Release: 0, Proc: 10}})
	plan := flowsched.EmptyFaultPlan(1).Slow(0, 0, 100, 2)
	_, fm, err := flowsched.SimulateFaulty(inst, flowsched.JSQRouter(), plan, flowsched.RetryPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if fm.Flows[0] != 20 {
		t.Fatalf("flow under factor-2 slowdown = %v, want 20", fm.Flows[0])
	}
}

// TestFacadeAuditSchedule runs the auditor through the facade on a clean
// simulated schedule and on a hand-corrupted one.
func TestFacadeAuditSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	weights := flowsched.PopularityWeights(flowsched.PopularityShuffled, 8, 1, rng)
	inst, err := flowsched.GenerateWorkload(flowsched.WorkloadConfig{
		M: 8, N: 200, Rate: flowsched.RateForLoad(0.7, 8),
		Weights: weights, Strategy: flowsched.OverlappingReplication(3),
	}, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := flowsched.Simulate(inst, flowsched.EFTRouter(flowsched.TieMin))
	if err != nil {
		t.Fatal(err)
	}
	if rep := flowsched.AuditSchedule(inst, s, flowsched.AuditOptions{}); !rep.Ok() {
		t.Fatalf("clean schedule failed audit: %v", rep)
	}

	// Corrupt one assignment off its processing set; the auditor must flag it.
	bad := &flowsched.Schedule{
		Machine: append([]int(nil), s.Machine...),
		Start:   append([]flowsched.Time(nil), s.Start...),
	}
	victim := -1
	for i, task := range inst.Tasks {
		if task.Set != nil && len(task.Set) < inst.M {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no restricted task to corrupt")
	}
	for j := 0; j < inst.M; j++ {
		if !inst.Tasks[victim].Set.Contains(j) {
			bad.Machine[victim] = j
			break
		}
	}
	rep := flowsched.AuditSchedule(inst, bad, flowsched.AuditOptions{})
	if rep.Ok() {
		t.Fatal("auditor missed an ineligible assignment")
	}
	var found bool
	for _, v := range rep.Violations {
		var _ flowsched.AuditViolation = v
		if v.Invariant == "eligibility" && v.Task == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("want an eligible violation for task %d, got %v", victim, rep.Violations)
	}
	if !strings.Contains(rep.String(), "eligibility") {
		t.Fatalf("report string %q lacks the invariant name", rep.String())
	}
}

// TestFacadeRunChaos runs a miniature chaos soak through the facade.
func TestFacadeRunChaos(t *testing.T) {
	sum, err := flowsched.RunChaos(flowsched.ChaosConfig{
		Trials: 25, Seed: 3, MaxM: 6, MaxN: 80,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Trials != 25 {
		t.Fatalf("ran %d trials, want 25", sum.Trials)
	}
	if !sum.Ok() {
		var repro *flowsched.ChaosRepro = sum.Failures[0].Repro
		t.Fatalf("chaos soak found violations: %+v (repro %v)", sum.Failures[0].Violations, repro)
	}
	var _ flowsched.Slowdown
	var _ flowsched.AuditReport
}
