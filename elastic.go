package flowsched

// Facade over the elastic-membership subsystem (internal/elastic +
// sim.RunElastic): online scale-up with warm-up, scale-down with drain and
// handoff, scripted and/or autoscaled membership, and the replayable
// membership log the auditor re-checks.

import (
	"flowsched/internal/elastic"
	"flowsched/internal/obs"
	"flowsched/internal/sim"
)

type (
	// ElasticConfig describes the online membership of one run: the
	// instance's M is the slot capacity, membership moves within [Min, Max]
	// from Initial, joiners warm up for WarmUp, and changes come from a
	// Script, an AutoscalePolicy, or both. A nil *ElasticConfig makes
	// SimulateElastic byte-identical to SimulateGuarded.
	ElasticConfig = elastic.Config
	// ScaleEvent is one scripted membership change: add Delta machines
	// (Delta > 0, each with warm-up) or drain −Delta (Delta < 0) at
	// instant At.
	ScaleEvent = elastic.Event
	// AutoscalePolicy drives membership from a CapacityEstimator with
	// hysteresis (UpUtil/DownUtil), sustain and cooldown.
	AutoscalePolicy = elastic.Autoscaler
	// MembershipLog is the replayable membership history of an elastic run:
	// capacity, initial active prefix and every join/drain with timestamps.
	// Audit re-derives dispatch-time eligibility from it with the same
	// effective-set walk the engine used.
	MembershipLog = elastic.Membership
	// MembershipChange is one entry of the MembershipLog.
	MembershipChange = elastic.Change
	// ElasticMetrics extends OverloadMetrics with the membership log, the
	// per-task dispatch instants, scale/handoff counts and the
	// machine-hours integral ∫ members dt.
	ElasticMetrics = sim.ElasticMetrics
	// MembershipObserver is the optional probe extension receiving the
	// membership event stream (scale-ups, joins, drains, handoffs).
	MembershipObserver = obs.MembershipObserver
)

// EffectiveSet returns the first k active machines walking the slot ring
// clockwise from start — the one routing rule shared by the elastic engine
// and the auditor. active[j] reports whether slot j is a member; start = −1
// means unrestricted (take the k lowest active slots). The result is sorted
// ascending.
func EffectiveSet(active []bool, start, k int) ProcSet {
	return elastic.Effective(active, start, k, nil)
}

// SimulateElastic is SimulateGuarded with online membership attached: the
// ring of machine slots grows (with warm-up) and shrinks (draining the
// highest active slot, running head finishing in place, queued tasks handed
// off to surviving members) during the run, scripted and/or driven by the
// autoscaler. Processing sets are remapped at dispatch onto the active
// subring by the deterministic walk of EffectiveSet, so a full-membership
// elastic run routes exactly like a static one. No admitted task is ever
// lost to a drain: handoffs re-enter the normal dispatch path and the audit
// membership invariants re-check every dispatch against the returned
// MembershipLog. A nil ecfg reproduces SimulateGuarded bit for bit; probe
// may additionally implement MembershipObserver to receive the membership
// event stream.
func SimulateElastic(inst *Instance, router Router, plan *FaultPlan, policy RetryPolicy, cfg *OverloadConfig, ecfg *ElasticConfig, probe Probe) (*Schedule, *ElasticMetrics, error) {
	return sim.RunElastic(inst, router, plan, policy, cfg, ecfg, probe)
}

// RunArena owns every per-run buffer of the simulation engine and reuses
// them across runs: the first run sizes them, every later run of the same
// shape allocates almost nothing. Its RunFaulty / RunGuarded / RunElastic
// methods are the Simulate* family with the arena's buffers substituted for
// fresh ones and are output-identical to them.
//
// The returned Schedule and metrics point into the arena and are valid only
// until its next run — copy anything that must outlive it. An arena is not
// safe for concurrent use; give each goroutine its own (a sync.Pool of
// NewRunArena works well for worker fan-outs).
type RunArena = sim.Arena

// NewRunArena returns an empty arena ready for its first run. Keep it across
// repeated Simulate-shaped calls — trial loops, benchmark repetitions, chaos
// soaks — to amortize the engine's per-run allocations down to a handful.
func NewRunArena() *RunArena {
	return sim.NewArena()
}
