// Package flowsched is an online-scheduling library for bounding the
// maximum flow time (response time) under structured processing set
// restrictions, reproducing Canon, Dugois and Marchal, "Bounding the Flow
// Time in Online Scheduling with Structured Processing Sets" (IPPS 2022 /
// INRIA RR-9446).
//
// The model is P|online-r_i,M_i|Fmax: n tasks with release times r_i,
// processing times p_i and processing sets M_i (the machines allowed to run
// each task, induced in key-value stores by data replication) are scheduled
// online, without preemption, on m identical machines to minimize
// Fmax = max_i (C_i − r_i).
//
// The package exposes:
//
//   - the scheduling model (Task, Instance, Schedule, ProcSet) with full
//     feasibility validation;
//   - the online schedulers of the paper: EFT (immediate dispatch,
//     Algorithm 2) with Min/Max/Rand tie-breaks, and the centralized-queue
//     FIFO (Algorithm 1), which EFT provably equals on unrestricted
//     instances (Proposition 1);
//   - offline baselines: certified lower bounds, exact brute force, and the
//     polynomial exact optimum for unit tasks;
//   - processing-set structure classification (interval, nested, inclusive,
//     disjoint — Figure 1);
//   - the key-value store toolkit: replication strategies (overlapping ring
//     and disjoint blocks, Section 7.2), Zipf popularity (Section 7.1),
//     Poisson workloads and a discrete-event cluster simulator
//     (Section 7.4);
//   - the max-load analysis of LP (15) with three cross-checked solvers;
//   - the adversary constructions behind every lower bound of Table 2
//     (Theorems 3, 4, 5, 7, 8, 9, 10).
//
// See the examples/ directory for runnable entry points and EXPERIMENTS.md
// for the paper-versus-measured record.
package flowsched

import (
	"math/rand"

	"flowsched/internal/core"
	"flowsched/internal/offline"
	"flowsched/internal/psets"
	"flowsched/internal/sched"
)

// Core model types (see internal/core for method documentation).
type (
	// Time measures instants and durations (float64 seconds/slots).
	Time = core.Time
	// Task is one request: release time, processing time, processing set.
	Task = core.Task
	// Instance is a scheduling problem on M machines.
	Instance = core.Instance
	// Schedule maps tasks to machines and start times and computes Fmax.
	Schedule = core.Schedule
	// ProcSet is a processing set restriction (nil = all machines).
	ProcSet = core.ProcSet
)

// NewInstance builds an instance on m machines; tasks are sorted by release
// time (stable) and renumbered.
func NewInstance(m int, tasks []Task) *Instance { return core.NewInstance(m, tasks) }

// NewSchedule allocates an empty schedule for an instance (all tasks
// unassigned); use Assign to fill it and Validate to check feasibility.
func NewSchedule(inst *Instance) *Schedule { return core.NewSchedule(inst) }

// NewProcSet builds a normalized processing set from machine indices
// (0-based).
func NewProcSet(machines ...int) ProcSet { return core.NewProcSet(machines...) }

// MachineInterval returns the contiguous processing set {lo..hi} (0-based,
// inclusive).
func MachineInterval(lo, hi int) ProcSet { return core.Interval(lo, hi) }

// MachineRingInterval returns the circular interval of k machines starting
// at start on a ring of m machines — the paper's I_k(u). A replication
// factor k outside [1, m] (e.g. after a scale-down below k) is an error.
func MachineRingInterval(start, k, m int) (ProcSet, error) { return core.RingInterval(start, k, m) }

// AllMachines is the unrestricted processing set.
var AllMachines = core.AllMachines

// Scheduling algorithms.
type (
	// Algorithm schedules a whole instance.
	Algorithm = sched.Algorithm
	// OnlineScheduler dispatches tasks irrevocably at release (immediate
	// dispatch property, Section 3).
	OnlineScheduler = sched.Online
	// TieBreak picks one machine from an EFT tie set.
	TieBreak = sched.TieBreak
	// Decision is an immediate-dispatch outcome.
	Decision = sched.Decision
)

// Tie-break policies.
var (
	// TieMin breaks ties by the smallest machine index (EFT-Min).
	TieMin TieBreak = sched.MinTie{}
	// TieMax breaks ties by the largest machine index (EFT-Max).
	TieMax TieBreak = sched.MaxTie{}
)

// TieRand breaks ties uniformly at random (EFT-Rand); every candidate has
// positive probability, as Theorem 9 requires.
func TieRand(rng *rand.Rand) TieBreak { return sched.RandTie{Rng: rng} }

// NewEFT returns the Earliest Finish Time immediate-dispatch scheduler
// (Algorithm 2) with the given tie-break (nil = Min). It supports
// processing set restrictions via Equation (2).
func NewEFT(tie TieBreak) *sched.EFT { return sched.NewEFT(tie) }

// NewFIFO returns the centralized-queue FIFO scheduler (Algorithm 1) with
// the given tie-break (nil = Min). It rejects restricted instances;
// Proposition 1 makes it interchangeable with EFT otherwise.
func NewFIFO(tie TieBreak) Algorithm { return &sched.FIFO{Tie: tie} }

// NewEFTHeap returns the O(log m)-per-task heap-indexed EFT for
// unrestricted instances (same start times and Fmax as EFT-Min).
func NewEFTHeap() *sched.EFTHeap { return sched.NewEFTHeap() }

// NewJSQ returns the non-clairvoyant join-shortest-queue baseline.
func NewJSQ() *sched.JSQ { return sched.NewJSQ() }

// NewPerSetAdapter builds the Theorem 6 construction: an independent copy
// of an unrestricted scheduler per disjoint block, giving a
// max_i f(|M_i|)-competitive algorithm from any f(m)-competitive one. Run
// rejects instances whose sets are not a disjoint family.
func NewPerSetAdapter(innerName string, newInner func() OnlineScheduler) *sched.PerSetAdapter {
	return sched.NewPerSetAdapter(innerName, func() sched.Online { return newInner() })
}

// RunOnline feeds an instance, in release order, to an immediate-dispatch
// scheduler and returns the schedule.
func RunOnline(alg OnlineScheduler, inst *Instance) *Schedule {
	return sched.RunOnline(alg, inst)
}

// Offline baselines (internal/offline).

// LowerBound returns a certified lower bound on the optimal Fmax of an
// instance (max of p_max, interval-work and per-set bounds).
func LowerBound(inst *Instance) Time { return offline.LowerBound(inst) }

// OptimalBruteForce returns an exactly optimal schedule for small instances
// (at most offline.MaxBruteForceTasks tasks).
func OptimalBruteForce(inst *Instance) (*Schedule, error) { return offline.BruteForce(inst) }

// OptimalUnit returns the exact optimal Fmax for unit tasks with integer
// releases (binary search + bipartite matching); pass an achievable upper
// bound hi, or 0 for the trivial one.
func OptimalUnit(inst *Instance, hi int) (Time, error) { return offline.UnitOptimal(inst, hi) }

// Structure classification (internal/psets).

// StructureFamily is a deduplicated family of processing sets.
type StructureFamily = psets.Family

// Structures classifies the processing sets of an instance according to
// Figure 1, returning every structure that holds among "disjoint",
// "inclusive", "nested", "interval", or "general".
func Structures(inst *Instance) []string {
	return psets.FromInstance(inst).Classify()
}

// FamilyOf extracts the distinct processing sets of an instance.
func FamilyOf(inst *Instance) StructureFamily { return psets.FromInstance(inst) }
