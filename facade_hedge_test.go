package flowsched_test

import (
	"math/rand"
	"reflect"
	"testing"

	"flowsched"
)

// hedgeCounter counts the facade's hedge event stream.
type hedgeCounter struct {
	flowsched.BaseProbe
	hedges, wins, copyWins, cancels int
}

func (h *hedgeCounter) OnHedge(task, from, to int, at, start, end flowsched.Time) { h.hedges++ }
func (h *hedgeCounter) OnHedgeWin(task, server int, byCopy bool, at flowsched.Time) {
	h.wins++
	if byCopy {
		h.copyWins++
	}
}
func (h *hedgeCounter) OnHedgeCancel(task, server int, at flowsched.Time, started bool) {
	h.cancels++
}

// TestFacadeHedged exercises the hedged-execution facade end to end: a nil
// config reproduces SimulateElastic bit for bit, and a delay-triggered hedge
// under a gray fault issues copies, wins by copy, and reports the
// duplicate-work cost — with the event stream visible through HedgeObserver.
func TestFacadeHedged(t *testing.T) {
	inst, err := flowsched.GenerateWorkload(flowsched.WorkloadConfig{
		M: 4, N: 200, Rate: flowsched.RateForLoad(0.5, 4),
		Strategy: flowsched.OverlappingReplication(3),
	}, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	router := flowsched.RoundRobinRouter()

	// Nil hedge config: byte-identical to SimulateElastic.
	sE, mE, err := flowsched.SimulateElastic(inst, router, nil, flowsched.RetryPolicy{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sH, mH, err := flowsched.SimulateHedged(inst, flowsched.RoundRobinRouter(), nil, flowsched.RetryPolicy{}, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sE, sH) || !reflect.DeepEqual(mE.Flows, mH.Flows) {
		t.Fatal("nil hedge config diverges from SimulateElastic")
	}
	if mH.HedgesIssued != 0 || mH.Hedged != nil {
		t.Fatal("nil hedge config produced hedge state")
	}

	// One server turns gray; a delay-triggered hedge with cancel-mid-service
	// routes around it.
	plan := flowsched.EmptyFaultPlan(4).Slow(0, 0, 1e6, 25)
	hcfg := &flowsched.HedgeConfig{Delay: 2, CancelRunning: true}
	probe := &hedgeCounter{}
	_, em, err := flowsched.SimulateHedged(inst, flowsched.RoundRobinRouter(), plan, flowsched.RetryPolicy{}, nil, nil, hcfg, probe)
	if err != nil {
		t.Fatal(err)
	}
	if em.HedgesIssued == 0 || em.HedgeWinsCopy == 0 {
		t.Fatalf("gray server produced no copy wins: issued=%d copyWins=%d",
			em.HedgesIssued, em.HedgeWinsCopy)
	}
	if em.HedgesIssued != em.HedgeWinsCopy+em.HedgesCancelled+em.HedgesRevoked {
		t.Fatalf("hedge resolution broken: %d ≠ %d + %d + %d",
			em.HedgesIssued, em.HedgeWinsCopy, em.HedgesCancelled, em.HedgesRevoked)
	}
	if probe.hedges != em.HedgesIssued || probe.copyWins != em.HedgeWinsCopy {
		t.Fatalf("observer saw %d/%d, metrics report %d/%d",
			probe.hedges, probe.copyWins, em.HedgesIssued, em.HedgeWinsCopy)
	}
	if r := em.DuplicateRatio(); r < 0 || r >= 1 {
		t.Fatalf("DuplicateRatio = %v", r)
	}

	// A triggerless config is rejected up front.
	if _, _, err := flowsched.SimulateHedged(inst, flowsched.RoundRobinRouter(), nil, flowsched.RetryPolicy{}, nil, nil, &flowsched.HedgeConfig{}, nil); err == nil {
		t.Fatal("triggerless hedge config accepted")
	}
}
