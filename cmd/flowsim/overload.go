package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"flowsched"
)

// ovFlags collects the overload-control flags (-admit, -shed, -eject, -slo)
// and builds one flowsched.OverloadConfig per strategy cell.
type ovFlags struct {
	admit string  // all | queue:LEN[:BACKLOG] | deadline:D
	shed  string  // POLICY:WATERMARK  (newest|oldest|random|stretch)
	eject float64 // ejection factor K (0 = off)
	slo   bool    // attach the LP-capacity SLO guard

	admission flowsched.AdmissionPolicy
	shedder   *flowsched.Shedder
	ejector   *flowsched.OutlierEjector
}

// active reports whether any overload control was requested.
func (o *ovFlags) active() bool {
	return o.admission != nil || o.shedder != nil || o.ejector != nil || o.slo
}

// parse turns the raw flag strings into policy values. It returns a usage
// error (the caller exits 2) on malformed specs.
func (o *ovFlags) parse(seed int64) error {
	switch {
	case o.admit == "" || o.admit == "all":
		if o.admit == "all" {
			o.admission = flowsched.AdmitAll()
		}
	case strings.HasPrefix(o.admit, "queue:"):
		parts := strings.Split(strings.TrimPrefix(o.admit, "queue:"), ":")
		if len(parts) < 1 || len(parts) > 2 {
			return fmt.Errorf("-admit queue wants LEN[:BACKLOG], got %q", o.admit)
		}
		maxQ, err := strconv.Atoi(parts[0])
		if err != nil || maxQ < 1 {
			return fmt.Errorf("-admit queue:LEN wants a positive integer, got %q", parts[0])
		}
		var backlog float64
		if len(parts) == 2 {
			if backlog, err = strconv.ParseFloat(parts[1], 64); err != nil || backlog <= 0 {
				return fmt.Errorf("-admit queue:LEN:BACKLOG wants a positive backlog, got %q", parts[1])
			}
		}
		o.admission = flowsched.QueueBoundAdmission(maxQ, flowsched.Time(backlog))
	case strings.HasPrefix(o.admit, "deadline:"):
		d, err := strconv.ParseFloat(strings.TrimPrefix(o.admit, "deadline:"), 64)
		if err != nil || d <= 0 {
			return fmt.Errorf("-admit deadline:D wants a positive deadline, got %q", o.admit)
		}
		o.admission = flowsched.DeadlineAdmission(flowsched.Time(d))
	default:
		return fmt.Errorf("-admit wants all, queue:LEN[:BACKLOG] or deadline:D, got %q", o.admit)
	}

	if o.shed != "" {
		name, wmStr, ok := strings.Cut(o.shed, ":")
		if !ok {
			return fmt.Errorf("-shed wants POLICY:WATERMARK, got %q", o.shed)
		}
		policy, err := flowsched.ParseShedPolicy(name)
		if err != nil {
			return fmt.Errorf("-shed: %v", err)
		}
		wm, err := strconv.ParseFloat(wmStr, 64)
		if err != nil || wm <= 0 {
			return fmt.Errorf("-shed %s wants a positive watermark, got %q", name, wmStr)
		}
		o.shedder = &flowsched.Shedder{Policy: policy, Watermark: flowsched.Time(wm), Seed: seed}
	}

	if o.eject < 0 {
		return fmt.Errorf("-eject wants a non-negative factor, got %v", o.eject)
	}
	if o.eject > 0 {
		if o.eject <= 1 {
			return fmt.Errorf("-eject factor must exceed 1 (K× the cluster median), got %v", o.eject)
		}
		o.ejector = &flowsched.OutlierEjector{K: o.eject}
	}
	return nil
}

// config assembles the per-cell OverloadConfig. The SLO guard depends on the
// replication strategy (its capacity comes from the max-load LP), so it is
// rebuilt per strategy; the other parts are reset by the simulator.
func (o *ovFlags) config(weights []float64, strat flowsched.ReplicationStrategy) (*flowsched.OverloadConfig, error) {
	cfg := &flowsched.OverloadConfig{
		Admission: o.admission,
		Shedder:   o.shedder,
		Ejector:   o.ejector,
	}
	if o.slo {
		guard, err := flowsched.NewCapacityEstimator(weights, strat)
		if err != nil {
			return nil, fmt.Errorf("flowsim: -slo for %s: %w", strat.Name(), err)
		}
		cfg.Guard = guard
	}
	return cfg, nil
}

// guardedHeader is the result table layout of a guarded run.
func guardedHeader() []string {
	return []string{"strategy", "router", "goodput %", "admitted Fmax", "admitted p99",
		"rejected", "shed", "ejections", "brownouts"}
}

// guardedRow formats one guarded cell.
func guardedRow(strat, router string, om *flowsched.OverloadMetrics) []any {
	return []any{strat, router,
		fmt.Sprintf("%.2f", om.Goodput()*100),
		float64(om.AdmittedMaxFlow()),
		admittedQuantile(om, 0.99),
		om.RejectedCount(),
		om.ShedCount(),
		om.Ejections,
		om.Brownouts,
	}
}

// admittedQuantile returns the q-quantile of completed tasks' flow times.
func admittedQuantile(om *flowsched.OverloadMetrics, q float64) float64 {
	flows := om.AdmittedFlows()
	if len(flows) == 0 {
		return 0
	}
	xs := make([]float64, len(flows))
	for i, f := range flows {
		xs[i] = float64(f)
	}
	sort.Float64s(xs)
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	pos := q * float64(len(xs)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(xs) {
		return xs[len(xs)-1]
	}
	return xs[lo]*(1-frac) + xs[lo+1]*frac
}

// describeOverload summarizes the active controls for the run banner.
func (o *ovFlags) describe() string {
	var parts []string
	if o.admission != nil {
		parts = append(parts, "admit="+o.admission.Name())
	}
	if o.shedder != nil {
		parts = append(parts, fmt.Sprintf("shed=%s@%v", o.shedder.Policy, o.shedder.Watermark))
	}
	if o.ejector != nil {
		parts = append(parts, fmt.Sprintf("eject=%v×median", o.eject))
	}
	if o.slo {
		parts = append(parts, "slo-guard")
	}
	return strings.Join(parts, " ")
}
