package main

import (
	"fmt"
	"strconv"
	"strings"

	"flowsched"
)

// hedgeFlags collects the hedged-execution flags (-hedge, -tied, -cancel)
// and builds the flowsched.HedgeConfig shared by every simulated cell.
type hedgeFlags struct {
	spec   string // fixed delay ("5") or flow-time quantile ("p95")
	tied   bool   // enqueue two copies up front, revoke the loser
	cancel bool   // cancel the losing attempt even mid-service

	cfg *flowsched.HedgeConfig
}

// active reports whether hedged execution was requested.
func (h *hedgeFlags) active() bool { return h.cfg != nil }

// parse turns the -hedge spec into a HedgeConfig. It returns a usage error
// (the caller exits 2) on a malformed spec or a tied/cancel flag without
// -hedge.
func (h *hedgeFlags) parse() error {
	if h.spec == "" {
		if h.tied || h.cancel {
			return fmt.Errorf("-tied and -cancel need -hedge")
		}
		return nil
	}
	cfg := &flowsched.HedgeConfig{Tied: h.tied, CancelRunning: h.cancel}
	if rest, ok := strings.CutPrefix(h.spec, "p"); ok {
		pct, err := strconv.ParseFloat(rest, 64)
		if err != nil || pct <= 0 || pct >= 100 {
			return fmt.Errorf("-hedge pN wants a percentile in (0,100), got %q", h.spec)
		}
		cfg.Quantile = pct / 100
	} else {
		d, err := strconv.ParseFloat(h.spec, 64)
		if err != nil || d <= 0 {
			return fmt.Errorf("-hedge wants a positive delay or a percentile like p95, got %q", h.spec)
		}
		cfg.Delay = flowsched.Time(d)
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	h.cfg = cfg
	return nil
}

// describe summarizes the hedge trigger for the run banner.
func (h *hedgeFlags) describe() string {
	var parts []string
	switch {
	case h.cfg.Quantile > 0:
		parts = append(parts, fmt.Sprintf("trigger=p%g", h.cfg.Quantile*100))
	default:
		parts = append(parts, fmt.Sprintf("trigger=%v", h.cfg.Delay))
	}
	if h.cfg.Tied {
		parts = append(parts, "tied")
	}
	if h.cfg.CancelRunning {
		parts = append(parts, "cancel-running")
	}
	return strings.Join(parts, " ")
}

// hedgedHeader is the result table layout of a hedged run.
func hedgedHeader() []string {
	return []string{"strategy", "router", "Fmax", "mean flow", "p99",
		"hedges", "copy wins", "cancelled", "dup %"}
}

// hedgedRow formats one hedged cell. Flow statistics cover admitted tasks
// only, so the columns stay comparable when -admit/-shed ride along.
func hedgedRow(strat, router string, em *flowsched.ElasticMetrics) []any {
	return []any{strat, router,
		float64(em.AdmittedMaxFlow()),
		float64(em.MeanFlow()),
		admittedElasticQuantile(em, 0.99),
		em.HedgesIssued,
		em.HedgeWinsCopy,
		em.HedgesCancelled + em.HedgesRevoked,
		fmt.Sprintf("%.2f", em.DuplicateRatio()*100),
	}
}

// admittedElasticQuantile is admittedQuantile over the embedded
// OverloadMetrics.
func admittedElasticQuantile(em *flowsched.ElasticMetrics, q float64) float64 {
	return admittedQuantile(&em.OverloadMetrics, q)
}
