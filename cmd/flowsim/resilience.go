package main

import (
	"fmt"
	"strconv"
	"strings"

	"flowsched"
)

// resilienceFlags collects the resilience-layer flags (-jitter,
// -retrybudget, -budgetburst, -breaker) and builds the
// flowsched.ResilienceConfig shared by every simulated cell.
type resilienceFlags struct {
	jitter      string  // backoff jitter mode: full|equal|decorrelated
	budget      float64 // retry budget fraction (0 = off)
	burst       float64 // token-bucket bound (0 = library default)
	breakerSpec string  // WINDOW:FAILFRAC:COOLDOWN[:PROBES[:SLOW]]

	cfg *flowsched.ResilienceConfig
}

// active reports whether any resilience mechanism was requested.
func (r *resilienceFlags) active() bool { return r.cfg != nil }

// parse builds the ResilienceConfig from the flag values. It returns a
// usage error (the caller exits 2) on a malformed breaker spec, an unknown
// jitter mode, an out-of-range budget, or a -budgetburst without
// -retrybudget.
func (r *resilienceFlags) parse(seed int64) error {
	if r.jitter == "" && r.budget == 0 && r.burst == 0 && r.breakerSpec == "" {
		return nil
	}
	if r.burst != 0 && r.budget == 0 {
		return fmt.Errorf("-budgetburst needs -retrybudget")
	}
	cfg := &flowsched.ResilienceConfig{
		Seed:        seed,
		RetryBudget: r.budget,
		BudgetBurst: r.burst,
	}
	switch r.jitter {
	case "":
	case "full":
		cfg.Jitter = flowsched.JitterFull
	case "equal":
		cfg.Jitter = flowsched.JitterEqual
	case "decorrelated":
		cfg.Jitter = flowsched.JitterDecorrelated
	default:
		return fmt.Errorf("-jitter wants full, equal or decorrelated, got %q", r.jitter)
	}
	if r.breakerSpec != "" {
		brk, err := parseBreakerSpec(r.breakerSpec)
		if err != nil {
			return err
		}
		cfg.Breaker = brk
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	r.cfg = cfg
	return nil
}

// parseBreakerSpec parses WINDOW:FAILFRAC:COOLDOWN[:PROBES[:SLOW]], e.g.
// "5:0.6:15" or "5:0.6:15:2:3".
func parseBreakerSpec(spec string) (*flowsched.BreakerConfig, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 3 || len(parts) > 5 {
		return nil, fmt.Errorf("-breaker wants WINDOW:FAILFRAC:COOLDOWN[:PROBES[:SLOW]], got %q", spec)
	}
	bad := func(what, v string) error {
		return fmt.Errorf("-breaker %s: bad %s %q", spec, what, v)
	}
	window, err := strconv.Atoi(parts[0])
	if err != nil {
		return nil, bad("window", parts[0])
	}
	frac, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return nil, bad("failure fraction", parts[1])
	}
	cooldown, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return nil, bad("cooldown", parts[2])
	}
	brk := &flowsched.BreakerConfig{
		Window:           window,
		FailureThreshold: frac,
		Cooldown:         flowsched.Time(cooldown),
	}
	if len(parts) >= 4 {
		probes, err := strconv.Atoi(parts[3])
		if err != nil {
			return nil, bad("probe cap", parts[3])
		}
		brk.HalfOpenProbes = probes
	}
	if len(parts) == 5 {
		slow, err := strconv.ParseFloat(parts[4], 64)
		if err != nil {
			return nil, bad("slow factor", parts[4])
		}
		brk.SlowFactor = slow
	}
	return brk, nil
}

// describe summarizes the enabled mechanisms for the run banner.
func (r *resilienceFlags) describe() string {
	var parts []string
	if r.cfg.Jitter != flowsched.JitterNone {
		parts = append(parts, fmt.Sprintf("jitter=%s", r.cfg.Jitter))
	}
	if r.cfg.RetryBudget > 0 {
		parts = append(parts, fmt.Sprintf("budget=%g (burst %g)",
			r.cfg.RetryBudget, r.cfg.BudgetBurstOrDefault()))
	}
	if r.cfg.Breaker != nil {
		parts = append(parts, fmt.Sprintf("breaker=%s", r.breakerSpec))
	}
	return strings.Join(parts, " ")
}

// resilientHeader is the result table layout of a resilient run.
func resilientHeader() []string {
	return []string{"strategy", "router", "Fmax", "mean flow", "p99",
		"retries", "budget drops", "opens", "probes", "parked"}
}

// resilientRow formats one resilient cell. Flow statistics cover admitted
// tasks only, so the columns stay comparable when -admit/-shed ride along.
func resilientRow(strat, router string, em *flowsched.ElasticMetrics) []any {
	return []any{strat, router,
		float64(em.AdmittedMaxFlow()),
		float64(em.MeanFlow()),
		admittedElasticQuantile(em, 0.99),
		em.RetriesIssued,
		em.RetriesDropped,
		em.BreakerOpens,
		em.BreakerProbes,
		em.ParkedCount(),
	}
}
