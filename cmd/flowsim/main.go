// Command flowsim simulates a replicated key-value store cluster: Poisson
// unit requests with a Zipf popularity bias are routed online to servers
// and the response-time distribution is reported for every combination of
// replication strategy and router.
//
//	flowsim -m 15 -k 3 -n 10000 -load 0.8 -s 1 -case shuffled
//	flowsim ... -dump run.json        # also save the overlapping instance
//	flowsim -replay run.json          # re-simulate a saved instance
//
// Fault injection (server crashes + failover):
//
//	flowsim -m 15 -k 3 -mtbf 500 -mttr 50 -retries 3   # random MTBF/MTTR outages
//	flowsim ... -faults plan.json                      # replay a scripted fault plan
//	flowsim ... -mtbf 500 -dump run.json               # saves run.json + run.json.faults.json
//	flowsim -replay run.json                           # replays faults too when present
//
// Hedged execution (speculative duplicate dispatch, first completion wins;
// needs -k ≥ 2 so an alternate server exists):
//
//	flowsim ... -hedge 5            # hedge any dispatch older than 5 time units
//	flowsim ... -hedge p95 -cancel  # p95 flow-time trigger, cancel the loser mid-service
//	flowsim ... -hedge p95 -tied    # tied requests: two copies up front, loser revoked
//
// Resilience (anti-retry-storm protections, riding on fault injection):
//
//	flowsim ... -mtbf 500 -retries 3 -backoff 1 -jitter full   # jittered failover backoff
//	flowsim ... -retrybudget 0.1 -budgetburst 3   # cap retries at 10% of fresh dispatches
//	flowsim ... -breaker 5:0.6:15:2               # per-server circuit breakers
//
// Observability (probes on the overlapping-strategy × EFT-Min cell, the
// same cell -dump saves; all combinable):
//
//	flowsim ... -events run.jsonl          # JSONL event stream of the run
//	flowsim ... -metrics metrics.prom      # Prometheus text exposition
//	flowsim ... -sample 5 -samplesvg q.svg # queue/backlog time series every 5 units
//	flowsim ... -trace traces.json         # per-task causal span traces as JSON
//	flowsim ... -traceworst 10 -tracesvg tail.svg  # span timeline of the 10 worst tasks
//	flowsim ... -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"

	"flowsched"
	"flowsched/internal/table"
)

func main() {
	m := flag.Int("m", 15, "cluster size")
	k := flag.Int("k", 3, "replication factor")
	n := flag.Int("n", 10000, "number of requests")
	loadFrac := flag.Float64("load", 0.8, "average cluster load (fraction of 1)")
	s := flag.Float64("s", 1, "Zipf popularity bias")
	caseName := flag.String("case", "shuffled", "popularity case: uniform|worst|shuffled")
	seed := flag.Int64("seed", 1, "random seed")
	dump := flag.String("dump", "", "write the generated overlapping-strategy instance (and fault plan, if any) to this JSON file")
	replay := flag.String("replay", "", "re-simulate a saved instance JSON instead of generating one")
	timeline := flag.Int("timeline", -1, "after a fault-free -replay run, print this machine's busy timeline (1-based; 0 = full event trace)")
	svg := flag.String("svg", "", "after a fault-free -replay run, write the EFT-Min schedule as an SVG Gantt chart to this file")
	mtbf := flag.Float64("mtbf", 0, "mean time between failures per server (0 = no random faults)")
	mttr := flag.Float64("mttr", 50, "mean time to repair an outage (with -mtbf)")
	faultsPath := flag.String("faults", "", "simulate under this fault plan JSON instead of generating one")
	retries := flag.Int("retries", 0, "max dispatch attempts per request before dropping (0 = unlimited)")
	timeout := flag.Float64("timeout", 0, "drop a request older than this at failover (0 = never)")
	backoff := flag.Float64("backoff", 0, "base failover backoff, growing per extra attempt (0 = immediate)")
	backoffFactor := flag.Float64("backofffactor", 2, "multiplier applied to -backoff per extra attempt (1 = constant, must be ≥1)")
	var ov ovFlags
	flag.StringVar(&ov.admit, "admit", "", "admission policy: all | queue:LEN[:BACKLOG] | deadline:D")
	flag.StringVar(&ov.shed, "shed", "", "load shedding: POLICY:WATERMARK with POLICY one of newest|oldest|random|stretch")
	flag.Float64Var(&ov.eject, "eject", 0, "eject servers whose service-time EWMA exceeds FACTOR× the cluster median (0 = off)")
	flag.BoolVar(&ov.slo, "slo", false, "attach the LP-capacity SLO guard and report brownouts")
	var hg hedgeFlags
	flag.StringVar(&hg.spec, "hedge", "", "hedge aged dispatches: fixed delay (e.g. 5) or live flow-time percentile (e.g. p95)")
	flag.BoolVar(&hg.tied, "tied", false, "with -hedge, enqueue two copies up front and revoke the loser at service start")
	flag.BoolVar(&hg.cancel, "cancel", false, "with -hedge, cancel the losing attempt even mid-service")
	var rs resilienceFlags
	flag.StringVar(&rs.jitter, "jitter", "", "jitter the retry backoff: full | equal | decorrelated")
	flag.Float64Var(&rs.budget, "retrybudget", 0, "cap retries at this fraction of first-attempt dispatches (0 = off)")
	flag.Float64Var(&rs.burst, "budgetburst", 0, "with -retrybudget, bound the retry token bucket (0 = library default)")
	flag.StringVar(&rs.breakerSpec, "breaker", "", "per-server circuit breakers: WINDOW:FAILFRAC:COOLDOWN[:PROBES[:SLOW]] (e.g. 5:0.6:15)")
	var ob obsFlags
	flag.StringVar(&ob.events, "events", "", "write the observed cell's JSONL event stream to this file")
	flag.StringVar(&ob.metrics, "metrics", "", "write Prometheus-style counters and flow/stretch quantiles to this file")
	flag.Float64Var(&ob.sample, "sample", 0, "record queue/backlog/watermark samples at this interval (0 = off)")
	flag.StringVar(&ob.sampleSVG, "samplesvg", "", "with -sample, render the time series as an SVG chart to this file")
	flag.StringVar(&ob.trace, "trace", "", "write the observed cell's per-task causal traces as JSON to this file")
	flag.IntVar(&ob.traceWorst, "traceworst", 0, "with -trace/-tracesvg, retain only the K worst-flow task traces (0 = keep all)")
	flag.StringVar(&ob.traceSVG, "tracesvg", "", "write a span-timeline SVG of the worst traced tasks to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	// Validate the fault flags before doing any work: a negative -mtbf used
	// to be silently ignored (the run came out fault-free with no warning),
	// and nonsense retry parameters only blew up deep inside the simulator.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	usageErr := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "flowsim: "+format+"\n", args...)
		os.Exit(2)
	}
	if explicit["mtbf"] && *mtbf <= 0 {
		usageErr("-mtbf must be positive, got %v", *mtbf)
	}
	if explicit["mttr"] && *mttr <= 0 {
		usageErr("-mttr must be positive, got %v", *mttr)
	}
	if explicit["faults"] && explicit["mtbf"] {
		usageErr("-faults and -mtbf are mutually exclusive: a scripted plan already fixes the outages")
	}
	if *retries < 0 {
		usageErr("-retries must be non-negative, got %d", *retries)
	}
	if *timeout < 0 {
		usageErr("-timeout must be non-negative, got %v", *timeout)
	}
	if *backoff < 0 {
		usageErr("-backoff must be non-negative, got %v", *backoff)
	}
	policy := flowsched.RetryPolicy{
		MaxAttempts:   *retries,
		Backoff:       *backoff,
		BackoffFactor: *backoffFactor,
		Timeout:       *timeout,
	}
	if err := policy.Validate(); err != nil {
		// Catches the silent-footgun factors too: a -backofffactor in (0,1)
		// would *shrink* the delay every attempt, the opposite of backoff.
		usageErr("%v", err)
	}
	if ob.traceWorst < 0 {
		usageErr("-traceworst must be non-negative, got %d", ob.traceWorst)
	}
	if ob.traceWorst > 0 && ob.trace == "" && ob.traceSVG == "" {
		usageErr("-traceworst needs -trace or -tracesvg")
	}
	if err := ov.parse(*seed); err != nil {
		usageErr("%v", err)
	}
	if ov.active() && *replay != "" {
		usageErr("-admit/-shed/-eject/-slo do not combine with -replay")
	}
	if err := hg.parse(); err != nil {
		usageErr("%v", err)
	}
	if hg.active() && *replay != "" {
		usageErr("-hedge does not combine with -replay: a saved run replays verbatim")
	}
	if hg.active() && *k < 2 {
		usageErr("-hedge with -k %d is pointless: no alternate server exists to hedge to", *k)
	}
	if err := rs.parse(*seed); err != nil {
		usageErr("%v", err)
	}
	if rs.active() && *replay != "" {
		usageErr("-jitter/-retrybudget/-breaker do not combine with -replay: a saved run replays verbatim")
	}
	if *faultsPath != "" && *replay == "" {
		// Fail fast on an unreadable or invalid plan file (the replay path
		// resolves its own plan next to the instance, so it parses later).
		if _, err := readFaultPlan(*faultsPath); err != nil {
			usageErr("-faults %s: %v", *faultsPath, err)
		}
	}

	stopProf, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()
	if ob.sampleSVG != "" && ob.sample <= 0 {
		log.Fatal("flowsim: -samplesvg needs a positive -sample interval")
	}

	if *replay != "" {
		if err := simulateSaved(*replay, *timeline, *svg, *faultsPath, policy, &ob); err != nil {
			log.Fatal(err)
		}
		return
	}

	var pcase flowsched.PopularityCase
	switch *caseName {
	case "uniform":
		pcase = flowsched.PopularityUniform
	case "worst":
		pcase = flowsched.PopularityWorst
	case "shuffled":
		pcase = flowsched.PopularityShuffled
	default:
		fmt.Fprintf(os.Stderr, "flowsim: unknown case %q\n", *caseName)
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	weights := flowsched.PopularityWeights(pcase, *m, *s, rng)
	rate := flowsched.RateForLoad(*loadFrac, *m)

	// Fault mode: a scripted plan, or random outages drawn over the
	// expected horizon n/λ. The same plan is replayed against every
	// strategy×router cell so the comparison is fair.
	var plan *flowsched.FaultPlan
	switch {
	case *faultsPath != "":
		var err error
		plan, err = readFaultPlan(*faultsPath)
		if err != nil {
			log.Fatal(err)
		}
		if plan.M != *m {
			log.Fatalf("flowsim: fault plan is for %d servers, -m is %d", plan.M, *m)
		}
	case *mtbf > 0:
		horizon := float64(*n) / rate
		plan = flowsched.GenerateFaultPlan(*m, horizon, *mtbf, *mttr, rand.New(rand.NewSource(*seed+101)))
	}

	strategies := []flowsched.ReplicationStrategy{
		flowsched.NoReplication(),
		flowsched.OverlappingReplication(*k),
		flowsched.DisjointReplication(*k),
	}
	for _, strat := range strategies {
		// Catch an out-of-range replication factor (e.g. -k 20 -m 15) here
		// with a usage error instead of a panic deep inside Strategy.Set.
		if err := flowsched.ValidateReplication(strat, *m); err != nil {
			usageErr("%v", err)
		}
	}
	routers := []struct {
		name string
		r    flowsched.Router
	}{
		{"EFT-Min", flowsched.EFTRouter(flowsched.TieMin)},
		{"EFT-Max", flowsched.EFTRouter(flowsched.TieMax)},
		{"JSQ", flowsched.JSQRouter()},
	}

	fmt.Printf("flowsim: m=%d k=%d n=%d load=%.0f%% case=%s s=%v seed=%d",
		*m, *k, *n, *loadFrac*100, pcase, *s, *seed)
	if plan != nil {
		fmt.Printf(" faults=%d outages (availability %.2f%%) retries=%d timeout=%v",
			len(plan.Outages), plan.Availability(float64(*n)/rate)*100, *retries, *timeout)
	}
	if ov.active() {
		fmt.Printf(" overload[%s]", ov.describe())
	}
	if hg.active() {
		fmt.Printf(" hedge[%s]", hg.describe())
	}
	if rs.active() {
		fmt.Printf(" resilience[%s]", rs.describe())
	}
	fmt.Printf("\n\n")

	var out *table.Table
	switch {
	case rs.active():
		out = table.New(resilientHeader()...)
	case hg.active():
		out = table.New(hedgedHeader()...)
	case ov.active():
		out = table.New(guardedHeader()...)
	case plan == nil:
		out = table.New("strategy", "router", "max load %", "Fmax", "mean flow", "p99", "utilization")
	default:
		out = table.New("strategy", "router", "avail %", "Fmax", "mean flow", "p99",
			"spike Fmax", "retries", "drop %", "parked")
	}
	for _, strat := range strategies {
		maxLoad := flowsched.MaxLoadPercent(flowsched.MaxLoad(weights, strat), *m)
		inst, err := flowsched.GenerateWorkload(flowsched.WorkloadConfig{
			M: *m, N: *n, Rate: rate,
			Weights: weights, Strategy: strat,
		}, rand.New(rand.NewSource(*seed)))
		if err != nil {
			log.Fatal(err)
		}
		if *dump != "" && strat.Name() == flowsched.OverlappingReplication(*k).Name() {
			if err := dumpInstance(*dump, inst, plan); err != nil {
				log.Fatal(err)
			}
		}
		for _, rt := range routers {
			// Probes ride on the overlapping-strategy × EFT-Min cell, the
			// same cell -dump saves.
			var cell *cellObserver
			if ob.active() && strat.Name() == flowsched.OverlappingReplication(*k).Name() && rt.name == "EFT-Min" {
				var err error
				if cell, err = ob.attach(*m); err != nil {
					log.Fatal(err)
				}
			}
			if rs.active() || hg.active() {
				// The resilience layer rides on the full unified chain:
				// hedging and the overload controls compose underneath, so
				// the shared ResilienceConfig (and HedgeConfig) stack on the
				// per-strategy guard config.
				var cfg *flowsched.OverloadConfig
				if ov.active() {
					var err error
					if cfg, err = ov.config(weights, strat); err != nil {
						log.Fatal(err)
					}
				}
				_, em, err := flowsched.SimulateResilient(inst, rt.r, plan, policy, cfg, nil, hg.cfg, rs.cfg, cell.probeOrNil())
				if err != nil {
					log.Fatal(err)
				}
				if err := cell.finish(); err != nil {
					log.Fatal(err)
				}
				if rs.active() {
					out.AddRow(resilientRow(strat.Name(), rt.name, em)...)
				} else {
					out.AddRow(hedgedRow(strat.Name(), rt.name, em)...)
				}
				continue
			}
			if ov.active() {
				cfg, err := ov.config(weights, strat)
				if err != nil {
					log.Fatal(err)
				}
				_, om, err := flowsched.SimulateGuarded(inst, rt.r, plan, policy, cfg, cell.probeOrNil())
				if err != nil {
					log.Fatal(err)
				}
				if err := cell.finish(); err != nil {
					log.Fatal(err)
				}
				out.AddRow(guardedRow(strat.Name(), rt.name, om)...)
				continue
			}
			if plan == nil {
				sched, metrics, err := flowsched.Observe(inst, rt.r, cell.probeOrNil())
				if err != nil {
					log.Fatal(err)
				}
				if err := sched.Validate(); err != nil {
					log.Fatalf("invalid schedule from %s: %v", rt.name, err)
				}
				if err := cell.finish(); err != nil {
					log.Fatal(err)
				}
				out.AddRow(strat.Name(), rt.name,
					fmt.Sprintf("%.0f", maxLoad),
					float64(metrics.MaxFlow()),
					float64(metrics.MeanFlow()),
					float64(metrics.FlowQuantile(0.99)),
					fmt.Sprintf("%.2f", metrics.Utilization()))
				continue
			}
			_, fm, err := flowsched.ObserveFaulty(inst, rt.r, plan, policy, cell.probeOrNil())
			if err != nil {
				log.Fatal(err)
			}
			if err := cell.finish(); err != nil {
				log.Fatal(err)
			}
			out.AddRow(strat.Name(), rt.name,
				fmt.Sprintf("%.2f", fm.Availability()*100),
				float64(fm.MaxFlow()),
				float64(fm.MeanFlow()),
				float64(fm.FlowQuantile(0.99)),
				float64(fm.RecoverySpike()),
				fm.TotalRetries(),
				fmt.Sprintf("%.2f", fm.DropRate()*100),
				fm.ParkedCount())
		}
	}
	out.Render(os.Stdout)
	if *dump != "" {
		fmt.Printf("\noverlapping-strategy instance written to %s\n", *dump)
		if plan != nil {
			fmt.Printf("fault plan written to %s\n", faultPlanPath(*dump))
		}
	}
}

// faultPlanPath is where the fault plan rides along with a dumped instance.
func faultPlanPath(instancePath string) string { return instancePath + ".faults.json" }

func dumpInstance(path string, inst *flowsched.Instance, plan *flowsched.FaultPlan) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := flowsched.WriteInstanceJSON(f, inst); err != nil {
		return err
	}
	if plan == nil {
		return nil
	}
	pf, err := os.Create(faultPlanPath(path))
	if err != nil {
		return err
	}
	defer pf.Close()
	return plan.WriteJSON(pf)
}

func readFaultPlan(path string) (*flowsched.FaultPlan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return flowsched.ReadFaultPlanJSON(f)
}

// simulateSaved replays a saved instance under every router. A fault plan
// is replayed alongside when one is given via -faults or found next to the
// instance (instance path + ".faults.json"); timeline and svgPath apply to
// the fault-free EFT-Min schedule only, and observability probes (-events,
// -metrics, -sample) attach to the EFT-Min run.
func simulateSaved(path string, timeline int, svgPath, faultsPath string, policy flowsched.RetryPolicy, ob *obsFlags) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	inst, err := flowsched.ReadInstanceJSON(f)
	if err != nil {
		return err
	}

	var plan *flowsched.FaultPlan
	if faultsPath == "" {
		if _, serr := os.Stat(faultPlanPath(path)); serr == nil {
			faultsPath = faultPlanPath(path)
		}
	}
	if faultsPath != "" {
		plan, err = readFaultPlan(faultsPath)
		if err != nil {
			return err
		}
		if plan.M != inst.M {
			return fmt.Errorf("flowsim: fault plan is for %d servers, instance has %d", plan.M, inst.M)
		}
	}

	fmt.Printf("flowsim: replaying %s (m=%d, n=%d, structures %v)\n",
		path, inst.M, inst.N(), flowsched.Structures(inst))
	if plan != nil {
		fmt.Printf("         with fault plan %s (%d outages)\n", faultsPath, len(plan.Outages))
	}
	fmt.Println()

	routers := []struct {
		name string
		r    flowsched.Router
	}{
		{"EFT-Min", flowsched.EFTRouter(flowsched.TieMin)},
		{"EFT-Max", flowsched.EFTRouter(flowsched.TieMax)},
		{"JSQ", flowsched.JSQRouter()},
	}

	if plan != nil {
		out := table.New("router", "avail %", "Fmax", "mean flow", "p99",
			"spike Fmax", "retries", "drop %", "parked")
		for _, rt := range routers {
			cell, err := attachIf(ob, rt.name == "EFT-Min", inst.M)
			if err != nil {
				return err
			}
			_, fm, err := flowsched.ObserveFaulty(inst, rt.r, plan, policy, cell.probeOrNil())
			if err != nil {
				return err
			}
			if err := cell.finish(); err != nil {
				return err
			}
			out.AddRow(rt.name,
				fmt.Sprintf("%.2f", fm.Availability()*100),
				float64(fm.MaxFlow()),
				float64(fm.MeanFlow()),
				float64(fm.FlowQuantile(0.99)),
				float64(fm.RecoverySpike()),
				fm.TotalRetries(),
				fmt.Sprintf("%.2f", fm.DropRate()*100),
				fm.ParkedCount())
		}
		out.Render(os.Stdout)
		return nil
	}

	out := table.New("router", "Fmax", "mean flow", "p99", "utilization")
	var eftSched *flowsched.Schedule
	for _, rt := range routers {
		cell, err := attachIf(ob, rt.name == "EFT-Min", inst.M)
		if err != nil {
			return err
		}
		s, metrics, err := flowsched.Observe(inst, rt.r, cell.probeOrNil())
		if err != nil {
			return err
		}
		if err := cell.finish(); err != nil {
			return err
		}
		if eftSched == nil {
			eftSched = s
		}
		out.AddRow(rt.name,
			float64(metrics.MaxFlow()),
			float64(metrics.MeanFlow()),
			float64(metrics.FlowQuantile(0.99)),
			fmt.Sprintf("%.2f", metrics.Utilization()))
	}
	out.Render(os.Stdout)

	if svgPath != "" {
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		if err := flowsched.WriteGanttSVG(f, eftSched, 0); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nSVG Gantt written to %s\n", svgPath)
	}

	switch {
	case timeline == 0:
		fmt.Println("\nEFT-Min event trace:")
		flowsched.WriteTrace(os.Stdout, flowsched.Trace(eftSched))
	case timeline > 0 && timeline <= inst.M:
		fmt.Println()
		flowsched.WriteMachineTimeline(os.Stdout, eftSched, timeline-1)
	}
	return nil
}

// --- Observability plumbing ------------------------------------------------

// obsFlags collects the probe-related flags.
type obsFlags struct {
	events     string  // JSONL event stream path
	metrics    string  // Prometheus exposition path
	sampleSVG  string  // time-series SVG path
	sample     float64 // sampling interval (0 = off)
	trace      string  // per-task causal trace JSON path
	traceSVG   string  // span-timeline SVG path
	traceWorst int     // KeepWorst retention bound (0 = keep all)
}

// active reports whether any probe output was requested.
func (o *obsFlags) active() bool {
	return o.events != "" || o.metrics != "" || o.sample > 0 || o.tracing()
}

// tracing reports whether the span tracer is wanted.
func (o *obsFlags) tracing() bool { return o.trace != "" || o.traceSVG != "" }

// attachIf builds the probe set when the flags are active and this is the
// observed cell; otherwise it returns nil (a nil *cellObserver is inert).
func attachIf(o *obsFlags, observed bool, m int) (*cellObserver, error) {
	if o == nil || !o.active() || !observed {
		return nil, nil
	}
	return o.attach(m)
}

// cellObserver is the probe set attached to the observed cell plus the
// output plumbing to drain it after the run.
type cellObserver struct {
	flags    *obsFlags
	counters *flowsched.ProbeCounters
	hist     *flowsched.HistogramProbe
	series   *flowsched.TimeSeries
	sink     *flowsched.JSONLSink
	tracer   *flowsched.Tracer
	eventsF  *os.File
	probe    flowsched.Probe
}

// attach opens the outputs and builds the fan-out probe.
func (o *obsFlags) attach(m int) (*cellObserver, error) {
	c := &cellObserver{
		flags:    o,
		counters: &flowsched.ProbeCounters{},
		hist:     flowsched.NewHistogramProbe(),
	}
	probes := []flowsched.Probe{c.counters, c.hist}
	if o.sample > 0 {
		series, err := flowsched.NewTimeSeries(m, o.sample)
		if err != nil {
			return nil, err
		}
		c.series = series
		probes = append(probes, series)
	}
	if o.events != "" {
		f, err := os.Create(o.events)
		if err != nil {
			return nil, err
		}
		c.eventsF = f
		c.sink = flowsched.NewJSONLSink(f)
		probes = append(probes, c.sink)
	}
	if o.tracing() {
		retain := flowsched.TraceKeepAll()
		if o.traceWorst > 0 {
			retain = flowsched.TraceKeepWorst(o.traceWorst)
		}
		c.tracer = flowsched.NewTracer(retain)
		probes = append(probes, c.tracer)
	}
	c.probe = flowsched.MultiProbe(probes...)
	return c, nil
}

// probeOrNil lets an unobserved cell (nil receiver) run unprobed.
func (c *cellObserver) probeOrNil() flowsched.Probe {
	if c == nil {
		return nil
	}
	return c.probe
}

// finish drains the probes into the requested outputs.
func (c *cellObserver) finish() error {
	if c == nil {
		return nil
	}
	if c.sink != nil {
		if err := c.sink.Flush(); err != nil {
			return fmt.Errorf("flowsim: writing %s: %w", c.flags.events, err)
		}
		if err := c.eventsF.Close(); err != nil {
			return err
		}
		fmt.Printf("event stream written to %s\n", c.flags.events)
	}
	if c.flags.metrics != "" {
		f, err := os.Create(c.flags.metrics)
		if err != nil {
			return err
		}
		if err := c.counters.WriteProm(f); err == nil {
			err = c.hist.Flow.WriteProm(f, "flowsched_flow_time")
		} else {
			f.Close()
			return err
		}
		if err := c.hist.Stretch.WriteProm(f, "flowsched_stretch"); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics written to %s\n", c.flags.metrics)
	}
	if c.tracer != nil && c.flags.trace != "" {
		f, err := os.Create(c.flags.trace)
		if err != nil {
			return err
		}
		if err := c.tracer.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("task traces written to %s\n", c.flags.trace)
	}
	if c.tracer != nil && c.flags.traceSVG != "" {
		// The span timeline shows the tail: the -traceworst bound when set,
		// otherwise the 20 worst-flow tasks of a keep-all run.
		k := c.flags.traceWorst
		if k <= 0 {
			k = 20
		}
		f, err := os.Create(c.flags.traceSVG)
		if err != nil {
			return err
		}
		title := fmt.Sprintf("observed cell: %d worst task traces", k)
		if err := flowsched.WriteTraceTimelineSVG(f, c.tracer.Worst(k), c.tracer.Makespan(), title); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("span-timeline SVG written to %s\n", c.flags.traceSVG)
	}
	if c.series != nil && c.flags.sampleSVG != "" {
		f, err := os.Create(c.flags.sampleSVG)
		if err != nil {
			return err
		}
		if err := flowsched.WriteTimeSeriesSVG(f, c.series.Samples(), "observed cell: queue profile"); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("time-series SVG written to %s\n", c.flags.sampleSVG)
	}
	if c.series != nil {
		peak, at := c.series.PeakBacklog()
		wm, wmAt := c.series.PeakMaxAge()
		fmt.Printf("observed cell: peak backlog %d at t=%.4g, max-flow watermark %.4g at t=%.4g (%d samples)\n",
			peak, at, wm, wmAt, len(c.series.Samples()))
	}
	return nil
}

// startProfiles wires runtime/pprof: a CPU profile over the whole process
// and a heap profile at exit. The returned stop function is safe to call
// once on the normal exit path.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuF *os.File
	if cpuPath != "" {
		cpuF, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, err
		}
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
			fmt.Printf("CPU profile written to %s\n", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				log.Printf("flowsim: heap profile: %v", err)
				return
			}
			runtime.GC() // up-to-date allocation data
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("flowsim: heap profile: %v", err)
			}
			f.Close()
			fmt.Printf("heap profile written to %s\n", memPath)
		}
	}, nil
}
