// Command flowsim simulates a replicated key-value store cluster: Poisson
// unit requests with a Zipf popularity bias are routed online to servers
// and the response-time distribution is reported for every combination of
// replication strategy and router.
//
//	flowsim -m 15 -k 3 -n 10000 -load 0.8 -s 1 -case shuffled
//	flowsim ... -dump run.json        # also save the overlapping instance
//	flowsim -replay run.json          # re-simulate a saved instance
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"flowsched"
	"flowsched/internal/table"
)

func main() {
	m := flag.Int("m", 15, "cluster size")
	k := flag.Int("k", 3, "replication factor")
	n := flag.Int("n", 10000, "number of requests")
	loadFrac := flag.Float64("load", 0.8, "average cluster load (fraction of 1)")
	s := flag.Float64("s", 1, "Zipf popularity bias")
	caseName := flag.String("case", "shuffled", "popularity case: uniform|worst|shuffled")
	seed := flag.Int64("seed", 1, "random seed")
	dump := flag.String("dump", "", "write the generated overlapping-strategy instance to this JSON file")
	replay := flag.String("replay", "", "re-simulate a saved instance JSON instead of generating one")
	timeline := flag.Int("timeline", -1, "after a -replay run, print this machine's busy timeline (1-based; 0 = full event trace)")
	svg := flag.String("svg", "", "after a -replay run, write the EFT-Min schedule as an SVG Gantt chart to this file")
	flag.Parse()
	svgFlag = *svg

	_ = timeline // used by simulateSaved via the package-level flag value below
	timelineFlag = *timeline

	if *replay != "" {
		if err := simulateSaved(*replay); err != nil {
			log.Fatal(err)
		}
		return
	}

	var pcase flowsched.PopularityCase
	switch *caseName {
	case "uniform":
		pcase = flowsched.PopularityUniform
	case "worst":
		pcase = flowsched.PopularityWorst
	case "shuffled":
		pcase = flowsched.PopularityShuffled
	default:
		fmt.Fprintf(os.Stderr, "flowsim: unknown case %q\n", *caseName)
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	weights := flowsched.PopularityWeights(pcase, *m, *s, rng)

	strategies := []flowsched.ReplicationStrategy{
		flowsched.NoReplication(),
		flowsched.OverlappingReplication(*k),
		flowsched.DisjointReplication(*k),
	}
	routers := []struct {
		name string
		r    flowsched.Router
	}{
		{"EFT-Min", flowsched.EFTRouter(flowsched.TieMin)},
		{"EFT-Max", flowsched.EFTRouter(flowsched.TieMax)},
		{"JSQ", flowsched.JSQRouter()},
	}

	fmt.Printf("flowsim: m=%d k=%d n=%d load=%.0f%% case=%s s=%v seed=%d\n\n",
		*m, *k, *n, *loadFrac*100, pcase, *s, *seed)
	out := table.New("strategy", "router", "max load %", "Fmax", "mean flow", "p99", "utilization")
	for _, strat := range strategies {
		maxLoad := flowsched.MaxLoadPercent(flowsched.MaxLoad(weights, strat), *m)
		inst, err := flowsched.GenerateWorkload(flowsched.WorkloadConfig{
			M: *m, N: *n, Rate: flowsched.RateForLoad(*loadFrac, *m),
			Weights: weights, Strategy: strat,
		}, rand.New(rand.NewSource(*seed)))
		if err != nil {
			log.Fatal(err)
		}
		if *dump != "" {
			if _, ok := strat.(interface{ Name() string }); ok && strat.Name() == flowsched.OverlappingReplication(*k).Name() {
				if err := dumpInstance(*dump, inst); err != nil {
					log.Fatal(err)
				}
			}
		}
		for _, rt := range routers {
			sched, metrics, err := flowsched.Simulate(inst, rt.r)
			if err != nil {
				log.Fatal(err)
			}
			if err := sched.Validate(); err != nil {
				log.Fatalf("invalid schedule from %s: %v", rt.name, err)
			}
			out.AddRow(strat.Name(), rt.name,
				fmt.Sprintf("%.0f", maxLoad),
				float64(metrics.MaxFlow()),
				float64(metrics.MeanFlow()),
				float64(metrics.FlowQuantile(0.99)),
				fmt.Sprintf("%.2f", metrics.Utilization()))
		}
	}
	out.Render(os.Stdout)
	if *dump != "" {
		fmt.Printf("\noverlapping-strategy instance written to %s\n", *dump)
	}
}

func dumpInstance(path string, inst *flowsched.Instance) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return flowsched.WriteInstanceJSON(f, inst)
}

// timelineFlag and svgFlag mirror the -timeline and -svg flags for
// simulateSaved.
var (
	timelineFlag = -1
	svgFlag      string
)

// simulateSaved replays a saved instance under every router.
func simulateSaved(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	inst, err := flowsched.ReadInstanceJSON(f)
	if err != nil {
		return err
	}
	fmt.Printf("flowsim: replaying %s (m=%d, n=%d, structures %v)\n\n",
		path, inst.M, inst.N(), flowsched.Structures(inst))
	out := table.New("router", "Fmax", "mean flow", "p99", "utilization")
	var eftSched *flowsched.Schedule
	for _, rt := range []struct {
		name string
		r    flowsched.Router
	}{
		{"EFT-Min", flowsched.EFTRouter(flowsched.TieMin)},
		{"EFT-Max", flowsched.EFTRouter(flowsched.TieMax)},
		{"JSQ", flowsched.JSQRouter()},
	} {
		s, metrics, err := flowsched.Simulate(inst, rt.r)
		if err != nil {
			return err
		}
		if eftSched == nil {
			eftSched = s
		}
		out.AddRow(rt.name,
			float64(metrics.MaxFlow()),
			float64(metrics.MeanFlow()),
			float64(metrics.FlowQuantile(0.99)),
			fmt.Sprintf("%.2f", metrics.Utilization()))
	}
	out.Render(os.Stdout)

	if svgFlag != "" {
		f, err := os.Create(svgFlag)
		if err != nil {
			return err
		}
		if err := flowsched.WriteGanttSVG(f, eftSched, 0); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nSVG Gantt written to %s\n", svgFlag)
	}

	switch {
	case timelineFlag == 0:
		fmt.Println("\nEFT-Min event trace:")
		flowsched.WriteTrace(os.Stdout, flowsched.Trace(eftSched))
	case timelineFlag > 0 && timelineFlag <= inst.M:
		fmt.Println()
		flowsched.WriteMachineTimeline(os.Stdout, eftSched, timelineFlag-1)
	}
	return nil
}
