// Command flowsim simulates a replicated key-value store cluster: Poisson
// unit requests with a Zipf popularity bias are routed online to servers
// and the response-time distribution is reported for every combination of
// replication strategy and router.
//
//	flowsim -m 15 -k 3 -n 10000 -load 0.8 -s 1 -case shuffled
//	flowsim ... -dump run.json        # also save the overlapping instance
//	flowsim -replay run.json          # re-simulate a saved instance
//
// Fault injection (server crashes + failover):
//
//	flowsim -m 15 -k 3 -mtbf 500 -mttr 50 -retries 3   # random MTBF/MTTR outages
//	flowsim ... -faults plan.json                      # replay a scripted fault plan
//	flowsim ... -mtbf 500 -dump run.json               # saves run.json + run.json.faults.json
//	flowsim -replay run.json                           # replays faults too when present
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"flowsched"
	"flowsched/internal/table"
)

func main() {
	m := flag.Int("m", 15, "cluster size")
	k := flag.Int("k", 3, "replication factor")
	n := flag.Int("n", 10000, "number of requests")
	loadFrac := flag.Float64("load", 0.8, "average cluster load (fraction of 1)")
	s := flag.Float64("s", 1, "Zipf popularity bias")
	caseName := flag.String("case", "shuffled", "popularity case: uniform|worst|shuffled")
	seed := flag.Int64("seed", 1, "random seed")
	dump := flag.String("dump", "", "write the generated overlapping-strategy instance (and fault plan, if any) to this JSON file")
	replay := flag.String("replay", "", "re-simulate a saved instance JSON instead of generating one")
	timeline := flag.Int("timeline", -1, "after a fault-free -replay run, print this machine's busy timeline (1-based; 0 = full event trace)")
	svg := flag.String("svg", "", "after a fault-free -replay run, write the EFT-Min schedule as an SVG Gantt chart to this file")
	mtbf := flag.Float64("mtbf", 0, "mean time between failures per server (0 = no random faults)")
	mttr := flag.Float64("mttr", 50, "mean time to repair an outage (with -mtbf)")
	faultsPath := flag.String("faults", "", "simulate under this fault plan JSON instead of generating one")
	retries := flag.Int("retries", 0, "max dispatch attempts per request before dropping (0 = unlimited)")
	timeout := flag.Float64("timeout", 0, "drop a request older than this at failover (0 = never)")
	backoff := flag.Float64("backoff", 0, "base failover backoff, doubling per extra attempt (0 = immediate)")
	flag.Parse()

	policy := flowsched.RetryPolicy{
		MaxAttempts:   *retries,
		Backoff:       *backoff,
		BackoffFactor: 2,
		Timeout:       *timeout,
	}

	if *replay != "" {
		if err := simulateSaved(*replay, *timeline, *svg, *faultsPath, policy); err != nil {
			log.Fatal(err)
		}
		return
	}

	var pcase flowsched.PopularityCase
	switch *caseName {
	case "uniform":
		pcase = flowsched.PopularityUniform
	case "worst":
		pcase = flowsched.PopularityWorst
	case "shuffled":
		pcase = flowsched.PopularityShuffled
	default:
		fmt.Fprintf(os.Stderr, "flowsim: unknown case %q\n", *caseName)
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	weights := flowsched.PopularityWeights(pcase, *m, *s, rng)
	rate := flowsched.RateForLoad(*loadFrac, *m)

	// Fault mode: a scripted plan, or random outages drawn over the
	// expected horizon n/λ. The same plan is replayed against every
	// strategy×router cell so the comparison is fair.
	var plan *flowsched.FaultPlan
	switch {
	case *faultsPath != "":
		var err error
		plan, err = readFaultPlan(*faultsPath)
		if err != nil {
			log.Fatal(err)
		}
		if plan.M != *m {
			log.Fatalf("flowsim: fault plan is for %d servers, -m is %d", plan.M, *m)
		}
	case *mtbf > 0:
		horizon := float64(*n) / rate
		plan = flowsched.GenerateFaultPlan(*m, horizon, *mtbf, *mttr, rand.New(rand.NewSource(*seed+101)))
	}

	strategies := []flowsched.ReplicationStrategy{
		flowsched.NoReplication(),
		flowsched.OverlappingReplication(*k),
		flowsched.DisjointReplication(*k),
	}
	routers := []struct {
		name string
		r    flowsched.Router
	}{
		{"EFT-Min", flowsched.EFTRouter(flowsched.TieMin)},
		{"EFT-Max", flowsched.EFTRouter(flowsched.TieMax)},
		{"JSQ", flowsched.JSQRouter()},
	}

	fmt.Printf("flowsim: m=%d k=%d n=%d load=%.0f%% case=%s s=%v seed=%d",
		*m, *k, *n, *loadFrac*100, pcase, *s, *seed)
	if plan != nil {
		fmt.Printf(" faults=%d outages (availability %.2f%%) retries=%d timeout=%v",
			len(plan.Outages), plan.Availability(float64(*n)/rate)*100, *retries, *timeout)
	}
	fmt.Printf("\n\n")

	var out *table.Table
	if plan == nil {
		out = table.New("strategy", "router", "max load %", "Fmax", "mean flow", "p99", "utilization")
	} else {
		out = table.New("strategy", "router", "avail %", "Fmax", "mean flow", "p99",
			"spike Fmax", "retries", "drop %", "parked")
	}
	for _, strat := range strategies {
		maxLoad := flowsched.MaxLoadPercent(flowsched.MaxLoad(weights, strat), *m)
		inst, err := flowsched.GenerateWorkload(flowsched.WorkloadConfig{
			M: *m, N: *n, Rate: rate,
			Weights: weights, Strategy: strat,
		}, rand.New(rand.NewSource(*seed)))
		if err != nil {
			log.Fatal(err)
		}
		if *dump != "" && strat.Name() == flowsched.OverlappingReplication(*k).Name() {
			if err := dumpInstance(*dump, inst, plan); err != nil {
				log.Fatal(err)
			}
		}
		for _, rt := range routers {
			if plan == nil {
				sched, metrics, err := flowsched.Simulate(inst, rt.r)
				if err != nil {
					log.Fatal(err)
				}
				if err := sched.Validate(); err != nil {
					log.Fatalf("invalid schedule from %s: %v", rt.name, err)
				}
				out.AddRow(strat.Name(), rt.name,
					fmt.Sprintf("%.0f", maxLoad),
					float64(metrics.MaxFlow()),
					float64(metrics.MeanFlow()),
					float64(metrics.FlowQuantile(0.99)),
					fmt.Sprintf("%.2f", metrics.Utilization()))
				continue
			}
			_, fm, err := flowsched.SimulateFaulty(inst, rt.r, plan, policy)
			if err != nil {
				log.Fatal(err)
			}
			out.AddRow(strat.Name(), rt.name,
				fmt.Sprintf("%.2f", fm.Availability()*100),
				float64(fm.MaxFlow()),
				float64(fm.MeanFlow()),
				float64(fm.FlowQuantile(0.99)),
				float64(fm.RecoverySpike()),
				fm.TotalRetries(),
				fmt.Sprintf("%.2f", fm.DropRate()*100),
				fm.ParkedCount())
		}
	}
	out.Render(os.Stdout)
	if *dump != "" {
		fmt.Printf("\noverlapping-strategy instance written to %s\n", *dump)
		if plan != nil {
			fmt.Printf("fault plan written to %s\n", faultPlanPath(*dump))
		}
	}
}

// faultPlanPath is where the fault plan rides along with a dumped instance.
func faultPlanPath(instancePath string) string { return instancePath + ".faults.json" }

func dumpInstance(path string, inst *flowsched.Instance, plan *flowsched.FaultPlan) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := flowsched.WriteInstanceJSON(f, inst); err != nil {
		return err
	}
	if plan == nil {
		return nil
	}
	pf, err := os.Create(faultPlanPath(path))
	if err != nil {
		return err
	}
	defer pf.Close()
	return plan.WriteJSON(pf)
}

func readFaultPlan(path string) (*flowsched.FaultPlan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return flowsched.ReadFaultPlanJSON(f)
}

// simulateSaved replays a saved instance under every router. A fault plan
// is replayed alongside when one is given via -faults or found next to the
// instance (instance path + ".faults.json"); timeline and svgPath apply to
// the fault-free EFT-Min schedule only.
func simulateSaved(path string, timeline int, svgPath, faultsPath string, policy flowsched.RetryPolicy) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	inst, err := flowsched.ReadInstanceJSON(f)
	if err != nil {
		return err
	}

	var plan *flowsched.FaultPlan
	if faultsPath == "" {
		if _, serr := os.Stat(faultPlanPath(path)); serr == nil {
			faultsPath = faultPlanPath(path)
		}
	}
	if faultsPath != "" {
		plan, err = readFaultPlan(faultsPath)
		if err != nil {
			return err
		}
		if plan.M != inst.M {
			return fmt.Errorf("flowsim: fault plan is for %d servers, instance has %d", plan.M, inst.M)
		}
	}

	fmt.Printf("flowsim: replaying %s (m=%d, n=%d, structures %v)\n",
		path, inst.M, inst.N(), flowsched.Structures(inst))
	if plan != nil {
		fmt.Printf("         with fault plan %s (%d outages)\n", faultsPath, len(plan.Outages))
	}
	fmt.Println()

	routers := []struct {
		name string
		r    flowsched.Router
	}{
		{"EFT-Min", flowsched.EFTRouter(flowsched.TieMin)},
		{"EFT-Max", flowsched.EFTRouter(flowsched.TieMax)},
		{"JSQ", flowsched.JSQRouter()},
	}

	if plan != nil {
		out := table.New("router", "avail %", "Fmax", "mean flow", "p99",
			"spike Fmax", "retries", "drop %", "parked")
		for _, rt := range routers {
			_, fm, err := flowsched.SimulateFaulty(inst, rt.r, plan, policy)
			if err != nil {
				return err
			}
			out.AddRow(rt.name,
				fmt.Sprintf("%.2f", fm.Availability()*100),
				float64(fm.MaxFlow()),
				float64(fm.MeanFlow()),
				float64(fm.FlowQuantile(0.99)),
				float64(fm.RecoverySpike()),
				fm.TotalRetries(),
				fmt.Sprintf("%.2f", fm.DropRate()*100),
				fm.ParkedCount())
		}
		out.Render(os.Stdout)
		return nil
	}

	out := table.New("router", "Fmax", "mean flow", "p99", "utilization")
	var eftSched *flowsched.Schedule
	for _, rt := range routers {
		s, metrics, err := flowsched.Simulate(inst, rt.r)
		if err != nil {
			return err
		}
		if eftSched == nil {
			eftSched = s
		}
		out.AddRow(rt.name,
			float64(metrics.MaxFlow()),
			float64(metrics.MeanFlow()),
			float64(metrics.FlowQuantile(0.99)),
			fmt.Sprintf("%.2f", metrics.Utilization()))
	}
	out.Render(os.Stdout)

	if svgPath != "" {
		f, err := os.Create(svgPath)
		if err != nil {
			return err
		}
		if err := flowsched.WriteGanttSVG(f, eftSched, 0); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nSVG Gantt written to %s\n", svgPath)
	}

	switch {
	case timeline == 0:
		fmt.Println("\nEFT-Min event trace:")
		flowsched.WriteTrace(os.Stdout, flowsched.Trace(eftSched))
	case timeline > 0 && timeline <= inst.M:
		fmt.Println()
		flowsched.WriteMachineTimeline(os.Stdout, eftSched, timeline-1)
	}
	return nil
}
