// Command experiments regenerates every table and figure of the paper's
// evaluation (see EXPERIMENTS.md for the index):
//
//	experiments table1              FIFO literature rows + empirical check
//	experiments table2              all lower/upper bound rows (Theorems 3-10)
//	experiments fig1                structure reduction graph witnesses
//	experiments fig2                Theorem 5 adversary phases
//	experiments fig3                EFT-Min adversary schedule (Gantt)
//	experiments fig4                schedule profile vs stable profile
//	experiments fig5-6              Lemma 2/3 plateau propagation
//	experiments fig7                Theorem 10 small-task padding
//	experiments fig8                popularity load distributions
//	experiments fig9                replication strategy example
//	experiments fig10a              max-load sweep (LP (15)) heat map
//	experiments fig10b              overlapping/disjoint gain matrix
//	experiments fig11               Fmax vs load simulations
//	experiments extension           replication-strategy ablation
//	experiments robustness          EFT under noisy processing-time estimates
//	experiments convergence         Theorem 8 convergence time vs the m³ bound
//	experiments writes              write fan-out extension (Fmax vs write fraction)
//	experiments drift               popularity-drift extension (moving hot spots)
//	experiments faults              fault injection (strategies under server failures)
//	experiments overload            overload control (goodput vs load past λ*)
//	experiments postmortem          causal chains of the worst-flow tasks per overload policy
//	experiments autoscale           elastic provisioning (machine-hours vs Fmax on a bursty trace)
//	experiments hedge               hedged execution (speculative duplicates vs gray faults and overload)
//	experiments metastable          retry storms (a healed outage with and without the resilience layer)
//	experiments all                 everything above
//
// Flags select sizes; defaults follow the paper (m=15, k=3, 10 000 tasks,
// 10 repetitions, 100 permutations). Use -quick for a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"flowsched"
	"flowsched/internal/experiments"
	"flowsched/internal/parallel"
)

func main() {
	quick := flag.Bool("quick", false, "smaller configurations for a fast run")
	m := flag.Int("m", 15, "machines for interval experiments (fig10/fig11/table2)")
	k := flag.Int("k", 3, "replication factor / interval size")
	n := flag.Int("n", 10000, "tasks per simulation run (fig11)")
	reps := flag.Int("reps", 10, "repetitions per point (fig11)")
	perms := flag.Int("perms", 100, "permutations per cell (fig10)")
	seed := flag.Int64("seed", 1, "random seed")
	csvDir := flag.String("csvdir", "", "also write fig10/fig11 data as CSV files into this directory")
	progress := flag.Bool("progress", false, "report per-trial progress of the parallel sweeps (table1, fig11) on stderr")
	flag.Parse()

	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] <table1|table2|fig1|fig2|fig3|fig4|fig5-6|fig7|fig8|fig9|fig10a|fig10b|fig11|extension|robustness|convergence|writes|drift|faults|overload|postmortem|autoscale|hedge|metastable|all>")
		os.Exit(2)
	}

	if *quick {
		*m, *n, *reps, *perms = 10, 2000, 3, 10
	}

	run := func(name string) error {
		w := os.Stdout
		switch name {
		case "table1":
			cfg := experiments.DefaultTable1()
			cfg.Seed = *seed
			cfg.Progress = progressReporter(*progress, "table1 trials")
			_, err := experiments.Table1(w, cfg)
			return err
		case "table2":
			cfg := experiments.DefaultTable2()
			cfg.M, cfg.K, cfg.Seed = *m, *k, *seed
			_, err := experiments.Table2(w, cfg)
			return err
		case "fig1":
			return experiments.Figure1(w, 12, *seed)
		case "fig2":
			return experiments.Figure2(w, 16)
		case "fig3":
			return experiments.Figure3(w, 6, 3, 4)
		case "fig4":
			return experiments.Figure4(w, *m, *k)
		case "fig5", "fig6", "fig5-6":
			return experiments.Figure5and6(w, 6, 3)
		case "fig7":
			return experiments.Figure7(w, 6, 3)
		case "fig8":
			return experiments.Figure8(w, 6, 1, *seed)
		case "fig9":
			return experiments.Figure9(w, 6, 3)
		case "fig10a":
			cfg := experiments.DefaultFig10()
			cfg.M, cfg.Perms, cfg.Seed = *m, *perms, *seed
			cfg.Ks = ksUpTo(*m)
			data, err := experiments.Figure10a(w, cfg)
			if err != nil {
				return err
			}
			if err := writeCSV(*csvDir, "fig10a.csv", data.WriteCSV); err != nil {
				return err
			}
			return writeFig10SVGs(*csvDir, data)
		case "fig10b":
			cfg := experiments.DefaultFig10()
			cfg.M, cfg.Perms, cfg.Seed = *m, *perms, *seed
			cfg.Ks = ksUpTo(*m)
			data, err := experiments.Figure10b(w, cfg)
			if err != nil {
				return err
			}
			return writeCSV(*csvDir, "fig10b.csv", data.WriteRatioCSV)
		case "fig11":
			cfg := experiments.DefaultFig11()
			cfg.M, cfg.K, cfg.N, cfg.Reps, cfg.Seed = *m, *k, *n, *reps, *seed
			cfg.Progress = progressReporter(*progress, "fig11 cells")
			data, err := experiments.Figure11(w, cfg)
			if err != nil {
				return err
			}
			return writeCSV(*csvDir, "fig11.csv", data.WriteCSV)
		case "extension":
			cfg := experiments.DefaultExtension()
			cfg.M, cfg.K, cfg.N, cfg.Reps, cfg.Seed = *m, *k, *n, *reps, *seed
			_, err := experiments.ExtensionStrategies(w, cfg)
			return err
		case "robustness":
			cfg := experiments.DefaultRobustness()
			cfg.M, cfg.K, cfg.N, cfg.Seed = *m, *k, *n, *seed
			_, err := experiments.Robustness(w, cfg)
			return err
		case "convergence":
			_, err := experiments.Convergence(w, []int{6, 8, 10, 12, 15}, []int{2, 3, 5})
			return err
		case "writes":
			cfg := experiments.DefaultWrites()
			cfg.M, cfg.K, cfg.N, cfg.Seed = *m, *k, *n, *seed
			cfg.Rate = 0.4 * float64(*m)
			_, err := experiments.WriteFanout(w, cfg)
			return err
		case "drift":
			cfg := experiments.DefaultDrift()
			cfg.M, cfg.K, cfg.N, cfg.Seed = *m, *k, *n, *seed
			_, err := experiments.PopularityDrift(w, cfg)
			return err
		case "faults":
			cfg := experiments.DefaultFaultTolerance()
			cfg.M, cfg.K, cfg.N, cfg.Seed = *m, *k, *n, *seed
			if *quick {
				cfg.Reps = 2
				cfg.MTBFs = []float64{0, 500, 250}
			}
			_, err := experiments.FaultTolerance(w, cfg)
			return err
		case "overload":
			cfg := experiments.DefaultOverloadSweep()
			cfg.M, cfg.K, cfg.N, cfg.Seed = *m, *k, *n, *seed
			if *quick {
				cfg.Reps = 1
				cfg.Loads = []float64{0.8, 1.0, 1.3}
			}
			_, err := experiments.OverloadSweep(w, cfg)
			return err
		case "postmortem":
			cfg := experiments.DefaultPostmortem()
			cfg.M, cfg.K, cfg.N, cfg.Seed = *m, *k, *n, *seed
			return experiments.Postmortem(w, cfg)
		case "autoscale":
			cfg := experiments.DefaultAutoscale()
			cfg.K, cfg.Seed = *k, *seed
			if *quick {
				cfg.BaseTime, cfg.BurstTime = 60, 30
			}
			_, err := experiments.AutoscaleSweep(w, cfg)
			return err
		case "hedge":
			cfg := experiments.DefaultHedgeTradeoff()
			cfg.M, cfg.K, cfg.N, cfg.Seed = *m, *k, *n, *seed
			if *quick {
				cfg.Reps = 1
			}
			_, err := experiments.HedgeTradeoff(w, cfg)
			return err
		case "metastable":
			// Like autoscale, the cell is timing-shaped: the flap schedule
			// and the post-heal measurement window are absolute instants, so
			// -m/-n would cut the horizon short of the heal. -quick trims
			// repetitions only (the full cell runs in well under a second).
			cfg := experiments.DefaultMetastable()
			cfg.K, cfg.Seed = *k, *seed
			if *quick {
				cfg.Reps = 1
			}
			_, err := experiments.Metastable(w, cfg)
			return err
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = []string{"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5-6", "fig7",
			"fig8", "fig9", "fig10a", "fig10b", "fig11", "extension", "robustness", "convergence", "writes", "drift", "faults", "overload", "postmortem", "autoscale", "hedge", "metastable"}
	}
	for i, name := range names {
		if i > 0 {
			fmt.Printf("\n%s\n\n", divider)
		}
		if err := run(name); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

const divider = "================================================================"

// progressReporter builds a stderr progress line for a parallel sweep
// (nil when -progress is off, which disables reporting entirely). The
// carriage-return line is erased by the final newline at completion, so
// stdout tables stay clean.
func progressReporter(enabled bool, label string) parallel.Progress {
	if !enabled {
		return nil
	}
	return func(done, total int) {
		fmt.Fprintf(os.Stderr, "\r%s: %d/%d", label, done, total)
		if done == total {
			fmt.Fprintln(os.Stderr)
		}
	}
}

func ksUpTo(m int) []int {
	ks := make([]int, m)
	for i := range ks {
		ks[i] = i + 1
	}
	return ks
}

// writeFig10SVGs renders the Figure 10a grids as SVG heat maps when
// -csvdir is set.
func writeFig10SVGs(dir string, data *experiments.Fig10Data) error {
	if dir == "" {
		return nil
	}
	rows := make([]string, len(data.Ss))
	for i, sv := range data.Ss {
		rows[i] = fmt.Sprintf("%.2f", sv)
	}
	cols := make([]string, len(data.Ks))
	for j, kv := range data.Ks {
		cols[j] = fmt.Sprintf("%d", kv)
	}
	for _, grid := range []struct {
		name   string
		values [][]float64
	}{
		{"overlapping", data.Overlapping},
		{"disjoint", data.Disjoint},
	} {
		path := filepath.Join(dir, "fig10a-"+grid.name+".svg")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		err = flowsched.WriteHeatmapSVG(f, rows, cols, grid.values, 0, 100,
			"Figure 10a — max load % ("+grid.name+")")
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("heat map written to %s\n", path)
	}
	return nil
}

// writeCSV writes one experiment's data file when -csvdir is set.
func writeCSV(dir, name string, write func(io.Writer)) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	write(f)
	fmt.Printf("\ndata written to %s\n", path)
	return nil
}
