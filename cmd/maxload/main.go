// Command maxload solves the max-load Linear Program (15) of the paper for
// a popularity-biased cluster and a replication strategy, cross-checking
// the three solvers (simplex, max-flow bisection, Hall enumeration).
//
//	maxload -m 15 -s 1.25 -k 3 [-case worst|uniform|shuffled] [-csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"flowsched"
	"flowsched/internal/loadlp"
	"flowsched/internal/table"
)

func main() {
	m := flag.Int("m", 15, "cluster size")
	s := flag.Float64("s", 1.25, "Zipf popularity bias")
	caseName := flag.String("case", "worst", "popularity case: uniform|worst|shuffled")
	seed := flag.Int64("seed", 1, "random seed (shuffled case)")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	check := flag.Bool("check", true, "cross-check simplex, max-flow and Hall solvers")
	flag.Parse()

	var pcase flowsched.PopularityCase
	switch *caseName {
	case "uniform":
		pcase = flowsched.PopularityUniform
	case "worst":
		pcase = flowsched.PopularityWorst
	case "shuffled":
		pcase = flowsched.PopularityShuffled
	default:
		fmt.Fprintf(os.Stderr, "maxload: unknown case %q\n", *caseName)
		os.Exit(2)
	}
	rng := rand.New(rand.NewSource(*seed))
	weights := flowsched.PopularityWeights(pcase, *m, *s, rng)

	fmt.Printf("max-load analysis (LP (15)): m=%d, case=%s, s=%v\n\n", *m, pcase, *s)
	out := table.New("k", "overlapping %", "disjoint %", "gain", "solver agreement")
	for k := 1; k <= *m; k++ {
		ov := loadlp.NewModel(weights, flowsched.OverlappingReplication(k))
		dj := loadlp.NewModel(weights, flowsched.DisjointReplication(k))
		ovHall := ov.MaxLoadHall()
		djHall := dj.MaxLoadHall()
		agreement := "-"
		if *check {
			ovLP, err := ov.MaxLoadLP()
			if err != nil {
				log.Fatal(err)
			}
			ovFlow := ov.MaxLoadFlow(1e-8)
			djCF, err := dj.MaxLoadDisjoint()
			if err != nil {
				log.Fatal(err)
			}
			if abs(ovLP-ovHall) < 1e-5 && abs(ovFlow-ovHall) < 1e-5 && abs(djCF-djHall) < 1e-9 {
				agreement = "ok"
			} else {
				agreement = fmt.Sprintf("MISMATCH lp=%v flow=%v hall=%v", ovLP, ovFlow, ovHall)
			}
		}
		out.AddRow(k,
			fmt.Sprintf("%.1f", ov.MaxLoadPercent(ovHall)),
			fmt.Sprintf("%.1f", dj.MaxLoadPercent(djHall)),
			fmt.Sprintf("%.2fx", ovHall/djHall),
			agreement)
	}
	if *csv {
		out.RenderCSV(os.Stdout)
	} else {
		out.Render(os.Stdout)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
