// Command chaos runs the randomized soak harness: seed-driven trials over
// workload × replication × fault plan × router × retry policy, each audited
// against the schedule invariants (internal/audit) and cross-checked by a
// counting probe. Failing trials are shrunk to minimal repros and written
// as replayable JSON.
//
// Usage:
//
//	chaos [-trials 200] [-seed 1] [-maxm 12] [-maxn 300] [-repro DIR]
//	chaos -replay FILE
//
// Exit status: 0 when every trial audits clean (or the replayed repro no
// longer fails), 1 when violations were found (a -replay prints them to
// stderr), 2 on usage errors, 3 when -replay cannot open or parse the repro
// file. The 1-vs-3 split lets scripts tell "the bug is still there" from
// "the repro file is unusable".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"flowsched/internal/chaos"
	"flowsched/internal/obs"
)

func main() {
	trials := flag.Int("trials", 200, "number of randomized trials")
	seed := flag.Int64("seed", 1, "run seed; every trial derives from it deterministically")
	maxM := flag.Int("maxm", 12, "largest cluster size sampled")
	maxN := flag.Int("maxn", 300, "largest task count sampled")
	workers := flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
	reproDir := flag.String("repro", "", "directory to write repro JSON files for failing trials")
	replay := flag.String("replay", "", "replay a repro file instead of running a soak")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "chaos: unexpected arguments: %v\n", flag.Args())
		os.Exit(2)
	}

	if *replay != "" {
		os.Exit(replayRepro(*replay))
	}
	if *trials < 1 {
		fmt.Fprintln(os.Stderr, "chaos: -trials must be at least 1")
		os.Exit(2)
	}

	cfg := chaos.Config{
		Trials:  *trials,
		Seed:    *seed,
		MaxM:    *maxM,
		MaxN:    *maxN,
		Workers: *workers,
	}
	sum, err := chaos.Run(cfg, func(format string, args ...any) {
		fmt.Printf(format+"\n", args...)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		os.Exit(2)
	}
	if sum.Ok() {
		fmt.Printf("chaos: all %d trials clean (seed %d)\n", sum.Trials, *seed)
		return
	}
	if *reproDir != "" {
		if err := os.MkdirAll(*reproDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
			os.Exit(2)
		}
		for _, f := range sum.Failures {
			if f.Repro == nil {
				continue
			}
			path := filepath.Join(*reproDir, fmt.Sprintf("repro-trial%d-seed%d.json", f.Params.Trial, f.Params.Seed))
			if err := writeRepro(path, f); err != nil {
				fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
				os.Exit(2)
			}
			fmt.Printf("chaos: wrote %s\n", path)
			if len(f.Events) > 0 {
				epath := filepath.Join(*reproDir, fmt.Sprintf("repro-trial%d-seed%d.events.jsonl", f.Params.Trial, f.Params.Seed))
				if err := writeEvents(epath, f.Events); err != nil {
					fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
					os.Exit(2)
				}
				fmt.Printf("chaos: wrote %s\n", epath)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "chaos: %d of %d trials failed\n", len(sum.Failures), sum.Trials)
	os.Exit(1)
}

// writeEvents dumps the failure's flight-recorder event stream next to the
// repro, so a soak failure ships with the raw sequence that produced it.
func writeEvents(path string, events []obs.FlightEvent) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := obs.WriteFlightEvents(out, events); err != nil {
		return err
	}
	return out.Close()
}

func writeRepro(path string, f chaos.Failure) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	if err := f.Repro.WriteJSON(out); err != nil {
		return err
	}
	return out.Close()
}

func replayRepro(path string) int {
	// An unreadable or unparseable repro file exits 3 — distinct from both a
	// usage error (2) and a still-failing replay (1), so CI scripts looping
	// over a repro directory can separate stale artifacts from live bugs.
	in, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		return 3
	}
	defer in.Close()
	repro, err := chaos.ReadRepro(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %s: %v\n", path, err)
		return 3
	}
	vs, err := repro.Replay(nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos: %v\n", err)
		return 2
	}
	if len(vs) == 0 {
		fmt.Printf("chaos: repro %s no longer fails\n", path)
		return 0
	}
	fmt.Fprintf(os.Stderr, "chaos: repro %s still fails with %d violation(s):\n", path, len(vs))
	for _, v := range vs {
		fmt.Fprintf(os.Stderr, "  %s\n", v)
	}
	return 1
}
