// Command bench runs the registered benchmark suite (internal/benchreg)
// and compares it against the newest checked-in BENCH_<n>.json baseline.
//
// Default mode is the regression gate used by `make bench`: run the suite,
// print a baseline comparison, and exit non-zero if any benchmark's ns/op
// grew past the threshold. With -update the run is also written as the
// next BENCH_<n>.json baseline (or to -out).
//
//	go run ./cmd/bench                 # regression check vs newest baseline
//	go run ./cmd/bench -update         # ...and write the next baseline
//	go run ./cmd/bench -bench Router   # only the router microbenchmarks
//	go run ./cmd/bench -list           # show suite names and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"flowsched/internal/benchreg"
)

func main() {
	testing.Init() // registers -test.* flags so benchtime is settable
	var (
		dir       = flag.String("dir", ".", "directory holding BENCH_<n>.json baselines")
		out       = flag.String("out", "", "explicit output path (implies -update)")
		update    = flag.Bool("update", false, "write the run as the next BENCH_<n>.json baseline")
		threshold = flag.Float64("threshold", benchreg.DefaultThreshold,
			"relative ns/op growth tolerated before failing")
		benchtime = flag.String("benchtime", "0.25s", "per-benchmark measurement time (test.benchtime)")
		pattern   = flag.String("bench", "", "regexp selecting benchmarks to run (default all)")
		list      = flag.Bool("list", false, "list registered benchmarks and exit")
	)
	flag.Parse()
	if *list {
		for _, name := range benchreg.Names() {
			fmt.Println(name)
		}
		return
	}
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fatal(err)
	}

	entries, err := benchreg.RunMatching(*pattern, func(name string) {
		fmt.Fprintf(os.Stderr, "bench: running %s\n", name)
	})
	if err != nil {
		fatal(err)
	}
	if len(entries) == 0 {
		fatal(fmt.Errorf("no benchmarks match -bench %q", *pattern))
	}
	report := benchreg.NewReport(entries)
	for _, e := range entries {
		fmt.Printf("%-24s %12.1f ns/op %10d B/op %8d allocs/op\n",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}

	baseline, err := benchreg.LatestBaseline(*dir)
	if err != nil {
		fatal(err)
	}
	regressed := false
	if baseline == "" {
		fmt.Println("\nno BENCH_<n>.json baseline found; skipping comparison")
	} else {
		base, err := benchreg.ReadFile(baseline)
		if err != nil {
			fatal(err)
		}
		deltas := benchreg.Compare(base, report, *threshold)
		fmt.Printf("\nvs %s (threshold %+.0f%% ns/op):\n", baseline, *threshold*100)
		for _, d := range deltas {
			mark := "ok"
			if d.Regress {
				mark = "REGRESSION"
				regressed = true
			}
			fmt.Printf("%-24s %12.1f -> %10.1f ns/op  %+6.1f%%  %s\n",
				d.Name, d.BaseNs, d.CurNs, (d.Ratio-1)*100, mark)
		}
	}

	if *update || *out != "" {
		path := *out
		if path == "" {
			if path, err = benchreg.NextPath(*dir); err != nil {
				fatal(err)
			}
		}
		if err := report.WriteFile(path); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s (%d entries)\n", path, len(entries))
	}
	if regressed {
		fmt.Fprintln(os.Stderr, "bench: ns/op regression detected")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
