// Command adversary runs the lower-bound constructions of Section 6
// against a chosen scheduler and reports measured vs proven competitive
// ratios.
//
//	adversary -which stream -m 15 -k 3 -tie min
//	adversary -which inclusive -m 16
//	adversary -which all -m 16 -k 3
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"flowsched"
)

func main() {
	which := flag.String("which", "all", "adversary: inclusive|fixedk|nested|interval2|stream|padded|all")
	m := flag.Int("m", 15, "machines (rounded per theorem where required)")
	k := flag.Int("k", 3, "set size where applicable")
	tieName := flag.String("tie", "min", "EFT tie-break for stream/padded: min|max|rand")
	p := flag.Float64("p", 0, "processing time for Theorems 3/4/7 (0 = default)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var tie flowsched.TieBreak
	switch *tieName {
	case "min":
		tie = flowsched.TieMin
	case "max":
		tie = flowsched.TieMax
	case "rand":
		tie = flowsched.TieRand(rand.New(rand.NewSource(*seed)))
	default:
		fmt.Fprintf(os.Stderr, "adversary: unknown tie-break %q\n", *tieName)
		os.Exit(2)
	}

	runs := map[string]func() (*flowsched.AdversaryResult, error){
		"inclusive": func() (*flowsched.AdversaryResult, error) {
			return flowsched.AdversaryInclusive(flowsched.NewEFT(tie), *m, *p)
		},
		"fixedk": func() (*flowsched.AdversaryResult, error) {
			return flowsched.AdversaryFixedSizeK(flowsched.NewEFT(tie), *m, *k, *p)
		},
		"nested": func() (*flowsched.AdversaryResult, error) {
			return flowsched.AdversaryNested(flowsched.NewEFT(tie), *m)
		},
		"interval2": func() (*flowsched.AdversaryResult, error) {
			pp := *p
			if pp <= 0 {
				pp = 1000
			}
			return flowsched.AdversaryInterval(flowsched.NewEFT(tie), pp)
		},
		"stream": func() (*flowsched.AdversaryResult, error) {
			return flowsched.AdversaryEFTStream(tie, *m, *k, 0)
		},
		"padded": func() (*flowsched.AdversaryResult, error) {
			return flowsched.AdversaryEFTStreamPadded(tie, *m, *k, 0)
		},
	}
	order := []string{"inclusive", "fixedk", "nested", "interval2", "stream", "padded"}

	names := []string{*which}
	if *which == "all" {
		names = order
	}
	for _, name := range names {
		run, ok := runs[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "adversary: unknown adversary %q\n", name)
			os.Exit(2)
		}
		res, err := run()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println(res)
		if res.Notes != "" {
			fmt.Printf("  %s\n", res.Notes)
		}
	}
}
