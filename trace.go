package flowsched

import (
	"io"

	"flowsched/internal/obs"
	"flowsched/internal/sim"
	"flowsched/internal/trace"
	"flowsched/internal/viz"
)

// Observability: event traces derived from schedules.

// TraceEvent is one arrival/start/completion record of a schedule's trace.
type TraceEvent = trace.Event

// Trace kinds.
const (
	TraceCompletion = trace.Completion
	TraceArrival    = trace.Arrival
	TraceStart      = trace.Start
)

// Trace derives the time-ordered event trace of a schedule (arrivals,
// starts, completions).
func Trace(s *Schedule) []TraceEvent { return trace.FromSchedule(s) }

// WriteTrace renders a trace one event per line.
func WriteTrace(w io.Writer, events []TraceEvent) { trace.Write(w, events) }

// PeakBacklog returns the maximum number of released-but-unfinished tasks
// over a trace and when it occurs.
func PeakBacklog(events []TraceEvent) (int, Time) { return trace.PeakBacklog(events) }

// WriteMachineTimeline renders machine j's busy periods from a schedule.
func WriteMachineTimeline(w io.Writer, s *Schedule, j int) { trace.MachineTimeline(w, s, j) }

// WriteGanttSVG renders a schedule as a standalone SVG Gantt chart
// (pxPerUnit ≤ 0 auto-fits to ~900px).
func WriteGanttSVG(w io.Writer, s *Schedule, pxPerUnit float64) error {
	return viz.GanttSVG(w, s, pxPerUnit)
}

// WriteHeatmapSVG renders a labeled matrix as an SVG heat map (lo ≥ hi
// auto-scales to the data range).
func WriteHeatmapSVG(w io.Writer, rows, cols []string, values [][]float64, lo, hi float64, title string) error {
	return viz.HeatmapSVG(w, rows, cols, values, lo, hi, title)
}

// In-flight observability (internal/obs): probes that watch a simulation
// while it runs, instead of post-processing the finished schedule.
type (
	// Probe observes a simulation run in flight; see internal/obs.Probe
	// for the hook set and event-time contract.
	Probe = obs.Probe
	// BaseProbe is a no-op Probe for embedding in custom probes.
	BaseProbe = obs.BaseProbe
	// Histogram is a streaming log-bucketed distribution with bounded
	// memory and quantile queries (max relative error √growth − 1).
	Histogram = obs.Histogram
	// HistogramProbe streams completed requests' flow times and stretches
	// into two Histograms.
	HistogramProbe = obs.HistogramProbe
	// TimeSeries records per-server queue lengths, the backlog, the
	// in-flight max-flow watermark and utilization at a fixed interval.
	TimeSeries = obs.Sampler
	// TimeSeriesSample is one instant of a TimeSeries.
	TimeSeriesSample = obs.Sample
	// JSONLSink streams the run's events as newline-delimited JSON.
	JSONLSink = obs.JSONLSink
	// ProbeCounters tallies the run's event totals with Prometheus-style
	// text exposition.
	ProbeCounters = obs.Counters
)

// NewHistogram returns a streaming histogram with the default bucket scheme
// (eight buckets per doubling).
func NewHistogram() *Histogram { return obs.NewHistogram() }

// NewHistogramProbe returns a probe streaming flow times and stretches into
// fresh default histograms.
func NewHistogramProbe() *HistogramProbe { return obs.NewHistogramProbe() }

// NewTimeSeries returns a sampler for m servers at interval dt (dt must be
// positive).
func NewTimeSeries(m int, dt Time) (*TimeSeries, error) { return obs.NewSampler(m, dt) }

// NewJSONLSink returns a probe writing one JSON event per line to w
// (buffered; flushed at OnDone, or call Flush).
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// ReplayJSONL reconstructs the trace of a run from its JSONL event stream;
// for a fault-free run it equals Trace of the run's schedule exactly.
func ReplayJSONL(r io.Reader) ([]TraceEvent, error) { return obs.ReplayTrace(r) }

// MultiProbe fans one event stream out to several probes in order (nil
// entries are skipped; all-nil yields nil, which simulates unobserved).
func MultiProbe(probes ...Probe) Probe { return obs.Multi(probes...) }

// Observe is Simulate with a probe attached. A nil probe is exactly
// Simulate: the hooks are nil-guarded, so the unobserved hot path stays
// allocation-free.
func Observe(inst *Instance, router Router, probe Probe) (*Schedule, *SimMetrics, error) {
	return sim.RunProbed(inst, router, probe)
}

// ObserveFaulty is SimulateFaulty with a probe attached (completions are
// reported only when final; crashes surface as failover/retry/drop hooks).
func ObserveFaulty(inst *Instance, router Router, plan *FaultPlan, policy RetryPolicy, probe Probe) (*Schedule, *FaultMetrics, error) {
	return sim.RunFaultyProbed(inst, router, plan, policy, probe)
}

// WriteTimeSeriesSVG renders a sampled run as an SVG chart: backlog area,
// per-server queue lines, max-flow watermark.
func WriteTimeSeriesSVG(w io.Writer, samples []TimeSeriesSample, title string) error {
	return viz.TimeSeriesSVG(w, samples, title)
}

// Causal span tracing (internal/obs.Tracer): per-task span trees assembled
// from the probe hooks, bounded-memory tail retention, and a flight recorder
// keeping the last raw events of a run.
type (
	// Tracer assembles per-task causal traces (queued → attempts → terminal
	// state) from the probe stream; attach it like any other Probe.
	Tracer = obs.Tracer
	// TaskTrace is one task's causal history: release, attempts, terminal
	// state and flow.
	TaskTrace = obs.TaskTrace
	// AttemptSpan is one dispatch of a task onto a server: its forecast
	// service interval and how the attempt ended.
	AttemptSpan = obs.AttemptSpan
	// TraceRetention bounds a Tracer's memory; build with TraceKeepAll or
	// TraceKeepWorst.
	TraceRetention = obs.Retention
	// FlightRecorder keeps the last N raw engine events in a fixed ring —
	// the always-on crash recorder behind chaos repro dumps and audit
	// evidence.
	FlightRecorder = obs.FlightRecorder
	// FlightEvent is one raw event held by a FlightRecorder.
	FlightEvent = obs.FlightEvent
)

// TraceKeepAll retains every task's trace (memory grows with n).
func TraceKeepAll() TraceRetention { return obs.KeepAll() }

// TraceKeepWorst retains only the k tasks with the largest flow times
// (unfinished tasks rank worst), in O(k) memory.
func TraceKeepWorst(k int) TraceRetention { return obs.KeepWorst(k) }

// NewTracer returns a span-tracing probe with the given retention.
func NewTracer(r TraceRetention) *Tracer { return obs.NewTracer(r) }

// NewFlightRecorder returns a flight recorder keeping the last size events
// (size ≤ 0 means the default ring of 4096).
func NewFlightRecorder(size int) *FlightRecorder { return obs.NewFlightRecorder(size) }

// WriteTraceTimelineSVG renders task traces as a span Gantt, one row per
// trace in the given order — pass Tracer.Worst(k) for a tail postmortem.
func WriteTraceTimelineSVG(w io.Writer, traces []*TaskTrace, makespan Time, title string) error {
	return viz.TraceTimelineSVG(w, traces, makespan, title)
}
