package flowsched

import (
	"io"

	"flowsched/internal/trace"
	"flowsched/internal/viz"
)

// Observability: event traces derived from schedules.

// TraceEvent is one arrival/start/completion record of a schedule's trace.
type TraceEvent = trace.Event

// Trace kinds.
const (
	TraceCompletion = trace.Completion
	TraceArrival    = trace.Arrival
	TraceStart      = trace.Start
)

// Trace derives the time-ordered event trace of a schedule (arrivals,
// starts, completions).
func Trace(s *Schedule) []TraceEvent { return trace.FromSchedule(s) }

// WriteTrace renders a trace one event per line.
func WriteTrace(w io.Writer, events []TraceEvent) { trace.Write(w, events) }

// PeakBacklog returns the maximum number of released-but-unfinished tasks
// over a trace and when it occurs.
func PeakBacklog(events []TraceEvent) (int, Time) { return trace.PeakBacklog(events) }

// WriteMachineTimeline renders machine j's busy periods from a schedule.
func WriteMachineTimeline(w io.Writer, s *Schedule, j int) { trace.MachineTimeline(w, s, j) }

// WriteGanttSVG renders a schedule as a standalone SVG Gantt chart
// (pxPerUnit ≤ 0 auto-fits to ~900px).
func WriteGanttSVG(w io.Writer, s *Schedule, pxPerUnit float64) error {
	return viz.GanttSVG(w, s, pxPerUnit)
}

// WriteHeatmapSVG renders a labeled matrix as an SVG heat map (lo ≥ hi
// auto-scales to the data range).
func WriteHeatmapSVG(w io.Writer, rows, cols []string, values [][]float64, lo, hi float64, title string) error {
	return viz.HeatmapSVG(w, rows, cols, values, lo, hi, title)
}
