package flowsched_test

import (
	"math/rand"
	"reflect"
	"testing"

	"flowsched"
)

// resilienceCounter counts the facade's resilience event stream.
type resilienceCounter struct {
	flowsched.BaseProbe
	opens, probes, closes, budgetDrops int
}

func (r *resilienceCounter) OnBreakerOpen(server int, at flowsched.Time) { r.opens++ }
func (r *resilienceCounter) OnBreakerProbe(server, task int, at flowsched.Time) {
	r.probes++
}
func (r *resilienceCounter) OnBreakerClose(server int, at flowsched.Time) { r.closes++ }
func (r *resilienceCounter) OnRetryBudgetDrop(task, attempts int, at flowsched.Time) {
	r.budgetDrops++
}

// TestFacadeResilient exercises the resilience facade end to end: a nil
// config reproduces SimulateHedged bit for bit, and a flapping outage under
// a retry budget plus breakers trips the breaker, drops over-budget retries
// and reports the ledger — with the event stream visible through
// ResilienceObserver.
func TestFacadeResilient(t *testing.T) {
	inst, err := flowsched.GenerateWorkload(flowsched.WorkloadConfig{
		M: 4, N: 300, Rate: flowsched.RateForLoad(0.6, 4),
		Strategy: flowsched.OverlappingReplication(3),
	}, rand.New(rand.NewSource(33)))
	if err != nil {
		t.Fatal(err)
	}
	plan := flowsched.EmptyFaultPlan(4)
	for i := 0; i < 8; i++ {
		from := flowsched.Time(10 * i)
		plan.Down(0, from, from+6)
	}
	policy := flowsched.RetryPolicy{Backoff: 1, BackoffFactor: 2}

	// Nil resilience config: byte-identical to SimulateHedged.
	sH, mH, err := flowsched.SimulateHedged(inst, flowsched.RoundRobinRouter(), plan, policy, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sR, mR, err := flowsched.SimulateResilient(inst, flowsched.RoundRobinRouter(), plan, policy, nil, nil, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sH, sR) || !reflect.DeepEqual(mH.Flows, mR.Flows) {
		t.Fatal("nil resilience config diverges from SimulateHedged")
	}
	if mR.BreakerOpens != 0 || mR.BreakerSpans != nil || mR.BudgetDropped != nil {
		t.Fatal("nil resilience config produced resilience state")
	}

	// The protected run: jittered backoff, a tight retry budget and
	// per-server breakers against the flapping server.
	rcfg := &flowsched.ResilienceConfig{
		Jitter:      flowsched.JitterFull,
		Seed:        7,
		RetryBudget: 0.05,
		BudgetBurst: 2,
		Breaker: &flowsched.BreakerConfig{
			Window: 2, FailureThreshold: 0.5, Cooldown: 8, HalfOpenProbes: 1,
		},
	}
	probe := &resilienceCounter{}
	_, em, err := flowsched.SimulateResilient(inst, flowsched.RoundRobinRouter(), plan, policy, nil, nil, nil, rcfg, probe)
	if err != nil {
		t.Fatal(err)
	}
	if em.BreakerOpens == 0 {
		t.Fatal("flapping server never tripped the breaker")
	}
	if em.RetriesIssued+em.RetriesDropped != em.RetriesRequested {
		t.Fatalf("retry ledger broken: %d issued + %d dropped ≠ %d requested",
			em.RetriesIssued, em.RetriesDropped, em.RetriesRequested)
	}
	if len(em.BreakerSpans) != em.BreakerOpens {
		t.Fatalf("%d spans for %d opens", len(em.BreakerSpans), em.BreakerOpens)
	}
	if probe.opens != em.BreakerOpens || probe.probes != em.BreakerProbes ||
		probe.closes != em.BreakerCloses || probe.budgetDrops != em.RetriesDropped {
		t.Fatalf("observer saw %d/%d/%d/%d, metrics report %d/%d/%d/%d",
			probe.opens, probe.probes, probe.closes, probe.budgetDrops,
			em.BreakerOpens, em.BreakerProbes, em.BreakerCloses, em.RetriesDropped)
	}

	// A bad config is rejected up front.
	bad := &flowsched.ResilienceConfig{Jitter: "sometimes"}
	if _, _, err := flowsched.SimulateResilient(inst, flowsched.RoundRobinRouter(), nil, policy, nil, nil, nil, bad, nil); err == nil {
		t.Fatal("unknown jitter mode accepted")
	}
}
