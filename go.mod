module flowsched

go 1.22
