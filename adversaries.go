package flowsched

import (
	"flowsched/internal/adversary"
)

// Adversary constructions of Section 6: each runs a lower-bound instance
// against a scheduler and reports the measured vs proven competitive ratio.

// AdversaryResult reports one adversary run (instance, both schedules,
// measured ratio, proven bound).
type AdversaryResult = adversary.Result

// AdversaryInclusive runs the Theorem 3 adversary (inclusive sets,
// immediate dispatch, ratio ≥ ⌊log2(m)+1⌋). p ≤ 0 picks a default
// (1000·log2 m).
func AdversaryInclusive(alg OnlineScheduler, m int, p Time) (*AdversaryResult, error) {
	return adversary.Inclusive(alg, m, p)
}

// AdversaryFixedSizeK runs the Theorem 4 adversary (size-k sets, immediate
// dispatch, ratio ≥ ⌊log_k(m)⌋).
func AdversaryFixedSizeK(alg OnlineScheduler, m, k int, p Time) (*AdversaryResult, error) {
	return adversary.FixedSizeK(alg, m, k, p)
}

// AdversaryNested runs the Theorem 5 adversary (nested sets, any online
// algorithm, ratio ≥ ⌊log2(m)+2⌋/3).
func AdversaryNested(alg OnlineScheduler, m int) (*AdversaryResult, error) {
	return adversary.Nested(alg, m)
}

// AdversaryInterval runs the Theorem 7 adversary (fixed-size intervals,
// any online algorithm, ratio ≥ 2; m = 4, k = 2).
func AdversaryInterval(alg OnlineScheduler, p Time) (*AdversaryResult, error) {
	return adversary.IntervalAnyOnline(alg, p)
}

// AdversaryEFTStream runs the Theorem 8/9 stream against EFT with the
// given tie-break for `steps` unit rounds (≤ 0: the paper's m³ bound);
// EFT-Min reaches Fmax = m − k + 1 against OPT = 1.
func AdversaryEFTStream(tie TieBreak, m, k, steps int) (*AdversaryResult, error) {
	return adversary.EFTStream(tie, m, k, steps)
}

// AdversaryEFTStreamPadded runs the Theorem 10 padded stream, which forces
// Fmax ≥ m − k + 1 for EFT with ANY tie-break.
func AdversaryEFTStreamPadded(tie TieBreak, m, k, steps int) (*AdversaryResult, error) {
	return adversary.EFTStreamPadded(tie, m, k, steps)
}

// EFTStableProfile returns the stable profile w_τ(j) = min(m − j, m − k)
// that the Theorem 8 stream drives EFT-Min toward.
func EFTStableProfile(m, k int) []Time { return adversary.StableProfile(m, k) }

// EFTStreamProfiles returns the schedule profiles w_t of EFT on the
// Theorem 8 stream at each integer time (Figures 3-4 data).
func EFTStreamProfiles(tie TieBreak, m, k, steps int) [][]Time {
	return adversary.StreamProfiles(tie, m, k, steps)
}

// EFTStreamSchedule returns the instance and EFT schedule of the first
// rounds of the Theorem 8 stream (Figure 3 rendering).
func EFTStreamSchedule(tie TieBreak, m, k, steps int) (*Instance, *Schedule) {
	return adversary.StreamSchedule(tie, m, k, steps)
}
