// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (regenerating its data at reduced size — run cmd/experiments
// for paper-sized output) plus the ablation benches called out in
// DESIGN.md §4.
package flowsched_test

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"flowsched"
	"flowsched/internal/benchreg"
	"flowsched/internal/experiments"
	"flowsched/internal/loadlp"
	"flowsched/internal/popularity"
	"flowsched/internal/replicate"
	"flowsched/internal/sched"
	"flowsched/internal/sim"
	"flowsched/internal/workload"
)

// --- Table 1: FIFO (3 − 2/m) verification --------------------------------

func BenchmarkTable1FIFORatio(b *testing.B) {
	cfg := experiments.Table1Config{Ms: []int{1, 2, 3}, N: 8, Trials: 10, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2: one bench per theorem row ----------------------------------

func BenchmarkTable2Theorem3Inclusive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := flowsched.AdversaryInclusive(flowsched.NewEFT(flowsched.TieMin), 16, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Theorem4FixedK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := flowsched.AdversaryFixedSizeK(flowsched.NewEFT(flowsched.TieMin), 16, 2, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Theorem5Nested(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := flowsched.AdversaryNested(flowsched.NewEFT(flowsched.TieMin), 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Theorem7Interval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := flowsched.AdversaryInterval(flowsched.NewEFT(flowsched.TieMin), 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Theorem8Stream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := flowsched.AdversaryEFTStream(flowsched.TieMin, 10, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Theorem9StreamRand(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tie := flowsched.TieRand(rand.New(rand.NewSource(int64(i))))
		if _, err := flowsched.AdversaryEFTStream(tie, 10, 3, 2000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Theorem10Padded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := flowsched.AdversaryEFTStreamPadded(flowsched.TieMax, 10, 3, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures --------------------------------------------------------------

func BenchmarkFig1StructureClassify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure1(io.Discard, 12, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3AdversarySchedule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure3(io.Discard, 6, 3, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4ProfileConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure4(io.Discard, 8, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8PopularityDistributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure8(io.Discard, 6, 1, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9ReplicationExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure9(io.Discard, 6, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func fig10Bench() experiments.Fig10Config {
	return experiments.Fig10Config{M: 10, SMin: 0, SMax: 2, SStep: 0.5,
		Ks: []int{1, 2, 3, 5, 10}, Perms: 10, Seed: 1}
}

func BenchmarkFig10aMaxLoadSweep(b *testing.B) {
	cfg := fig10Bench()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SweepFig10(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10bGainMatrix(b *testing.B) {
	cfg := fig10Bench()
	data, err := experiments.SweepFig10(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := data.Ratio(); len(r) == 0 {
			b.Fatal("empty ratio")
		}
	}
}

func BenchmarkFig11Simulation(b *testing.B) {
	cfg := experiments.Fig11Config{M: 10, K: 3, N: 2000, Reps: 2, SBias: 1,
		Loads: []float64{0.5, 0.9}, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SweepFig11(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §4) ----------------------------------------------

// benchInstance builds an unrestricted Poisson instance for dispatch
// benches (nil processing sets, unlike workload.Generate whose default
// strategy pins each task to its primary).
func benchInstance(m, n int) *flowsched.Instance {
	rng := rand.New(rand.NewSource(7))
	tasks := make([]flowsched.Task, n)
	t := 0.0
	for i := range tasks {
		t += rng.ExpFloat64() / (0.9 * float64(m))
		tasks[i] = flowsched.Task{Release: t, Proc: 1}
	}
	return flowsched.NewInstance(m, tasks)
}

func BenchmarkAblationEFTDispatchLinear(b *testing.B) {
	inst := benchInstance(256, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.NewEFT(sched.MinTie{}).Run(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationEFTDispatchHeap(b *testing.B) {
	inst := benchInstance(256, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.NewEFTHeap().Run(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func restrictedInstance(m, k, n int) *flowsched.Instance {
	rng := rand.New(rand.NewSource(7))
	inst, err := workload.Generate(workload.Config{
		M: m, N: n, Rate: 0.8 * float64(m),
		Weights:  popularity.Weights(popularity.Shuffled, m, 1, rng),
		Strategy: replicate.Overlapping{K: k},
	}, rng)
	if err != nil {
		panic(err)
	}
	return inst
}

func BenchmarkAblationTieBreakMin(b *testing.B) {
	inst := restrictedInstance(15, 3, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.NewEFT(sched.MinTie{}).Run(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTieBreakMax(b *testing.B) {
	inst := restrictedInstance(15, 3, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.NewEFT(sched.MaxTie{}).Run(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTieBreakRand(b *testing.B) {
	inst := restrictedInstance(15, 3, 10000)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.NewEFT(sched.RandTie{Rng: rng}).Run(inst); err != nil {
			b.Fatal(err)
		}
	}
}

func maxLoadModel() *loadlp.Model {
	w := popularity.Zipf(15, 1.25)
	return loadlp.NewModel(w, replicate.Overlapping{K: 3})
}

func BenchmarkAblationMaxLoadHall(b *testing.B) {
	mo := maxLoadModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mo.MaxLoadHall()
	}
}

func BenchmarkAblationMaxLoadSimplex(b *testing.B) {
	mo := maxLoadModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mo.MaxLoadLP(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationMaxLoadFlowBisect(b *testing.B) {
	mo := maxLoadModel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mo.MaxLoadFlow(1e-8)
	}
}

func BenchmarkAblationRouterEFT(b *testing.B) {
	inst := restrictedInstance(15, 3, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.Run(inst, sim.EFTRouter{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRouterJSQ(b *testing.B) {
	inst := restrictedInstance(15, 3, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.Run(inst, sim.JSQRouter{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationExtensionStrategies(b *testing.B) {
	cfg := experiments.ExtensionConfig{M: 10, K: 3, N: 1000, Reps: 1, SBias: 1, Load: 0.5, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtensionStrategies(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- New-substrate benches (ring, preemptive, key workloads) ---------------

func BenchmarkRingReplicaSet(b *testing.B) {
	r, err := flowsched.NewRing(64, 32)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = "user:" + string(rune('a'+i%26)) + string(rune('0'+i%10))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.ReplicaSet(keys[i%len(keys)], 3)
	}
}

func BenchmarkPreemptiveOptimal(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tasks := make([]flowsched.Task, 40)
	tm := 0.0
	for i := range tasks {
		tm += rng.ExpFloat64()
		tasks[i] = flowsched.Task{Release: tm, Proc: 0.5 + rng.Float64()*2}
	}
	inst := flowsched.NewInstance(4, tasks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flowsched.PreemptiveOptimalFmax(inst, 1e-6); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKeyWorkloadGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := flowsched.GenerateKeyWorkload(flowsched.KeyWorkloadConfig{
			M: 15, N: 10000, Rate: 12, NumKeys: 1000, KeyBias: 1, K: 3, VNodes: 32,
		}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInstanceJSONRoundTrip(b *testing.B) {
	inst := restrictedInstance(15, 3, 2000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := flowsched.WriteInstanceJSON(&buf, inst); err != nil {
			b.Fatal(err)
		}
		if _, err := flowsched.ReadInstanceJSON(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2NestedPhases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure2(io.Discard, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5and6PlateauPropagation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure5and6(io.Discard, 6, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7PaddedStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure7(io.Discard, 6, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRobustnessSweep(b *testing.B) {
	cfg := experiments.RobustnessConfig{M: 8, K: 3, N: 1500, Reps: 1, Load: 0.7, SBias: 1,
		Noises: []float64{0, 0.5}, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Robustness(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvergenceStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Convergence(io.Discard, []int{8}, []int{3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRouterPo2(b *testing.B) {
	inst := restrictedInstance(15, 3, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sim.Run(inst, sim.PowerOfTwoRouter{Rng: rand.New(rand.NewSource(int64(i)))}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadFromTrace(b *testing.B) {
	var buf bytes.Buffer
	inst := restrictedInstance(15, 3, 5000)
	if err := flowsched.WorkloadToTrace(&buf, inst); err != nil {
		b.Fatal(err)
	}
	src := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := flowsched.WorkloadFromTrace(bytes.NewReader(src), 15, flowsched.OverlappingReplication(3)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteFanout(b *testing.B) {
	cfg := experiments.WritesConfig{M: 8, K: 3, N: 1500, Reps: 1, Rate: 0.35 * 8, SBias: 1,
		Fractions: []float64{0, 0.5}, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.WriteFanout(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPopularityDrift(b *testing.B) {
	cfg := experiments.DriftConfig{M: 8, K: 3, N: 1500, Reps: 1, Load: 0.5, SBias: 1,
		Segments: []int{1, 4}, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.PopularityDrift(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Hot-path suite (internal/benchreg) ------------------------------------
//
// The benchmark-regression harness (cmd/bench, `make bench`) owns the
// hot-path suite; these wrappers expose it to `go test -bench` so both
// entry points measure the same code. See DESIGN.md §7.

func benchregWrap(b *testing.B, name string) {
	fn := benchreg.Get(name)
	if fn == nil {
		b.Fatalf("benchreg suite has no benchmark %q", name)
	}
	fn(b)
}

func BenchmarkRouterEFTPick(b *testing.B)        { benchregWrap(b, "RouterEFTPick") }
func BenchmarkRouterEFTPickFullSet(b *testing.B) { benchregWrap(b, "RouterEFTPickFullSet") }
func BenchmarkRouterJSQPick(b *testing.B)        { benchregWrap(b, "RouterJSQPick") }
func BenchmarkSimRunEFT(b *testing.B)            { benchregWrap(b, "SimRunEFT") }
func BenchmarkSimRunEFTMinFullSet(b *testing.B)  { benchregWrap(b, "SimRunEFTMinFullSet") }
func BenchmarkSimRunJSQ(b *testing.B)            { benchregWrap(b, "SimRunJSQ") }
func BenchmarkProbeOverheadSimOff(b *testing.B)  { benchregWrap(b, "ProbeOverheadSimOff") }
func BenchmarkProbeOverheadSimHist(b *testing.B) { benchregWrap(b, "ProbeOverheadSimHist") }
func BenchmarkSchedFIFORun(b *testing.B)         { benchregWrap(b, "SchedFIFORun") }
func BenchmarkStatsSummarize(b *testing.B)       { benchregWrap(b, "StatsSummarize") }
func BenchmarkEventqEFTMinDispatch(b *testing.B) { benchregWrap(b, "EventqEFTMinDispatch") }
