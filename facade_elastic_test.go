package flowsched_test

import (
	"math/rand"
	"reflect"
	"testing"

	"flowsched"
)

// TestFacadeElastic exercises the elastic-membership facade end to end: a
// scripted scale-down/scale-up run produces a membership log and churn
// counters, a nil config reproduces SimulateGuarded bit for bit, and the
// effective-set walk is exposed.
func TestFacadeElastic(t *testing.T) {
	inst, err := flowsched.GenerateWorkload(flowsched.WorkloadConfig{
		M: 6, N: 300, Rate: flowsched.RateForLoad(0.7, 6),
		Strategy: flowsched.OverlappingReplication(3),
	}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	router := flowsched.EFTRouter(flowsched.TieMin)

	// Nil elastic config: byte-identical to SimulateGuarded.
	sG, mG, err := flowsched.SimulateGuarded(inst, router, nil, flowsched.RetryPolicy{}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sE, mE, err := flowsched.SimulateElastic(inst, router, nil, flowsched.RetryPolicy{}, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sG, sE) || !reflect.DeepEqual(mG.Flows, mE.Flows) {
		t.Fatal("nil elastic config diverges from SimulateGuarded")
	}
	if mE.Membership != nil || mE.Dispatched != nil {
		t.Fatal("nil elastic config produced a membership log")
	}

	// Scripted churn: drain two machines mid-run, add one back with warm-up.
	horizon := mG.Makespan
	ecfg := &flowsched.ElasticConfig{
		Initial: 6, Min: 3, Max: 6, WarmUp: 0.5,
		Script: []flowsched.ScaleEvent{
			{At: horizon / 4, Delta: -2},
			{At: horizon / 2, Delta: 1},
		},
	}
	_, em, err := flowsched.SimulateElastic(inst, router, nil, flowsched.RetryPolicy{}, nil, ecfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if em.Membership == nil || len(em.Membership.Changes) == 0 {
		t.Fatal("scripted churn left no membership log")
	}
	if em.ScaleDowns != 2 || em.ScaleUps != 1 {
		t.Fatalf("scale counters: %d down, %d up; want 2 and 1", em.ScaleDowns, em.ScaleUps)
	}
	if em.MachineHours <= 0 || em.MachineHours >= flowsched.Time(6)*em.Horizon {
		t.Fatalf("machine-hours %v implausible for a shrunk run over horizon %v",
			em.MachineHours, em.Horizon)
	}
	// No task lost: every task either completed (flow > 0 recorded) and none
	// were dropped, rejected or shed on this fault-free, unguarded run.
	for i := range inst.Tasks {
		if em.Dropped[i] {
			t.Fatalf("task %d lost to a drain", i)
		}
	}

	// The effective-set walk: members {0,1,3}, walk of width 2 from slot 2
	// lands on {3, 0}.
	got := flowsched.EffectiveSet([]bool{true, true, false, true, false, false}, 2, 2)
	want := flowsched.ProcSet{0, 3}
	if !reflect.DeepEqual(append(flowsched.ProcSet{}, got...), want) {
		t.Fatalf("EffectiveSet = %v, want %v", got, want)
	}
}
