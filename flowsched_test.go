package flowsched_test

import (
	"math"
	"math/rand"
	"testing"

	"flowsched"
)

func TestQuickstartFlow(t *testing.T) {
	// Schedule four restricted tasks with EFT-Min through the public API.
	inst := flowsched.NewInstance(3, []flowsched.Task{
		{Release: 0, Proc: 2, Set: flowsched.MachineInterval(0, 1)},
		{Release: 0, Proc: 1, Set: flowsched.MachineInterval(1, 2)},
		{Release: 1, Proc: 1}, // unrestricted
		{Release: 1, Proc: 2, Set: flowsched.NewProcSet(0)},
	})
	s, err := flowsched.NewEFT(flowsched.TieMin).Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.MaxFlow() <= 0 {
		t.Fatalf("Fmax = %v", s.MaxFlow())
	}
	lb := flowsched.LowerBound(inst)
	opt, err := flowsched.OptimalBruteForce(inst)
	if err != nil {
		t.Fatal(err)
	}
	if lb > opt.MaxFlow()+1e-9 || s.MaxFlow() < opt.MaxFlow()-1e-9 {
		t.Fatalf("lb %v ≤ opt %v ≤ eft %v violated", lb, opt.MaxFlow(), s.MaxFlow())
	}
}

func TestPublicKVStorePipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := 9
	weights := flowsched.PopularityWeights(flowsched.PopularityShuffled, m, 1, rng)
	inst, err := flowsched.GenerateWorkload(flowsched.WorkloadConfig{
		M: m, N: 2000, Rate: flowsched.RateForLoad(0.7, m),
		Weights:  weights,
		Strategy: flowsched.OverlappingReplication(3),
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	structures := flowsched.Structures(inst)
	found := false
	for _, s := range structures {
		if s == "interval" {
			found = true
		}
	}
	if !found {
		t.Fatalf("overlapping replication should yield interval structure, got %v", structures)
	}
	sch, metrics, err := flowsched.Simulate(inst, flowsched.EFTRouter(flowsched.TieMin))
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(); err != nil {
		t.Fatal(err)
	}
	if metrics.MaxFlow() < 1 || metrics.Utilization() <= 0 {
		t.Fatalf("metrics implausible: Fmax=%v util=%v", metrics.MaxFlow(), metrics.Utilization())
	}
}

func TestPublicMaxLoad(t *testing.T) {
	m := 12
	w := flowsched.ZipfWeights(m, 1)
	ov := flowsched.MaxLoad(w, flowsched.OverlappingReplication(3))
	dj := flowsched.MaxLoad(w, flowsched.DisjointReplication(3))
	if ov < dj-1e-9 {
		t.Fatalf("overlapping max load %v below disjoint %v", ov, dj)
	}
	if p := flowsched.MaxLoadPercent(ov, m); p <= 0 || p > 100+1e-9 {
		t.Fatalf("percent = %v", p)
	}
	// Unbiased weights: both tolerate 100%.
	u := flowsched.ZipfWeights(m, 0)
	if got := flowsched.MaxLoadPercent(flowsched.MaxLoad(u, flowsched.DisjointReplication(3)), m); math.Abs(got-100) > 1e-6 {
		t.Fatalf("uniform disjoint max load = %v%%", got)
	}
}

func TestPublicAdversaries(t *testing.T) {
	res, err := flowsched.AdversaryEFTStream(flowsched.TieMin, 8, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.AlgFmax < flowsched.EFTIntervalLowerBound(8, 3) {
		t.Fatalf("stream Fmax %v below bound %v", res.AlgFmax, flowsched.EFTIntervalLowerBound(8, 3))
	}
	incl, err := flowsched.AdversaryInclusive(flowsched.NewEFT(nil), 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if incl.Ratio < incl.TheoryRatio-0.01 {
		t.Fatalf("inclusive ratio %v below theory %v", incl.Ratio, incl.TheoryRatio)
	}
	// Stable profile helper agrees with the stream's limit.
	prof := flowsched.EFTStreamProfiles(flowsched.TieMin, 6, 3, 6*6*6)
	stable := flowsched.EFTStableProfile(6, 3)
	last := prof[len(prof)-1]
	for j := range stable {
		if last[j] != stable[j] {
			t.Fatalf("profile %v != stable %v", last, stable)
		}
	}
}

func TestPublicBounds(t *testing.T) {
	if flowsched.CompetitiveBoundFIFO(1) != 1 {
		t.Fatalf("FIFO bound on one machine must be 1 (optimal)")
	}
	if flowsched.CompetitiveBoundDisjoint(2) != 2 {
		t.Fatalf("disjoint bound for k=2 must be 2")
	}
}

func TestProposition1PublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tasks := make([]flowsched.Task, 40)
	tm := 0.0
	for i := range tasks {
		tm += rng.ExpFloat64()
		tasks[i] = flowsched.Task{Release: tm, Proc: 0.3 + rng.Float64()}
	}
	inst := flowsched.NewInstance(4, tasks)
	eft, err := flowsched.NewEFT(flowsched.TieMin).Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := flowsched.NewFIFO(flowsched.TieMin).Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tasks {
		if eft.Machine[i] != fifo.Machine[i] || eft.Start[i] != fifo.Start[i] {
			t.Fatalf("Proposition 1 violated at task %d", i)
		}
	}
}

func TestOnlineSchedulerInterface(t *testing.T) {
	var alg flowsched.OnlineScheduler = flowsched.NewEFT(flowsched.TieMax)
	inst := flowsched.NewInstance(2, []flowsched.Task{
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
	})
	s := flowsched.RunOnline(alg, inst)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Machine[0] != 1 { // TieMax picks the highest-index idle machine
		t.Fatalf("first task on M%d, want M2", s.Machine[0]+1)
	}
}

func TestOptimalUnitPublic(t *testing.T) {
	inst := flowsched.NewInstance(2, []flowsched.Task{
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
	})
	f, err := flowsched.OptimalUnit(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f != 2 {
		t.Fatalf("OptimalUnit = %v, want 2", f)
	}
}
