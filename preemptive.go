package flowsched

import (
	"io"
	"math/rand"

	"flowsched/internal/core"
	"flowsched/internal/preempt"
	"flowsched/internal/ring"
	"flowsched/internal/workload"
)

// Preemptive scheduling (the preemptive rows of Table 1) and the
// consistent-hashing placement substrate.

// PreemptiveSchedule is a preemptive schedule: per-task lists of
// (machine, start, end) pieces with full feasibility validation.
type PreemptiveSchedule = preempt.Schedule

// PreemptiveFeasible reports whether every task of the instance can finish
// with flow at most F when preemption (and migration) is allowed.
func PreemptiveFeasible(inst *Instance, F Time) bool { return preempt.Feasible(inst, F) }

// PreemptiveOptimalFmax returns the optimal preemptive maximum flow time of
// P|r_i,M_i,pmtn|Fmax to within tol (0 = 1e-6), by deadline bisection over
// a max-flow feasibility oracle.
func PreemptiveOptimalFmax(inst *Instance, tol Time) (Time, error) {
	return preempt.OptimalFmax(inst, 0, 0, tol)
}

// PreemptiveMcNaughton builds an explicit preemptive schedule achieving
// flow F for an unrestricted instance (McNaughton's wrap-around rule per
// release/deadline window).
func PreemptiveMcNaughton(inst *Instance, F Time) (*PreemptiveSchedule, error) {
	return preempt.McNaughton(inst, F)
}

// PreemptiveFeasibleDeadlines reports whether every task can meet its
// absolute deadline under preemption (deadlines indexed by task ID).
func PreemptiveFeasibleDeadlines(inst *Instance, deadlines []Time) bool {
	return preempt.FeasibleDeadlines(inst, deadlines)
}

// PreemptiveOptimalLmax returns the optimal preemptive maximum lateness
// max_i (C_i − d_i) for the given due dates; Fmax is the special case
// d_i = r_i noted in the paper.
func PreemptiveOptimalLmax(inst *Instance, dueDates []Time, tol Time) (Time, error) {
	return preempt.OptimalLmax(inst, dueDates, tol)
}

// Ring is a consistent-hash ring: the Dynamo-style placement layer mapping
// keys to primary machines and preference lists.
type Ring = ring.Ring

// NewRing builds a hashed ring with vnodes virtual nodes per machine.
func NewRing(m, vnodes int) (*Ring, error) { return ring.New(m, vnodes) }

// NewOrderedRing builds the idealized one-token-per-machine ring of the
// paper, on which replica sets coincide with the overlapping intervals
// I_k(u).
func NewOrderedRing(m int) (*Ring, error) { return ring.NewOrdered(m) }

// KeyWorkloadConfig describes a key-level workload: Zipf-popular keys
// placed by a consistent-hash ring, which induces primaries and processing
// sets.
type KeyWorkloadConfig = workload.KeyConfig

// KeyWorkload is a generated key-level workload plus its placement
// metadata (ring, key positions, key popularity).
type KeyWorkload = workload.KeyWorkload

// GenerateKeyWorkload draws a key-level workload (see KeyWorkloadConfig).
func GenerateKeyWorkload(cfg KeyWorkloadConfig, rng *rand.Rand) (*KeyWorkload, error) {
	return workload.GenerateKeys(cfg, rng)
}

// Serialization.

// WriteInstanceJSON writes the instance in the library's JSON schema.
func WriteInstanceJSON(w io.Writer, inst *Instance) error { return inst.WriteJSON(w) }

// ReadInstanceJSON reads and validates an instance in the library's JSON
// schema.
func ReadInstanceJSON(r io.Reader) (*Instance, error) { return core.ReadInstanceJSON(r) }

// WriteScheduleJSON writes a schedule (with its instance embedded).
func WriteScheduleJSON(w io.Writer, s *Schedule) error { return s.WriteJSON(w) }

// ReadScheduleJSON reads and validates a schedule written by
// WriteScheduleJSON.
func ReadScheduleJSON(r io.Reader) (*Schedule, error) { return core.ReadScheduleJSON(r) }
