package flowsched

// Facade over the hedged-execution subsystem (internal/hedge +
// sim.RunHedged): speculative duplicate dispatch with first-win
// cancellation for tail tolerance.

import (
	"flowsched/internal/hedge"
	"flowsched/internal/obs"
	"flowsched/internal/sim"
)

type (
	// HedgeConfig describes the hedging of one run: when a dispatched task's
	// in-queue + in-service age crosses the trigger — a fixed Delay, a live
	// flow-time Quantile (warmed after MinSamples completions), or Tied mode
	// (two copies enqueued up front, loser revoked at service start) — a
	// speculative copy races the primary on the best other eligible server;
	// first completion wins and the loser is cancelled (mid-service only
	// with CancelRunning). MaxHedges caps the copies issued per run. A nil
	// *HedgeConfig makes SimulateHedged byte-identical to SimulateElastic.
	HedgeConfig = hedge.Config
	// HedgeObserver is the optional probe extension receiving the hedged
	// execution event stream (copy dispatches, first-win decisions, loser
	// cancellations).
	HedgeObserver = obs.HedgeObserver
)

// SimulateHedged is SimulateElastic with hedged execution attached: when a
// dispatched task ages past hcfg's trigger, the engine speculatively
// re-dispatches a copy to the best *other* eligible server of its
// processing set — respecting membership remapping, outages, ejection
// preference and the admission deadline budget — and the first completion
// wins; the losing attempt is cancelled before it starts service, or
// mid-service when hcfg.CancelRunning is set (otherwise it runs to
// completion as duplicate work, reported in ElasticMetrics.DuplicateWork
// and bounded by DuplicateRatio). Cancelled copies never count in flow
// time, and exactly one effective completion is recorded per task — the
// invariants the auditor re-checks on every hedged chaos trial.
//
// A nil hcfg reproduces SimulateElastic bit for bit; probe may additionally
// implement HedgeObserver to receive the hedge event stream.
func SimulateHedged(inst *Instance, router Router, plan *FaultPlan, policy RetryPolicy, cfg *OverloadConfig, ecfg *ElasticConfig, hcfg *HedgeConfig, probe Probe) (*Schedule, *ElasticMetrics, error) {
	return sim.RunHedged(inst, router, plan, policy, cfg, ecfg, hcfg, probe)
}
