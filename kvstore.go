package flowsched

import (
	"io"
	"math/rand"

	"flowsched/internal/faults"
	"flowsched/internal/popularity"
	"flowsched/internal/replicate"
	"flowsched/internal/sim"
	"flowsched/internal/workload"
)

// Key-value store toolkit: replication strategies, popularity model,
// workload generation and the discrete-event cluster simulator.

// ReplicationStrategy maps a key's primary machine to the processing set of
// its requests (Section 7.2).
type ReplicationStrategy = replicate.Strategy

// NoReplication keeps every key on its primary only (|M_i| = 1).
func NoReplication() ReplicationStrategy { return replicate.None{} }

// OverlappingReplication replicates each key on the k−1 ring successors of
// its primary (the Dynamo/Cassandra scheme).
func OverlappingReplication(k int) ReplicationStrategy { return replicate.Overlapping{K: k} }

// DisjointReplication partitions the cluster into fixed blocks of k
// machines (the structure for which EFT is (3 − 2/k)-competitive,
// Corollary 1).
func DisjointReplication(k int) ReplicationStrategy { return replicate.Disjoint{K: k} }

// OffsetDisjointReplication is DisjointReplication with block boundaries
// rotated by offset (ablation extension).
func OffsetDisjointReplication(k, offset int) ReplicationStrategy {
	return replicate.OffsetDisjoint{K: k, Offset: offset}
}

// RandomReplication replicates each primary on k−1 uniformly drawn
// machines (an unstructured baseline; memoized per primary).
func RandomReplication(k int, rng *rand.Rand) ReplicationStrategy {
	return replicate.NewRandomK(k, rng)
}

// PopularityCase names the Section 7.1 scenarios.
type PopularityCase = popularity.Case

// Popularity scenarios (Figure 8).
const (
	PopularityUniform  = popularity.Uniform
	PopularityWorst    = popularity.Worst
	PopularityShuffled = popularity.Shuffled
)

// ZipfWeights returns the machine popularity P(E_j) = 1/(j^s·H_{m,s}).
func ZipfWeights(m int, s float64) []float64 { return popularity.Zipf(m, s) }

// PopularityWeights builds the weight vector of one of the paper's cases
// (rng is required for the Shuffled case).
func PopularityWeights(c PopularityCase, m int, s float64, rng *rand.Rand) []float64 {
	return popularity.Weights(c, m, s, rng)
}

// WorkloadConfig describes a generated request stream (Poisson arrivals,
// popularity-weighted primaries, strategy-derived processing sets).
type WorkloadConfig = workload.Config

// GenerateWorkload draws an instance from the configuration.
func GenerateWorkload(cfg WorkloadConfig, rng *rand.Rand) (*Instance, error) {
	return workload.Generate(cfg, rng)
}

// MixedWorkloadConfig describes a read/write workload: reads run on any
// replica (the paper's model), writes fan out to every replica.
type MixedWorkloadConfig = workload.MixedConfig

// GenerateMixedWorkload draws a read/write workload (writes expand into one
// pinned task per replica).
func GenerateMixedWorkload(cfg MixedWorkloadConfig, rng *rand.Rand) (*Instance, error) {
	return workload.GenerateMixed(cfg, rng)
}

// EffectiveLoad returns the average machine load a mixed workload induces,
// accounting for write fan-out.
func EffectiveLoad(cfg MixedWorkloadConfig) float64 { return workload.EffectiveLoad(cfg) }

// DriftWorkloadConfig describes a workload whose popularity permutation
// re-shuffles every epoch (moving hot spots over a fixed replication
// layout).
type DriftWorkloadConfig = workload.DriftConfig

// GenerateDriftWorkload draws a popularity-drifting workload.
func GenerateDriftWorkload(cfg DriftWorkloadConfig, rng *rand.Rand) (*Instance, error) {
	return workload.GenerateDrift(cfg, rng)
}

// WorkloadFromTrace builds an instance from a request trace
// ("<time> <key> [<proc>]" lines); see internal/workload.FromTrace for the
// format.
func WorkloadFromTrace(r io.Reader, m int, strategy ReplicationStrategy) (*Instance, error) {
	return workload.FromTrace(r, m, strategy)
}

// WorkloadToTrace writes an instance in the WorkloadFromTrace format.
func WorkloadToTrace(w io.Writer, inst *Instance) error {
	return workload.WriteTrace(w, inst)
}

// RateForLoad converts an average cluster load fraction into the Poisson
// rate λ, and AverageLoad converts back.
func RateForLoad(load float64, m int) float64 { return workload.RateForLoad(load, m) }

// AverageLoad returns λ/m as a fraction.
func AverageLoad(rate float64, m int) float64 { return workload.AverageLoad(rate, m) }

// Simulation (internal/sim).
type (
	// Router decides, at arrival, which eligible server runs a request.
	Router = sim.Router
	// ClusterState is the router-visible state at an arrival instant.
	ClusterState = sim.State
	// SimMetrics aggregates a simulation run (flows, utilization).
	SimMetrics = sim.Metrics
)

// EFTRouter returns the clairvoyant earliest-finish-time router (nil tie =
// Min); it reproduces sched.EFT inside the simulator.
func EFTRouter(tie TieBreak) Router { return sim.EFTRouter{Tie: tie} }

// JSQRouter returns the non-clairvoyant join-shortest-queue router.
func JSQRouter() Router { return sim.JSQRouter{} }

// RandomRouter returns the uniform random router baseline.
func RandomRouter(rng *rand.Rand) Router { return &sim.RandomRouter{Rng: rng} }

// PowerOfTwoRouter returns the power-of-two-choices router: sample two
// eligible servers, pick the shorter queue.
func PowerOfTwoRouter(rng *rand.Rand) Router { return sim.PowerOfTwoRouter{Rng: rng} }

// RoundRobinRouter returns the load-oblivious round-robin baseline. Its
// cursor is reset automatically at the start of every run.
func RoundRobinRouter() Router { return &sim.RoundRobinRouter{} }

// NoisyEFTRouter returns EFT with imperfect clairvoyance: processing times
// are known only up to a multiplicative error uniform in [1−relErr,
// 1+relErr]. Its believed state is reset automatically at the start of
// every run.
func NoisyEFTRouter(tie TieBreak, relErr float64, rng *rand.Rand) Router {
	return &sim.NoisyEFTRouter{Tie: tie, RelErr: relErr, Rng: rng}
}

// KeyStats summarizes one key's response times in a run.
type KeyStats = sim.KeyStats

// FlowsByKey groups a run's response times by key, hottest keys first.
func FlowsByKey(inst *Instance, m *SimMetrics) []KeyStats { return sim.FlowsByKey(inst, m) }

// HotKeyPenalty compares the mean response time of the hottest keys (top
// fraction of request volume) against the rest.
func HotKeyPenalty(inst *Instance, m *SimMetrics, topFraction float64) (Time, Time) {
	return sim.HotKeyPenalty(inst, m, topFraction)
}

// Simulate runs the discrete-event cluster simulation of an instance under
// a router and returns the resulting schedule and metrics.
func Simulate(inst *Instance, router Router) (*Schedule, *SimMetrics, error) {
	return sim.Run(inst, router)
}

// Fault injection (internal/faults + internal/sim.RunFaulty).
type (
	// FaultPlan scripts server outages for a faulty simulation; it
	// validates, normalizes and round-trips through JSON like instances.
	FaultPlan = faults.Plan
	// Outage marks one server down on [From, Until).
	Outage = faults.Outage
	// RetryPolicy governs failover of requests lost to a server crash:
	// attempt cap, (exponential) backoff and per-request timeout. The zero
	// value retries immediately and forever.
	RetryPolicy = sim.RetryPolicy
	// FaultMetrics extends SimMetrics with robustness observables:
	// attempts, drops, parked requests, per-server downtime, availability
	// and recovery-spike max flow.
	FaultMetrics = sim.FaultMetrics
)

// EmptyFaultPlan returns the healthy plan for m servers; simulating under
// it reproduces Simulate exactly.
func EmptyFaultPlan(m int) *FaultPlan { return faults.Empty(m) }

// GenerateFaultPlan draws outages from a per-server MTBF/MTTR renewal
// process (exponential up and down periods) over [0, horizon).
func GenerateFaultPlan(m int, horizon Time, mtbf, mttr float64, rng *rand.Rand) *FaultPlan {
	return faults.Generate(m, horizon, mtbf, mttr, rng)
}

// ReadFaultPlanJSON deserializes and validates a fault plan.
func ReadFaultPlanJSON(r io.Reader) (*FaultPlan, error) { return faults.ReadPlanJSON(r) }

// SimulateFaulty runs the cluster simulation while replaying the fault
// plan: failing servers lose their queued and running requests, which fail
// over to live replicas under the retry policy (requests whose whole
// processing set is down park until the first replica recovers). A nil or
// empty plan reproduces Simulate exactly.
func SimulateFaulty(inst *Instance, router Router, plan *FaultPlan, policy RetryPolicy) (*Schedule, *FaultMetrics, error) {
	return sim.RunFaulty(inst, router, plan, policy)
}
