package flowsched

import (
	"io"
	"math/rand"

	"flowsched/internal/popularity"
	"flowsched/internal/replicate"
	"flowsched/internal/sim"
	"flowsched/internal/workload"
)

// Key-value store toolkit: replication strategies, popularity model,
// workload generation and the discrete-event cluster simulator.

// ReplicationStrategy maps a key's primary machine to the processing set of
// its requests (Section 7.2).
type ReplicationStrategy = replicate.Strategy

// NoReplication keeps every key on its primary only (|M_i| = 1).
func NoReplication() ReplicationStrategy { return replicate.None{} }

// OverlappingReplication replicates each key on the k−1 ring successors of
// its primary (the Dynamo/Cassandra scheme).
func OverlappingReplication(k int) ReplicationStrategy { return replicate.Overlapping{K: k} }

// DisjointReplication partitions the cluster into fixed blocks of k
// machines (the structure for which EFT is (3 − 2/k)-competitive,
// Corollary 1).
func DisjointReplication(k int) ReplicationStrategy { return replicate.Disjoint{K: k} }

// OffsetDisjointReplication is DisjointReplication with block boundaries
// rotated by offset (ablation extension).
func OffsetDisjointReplication(k, offset int) ReplicationStrategy {
	return replicate.OffsetDisjoint{K: k, Offset: offset}
}

// RandomReplication replicates each primary on k−1 uniformly drawn
// machines (an unstructured baseline; memoized per primary).
func RandomReplication(k int, rng *rand.Rand) ReplicationStrategy {
	return replicate.NewRandomK(k, rng)
}

// PopularityCase names the Section 7.1 scenarios.
type PopularityCase = popularity.Case

// Popularity scenarios (Figure 8).
const (
	PopularityUniform  = popularity.Uniform
	PopularityWorst    = popularity.Worst
	PopularityShuffled = popularity.Shuffled
)

// ZipfWeights returns the machine popularity P(E_j) = 1/(j^s·H_{m,s}).
func ZipfWeights(m int, s float64) []float64 { return popularity.Zipf(m, s) }

// PopularityWeights builds the weight vector of one of the paper's cases
// (rng is required for the Shuffled case).
func PopularityWeights(c PopularityCase, m int, s float64, rng *rand.Rand) []float64 {
	return popularity.Weights(c, m, s, rng)
}

// WorkloadConfig describes a generated request stream (Poisson arrivals,
// popularity-weighted primaries, strategy-derived processing sets).
type WorkloadConfig = workload.Config

// GenerateWorkload draws an instance from the configuration.
func GenerateWorkload(cfg WorkloadConfig, rng *rand.Rand) (*Instance, error) {
	return workload.Generate(cfg, rng)
}

// MixedWorkloadConfig describes a read/write workload: reads run on any
// replica (the paper's model), writes fan out to every replica.
type MixedWorkloadConfig = workload.MixedConfig

// GenerateMixedWorkload draws a read/write workload (writes expand into one
// pinned task per replica).
func GenerateMixedWorkload(cfg MixedWorkloadConfig, rng *rand.Rand) (*Instance, error) {
	return workload.GenerateMixed(cfg, rng)
}

// EffectiveLoad returns the average machine load a mixed workload induces,
// accounting for write fan-out.
func EffectiveLoad(cfg MixedWorkloadConfig) float64 { return workload.EffectiveLoad(cfg) }

// DriftWorkloadConfig describes a workload whose popularity permutation
// re-shuffles every epoch (moving hot spots over a fixed replication
// layout).
type DriftWorkloadConfig = workload.DriftConfig

// GenerateDriftWorkload draws a popularity-drifting workload.
func GenerateDriftWorkload(cfg DriftWorkloadConfig, rng *rand.Rand) (*Instance, error) {
	return workload.GenerateDrift(cfg, rng)
}

// WorkloadFromTrace builds an instance from a request trace
// ("<time> <key> [<proc>]" lines); see internal/workload.FromTrace for the
// format.
func WorkloadFromTrace(r io.Reader, m int, strategy ReplicationStrategy) (*Instance, error) {
	return workload.FromTrace(r, m, strategy)
}

// WorkloadToTrace writes an instance in the WorkloadFromTrace format.
func WorkloadToTrace(w io.Writer, inst *Instance) error {
	return workload.WriteTrace(w, inst)
}

// RateForLoad converts an average cluster load fraction into the Poisson
// rate λ, and AverageLoad converts back.
func RateForLoad(load float64, m int) float64 { return workload.RateForLoad(load, m) }

// AverageLoad returns λ/m as a fraction.
func AverageLoad(rate float64, m int) float64 { return workload.AverageLoad(rate, m) }

// Simulation (internal/sim).
type (
	// Router decides, at arrival, which eligible server runs a request.
	Router = sim.Router
	// ClusterState is the router-visible state at an arrival instant.
	ClusterState = sim.State
	// SimMetrics aggregates a simulation run (flows, utilization).
	SimMetrics = sim.Metrics
)

// EFTRouter returns the clairvoyant earliest-finish-time router (nil tie =
// Min); it reproduces sched.EFT inside the simulator.
func EFTRouter(tie TieBreak) Router { return sim.EFTRouter{Tie: tie} }

// JSQRouter returns the non-clairvoyant join-shortest-queue router.
func JSQRouter() Router { return sim.JSQRouter{} }

// RandomRouter returns the uniform random router baseline.
func RandomRouter(rng *rand.Rand) Router { return sim.RandomRouter{Rng: rng} }

// PowerOfTwoRouter returns the power-of-two-choices router: sample two
// eligible servers, pick the shorter queue.
func PowerOfTwoRouter(rng *rand.Rand) Router { return sim.PowerOfTwoRouter{Rng: rng} }

// RoundRobinRouter returns the load-oblivious round-robin baseline. Use a
// fresh router per run (it keeps a cursor).
func RoundRobinRouter() Router { return &sim.RoundRobinRouter{} }

// NoisyEFTRouter returns EFT with imperfect clairvoyance: processing times
// are known only up to a multiplicative error uniform in [1−relErr,
// 1+relErr]. Use a fresh router per run (it accumulates believed state).
func NoisyEFTRouter(tie TieBreak, relErr float64, rng *rand.Rand) Router {
	return &sim.NoisyEFTRouter{Tie: tie, RelErr: relErr, Rng: rng}
}

// KeyStats summarizes one key's response times in a run.
type KeyStats = sim.KeyStats

// FlowsByKey groups a run's response times by key, hottest keys first.
func FlowsByKey(inst *Instance, m *SimMetrics) []KeyStats { return sim.FlowsByKey(inst, m) }

// HotKeyPenalty compares the mean response time of the hottest keys (top
// fraction of request volume) against the rest.
func HotKeyPenalty(inst *Instance, m *SimMetrics, topFraction float64) (Time, Time) {
	return sim.HotKeyPenalty(inst, m, topFraction)
}

// Simulate runs the discrete-event cluster simulation of an instance under
// a router and returns the resulting schedule and metrics.
func Simulate(inst *Instance, router Router) (*Schedule, *SimMetrics, error) {
	return sim.Run(inst, router)
}
