// kvstore simulates a replicated key-value store under a popularity bias —
// the Section 7.4 experiment in miniature. It compares the two replication
// strategies of the paper (overlapping ring intervals vs disjoint blocks)
// and three request routers (clairvoyant EFT, join-shortest-queue, random)
// at increasing cluster load, and prints the theoretical maximum load from
// the LP analysis next to the measured response times.
//
// Run with: go run ./examples/kvstore [-m 15] [-k 3] [-n 10000] [-s 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"flowsched"
)

func main() {
	m := flag.Int("m", 15, "cluster size")
	k := flag.Int("k", 3, "replication factor")
	n := flag.Int("n", 10000, "requests per run")
	s := flag.Float64("s", 1, "Zipf popularity bias")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	weights := flowsched.PopularityWeights(flowsched.PopularityShuffled, *m, *s, rng)

	strategies := []flowsched.ReplicationStrategy{
		flowsched.OverlappingReplication(*k),
		flowsched.DisjointReplication(*k),
	}
	routers := []struct {
		name string
		r    flowsched.Router
	}{
		{"EFT-Min (clairvoyant)", flowsched.EFTRouter(flowsched.TieMin)},
		{"JSQ (queue length)", flowsched.JSQRouter()},
		{"Random", flowsched.RandomRouter(rng)},
	}

	fmt.Printf("replicated key-value store: m=%d servers, k=%d replicas, Zipf s=%v (shuffled), n=%d requests\n\n",
		*m, *k, *s, *n)

	for _, strat := range strategies {
		maxLoad := flowsched.MaxLoadPercent(flowsched.MaxLoad(weights, strat), *m)
		fmt.Printf("strategy %-18s theoretical max load %.0f%% (LP (15))\n", strat.Name(), maxLoad)
		for _, load := range []float64{0.5, 0.7, 0.9} {
			inst, err := flowsched.GenerateWorkload(flowsched.WorkloadConfig{
				M: *m, N: *n, Rate: flowsched.RateForLoad(load, *m),
				Weights: weights, Strategy: strat,
			}, rand.New(rand.NewSource(*seed+int64(load*100))))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  load %3.0f%%:", load*100)
			for _, rt := range routers {
				_, metrics, err := flowsched.Simulate(inst, rt.r)
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("  %s Fmax=%-5.3g p99=%-5.3g", rt.name, metrics.MaxFlow(), metrics.FlowQuantile(0.99))
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("expected shape: overlapping tolerates higher loads (larger LP max load, lower Fmax),")
	fmt.Println("even though only disjoint blocks carry a worst-case guarantee for EFT (Corollary 1).")
}
