// custombound shows how to use the library's immediate-dispatch interface
// to build your own adversarial lower-bound experiment, in the spirit of
// Section 6: we pit EFT against a tiny adaptive adversary of our own (a
// two-phase "commit and punish" construction on disjoint pairs) and
// measure the ratio against the exact offline optimum. It also
// demonstrates the Theorem 6 per-set adapter turning the heap-indexed
// unrestricted EFT into a scheduler for disjoint sets.
//
// Run with: go run ./examples/custombound
package main

import (
	"fmt"
	"log"

	"flowsched"
)

func main() {
	const p = 100.0

	// --- A custom adaptive adversary -----------------------------------
	// Phase 1: one task of length p eligible on the pair {M1,M2}. Observe
	// where the algorithm commits. Phase 2: two more tasks on exactly that
	// machine's pair partner... here: both on the chosen machine's block,
	// so the committed machine gets a backlog while the other idles.
	alg := flowsched.NewEFT(flowsched.TieMin)
	alg.Reset(4)

	t1 := flowsched.Task{ID: 0, Release: 0, Proc: p, Set: flowsched.NewProcSet(0, 1)}
	d1 := alg.Dispatch(t1)
	fmt.Printf("adversary: T1 committed to M%d at t=%v\n", d1.Machine+1, d1.Start)

	// Punish the commitment: release two tasks eligible ONLY on the chosen
	// machine (a singleton is a degenerate disjoint set).
	chosen := d1.Machine
	t2 := flowsched.Task{ID: 1, Release: 1, Proc: p, Set: flowsched.NewProcSet(chosen)}
	t3 := flowsched.Task{ID: 2, Release: 1, Proc: p, Set: flowsched.NewProcSet(chosen)}
	d2 := alg.Dispatch(t2)
	d3 := alg.Dispatch(t3)

	// Assemble the instance and the algorithm's schedule from the observed
	// decisions.
	inst := flowsched.NewInstance(4, []flowsched.Task{t1, t2, t3})
	s := flowsched.NewSchedule(inst)
	s.Assign(0, d1.Machine, d1.Start)
	s.Assign(1, d2.Machine, d2.Start)
	s.Assign(2, d3.Machine, d3.Start)
	if err := s.Validate(); err != nil {
		log.Fatalf("algorithm schedule invalid: %v", err)
	}

	opt, err := flowsched.OptimalBruteForce(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EFT Fmax = %v, offline OPT = %v → ratio %.3f\n",
		s.MaxFlow(), opt.MaxFlow(), s.MaxFlow()/opt.MaxFlow())
	fmt.Printf("(OPT would have parked T1 on the other machine of its pair: ratio → 1.5 as p → ∞)\n\n")

	// --- The Theorem 6 adapter ------------------------------------------
	// The heap-indexed EFT only handles unrestricted instances; the
	// adapter runs one copy per disjoint block and inherits (3 − 2/k).
	rngInst := flowsched.NewInstance(6, []flowsched.Task{
		{Release: 0, Proc: 2, Set: flowsched.MachineInterval(0, 2)},
		{Release: 0, Proc: 1, Set: flowsched.MachineInterval(0, 2)},
		{Release: 0, Proc: 2, Set: flowsched.MachineInterval(3, 5)},
		{Release: 1, Proc: 1, Set: flowsched.MachineInterval(3, 5)},
		{Release: 1, Proc: 1, Set: flowsched.MachineInterval(0, 2)},
	})
	adapter := flowsched.NewPerSetAdapter("EFT(heap)", func() flowsched.OnlineScheduler {
		return flowsched.NewEFTHeap()
	})
	as, err := adapter.Run(rngInst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 6 adapter (%s) on two disjoint blocks of k=3:\n", adapter.Name())
	fmt.Print(as.Gantt(1))
	fmt.Printf("Fmax = %v; guarantee: 3 − 2/k = %.2f × OPT (Corollary 1)\n",
		as.MaxFlow(), flowsched.CompetitiveBoundDisjoint(3))
}
