// adversary demonstrates the worst case of EFT on overlapping fixed-size
// intervals (Theorems 8-10): the adversarial stream drives EFT-Min's
// schedule profile to the stable profile w_τ and its max flow time to
// m − k + 1, while the optimal strategy keeps every flow at 1. It also
// shows that a different tie-break (EFT-Max) escapes the plain stream but
// not the padded one of Theorem 10.
//
// Run with: go run ./examples/adversary [-m 6] [-k 3]
package main

import (
	"flag"
	"fmt"
	"log"

	"flowsched"
)

func main() {
	m := flag.Int("m", 6, "machines")
	k := flag.Int("k", 3, "interval size (1 < k < m)")
	flag.Parse()

	fmt.Printf("Theorem 8 adversary stream on m=%d machines, intervals of size k=%d\n\n", *m, *k)

	// Show the first rounds of the schedule (the paper's Figure 3).
	_, s := flowsched.EFTStreamSchedule(flowsched.TieMin, *m, *k, 4)
	fmt.Println("EFT-Min on the first 4 rounds (Figure 3):")
	fmt.Print(s.Gantt(1))

	// Profile convergence to w_τ.
	profiles := flowsched.EFTStreamProfiles(flowsched.TieMin, *m, *k, (*m)*(*m)*(*m))
	stable := flowsched.EFTStableProfile(*m, *k)
	conv := -1
	for t, w := range profiles {
		eq := true
		for j := range w {
			if w[j] != stable[j] {
				eq = false
				break
			}
		}
		if eq {
			conv = t
			break
		}
	}
	fmt.Printf("\nstable profile w_τ = %v\n", stable)
	fmt.Printf("EFT-Min reaches w_τ after %d rounds and never leaves it\n\n", conv)

	// Full run: Fmax hits m−k+1 while OPT stays at 1.
	res, err := flowsched.AdversaryEFTStream(flowsched.TieMin, *m, *k, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EFT-Min: Fmax = %v, OPT = %v → ratio %v (theory: ≥ m−k+1 = %v)\n",
		res.AlgFmax, res.OptFmax, res.Ratio, res.TheoryRatio)

	// EFT-Max escapes the plain stream...
	resMax, err := flowsched.AdversaryEFTStream(flowsched.TieMax, *m, *k, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EFT-Max on the same stream: Fmax = %v (the Min tie-break was the trap)\n", resMax.AlgFmax)

	// ...but not the padded stream of Theorem 10.
	padded, err := flowsched.AdversaryEFTStreamPadded(flowsched.TieMax, *m, *k, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EFT-Max on the Theorem 10 padded stream: regular-task Fmax = %v ≥ m−k+1\n", padded.AlgFmax)
	fmt.Printf("(%s)\n", padded.Notes)
}
