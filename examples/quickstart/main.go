// Quickstart: build a small instance with processing set restrictions,
// schedule it online with EFT, and compare against the exact offline
// optimum.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"flowsched"
)

func main() {
	// A cluster of 3 machines. Each task carries a release time, a
	// processing time, and the set of machines allowed to run it (nil = any
	// machine) — in a key-value store, the replicas of its key.
	inst := flowsched.NewInstance(3, []flowsched.Task{
		{Release: 0, Proc: 2, Set: flowsched.MachineInterval(0, 1)}, // {M1,M2}
		{Release: 0, Proc: 2, Set: flowsched.MachineInterval(0, 1)},
		{Release: 0, Proc: 1, Set: flowsched.MachineInterval(1, 2)}, // {M2,M3}
		{Release: 1, Proc: 1},                               // anywhere
		{Release: 2, Proc: 3, Set: flowsched.NewProcSet(2)}, // {M3}
	})

	// EFT (Earliest Finish Time) dispatches each task, at its release, to
	// the eligible machine finishing it first — Algorithm 2 of the paper.
	eft := flowsched.NewEFT(flowsched.TieMin)
	s, err := eft.Run(inst)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		log.Fatalf("schedule does not satisfy the model: %v", err)
	}

	fmt.Println("EFT-Min schedule (one column per time unit, one glyph per task):")
	fmt.Print(s.Gantt(1))
	fmt.Printf("max flow time Fmax = %v, mean flow = %.3g\n\n", s.MaxFlow(), s.MeanFlow())

	for i := range inst.Tasks {
		fmt.Printf("  task %d: released %v, on M%d at %v, flow %v\n",
			i, inst.Tasks[i].Release, s.Machine[i]+1, s.Start[i], s.Flow(i))
	}

	// How far from optimal? The instance is small enough for brute force.
	opt, err := flowsched.OptimalBruteForce(inst)
	if err != nil {
		log.Fatal(err)
	}
	lb := flowsched.LowerBound(inst)
	fmt.Printf("\ncertified lower bound %v ≤ optimal Fmax %v ≤ EFT Fmax %v (ratio %.3f)\n",
		lb, opt.MaxFlow(), s.MaxFlow(), s.MaxFlow()/opt.MaxFlow())
	fmt.Printf("structures of this instance's processing sets: %v\n", flowsched.Structures(inst))
}
