// maxload answers a capacity-planning question with the LP analysis of
// Section 7.2: given a cluster with a Zipf popularity bias, how much load
// can it sustain for each replication factor, and how much of that is lost
// by choosing disjoint blocks (which carry the (3 − 2/k) EFT guarantee)
// over overlapping intervals (which do not)?
//
// Run with: go run ./examples/maxload [-m 15] [-s 1.25]
package main

import (
	"flag"
	"fmt"

	"flowsched"
)

func main() {
	m := flag.Int("m", 15, "cluster size")
	s := flag.Float64("s", 1.25, "Zipf popularity bias (worst-case ordering)")
	flag.Parse()

	weights := flowsched.ZipfWeights(*m, *s)
	fmt.Printf("max sustainable cluster load, m=%d machines, Zipf bias s=%v\n", *m, *s)
	fmt.Printf("(LP (15), exact Hall-condition solution; 100%% = every machine busy full time)\n\n")
	fmt.Printf("%-4s  %-14s  %-14s  %-8s\n", "k", "overlapping %", "disjoint %", "gain")
	for k := 1; k <= *m; k++ {
		ov := flowsched.MaxLoadPercent(flowsched.MaxLoad(weights, flowsched.OverlappingReplication(k)), *m)
		dj := flowsched.MaxLoadPercent(flowsched.MaxLoad(weights, flowsched.DisjointReplication(k)), *m)
		gain := ov / dj
		fmt.Printf("%-4d  %-14.1f  %-14.1f  %.2fx\n", k, ov, dj, gain)
	}

	fmt.Printf("\nwithout replication the same cluster saturates at %.1f%% ",
		flowsched.MaxLoadPercent(flowsched.MaxLoad(weights, flowsched.NoReplication()), *m))
	fmt.Println("(the most popular machine is the bottleneck).")
	fmt.Println("k = m removes the bias entirely; k = 3 is the standard replication factor in key-value stores.")
}
