// ringstore drives the full Dynamo-style pipeline end to end: Zipf-popular
// keys are placed on a consistent-hash ring (idealized ordered ring vs a
// hashed ring with virtual nodes), requests inherit the ring's replica sets
// as processing sets, EFT routes them online, and the preemptive offline
// optimum bounds how much of the tail latency is inherent.
//
// Run with: go run ./examples/ringstore [-m 12] [-k 3] [-keys 500] [-bias 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"flowsched"
)

func main() {
	m := flag.Int("m", 12, "cluster size")
	k := flag.Int("k", 3, "replication factor")
	keys := flag.Int("keys", 500, "distinct keys in the store")
	bias := flag.Float64("bias", 1, "Zipf popularity bias over keys")
	n := flag.Int("n", 4000, "requests")
	loadFrac := flag.Float64("load", 0.7, "average cluster load")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	fmt.Printf("ringstore: m=%d k=%d keys=%d bias=%v load=%.0f%% n=%d\n\n",
		*m, *k, *keys, *bias, *loadFrac*100, *n)

	for _, cfg := range []struct {
		name   string
		vnodes int
	}{
		{"ordered ring (paper's idealized placement)", 0},
		{"hashed ring, 1 vnode/machine", 1},
		{"hashed ring, 64 vnodes/machine", 64},
	} {
		kw, err := flowsched.GenerateKeyWorkload(flowsched.KeyWorkloadConfig{
			M: *m, N: *n, Rate: flowsched.RateForLoad(*loadFrac, *m),
			NumKeys: *keys, KeyBias: *bias, K: *k, VNodes: cfg.vnodes,
		}, rand.New(rand.NewSource(*seed)))
		if err != nil {
			log.Fatal(err)
		}

		// The machine-level popularity that emerges from keys + placement.
		mw := kw.MachineWeights()
		maxW := 0.0
		for _, w := range mw {
			if w > maxW {
				maxW = w
			}
		}

		_, metrics, err := flowsched.Simulate(kw.Inst, flowsched.EFTRouter(flowsched.TieMin))
		if err != nil {
			log.Fatal(err)
		}

		// How much of the measured tail is inherent? The certified lower
		// bound (interval-work argument) holds for ANY scheduler, even a
		// preemptive offline one.
		lb := flowsched.LowerBound(kw.Inst)

		fmt.Printf("%s\n", cfg.name)
		fmt.Printf("  structures: %v; hottest machine carries %.1f%% of requests\n",
			flowsched.Structures(kw.Inst), 100*maxW)
		fmt.Printf("  EFT-Min online: Fmax=%.3g mean=%.3g p99=%.3g\n",
			metrics.MaxFlow(), metrics.MeanFlow(), metrics.FlowQuantile(0.99))
		fmt.Printf("  certified offline lower bound: Fmax ≥ %.3g (gap ≤ %.2fx)\n\n",
			lb, float64(metrics.MaxFlow())/lb)
	}

	// Zoom in on one burst: how much would preemption itself buy? Take the
	// first requests of the ordered-ring run as a standalone instance and
	// compare online EFT against the exact PREEMPTIVE offline optimum.
	kw, err := flowsched.GenerateKeyWorkload(flowsched.KeyWorkloadConfig{
		M: *m, N: 80, Rate: flowsched.RateForLoad(*loadFrac, *m),
		NumKeys: *keys, KeyBias: *bias, K: *k,
	}, rand.New(rand.NewSource(*seed)))
	if err != nil {
		log.Fatal(err)
	}
	burst, err := flowsched.NewEFT(flowsched.TieMin).Run(kw.Inst)
	if err != nil {
		log.Fatal(err)
	}
	pOpt, err := flowsched.PreemptiveOptimalFmax(kw.Inst, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("burst of %d requests: EFT-Min Fmax=%.4g vs preemptive offline optimum %.4g (gap %.2fx)\n\n",
		kw.Inst.N(), burst.MaxFlow(), pOpt, float64(burst.MaxFlow())/pOpt)

	fmt.Println("takeaway: the idealized ordered ring keeps the interval structure the paper analyzes;")
	fmt.Println("hashing with few vnodes skews machine popularity, more vnodes smooth it back out.")
}
