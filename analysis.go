package flowsched

import (
	"flowsched/internal/loadlp"
	"flowsched/internal/ratio"
	"flowsched/internal/sched"
)

// Max-load analysis (Section 7.2) and the adversary lower bounds
// (Section 6).

// MaxLoadModel is the LP (15) instance: popularity weights plus the
// replication sets per primary. It carries three cross-checked solvers
// (simplex, max-flow bisection, exact Hall enumeration) and the disjoint
// closed form; see internal/loadlp.
type MaxLoadModel = loadlp.Model

// NewMaxLoadModel builds the model for a weight vector and a replication
// strategy.
func NewMaxLoadModel(weights []float64, strategy ReplicationStrategy) *MaxLoadModel {
	return loadlp.NewModel(weights, strategy)
}

// MaxLoad returns the theoretical maximum sustainable arrival rate λ of
// LP (15) for the given popularity weights and replication strategy,
// computed exactly: the Hall enumeration for m ≤ 25 machines, the max-flow
// bisection (1e-9 precision) beyond.
func MaxLoad(weights []float64, strategy ReplicationStrategy) float64 {
	mo := loadlp.NewModel(weights, strategy)
	if mo.M <= 25 {
		return mo.MaxLoadHall()
	}
	return mo.MaxLoadFlow(0)
}

// MaxLoadPercent converts a λ from MaxLoad into the cluster load
// percentage 100·λ/m of Figure 10.
func MaxLoadPercent(lambda float64, m int) float64 { return 100 * lambda / float64(m) }

// CompetitiveBoundFIFO returns the (3 − 2/m) guarantee of Theorem 1 for
// FIFO/EFT on m unrestricted machines.
func CompetitiveBoundFIFO(m int) float64 { return 3 - 2/float64(m) }

// CompetitiveBoundDisjoint returns the (3 − 2/k) guarantee of Corollary 1
// for EFT on disjoint processing sets of size k.
func CompetitiveBoundDisjoint(k int) float64 { return 3 - 2/float64(k) }

// EFTIntervalLowerBound returns the m − k + 1 lower bound of
// Theorems 8-10 for EFT on overlapping fixed-size intervals.
func EFTIntervalLowerBound(m, k int) float64 { return float64(m - k + 1) }

// Empirical competitiveness harness (internal/ratio).
type (
	// InstanceGenerator draws random instances for ratio measurements.
	InstanceGenerator = ratio.Generator
	// RatioBaseline supplies the reference Fmax (exact optimum or lower
	// bound) a scheduler is measured against.
	RatioBaseline = ratio.Baseline
	// RatioSummary reports a sampled ratio distribution, including the seed
	// of the worst instance for reproduction.
	RatioSummary = ratio.Summary
)

// MeasureCompetitiveness samples `trials` instances from gen and reports
// the distribution of alg's Fmax over the baseline.
func MeasureCompetitiveness(alg Algorithm, gen InstanceGenerator, base RatioBaseline, trials int, seed int64) (RatioSummary, error) {
	return ratio.Measure(alg, gen, base, trials, seed)
}

// ExactBaseline measures against the exact brute-force optimum (small
// instances only).
func ExactBaseline() RatioBaseline { return ratio.BruteForceBaseline() }

// LowerBoundBaseline measures against the certified lower bound, giving an
// upper estimate of the true ratio.
func LowerBoundBaseline() RatioBaseline { return ratio.LowerBoundBaseline() }

// UniformInstances generates unrestricted instances for
// MeasureCompetitiveness.
func UniformInstances(m, n int, horizon, pmax Time) InstanceGenerator {
	return ratio.UniformGenerator(m, n, horizon, pmax)
}

// DisjointInstances generates block-restricted instances (the Corollary 1
// setting) for MeasureCompetitiveness.
func DisjointInstances(k, blocks, n int, horizon, pmax Time) InstanceGenerator {
	return ratio.DisjointGenerator(k, blocks, n, horizon, pmax)
}

// internal guard: the facade must keep exposing schedulers that satisfy the
// Algorithm interface.
var (
	_ Algorithm = (*sched.EFT)(nil)
	_ Algorithm = (*sched.FIFO)(nil)
	_ Algorithm = (*sched.EFTHeap)(nil)
	_ Algorithm = (*sched.JSQ)(nil)
)
