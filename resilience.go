package flowsched

// Facade over the resilience subsystem (internal/resilience +
// sim.RunResilient): seeded retry jitter, a cluster-wide retry budget and
// per-server circuit breakers that together keep a healed fault from
// turning into a metastable retry storm.

import (
	"flowsched/internal/obs"
	"flowsched/internal/resilience"
	"flowsched/internal/sim"
)

type (
	// ResilienceConfig bundles the three anti-storm mechanisms of one run:
	// Jitter decorrelates retry backoff delays (deterministically, from
	// Seed), RetryBudget caps cluster-wide retry dispatches to a fraction
	// of fresh arrivals (a token bucket with BudgetBurst capacity; refused
	// retries become BudgetDropped tasks instead of parking forever), and
	// Breaker trips a per-server circuit after a window of failures so
	// retries stop hammering a down or gray server until a half-open probe
	// succeeds. A nil *ResilienceConfig makes SimulateResilient
	// byte-identical to SimulateHedged.
	ResilienceConfig = resilience.Config
	// BreakerConfig tunes the per-server circuit breakers: outcome Window,
	// FailureThreshold fraction that trips, open Cooldown, HalfOpenProbes
	// admitted concurrently, and an optional SlowFactor treating
	// completions slower than SlowFactor× the expected service time as
	// failures (the gray-server tripwire).
	BreakerConfig = resilience.BreakerConfig
	// JitterMode selects the retry backoff jitter strategy.
	JitterMode = resilience.JitterMode
	// BreakerSpan records one breaker open episode (open, half-open,
	// close) in ElasticMetrics.BreakerSpans.
	BreakerSpan = resilience.Span
	// ResilienceObserver is the optional probe extension receiving the
	// resilience event stream (breaker opens/probes/closes, retry budget
	// drops).
	ResilienceObserver = obs.ResilienceObserver
)

// Jitter modes for ResilienceConfig.Jitter: none keeps the deterministic
// exponential backoff, full draws from [0,d), equal from [d/2,d), and
// decorrelated from [base, 3·prev) — the AWS-style ladder that spreads a
// synchronized retry wave the widest.
const (
	JitterNone         = resilience.JitterNone
	JitterFull         = resilience.JitterFull
	JitterEqual        = resilience.JitterEqual
	JitterDecorrelated = resilience.JitterDecorrelated
)

// SimulateResilient is SimulateHedged with the resilience layer attached:
// retry backoff delays are jittered by rcfg.Jitter (seeded, replayable),
// every retry dispatch first asks the cluster-wide retry budget (a refusal
// drops the task with the BudgetDropped disposition, keeping the
// conservation equation RetriesIssued + RetriesDropped == RetriesRequested
// exact), and each server's circuit breaker gates dispatch: a tripped
// breaker removes the server from every task's candidate set until the
// cooldown elapses and a half-open probe dispatch succeeds. Tasks whose
// only servers sit behind open breakers park and wake on the breaker's
// state transitions, never spinning.
//
// A nil rcfg reproduces SimulateHedged bit for bit; probe may additionally
// implement ResilienceObserver to receive the resilience event stream.
func SimulateResilient(inst *Instance, router Router, plan *FaultPlan, policy RetryPolicy, cfg *OverloadConfig, ecfg *ElasticConfig, hcfg *HedgeConfig, rcfg *ResilienceConfig, probe Probe) (*Schedule, *ElasticMetrics, error) {
	return sim.RunResilient(inst, router, plan, policy, cfg, ecfg, hcfg, rcfg, probe)
}
