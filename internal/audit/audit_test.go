package audit

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/faults"
	"flowsched/internal/obs"
	"flowsched/internal/sim"
)

func randomInstance(m, n int, rng *rand.Rand) *core.Instance {
	tasks := make([]core.Task, n)
	t := 0.0
	for i := range tasks {
		t += rng.ExpFloat64() / float64(m)
		var set core.ProcSet
		switch rng.Intn(3) {
		case 0: // unrestricted
		case 1:
			set = core.MustRingInterval(rng.Intn(m), 1+rng.Intn(m), m)
		default:
			k := 1 + rng.Intn(m)
			set = core.NewProcSet(rng.Perm(m)[:k]...)
		}
		tasks[i] = core.Task{Release: t, Proc: 0.5 + rng.Float64(), Set: set}
	}
	return core.NewInstance(m, tasks)
}

func violated(r *Report, invariant string) bool {
	for _, v := range r.Violations {
		if v.Invariant == invariant {
			return true
		}
	}
	return false
}

// TestAuditCleanSimulatedRuns: schedules straight out of the simulator must
// audit clean, fault-free and under mixed crash + gray plans.
func TestAuditCleanSimulatedRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		m := 2 + rng.Intn(6)
		n := 1 + rng.Intn(80)
		inst := randomInstance(m, n, rng)

		s, _, err := sim.Run(inst, sim.EFTRouter{})
		if err != nil {
			t.Fatal(err)
		}
		if r := Audit(inst, s, Options{}); !r.Ok() {
			t.Fatalf("trial %d: fault-free audit failed:\n%s", trial, r)
		}

		crash := faults.Generate(m, 10, 8, 2, rng)
		gray := faults.GenerateGray(m, 10, faults.GrayConfig{MTBF: 6, MTTR: 3}, rng)
		plan := crash.Merge(gray)
		pol := sim.RetryPolicy{MaxAttempts: 4, Backoff: 0.05, BackoffFactor: 2, Timeout: 60}
		fs, fm, err := sim.RunFaulty(inst, sim.EFTRouter{}, plan, pol)
		if err != nil {
			t.Fatal(err)
		}
		comps := make([]core.Time, n)
		for i, task := range inst.Tasks {
			comps[i] = task.Release + fm.Flows[i]
		}
		r := Audit(inst, fs, Options{Plan: plan, Completions: comps, Dropped: fm.Dropped})
		if !r.Ok() {
			t.Fatalf("trial %d: faulty audit failed:\n%s", trial, r)
		}
	}
}

func TestAuditCatchesReleaseViolation(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{{Release: 5, Proc: 1}})
	s := core.NewSchedule(inst)
	s.Assign(0, 0, 3) // before release
	r := Audit(inst, s, Options{SkipLowerBound: true, SkipFIFOEquiv: true})
	if !violated(r, InvRelease) {
		t.Fatalf("want release violation, got:\n%s", r)
	}
}

func TestAuditCatchesEligibilityViolation(t *testing.T) {
	inst := core.NewInstance(3, []core.Task{{Release: 0, Proc: 1, Set: core.NewProcSet(0, 1)}})
	s := core.NewSchedule(inst)
	s.Assign(0, 2, 0) // outside the processing set
	r := Audit(inst, s, Options{SkipLowerBound: true, SkipFIFOEquiv: true})
	if !violated(r, InvEligible) {
		t.Fatalf("want eligibility violation, got:\n%s", r)
	}
}

func TestAuditCatchesOverlapAndLowerBound(t *testing.T) {
	inst := core.NewInstance(1, []core.Task{
		{Release: 0, Proc: 10},
		{Release: 0, Proc: 10},
	})
	s := core.NewSchedule(inst)
	s.Assign(0, 0, 0)
	s.Assign(1, 0, 0) // overlaps task 0, and Fmax 10 < LB 20
	r := Audit(inst, s, Options{SkipFIFOEquiv: true})
	if !violated(r, InvOverlap) {
		t.Fatalf("want overlap violation, got:\n%s", r)
	}
	if !violated(r, InvLowerBound) {
		t.Fatalf("want lower-bound violation, got:\n%s", r)
	}
}

func TestAuditCatchesCompletionMismatch(t *testing.T) {
	inst := core.NewInstance(1, []core.Task{{Release: 0, Proc: 10}})
	s := core.NewSchedule(inst)
	s.Assign(0, 0, 0)
	// Healthy: completion must be 10, not 12.
	r := Audit(inst, s, Options{Completions: []core.Time{12}, SkipLowerBound: true, SkipFIFOEquiv: true})
	if !violated(r, InvCompletion) {
		t.Fatalf("want completion violation, got:\n%s", r)
	}
	// Under a factor-2 slowdown the correct completion IS 20.
	plan := faults.Empty(1).Slow(0, 0, 100, 2)
	r = Audit(inst, s, Options{Plan: plan, Completions: []core.Time{20}, SkipLowerBound: true, SkipFIFOEquiv: true})
	if !r.Ok() {
		t.Fatalf("slowdown-adjusted completion should pass, got:\n%s", r)
	}
	r = Audit(inst, s, Options{Plan: plan, Completions: []core.Time{10}, SkipLowerBound: true, SkipFIFOEquiv: true})
	if !violated(r, InvCompletion) {
		t.Fatalf("want completion violation under slowdown, got:\n%s", r)
	}
}

func TestAuditCatchesDowntimeOverlap(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{{Release: 0, Proc: 10}})
	s := core.NewSchedule(inst)
	s.Assign(0, 0, 0)
	plan := faults.Empty(2).Down(0, 5, 8) // execution [0,10) crosses the outage
	r := Audit(inst, s, Options{Plan: plan, SkipLowerBound: true, SkipFIFOEquiv: true})
	if !violated(r, InvDowntime) {
		t.Fatalf("want downtime violation, got:\n%s", r)
	}
	// The same plan on the other machine is fine.
	s.Assign(0, 1, 0)
	if r := Audit(inst, s, Options{Plan: plan, SkipLowerBound: true, SkipFIFOEquiv: true}); !r.Ok() {
		t.Fatalf("execution on live machine flagged:\n%s", r)
	}
}

func TestAuditCatchesAssignmentViolations(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
	})
	s := core.NewSchedule(inst)
	s.Assign(0, 5, 0) // machine out of range
	s.Assign(1, 0, 0)
	r := Audit(inst, s, Options{Dropped: []bool{false, true}, SkipLowerBound: true, SkipFIFOEquiv: true})
	if !violated(r, InvAssignment) {
		t.Fatalf("want assignment violations, got:\n%s", r)
	}
	found := 0
	for _, v := range r.Violations {
		if v.Invariant == InvAssignment {
			found++
		}
	}
	if found != 2 { // out-of-range machine + assigned-but-dropped
		t.Fatalf("want 2 assignment violations, got %d:\n%s", found, r)
	}
	// A dropped task left unassigned is fine.
	s.Machine[1] = -1
	s.Start[1] = math.NaN()
	s.Machine[0] = 0
	r = Audit(inst, s, Options{Dropped: []bool{false, true}, SkipLowerBound: true, SkipFIFOEquiv: true})
	if !r.Ok() {
		t.Fatalf("unassigned dropped task flagged:\n%s", r)
	}
}

func TestAuditShapeMismatch(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{{Release: 0, Proc: 1}})
	other := core.NewInstance(2, []core.Task{{Release: 0, Proc: 1}, {Release: 1, Proc: 1}})
	s := core.NewSchedule(other)
	if r := Audit(inst, s, Options{}); !violated(r, InvShape) {
		t.Fatalf("want shape violation, got:\n%s", r)
	}
	s2 := core.NewSchedule(inst)
	s2.Assign(0, 0, 0)
	if r := Audit(inst, s2, Options{Completions: []core.Time{1, 2}}); !violated(r, InvShape) {
		t.Fatal("want shape violation for completions length")
	}
	if r := Audit(inst, s2, Options{Dropped: []bool{false, false}}); !violated(r, InvShape) {
		t.Fatal("want shape violation for dropped length")
	}
	if r := Audit(inst, s2, Options{Plan: faults.Empty(3)}); !violated(r, InvShape) {
		t.Fatal("want shape violation for plan cluster size")
	}
}

func TestAuditFIFOEquivRunsOnUnrestricted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tasks := make([]core.Task, 40)
	tt := 0.0
	for i := range tasks {
		tt += rng.ExpFloat64() / 3
		tasks[i] = core.Task{Release: tt, Proc: 0.5 + rng.Float64()}
	}
	inst := core.NewInstance(3, tasks)
	s, _, err := sim.Run(inst, sim.EFTRouter{})
	if err != nil {
		t.Fatal(err)
	}
	if r := Audit(inst, s, Options{}); !r.Ok() {
		t.Fatalf("unrestricted audit with FIFO spot-check failed:\n%s", r)
	}
}

func TestAuditReportTruncationAndFormat(t *testing.T) {
	inst := core.NewInstance(1, []core.Task{
		{Release: 5, Proc: 1},
		{Release: 5, Proc: 1},
		{Release: 5, Proc: 1},
	})
	s := core.NewSchedule(inst)
	for i := 0; i < 3; i++ {
		s.Assign(i, 0, 0) // all before release, all overlapping
	}
	r := Audit(inst, s, Options{MaxViolations: 2, SkipLowerBound: true, SkipFIFOEquiv: true})
	if len(r.Violations) != 2 || !r.Truncated {
		t.Fatalf("want 2 violations truncated, got %d (truncated=%v)", len(r.Violations), r.Truncated)
	}
	if r.Err() == nil || r.Ok() {
		t.Fatal("truncated report must error")
	}
	if !strings.Contains(r.String(), "truncated") {
		t.Fatalf("String() should mention truncation: %s", r)
	}
	clean := &Report{}
	if clean.Err() != nil || !clean.Ok() || clean.String() != "audit: ok" {
		t.Fatalf("clean report misbehaves: %q / %v", clean.String(), clean.Err())
	}
}

func TestAuditEmptyInstance(t *testing.T) {
	inst := core.NewInstance(2, nil)
	s := core.NewSchedule(inst)
	if r := Audit(inst, s, Options{}); !r.Ok() {
		t.Fatalf("empty instance should audit clean:\n%s", r)
	}
}

// TestAuditAttachesEvidence: with a flight recorder supplied, a violation
// naming a task carries that task's raw event history; without one (or for
// machine-level violations) the report stays evidence-free.
func TestAuditAttachesEvidence(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{{Release: 0, Proc: 1}, {Release: 5, Proc: 1}})
	s := core.NewSchedule(inst)
	s.Assign(0, 1, 0) // clean
	s.Assign(1, 0, 3) // before release → violation names task 1

	rec := obs.NewFlightRecorder(16)
	rec.OnArrival(0, 0)
	rec.OnArrival(1, 5)
	rec.OnDispatch(1, 0, 5, 3, 4)

	opts := Options{SkipLowerBound: true, SkipFIFOEquiv: true, Recorder: rec}
	r := Audit(inst, s, opts)
	if !violated(r, InvRelease) {
		t.Fatalf("want release violation, got:\n%s", r)
	}
	evs, ok := r.Evidence[1]
	if !ok || len(evs) != 2 {
		t.Fatalf("task 1 evidence = %+v, want its 2 recorded events", r.Evidence)
	}
	if evs[0].Ev != "arrival" || evs[1].Ev != "dispatch" {
		t.Fatalf("task 1 evidence kinds = %q, %q", evs[0].Ev, evs[1].Ev)
	}
	if _, ok := r.Evidence[0]; ok {
		t.Fatal("clean task 0 must not appear in the evidence map")
	}

	// No recorder → no evidence, same violations.
	opts.Recorder = nil
	if r := Audit(inst, s, opts); r.Evidence != nil {
		t.Fatalf("evidence without a recorder: %+v", r.Evidence)
	}
}
