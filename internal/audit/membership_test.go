package audit

import (
	"math"
	"strings"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/elastic"
)

// membershipFixture: 4 slots, slot 3 drained at t=5. One task dispatched
// before the drain onto 3 (legal), one after (its set {2,3} remaps to {2,0}).
func membershipFixture() (*core.Instance, *elastic.Membership) {
	inst := core.NewInstance(4, []core.Task{
		{Release: 0, Proc: 1, Set: core.MustRingInterval(2, 2, 4)}, // {2,3}
		{Release: 6, Proc: 1, Set: core.MustRingInterval(2, 2, 4)},
	})
	ms := &elastic.Membership{Capacity: 4, Initial: 4, Changes: []elastic.Change{
		{At: 5, Machine: 3, Join: false, Members: 3},
	}}
	return inst, ms
}

func TestAuditMembershipEligibility(t *testing.T) {
	inst, ms := membershipFixture()
	s := core.NewSchedule(inst)
	s.Assign(0, 3, 0) // pre-drain: slot 3 is in the effective set
	s.Assign(1, 0, 6) // post-drain: walk {2,3} → {2,0}, slot 0 legal
	r := Audit(inst, s, Options{
		SkipLowerBound: true,
		Membership:     &MembershipInfo{Membership: ms, Dispatched: []core.Time{0, 6}},
	})
	if !r.Ok() {
		t.Fatalf("legal elastic schedule flagged: %v", r)
	}

	// Same schedule, but task 1 claims to have dispatched to the drained slot
	// after the drain: the membership invariant must fire.
	bad := core.NewSchedule(inst)
	bad.Assign(0, 3, 0)
	bad.Assign(1, 3, 6)
	r = Audit(inst, bad, Options{
		SkipLowerBound: true,
		Membership:     &MembershipInfo{Membership: ms, Dispatched: []core.Time{0, 6}},
	})
	found := false
	for _, v := range r.Violations {
		if v.Invariant == InvMembership && v.Task == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dispatch to a drained slot not flagged: %v", r)
	}

	// Without the membership log the static check would (wrongly, for an
	// elastic run) reject task 1 on slot 0 — confirming the two checks are
	// genuinely different.
	r = Audit(inst, s, Options{SkipLowerBound: true})
	static := false
	for _, v := range r.Violations {
		if v.Invariant == InvEligible && v.Task == 1 {
			static = true
		}
	}
	if !static {
		t.Fatal("static audit accepted the remapped machine; fixture is too weak")
	}
}

func TestAuditMembershipMissingDispatchInstant(t *testing.T) {
	inst, ms := membershipFixture()
	s := core.NewSchedule(inst)
	s.Assign(0, 3, 0)
	s.Assign(1, 0, 6)
	r := Audit(inst, s, Options{
		SkipLowerBound: true,
		Membership:     &MembershipInfo{Membership: ms, Dispatched: []core.Time{0, core.Time(math.NaN())}},
	})
	found := false
	for _, v := range r.Violations {
		if v.Invariant == InvMembership && strings.Contains(v.Detail, "dispatch instant") {
			found = true
		}
	}
	if !found {
		t.Fatalf("executed task without a dispatch instant not flagged: %v", r)
	}
}

func TestAuditMembershipShapeChecks(t *testing.T) {
	inst, ms := membershipFixture()
	s := core.NewSchedule(inst)
	s.Assign(0, 3, 0)
	s.Assign(1, 0, 6)
	for i, mi := range []*MembershipInfo{
		{Membership: nil, Dispatched: []core.Time{0, 6}},
		{Membership: ms, Dispatched: nil},
		{Membership: ms, Dispatched: []core.Time{0}},
		{Membership: &elastic.Membership{Capacity: 7, Initial: 7}, Dispatched: []core.Time{0, 6}},
	} {
		r := Audit(inst, s, Options{SkipLowerBound: true, Membership: mi})
		if r.Ok() || r.Violations[0].Invariant != InvShape {
			t.Errorf("malformed membership info %d not rejected as shape: %v", i, r)
		}
	}
}

// TestAuditMembershipSkipsFIFOEquiv: the Proposition 1 spot-check assumes a
// fixed machine count, so an elastic audit must not run it even on an
// unrestricted instance.
func TestAuditMembershipSkipsFIFOEquiv(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 1}, // unrestricted
		{Release: 0, Proc: 1},
	})
	ms := &elastic.Membership{Capacity: 2, Initial: 1} // only slot 0 active
	s := core.NewSchedule(inst)
	s.Assign(0, 0, 0)
	s.Assign(1, 0, 1)
	r := Audit(inst, s, Options{
		SkipLowerBound: true,
		Membership:     &MembershipInfo{Membership: ms, Dispatched: []core.Time{0, 0}},
	})
	for _, v := range r.Violations {
		if v.Invariant == InvFIFOEquiv {
			t.Fatalf("FIFO-equiv spot-check ran under a membership log: %v", r)
		}
	}
	if !r.Ok() {
		t.Fatalf("single-member serial schedule flagged: %v", r)
	}
}
