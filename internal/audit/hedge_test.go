package audit

import (
	"math"
	"math/rand"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/faults"
	"flowsched/internal/hedge"
	"flowsched/internal/sim"
)

// hedgeInfo bundles a hedged run's metrics into the auditor's HedgeInfo.
func hedgeInfo(em *sim.ElasticMetrics) *HedgeInfo {
	return &HedgeInfo{
		Hedged: em.Hedged, CopyServer: em.HedgeCopyServer, CopyAt: em.HedgeCopyAt,
		WonByCopy: em.HedgeWonByCopy, Busy: em.Busy, DuplicateWork: em.DuplicateWork,
	}
}

// TestAuditCleanHedgedRuns: schedules straight out of the hedged simulator
// must audit clean — healthy (where the busy-time identity is live), under
// gray slowdowns, and under crash plans with retries — across delay, tied
// and cancel-mid-service configs.
func TestAuditCleanHedgedRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		m := 2 + rng.Intn(5)
		n := 1 + rng.Intn(60)
		inst := randomInstance(m, n, rng)

		hcfg := &hedge.Config{Delay: 0.2 + rng.Float64()}
		switch trial % 3 {
		case 1:
			hcfg = &hedge.Config{Tied: true}
		case 2:
			hcfg.CancelRunning = true
		}

		var plan *faults.Plan
		var pol sim.RetryPolicy
		if trial%2 == 1 {
			plan = faults.Generate(m, 10, 6, 2, rng)
			pol = sim.RetryPolicy{MaxAttempts: 4, Backoff: 0.05}
		}

		s, em, err := sim.RunHedged(inst, sim.EFTRouter{}, plan, pol, nil, nil, hcfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		r := Audit(inst, s, Options{
			Plan:           plan,
			Completions:    completionsOf(inst, em),
			Dropped:        em.Dropped,
			Hedge:          hedgeInfo(em),
			SkipLowerBound: true, SkipFIFOEquiv: true,
		})
		if !r.Ok() {
			t.Fatalf("trial %d (m=%d n=%d hedges=%d): hedged audit failed:\n%s",
				trial, m, n, em.HedgesIssued, r)
		}
	}
}

// completionsOf reconstructs observed completion instants from the metrics'
// flows (release + flow; NaN for excluded tasks is skipped by the auditor
// through Dropped).
func completionsOf(inst *core.Instance, em *sim.ElasticMetrics) core.Times {
	out := make(core.Times, len(inst.Tasks))
	for i := range inst.Tasks {
		out[i] = inst.Tasks[i].Release + em.Flows[i]
	}
	return out
}

// TestAuditHedgeViolations: corrupted hedge records are flagged under
// InvHedge — ineligible copy server, phantom copy win, winner/schedule
// mismatch, and a broken busy-time identity.
func TestAuditHedgeViolations(t *testing.T) {
	inst := core.NewInstance(3, []core.Task{
		{Release: 0, Proc: 2, Set: core.NewProcSet(0, 1)},
		{Release: 0, Proc: 1},
	})
	hcfg := &hedge.Config{Delay: 0.5, CancelRunning: true}
	plan := faults.Empty(3).Slow(0, 0, 1000, 50)
	s, em, err := sim.RunHedged(inst, sim.EFTRouter{}, plan, sim.RetryPolicy{}, nil, nil, hcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if em.HedgesIssued == 0 || !em.HedgeWonByCopy[0] {
		t.Fatalf("scenario did not hedge task 0 to a win: %+v", em.Hedged)
	}
	base := Options{Plan: plan, Dropped: em.Dropped, SkipLowerBound: true, SkipFIFOEquiv: true}

	opts := base
	opts.Hedge = hedgeInfo(em)
	if r := Audit(inst, s, opts); !r.Ok() {
		t.Fatalf("clean hedged run flagged:\n%s", r)
	}

	// Copy server outside the processing set.
	bad := *hedgeInfo(em)
	bad.CopyServer = append([]int(nil), em.HedgeCopyServer...)
	bad.CopyServer[0] = 2 // task 0's set is {0, 1}
	opts.Hedge = &bad
	if r := Audit(inst, s, opts); !violated(r, InvHedge) {
		t.Fatalf("ineligible copy server not flagged:\n%s", r)
	}

	// Copy win claimed for a task that was never hedged.
	bad = *hedgeInfo(em)
	bad.WonByCopy = append([]bool(nil), em.HedgeWonByCopy...)
	bad.WonByCopy[1] = true
	opts.Hedge = &bad
	if r := Audit(inst, s, opts); !violated(r, InvHedge) {
		t.Fatalf("phantom copy win not flagged:\n%s", r)
	}

	// Winner disagrees with the schedule's machine.
	bad = *hedgeInfo(em)
	bad.CopyServer = append([]int(nil), em.HedgeCopyServer...)
	bad.CopyServer[0] = 0 // schedule runs task 0 on the copy's real server
	opts.Hedge = &bad
	if r := Audit(inst, s, opts); !violated(r, InvHedge) {
		t.Fatalf("winner/schedule mismatch not flagged:\n%s", r)
	}

	// Shape mismatches abort before any per-task reasoning.
	bad = *hedgeInfo(em)
	bad.Hedged = bad.Hedged[:1]
	opts.Hedge = &bad
	if r := Audit(inst, s, opts); !violated(r, InvShape) {
		t.Fatalf("hedge record shape mismatch not flagged:\n%s", r)
	}
}

// TestAuditHedgeBusyIdentity: on a healthy plan the auditor enforces
// Σ Busy = Σ completed work + DuplicateWork, catching both leaked cancelled
// copies and unreported duplicate work.
func TestAuditHedgeBusyIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	inst := randomInstance(3, 40, rng)
	s, em, err := sim.RunHedged(inst, &sim.RoundRobinRouter{}, nil, sim.RetryPolicy{}, nil, nil,
		&hedge.Config{Delay: 0.1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Dropped: em.Dropped, SkipLowerBound: true, SkipFIFOEquiv: true, Hedge: hedgeInfo(em)}
	if r := Audit(inst, s, opts); !r.Ok() {
		t.Fatalf("healthy hedged run flagged:\n%s", r)
	}

	bad := *hedgeInfo(em)
	bad.DuplicateWork += 1 // unaccounted burn
	opts.Hedge = &bad
	if r := Audit(inst, s, opts); !violated(r, InvHedge) {
		t.Fatalf("broken busy identity not flagged:\n%s", r)
	}

	bad = *hedgeInfo(em)
	bad.Busy = append(core.Times(nil), em.Busy...)
	bad.Busy[0] += 2 // a cancelled copy's work left in the busy ledger
	opts.Hedge = &bad
	if r := Audit(inst, s, opts); !violated(r, InvHedge) {
		t.Fatalf("leaked busy time not flagged:\n%s", r)
	}

	// NaN copy instants for never-hedged tasks must not trip anything.
	for i, h := range em.Hedged {
		if !h && !math.IsNaN(float64(em.HedgeCopyAt[i])) {
			t.Fatalf("task %d never hedged but CopyAt=%v", i, em.HedgeCopyAt[i])
		}
	}
}
