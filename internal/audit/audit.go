// Package audit is the machine-checkable definition of "this schedule is
// correct": a single auditor that takes any (instance, schedule) pair — from
// the online algorithms, the simulator, a faulty run, or a JSON replay — and
// checks every structural invariant the paper's model imposes, returning
// structured violations instead of a bool so randomized soak runs (see
// internal/chaos) can shrink and report exactly what broke.
//
// Invariants checked, in order:
//
//	shape        instance/schedule/options arrays agree in length
//	assignment   assigned tasks have a real machine and a finite start;
//	             dropped tasks are unassigned (Machine −1)
//	release      no task starts before its release (σ_i ≥ r_i)
//	eligibility  every task runs on a machine of its processing set
//	completion   completion = FinishTime(start, proc) under the plan's
//	             gray-failure slowdowns (= start + proc when healthy), and
//	             matches the observed completions when provided
//	downtime     no execution interval overlaps a Down segment of the plan
//	overlap      executions on one machine do not overlap
//	lower-bound  Fmax ≥ offline.LowerBound — only when no task was dropped
//	             (the bound assumes all work is done)
//	fifo-equiv   FIFO ≡ EFT spot-check (Proposition 1) on unrestricted
//	             instances: both algorithms must report the same Fmax
//	disposition  every task is admitted ∨ rejected ∨ shed ∨ dropped exactly
//	             once; non-admitted tasks are unassigned (guarded runs)
//	deadline     completed-task flow ≤ D + p_max under a deadline-admission
//	             budget D (guarded runs)
//	membership   under an elastic membership log, every executed task ran on
//	             a machine of its dispatch-time effective set (elastic runs;
//	             replaces the static eligibility check)
//	hedge        hedged runs: every speculative copy targeted an in-range,
//	             dispatch-time-eligible server; a copy win matches the
//	             schedule's machine and start; on healthy plans all busy
//	             time splits into completed work + duplicate work
//	resilience   resilient runs: retry-budget conservation (issued + dropped
//	             = requested, drops ↔ BudgetDropped dispositions) and
//	             breaker-state legality — no final dispatch inside an open
//	             window, only probe dispatches inside a half-open window,
//	             breaker counters consistent with the recorded spans
package audit

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"flowsched/internal/core"
	"flowsched/internal/elastic"
	"flowsched/internal/faults"
	"flowsched/internal/obs"
	"flowsched/internal/offline"
	"flowsched/internal/resilience"
	"flowsched/internal/sched"
)

// Invariant names, one per check. Violation.Invariant always holds one of
// these (or InvShape for structural mismatches that abort the audit).
const (
	InvShape      = "shape"
	InvAssignment = "assignment"
	InvRelease    = "release"
	InvEligible   = "eligibility"
	InvCompletion = "completion"
	InvDowntime   = "downtime"
	InvOverlap    = "overlap"
	InvLowerBound = "lower-bound"
	InvFIFOEquiv  = "fifo-equiv"
	// InvDisposition: every task is admitted ∨ rejected ∨ shed ∨ dropped,
	// exactly once, and non-admitted tasks are unassigned.
	InvDisposition = "disposition"
	// InvDeadline: with a deadline-admission budget D, every completed task
	// has flow ≤ D + p_max (the guarantee sim.RunGuarded enforces).
	InvDeadline = "deadline"
	// InvMembership: under an elastic membership log, every executed task ran
	// on a machine inside its *effective* processing set at its dispatch
	// instant — the first k active machines walking the ring from the set's
	// origin (elastic.Effective, the same walk the engine routes with).
	InvMembership = "membership"
	// InvHedge: hedged-execution invariants (sim.RunHedged) — every
	// speculative copy targeted a server inside the task's processing set
	// (effective set under elastic membership) at the copy's dispatch
	// instant; a task reported won-by-copy was hedged and the schedule runs
	// it on the copy's server at or after the copy's dispatch; and, on plans
	// with no outages and no slowdowns, total busy time equals the completed
	// tasks' processing time plus the metrics' DuplicateWork — cancelled
	// copies never leak into flow or busy accounting.
	InvHedge = "hedge"
	// InvResilience: resilience invariants (sim.RunResilient) — the retry
	// budget conserves exactly (RetriesIssued + RetriesDropped ==
	// RetriesRequested, and the drop count matches the BudgetDropped
	// dispositions); and under circuit breakers every task's *final*
	// dispatch respects the recorded breaker spans: never strictly inside an
	// open window (open → half-open), and inside a half-open window
	// (half-open → end) only when the dispatch was a half-open probe. The
	// span-derived open/close counts must match the metrics counters.
	InvResilience = "resilience"
)

// Violation is one broken invariant. Task and Machine are −1 when the
// violation is not specific to a task or machine.
type Violation struct {
	Invariant string `json:"invariant"`
	Task      int    `json:"task"`
	Machine   int    `json:"machine"`
	Detail    string `json:"detail"`
}

func (v Violation) String() string {
	var b strings.Builder
	b.WriteString(v.Invariant)
	if v.Task >= 0 {
		fmt.Fprintf(&b, " task %d", v.Task)
	}
	if v.Machine >= 0 {
		fmt.Fprintf(&b, " M%d", v.Machine+1)
	}
	b.WriteString(": ")
	b.WriteString(v.Detail)
	return b.String()
}

// Options configures an audit. The zero value checks a fault-free schedule
// against every invariant.
type Options struct {
	// Plan is the fault plan the schedule was produced under; nil means
	// fault-free. With a plan, completions are slowdown-adjusted via
	// faults.FinishTime and executions must avoid Down segments.
	Plan *faults.Plan
	// Completions are observed completion instants (e.g. release + flow from
	// simulator metrics) cross-checked against the recomputed ones. Optional.
	Completions []core.Time
	// Dropped marks tasks the simulator gave up on; they must be unassigned
	// and are excluded from completion/flow reasoning. Optional.
	Dropped []bool
	// Overload supplies the dispositions of a guarded run
	// (sim.RunGuarded with an overload config): rejected/shed tasks are held
	// to the same unassigned contract as dropped ones, disposition
	// exclusivity is checked, and — when Deadline is set — the admitted-task
	// flow bound Fmax ≤ Deadline + p_max. Optional.
	Overload *OverloadInfo
	// Membership supplies the membership log of an elastic run
	// (sim.RunElastic with a config): the static eligibility check is
	// replaced by the dispatch-time effective-set check (InvMembership), and
	// the FIFO ≡ EFT spot-check is skipped (the proposition assumes a fixed
	// machine count). Optional.
	Membership *MembershipInfo
	// Hedge supplies the per-task hedge record of a hedged run
	// (sim.RunHedged with a config): speculative-copy eligibility, copy-win
	// consistency and the busy-time accounting identity are checked
	// (InvHedge). Optional.
	Hedge *HedgeInfo
	// Resilience supplies the retry-budget ledger and breaker history of a
	// resilient run (sim.RunResilient with a config): budget conservation
	// and breaker-state dispatch legality are checked (InvResilience).
	// Optional.
	Resilience *ResilienceInfo
	// SkipLowerBound disables the Fmax ≥ offline.LowerBound check
	// (O(n²·|sets|) — callers auditing very large instances may opt out).
	SkipLowerBound bool
	// SkipFIFOEquiv disables the Proposition 1 spot-check (it re-runs both
	// FIFO and EFT over the instance).
	SkipFIFOEquiv bool
	// MaxViolations truncates the report; 0 means 64.
	MaxViolations int
	// Recorder, when set, is the flight recorder that watched the audited
	// run: every violation naming a task gets that task's raw event history
	// attached to the report (Report.Evidence), so a soak failure explains
	// itself without a re-run. Optional.
	Recorder *obs.FlightRecorder
}

// OverloadInfo carries the overload-control dispositions of a guarded run
// into the audit.
type OverloadInfo struct {
	// Rejected marks tasks turned away by admission control. Optional.
	Rejected []bool
	// Shed marks tasks abandoned mid-run by shedding or deadline
	// enforcement. Optional.
	Shed []bool
	// Deadline is the admission budget D of a Budgeted policy
	// (e.g. DeadlineAdmit); > 0 enables the Fmax ≤ D + p_max check over
	// completed tasks.
	Deadline core.Time
}

// MembershipInfo carries an elastic run's membership history into the audit:
// the replayable log (sim.ElasticMetrics.Membership) and each task's final
// dispatch instant (sim.ElasticMetrics.Dispatched; NaN for tasks that never
// dispatched). Both come straight from the simulator's metrics.
type MembershipInfo struct {
	Membership *elastic.Membership
	Dispatched []core.Time
}

// HedgeInfo carries a hedged run's per-task hedge record into the audit.
// All of it comes straight from sim.ElasticMetrics.
type HedgeInfo struct {
	// Hedged marks tasks for which a speculative copy was dispatched.
	Hedged []bool
	// CopyServer is the copy's server per hedged task (undefined otherwise).
	CopyServer []int
	// CopyAt is the copy's dispatch instant per hedged task.
	CopyAt core.Times
	// WonByCopy marks hedged tasks whose speculative copy won the race.
	WonByCopy []bool
	// Busy is the per-server busy time (sim.ElasticMetrics.Busy). Optional;
	// enables the aggregate accounting identity on healthy plans.
	Busy []core.Time
	// DuplicateWork is the busy time burned on losing attempts.
	DuplicateWork core.Time
}

// ResilienceInfo carries a resilient run's retry-budget ledger and breaker
// history into the audit. All of it comes straight from sim.ElasticMetrics.
type ResilienceInfo struct {
	// RetriesRequested/Issued/Dropped is the budget ledger; the conservation
	// equation Issued + Dropped == Requested must hold exactly.
	RetriesRequested int
	RetriesIssued    int
	RetriesDropped   int
	// BudgetDropped marks tasks whose retry the budget refused; the count
	// must equal RetriesDropped (each task's first refused retry settles its
	// disposition). Optional when no budget was configured.
	BudgetDropped []bool
	// Spans is the breaker open-episode history
	// (sim.ElasticMetrics.BreakerSpans); nil or empty when no breaker was
	// configured or none ever opened.
	Spans []resilience.Span
	// ProbeDispatch marks tasks whose final dispatch was a half-open probe.
	// Required (with Dispatched) when Spans is non-empty.
	ProbeDispatch []bool
	// Dispatched is each task's final dispatch instant
	// (sim.ElasticMetrics.Dispatched; NaN = never dispatched). Required when
	// Spans is non-empty.
	Dispatched []core.Time
	// BreakerOpens/BreakerCloses are the metrics counters, cross-checked
	// against the span history.
	BreakerOpens  int
	BreakerCloses int
}

// Report is the audit outcome: empty Violations means every invariant held.
type Report struct {
	Violations []Violation `json:"violations"`
	Truncated  bool        `json:"truncated,omitempty"`
	// Evidence maps each task named by a violation to its raw event history
	// from the run's flight recorder. Populated only when Options.Recorder
	// was set and the recorder held events for the task.
	Evidence map[int][]obs.FlightEvent `json:"evidence,omitempty"`
}

// Ok reports whether the audit found no violations.
func (r *Report) Ok() bool { return len(r.Violations) == 0 }

// Err returns nil for a clean report, or an error naming the first
// violation and the total count.
func (r *Report) Err() error {
	if r.Ok() {
		return nil
	}
	return fmt.Errorf("audit: %d violation(s); first: %s", len(r.Violations), r.Violations[0])
}

func (r *Report) String() string {
	if r.Ok() {
		return "audit: ok"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "audit: %d violation(s)", len(r.Violations))
	if r.Truncated {
		b.WriteString(" (truncated)")
	}
	for _, v := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

// tol is the audit tolerance: absolute for small values, relative for large
// ones, matching the float64 arithmetic of the simulator.
func tol(x core.Time) core.Time { return 1e-9 * (1 + math.Abs(x)) }

// Audit checks every invariant of the schedule against the instance under
// the given options and returns the structured report. It never modifies
// its inputs. With Options.Recorder set, violations naming a task carry the
// task's flight-recorder event history in Report.Evidence.
func Audit(inst *core.Instance, s *core.Schedule, opts Options) *Report {
	r := auditInvariants(inst, s, opts)
	if opts.Recorder != nil {
		for _, v := range r.Violations {
			if v.Task < 0 {
				continue
			}
			if _, seen := r.Evidence[v.Task]; seen {
				continue
			}
			if evs := opts.Recorder.TaskEvents(v.Task); len(evs) > 0 {
				if r.Evidence == nil {
					r.Evidence = make(map[int][]obs.FlightEvent)
				}
				r.Evidence[v.Task] = evs
			}
		}
	}
	return r
}

// auditInvariants runs the invariant checks and builds the raw report.
func auditInvariants(inst *core.Instance, s *core.Schedule, opts Options) *Report {
	r := &Report{}
	limit := opts.MaxViolations
	if limit <= 0 {
		limit = 64
	}
	add := func(v Violation) bool {
		if len(r.Violations) >= limit {
			r.Truncated = true
			return false
		}
		r.Violations = append(r.Violations, v)
		return true
	}

	n := inst.N()
	m := inst.M
	if len(s.Machine) != n || len(s.Start) != n {
		add(Violation{Invariant: InvShape, Task: -1, Machine: -1,
			Detail: fmt.Sprintf("schedule for %d/%d tasks, instance has %d", len(s.Machine), len(s.Start), n)})
		return r
	}
	if opts.Completions != nil && len(opts.Completions) != n {
		add(Violation{Invariant: InvShape, Task: -1, Machine: -1,
			Detail: fmt.Sprintf("%d observed completions for %d tasks", len(opts.Completions), n)})
		return r
	}
	if opts.Dropped != nil && len(opts.Dropped) != n {
		add(Violation{Invariant: InvShape, Task: -1, Machine: -1,
			Detail: fmt.Sprintf("%d dropped flags for %d tasks", len(opts.Dropped), n)})
		return r
	}
	var rejected, shed []bool
	var deadline core.Time
	if opts.Overload != nil {
		rejected, shed, deadline = opts.Overload.Rejected, opts.Overload.Shed, opts.Overload.Deadline
		if rejected != nil && len(rejected) != n {
			add(Violation{Invariant: InvShape, Task: -1, Machine: -1,
				Detail: fmt.Sprintf("%d rejected flags for %d tasks", len(rejected), n)})
			return r
		}
		if shed != nil && len(shed) != n {
			add(Violation{Invariant: InvShape, Task: -1, Machine: -1,
				Detail: fmt.Sprintf("%d shed flags for %d tasks", len(shed), n)})
			return r
		}
	}

	var ms *elastic.Membership
	var dispatched []core.Time
	if opts.Membership != nil {
		ms, dispatched = opts.Membership.Membership, opts.Membership.Dispatched
		if ms == nil || dispatched == nil {
			add(Violation{Invariant: InvShape, Task: -1, Machine: -1,
				Detail: "membership info needs both the log and the dispatch instants"})
			return r
		}
		if len(dispatched) != n {
			add(Violation{Invariant: InvShape, Task: -1, Machine: -1,
				Detail: fmt.Sprintf("%d dispatch instants for %d tasks", len(dispatched), n)})
			return r
		}
		if ms.Capacity != m {
			add(Violation{Invariant: InvShape, Task: -1, Machine: -1,
				Detail: fmt.Sprintf("membership log for %d slots, instance has %d machines", ms.Capacity, m)})
			return r
		}
	}

	if opts.Hedge != nil {
		h := opts.Hedge
		if len(h.Hedged) != n || len(h.CopyServer) != n || len(h.CopyAt) != n || len(h.WonByCopy) != n {
			add(Violation{Invariant: InvShape, Task: -1, Machine: -1,
				Detail: fmt.Sprintf("hedge record %d/%d/%d/%d entries for %d tasks",
					len(h.Hedged), len(h.CopyServer), len(h.CopyAt), len(h.WonByCopy), n)})
			return r
		}
		if h.Busy != nil && len(h.Busy) != m {
			add(Violation{Invariant: InvShape, Task: -1, Machine: -1,
				Detail: fmt.Sprintf("%d busy entries for %d machines", len(h.Busy), m)})
			return r
		}
	}

	if opts.Resilience != nil {
		ri := opts.Resilience
		if ri.BudgetDropped != nil && len(ri.BudgetDropped) != n {
			add(Violation{Invariant: InvShape, Task: -1, Machine: -1,
				Detail: fmt.Sprintf("%d budget-dropped flags for %d tasks", len(ri.BudgetDropped), n)})
			return r
		}
		if len(ri.Spans) > 0 {
			if len(ri.ProbeDispatch) != n || len(ri.Dispatched) != n {
				add(Violation{Invariant: InvShape, Task: -1, Machine: -1,
					Detail: fmt.Sprintf("breaker spans present but %d probe flags / %d dispatch instants for %d tasks",
						len(ri.ProbeDispatch), len(ri.Dispatched), n)})
				return r
			}
			for _, sp := range ri.Spans {
				if sp.Server < 0 || sp.Server >= m {
					add(Violation{Invariant: InvShape, Task: -1, Machine: -1,
						Detail: fmt.Sprintf("breaker span for server %d out of range [0,%d)", sp.Server, m)})
					return r
				}
			}
		}
	}

	var segs [][]faults.Slowdown
	var outages []faults.Outage
	if opts.Plan != nil {
		if opts.Plan.M != m {
			add(Violation{Invariant: InvShape, Task: -1, Machine: -1,
				Detail: fmt.Sprintf("fault plan for %d servers, instance has %d machines", opts.Plan.M, m)})
			return r
		}
		norm := opts.Plan.Normalize()
		segs = norm.ServerSlowdowns()
		outages = norm.Outages
	}

	dropped := func(i int) bool { return opts.Dropped != nil && opts.Dropped[i] }
	// excluded tasks never (finally) completed: dropped by the retry policy,
	// rejected by admission or shed by overload control. They share the
	// unassigned contract and are excluded from flow reasoning.
	excluded := func(i int) (bool, string) {
		kinds := 0
		name := ""
		if dropped(i) {
			kinds, name = kinds+1, "dropped"
		}
		if rejected != nil && rejected[i] {
			kinds, name = kinds+1, "rejected"
		}
		if shed != nil && shed[i] {
			kinds, name = kinds+1, "shed"
		}
		if kinds > 1 {
			name = "multiple-dispositions"
		}
		return kinds > 0, name
	}
	var pmax core.Time
	for i := range inst.Tasks {
		if p := inst.Tasks[i].Proc; p > pmax {
			pmax = p
		}
	}

	// Per-task checks; executions collected for the per-machine overlap scan.
	type exec struct {
		id         int
		start, end core.Time
	}
	perMachine := make([][]exec, m)
	anyDropped := false
	anyBroken := false // an unassigned/unfinishable task poisons Fmax reasoning
	var fmax core.Time
	for i := range inst.Tasks {
		task := &inst.Tasks[i]
		j := s.Machine[i]
		if out, kind := excluded(i); out {
			anyDropped = true
			if kind == "multiple-dispositions" {
				if !add(Violation{Invariant: InvDisposition, Task: i, Machine: -1,
					Detail: "task carries more than one of dropped/rejected/shed"}) {
					return r
				}
			}
			if j != -1 {
				anyBroken = true
				if !add(Violation{Invariant: InvAssignment, Task: i, Machine: j,
					Detail: kind + " task is assigned to a machine"}) {
					return r
				}
			}
			continue
		}
		if j < 0 || j >= m {
			anyBroken = true
			if !add(Violation{Invariant: InvAssignment, Task: i, Machine: -1,
				Detail: fmt.Sprintf("machine %d out of range [0,%d)", j, m)}) {
				return r
			}
			continue
		}
		start := s.Start[i]
		if math.IsNaN(start) || math.IsInf(start, 0) {
			anyBroken = true
			if !add(Violation{Invariant: InvAssignment, Task: i, Machine: j,
				Detail: fmt.Sprintf("invalid start time %v", start)}) {
				return r
			}
			continue
		}
		if start < task.Release-tol(task.Release) {
			if !add(Violation{Invariant: InvRelease, Task: i, Machine: j,
				Detail: fmt.Sprintf("starts at %v before release %v", start, task.Release)}) {
				return r
			}
		}
		if ms != nil {
			// Elastic runs route on the dispatch-time effective set, not the
			// static one; re-derive it from the log with the engine's own walk.
			at := dispatched[i]
			switch {
			case math.IsNaN(at):
				if !add(Violation{Invariant: InvMembership, Task: i, Machine: j,
					Detail: "executed task has no recorded dispatch instant"}) {
					return r
				}
			case !ms.Eligible(task.Set, at, j):
				if !add(Violation{Invariant: InvMembership, Task: i, Machine: j,
					Detail: fmt.Sprintf("machine outside the effective set of %v at dispatch t=%v (members %d)",
						task.Set, at, ms.MembersAt(at))}) {
					return r
				}
			}
		} else if !task.Eligible(j) {
			if !add(Violation{Invariant: InvEligible, Task: i, Machine: j,
				Detail: fmt.Sprintf("machine not in processing set %v", task.Set)}) {
				return r
			}
		}
		var comp core.Time
		if segs != nil {
			comp = faults.FinishTime(segs[j], start, task.Proc)
		} else {
			comp = start + task.Proc
		}
		if opts.Completions != nil {
			if obs := opts.Completions[i]; math.Abs(obs-comp) > tol(comp) {
				if !add(Violation{Invariant: InvCompletion, Task: i, Machine: j,
					Detail: fmt.Sprintf("observed completion %v, expected %v (start %v + proc %v%s)",
						obs, comp, start, task.Proc, slowNote(segs, j))}) {
					return r
				}
			}
		}
		for _, o := range outages {
			if o.Server != j {
				continue
			}
			if start < o.Until-tol(o.Until) && comp > o.From+tol(o.From) {
				if !add(Violation{Invariant: InvDowntime, Task: i, Machine: j,
					Detail: fmt.Sprintf("executes on [%v,%v) overlapping outage [%v,%v)", start, comp, o.From, o.Until)}) {
					return r
				}
			}
		}
		if f := comp - task.Release; f > fmax {
			fmax = f
		}
		if deadline > 0 {
			// The enforced admitted-task SLO: any completed task's flow is at
			// most the admission budget plus one (maximal) processing time.
			if f := comp - task.Release; f > deadline+pmax+tol(deadline+pmax) {
				if !add(Violation{Invariant: InvDeadline, Task: i, Machine: j,
					Detail: fmt.Sprintf("flow %v exceeds admitted budget %v + p_max %v", f, deadline, pmax)}) {
					return r
				}
			}
		}
		perMachine[j] = append(perMachine[j], exec{id: i, start: start, end: comp})
	}

	for j, execs := range perMachine {
		sort.Slice(execs, func(a, b int) bool { return execs[a].start < execs[b].start })
		for x := 1; x < len(execs); x++ {
			prev, cur := execs[x-1], execs[x]
			if cur.start < prev.end-tol(prev.end) {
				if !add(Violation{Invariant: InvOverlap, Task: cur.id, Machine: j,
					Detail: fmt.Sprintf("starts at %v while task %d runs until %v", cur.start, prev.id, prev.end)}) {
					return r
				}
			}
		}
	}

	if opts.Hedge != nil {
		if !auditHedge(inst, s, opts.Hedge, ms, segs, outages, excluded, add) {
			return r
		}
	}

	if opts.Resilience != nil {
		if !auditResilience(inst, s, opts.Resilience, add) {
			return r
		}
	}

	// Fmax ≥ LB holds for ANY feasible schedule that completes all work —
	// faults only delay completions — so it is skipped only when tasks were
	// dropped (work removed) or the schedule is structurally broken.
	if !opts.SkipLowerBound && !anyDropped && !anyBroken && n > 0 {
		lb := offline.LowerBound(inst)
		if fmax < lb-tol(lb) {
			add(Violation{Invariant: InvLowerBound, Task: -1, Machine: -1,
				Detail: fmt.Sprintf("Fmax %v below offline lower bound %v", fmax, lb)})
		}
	}

	// Proposition 1 spot-check: on unrestricted instances FIFO and EFT-Min
	// must agree on Fmax. This audits the instance/algorithm pair rather
	// than the given schedule — a canary that the equivalence the paper
	// proves still holds on this workload shape.
	if !opts.SkipFIFOEquiv && opts.Membership == nil && n > 0 && unrestricted(inst) {
		es, err1 := sched.NewEFT(sched.MinTie{}).Run(inst)
		fs, err2 := (&sched.FIFO{Tie: sched.MinTie{}}).Run(inst)
		switch {
		case err1 != nil || err2 != nil:
			add(Violation{Invariant: InvFIFOEquiv, Task: -1, Machine: -1,
				Detail: fmt.Sprintf("spot-check failed to run: eft=%v fifo=%v", err1, err2)})
		default:
			ef, ff := es.MaxFlow(), fs.MaxFlow()
			if math.Abs(ef-ff) > tol(ef) {
				add(Violation{Invariant: InvFIFOEquiv, Task: -1, Machine: -1,
					Detail: fmt.Sprintf("EFT Fmax %v ≠ FIFO Fmax %v (Proposition 1)", ef, ff)})
			}
		}
	}
	return r
}

// auditHedge runs the hedged-execution invariants (InvHedge). It reports
// false when the violation limit was hit mid-scan.
func auditHedge(inst *core.Instance, s *core.Schedule, h *HedgeInfo,
	ms *elastic.Membership, segs [][]faults.Slowdown, outages []faults.Outage,
	excluded func(int) (bool, string), add func(Violation) bool) bool {
	m := inst.M
	for i := range inst.Tasks {
		task := &inst.Tasks[i]
		if !h.Hedged[i] {
			if h.WonByCopy[i] {
				if !add(Violation{Invariant: InvHedge, Task: i, Machine: -1,
					Detail: "won by copy but never hedged"}) {
					return false
				}
			}
			continue
		}
		cj := h.CopyServer[i]
		if cj < 0 || cj >= m {
			if !add(Violation{Invariant: InvHedge, Task: i, Machine: -1,
				Detail: fmt.Sprintf("copy server %d out of range [0,%d)", cj, m)}) {
				return false
			}
			continue
		}
		at := h.CopyAt[i]
		// The copy's server must have been eligible when the copy was issued:
		// inside the dispatch-time effective set under elastic membership,
		// inside the static processing set otherwise.
		if ms != nil {
			if !ms.Eligible(task.Set, at, cj) {
				if !add(Violation{Invariant: InvHedge, Task: i, Machine: cj,
					Detail: fmt.Sprintf("copy server outside the effective set of %v at hedge t=%v (members %d)",
						task.Set, at, ms.MembersAt(at))}) {
					return false
				}
			}
		} else if !task.Eligible(cj) {
			if !add(Violation{Invariant: InvHedge, Task: i, Machine: cj,
				Detail: fmt.Sprintf("copy server not in processing set %v", task.Set)}) {
				return false
			}
		}
		if h.WonByCopy[i] {
			if out, kind := excluded(i); out {
				if !add(Violation{Invariant: InvHedge, Task: i, Machine: cj,
					Detail: "won by copy yet " + kind + " — a cancelled attempt was counted as the effective completion"}) {
					return false
				}
				continue
			}
			if s.Machine[i] != cj {
				if !add(Violation{Invariant: InvHedge, Task: i, Machine: s.Machine[i],
					Detail: fmt.Sprintf("copy on M%d won but the schedule runs the task on machine %d", cj+1, s.Machine[i])}) {
					return false
				}
				continue
			}
			if s.Machine[i] == cj && s.Start[i] < at-tol(at) {
				if !add(Violation{Invariant: InvHedge, Task: i, Machine: cj,
					Detail: fmt.Sprintf("copy dispatched at %v but starts at %v", at, s.Start[i])}) {
					return false
				}
			}
		}
	}

	// Busy-time accounting identity. Only on plans with no outages and no
	// slowdowns: every completed task then contributes exactly its processing
	// time, cancelled copies reclaim theirs, and losing attempts burn
	// DuplicateWork — Σ_j Busy[j] = Σ_{completed} p_i + DuplicateWork.
	if h.Busy != nil && segs == nil && len(outages) == 0 {
		var total, work core.Time
		for _, b := range h.Busy {
			total += b
		}
		for i := range inst.Tasks {
			if out, _ := excluded(i); out || s.Machine[i] < 0 || s.Machine[i] >= m {
				continue
			}
			work += inst.Tasks[i].Proc
		}
		want := work + h.DuplicateWork
		if math.Abs(total-want) > tol(want) {
			if !add(Violation{Invariant: InvHedge, Task: -1, Machine: -1,
				Detail: fmt.Sprintf("busy time %v ≠ completed work %v + duplicate work %v — cancelled or duplicate attempts leaked into the accounting",
					total, work, h.DuplicateWork)}) {
				return false
			}
		}
	}
	return true
}

// auditResilience runs the resilience invariants (InvResilience): exact
// retry-budget conservation and breaker-state dispatch legality. It reports
// false when the violation limit was hit mid-scan.
func auditResilience(inst *core.Instance, s *core.Schedule, ri *ResilienceInfo,
	add func(Violation) bool) bool {
	// Budget conservation is exact integer arithmetic — no tolerance.
	if ri.RetriesIssued+ri.RetriesDropped != ri.RetriesRequested {
		if !add(Violation{Invariant: InvResilience, Task: -1, Machine: -1,
			Detail: fmt.Sprintf("retry budget leaks: issued %d + dropped %d ≠ requested %d",
				ri.RetriesIssued, ri.RetriesDropped, ri.RetriesRequested)}) {
			return false
		}
	}
	if ri.BudgetDropped != nil {
		bd := 0
		for _, b := range ri.BudgetDropped {
			if b {
				bd++
			}
		}
		if bd != ri.RetriesDropped {
			if !add(Violation{Invariant: InvResilience, Task: -1, Machine: -1,
				Detail: fmt.Sprintf("%d budget-dropped dispositions for %d dropped retries", bd, ri.RetriesDropped)}) {
				return false
			}
		}
	}

	// Span-derived counters must match the metrics counters.
	closes := 0
	for _, sp := range ri.Spans {
		if sp.Closed {
			closes++
		}
	}
	if ri.BreakerOpens != len(ri.Spans) {
		if !add(Violation{Invariant: InvResilience, Task: -1, Machine: -1,
			Detail: fmt.Sprintf("BreakerOpens %d but %d recorded spans", ri.BreakerOpens, len(ri.Spans))}) {
			return false
		}
	}
	if ri.BreakerCloses != closes {
		if !add(Violation{Invariant: InvResilience, Task: -1, Machine: -1,
			Detail: fmt.Sprintf("BreakerCloses %d but %d spans closed by probe success", ri.BreakerCloses, closes)}) {
			return false
		}
	}
	if len(ri.Spans) == 0 {
		return true
	}

	// Breaker legality per executed task: its final dispatch instant must
	// not fall strictly inside an open window, and inside a half-open window
	// only as a probe. NaN span bounds mean "until the end of the run".
	// Strict comparisons on both ends keep same-instant transitions (an open
	// booked by the completion that tripped it, a close waking parked work)
	// out of the violation set — those orderings are legal by construction.
	until := func(t core.Time) core.Time {
		if math.IsNaN(t) {
			return core.Time(math.Inf(1))
		}
		return t
	}
	m := inst.M
	for i := range inst.Tasks {
		j := s.Machine[i]
		if j < 0 || j >= m {
			continue // never executed: no dispatch to check
		}
		d := ri.Dispatched[i]
		if math.IsNaN(d) {
			if !add(Violation{Invariant: InvResilience, Task: i, Machine: j,
				Detail: "executed task has no recorded dispatch instant"}) {
				return false
			}
			continue
		}
		for _, sp := range ri.Spans {
			if sp.Server != j {
				continue
			}
			halfOpen := until(sp.HalfOpenAt)
			end := until(sp.EndedAt)
			if d > sp.OpenedAt && d < halfOpen {
				if !add(Violation{Invariant: InvResilience, Task: i, Machine: j,
					Detail: fmt.Sprintf("dispatched at %v inside open breaker window [%v, %v)", d, sp.OpenedAt, sp.HalfOpenAt)}) {
					return false
				}
			} else if d > halfOpen && d < end && !ri.ProbeDispatch[i] {
				if !add(Violation{Invariant: InvResilience, Task: i, Machine: j,
					Detail: fmt.Sprintf("non-probe dispatch at %v inside half-open breaker window [%v, %v)", d, sp.HalfOpenAt, sp.EndedAt)}) {
					return false
				}
			}
		}
	}
	return true
}

func slowNote(segs [][]faults.Slowdown, j int) string {
	if segs == nil || len(segs[j]) == 0 {
		return ""
	}
	return fmt.Sprintf(", %d slowdown segment(s)", len(segs[j]))
}

// unrestricted reports whether every task may run anywhere — the domain of
// the paper's FIFO algorithm (nil set or the full interval).
func unrestricted(inst *core.Instance) bool {
	full := core.Interval(0, inst.M-1)
	for _, t := range inst.Tasks {
		if t.Set != nil && !t.Set.Equal(full) {
			return false
		}
	}
	return true
}
