// Package eventq provides the priority queues used across the simulator and
// schedulers: a generic min-heap ordered by time with FIFO tie-breaking, and
// an indexed min-heap over machine completion times supporting decrease/
// increase-key.
package eventq

// Item is an element of Queue: a payload scheduled at a time instant.
type Item[T any] struct {
	Time    float64
	Payload T
	seq     uint64
}

// itemHeap implements the sift operations directly instead of going through
// container/heap, whose interface-typed Push/Pop box every Item — two heap
// allocations per simulated event (see BenchmarkSimRunEFT in benchreg).
type itemHeap[T any] []Item[T]

func (h itemHeap[T]) less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}

func (h itemHeap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h itemHeap[T]) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// Queue is a time-ordered min-heap of events. Events with equal times are
// dequeued in insertion (FIFO) order, which makes discrete-event simulations
// deterministic. The zero value is ready to use.
type Queue[T any] struct {
	h   itemHeap[T]
	seq uint64
}

// Len reports the number of queued events.
func (q *Queue[T]) Len() int { return len(q.h) }

// Reserve grows the queue's backing array to hold at least n events without
// further allocation. Simulation hot loops call it once up front so that
// steady-state Push/Pop cycles stay allocation-free.
func (q *Queue[T]) Reserve(n int) {
	if cap(q.h) >= n {
		return
	}
	h := make(itemHeap[T], len(q.h), n)
	copy(h, q.h)
	q.h = h
}

// Push enqueues payload at the given time. Within reserved capacity it is
// allocation-free.
func (q *Queue[T]) Push(time float64, payload T) {
	q.seq++
	q.h = append(q.h, Item[T]{Time: time, Payload: payload, seq: q.seq})
	q.h.up(len(q.h) - 1)
}

// Pop dequeues the earliest event. It is allocation-free. It panics on an
// empty queue; check Len first.
func (q *Queue[T]) Pop() (float64, T) {
	it := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	var zero Item[T]
	q.h[n] = zero // release payload references for GC
	q.h = q.h[:n]
	if n > 0 {
		q.h.down(0)
	}
	return it.Time, it.Payload
}

// Peek returns the earliest event without removing it. It panics on an empty
// queue.
func (q *Queue[T]) Peek() (float64, T) {
	return q.h[0].Time, q.h[0].Payload
}

// Clear empties the queue while keeping its backing array, and rewinds the
// FIFO tie-break sequence to the zero value's. A cleared queue behaves
// exactly like a fresh one (same tie-break order for the same pushes), which
// is what lets sim's run arena recycle event queues across runs without
// perturbing determinism.
func (q *Queue[T]) Clear() {
	var zero Item[T]
	for i := range q.h {
		q.h[i] = zero // release payload references for GC
	}
	q.h = q.h[:0]
	q.seq = 0
}

// MachineHeap is an indexed min-heap over per-machine keys (typically
// completion times). It supports O(log m) updates of any machine's key and
// O(1) access to the machine with the smallest key, breaking ties by the
// smallest machine index (the paper's EFT-Min convention).
type MachineHeap struct {
	key  []float64 // key per machine index
	heap []int     // machine indices, heap-ordered
	pos  []int     // position of each machine in heap
}

// NewMachineHeap builds a heap over machines 0..m-1, all with key 0.
func NewMachineHeap(m int) *MachineHeap {
	h := &MachineHeap{
		key:  make([]float64, m),
		heap: make([]int, m),
		pos:  make([]int, m),
	}
	for j := 0; j < m; j++ {
		h.heap[j] = j
		h.pos[j] = j
	}
	return h
}

// Len reports the number of machines.
func (h *MachineHeap) Len() int { return len(h.heap) }

// Key returns machine j's current key.
func (h *MachineHeap) Key(j int) float64 { return h.key[j] }

// MinMachine returns the machine with the smallest key (ties broken by
// smallest index) and that key.
func (h *MachineHeap) MinMachine() (int, float64) {
	j := h.heap[0]
	return j, h.key[j]
}

// Update sets machine j's key and restores the heap order.
func (h *MachineHeap) Update(j int, key float64) {
	h.key[j] = key
	if !h.down(h.pos[j]) {
		h.up(h.pos[j])
	}
}

func (h *MachineHeap) less(a, b int) bool {
	ja, jb := h.heap[a], h.heap[b]
	if h.key[ja] != h.key[jb] {
		return h.key[ja] < h.key[jb]
	}
	return ja < jb
}

func (h *MachineHeap) swap(a, b int) {
	h.heap[a], h.heap[b] = h.heap[b], h.heap[a]
	h.pos[h.heap[a]] = a
	h.pos[h.heap[b]] = b
}

func (h *MachineHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *MachineHeap) down(i int) bool {
	moved := false
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return moved
		}
		h.swap(i, smallest)
		i = smallest
		moved = true
	}
}
