package eventq

import "math"

// EFTMinPicker answers EFT-Min dispatch queries over unrestricted tasks in
// amortized O(log m) per task, replacing the O(m) scan over machine
// completion times. It is byte-identical to the linear EFT-Min rule
// (Algorithm 3): a task released at r goes to the smallest-indexed machine
// of the tie set U = { j : C_j ≤ max(r, min_j C_j) }.
//
// Internally it keeps two structures in sync:
//
//   - a MachineHeap over busy machines, keyed by completion time with ties
//     to the smallest index (idle machines are parked at key +Inf);
//   - a plain min-heap of idle machine indices.
//
// At each dispatch, machines whose completion time has passed the release
// migrate busy → idle (each machine migrates at most once per assignment, so
// the work is amortized constant heap operations per task). If any machine
// is idle the tie set is exactly the idle set and the smallest idle index
// wins; otherwise the tie set is the busy machines at the minimum completion
// time and the MachineHeap's (key, index) order yields the smallest index.
type EFTMinPicker struct {
	busy *MachineHeap
	idle []int // min-heap of idle machine indices
}

// NewEFTMinPicker builds a picker over machines 0..m-1, all idle at time 0.
func NewEFTMinPicker(m int) *EFTMinPicker {
	p := &EFTMinPicker{busy: NewMachineHeap(m), idle: make([]int, 0, m)}
	for j := 0; j < m; j++ {
		p.busy.Update(j, math.Inf(1))
		p.idlePush(j)
	}
	return p
}

// Dispatch assigns a task with the given release and processing time to the
// machine EFT-Min would choose and returns that machine and the task's start
// time (max of the release and the machine's completion time).
func (p *EFTMinPicker) Dispatch(release, proc float64) (j int, start float64) {
	// Retire machines that have drained by the release instant.
	for {
		jm, c := p.busy.MinMachine()
		if c > release {
			break
		}
		p.busy.Update(jm, math.Inf(1))
		p.idlePush(jm)
	}
	if len(p.idle) > 0 {
		// Some machine is idle: the tie set is the idle machines and the
		// task starts at its release.
		j, start = p.idlePop(), release
	} else {
		// All machines busy: the tie set is the machines at the minimum
		// completion time; the heap's (completion, index) order picks the
		// smallest index among them.
		j, start = p.busy.MinMachine()
	}
	p.busy.Update(j, start+proc)
	return j, start
}

// Completion returns machine j's completion time (+Inf while it is idle and
// has never run a task; idle machines otherwise report +Inf as well, since
// their real completion time is in the past and irrelevant to EFT-Min).
func (p *EFTMinPicker) Completion(j int) float64 { return p.busy.Key(j) }

func (p *EFTMinPicker) idlePush(j int) {
	p.idle = append(p.idle, j)
	i := len(p.idle) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if p.idle[parent] <= p.idle[i] {
			break
		}
		p.idle[i], p.idle[parent] = p.idle[parent], p.idle[i]
		i = parent
	}
}

func (p *EFTMinPicker) idlePop() int {
	h := p.idle
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	p.idle = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h[l] < h[smallest] {
			smallest = l
		}
		if r < n && h[r] < h[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return top
}
