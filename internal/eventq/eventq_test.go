package eventq

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQueueOrdersByTime(t *testing.T) {
	var q Queue[string]
	q.Push(3, "c")
	q.Push(1, "a")
	q.Push(2, "b")
	var got []string
	for q.Len() > 0 {
		_, p := q.Pop()
		got = append(got, p)
	}
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("order = %v", got)
	}
}

func TestQueueFIFOAmongTies(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 10; i++ {
		q.Push(5, i)
	}
	for i := 0; i < 10; i++ {
		_, p := q.Pop()
		if p != i {
			t.Fatalf("tie order broken: got %d at position %d", p, i)
		}
	}
}

func TestQueuePeek(t *testing.T) {
	var q Queue[int]
	q.Push(2, 20)
	q.Push(1, 10)
	tm, p := q.Peek()
	if tm != 1 || p != 10 {
		t.Fatalf("Peek = %v %v", tm, p)
	}
	if q.Len() != 2 {
		t.Fatalf("Peek should not remove")
	}
}

func TestQueueHeapProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var q Queue[int]
		n := 1 + rng.Intn(200)
		times := make([]float64, n)
		for i := range times {
			times[i] = float64(rng.Intn(20)) // many ties
			q.Push(times[i], i)
		}
		sort.Float64s(times)
		prevTime := -1.0
		prevSeqAtTime := -1
		for i := 0; q.Len() > 0; i++ {
			tm, p := q.Pop()
			if tm != times[i] {
				return false
			}
			if tm == prevTime {
				if p < prevSeqAtTime { // FIFO among equal times
					return false
				}
			}
			prevTime, prevSeqAtTime = tm, p
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMachineHeapBasics(t *testing.T) {
	h := NewMachineHeap(4)
	j, key := h.MinMachine()
	if j != 0 || key != 0 {
		t.Fatalf("initial min = %d %v", j, key)
	}
	h.Update(0, 5)
	h.Update(1, 3)
	h.Update(2, 3)
	h.Update(3, 7)
	j, key = h.MinMachine()
	if j != 1 || key != 3 { // tie between 1 and 2 -> smallest index
		t.Fatalf("min = %d %v, want 1 3", j, key)
	}
	h.Update(1, 10)
	j, _ = h.MinMachine()
	if j != 2 {
		t.Fatalf("after update min = %d, want 2", j)
	}
	if h.Key(3) != 7 {
		t.Fatalf("Key(3) = %v", h.Key(3))
	}
	if h.Len() != 4 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestMachineHeapMatchesLinearScan(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(30)
		h := NewMachineHeap(m)
		keys := make([]float64, m)
		for step := 0; step < 200; step++ {
			j := rng.Intn(m)
			k := float64(rng.Intn(10))
			h.Update(j, k)
			keys[j] = k
			// Linear scan reference with min-index tie-break.
			bestJ, bestK := 0, keys[0]
			for x := 1; x < m; x++ {
				if keys[x] < bestK {
					bestJ, bestK = x, keys[x]
				}
			}
			gotJ, gotK := h.MinMachine()
			if gotJ != bestJ || gotK != bestK {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueReserve(t *testing.T) {
	var q Queue[int]
	q.Push(2, 2)
	q.Push(1, 1)
	q.Reserve(64)
	// Reserve preserves contents...
	if tm, p := q.Pop(); tm != 1 || p != 1 {
		t.Fatalf("Pop after Reserve = %v %v", tm, p)
	}
	// ...and a smaller reservation is a no-op.
	q.Reserve(1)
	if tm, p := q.Pop(); tm != 2 || p != 2 {
		t.Fatalf("Pop after no-op Reserve = %v %v", tm, p)
	}
}

// TestQueueAllocFree pins the hand-rolled sift operations: within reserved
// capacity a Push/Pop cycle performs no heap allocation (container/heap's
// interface-typed Push/Pop boxed every item).
func TestQueueAllocFree(t *testing.T) {
	var q Queue[int]
	q.Reserve(128)
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 100; i++ {
			q.Push(float64(100-i), i)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	})
	if avg != 0 {
		t.Fatalf("Push/Pop cycle allocates %v times within reserved capacity", avg)
	}
}

// TestEFTMinPickerMatchesLinearRule replays random task streams through the
// picker and the textbook O(m) EFT-Min rule and requires identical machine
// choices and start times at every step.
func TestEFTMinPickerMatchesLinearRule(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(12)
		p := NewEFTMinPicker(m)
		comp := make([]float64, m)
		release := 0.0
		for step := 0; step < 300; step++ {
			// Occasionally jump far ahead so every machine drains (all-idle
			// case), otherwise creep so the all-busy case is exercised.
			if rng.Intn(20) == 0 {
				release += 50
			} else {
				release += rng.Float64() / float64(m)
			}
			proc := 0.1 + rng.Float64()*3
			// Linear reference: tie set U = {j : comp[j] <= max(release, min)}.
			tmin := comp[0]
			for _, c := range comp[1:] {
				if c < tmin {
					tmin = c
				}
			}
			if release > tmin {
				tmin = release
			}
			wantJ := -1
			for j, c := range comp {
				if c <= tmin {
					wantJ = j
					break
				}
			}
			wantStart := comp[wantJ]
			if release > wantStart {
				wantStart = release
			}
			gotJ, gotStart := p.Dispatch(release, proc)
			if gotJ != wantJ || gotStart != wantStart {
				return false
			}
			comp[wantJ] = wantStart + proc
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEFTMinPickerCompletion(t *testing.T) {
	p := NewEFTMinPicker(2)
	if !math.IsInf(p.Completion(0), 1) {
		t.Fatalf("idle machine should report +Inf, got %v", p.Completion(0))
	}
	j, start := p.Dispatch(1, 2)
	if j != 0 || start != 1 {
		t.Fatalf("first dispatch = M%d at %v, want M0 at 1", j+1, start)
	}
	if p.Completion(0) != 3 {
		t.Fatalf("Completion(0) = %v, want 3", p.Completion(0))
	}
}

func TestEFTMinPickerAllocFree(t *testing.T) {
	p := NewEFTMinPicker(16)
	release := 0.0
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			release += 0.05
			p.Dispatch(release, 1)
		}
	})
	if avg != 0 {
		t.Fatalf("Dispatch allocates %v times per 64 tasks", avg)
	}
}

// TestQueueClearEqualsFresh: a cleared queue must behave exactly like a new
// one — in particular the tie-break sequence number restarts, so a run
// through a recycled queue (sim's run arena) pops FIFO-equal ties in the
// same order a fresh run would. It must also drop references to popped
// payloads (zeroed backing), and keep its capacity.
func TestQueueClearEqualsFresh(t *testing.T) {
	var fresh, reused Queue[int]
	for i := 0; i < 20; i++ {
		reused.Push(float64(20-i), i)
	}
	reused.Pop()
	reused.Pop()
	reused.Clear()
	if reused.Len() != 0 {
		t.Fatalf("cleared queue has %d elements", reused.Len())
	}

	feed := func(q *Queue[int]) []int {
		for i := 0; i < 10; i++ {
			q.Push(5, i) // all ties: order is purely the seq counter
		}
		var out []int
		for q.Len() > 0 {
			_, p := q.Pop()
			out = append(out, p)
		}
		return out
	}
	got, want := feed(&reused), feed(&fresh)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tie order after Clear = %v, fresh = %v", got, want)
		}
	}
}
