package offline

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowsched/internal/core"
	"flowsched/internal/sched"
)

func TestLowerBoundSimple(t *testing.T) {
	// One machine, two unit tasks at time 0: OPT Fmax = 2.
	inst := core.NewInstance(1, []core.Task{
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
	})
	lb := LowerBound(inst)
	if lb < 2-1e-9 {
		t.Fatalf("LowerBound = %v, want ≥ 2", lb)
	}
}

func TestLowerBoundPmax(t *testing.T) {
	inst := core.NewInstance(4, []core.Task{{Release: 0, Proc: 7}})
	if lb := LowerBound(inst); lb != 7 {
		t.Fatalf("LowerBound = %v, want 7", lb)
	}
}

func TestLowerBoundRestrictedSet(t *testing.T) {
	// Three unit tasks at time 0 all restricted to machine 0, with 4
	// machines: per-set bound gives F ≥ 3; the m-machine bound only 3/4.
	inst := core.NewInstance(4, []core.Task{
		{Release: 0, Proc: 1, Set: core.NewProcSet(0)},
		{Release: 0, Proc: 1, Set: core.NewProcSet(0)},
		{Release: 0, Proc: 1, Set: core.NewProcSet(0)},
	})
	if lb := LowerBound(inst); lb < 3-1e-9 {
		t.Fatalf("LowerBound = %v, want ≥ 3", lb)
	}
}

func TestBruteForceTinyExamples(t *testing.T) {
	// Theorem 7 flavor: T1 on {1,2} p=2 at 0, then two tasks on {0,1} p=2
	// at 1 -> OPT puts T1 on machine 2, Fmax = 2 (T2,T3 start at 1).
	inst := core.NewInstance(4, []core.Task{
		{Release: 0, Proc: 2, Set: core.NewProcSet(1, 2)},
		{Release: 1, Proc: 2, Set: core.NewProcSet(0, 1)},
		{Release: 1, Proc: 2, Set: core.NewProcSet(0, 1)},
	})
	s, err := BruteForce(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.MaxFlow() != 2 {
		t.Fatalf("OPT Fmax = %v, want 2", s.MaxFlow())
	}
}

func TestBruteForceRejectsLarge(t *testing.T) {
	tasks := make([]core.Task, MaxBruteForceTasks+1)
	for i := range tasks {
		tasks[i] = core.Task{Release: 0, Proc: 1}
	}
	if _, err := BruteForce(core.NewInstance(2, tasks)); err == nil {
		t.Fatalf("expected size rejection")
	}
}

func TestUnitOptimalSimple(t *testing.T) {
	// m=2, four unit tasks at 0: two rounds -> F = 2.
	tasks := make([]core.Task, 4)
	for i := range tasks {
		tasks[i] = core.Task{Release: 0, Proc: 1}
	}
	inst := core.NewInstance(2, tasks)
	f, err := UnitOptimal(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f != 2 {
		t.Fatalf("UnitOptimal = %v, want 2", f)
	}
}

func TestUnitOptimalRestricted(t *testing.T) {
	// Three unit tasks at 0 restricted to machine 0 among 3 machines: F=3.
	inst := core.NewInstance(3, []core.Task{
		{Release: 0, Proc: 1, Set: core.NewProcSet(0)},
		{Release: 0, Proc: 1, Set: core.NewProcSet(0)},
		{Release: 0, Proc: 1, Set: core.NewProcSet(0)},
	})
	f, err := UnitOptimal(inst, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f != 3 {
		t.Fatalf("UnitOptimal = %v, want 3", f)
	}
}

func TestUnitOptimalRejectsNonUnit(t *testing.T) {
	inst := core.NewInstance(1, []core.Task{{Release: 0, Proc: 2}})
	if _, err := UnitOptimal(inst, 0); err == nil {
		t.Fatalf("expected rejection of non-unit tasks")
	}
	inst2 := core.NewInstance(1, []core.Task{{Release: 0.5, Proc: 1}})
	if _, err := UnitOptimal(inst2, 0); err == nil {
		t.Fatalf("expected rejection of fractional releases")
	}
}

// randomUnitInstance draws a small random unit-task instance with arbitrary
// processing sets and integer releases.
func randomUnitInstance(rng *rand.Rand, m, n int) *core.Instance {
	tasks := make([]core.Task, n)
	for i := range tasks {
		var ids []int
		for j := 0; j < m; j++ {
			if rng.Intn(2) == 0 {
				ids = append(ids, j)
			}
		}
		if len(ids) == 0 {
			ids = append(ids, rng.Intn(m))
		}
		tasks[i] = core.Task{
			Release: float64(rng.Intn(5)),
			Proc:    1,
			Set:     core.NewProcSet(ids...),
		}
	}
	return core.NewInstance(m, tasks)
}

// TestBruteForceMatchesUnitOptimal cross-checks the two exact solvers on
// random small unit instances.
func TestBruteForceMatchesUnitOptimal(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(3)
		n := 1 + rng.Intn(8)
		inst := randomUnitInstance(rng, m, n)
		bf, err := BruteForce(inst)
		if err != nil {
			return false
		}
		uo, err := UnitOptimal(inst, 0)
		if err != nil {
			return false
		}
		return math.Abs(bf.MaxFlow()-uo) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestLowerBoundIsValid checks LowerBound ≤ OPT on random small instances.
func TestLowerBoundIsValid(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(3)
		n := 1 + rng.Intn(8)
		tasks := make([]core.Task, n)
		for i := range tasks {
			tasks[i] = core.Task{
				Release: float64(rng.Intn(5)),
				Proc:    0.5 + rng.Float64()*2,
			}
		}
		inst := core.NewInstance(m, tasks)
		bf, err := BruteForce(inst)
		if err != nil {
			return false
		}
		return LowerBound(inst) <= bf.MaxFlow()+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem1Bound verifies FIFO/EFT is within (3 − 2/m) of the exact
// optimum on random unrestricted instances (Theorem 1).
func TestTheorem1Bound(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(3)
		n := 2 + rng.Intn(8)
		tasks := make([]core.Task, n)
		for i := range tasks {
			tasks[i] = core.Task{
				Release: rng.Float64() * 4,
				Proc:    0.2 + rng.Float64()*2,
			}
		}
		inst := core.NewInstance(m, tasks)
		eft, err := sched.NewEFT(sched.MinTie{}).Run(inst)
		if err != nil {
			return false
		}
		opt, err := BruteForce(inst)
		if err != nil {
			return false
		}
		ratio := eft.MaxFlow() / opt.MaxFlow()
		return ratio <= 3-2/float64(m)+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem2FIFOOptimalUnit verifies Theorem 2: FIFO solves
// P|online-r_i, p_i = p|Fmax optimally (unit tasks, no restrictions).
func TestTheorem2FIFOOptimalUnit(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(3)
		n := 1 + rng.Intn(10)
		tasks := make([]core.Task, n)
		for i := range tasks {
			tasks[i] = core.Task{Release: float64(rng.Intn(6)), Proc: 1}
		}
		inst := core.NewInstance(m, tasks)
		fifo, err := (&sched.FIFO{}).Run(inst)
		if err != nil {
			return false
		}
		opt, err := UnitOptimal(inst, int(fifo.MaxFlow())+1)
		if err != nil {
			return false
		}
		return math.Abs(fifo.MaxFlow()-opt) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestCorollary1DisjointBound verifies EFT is (3 − 2/k)-competitive on
// disjoint size-k processing sets (Corollary 1) against the exact optimum.
func TestCorollary1DisjointBound(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		blocks := 1 + rng.Intn(2)
		m := k * blocks
		n := 2 + rng.Intn(7)
		tasks := make([]core.Task, n)
		for i := range tasks {
			b := rng.Intn(blocks)
			tasks[i] = core.Task{
				Release: rng.Float64() * 3,
				Proc:    0.2 + rng.Float64()*2,
				Set:     core.Interval(b*k, b*k+k-1),
			}
		}
		inst := core.NewInstance(m, tasks)
		eft, err := sched.NewEFT(sched.MinTie{}).Run(inst)
		if err != nil {
			return false
		}
		opt, err := BruteForce(inst)
		if err != nil {
			return false
		}
		return eft.MaxFlow() <= (3-2/float64(k))*opt.MaxFlow()+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnitOptimalBadUpperBound(t *testing.T) {
	// hi=1 infeasible here (two tasks, one machine).
	inst := core.NewInstance(1, []core.Task{
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
	})
	if _, err := UnitOptimal(inst, 1); err == nil {
		t.Fatalf("expected infeasible upper bound error")
	}
}

func TestBruteForceEmptyInstance(t *testing.T) {
	inst := core.NewInstance(2, nil)
	s, err := BruteForce(inst)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxFlow() != 0 {
		t.Fatalf("empty instance Fmax = %v", s.MaxFlow())
	}
}

// naiveBruteForce is an unpruned reference used to certify the optimized
// BruteForce.
func naiveBruteForce(inst *core.Instance) core.Time {
	n := inst.N()
	completion := make([]core.Time, inst.M)
	best := math.Inf(1)
	var dfs func(i int, curF core.Time)
	dfs = func(i int, curF core.Time) {
		if i == n {
			if curF < best {
				best = curF
			}
			return
		}
		task := inst.Tasks[i]
		try := func(j int) {
			start := completion[j]
			if task.Release > start {
				start = task.Release
			}
			f := curF
			if flow := start + task.Proc - task.Release; flow > f {
				f = flow
			}
			saved := completion[j]
			completion[j] = start + task.Proc
			dfs(i+1, f)
			completion[j] = saved
		}
		if task.Set == nil {
			for j := 0; j < inst.M; j++ {
				try(j)
			}
		} else {
			for _, j := range task.Set {
				try(j)
			}
		}
	}
	dfs(0, 0)
	return best
}

// TestBruteForceMatchesNaive certifies the pruned search (EFT incumbent,
// branch ordering, symmetry breaking) against the unpruned reference.
func TestBruteForceMatchesNaive(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		n := 1 + rng.Intn(8)
		tasks := make([]core.Task, n)
		for i := range tasks {
			var set core.ProcSet
			switch rng.Intn(3) {
			case 0: // unrestricted
			case 1:
				lo := rng.Intn(m)
				set = core.Interval(lo, lo+rng.Intn(m-lo))
			default:
				var ids []int
				for j := 0; j < m; j++ {
					if rng.Intn(2) == 0 {
						ids = append(ids, j)
					}
				}
				if len(ids) == 0 {
					ids = []int{rng.Intn(m)}
				}
				set = core.NewProcSet(ids...)
			}
			tasks[i] = core.Task{
				Release: rng.Float64() * 4,
				Proc:    0.2 + rng.Float64()*2,
				Set:     set,
			}
		}
		inst := core.NewInstance(m, tasks)
		pruned, err := BruteForce(inst)
		if err != nil {
			return false
		}
		if err := pruned.Validate(); err != nil {
			return false
		}
		want := naiveBruteForce(inst)
		return math.Abs(pruned.MaxFlow()-want) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestBruteForceLargerUnrestricted exercises the symmetry-broken search at
// the new size limit.
func TestBruteForceLargerUnrestricted(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	tasks := make([]core.Task, 16)
	for i := range tasks {
		tasks[i] = core.Task{Release: rng.Float64() * 3, Proc: 0.3 + rng.Float64()}
	}
	inst := core.NewInstance(4, tasks)
	s, err := BruteForce(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if lb := LowerBound(inst); s.MaxFlow() < lb-1e-9 {
		t.Fatalf("optimal %v below lower bound %v", s.MaxFlow(), lb)
	}
	// EFT can't beat the optimum.
	eft, err := sched.NewEFT(sched.MinTie{}).Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	if eft.MaxFlow() < s.MaxFlow()-1e-9 {
		t.Fatalf("EFT %v below claimed optimum %v", eft.MaxFlow(), s.MaxFlow())
	}
}
