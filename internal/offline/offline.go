// Package offline provides optimal baselines and lower bounds for the
// offline problem P|r_i,M_i|Fmax, used to measure empirical competitive
// ratios:
//
//   - LowerBound: a polynomial certified lower bound on the optimal Fmax
//     (interval work arguments plus p_max);
//   - BruteForce: the exact optimum for small instances by exhaustive
//     assignment search (each machine runs its tasks in FIFO order, which
//     is optimal per machine);
//   - UnitOptimal: the exact optimum for unit tasks with integer releases,
//     by binary search on F with a bipartite matching feasibility oracle
//     over (machine, time-slot) pairs — the polynomial special case noted
//     in Section 6.
package offline

import (
	"fmt"
	"math"
	"sort"

	"flowsched/internal/core"
	"flowsched/internal/maxflow"
)

// LowerBound returns a certified lower bound on the optimal maximum flow
// time. It combines:
//
//	F ≥ max_i p_i                                       (bound (3));
//	F ≥ work released in [a,b] / m − (b − a)            (interval bound);
//	F ≥ work of tasks restricted to S in [a,b] / |S| − (b − a)
//	                                                    (per-set bound),
//
// where [a,b] ranges over pairs of release times and S over the distinct
// processing sets of the instance.
func LowerBound(inst *core.Instance) core.Time {
	lb := inst.MaxProc()
	n := inst.N()
	if n == 0 {
		return 0
	}
	sets := inst.Sets()
	full := core.Interval(0, inst.M-1)
	// For each window start a (a release time), scan windows [a, b].
	for ai := 0; ai < n; ai++ {
		a := inst.Tasks[ai].Release
		if ai > 0 && a == inst.Tasks[ai-1].Release {
			continue
		}
		work := core.Time(0)
		workSet := make([]core.Time, len(sets))
		for bi := ai; bi < n; bi++ {
			task := inst.Tasks[bi]
			work += task.Proc
			ts := task.Set.Resolve(inst.M)
			for si, s := range sets {
				if ts.SubsetOf(s) {
					workSet[si] += task.Proc
				}
			}
			b := task.Release
			// Only evaluate at the end of a release group.
			if bi+1 < n && inst.Tasks[bi+1].Release == b {
				continue
			}
			if f := work/core.Time(inst.M) - (b - a); f > lb {
				lb = f
			}
			for si, s := range sets {
				if s.Equal(full) {
					continue // already covered by the m-machine bound
				}
				if f := workSet[si]/core.Time(s.Len()) - (b - a); f > lb {
					lb = f
				}
			}
		}
	}
	return lb
}

// MaxBruteForceTasks bounds the instance size accepted by BruteForce.
const MaxBruteForceTasks = 16

// BruteForce computes the exact optimal Fmax (and an optimal schedule) by
// exhaustive search over task-to-machine assignments with branch-and-bound.
// Given an assignment, running each machine's tasks in release order without
// idling is optimal (FIFO is optimal on a single machine), so only
// assignments are enumerated. Pruning: the EFT schedule seeds the incumbent,
// branches are explored in order of resulting flow, the certified LowerBound
// stops the search as soon as the incumbent matches it, and
// identical-completion machines are tried only once per node (they are
// interchangeable: swapping two machines' whole futures preserves
// feasibility and flows for unrestricted tasks, and a machine's identity
// only matters through its completion time and membership in the task's
// set, which the eligible-candidate filtering already accounts for before
// the symmetry check).
//
// Instances larger than MaxBruteForceTasks tasks are rejected.
func BruteForce(inst *core.Instance) (*core.Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if inst.N() > MaxBruteForceTasks {
		return nil, fmt.Errorf("offline: %d tasks exceed brute-force limit %d", inst.N(), MaxBruteForceTasks)
	}
	n := inst.N()
	lb := LowerBound(inst)

	// Symmetry breaking on identical-completion machines is only valid when
	// machines are interchangeable for every remaining task, i.e. the
	// instance is unrestricted.
	unrestricted := true
	for _, t := range inst.Tasks {
		if t.Set != nil && !t.Set.Equal(core.Interval(0, inst.M-1)) {
			unrestricted = false
			break
		}
	}

	bestF := math.Inf(1)
	bestMach := make([]int, n)
	bestStart := make([]core.Time, n)

	// Seed the incumbent with EFT-Min (computed inline to avoid an import
	// cycle with sched): it is feasible, so bestF starts tight.
	{
		completion := make([]core.Time, inst.M)
		f := core.Time(0)
		for i, task := range inst.Tasks {
			best := -1
			for j := 0; j < inst.M; j++ {
				if !task.Eligible(j) {
					continue
				}
				if best == -1 || completion[j] < completion[best] {
					best = j
				}
			}
			start := completion[best]
			if task.Release > start {
				start = task.Release
			}
			completion[best] = start + task.Proc
			bestMach[i] = best
			bestStart[i] = start
			if fl := start + task.Proc - task.Release; fl > f {
				f = fl
			}
		}
		bestF = f
	}

	curMach := make([]int, n)
	curStart := make([]core.Time, n)
	completion := make([]core.Time, inst.M)
	type cand struct {
		j    int
		f    core.Time
		strt core.Time
	}
	candBuf := make([][]cand, n)
	for i := range candBuf {
		candBuf[i] = make([]cand, 0, inst.M)
	}

	var dfs func(i int, curF core.Time)
	dfs = func(i int, curF core.Time) {
		if curF >= bestF || bestF <= lb+1e-12 {
			return // prune: flows only grow / incumbent already optimal
		}
		if i == n {
			bestF = curF
			copy(bestMach, curMach)
			copy(bestStart, curStart)
			return
		}
		task := inst.Tasks[i]
		cands := candBuf[i][:0]
		consider := func(j int) {
			start := completion[j]
			if task.Release > start {
				start = task.Release
			}
			f := curF
			if flow := start + task.Proc - task.Release; flow > f {
				f = flow
			}
			cands = append(cands, cand{j: j, f: f, strt: start})
		}
		if task.Set == nil {
			for j := 0; j < inst.M; j++ {
				consider(j)
			}
		} else {
			for _, j := range task.Set {
				consider(j)
			}
		}
		// Symmetry: among eligible machines with the same completion time
		// (hence same start and flow), keep one representative. Valid only
		// for fully unrestricted instances.
		if unrestricted {
			kept := cands[:0]
			for _, c := range cands {
				dup := false
				for _, k := range kept {
					if completion[k.j] == completion[c.j] {
						dup = true
						break
					}
				}
				if !dup {
					kept = append(kept, c)
				}
			}
			cands = kept
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].f < cands[b].f })
		for _, c := range cands {
			if c.f >= bestF {
				break // sorted: the rest are no better
			}
			saved := completion[c.j]
			completion[c.j] = c.strt + task.Proc
			curMach[i] = c.j
			curStart[i] = c.strt
			dfs(i+1, c.f)
			completion[c.j] = saved
		}
	}
	dfs(0, 0)

	s := core.NewSchedule(inst)
	for i := 0; i < n; i++ {
		s.Assign(i, bestMach[i], bestStart[i])
	}
	return s, nil
}

// UnitOptimal computes the exact optimal Fmax for an instance of unit tasks
// with integer release times: the smallest integer F such that every task
// can be matched to a free (machine, slot) pair with slot ∈ [r_i, r_i+F-1],
// found by binary search with a max-flow feasibility oracle. hi must be a
// known achievable Fmax (e.g. from any heuristic schedule); pass 0 to use
// the trivial bound n.
func UnitOptimal(inst *core.Instance, hi int) (core.Time, error) {
	if err := inst.Validate(); err != nil {
		return 0, err
	}
	if inst.N() == 0 {
		return 0, nil
	}
	if !inst.UnitTasks() {
		return 0, fmt.Errorf("offline: UnitOptimal requires unit tasks")
	}
	for _, t := range inst.Tasks {
		if t.Release != math.Trunc(t.Release) {
			return 0, fmt.Errorf("offline: UnitOptimal requires integer release times, got %v", t.Release)
		}
	}
	if hi <= 0 {
		hi = inst.N()
	}
	lo := 1
	if !unitFeasible(inst, hi) {
		return 0, fmt.Errorf("offline: claimed upper bound F=%d is not feasible", hi)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if unitFeasible(inst, mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return core.Time(lo), nil
}

// unitFeasible reports whether all unit tasks can complete with flow ≤ F.
func unitFeasible(inst *core.Instance, F int) bool {
	n := inst.N()
	type slot struct{ j, t int }
	slotID := make(map[slot]int)
	// Nodes: 0 = source, 1..n = tasks, then slots, then sink.
	var edges []struct {
		task int
		s    slot
	}
	for i, task := range inst.Tasks {
		r := int(task.Release)
		set := task.Set.Resolve(inst.M)
		for _, j := range set {
			for t := r; t <= r+F-1; t++ {
				key := slot{j, t}
				if _, ok := slotID[key]; !ok {
					slotID[key] = len(slotID)
				}
				edges = append(edges, struct {
					task int
					s    slot
				}{i, key})
			}
		}
	}
	numNodes := 1 + n + len(slotID) + 1
	src := 0
	sink := numNodes - 1
	g := maxflow.NewGraph(numNodes)
	for i := 0; i < n; i++ {
		g.AddEdge(src, 1+i, 1)
	}
	slotNode := func(s slot) int { return 1 + n + slotID[s] }
	added := make(map[int]bool)
	for _, e := range edges {
		g.AddEdge(1+e.task, slotNode(e.s), 1)
		if !added[slotNode(e.s)] {
			g.AddEdge(slotNode(e.s), sink, 1)
			added[slotNode(e.s)] = true
		}
	}
	r := g.Run(src, sink)
	return r.Value >= float64(n)-1e-9
}
