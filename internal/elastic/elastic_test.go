package elastic

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/overload"
)

func TestConfigValidate(t *testing.T) {
	good := []*Config{
		nil,
		{},
		{Initial: 3, Min: 2, Max: 5, WarmUp: 1},
		{Script: []Event{{At: 0, Delta: 2}, {At: 5, Delta: -1}}},
		{Auto: &Autoscaler{Guard: overload.NewEstimatorCapacity(4)}},
	}
	for i, c := range good {
		if err := c.Validate(6); err != nil {
			t.Errorf("good config %d rejected: %v", i, err)
		}
	}
	bad := []*Config{
		{Initial: 7},
		{Initial: -1},
		{Min: -1},
		{Min: 4, Max: 2},
		{Max: 9},
		{Initial: 1, Min: 2},
		{Initial: 5, Max: 4},
		{WarmUp: -1},
		{WarmUp: core.Time(math.Inf(1))},
		{Script: []Event{{At: 2, Delta: 0}}},
		{Script: []Event{{At: -3, Delta: 1}}},
		{Auto: &Autoscaler{}},
		{Auto: &Autoscaler{Guard: overload.NewEstimatorCapacity(4), UpUtil: 0.4, DownUtil: 0.5}},
		{Auto: &Autoscaler{Guard: overload.NewEstimatorCapacity(4), Sustain: -1}},
		{Auto: &Autoscaler{Guard: overload.NewEstimatorCapacity(4), Step: -2}},
	}
	for i, c := range bad {
		if err := c.Validate(6); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if err := (&Config{}).Validate(0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := &Config{}
	if c.InitialMembers(5) != 5 || c.MinMembers() != 1 || c.MaxMembers(5) != 5 {
		t.Errorf("zero config defaults: initial=%d min=%d max=%d",
			c.InitialMembers(5), c.MinMembers(), c.MaxMembers(5))
	}
	c = &Config{Initial: 2, Min: 2, Max: 4}
	if c.InitialMembers(5) != 2 || c.MinMembers() != 2 || c.MaxMembers(5) != 4 {
		t.Error("explicit bounds not honored")
	}
}

func TestRingStart(t *testing.T) {
	m := 6
	cases := []struct {
		set  core.ProcSet
		want int
	}{
		{nil, -1},
		{core.ProcSet{}, 0},
		{core.MustRingInterval(4, 3, m), 4}, // wraps: {4,5,0}
		{core.MustRingInterval(1, 2, m), 1},
		{core.MustRingInterval(0, m, m), 0}, // full ring
		{core.NewProcSet(0, 2, 4), 0},       // non-interval: min
	}
	for i, c := range cases {
		if got := RingStart(c.set, m); got != c.want {
			t.Errorf("case %d: RingStart(%v) = %d, want %d", i, c.set, got, c.want)
		}
	}
}

func TestEffectiveWalk(t *testing.T) {
	active := []bool{true, false, true, true, false, true} // members {0,2,3,5}
	cases := []struct {
		start, k int
		want     core.ProcSet
	}{
		{4, 3, core.ProcSet{0, 2, 5}},     // walk 4→5→0→…: {5,0,2} sorted
		{1, 2, core.ProcSet{2, 3}},        // walk 1→2→3
		{-1, 6, core.ProcSet{0, 2, 3, 5}}, // unrestricted: all actives
		{0, 1, core.ProcSet{0}},
		{4, 0, core.ProcSet{}},
	}
	for i, c := range cases {
		got := Effective(active, c.start, c.k, nil)
		if !reflect.DeepEqual(append(core.ProcSet{}, got...), c.want) {
			t.Errorf("case %d: Effective(start=%d,k=%d) = %v, want %v", i, c.start, c.k, got, c.want)
		}
	}
}

// TestEffectiveFullMembershipIsStaticInterval: with every slot active the
// walk reproduces the static ring interval exactly — the identity the
// full-membership engine equivalence test relies on.
func TestEffectiveFullMembershipIsStaticInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(10)
		active := make([]bool, m)
		for j := range active {
			active[j] = true
		}
		k := 1 + rng.Intn(m)
		u := rng.Intn(m)
		set := core.MustRingInterval(u, k, m)
		got := Effective(active, RingStart(set, m), k, nil)
		if !set.Equal(core.NewProcSet(got...)) {
			t.Fatalf("m=%d u=%d k=%d: walk %v ≠ static %v", m, u, k, got, set)
		}
	}
}

// TestEffectiveSorted: the walk output is always ascending (ProcSet's binary
// searches require it) and at most min(k, members) long.
func TestEffectiveSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 500; trial++ {
		m := 1 + rng.Intn(12)
		active := make([]bool, m)
		members := 0
		for j := range active {
			if rng.Intn(2) == 0 {
				active[j] = true
				members++
			}
		}
		k := rng.Intn(m + 2)
		start := rng.Intn(m)
		got := Effective(active, start, k, nil)
		want := k
		if members < want {
			want = members
		}
		if len(got) != want {
			t.Fatalf("len %d, want %d (k=%d members=%d)", len(got), want, k, members)
		}
		for x := 1; x < len(got); x++ {
			if got[x] <= got[x-1] {
				t.Fatalf("unsorted walk %v", got)
			}
		}
		for _, j := range got {
			if !active[j] {
				t.Fatalf("inactive slot %d in %v", j, got)
			}
		}
	}
}

func TestMembershipReplay(t *testing.T) {
	ms := &Membership{Capacity: 6, Initial: 3, Changes: []Change{
		{At: 2, Machine: 3, Join: true, Members: 4},
		{At: 5, Machine: 3, Join: false, Members: 3},
		{At: 5, Machine: 2, Join: false, Members: 2},
	}}
	if got := ms.MembersAt(0); got != 3 {
		t.Errorf("MembersAt(0) = %d", got)
	}
	if got := ms.MembersAt(2); got != 4 {
		t.Errorf("MembersAt(2) = %d (change at exactly t included)", got)
	}
	if got := ms.MembersAt(10); got != 2 {
		t.Errorf("MembersAt(10) = %d", got)
	}
	if got := ms.Final(); got != 2 {
		t.Errorf("Final() = %d", got)
	}
	// Machine-hours: 3·2 + 4·3 + 2·5 = 28 over horizon 10.
	if got := ms.MachineHours(10); got != 28 {
		t.Errorf("MachineHours(10) = %v, want 28", got)
	}
	// Changes beyond the horizon are ignored.
	if got := ms.MachineHours(4); got != 3*2+4*2 {
		t.Errorf("MachineHours(4) = %v, want 14", got)
	}
}

func TestMembershipEligibleBothSidesOfInstant(t *testing.T) {
	ms := &Membership{Capacity: 4, Initial: 4, Changes: []Change{
		{At: 5, Machine: 3, Join: false, Members: 3},
	}}
	set := core.MustRingInterval(2, 2, 4) // static {2,3}
	// Before the drain, 3 is eligible; after, the walk yields {2,0}.
	if !ms.Eligible(set, 4, 3) {
		t.Error("slot 3 ineligible before its drain")
	}
	if !ms.Eligible(set, 6, 0) || ms.Eligible(set, 6, 3) {
		t.Error("post-drain walk should remap {2,3} → {2,0}")
	}
	// At the drain instant both sides are accepted (event-queue tie order).
	if !ms.Eligible(set, 5, 3) || !ms.Eligible(set, 5, 0) {
		t.Error("at the change instant, both the old and new effective sets are valid")
	}
}

func TestMembershipJSONRoundTrip(t *testing.T) {
	ms := &Membership{Capacity: 5, Initial: 2, Changes: []Change{
		{At: 1.5, Machine: 2, Join: true, Members: 3},
	}}
	data, err := json.Marshal(ms)
	if err != nil {
		t.Fatal(err)
	}
	var back Membership
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*ms, back) {
		t.Fatalf("round trip: %+v ≠ %+v", back, *ms)
	}
}

// TestControllerHysteresis drives the controller with a hand-built load
// profile: sustained overload scales up (after Sustain, honoring Cooldown),
// sustained idleness scales down, and a single spike does nothing.
func TestControllerHysteresis(t *testing.T) {
	guard := overload.NewEstimatorCapacity(8)
	cfg := &Config{Auto: &Autoscaler{
		Guard: guard, MachineCapacity: 1,
		UpUtil: 0.9, DownUtil: 0.4,
		Sustain: 1, Cooldown: 2,
	}}
	ctrl := NewController(cfg, 8)
	if ctrl == nil {
		t.Fatal("controller nil with an autoscaler configured")
	}
	// No samples yet → hold.
	if d := ctrl.Decide(0, 2, 0, 1, 8); d != 0 {
		t.Fatalf("decision %d before any load estimate", d)
	}
	// Feed ~4 arrivals per unit: far above 0.9·1·2.
	now := core.Time(0)
	var ups, downs int
	for i := 0; i < 40; i++ {
		now += 0.25
		guard.Observe(now, -1)
		switch d := ctrl.Decide(now, 2+ups, 0, 1, 8); {
		case d > 0:
			ups += d
		case d < 0:
			downs -= d
		}
	}
	if ups == 0 {
		t.Fatal("sustained 2× overload never scaled up")
	}
	if downs != 0 {
		t.Fatalf("%d scale-downs during overload", downs)
	}
	// Cooldown: decisions are at least Cooldown apart, so 10 units of
	// overload can commit at most ~1 + 10/2 scale-ups.
	if ups > 6 {
		t.Fatalf("%d scale-ups in 10 units despite cooldown 2", ups)
	}

	// Now go idle: ~0.1 arrivals per unit against members+ups machines.
	members := 2 + ups
	for i := 0; i < 30 && downs == 0; i++ {
		now += 10
		guard.Observe(now, -1)
		if d := ctrl.Decide(now, members, 0, 1, 8); d < 0 {
			downs -= d
			members += d
		}
	}
	if downs == 0 {
		t.Fatal("sustained idleness never scaled down")
	}
	if members < 1 {
		t.Fatalf("scaled below the floor: %d", members)
	}
}

// TestControllerClampsToBounds: decisions clamp against min/max instead of
// overshooting.
func TestControllerClampsToBounds(t *testing.T) {
	guard := overload.NewEstimatorCapacity(8)
	cfg := &Config{Auto: &Autoscaler{
		Guard: guard, MachineCapacity: 1, Step: 5,
	}}
	ctrl := NewController(cfg, 8)
	now := core.Time(0)
	for i := 0; i < 10; i++ {
		now += 0.1
		guard.Observe(now, -1)
	}
	if d := ctrl.Decide(now, 3, 0, 1, 4); d != 1 {
		t.Fatalf("step 5 against max 4 with 3 members: delta %d, want 1", d)
	}
}

func TestNewControllerNilWithoutAuto(t *testing.T) {
	if NewController(&Config{}, 4) != nil || NewController(nil, 4) != nil {
		t.Error("controller should be nil without an autoscaler")
	}
}

// TestControllerResetMatchesNew: sim's run arena keeps one Controller value
// across runs and reinitializes it with Reset; the result must be exactly
// what NewController builds, even after the controller accumulated hysteresis
// state, and for a different config/capacity than the previous run's.
func TestControllerResetMatchesNew(t *testing.T) {
	mk := func(cap float64, up float64) *Config {
		return &Config{
			Min: 2,
			Auto: &Autoscaler{
				Guard:           overload.NewEstimatorCapacity(cap),
				MachineCapacity: 1, UpUtil: up, DownUtil: 0.4,
				Sustain: 1, Cooldown: 2, Step: 2,
			},
		}
	}
	cfgA, cfgB := mk(10, 0.9), mk(6, 0.8)

	var c Controller
	if c.Reset(nil, 8) || c.Reset(&Config{}, 8) {
		t.Fatal("Reset must report false without an autoscaler")
	}
	if !reflect.DeepEqual(c, Controller{}) {
		t.Fatal("a false Reset must leave the controller untouched")
	}

	if !c.Reset(cfgA, 8) {
		t.Fatal("Reset reported no autoscaler for a config with one")
	}
	if want := NewController(cfgA, 8); !reflect.DeepEqual(&c, want) {
		t.Fatalf("Reset(cfgA, 8) = %+v, NewController = %+v", c, *want)
	}

	// Accumulate streak state, then re-target a different config/capacity.
	for i := 0; i < 20; i++ {
		cfgA.Auto.Guard.Observe(core.Time(i)*0.05, i%8)
		c.Decide(core.Time(i)*0.05, 4, 0, 2, 8)
	}
	if !c.Reset(cfgB, 5) {
		t.Fatal("Reset reported no autoscaler for cfgB")
	}
	if want := NewController(cfgB, 5); !reflect.DeepEqual(&c, want) {
		t.Fatalf("used controller after Reset(cfgB, 5) = %+v, NewController = %+v", c, *want)
	}
}
