// Package elastic is the online membership layer of the cluster simulator:
// the ring of machines grows and shrinks *during* a run, either on a
// pre-agreed script or driven by the overload subsystem's capacity estimator
// (scale up on sustained brownout, scale down on sustained low utilization,
// with hysteresis and cooldown).
//
// The paper's model fixes m for the whole run; this package relaxes that
// while keeping its ring structure intact. The cluster is a fixed ring of
// Capacity machine *slots* (stable ids 0..Capacity−1, so fault plans and
// per-server metrics keep their indexing), of which only a prefix-by-walk
// subset is active at any instant:
//
//   - Scale-up activates the lowest inactive slot after a warm-up/setup
//     delay (Mäcker et al.'s setup-times model, PAPERS.md): the joiner is
//     announced immediately but accepts work only WarmUp later.
//   - Scale-down drains the highest active slot: its running request
//     finishes in place (non-preemptive execution), its queued requests are
//     handed off to the surviving members of each task's processing set.
//
// Processing sets are remapped onto the active subring by a deterministic
// walk (see Effective): the ring interval I_k(u) of Section 7.2 becomes the
// first k active machines clockwise from u. With every slot active this is
// exactly the static interval, so a full-capacity elastic run routes
// restricted work like a static one; with fewer members, intervals "split"
// across the gaps, which is precisely how consistent-hashing stores rebalance
// ownership when nodes join and leave.
//
// This package deliberately does not import internal/sim: the simulator
// (sim.RunElastic) imports it and replays the decisions; internal/audit
// imports it to re-derive dispatch-time eligibility from the Membership log
// with the very same walk, so engine and auditor cannot disagree.
package elastic

import (
	"fmt"
	"math"

	"flowsched/internal/core"
	"flowsched/internal/overload"
)

// Event is one scripted membership change: at instant At, add Delta machines
// (Delta > 0, each subject to the warm-up delay) or drain −Delta machines
// (Delta < 0). Scripted events clamp against Min/Max instead of failing, so
// a script composed with an autoscaler stays well-defined.
type Event struct {
	At    core.Time `json:"at"`
	Delta int       `json:"delta"`
}

// Autoscaler drives membership from the PR-5 SLO guard: it scales up when
// the estimated offered load sustains above UpUtil × the active capacity and
// down when it sustains below DownUtil × the capacity the cluster would have
// *after* shrinking, with a cooldown between decisions. The asymmetric
// thresholds (UpUtil > DownUtil) are the hysteresis band that prevents
// flapping.
type Autoscaler struct {
	// Guard supplies the offered-load estimate (overload.Estimator.
	// OfferedLoad). It may be the same estimator as overload.Config.Guard —
	// the engine then feeds it once per arrival, not twice.
	Guard *overload.Estimator
	// UpUtil is the scale-up threshold as a fraction of active capacity
	// (default 0.9, matching the estimator's brownout headroom).
	UpUtil float64
	// DownUtil is the scale-down threshold (default 0.5): shrink only when
	// the survivors would still run below this utilization.
	DownUtil float64
	// Sustain is how long a threshold crossing must hold before the
	// autoscaler acts (0 = act on the first crossing).
	Sustain core.Time
	// Cooldown is the minimum time between two scale decisions (0 = none).
	Cooldown core.Time
	// Step is the number of machines added or drained per decision
	// (default 1).
	Step int
	// MachineCapacity is the sustainable arrival rate of one machine; the
	// active capacity is MachineCapacity × members. Default: Guard.Capacity
	// divided by the run's full machine count — the LP capacity λ* scaled
	// down proportionally.
	MachineCapacity float64
}

func (a *Autoscaler) upUtil() float64 {
	if a.UpUtil > 0 {
		return a.UpUtil
	}
	return 0.9
}

func (a *Autoscaler) downUtil() float64 {
	if a.DownUtil > 0 {
		return a.DownUtil
	}
	return 0.5
}

func (a *Autoscaler) step() int {
	if a.Step > 0 {
		return a.Step
	}
	return 1
}

// perMachine resolves the per-machine capacity for a cluster whose full slot
// count is capacity.
func (a *Autoscaler) perMachine(capacity int) float64 {
	if a.MachineCapacity > 0 {
		return a.MachineCapacity
	}
	if a.Guard != nil && a.Guard.Capacity > 0 && capacity > 0 {
		return a.Guard.Capacity / float64(capacity)
	}
	return 0
}

func (a *Autoscaler) validate() error {
	if a.Guard == nil {
		return fmt.Errorf("elastic: autoscaler needs a capacity estimator (Guard)")
	}
	if a.UpUtil < 0 || a.DownUtil < 0 {
		return fmt.Errorf("elastic: autoscaler thresholds must be non-negative (up=%v down=%v)", a.UpUtil, a.DownUtil)
	}
	if a.downUtil() >= a.upUtil() {
		return fmt.Errorf("elastic: autoscaler needs DownUtil < UpUtil for hysteresis, got down=%v up=%v",
			a.downUtil(), a.upUtil())
	}
	if a.Sustain < 0 || math.IsNaN(float64(a.Sustain)) || math.IsInf(float64(a.Sustain), 0) {
		return fmt.Errorf("elastic: autoscaler sustain %v must be finite and non-negative", a.Sustain)
	}
	if a.Cooldown < 0 || math.IsNaN(float64(a.Cooldown)) || math.IsInf(float64(a.Cooldown), 0) {
		return fmt.Errorf("elastic: autoscaler cooldown %v must be finite and non-negative", a.Cooldown)
	}
	if a.Step < 0 {
		return fmt.Errorf("elastic: autoscaler step %d must be non-negative", a.Step)
	}
	if a.MachineCapacity < 0 || math.IsNaN(a.MachineCapacity) || math.IsInf(a.MachineCapacity, 0) {
		return fmt.Errorf("elastic: autoscaler machine capacity %v must be finite and non-negative", a.MachineCapacity)
	}
	return nil
}

// Config describes the elastic membership of one run. The instance's M is
// the *capacity* — the total number of machine slots — and membership moves
// within [Min, Max] starting from Initial. A nil *Config disables the layer
// entirely: sim.RunElastic then reproduces sim.RunGuarded bit for bit.
type Config struct {
	// Initial is the number of active machines at t = 0 (slots 0..Initial−1).
	// 0 means full capacity.
	Initial int
	// Min / Max bound the membership (defaults 1 and the capacity). Keep
	// Min ≥ the replication factor k, or a deep scale-down leaves fewer
	// machines than a set wants — see replicate.CheckK and the facade's
	// ValidateReplication.
	Min, Max int
	// WarmUp is the setup delay between a scale-up decision and the joiner
	// accepting work.
	WarmUp core.Time
	// Script is a pre-agreed sequence of scale events, replayed alongside
	// (and composable with) the autoscaler.
	Script []Event
	// Auto, when non-nil, attaches the estimator-driven autoscaler.
	Auto *Autoscaler
}

// InitialMembers resolves the starting membership against the capacity
// (Initial, or full capacity when 0).
func (c *Config) InitialMembers(capacity int) int {
	if c.Initial > 0 {
		return c.Initial
	}
	return capacity
}

// MinMembers resolves the lower membership bound (Min, or 1 when 0).
func (c *Config) MinMembers() int {
	if c.Min > 0 {
		return c.Min
	}
	return 1
}

// MaxMembers resolves the upper membership bound (Max, or the capacity
// when 0).
func (c *Config) MaxMembers(capacity int) int {
	if c.Max > 0 {
		return c.Max
	}
	return capacity
}

// Validate checks the configuration against a cluster of capacity machine
// slots. A nil config is valid (the layer is off).
func (c *Config) Validate(capacity int) error {
	if c == nil {
		return nil
	}
	if capacity < 1 {
		return fmt.Errorf("elastic: need at least one machine slot, got %d", capacity)
	}
	init, lo, hi := c.InitialMembers(capacity), c.MinMembers(), c.MaxMembers(capacity)
	if c.Initial < 0 || init > capacity {
		return fmt.Errorf("elastic: initial membership %d outside [1, %d]", c.Initial, capacity)
	}
	if c.Min < 0 || c.Max < 0 {
		return fmt.Errorf("elastic: negative membership bounds min=%d max=%d", c.Min, c.Max)
	}
	if lo > hi || hi > capacity {
		return fmt.Errorf("elastic: membership bounds [%d, %d] invalid for capacity %d", lo, hi, capacity)
	}
	if init < lo || init > hi {
		return fmt.Errorf("elastic: initial membership %d outside bounds [%d, %d]", init, lo, hi)
	}
	if c.WarmUp < 0 || math.IsNaN(float64(c.WarmUp)) || math.IsInf(float64(c.WarmUp), 0) {
		return fmt.Errorf("elastic: warm-up %v must be finite and non-negative", c.WarmUp)
	}
	for i, ev := range c.Script {
		if ev.Delta == 0 {
			return fmt.Errorf("elastic: script event %d at t=%v has zero delta", i, ev.At)
		}
		if ev.At < 0 || math.IsNaN(float64(ev.At)) || math.IsInf(float64(ev.At), 0) {
			return fmt.Errorf("elastic: script event %d instant %v must be finite and non-negative", i, ev.At)
		}
	}
	if c.Auto != nil {
		if err := c.Auto.validate(); err != nil {
			return err
		}
	}
	return nil
}

// Controller is the autoscaler's per-run hysteresis state machine. The
// engine feeds it at every arrival; it answers with the signed machine delta
// to apply now (0 = hold). It is deterministic: decisions depend only on the
// estimator's state and simulated time.
type Controller struct {
	auto   *Autoscaler
	perCap float64

	upSince   core.Time // first instant of the current above-threshold streak (−1 = none)
	downSince core.Time // first instant of the current below-threshold streak (−1 = none)
	last      core.Time // instant of the last scale decision
}

// NewController builds the controller for a run on capacity machine slots.
// It returns nil when the config has no autoscaler.
func NewController(c *Config, capacity int) *Controller {
	if c == nil || c.Auto == nil {
		return nil
	}
	return &Controller{
		auto:      c.Auto,
		perCap:    c.Auto.perMachine(capacity),
		upSince:   -1,
		downSince: -1,
		last:      core.Time(math.Inf(-1)),
	}
}

// Reset reinitializes c in place for a run on capacity machine slots,
// exactly as NewController would build it, and reports whether the config has
// an autoscaler at all (false leaves c untouched and means "run without a
// controller"). It lets sim's run arena keep one Controller value across runs
// instead of allocating a fresh one per run.
func (c *Controller) Reset(cfg *Config, capacity int) bool {
	if cfg == nil || cfg.Auto == nil {
		return false
	}
	*c = Controller{
		auto:      cfg.Auto,
		perCap:    cfg.Auto.perMachine(capacity),
		upSince:   -1,
		downSince: -1,
		last:      core.Time(math.Inf(-1)),
	}
	return true
}

// Decide evaluates the autoscaler at instant now with members active
// machines and pending machines still warming up, bounded by [min, max]. It
// returns the number of machines to add (> 0), drain (< 0) or 0 to hold.
func (c *Controller) Decide(now core.Time, members, pending, min, max int) int {
	load := c.auto.Guard.OfferedLoad()
	if load <= 0 || c.perCap <= 0 {
		c.upSince, c.downSince = -1, -1
		return 0
	}
	// Committed capacity counts warming machines: a second scale-up before
	// the first joiner is ready would double-provision for the same burst.
	committed := c.perCap * float64(members+pending)
	after := c.perCap * float64(members+pending-c.auto.step())
	switch {
	case load > c.auto.upUtil()*committed:
		if c.upSince < 0 {
			c.upSince = now
		}
		c.downSince = -1
	case members+pending > min && load < c.auto.downUtil()*after:
		if c.downSince < 0 {
			c.downSince = now
		}
		c.upSince = -1
	default:
		c.upSince, c.downSince = -1, -1
		return 0
	}
	if now-c.last < c.auto.Cooldown {
		return 0
	}
	if c.upSince >= 0 && now-c.upSince >= c.auto.Sustain {
		d := c.auto.step()
		if members+pending+d > max {
			d = max - members - pending
		}
		if d <= 0 {
			return 0
		}
		c.last, c.upSince = now, -1
		return d
	}
	if c.downSince >= 0 && now-c.downSince >= c.auto.Sustain {
		d := c.auto.step()
		if members+pending-d < min {
			d = members + pending - min
		}
		if d <= 0 {
			return 0
		}
		c.last, c.downSince = now, -1
		return -d
	}
	return 0
}
