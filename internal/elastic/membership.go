package elastic

import "flowsched/internal/core"

// RingStart returns the canonical walk origin of a processing set on a ring
// of capacity machine slots: for a circular interval I_k(u) it is u — the
// member whose ring predecessor is outside the set; for the unrestricted
// (nil) set it is −1 ("walk from slot 0"); a non-interval set is anchored at
// its smallest member. Full-ring sets start at 0.
func RingStart(set core.ProcSet, capacity int) int {
	if set == nil {
		return -1
	}
	if len(set) == 0 {
		return 0
	}
	if len(set) < capacity && set.IsCircularInterval(capacity) {
		for _, v := range set {
			if !set.Contains(((v-1)%capacity + capacity) % capacity) {
				return v
			}
		}
	}
	return set.Min()
}

// Effective computes a task's processing set under a membership snapshot:
// the first k active machines walking the ring clockwise from start (−1
// walks from slot 0). The result is appended into buf (resliced to zero) and
// returned sorted ascending, as core.ProcSet requires for its binary
// searches. Fewer than k active machines yield all of them; k ≤ 0 yields an
// empty set.
//
// This is the membership layer's one routing rule, shared verbatim between
// the engine (sim.RunElastic's dispatch) and the auditor (Membership.
// Eligible), so the invariant checker re-derives exactly what the engine
// offered the router.
func Effective(active []bool, start, k int, buf core.ProcSet) core.ProcSet {
	capacity := len(active)
	out := buf[:0]
	if k <= 0 || capacity == 0 {
		return out
	}
	if start < 0 {
		start = 0
	}
	for i := 0; i < capacity && len(out) < k; i++ {
		j := (start + i) % capacity
		if active[j] {
			out = append(out, j)
		}
	}
	// The walk emits at most one descending step (the ring wrap); insertion
	// sort restores ascending order in O(len) for the common case.
	for i := 1; i < len(out); i++ {
		for x := i; x > 0 && out[x] < out[x-1]; x-- {
			out[x], out[x-1] = out[x-1], out[x]
		}
	}
	return out
}

// Change is one membership transition: slot Machine joined (at the end of
// its warm-up) or left (at the drain instant). Members is the membership
// size after the change. Changes are recorded in event order, so At is
// non-decreasing.
type Change struct {
	At      core.Time `json:"at"`
	Machine int       `json:"machine"`
	Join    bool      `json:"join"`
	Members int       `json:"members"`
}

// Membership is the replayable membership history of one elastic run:
// capacity slots, the initial active prefix, and every transition. The
// auditor replays it to reconstruct the active set at any instant.
type Membership struct {
	Capacity int      `json:"capacity"`
	Initial  int      `json:"initial"`
	Changes  []Change `json:"changes,omitempty"`
}

// fillActive reconstructs the active-slot vector at instant t into buf
// (which must have length Capacity) and returns the membership size.
// strict=false applies changes with At ≤ t; strict=true only At < t — the
// two sides of a change instant.
func (ms *Membership) fillActive(buf []bool, t core.Time, strict bool) int {
	for j := range buf {
		buf[j] = j < ms.Initial
	}
	members := ms.Initial
	for _, ch := range ms.Changes {
		if ch.At > t || (strict && ch.At == t) {
			break
		}
		if ch.Machine >= 0 && ch.Machine < len(buf) && buf[ch.Machine] != ch.Join {
			buf[ch.Machine] = ch.Join
			if ch.Join {
				members++
			} else {
				members--
			}
		}
	}
	return members
}

// MembersAt returns the membership size at instant t (changes at exactly t
// included).
func (ms *Membership) MembersAt(t core.Time) int {
	buf := make([]bool, ms.Capacity)
	return ms.fillActive(buf, t, false)
}

// Final returns the membership size after the last change.
func (ms *Membership) Final() int {
	members := ms.Initial
	if n := len(ms.Changes); n > 0 {
		members = ms.Changes[n-1].Members
	}
	return members
}

// MachineHours integrates the membership size over [0, horizon] — the
// provisioning cost the autoscale experiment trades against Fmax. Changes
// after the horizon are ignored.
func (ms *Membership) MachineHours(horizon core.Time) core.Time {
	var hours core.Time
	members, last := ms.Initial, core.Time(0)
	for _, ch := range ms.Changes {
		if ch.At >= horizon {
			break
		}
		at := ch.At
		if at < last {
			at = last
		}
		hours += core.Time(members) * (at - last)
		members, last = ch.Members, at
	}
	if horizon > last {
		hours += core.Time(members) * (horizon - last)
	}
	return hours
}

// Eligible reports whether machine j was a valid destination for a task with
// the given static processing set dispatched at instant at: j must lie in
// the effective set (see Effective) under the membership in force at that
// instant. Because the engine may apply a same-instant scale event before or
// after a same-instant dispatch (the event queue breaks ties FIFO), both
// sides of the instant are accepted — membership "as of ≤ at" and "as of
// < at".
func (ms *Membership) Eligible(set core.ProcSet, at core.Time, j int) bool {
	return ms.eligibleAt(set, at, j, false) || ms.eligibleAt(set, at, j, true)
}

func (ms *Membership) eligibleAt(set core.ProcSet, at core.Time, j int, strict bool) bool {
	active := make([]bool, ms.Capacity)
	members := ms.fillActive(active, at, strict)
	k := len(set)
	if set == nil {
		k = members
	}
	eff := Effective(active, RingStart(set, ms.Capacity), k, nil)
	return len(eff) > 0 && eff.Contains(j)
}
