package preempt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowsched/internal/core"
	"flowsched/internal/offline"
	"flowsched/internal/sched"
)

func TestScheduleValidate(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 2},
		{Release: 0, Proc: 1, Set: core.NewProcSet(1)},
	})
	s := NewSchedule(inst)
	s.Add(0, 0, 0, 1)
	s.Add(0, 1, 1, 2) // migrates, fine
	s.Add(1, 1, 0, 1)
	if err := s.Validate(); err != nil {
		t.Fatalf("valid preemptive schedule rejected: %v", err)
	}
	if s.MaxFlow() != 2 {
		t.Fatalf("Fmax = %v", s.MaxFlow())
	}
}

func TestScheduleValidateErrors(t *testing.T) {
	inst := core.NewInstance(2, []core.Task{
		{Release: 1, Proc: 2},
		{Release: 0, Proc: 1, Set: core.NewProcSet(1)},
	})
	// Releases sorted: task 0 = the {M2} one (r=0), task 1 = r=1 p=2.
	mk := func() *Schedule { return NewSchedule(inst) }

	s := mk()
	// Missing pieces for task 1.
	s.Add(0, 1, 0, 1)
	if err := s.Validate(); err == nil {
		t.Errorf("missing pieces accepted")
	}

	s = mk()
	s.Add(0, 0, 0, 1) // ineligible machine
	s.Add(1, 0, 1, 3)
	if err := s.Validate(); err == nil {
		t.Errorf("ineligible machine accepted")
	}

	s = mk()
	s.Add(0, 1, 0, 1)
	s.Add(1, 0, 0.5, 2.5) // starts before release 1
	if err := s.Validate(); err == nil {
		t.Errorf("early start accepted")
	}

	s = mk()
	s.Add(0, 1, 0, 1)
	s.Add(1, 0, 1, 2)
	s.Add(1, 1, 1.5, 2.5) // parallel with itself
	if err := s.Validate(); err == nil {
		t.Errorf("self-parallel task accepted")
	}

	s = mk()
	s.Add(0, 1, 0, 1)
	s.Add(1, 1, 0.5, 2.5) // machine overlap with task 0
	if err := s.Validate(); err == nil {
		t.Errorf("machine overlap accepted")
	}

	s = mk()
	s.Add(0, 1, 0, 0.5) // wrong total
	s.Add(1, 0, 1, 3)
	if err := s.Validate(); err == nil {
		t.Errorf("wrong total accepted")
	}
}

func TestFeasibleSimple(t *testing.T) {
	// One machine, two unit tasks at 0: F=2 feasible, F=1.9 not.
	inst := core.NewInstance(1, []core.Task{
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
	})
	if !Feasible(inst, 2) {
		t.Errorf("F=2 should be feasible")
	}
	if Feasible(inst, 1.9) {
		t.Errorf("F=1.9 should be infeasible")
	}
}

func TestOptimalFmaxKnownValues(t *testing.T) {
	// m=2, three tasks p=2 at 0: preemptive optimum Fmax = 3 (McNaughton
	// makespan 6/2 = 3).
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 2},
		{Release: 0, Proc: 2},
		{Release: 0, Proc: 2},
	})
	f, err := OptimalFmax(inst, 0, 0, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-3) > 1e-5 {
		t.Fatalf("preemptive OPT = %v, want 3", f)
	}
	// Non-preemptive optimum is also 3 here but preemption helps when the
	// work is uneven: p = 3, 3, 2 on m=2 → preemptive (3+3+2)/2 = 4;
	// non-preemptive must serialize: OPT also 4? 3+... brute force says.
	inst2 := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 3},
		{Release: 0, Proc: 3},
		{Release: 0, Proc: 2},
	})
	f2, err := OptimalFmax(inst2, 0, 0, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f2-4) > 1e-5 {
		t.Fatalf("preemptive OPT = %v, want 4", f2)
	}
	np, err := offline.BruteForce(inst2)
	if err != nil {
		t.Fatal(err)
	}
	if np.MaxFlow() != 5 {
		t.Fatalf("non-preemptive OPT = %v, want 5 (3+2 on one machine)", np.MaxFlow())
	}
}

func TestOptimalRestrictedSets(t *testing.T) {
	// Three unit tasks at 0 restricted to machine 0 of 2: F = 3 even with
	// preemption.
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 1, Set: core.NewProcSet(0)},
		{Release: 0, Proc: 1, Set: core.NewProcSet(0)},
		{Release: 0, Proc: 1, Set: core.NewProcSet(0)},
	})
	f, err := OptimalFmax(inst, 0, 0, 1e-7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f-3) > 1e-5 {
		t.Fatalf("restricted preemptive OPT = %v, want 3", f)
	}
}

func TestMcNaughtonBuildsValidOptimalSchedule(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(4)
		n := 1 + rng.Intn(8)
		tasks := make([]core.Task, n)
		for i := range tasks {
			tasks[i] = core.Task{
				Release: float64(rng.Intn(4)),
				Proc:    0.25 * float64(1+rng.Intn(12)),
			}
		}
		inst := core.NewInstance(m, tasks)
		f, err := OptimalFmax(inst, 0, 0, 1e-9)
		if err != nil {
			return false
		}
		// Build the explicit schedule at F (+ tiny slack for bisection
		// error) and check it achieves it.
		s, err := McNaughton(inst, f+1e-7)
		if err != nil {
			return false
		}
		if err := s.Validate(); err != nil {
			return false
		}
		return s.MaxFlow() <= f+1e-4
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMcNaughtonRejects(t *testing.T) {
	restricted := core.NewInstance(2, []core.Task{{Release: 0, Proc: 1, Set: core.NewProcSet(0)}})
	if _, err := McNaughton(restricted, 5); err == nil {
		t.Errorf("restricted instance accepted")
	}
	tight := core.NewInstance(1, []core.Task{
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
	})
	if _, err := McNaughton(tight, 1.5); err == nil {
		t.Errorf("infeasible F accepted")
	}
}

// TestPreemptiveNeverWorse: preemptive OPT ≤ non-preemptive OPT, and both
// dominate the certified lower bound.
func TestPreemptiveNeverWorse(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(3)
		n := 1 + rng.Intn(7)
		tasks := make([]core.Task, n)
		for i := range tasks {
			var set core.ProcSet
			if rng.Intn(2) == 0 {
				lo := rng.Intn(m)
				hi := lo + rng.Intn(m-lo)
				set = core.Interval(lo, hi)
			}
			tasks[i] = core.Task{
				Release: rng.Float64() * 3,
				Proc:    0.2 + rng.Float64()*2,
				Set:     set,
			}
		}
		inst := core.NewInstance(m, tasks)
		pOpt, err := OptimalFmax(inst, 0, 0, 1e-8)
		if err != nil {
			return false
		}
		np, err := offline.BruteForce(inst)
		if err != nil {
			return false
		}
		lb := offline.LowerBound(inst)
		if pOpt > np.MaxFlow()+1e-5 {
			return false
		}
		return lb <= pOpt+1e-5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestFIFOWithinBoundOfPreemptiveOPT verifies the Table 1 preemptive row:
// FIFO (non-preemptive) stays within (3 − 2/m) of the PREEMPTIVE optimum
// (Mastrolilli [12]).
func TestFIFOWithinBoundOfPreemptiveOPT(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(3)
		n := 2 + rng.Intn(8)
		tasks := make([]core.Task, n)
		for i := range tasks {
			tasks[i] = core.Task{
				Release: rng.Float64() * 4,
				Proc:    0.2 + rng.Float64()*2,
			}
		}
		inst := core.NewInstance(m, tasks)
		fifo, err := (&sched.FIFO{}).Run(inst)
		if err != nil {
			return false
		}
		pOpt, err := OptimalFmax(inst, 0, 0, 1e-8)
		if err != nil {
			return false
		}
		return float64(fifo.MaxFlow()) <= (3-2/float64(m))*pOpt+1e-4
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyInstance(t *testing.T) {
	inst := core.NewInstance(3, nil)
	f, err := OptimalFmax(inst, 0, 0, 0)
	if err != nil || f != 0 {
		t.Fatalf("empty OPT = %v, %v", f, err)
	}
	if !Feasible(inst, 0) {
		t.Fatalf("empty instance should be feasible")
	}
	s, err := McNaughton(inst, 1)
	if err != nil || s == nil {
		t.Fatalf("empty McNaughton failed: %v", err)
	}
}
