package preempt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowsched/internal/core"
)

func TestOptimalLmaxReducesToFmax(t *testing.T) {
	// With due dates d_i = r_i, Lmax = Fmax (the paper's reduction).
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(3)
		n := 1 + rng.Intn(7)
		tasks := make([]core.Task, n)
		for i := range tasks {
			tasks[i] = core.Task{
				Release: rng.Float64() * 3,
				Proc:    0.2 + rng.Float64()*2,
			}
		}
		inst := core.NewInstance(m, tasks)
		due := make([]core.Time, n)
		for i, task := range inst.Tasks {
			due[i] = task.Release
		}
		lmax, err := OptimalLmax(inst, due, 1e-8)
		if err != nil {
			return false
		}
		fmax, err := OptimalFmax(inst, 0, 0, 1e-8)
		if err != nil {
			return false
		}
		return math.Abs(lmax-fmax) < 1e-5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalLmaxCanBeNegative(t *testing.T) {
	// One unit task released at 0 with due date 5: it finishes at 1, so
	// Lmax = -4.
	inst := core.NewInstance(1, []core.Task{{Release: 0, Proc: 1}})
	l, err := OptimalLmax(inst, []core.Time{5}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-(-4)) > 1e-6 {
		t.Fatalf("Lmax = %v, want -4", l)
	}
}

func TestOptimalLmaxKnownExample(t *testing.T) {
	// Two unit tasks at 0 on one machine, due dates 1 and 1: one finishes
	// at 1 (L=0), the other at 2 (L=1) → Lmax = 1.
	inst := core.NewInstance(1, []core.Task{
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
	})
	l, err := OptimalLmax(inst, []core.Time{1, 1}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-1) > 1e-6 {
		t.Fatalf("Lmax = %v, want 1", l)
	}
}

func TestFeasibleDeadlinesRestricted(t *testing.T) {
	// Two unit tasks pinned to M1 with deadlines 1 and 2: feasible; both
	// with deadline 1: infeasible.
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 1, Set: core.NewProcSet(0)},
		{Release: 0, Proc: 1, Set: core.NewProcSet(0)},
	})
	if !FeasibleDeadlines(inst, []core.Time{1, 2}) {
		t.Errorf("staggered deadlines should be feasible")
	}
	if FeasibleDeadlines(inst, []core.Time{1, 1}) {
		t.Errorf("both-at-1 should be infeasible on one machine")
	}
}

func TestFeasibleDeadlinesTightWindow(t *testing.T) {
	// A window shorter than the processing time is immediately infeasible.
	inst := core.NewInstance(3, []core.Task{{Release: 2, Proc: 3}})
	if FeasibleDeadlines(inst, []core.Time{4}) {
		t.Errorf("window of length 2 cannot fit p=3")
	}
	if !FeasibleDeadlines(inst, []core.Time{5}) {
		t.Errorf("window of length 3 fits exactly")
	}
}

func TestOptimalLmaxValidation(t *testing.T) {
	inst := core.NewInstance(1, []core.Task{{Release: 0, Proc: 1}})
	if _, err := OptimalLmax(inst, []core.Time{1, 2}, 0); err == nil {
		t.Errorf("length mismatch accepted")
	}
	empty := core.NewInstance(2, nil)
	if l, err := OptimalLmax(empty, nil, 0); err != nil || l != 0 {
		t.Errorf("empty instance: %v %v", l, err)
	}
}

func TestFeasibleDeadlinesPanicsOnMismatch(t *testing.T) {
	inst := core.NewInstance(1, []core.Task{{Release: 0, Proc: 1}})
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	FeasibleDeadlines(inst, []core.Time{1, 2})
}
