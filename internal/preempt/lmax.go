package preempt

import (
	"fmt"
	"sort"

	"flowsched/internal/core"
	"flowsched/internal/maxflow"
)

// The paper notes Fmax is the special case of Lmax with d_i = r_i (so that
// C_i − d_i = F_i); this file provides the general deadline form: the exact
// preemptive optimal maximum lateness Lmax = max_i (C_i − d_i) on identical
// machines with processing sets, via the same interval-capacity flows.

// FeasibleDeadlines reports whether every task can complete by its
// absolute deadline under preemption. deadlines is indexed by task ID.
func FeasibleDeadlines(inst *core.Instance, deadlines []core.Time) bool {
	n := inst.N()
	if n == 0 {
		return true
	}
	if len(deadlines) != n {
		panic(fmt.Sprintf("preempt: %d deadlines for %d tasks", len(deadlines), n))
	}
	for i, t := range inst.Tasks {
		if deadlines[i] < t.Release+t.Proc {
			return false // cannot even run the task inside its window
		}
	}
	points := make([]core.Time, 0, 2*n)
	for i, t := range inst.Tasks {
		points = append(points, t.Release, deadlines[i])
	}
	sort.Float64s(points)
	uniq := points[:0]
	for i, p := range points {
		if i == 0 || p > uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	type window struct{ lo, hi core.Time }
	var windows []window
	for i := 1; i < len(uniq); i++ {
		windows = append(windows, window{uniq[i-1], uniq[i]})
	}

	twID := make(map[[2]int]int)
	wmID := make(map[[2]int]int)
	next := 1 + n
	for i, task := range inst.Tasks {
		for w, win := range windows {
			if win.lo >= task.Release-1e-12 && win.hi <= deadlines[i]+1e-12 {
				twID[[2]int{i, w}] = next
				next++
				set := task.Set.Resolve(inst.M)
				for _, j := range set {
					key := [2]int{w, j}
					if _, ok := wmID[key]; !ok {
						wmID[key] = next
						next++
					}
				}
			}
		}
	}
	sink := next
	g := maxflow.NewGraph(sink + 1)
	demand := 0.0
	for i, task := range inst.Tasks {
		g.AddEdge(0, 1+i, task.Proc)
		demand += task.Proc
		for w, win := range windows {
			id, ok := twID[[2]int{i, w}]
			if !ok {
				continue
			}
			length := win.hi - win.lo
			g.AddEdge(1+i, id, length)
			set := task.Set.Resolve(inst.M)
			for _, j := range set {
				g.AddEdge(id, wmID[[2]int{w, j}], length)
			}
		}
	}
	for key, id := range wmID {
		w := key[0]
		g.AddEdge(id, sink, windows[w].hi-windows[w].lo)
	}
	r := g.Run(0, sink)
	return r.Value >= demand-1e-9*(1+demand)
}

// OptimalLmax computes the optimal preemptive maximum lateness with respect
// to the given due dates (indexed by task ID), to within tol (0 = 1e-6).
// The result may be negative when every task can finish early.
func OptimalLmax(inst *core.Instance, dueDates []core.Time, tol core.Time) (core.Time, error) {
	if err := inst.Validate(); err != nil {
		return 0, err
	}
	n := inst.N()
	if n == 0 {
		return 0, nil
	}
	if len(dueDates) != n {
		return 0, fmt.Errorf("preempt: %d due dates for %d tasks", len(dueDates), n)
	}
	if tol <= 0 {
		tol = 1e-6
	}
	// L ≥ r_i + p_i − d_i for every task (a task cannot finish before
	// r_i + p_i); an upper bound comes from running everything sequentially
	// after the last release.
	lo := inst.Tasks[0].Release + inst.Tasks[0].Proc - dueDates[0]
	for i, t := range inst.Tasks {
		if v := t.Release + t.Proc - dueDates[i]; v > lo {
			lo = v
		}
	}
	lastRelease := inst.Tasks[n-1].Release
	hi := lo
	for i := range inst.Tasks {
		if v := lastRelease + inst.TotalWork() - dueDates[i]; v > hi {
			hi = v
		}
	}
	deadlinesFor := func(L core.Time) []core.Time {
		ds := make([]core.Time, n)
		for i := range ds {
			ds[i] = dueDates[i] + L
		}
		return ds
	}
	if !FeasibleDeadlines(inst, deadlinesFor(hi)) {
		return 0, fmt.Errorf("preempt: internal error, upper bound L=%v infeasible", hi)
	}
	if FeasibleDeadlines(inst, deadlinesFor(lo)) {
		return lo, nil
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if FeasibleDeadlines(inst, deadlinesFor(mid)) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}
