// Package preempt covers the preemptive side of Table 1: a preemptive
// schedule model with full validation, the exact offline optimal maximum
// flow time for P|r_i,M_i,pmtn|Fmax via deadline bisection over a max-flow
// feasibility oracle (the interval-capacity conditions of Lawler and
// Labetoulle, realizable per interval by open-shop arguments), and
// McNaughton's wrap-around construction of an explicit optimal schedule for
// the unrestricted case.
//
// The library's online schedulers are non-preemptive; Mastrolilli [12]
// shows FIFO remains (3 − 2/m)-competitive even against the preemptive
// optimum, which the tests verify empirically using this package as the
// baseline.
package preempt

import (
	"fmt"
	"math"
	"sort"

	"flowsched/internal/core"
	"flowsched/internal/maxflow"
)

// Piece is one preempted fragment of a task: machine j busy on the task in
// [Start, End).
type Piece struct {
	Machine    int
	Start, End core.Time
}

// Schedule is a preemptive schedule: each task owns a list of pieces.
type Schedule struct {
	Inst   *core.Instance
	Pieces [][]Piece // indexed by task ID
}

// NewSchedule allocates an empty preemptive schedule.
func NewSchedule(inst *core.Instance) *Schedule {
	return &Schedule{Inst: inst, Pieces: make([][]Piece, inst.N())}
}

// Add appends a piece to task i.
func (s *Schedule) Add(i, machine int, start, end core.Time) {
	s.Pieces[i] = append(s.Pieces[i], Piece{Machine: machine, Start: start, End: end})
}

// Completion returns C_i = the end of task i's last piece (NaN if no
// pieces).
func (s *Schedule) Completion(i int) core.Time {
	if len(s.Pieces[i]) == 0 {
		return math.NaN()
	}
	c := s.Pieces[i][0].End
	for _, p := range s.Pieces[i][1:] {
		if p.End > c {
			c = p.End
		}
	}
	return c
}

// Flow returns F_i = C_i − r_i.
func (s *Schedule) Flow(i int) core.Time {
	return s.Completion(i) - s.Inst.Tasks[i].Release
}

// MaxFlow returns Fmax.
func (s *Schedule) MaxFlow() core.Time {
	var mx core.Time
	for i := range s.Inst.Tasks {
		if f := s.Flow(i); f > mx || math.IsNaN(f) {
			mx = f
		}
	}
	return mx
}

const eps = 1e-7

// Validate checks the preemptive feasibility conditions:
//   - every piece runs on an eligible machine, after the release time,
//     with positive length;
//   - each task's pieces never overlap in time (no parallel execution of
//     one task);
//   - pieces on the same machine never overlap;
//   - each task receives exactly p_i units of processing.
func (s *Schedule) Validate() error {
	type span struct {
		start, end core.Time
		task       int
	}
	byMachine := make([][]span, s.Inst.M)
	for i, task := range s.Inst.Tasks {
		if len(s.Pieces[i]) == 0 {
			return fmt.Errorf("task %d: no pieces", i)
		}
		var total core.Time
		spans := make([]span, 0, len(s.Pieces[i]))
		for _, p := range s.Pieces[i] {
			if p.Machine < 0 || p.Machine >= s.Inst.M {
				return fmt.Errorf("task %d: piece on invalid machine %d", i, p.Machine)
			}
			if !task.Eligible(p.Machine) {
				return fmt.Errorf("task %d: piece on ineligible machine M%d", i, p.Machine+1)
			}
			if p.End <= p.Start {
				return fmt.Errorf("task %d: empty piece [%v,%v)", i, p.Start, p.End)
			}
			if p.Start < task.Release-eps {
				return fmt.Errorf("task %d: piece starts %v before release %v", i, p.Start, task.Release)
			}
			total += p.End - p.Start
			spans = append(spans, span{p.Start, p.End, i})
			byMachine[p.Machine] = append(byMachine[p.Machine], span{p.Start, p.End, i})
		}
		if math.Abs(total-task.Proc) > eps {
			return fmt.Errorf("task %d: pieces sum to %v, want p=%v", i, total, task.Proc)
		}
		sort.Slice(spans, func(a, b int) bool { return spans[a].start < spans[b].start })
		for x := 1; x < len(spans); x++ {
			if spans[x-1].end > spans[x].start+eps {
				return fmt.Errorf("task %d: runs in parallel with itself around %v", i, spans[x].start)
			}
		}
	}
	for j, spans := range byMachine {
		sort.Slice(spans, func(a, b int) bool { return spans[a].start < spans[b].start })
		for x := 1; x < len(spans); x++ {
			if spans[x-1].end > spans[x].start+eps {
				return fmt.Errorf("machine M%d: tasks %d and %d overlap around %v",
					j+1, spans[x-1].task, spans[x].task, spans[x].start)
			}
		}
	}
	return nil
}

// Feasible reports whether every task can complete with flow at most F
// under preemption (deadlines d_i = r_i + F). It delegates to the general
// deadline oracle FeasibleDeadlines: with event points {r_i} ∪ {d_i}
// splitting time into windows of length len_q, route p_i units from each
// task through (task, window) nodes of capacity len_q (a task cannot run
// in parallel with itself) into (window, machine) nodes of capacity len_q
// (machine capacity), restricted to eligible machines and windows inside
// [r_i, d_i]. Row and column sums at most len_q per window are sufficient
// for a feasible preemptive realization (open-shop argument).
func Feasible(inst *core.Instance, F core.Time) bool {
	deadlines := make([]core.Time, inst.N())
	for i, t := range inst.Tasks {
		deadlines[i] = t.Release + F
	}
	return FeasibleDeadlines(inst, deadlines)
}

// OptimalFmax computes the optimal preemptive maximum flow time to within
// tol (default 1e-6) by bisection over Feasible. The search starts from
// the certified lower bound lb (pass 0 to use max p_i) and the achievable
// upper bound hi (pass 0 to use lb + total work).
func OptimalFmax(inst *core.Instance, lb, hi core.Time, tol core.Time) (core.Time, error) {
	if err := inst.Validate(); err != nil {
		return 0, err
	}
	if inst.N() == 0 {
		return 0, nil
	}
	if tol <= 0 {
		tol = 1e-6
	}
	if lb <= 0 {
		lb = inst.MaxProc()
	}
	if hi <= 0 {
		hi = lb + inst.TotalWork()
	}
	if !Feasible(inst, hi) {
		return 0, fmt.Errorf("preempt: upper bound F=%v infeasible", hi)
	}
	if Feasible(inst, lb) {
		return lb, nil
	}
	for hi-lb > tol {
		mid := (lb + hi) / 2
		if Feasible(inst, mid) {
			hi = mid
		} else {
			lb = mid
		}
	}
	return hi, nil
}

// McNaughton builds an explicit optimal preemptive schedule achieving flow
// F for an UNRESTRICTED instance known to be feasible at F: within each
// window between event points, it schedules the per-task amounts of a
// feasible flow by McNaughton's wrap-around rule. It returns an error for
// restricted instances (use Feasible/OptimalFmax for the value there) or
// if F is infeasible.
func McNaughton(inst *core.Instance, F core.Time) (*Schedule, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	for _, t := range inst.Tasks {
		if t.Set != nil && !t.Set.Equal(core.Interval(0, inst.M-1)) {
			return nil, fmt.Errorf("preempt: McNaughton requires unrestricted tasks")
		}
	}
	n := inst.N()
	s := NewSchedule(inst)
	if n == 0 {
		return s, nil
	}
	// Event points and windows as in Feasible.
	points := make([]core.Time, 0, 2*n)
	for _, t := range inst.Tasks {
		points = append(points, t.Release, t.Release+F)
	}
	sort.Float64s(points)
	uniq := points[:0]
	for i, p := range points {
		if i == 0 || p > uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	type window struct{ lo, hi core.Time }
	var windows []window
	for i := 1; i < len(uniq); i++ {
		windows = append(windows, window{uniq[i-1], uniq[i]})
	}

	// Flow: task → window (cap len), window → sink (cap m·len). For the
	// unrestricted case this simpler network is exact.
	winNode := func(w int) int { return 1 + n + w }
	sink := 1 + n + len(windows)
	g := maxflow.NewGraph(sink + 1)
	demand := 0.0
	type edgeRef struct{ task, win, id int }
	var refs []edgeRef
	for i, task := range inst.Tasks {
		g.AddEdge(0, 1+i, task.Proc)
		demand += task.Proc
		d := task.Release + F
		for w, win := range windows {
			if win.lo >= task.Release-1e-12 && win.hi <= d+1e-12 {
				id := g.AddEdge(1+i, winNode(w), win.hi-win.lo)
				refs = append(refs, edgeRef{i, w, id})
			}
		}
	}
	for w, win := range windows {
		g.AddEdge(winNode(w), sink, core.Time(inst.M)*(win.hi-win.lo))
	}
	res := g.Run(0, sink)
	if res.Value < demand-1e-9*(1+demand) {
		return nil, fmt.Errorf("preempt: F=%v infeasible (flow %v < %v)", F, res.Value, demand)
	}

	// McNaughton wrap-around per window.
	amounts := make([][]float64, len(windows)) // per window: list of (task, amount)
	taskOf := make([][]int, len(windows))
	for _, ref := range refs {
		a := res.Flow(ref.id)
		if a > 1e-9 {
			amounts[ref.win] = append(amounts[ref.win], a)
			taskOf[ref.win] = append(taskOf[ref.win], ref.task)
		}
	}
	for w, win := range windows {
		length := win.hi - win.lo
		machine := 0
		cursor := core.Time(0)
		for x, a := range amounts[w] {
			i := taskOf[w][x]
			remaining := core.Time(a)
			for remaining > 1e-12 {
				if machine >= inst.M {
					return nil, fmt.Errorf("preempt: internal error, window %d overflows machines", w)
				}
				avail := length - cursor
				run := remaining
				if run > avail {
					run = avail
				}
				if run > 1e-12 {
					s.Add(i, machine, win.lo+cursor, win.lo+cursor+run)
				}
				remaining -= run
				cursor += run
				if cursor >= length-1e-12 {
					machine++
					cursor = 0
				}
			}
		}
	}
	return s, nil
}
