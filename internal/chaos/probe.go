package chaos

import (
	"fmt"
	"math"

	"flowsched/internal/audit"
	"flowsched/internal/core"
	"flowsched/internal/obs"
	"flowsched/internal/sim"
)

// countProbe is the metrics cross-checker: it counts the simulator's event
// stream independently and compares its totals against the metrics the run
// reports. Any disagreement means the simulator's bookkeeping and its event
// stream have diverged — a bug neither the schedule auditor nor the metrics
// alone would catch. It also observes the overload-control stream
// (obs.OverloadObserver), so guarded trials cross-check rejections, sheds
// and ejections the same way, and the membership stream
// (obs.MembershipObserver), so churn trials cross-check scale-ups, joins,
// drains and handoffs against the run's metrics and membership log, and the
// resilience stream (obs.ResilienceObserver), so resilient trials
// cross-check breaker transitions, probe dispatches and retry-budget drops
// against the run's metrics.
type countProbe struct {
	obs.BaseProbe
	arrivals   int
	dispatches int
	completes  int
	drops      int
	retries    int
	ends       []core.Time // per-task final completion; NaN = never completed
	makespan   core.Time
	doneCalls  int

	rejects      int
	sheds        int
	ejections    int
	readmissions int
	rejected     []bool
	shed         []bool

	scaleUps      int
	joins         int
	scaleDowns    int
	handoffs      int
	drainHandoffs int // handoff totals as reported by the drain events
	warmUp        core.Time

	hedges       int
	hedgeWins    int
	copyWins     int
	hedgeCancels int
	hedged       []bool
	wonByCopy    []bool

	breakerOpens  int
	breakerCloses int
	breakerProbes int
	budgetDrops   int
	probed        []bool
	budgetDropped []bool
}

func newCountProbe(n int) *countProbe {
	ends := make([]core.Time, n)
	for i := range ends {
		ends[i] = math.NaN()
	}
	return &countProbe{
		ends: ends, rejected: make([]bool, n), shed: make([]bool, n),
		hedged: make([]bool, n), wonByCopy: make([]bool, n),
		probed: make([]bool, n), budgetDropped: make([]bool, n),
	}
}

func (c *countProbe) OnArrival(task int, release core.Time) { c.arrivals++ }

func (c *countProbe) OnDispatch(task, server int, at, start, end core.Time) { c.dispatches++ }

func (c *countProbe) OnComplete(task, server int, release, proc, end core.Time) {
	c.completes++
	if task >= 0 && task < len(c.ends) {
		c.ends[task] = end
	}
}

func (c *countProbe) OnDrop(task int, release, at core.Time) { c.drops++ }

func (c *countProbe) OnRetry(task, attempt int, at core.Time) { c.retries++ }

func (c *countProbe) OnDone(makespan core.Time) {
	c.makespan = makespan
	c.doneCalls++
}

// OnReject implements obs.OverloadObserver.
func (c *countProbe) OnReject(task int, at core.Time, reason string) {
	c.rejects++
	if task >= 0 && task < len(c.rejected) {
		c.rejected[task] = true
	}
}

// OnShed implements obs.OverloadObserver.
func (c *countProbe) OnShed(task, server int, release, at core.Time, reason string) {
	c.sheds++
	if task >= 0 && task < len(c.shed) {
		c.shed[task] = true
	}
}

// OnEject implements obs.OverloadObserver.
func (c *countProbe) OnEject(server int, at core.Time) { c.ejections++ }

// OnReadmit implements obs.OverloadObserver.
func (c *countProbe) OnReadmit(server int, at core.Time) { c.readmissions++ }

// OnBrownout implements obs.OverloadObserver.
func (c *countProbe) OnBrownout(at core.Time, active bool) {}

// OnScaleUp implements obs.MembershipObserver.
func (c *countProbe) OnScaleUp(machine int, at, ready core.Time) {
	c.scaleUps++
	c.warmUp += ready - at
}

// OnJoin implements obs.MembershipObserver.
func (c *countProbe) OnJoin(machine int, at core.Time, members int) { c.joins++ }

// OnScaleDown implements obs.MembershipObserver.
func (c *countProbe) OnScaleDown(machine int, at core.Time, members, handoffs int) {
	c.scaleDowns++
	c.drainHandoffs += handoffs
}

// OnHandoff implements obs.MembershipObserver.
func (c *countProbe) OnHandoff(task, from int, at core.Time) { c.handoffs++ }

// OnHedge implements obs.HedgeObserver.
func (c *countProbe) OnHedge(task, from, to int, at, start, end core.Time) {
	c.hedges++
	if task >= 0 && task < len(c.hedged) {
		c.hedged[task] = true
	}
}

// OnHedgeWin implements obs.HedgeObserver.
func (c *countProbe) OnHedgeWin(task, server int, byCopy bool, at core.Time) {
	c.hedgeWins++
	if byCopy {
		c.copyWins++
		if task >= 0 && task < len(c.wonByCopy) {
			c.wonByCopy[task] = true
		}
	}
}

// OnHedgeCancel implements obs.HedgeObserver.
func (c *countProbe) OnHedgeCancel(task, server int, at core.Time, started bool) { c.hedgeCancels++ }

// OnBreakerOpen implements obs.ResilienceObserver.
func (c *countProbe) OnBreakerOpen(server int, at core.Time) { c.breakerOpens++ }

// OnBreakerProbe implements obs.ResilienceObserver.
func (c *countProbe) OnBreakerProbe(server, task int, at core.Time) {
	c.breakerProbes++
	if task >= 0 && task < len(c.probed) {
		c.probed[task] = true
	}
}

// OnBreakerClose implements obs.ResilienceObserver.
func (c *countProbe) OnBreakerClose(server int, at core.Time) { c.breakerCloses++ }

// OnRetryBudgetDrop implements obs.ResilienceObserver.
func (c *countProbe) OnRetryBudgetDrop(task, attempts int, at core.Time) {
	c.budgetDrops++
	if task >= 0 && task < len(c.budgetDropped) {
		c.budgetDropped[task] = true
	}
}

// crossCheck compares the probe's event counts against the run's metrics
// and returns one InvProbe violation per disagreement.
func (c *countProbe) crossCheck(inst *core.Instance, om *sim.OverloadMetrics) []audit.Violation {
	var vs []audit.Violation
	bad := func(format string, args ...any) {
		vs = append(vs, audit.Violation{Invariant: InvProbe, Task: -1, Machine: -1,
			Detail: fmt.Sprintf(format, args...)})
	}
	n := inst.N()
	if c.arrivals != n {
		bad("probe saw %d arrivals for %d tasks", c.arrivals, n)
	}
	attempts := 0
	for _, a := range om.Attempts {
		attempts += a
	}
	if c.dispatches != attempts {
		bad("probe saw %d dispatches, metrics report %d attempts", c.dispatches, attempts)
	}
	if rejected := om.RejectedCount(); c.rejects != rejected {
		bad("probe saw %d rejections, metrics report %d", c.rejects, rejected)
	}
	if shed := om.ShedCount(); c.sheds != shed {
		bad("probe saw %d sheds, metrics report %d", c.sheds, shed)
	}
	if c.ejections != om.Ejections {
		bad("probe saw %d ejections, metrics report %d", c.ejections, om.Ejections)
	}
	if c.readmissions != om.Readmissions {
		bad("probe saw %d readmissions, metrics report %d", c.readmissions, om.Readmissions)
	}
	excluded := om.DroppedCount() + om.RejectedCount() + om.ShedCount()
	if dropped := om.DroppedCount(); c.drops != dropped {
		bad("probe saw %d drops, metrics report %d", c.drops, dropped)
	} else if c.completes != n-excluded {
		bad("probe saw %d completions for %d completed tasks", c.completes, n-excluded)
	}
	if c.doneCalls != 1 {
		bad("OnDone fired %d times", c.doneCalls)
	} else if c.makespan != om.Makespan {
		bad("probe makespan %v, metrics report %v", c.makespan, om.Makespan)
	}
	for i, task := range inst.Tasks {
		end := c.ends[i]
		rejected := om.Rejected != nil && om.Rejected[i]
		shed := om.Shed != nil && om.Shed[i]
		if rejected != c.rejected[i] {
			bad("task %d rejected flag: probe %v, metrics %v", i, c.rejected[i], rejected)
		}
		if shed != c.shed[i] {
			bad("task %d shed flag: probe %v, metrics %v", i, c.shed[i], shed)
		}
		if om.Dropped[i] || rejected || shed {
			kinds := 0
			for _, b := range [...]bool{om.Dropped[i], rejected, shed} {
				if b {
					kinds++
				}
			}
			if kinds > 1 {
				bad("task %d carries %d dispositions", i, kinds)
			}
			if !math.IsNaN(end) {
				bad("non-completed task %d completed at %v", i, end)
			}
			if rejected && om.Flows[i] != 0 {
				bad("rejected task %d carries flow %v", i, om.Flows[i])
			}
			continue
		}
		if math.IsNaN(end) {
			bad("task %d never completed in the event stream", i)
			continue
		}
		want := task.Release + om.Flows[i]
		if math.Abs(end-want) > 1e-9*(1+math.Abs(want)) {
			bad("task %d completed at %v, metrics imply %v", i, end, want)
		}
	}
	return vs
}

// crossCheckHedge compares the probe's hedge event counts against a hedged
// run's metrics — including the resolution equation every issued copy must
// satisfy (win ∨ cancelled ∨ revoked, exactly once) — and, for unhedged
// runs, that no hedge state leaked out at all.
func (c *countProbe) crossCheckHedge(inst *core.Instance, em *sim.ElasticMetrics, hedged bool) []audit.Violation {
	var vs []audit.Violation
	bad := func(format string, args ...any) {
		vs = append(vs, audit.Violation{Invariant: InvProbe, Task: -1, Machine: -1,
			Detail: fmt.Sprintf(format, args...)})
	}
	if !hedged {
		if c.hedges != 0 || c.hedgeWins != 0 || c.hedgeCancels != 0 {
			bad("unhedged run emitted hedge events (%d/%d/%d)", c.hedges, c.hedgeWins, c.hedgeCancels)
		}
		if em.HedgesIssued != 0 || em.Hedged != nil {
			bad("unhedged run carries hedge metrics (issued=%d)", em.HedgesIssued)
		}
		return vs
	}
	// Every issued copy resolves exactly once: it wins, it is cancelled, or
	// tied mode revokes it at service start.
	if em.HedgesIssued != em.HedgeWinsCopy+em.HedgesCancelled+em.HedgesRevoked {
		bad("hedge resolution broken: issued %d ≠ copy-wins %d + cancelled %d + revoked %d",
			em.HedgesIssued, em.HedgeWinsCopy, em.HedgesCancelled, em.HedgesRevoked)
	}
	if c.hedges != em.HedgesIssued {
		bad("probe saw %d hedges, metrics report %d", c.hedges, em.HedgesIssued)
	}
	if wins := em.HedgeWinsPrimary + em.HedgeWinsCopy; c.hedgeWins != wins {
		bad("probe saw %d hedge wins, metrics report %d", c.hedgeWins, wins)
	}
	if c.copyWins != em.HedgeWinsCopy {
		bad("probe saw %d copy wins, metrics report %d", c.copyWins, em.HedgeWinsCopy)
	}
	// Cancel events cover every losing copy plus at most one primary-side
	// cancellation per hedged task (a copy win, or a tied revocation).
	if lo := em.HedgesCancelled + em.HedgesRevoked; c.hedgeCancels < lo || c.hedgeCancels > lo+em.HedgesIssued {
		bad("probe saw %d hedge cancels for %d cancelled + %d revoked copies (%d issued)",
			c.hedgeCancels, em.HedgesCancelled, em.HedgesRevoked, em.HedgesIssued)
	}
	if em.DuplicateWork < 0 || em.CancelledWork < 0 {
		bad("negative hedge work accounting: duplicate %v, cancelled %v", em.DuplicateWork, em.CancelledWork)
	}
	for i := range inst.Tasks {
		if em.Hedged[i] != c.hedged[i] {
			bad("task %d hedged flag: probe %v, metrics %v", i, c.hedged[i], em.Hedged[i])
		}
		if em.HedgeWonByCopy[i] != c.wonByCopy[i] {
			bad("task %d won-by-copy flag: probe %v, metrics %v", i, c.wonByCopy[i], em.HedgeWonByCopy[i])
		}
	}
	return vs
}

// crossCheckResilience compares the probe's resilience event counts against
// a resilient run's metrics — the breaker transition and probe totals, the
// retry-budget ledger's conservation equation and the per-task budget-drop
// dispositions — and, for unprotected runs, that no resilience state leaked
// out at all.
func (c *countProbe) crossCheckResilience(inst *core.Instance, em *sim.ElasticMetrics, resilient bool) []audit.Violation {
	var vs []audit.Violation
	bad := func(format string, args ...any) {
		vs = append(vs, audit.Violation{Invariant: InvProbe, Task: -1, Machine: -1,
			Detail: fmt.Sprintf(format, args...)})
	}
	if !resilient {
		if c.breakerOpens != 0 || c.breakerProbes != 0 || c.breakerCloses != 0 || c.budgetDrops != 0 {
			bad("unprotected run emitted resilience events (%d/%d/%d/%d)",
				c.breakerOpens, c.breakerProbes, c.breakerCloses, c.budgetDrops)
		}
		if em.RetriesRequested != 0 || em.RetriesIssued != 0 || em.RetriesDropped != 0 {
			bad("unprotected run carries a retry-budget ledger (%d/%d/%d)",
				em.RetriesRequested, em.RetriesIssued, em.RetriesDropped)
		}
		if em.BreakerSpans != nil || em.ProbeDispatch != nil || em.BudgetDropped != nil {
			bad("unprotected run carries breaker or budget metrics")
		}
		return vs
	}
	if em.RetriesIssued+em.RetriesDropped != em.RetriesRequested {
		bad("budget conservation broken: issued %d + dropped %d ≠ requested %d",
			em.RetriesIssued, em.RetriesDropped, em.RetriesRequested)
	}
	if c.budgetDrops != em.RetriesDropped {
		bad("probe saw %d budget drops, metrics report %d", c.budgetDrops, em.RetriesDropped)
	}
	if c.breakerOpens != em.BreakerOpens {
		bad("probe saw %d breaker opens, metrics report %d", c.breakerOpens, em.BreakerOpens)
	}
	if c.breakerCloses != em.BreakerCloses {
		bad("probe saw %d breaker closes, metrics report %d", c.breakerCloses, em.BreakerCloses)
	}
	if c.breakerProbes != em.BreakerProbes {
		bad("probe saw %d breaker probes, metrics report %d", c.breakerProbes, em.BreakerProbes)
	}
	if em.BreakerOpens != len(em.BreakerSpans) {
		bad("metrics report %d breaker opens for %d recorded spans", em.BreakerOpens, len(em.BreakerSpans))
	}
	for i := range inst.Tasks {
		if em.BudgetDropped != nil && em.BudgetDropped[i] != c.budgetDropped[i] {
			bad("task %d budget-dropped flag: probe %v, metrics %v", i, c.budgetDropped[i], em.BudgetDropped[i])
		}
		// ProbeDispatch marks tasks whose final dispatch was a half-open
		// probe; every such dispatch fired OnBreakerProbe (the converse need
		// not hold — an aborted probe clears the flag, not the event).
		if em.ProbeDispatch != nil && em.ProbeDispatch[i] && !c.probed[i] {
			bad("task %d marked a probe dispatch without a breaker-probe event", i)
		}
	}
	return vs
}

// crossCheckElastic compares the probe's membership event counts against an
// elastic run's metrics and membership log, one InvProbe violation per
// disagreement.
func (c *countProbe) crossCheckElastic(inst *core.Instance, em *sim.ElasticMetrics) []audit.Violation {
	var vs []audit.Violation
	bad := func(format string, args ...any) {
		vs = append(vs, audit.Violation{Invariant: InvProbe, Task: -1, Machine: -1,
			Detail: fmt.Sprintf(format, args...)})
	}
	if c.scaleUps != em.ScaleUps {
		bad("probe saw %d scale-ups, metrics report %d", c.scaleUps, em.ScaleUps)
	}
	if c.scaleDowns != em.ScaleDowns {
		bad("probe saw %d scale-downs, metrics report %d", c.scaleDowns, em.ScaleDowns)
	}
	if c.handoffs != em.Handoffs {
		bad("probe saw %d handoffs, metrics report %d", c.handoffs, em.Handoffs)
	}
	if c.drainHandoffs != c.handoffs {
		bad("drain events total %d handoffs, per-task events total %d", c.drainHandoffs, c.handoffs)
	}
	if c.joins > c.scaleUps {
		bad("probe saw %d joins for %d scale-ups", c.joins, c.scaleUps)
	}
	if math.Abs(float64(c.warmUp-em.WarmUpTime)) > 1e-9*(1+math.Abs(float64(em.WarmUpTime))) {
		bad("probe accumulated warm-up %v, metrics report %v", c.warmUp, em.WarmUpTime)
	}
	ms := em.Membership
	if ms == nil {
		bad("elastic run reported no membership log")
		return vs
	}
	if ms.Capacity != inst.M {
		bad("membership log capacity %d for a %d-slot instance", ms.Capacity, inst.M)
	}
	joins, drains := 0, 0
	for _, ch := range ms.Changes {
		if ch.Join {
			joins++
		} else {
			drains++
		}
	}
	if joins != c.joins {
		bad("membership log has %d joins, probe saw %d", joins, c.joins)
	}
	if drains != c.scaleDowns {
		bad("membership log has %d drains, probe saw %d", drains, c.scaleDowns)
	}
	if len(em.Dispatched) != inst.N() {
		bad("dispatch log has %d entries for %d tasks", len(em.Dispatched), inst.N())
	}
	return vs
}
