package chaos

import (
	"fmt"
	"math"

	"flowsched/internal/audit"
	"flowsched/internal/core"
	"flowsched/internal/obs"
	"flowsched/internal/sim"
)

// countProbe is the metrics cross-checker: it counts the simulator's event
// stream independently and compares its totals against the FaultMetrics the
// run reports. Any disagreement means the simulator's bookkeeping and its
// event stream have diverged — a bug neither the schedule auditor nor the
// metrics alone would catch.
type countProbe struct {
	obs.BaseProbe
	arrivals   int
	dispatches int
	completes  int
	drops      int
	retries    int
	ends       []core.Time // per-task final completion; NaN = never completed
	makespan   core.Time
	doneCalls  int
}

func newCountProbe(n int) *countProbe {
	ends := make([]core.Time, n)
	for i := range ends {
		ends[i] = math.NaN()
	}
	return &countProbe{ends: ends}
}

func (c *countProbe) OnArrival(task int, release core.Time) { c.arrivals++ }

func (c *countProbe) OnDispatch(task, server int, at, start, end core.Time) { c.dispatches++ }

func (c *countProbe) OnComplete(task, server int, release, proc, end core.Time) {
	c.completes++
	if task >= 0 && task < len(c.ends) {
		c.ends[task] = end
	}
}

func (c *countProbe) OnDrop(task int, release, at core.Time) { c.drops++ }

func (c *countProbe) OnRetry(task, attempt int, at core.Time) { c.retries++ }

func (c *countProbe) OnDone(makespan core.Time) {
	c.makespan = makespan
	c.doneCalls++
}

// crossCheck compares the probe's event counts against the run's metrics
// and returns one InvProbe violation per disagreement.
func (c *countProbe) crossCheck(inst *core.Instance, fm *sim.FaultMetrics) []audit.Violation {
	var vs []audit.Violation
	bad := func(format string, args ...any) {
		vs = append(vs, audit.Violation{Invariant: InvProbe, Task: -1, Machine: -1,
			Detail: fmt.Sprintf(format, args...)})
	}
	n := inst.N()
	if c.arrivals != n {
		bad("probe saw %d arrivals for %d tasks", c.arrivals, n)
	}
	attempts := 0
	for _, a := range fm.Attempts {
		attempts += a
	}
	if c.dispatches != attempts {
		bad("probe saw %d dispatches, metrics report %d attempts", c.dispatches, attempts)
	}
	if dropped := fm.DroppedCount(); c.drops != dropped {
		bad("probe saw %d drops, metrics report %d", c.drops, dropped)
	} else if c.completes != n-dropped {
		bad("probe saw %d completions for %d non-dropped tasks", c.completes, n-dropped)
	}
	if c.doneCalls != 1 {
		bad("OnDone fired %d times", c.doneCalls)
	} else if c.makespan != fm.Makespan {
		bad("probe makespan %v, metrics report %v", c.makespan, fm.Makespan)
	}
	for i, task := range inst.Tasks {
		end := c.ends[i]
		if fm.Dropped[i] {
			if !math.IsNaN(end) {
				bad("dropped task %d completed at %v", i, end)
			}
			continue
		}
		if math.IsNaN(end) {
			bad("task %d never completed in the event stream", i)
			continue
		}
		want := task.Release + fm.Flows[i]
		if math.Abs(end-want) > 1e-9*(1+math.Abs(want)) {
			bad("task %d completed at %v, metrics imply %v", i, end, want)
		}
	}
	return vs
}
