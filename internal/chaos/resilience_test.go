package chaos

import (
	"encoding/json"
	"reflect"
	"testing"

	"flowsched/internal/resilience"
)

// TestSampleParamsResilienceCoverage: the sampler exercises every jitter
// mode plus budgeted and breakered configurations, and each sampled config
// validates — an invalid config would make the whole trial error out as a
// sim-error instead of testing anything.
func TestSampleParamsResilienceCoverage(t *testing.T) {
	cfg := Config{Seed: 7}
	resilient := 0
	jitters := map[resilience.JitterMode]int{}
	budgeted, breakered, slow := 0, 0, 0
	for trial := 0; trial < 300; trial++ {
		p := SampleParams(cfg, trial)
		if p.Resilience == nil {
			continue
		}
		resilient++
		rp := p.Resilience
		jitters[resilience.JitterMode(rp.Jitter)]++
		if rp.RetryBudget > 0 {
			budgeted++
		}
		if rp.BreakerWindow > 0 {
			breakered++
			if rp.SlowFactor > 0 {
				slow++
			}
		}
		if err := p.resilienceConfig().Validate(); err != nil {
			t.Fatalf("trial %d: sampled resilience config invalid: %v (%+v)", trial, err, rp)
		}
	}
	if resilient < 50 {
		t.Fatalf("only %d/300 trials sampled resilience", resilient)
	}
	for _, mode := range []resilience.JitterMode{resilience.JitterNone, resilience.JitterFull, resilience.JitterEqual, resilience.JitterDecorrelated} {
		if jitters[mode] == 0 {
			t.Fatalf("jitter mode %q never sampled: %v", mode, jitters)
		}
	}
	if budgeted == 0 || breakered == 0 || slow == 0 {
		t.Fatalf("resilience features not covered: budgeted=%d breakered=%d slowFactor=%d",
			budgeted, breakered, slow)
	}
}

// TestResilientTrialCaughtAndShrunk: a corrupting router on a resilient
// trial is caught by the auditor, and — since the failure does not depend on
// retry shaping — the shrinker peels the resilience config away entirely
// alongside the usual task/plan minimization.
func TestResilientTrialCaughtAndShrunk(t *testing.T) {
	cfg := Config{Routers: brokenRouters()}
	p := Params{
		Trial: 9, Seed: 9999,
		M: 5, N: 50, K: 2,
		Load: 1.5, Dist: "constant", Strategy: "overlapping",
		Router: "corrupting", FaultMode: "none",
		Resilience: &ResilienceParams{
			Jitter: "equal", RetryBudget: 0.2, BudgetBurst: 5,
			BreakerWindow: 5, FailureThreshold: 0.5, Cooldown: 2, HalfOpenProbes: 2,
		},
	}
	inst, plan, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := p.routerSpec(cfg.Routers)
	if err != nil {
		t.Fatal(err)
	}
	vs := Check(inst, plan, spec, p)
	if len(vs) == 0 {
		t.Fatal("corrupting router not caught on a resilient trial")
	}
	repro, err := ShrinkFailure(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if repro.N() > 5 {
		t.Fatalf("shrunk repro has %d tasks, want ≤ 5", repro.N())
	}
	if repro.Params.Resilience != nil {
		t.Fatalf("resilience-independent failure kept its resilience config: %+v", repro.Params.Resilience)
	}
	vs2, err := repro.Replay(cfg.Routers)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs2) == 0 {
		t.Fatal("shrunk repro does not replay")
	}
}

// TestResilienceParamsRoundTrip: resilience params survive the repro JSON
// round trip bit for bit, so a shrunk resilient failure replays under the
// same config — and an unconfigured Params builds no config at all.
func TestResilienceParamsRoundTrip(t *testing.T) {
	p := Params{
		Trial: 1, Seed: 2, M: 4, N: 8, K: 2,
		Load: 0.9, Dist: "constant", Strategy: "disjoint",
		Router: "EFT-Min", FaultMode: "none",
		Resilience: &ResilienceParams{
			Jitter: "decorrelated", RetryBudget: 0.25, BudgetBurst: 4,
			BreakerWindow: 6, FailureThreshold: 0.75, Cooldown: 1.5,
			HalfOpenProbes: 3, SlowFactor: 4,
		},
	}
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Params
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, p) {
		t.Fatalf("params changed in round trip:\n%+v\n%+v", back, p)
	}
	cfg := p.resilienceConfig()
	if cfg == nil || cfg.Jitter != resilience.JitterDecorrelated || cfg.RetryBudget != 0.25 ||
		cfg.Seed != p.Seed || cfg.Breaker == nil || cfg.Breaker.Window != 6 ||
		cfg.Breaker.SlowFactor != 4 {
		t.Fatalf("resilienceConfig = %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if (Params{}).resilienceConfig() != nil {
		t.Fatal("unconfigured params built a resilience config")
	}
}
