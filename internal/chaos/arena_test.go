package chaos

import (
	"math"
	"reflect"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/sim"
)

func nanEqTimes(a, b []core.Time) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(float64(a[i])) && math.IsNaN(float64(b[i]))) {
			return false
		}
	}
	return true
}

// TestSoakArenaReuseEquivalence is the chaos-side half of the arena's
// correctness story: 200 sampled trials — the soak's own parameter
// distribution, so crash/zone/gray plans, every overload mode and membership
// churn all appear — run through ONE reused arena must be output-identical
// to the same trials run with a fresh arena each. This is exactly the state
// the pooled arenas in Check see mid-soak.
func TestSoakArenaReuseEquivalence(t *testing.T) {
	cfg := Config{Trials: 200, Seed: 7}
	reused := sim.NewArena()
	routers := DefaultRouters()
	for trial := 0; trial < cfg.Trials; trial++ {
		p := SampleParams(cfg, trial)
		inst, plan, err := p.Build()
		if err != nil {
			t.Fatalf("trial %d: build: %v", trial, err)
		}
		spec, err := p.routerSpec(routers)
		if err != nil {
			t.Fatalf("trial %d: router: %v", trial, err)
		}
		run := func(arena *sim.Arena) (*core.Schedule, *sim.ElasticMetrics) {
			ocfg, err := p.overloadConfig()
			if err != nil {
				t.Fatalf("trial %d: overload config: %v", trial, err)
			}
			s, em, err := arena.RunElastic(inst, spec.New(p.RouterSeed), plan, p.Policy,
				ocfg, p.elasticConfig(inst.M), nil)
			if err != nil {
				t.Fatalf("trial %d: run: %v", trial, err)
			}
			return s, em
		}
		sF, mF := run(sim.NewArena())
		sR, mR := run(reused)
		switch {
		case !reflect.DeepEqual(sF.Machine, sR.Machine) || !nanEqTimes(sF.Start, sR.Start):
			t.Fatalf("trial %d (%s): schedule diverges under arena reuse", trial, p.Router)
		case !nanEqTimes(mF.Flows, mR.Flows) || !nanEqTimes(mF.Busy, mR.Busy):
			t.Fatalf("trial %d (%s): flow metrics diverge under arena reuse", trial, p.Router)
		case !reflect.DeepEqual(mF.Dropped, mR.Dropped) ||
			!reflect.DeepEqual(mF.Rejected, mR.Rejected) ||
			!reflect.DeepEqual(mF.Shed, mR.Shed) ||
			!reflect.DeepEqual(mF.Attempts, mR.Attempts):
			t.Fatalf("trial %d (%s): robustness metrics diverge under arena reuse", trial, p.Router)
		case !reflect.DeepEqual(mF.Membership, mR.Membership) || !nanEqTimes(mF.Dispatched, mR.Dispatched):
			t.Fatalf("trial %d (%s): membership log diverges under arena reuse", trial, p.Router)
		}
	}
}
