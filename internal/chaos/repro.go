package chaos

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"flowsched/internal/audit"
	"flowsched/internal/core"
	"flowsched/internal/faults"
	"flowsched/internal/obs"
)

// Repro is a self-contained, replayable reproduction of a failing trial:
// the sampled parameters (router, seed, retry policy), the shrunk instance
// and fault plan, and the violations the configuration produces. Written as
// JSON it can be replayed later — on another machine, after a fix — with
// ReadRepro + Replay.
type Repro struct {
	Params     Params            `json:"params"`
	Violations []audit.Violation `json:"violations"`
	Instance   json.RawMessage   `json:"instance"`
	Plan       *faults.Plan      `json:"plan,omitempty"`

	inst *core.Instance // decoded lazily; populated eagerly by NewRepro
}

// NewRepro packages a shrunk failing configuration.
func NewRepro(p Params, inst *core.Instance, plan *faults.Plan, violations []audit.Violation) (*Repro, error) {
	var buf bytes.Buffer
	if err := inst.WriteJSON(&buf); err != nil {
		return nil, fmt.Errorf("chaos: serializing repro instance: %w", err)
	}
	return &Repro{
		Params:     p,
		Violations: violations,
		Instance:   json.RawMessage(buf.Bytes()),
		Plan:       plan,
		inst:       inst,
	}, nil
}

// Inst decodes (and caches) the repro's instance.
func (r *Repro) Inst() (*core.Instance, error) {
	if r.inst != nil {
		return r.inst, nil
	}
	inst, err := core.ReadInstanceJSON(bytes.NewReader(r.Instance))
	if err != nil {
		return nil, fmt.Errorf("chaos: decoding repro instance: %w", err)
	}
	r.inst = inst
	return inst, nil
}

// N returns the repro's task count (0 if the instance cannot be decoded).
func (r *Repro) N() int {
	inst, err := r.Inst()
	if err != nil {
		return 0
	}
	return inst.N()
}

// WriteJSON serializes the repro. The only floats a repro carries are the
// sampled Params rates and the fault plan's instants — engine times (with
// their deliberate NaN sentinels) never appear here — so NaN-safety at this
// boundary means refusing a non-finite value up front with the field named,
// instead of encoding/json aborting a half-written stream with an opaque
// "unsupported value: NaN".
func (r *Repro) WriteJSON(w io.Writer) error {
	type field struct {
		name string
		v    float64
	}
	fields := []field{{"load", r.Params.Load}, {"mtbf", r.Params.MTBF}, {"mttr", r.Params.MTTR}}
	if rp := r.Params.Resilience; rp != nil {
		fields = append(fields,
			field{"retryBudget", rp.RetryBudget}, field{"budgetBurst", rp.BudgetBurst},
			field{"failureThreshold", rp.FailureThreshold}, field{"cooldown", rp.Cooldown},
			field{"slowFactor", rp.SlowFactor})
	}
	for _, f := range fields {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("chaos: repro params: non-finite %s %v", f.name, f.v)
		}
	}
	if r.Plan != nil {
		if err := r.Plan.Validate(); err != nil {
			return fmt.Errorf("chaos: repro plan: %w", err)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadRepro deserializes a repro written by WriteJSON and validates that
// its instance and plan decode.
func ReadRepro(rd io.Reader) (*Repro, error) {
	var r Repro
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		return nil, fmt.Errorf("chaos: decoding repro: %w", err)
	}
	if _, err := r.Inst(); err != nil {
		return nil, err
	}
	if r.Plan != nil {
		if err := r.Plan.Validate(); err != nil {
			return nil, fmt.Errorf("chaos: repro plan: %w", err)
		}
	}
	return &r, nil
}

// Replay re-runs the repro's configuration and returns the violations it
// produces now (empty means the underlying bug no longer reproduces).
func (r *Repro) Replay(routers []RouterSpec) ([]audit.Violation, error) {
	return r.ReplayRecorded(routers, nil)
}

// ReplayRecorded is Replay with a flight recorder riding the re-run: rec
// (reset first) ends up holding the repro's raw event sequence. The engine
// is deterministic in the repro's configuration, so successive recorded
// replays produce identical event streams — the property the chaos tests
// pin.
func (r *Repro) ReplayRecorded(routers []RouterSpec, rec *obs.FlightRecorder) ([]audit.Violation, error) {
	if len(routers) == 0 {
		routers = DefaultRouters()
	}
	inst, err := r.Inst()
	if err != nil {
		return nil, err
	}
	spec, err := r.Params.routerSpec(routers)
	if err != nil {
		return nil, err
	}
	return CheckRecorded(inst, r.Plan, spec, r.Params, rec), nil
}
