package chaos

import (
	"fmt"

	"flowsched/internal/core"
	"flowsched/internal/elastic"
	"flowsched/internal/faults"
)

// Shrink minimizes a failing configuration with a ddmin-style greedy loop:
// it repeatedly tries to drop task chunks, drop outage and slowdown
// segments, and halve the cluster, keeping any change under which failing
// still reports a failure, until a full pass makes no progress. failing is
// the oracle — typically a closure over Check with the trial's router and
// policy; it must be deterministic for the result to be minimal and
// reproducible.
func Shrink(inst *core.Instance, plan *faults.Plan, failing func(*core.Instance, *faults.Plan) bool) (*core.Instance, *faults.Plan) {
	cur, curPlan := inst, plan
	for {
		changed := false
		if c, ok := shrinkTasks(cur, curPlan, failing); ok {
			cur, changed = c, true
		}
		if p, ok := shrinkSegments(cur, curPlan, failing); ok {
			curPlan, changed = p, true
		}
		if c, p, ok := shrinkMachines(cur, curPlan, failing); ok {
			cur, curPlan, changed = c, p, true
		}
		if !changed {
			return cur, curPlan
		}
	}
}

// shrinkTasks drops chunks of tasks, halving the chunk size down to single
// tasks, keeping every removal that preserves the failure.
func shrinkTasks(inst *core.Instance, plan *faults.Plan, failing func(*core.Instance, *faults.Plan) bool) (*core.Instance, bool) {
	tasks := inst.Tasks
	shrunk := false
	for chunk := (len(tasks) + 1) / 2; chunk >= 1; chunk /= 2 {
		for i := 0; i < len(tasks); {
			end := i + chunk
			if end > len(tasks) {
				end = len(tasks)
			}
			cand := make([]core.Task, 0, len(tasks)-(end-i))
			cand = append(cand, tasks[:i]...)
			cand = append(cand, tasks[end:]...)
			ni := core.NewInstance(inst.M, cand)
			if failing(ni, plan) {
				tasks = ni.Tasks
				shrunk = true
				// Do not advance: the next chunk slid into position i.
			} else {
				i += chunk
			}
		}
	}
	if !shrunk {
		return inst, false
	}
	return core.NewInstance(inst.M, tasks), true
}

// shrinkSegments drops outages and slowdowns from the plan one chunk at a
// time, same policy as shrinkTasks.
func shrinkSegments(inst *core.Instance, plan *faults.Plan, failing func(*core.Instance, *faults.Plan) bool) (*faults.Plan, bool) {
	if plan.IsEmpty() {
		return plan, false
	}
	cur := plan.Clone()
	shrunk := false
	for chunk := (len(cur.Outages) + 1) / 2; chunk >= 1; chunk /= 2 {
		for i := 0; i < len(cur.Outages); {
			end := i + chunk
			if end > len(cur.Outages) {
				end = len(cur.Outages)
			}
			cand := cur.Clone()
			cand.Outages = append(cand.Outages[:i], cand.Outages[end:]...)
			if failing(inst, cand) {
				cur = cand
				shrunk = true
			} else {
				i += chunk
			}
		}
	}
	for chunk := (len(cur.Slowdowns) + 1) / 2; chunk >= 1; chunk /= 2 {
		for i := 0; i < len(cur.Slowdowns); {
			end := i + chunk
			if end > len(cur.Slowdowns) {
				end = len(cur.Slowdowns)
			}
			cand := cur.Clone()
			cand.Slowdowns = append(cand.Slowdowns[:i], cand.Slowdowns[end:]...)
			if failing(inst, cand) {
				cur = cand
				shrunk = true
			} else {
				i += chunk
			}
		}
	}
	if !shrunk {
		return plan, false
	}
	return cur, true
}

// shrinkMachines halves the cluster: tasks whose processing set does not
// fit in the smaller cluster are dropped, fault segments on removed servers
// are clipped. Repeats while the halved configuration still fails.
func shrinkMachines(inst *core.Instance, plan *faults.Plan, failing func(*core.Instance, *faults.Plan) bool) (*core.Instance, *faults.Plan, bool) {
	cur, curPlan := inst, plan
	shrunk := false
	for m2 := cur.M / 2; m2 >= 1; m2 /= 2 {
		var cand []core.Task
		for _, t := range cur.Tasks {
			if t.Set == nil || t.Set.Max() < m2 {
				cand = append(cand, t)
			}
		}
		ni := core.NewInstance(m2, cand)
		np := clipPlan(curPlan, m2)
		if !failing(ni, np) {
			break
		}
		cur, curPlan = ni, np
		shrunk = true
	}
	return cur, curPlan, shrunk
}

// clipPlan restricts a plan to the first m2 servers (nil stays nil).
func clipPlan(plan *faults.Plan, m2 int) *faults.Plan {
	if plan == nil {
		return nil
	}
	out := &faults.Plan{M: m2}
	for _, o := range plan.Outages {
		if o.Server < m2 {
			out.Outages = append(out.Outages, o)
		}
	}
	for _, s := range plan.Slowdowns {
		if s.Server < m2 {
			out.Slowdowns = append(out.Slowdowns, s)
		}
	}
	return out
}

// shrinkScript drops scale events from the params' membership script,
// chunked like shrinkTasks, keeping every removal that preserves the
// failure. It returns the (possibly) reduced params and whether anything was
// dropped; the candidate simulations count against the shared budget.
func shrinkScript(p Params, inst *core.Instance, plan *faults.Plan, spec RouterSpec, budget *int) (Params, bool) {
	if p.Elastic == nil || len(p.Elastic.Script) == 0 {
		return p, false
	}
	failing := func(cand Params) bool {
		if *budget <= 0 {
			return false
		}
		*budget--
		return len(Check(inst, plan, spec, cand)) > 0
	}
	events := p.Elastic.Script
	shrunk := false
	for chunk := (len(events) + 1) / 2; chunk >= 1; chunk /= 2 {
		for i := 0; i < len(events); {
			end := i + chunk
			if end > len(events) {
				end = len(events)
			}
			var cand []elastic.Event // nil when empty, matching a JSON round trip
			if len(events) > end-i {
				cand = make([]elastic.Event, 0, len(events)-(end-i))
				cand = append(cand, events[:i]...)
				cand = append(cand, events[end:]...)
			}
			cp := p
			ce := *p.Elastic
			ce.Script = cand
			cp.Elastic = &ce
			if failing(cp) {
				events = cand
				p = cp
				shrunk = true
			} else {
				i += chunk
			}
		}
	}
	return p, shrunk
}

// shrinkHedge simplifies the params' hedge config with a ddmin-style pass:
// drop hedging entirely (proving the failure is not hedge-related), then
// peel individual knobs — the MaxHedges cap, cancel-mid-service, the
// quantile trigger (replaced by a plain delay), tied mode — keeping every
// simplification under which the trial still fails. The candidate
// simulations count against the shared budget.
func shrinkHedge(p Params, inst *core.Instance, plan *faults.Plan, spec RouterSpec, budget *int) (Params, bool) {
	if p.Hedge == nil {
		return p, false
	}
	failing := func(cand Params) bool {
		if *budget <= 0 {
			return false
		}
		*budget--
		return len(Check(inst, plan, spec, cand)) > 0
	}
	shrunk := false
	try := func(mutate func(*HedgeParams) bool) {
		if p.Hedge == nil {
			return
		}
		cp := p
		hp := *p.Hedge
		if !mutate(&hp) {
			return // knob not set; nothing to peel
		}
		cp.Hedge = &hp
		if failing(cp) {
			p = cp
			shrunk = true
		}
	}
	// Dropping the hedge outright dominates every other simplification.
	cp := p
	cp.Hedge = nil
	if failing(cp) {
		return cp, true
	}
	try(func(hp *HedgeParams) bool {
		if hp.MaxHedges == 0 {
			return false
		}
		hp.MaxHedges = 0
		return true
	})
	try(func(hp *HedgeParams) bool {
		if !hp.CancelRunning {
			return false
		}
		hp.CancelRunning = false
		return true
	})
	try(func(hp *HedgeParams) bool {
		if hp.Quantile == 0 {
			return false
		}
		hp.Quantile, hp.MinSamples, hp.Delay = 0, 0, 1
		return true
	})
	try(func(hp *HedgeParams) bool {
		if !hp.Tied {
			return false
		}
		hp.Tied = false
		hp.Delay = 1
		return true
	})
	return p, shrunk
}

// shrinkResilience simplifies the params' resilience config with a
// ddmin-style pass: drop the protections entirely (proving the failure is
// not resilience-related), then peel individual mechanisms — the circuit
// breakers, the slow-completion classifier, the retry budget, the jitter —
// keeping every simplification under which the trial still fails. The
// candidate simulations count against the shared budget.
func shrinkResilience(p Params, inst *core.Instance, plan *faults.Plan, spec RouterSpec, budget *int) (Params, bool) {
	if p.Resilience == nil {
		return p, false
	}
	failing := func(cand Params) bool {
		if *budget <= 0 {
			return false
		}
		*budget--
		return len(Check(inst, plan, spec, cand)) > 0
	}
	shrunk := false
	try := func(mutate func(*ResilienceParams) bool) {
		cp := p
		rp := *p.Resilience
		if !mutate(&rp) {
			return // mechanism not enabled; nothing to peel
		}
		cp.Resilience = &rp
		if failing(cp) {
			p = cp
			shrunk = true
		}
	}
	// Dropping the protections outright dominates every other simplification.
	cp := p
	cp.Resilience = nil
	if failing(cp) {
		return cp, true
	}
	try(func(rp *ResilienceParams) bool {
		if rp.BreakerWindow == 0 {
			return false
		}
		rp.BreakerWindow, rp.FailureThreshold, rp.Cooldown = 0, 0, 0
		rp.HalfOpenProbes, rp.SlowFactor = 0, 0
		return true
	})
	try(func(rp *ResilienceParams) bool {
		if rp.SlowFactor == 0 {
			return false
		}
		rp.SlowFactor = 0
		return true
	})
	try(func(rp *ResilienceParams) bool {
		if rp.RetryBudget == 0 {
			return false
		}
		rp.RetryBudget, rp.BudgetBurst = 0, 0
		return true
	})
	try(func(rp *ResilienceParams) bool {
		if rp.Jitter == "" {
			return false
		}
		rp.Jitter = ""
		return true
	})
	return p, shrunk
}

// ShrinkFailure rebuilds the failing trial from its params, shrinks it and
// packages the result as a replayable repro. The shrink oracle re-runs the
// full Check (simulate + audit + probe cross-check) under the trial's
// router and policy, capped at cfg.ShrinkBudget candidate simulations.
// Membership-churn trials additionally get their scale script minimized, and
// the repro's params carry the reduced script.
func ShrinkFailure(cfg Config, p Params) (*Repro, error) {
	cfg = cfg.withDefaults()
	inst, plan, err := p.Build()
	if err != nil {
		return nil, err
	}
	spec, err := p.routerSpec(cfg.Routers)
	if err != nil {
		return nil, err
	}
	budget := cfg.ShrinkBudget
	failing := func(i *core.Instance, pl *faults.Plan) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return len(Check(i, pl, spec, p)) > 0
	}
	if !failing(inst, plan) {
		return nil, fmt.Errorf("chaos: trial %d is not failing under its own params", p.Trial)
	}
	mi, mp := Shrink(inst, plan, failing)
	// Minimize the membership script, the hedge config and the resilience
	// config too, then give the structural shrinker one more pass under the
	// reduced params (failing closes over p, so it sees the updates).
	reduced := false
	if p2, ok := shrinkScript(p, mi, mp, spec, &budget); ok {
		p, reduced = p2, true
	}
	if p2, ok := shrinkHedge(p, mi, mp, spec, &budget); ok {
		p, reduced = p2, true
	}
	if p2, ok := shrinkResilience(p, mi, mp, spec, &budget); ok {
		p, reduced = p2, true
	}
	if reduced {
		mi, mp = Shrink(mi, mp, failing)
	}
	violations := Check(mi, mp, spec, p)
	if len(violations) == 0 {
		return nil, fmt.Errorf("chaos: trial %d: shrunk configuration no longer fails", p.Trial)
	}
	return NewRepro(p, mi, mp, violations)
}
