package chaos

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestSampleParamsHedgeCoverage: the sampler exercises every hedge trigger
// style, and each sampled config validates — a triggerless config would make
// the whole trial error out as a sim-error.
func TestSampleParamsHedgeCoverage(t *testing.T) {
	cfg := Config{Seed: 7}
	hedged, tied, quantile, delay, capped, cancel := 0, 0, 0, 0, 0, 0
	for trial := 0; trial < 300; trial++ {
		p := SampleParams(cfg, trial)
		if p.Hedge == nil {
			continue
		}
		hedged++
		switch {
		case p.Hedge.Tied:
			tied++
		case p.Hedge.Quantile > 0:
			quantile++
		default:
			delay++
		}
		if p.Hedge.MaxHedges > 0 {
			capped++
		}
		if p.Hedge.CancelRunning {
			cancel++
		}
		if err := p.hedgeConfig().Validate(); err != nil {
			t.Fatalf("trial %d: sampled hedge config invalid: %v (%+v)", trial, err, p.Hedge)
		}
	}
	if hedged < 50 {
		t.Fatalf("only %d/300 trials sampled hedging", hedged)
	}
	if tied == 0 || quantile == 0 || delay == 0 || capped == 0 || cancel == 0 {
		t.Fatalf("trigger styles not covered: tied=%d quantile=%d delay=%d capped=%d cancel=%d",
			tied, quantile, delay, capped, cancel)
	}
}

// TestHedgedTrialCaughtAndShrunk: a corrupting router on a hedged trial is
// caught by the auditor, and — since this failure does not depend on
// hedging — the shrinker peels the hedge config away entirely alongside the
// usual task/plan minimization.
func TestHedgedTrialCaughtAndShrunk(t *testing.T) {
	cfg := Config{Routers: brokenRouters()}
	p := Params{
		Trial: 9, Seed: 9999,
		M: 5, N: 50, K: 2,
		Load: 1.5, Dist: "constant", Strategy: "overlapping",
		Router: "corrupting", FaultMode: "none",
		Hedge: &HedgeParams{Quantile: 0.9, MinSamples: 5, MaxHedges: 10, CancelRunning: true},
	}
	inst, plan, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := p.routerSpec(cfg.Routers)
	if err != nil {
		t.Fatal(err)
	}
	vs := Check(inst, plan, spec, p)
	if len(vs) == 0 {
		t.Fatal("corrupting router not caught on a hedged trial")
	}
	repro, err := ShrinkFailure(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if repro.N() > 5 {
		t.Fatalf("shrunk repro has %d tasks, want ≤ 5", repro.N())
	}
	if repro.Params.Hedge != nil {
		t.Fatalf("hedge-independent failure kept its hedge config: %+v", repro.Params.Hedge)
	}
	vs2, err := repro.Replay(cfg.Routers)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs2) == 0 {
		t.Fatal("shrunk repro does not replay")
	}
}

// TestHedgeParamsRoundTrip: hedge params survive the repro JSON round trip
// bit for bit, so a shrunk hedged failure replays under the same config.
func TestHedgeParamsRoundTrip(t *testing.T) {
	p := Params{
		Trial: 1, Seed: 2, M: 4, N: 8, K: 2,
		Load: 0.9, Dist: "constant", Strategy: "disjoint",
		Router: "EFT-Min", FaultMode: "none",
		Hedge: &HedgeParams{Delay: 1.25, MaxHedges: 3, Tied: false, CancelRunning: true},
	}
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Params
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, p) {
		t.Fatalf("params changed in round trip:\n%+v\n%+v", back, p)
	}
	cfg := p.hedgeConfig()
	if cfg == nil || cfg.Delay != 1.25 || cfg.MaxHedges != 3 || !cfg.CancelRunning {
		t.Fatalf("hedgeConfig = %+v", cfg)
	}
	if (Params{}).hedgeConfig() != nil {
		t.Fatal("unhedged params built a hedge config")
	}
}
