package chaos

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/elastic"
	"flowsched/internal/obs"
	"flowsched/internal/sim"
)

// TestChaosSmoke is the deterministic-seed soak wired into `make check`: a
// full run of randomized trials across every router, strategy and fault
// mode must produce zero violations. The seed is fixed so a failure here is
// immediately reproducible.
func TestChaosSmoke(t *testing.T) {
	cfg := Config{Trials: 200, Seed: 1, MaxM: 10, MaxN: 150}
	sum, err := Run(cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Trials != 200 {
		t.Fatalf("ran %d trials, want 200", sum.Trials)
	}
	if !sum.Ok() {
		for _, f := range sum.Failures {
			t.Errorf("trial %d (%+v): %v", f.Params.Trial, f.Params, f.Violations[0])
		}
	}
}

func TestSampleParamsAndBuildDeterministic(t *testing.T) {
	cfg := Config{Seed: 42}
	for trial := 0; trial < 20; trial++ {
		a, b := SampleParams(cfg, trial), SampleParams(cfg, trial)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: params differ: %+v vs %+v", trial, a, b)
		}
		ia, pa, err := a.Build()
		if err != nil {
			t.Fatal(err)
		}
		ib, pb, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ia.Tasks, ib.Tasks) {
			t.Fatalf("trial %d: instances differ", trial)
		}
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("trial %d: plans differ", trial)
		}
	}
}

// corruptingRouter picks a valid server but rewinds its completion clock —
// the kind of state corruption the simulator itself cannot notice (the pick
// is eligible and live) but that yields overlapping executions only the
// auditor catches.
type corruptingRouter struct{}

func (corruptingRouter) Name() string { return "corrupting" }

func (corruptingRouter) Pick(st *sim.State, t core.Task) int {
	j := 0
	if t.Set != nil {
		j = t.Set[0]
	}
	st.Completion[j] = 0
	return j
}

// setIgnoringRouter routes everything to the last machine regardless of the
// processing set — the simulator rejects the pick, surfacing as a sim-error
// violation.
type setIgnoringRouter struct{}

func (setIgnoringRouter) Name() string { return "set-ignoring" }

func (setIgnoringRouter) Pick(st *sim.State, t core.Task) int { return st.M - 1 }

func brokenRouters() []RouterSpec {
	return append(DefaultRouters(),
		RouterSpec{Name: "corrupting", New: func(int64) sim.Router { return corruptingRouter{} }},
		RouterSpec{Name: "set-ignoring", New: func(int64) sim.Router { return setIgnoringRouter{} }},
	)
}

// TestCorruptingRouterCaughtAndShrunk is the acceptance scenario: a broken
// router is caught by the auditor (overlap violations) and shrunk to a
// repro of at most 5 tasks.
func TestCorruptingRouterCaughtAndShrunk(t *testing.T) {
	cfg := Config{Routers: brokenRouters()}
	p := Params{
		Trial: 0, Seed: 1234,
		M: 4, N: 60, K: 1,
		Load: 2, Dist: "constant", Strategy: "unrestricted",
		Router: "corrupting", FaultMode: "none",
	}
	inst, plan, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := p.routerSpec(cfg.Routers)
	if err != nil {
		t.Fatal(err)
	}
	vs := Check(inst, plan, spec, p)
	if len(vs) == 0 {
		t.Fatal("corrupting router not caught")
	}
	overlap := false
	for _, v := range vs {
		if v.Invariant == "overlap" {
			overlap = true
		}
	}
	if !overlap {
		t.Fatalf("want an overlap violation, got %v", vs)
	}
	repro, err := ShrinkFailure(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if repro.N() > 5 {
		t.Fatalf("shrunk repro has %d tasks, want ≤ 5", repro.N())
	}
	if len(repro.Violations) == 0 {
		t.Fatal("shrunk repro carries no violations")
	}
	// The shrunk configuration must still reproduce on replay.
	vs2, err := repro.Replay(cfg.Routers)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs2) == 0 {
		t.Fatal("shrunk repro does not replay")
	}
}

// TestSetIgnoringRouterCaughtAndShrunk: a router that ignores processing
// sets is rejected by the simulator; the harness converts that into a
// shrinkable sim-error violation.
func TestSetIgnoringRouterCaughtAndShrunk(t *testing.T) {
	cfg := Config{Routers: brokenRouters()}
	p := Params{
		Trial: 1, Seed: 77,
		M: 6, N: 40, K: 1,
		Load: 0.8, Dist: "constant", Strategy: "none", // singleton sets
		Router: "set-ignoring", FaultMode: "none",
	}
	inst, plan, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := p.routerSpec(cfg.Routers)
	if err != nil {
		t.Fatal(err)
	}
	vs := Check(inst, plan, spec, p)
	if len(vs) != 1 || vs[0].Invariant != InvSimError {
		t.Fatalf("want a single sim-error violation, got %v", vs)
	}
	repro, err := ShrinkFailure(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if repro.N() > 5 {
		t.Fatalf("shrunk repro has %d tasks, want ≤ 5", repro.N())
	}
	if repro.Violations[0].Invariant != InvSimError {
		t.Fatalf("shrunk violation = %v, want %s", repro.Violations[0], InvSimError)
	}
}

// TestSampleParamsElasticCoverage: a healthy fraction of trials sample
// membership churn, and every sampled elastic config is valid for its own
// cluster and for any halved cluster the shrinker may hand it.
func TestSampleParamsElasticCoverage(t *testing.T) {
	cfg := Config{Seed: 7}
	churn := 0
	for trial := 0; trial < 200; trial++ {
		p := SampleParams(cfg, trial)
		if p.Elastic == nil {
			continue
		}
		churn++
		if len(p.Elastic.Script) == 0 && !p.Elastic.Auto {
			t.Fatalf("trial %d: elastic params with nothing to do: %+v", trial, p.Elastic)
		}
		for m := p.M; m >= 1; m /= 2 {
			if err := p.elasticConfig(m).Validate(m); err != nil {
				t.Fatalf("trial %d: elastic config invalid at m=%d: %v", trial, m, err)
			}
		}
	}
	if churn < 30 {
		t.Fatalf("only %d/200 trials sampled membership churn", churn)
	}
}

// TestElasticChurnCaughtAndShrunk is the membership acceptance scenario: a
// broken router on a churning cluster — machines joining and draining
// mid-run, queued work handing off — is caught by the auditor and shrunk to
// a repro of at most 5 tasks, with the scale script minimized alongside the
// instance (this failure does not depend on the churn, so the script must
// shrink away entirely).
func TestElasticChurnCaughtAndShrunk(t *testing.T) {
	cfg := Config{Routers: brokenRouters()}
	p := Params{
		Trial: 4, Seed: 4242,
		M: 6, N: 60, K: 2,
		Load: 1.5, Dist: "constant", Strategy: "overlapping",
		Router: "corrupting", FaultMode: "none",
		Elastic: &ElasticParams{
			Initial: 3, Min: 1, Max: 6, WarmUp: 0.5,
			Script: []elastic.Event{
				{At: 2, Delta: 2}, {At: 5, Delta: -2}, {At: 8, Delta: 1}, {At: 11, Delta: -3},
			},
		},
	}
	inst, plan, err := p.Build()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := p.routerSpec(cfg.Routers)
	if err != nil {
		t.Fatal(err)
	}
	vs := Check(inst, plan, spec, p)
	if len(vs) == 0 {
		t.Fatal("corrupting router not caught under churn")
	}
	overlap := false
	for _, v := range vs {
		if v.Invariant == "overlap" {
			overlap = true
		}
	}
	if !overlap {
		t.Fatalf("want an overlap violation, got %v", vs)
	}
	repro, err := ShrinkFailure(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if repro.N() > 5 {
		t.Fatalf("shrunk repro has %d tasks, want ≤ 5", repro.N())
	}
	if got := len(repro.Params.Elastic.Script); got != 0 {
		t.Fatalf("churn-independent failure kept %d script events", got)
	}
	// The repro round-trips with its elastic params intact and still replays.
	var buf bytes.Buffer
	if err := repro.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRepro(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Params.Elastic, repro.Params.Elastic) {
		t.Fatalf("elastic params changed in round trip: %+v vs %+v",
			back.Params.Elastic, repro.Params.Elastic)
	}
	vs2, err := back.Replay(cfg.Routers)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs2) == 0 {
		t.Fatal("shrunk repro does not replay under churn params")
	}
}

// TestShrinkDeterministic: shrinking the same failure twice produces the
// same minimal repro.
func TestShrinkDeterministic(t *testing.T) {
	cfg := Config{Routers: brokenRouters()}
	p := Params{
		Trial: 2, Seed: 5151,
		M: 5, N: 50, K: 1,
		Load: 1.5, Dist: "uniform", Strategy: "unrestricted",
		Router: "corrupting", FaultMode: "crash", MTBF: 5, MTTR: 2, Zones: 1,
	}
	a, err := ShrinkFailure(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ShrinkFailure(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	ia, _ := a.Inst()
	ib, _ := b.Inst()
	if !reflect.DeepEqual(ia.Tasks, ib.Tasks) || ia.M != ib.M {
		t.Fatal("shrink is not deterministic on the instance")
	}
	if !reflect.DeepEqual(a.Plan, b.Plan) {
		t.Fatal("shrink is not deterministic on the plan")
	}
}

// TestReproRoundTrip: a repro survives WriteJSON → ReadRepro with its
// parameters, instance, plan and violations intact, and still replays.
func TestReproRoundTrip(t *testing.T) {
	cfg := Config{Routers: brokenRouters()}
	p := Params{
		Trial: 3, Seed: 99,
		M: 3, N: 30, K: 1,
		Load: 2, Dist: "constant", Strategy: "unrestricted",
		Router: "corrupting", FaultMode: "gray", MTBF: 4, MTTR: 2, Zones: 1,
	}
	repro, err := ShrinkFailure(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := repro.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRepro(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Params, repro.Params) {
		t.Fatalf("params changed: %+v vs %+v", back.Params, repro.Params)
	}
	if !reflect.DeepEqual(back.Plan, repro.Plan) {
		t.Fatalf("plan changed: %+v vs %+v", back.Plan, repro.Plan)
	}
	bi, err := back.Inst()
	if err != nil {
		t.Fatal(err)
	}
	ri, _ := repro.Inst()
	if !reflect.DeepEqual(bi.Tasks, ri.Tasks) {
		t.Fatal("instance changed in round trip")
	}
	vs, err := back.Replay(cfg.Routers)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("round-tripped repro does not replay")
	}
}

// TestReadReproRejectsInvalid: malformed repro files error instead of
// producing a half-decoded repro.
func TestReadReproRejectsInvalid(t *testing.T) {
	for _, s := range []string{
		`{`,
		`{"params":{},"violations":[],"instance":{"m":0,"tasks":[]}}`,
		`{"params":{},"violations":[],"instance":{"m":2,"tasks":[]},"plan":{"m":0}}`,
		`{"unknown":1}`,
	} {
		if _, err := ReadRepro(bytes.NewReader([]byte(s))); err == nil {
			t.Errorf("accepted invalid repro %s", s)
		}
	}
}

// TestFlightRecorderDumpReplay is the black-box-recorder acceptance check: a
// caught failure carries the raw event stream of its shrunk repro, the dump
// survives a JSONL round trip, and replaying the repro with a fresh recorder
// reproduces the violating event sequence byte for byte.
func TestFlightRecorderDumpReplay(t *testing.T) {
	cfg := Config{Routers: brokenRouters()}
	p := Params{
		Trial: 0, Seed: 1234,
		M: 4, N: 60, K: 1,
		Load: 2, Dist: "constant", Strategy: "unrestricted",
		Router: "corrupting", FaultMode: "none",
	}
	repro, err := ShrinkFailure(cfg, p)
	if err != nil {
		t.Fatal(err)
	}

	rec := obs.NewFlightRecorder(0)
	vs, err := repro.ReplayRecorded(cfg.Routers, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("recorded replay lost the violation")
	}
	events := rec.Events()
	if len(events) == 0 {
		t.Fatal("recorded replay captured no events")
	}
	// The violating schedule must be visible in the stream: every task of
	// the shrunk repro dispatches, and the run closes with a done marker.
	dispatched := map[int]bool{}
	for _, ev := range events {
		if ev.Ev == "dispatch" {
			dispatched[ev.Task] = true
		}
	}
	if len(dispatched) != repro.N() {
		t.Fatalf("dump shows %d dispatched tasks, repro has %d", len(dispatched), repro.N())
	}
	if last := events[len(events)-1]; last.Ev != "done" {
		t.Fatalf("dump ends with %q, want done", last.Ev)
	}

	// Round trip through the on-disk JSONL form.
	dir := t.TempDir()
	path := filepath.Join(dir, "repro.events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteFlightEvents(f, events); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadFlightEvents(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip changed event count: %d → %d", len(events), len(back))
	}

	// Determinism: a second replay with a fresh recorder reproduces the
	// identical sequence (NaN sentinels defeat ==, so compare serialized).
	rec2 := obs.NewFlightRecorder(0)
	if _, err := repro.ReplayRecorded(cfg.Routers, rec2); err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := obs.WriteFlightEvents(&a, events); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteFlightEvents(&b, rec2.Events()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("replayed event stream diverges from the recorded dump")
	}
	if a.String() != string(raw) {
		t.Fatal("on-disk dump diverges from the in-memory stream")
	}
}

// TestRunAttachesFlightEvents: the soak loop itself decorates every caught
// failure with its shrunk repro's event stream, so `chaos -out` dumps land
// next to the repro files without a separate replay step.
func TestRunAttachesFlightEvents(t *testing.T) {
	cfg := Config{Trials: 40, Seed: 3, MaxM: 6, MaxN: 40, Routers: brokenRouters()}
	sum, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Ok() {
		t.Fatal("broken routers produced no failures — injection is broken")
	}
	for _, f := range sum.Failures {
		if len(f.Events) == 0 {
			t.Errorf("trial %d failure carries no flight events", f.Params.Trial)
			continue
		}
		simError := false
		for _, v := range f.Violations {
			if v.Invariant == InvSimError {
				simError = true
			}
		}
		// A sim-error aborts mid-run, so its dump legitimately stops at the
		// failing instant; every completed replay must close with done.
		if last := f.Events[len(f.Events)-1]; !simError && last.Ev != "done" {
			t.Errorf("trial %d event stream ends with %q, want done", f.Params.Trial, last.Ev)
		}
	}
}
