// Package chaos is the randomized soak harness: it samples points of the
// cross-product workload × replication strategy × fault plan × overload
// controls × membership churn × hedging × resilience × router × retry
// policy, simulates each one
// with sim.RunResilient (the full engine stack), and runs every resulting
// schedule through the internal/audit invariant auditor plus a counting
// probe that cross-checks the simulator's own metrics. A trial that
// violates any invariant is automatically shrunk (drop tasks, drop fault
// segments, drop scale events, halve the cluster) to a minimal reproduction
// that can be written out as replayable JSON.
//
// Everything is derived from Config.Seed: the same seed replays the same
// trials, the same plans and the same router randomness, so a soak failure
// in CI is reproducible locally from its printed trial seed alone.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"

	"flowsched/internal/audit"
	"flowsched/internal/core"
	"flowsched/internal/elastic"
	"flowsched/internal/faults"
	"flowsched/internal/hedge"
	"flowsched/internal/obs"
	"flowsched/internal/overload"
	"flowsched/internal/parallel"
	"flowsched/internal/popularity"
	"flowsched/internal/replicate"
	"flowsched/internal/resilience"
	"flowsched/internal/sched"
	"flowsched/internal/sim"
	"flowsched/internal/workload"
)

// InvSimError is the pseudo-invariant reported when the simulator itself
// rejects a trial (e.g. a router picking a server outside the processing
// set): the run never produced a schedule to audit, which is just as much a
// correctness failure and equally shrinkable.
const InvSimError = "sim-error"

// InvProbe is the pseudo-invariant for disagreements between the counting
// probe's view of the run and the simulator's reported metrics.
const InvProbe = "probe"

// RouterSpec names a router kind and builds fresh instances of it; stateful
// routers are rebuilt per simulation so replays see identical streams.
type RouterSpec struct {
	Name string
	New  func(seed int64) sim.Router
}

// DefaultRouters returns every bundled router kind, deterministic ones
// ignoring the seed.
func DefaultRouters() []RouterSpec {
	return []RouterSpec{
		{Name: "EFT-Min", New: func(int64) sim.Router { return sim.EFTRouter{} }},
		{Name: "EFT-Max", New: func(int64) sim.Router { return sim.EFTRouter{Tie: sched.MaxTie{}} }},
		{Name: "JSQ", New: func(int64) sim.Router { return sim.JSQRouter{} }},
		{Name: "RR", New: func(int64) sim.Router { return &sim.RoundRobinRouter{} }},
		{Name: "Po2", New: func(seed int64) sim.Router {
			return sim.PowerOfTwoRouter{Rng: rand.New(rand.NewSource(seed))}
		}},
		{Name: "Random", New: func(seed int64) sim.Router { return &sim.RandomRouter{Seed: seed} }},
		{Name: "EFT-noisy", New: func(seed int64) sim.Router {
			return &sim.NoisyEFTRouter{RelErr: 0.3, Rng: rand.New(rand.NewSource(seed))}
		}},
	}
}

// Config parameterizes a soak run. The zero value is completed by Run:
// 200 trials, seed 1, m ≤ 12, n ≤ 300, all bundled routers.
type Config struct {
	Trials  int
	Seed    int64
	MaxM    int // largest cluster sampled (≥ 2)
	MaxN    int // largest task count sampled (≥ 1)
	Routers []RouterSpec
	Workers int // parallelism of the trial loop; 0 = GOMAXPROCS
	// ShrinkBudget caps the number of candidate simulations one shrink may
	// run; 0 means 2000.
	ShrinkBudget int
}

func (c Config) withDefaults() Config {
	if c.Trials <= 0 {
		c.Trials = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxM < 2 {
		c.MaxM = 12
	}
	if c.MaxN < 1 {
		c.MaxN = 300
	}
	if len(c.Routers) == 0 {
		c.Routers = DefaultRouters()
	}
	if c.ShrinkBudget <= 0 {
		c.ShrinkBudget = 2000
	}
	return c
}

// Params pins one sampled trial: everything needed to regenerate its
// instance, fault plan, router and retry policy bit for bit.
type Params struct {
	Trial      int             `json:"trial"`
	Seed       int64           `json:"seed"` // the trial's derived RNG seed
	M          int             `json:"m"`
	N          int             `json:"n"`
	K          int             `json:"k"` // replication factor (where applicable)
	Load       float64         `json:"load"`
	Dist       string          `json:"dist"`     // constant | exponential | uniform
	Strategy   string          `json:"strategy"` // none|overlapping|disjoint|offset|random|unrestricted
	Router     string          `json:"router"`
	RouterSeed int64           `json:"routerSeed"`
	FaultMode  string          `json:"faultMode"` // none|crash|zones|gray|mixed
	MTBF       float64         `json:"mtbf,omitempty"`
	MTTR       float64         `json:"mttr,omitempty"`
	Zones      int             `json:"zones,omitempty"`
	Policy     sim.RetryPolicy `json:"policy"`
	// Overload, when non-nil, runs the trial through sim.RunGuarded with the
	// described overload controls (and the sampler pushes Load toward or
	// past saturation so they actually fire).
	Overload *OverloadParams `json:"overload,omitempty"`
	// Elastic, when non-nil, runs the trial with online membership: machines
	// join (with warm-up) and drain (with handoff) mid-run on the described
	// script, and the audit membership invariants replace the static
	// eligibility check.
	Elastic *ElasticParams `json:"elastic,omitempty"`
	// Hedge, when non-nil, runs the trial through sim.RunHedged with the
	// described speculative-execution config, and the audit hedge invariants
	// (exactly-one-effective-completion, copy eligibility, duplicate-work
	// accounting) join the check.
	Hedge *HedgeParams `json:"hedge,omitempty"`
	// Resilience, when non-nil, runs the trial through sim.RunResilient with
	// the described retry-storm protections (seeded jitter, retry budget,
	// circuit breakers), and the audit resilience invariants (budget
	// conservation, breaker-state dispatch legality) join the check.
	Resilience *ResilienceParams `json:"resilience,omitempty"`
}

// OverloadParams pins the overload-control side of a trial; everything
// needed to rebuild the overload.Config deterministically.
type OverloadParams struct {
	Mode       string  `json:"mode"` // admit-queue|admit-deadline|shed|eject|slo|mixed
	Deadline   float64 `json:"deadline,omitempty"`
	MaxQueue   int     `json:"maxQueue,omitempty"`
	MaxBacklog float64 `json:"maxBacklog,omitempty"`
	Watermark  float64 `json:"watermark,omitempty"`
	ShedPolicy string  `json:"shedPolicy,omitempty"`
	EjectK     float64 `json:"ejectK,omitempty"`
	Cooldown   float64 `json:"cooldown,omitempty"`
}

// ElasticParams pins the membership-churn side of a trial; everything needed
// to rebuild the elastic.Config deterministically. Bounds are expressed
// against the sampled M but clamp to whatever cluster they are replayed on
// (see elasticConfig), so the shrinker can halve the cluster without
// invalidating the params.
type ElasticParams struct {
	Initial int             `json:"initial"`
	Min     int             `json:"min,omitempty"`
	Max     int             `json:"max,omitempty"`
	WarmUp  float64         `json:"warmUp,omitempty"`
	Script  []elastic.Event `json:"script,omitempty"`
	// Auto attaches a capacity-bound autoscaler on top of the script.
	Auto bool `json:"auto,omitempty"`
}

// HedgeParams pins the hedged-execution side of a trial; everything needed
// to rebuild the hedge.Config deterministically.
type HedgeParams struct {
	Delay         float64 `json:"delay,omitempty"`
	Quantile      float64 `json:"quantile,omitempty"`
	MinSamples    int     `json:"minSamples,omitempty"`
	MaxHedges     int     `json:"maxHedges,omitempty"`
	Tied          bool    `json:"tied,omitempty"`
	CancelRunning bool    `json:"cancelRunning,omitempty"`
}

// ResilienceParams pins the resilience side of a trial; everything needed to
// rebuild the resilience.Config deterministically (the jitter seed is the
// trial seed, so a replay draws identical backoff delays).
type ResilienceParams struct {
	Jitter           string  `json:"jitter,omitempty"` // full|equal|decorrelated
	RetryBudget      float64 `json:"retryBudget,omitempty"`
	BudgetBurst      float64 `json:"budgetBurst,omitempty"`
	BreakerWindow    int     `json:"breakerWindow,omitempty"`
	FailureThreshold float64 `json:"failureThreshold,omitempty"`
	Cooldown         float64 `json:"cooldown,omitempty"`
	HalfOpenProbes   int     `json:"halfOpenProbes,omitempty"`
	SlowFactor       float64 `json:"slowFactor,omitempty"`
}

var faultModes = []string{"none", "crash", "zones", "gray", "mixed"}
var distNames = []string{"constant", "exponential", "uniform"}
var strategyNames = []string{"none", "overlapping", "disjoint", "offset", "random", "unrestricted"}
var overloadModes = []string{"admit-queue", "admit-deadline", "shed", "eject", "slo", "mixed"}
var shedPolicyNames = []string{"newest", "oldest", "random", "stretch"}

// unrestricted is the no-processing-set strategy: every task may run on any
// machine (the paper's P|online-r_i|Fmax setting), which is also the domain
// of the auditor's FIFO ≡ EFT spot-check.
type unrestricted struct{}

func (unrestricted) Name() string              { return "unrestricted" }
func (unrestricted) Set(u, m int) core.ProcSet { return nil }

// trialSeed derives the per-trial RNG seed from the run seed; SplitMix64-ish
// so neighboring trials share no low-bit structure.
func trialSeed(seed int64, trial int) int64 {
	z := uint64(seed) + uint64(trial+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// SampleParams draws the trial-th parameter point of the run.
func SampleParams(cfg Config, trial int) Params {
	cfg = cfg.withDefaults()
	seed := trialSeed(cfg.Seed, trial)
	rng := rand.New(rand.NewSource(seed))
	p := Params{
		Trial:      trial,
		Seed:       seed,
		M:          2 + rng.Intn(cfg.MaxM-1),
		Load:       0.3 + rng.Float64()*0.85, // spans into overload
		Dist:       distNames[rng.Intn(len(distNames))],
		Strategy:   strategyNames[rng.Intn(len(strategyNames))],
		FaultMode:  faultModes[rng.Intn(len(faultModes))],
		RouterSeed: rng.Int63(),
	}
	p.N = 1 + rng.Intn(cfg.MaxN)
	p.K = 1 + rng.Intn(p.M)
	spec := cfg.Routers[rng.Intn(len(cfg.Routers))]
	p.Router = spec.Name
	if p.FaultMode != "none" {
		p.MTBF = 1 + rng.Float64()*20
		p.MTTR = 0.5 + rng.Float64()*5
		p.Zones = 1 + rng.Intn(4)
	}
	switch rng.Intn(3) {
	case 0: // zero value: retry forever, immediately
	case 1:
		p.Policy = sim.RetryPolicy{MaxAttempts: 2 + rng.Intn(5)}
	default:
		p.Policy = sim.RetryPolicy{
			MaxAttempts:   2 + rng.Intn(8),
			Backoff:       rng.Float64() * 0.5,
			BackoffFactor: 1 + rng.Float64()*2,
			Timeout:       5 + rng.Float64()*100,
		}
	}
	// A third of the trials run guarded: overload controls enabled with the
	// load pushed toward (and past) saturation so they actually fire.
	if rng.Intn(3) == 0 {
		p.Load = 0.8 + rng.Float64()*1.2
		op := &OverloadParams{Mode: overloadModes[rng.Intn(len(overloadModes))]}
		switch op.Mode {
		case "admit-queue":
			op.MaxQueue = 1 + rng.Intn(10)
			if rng.Intn(2) == 0 {
				op.MaxBacklog = 1 + rng.Float64()*20
			}
		case "admit-deadline", "mixed":
			op.Deadline = 2 + rng.Float64()*30
		}
		switch op.Mode {
		case "shed", "mixed":
			op.Watermark = 0.5 + rng.Float64()*10
			op.ShedPolicy = shedPolicyNames[rng.Intn(len(shedPolicyNames))]
		}
		switch op.Mode {
		case "eject", "mixed":
			op.EjectK = 1.5 + rng.Float64()*3
			op.Cooldown = 1 + rng.Float64()*10
		}
		p.Overload = op
	}
	// A third of the trials churn membership: scale events spread across the
	// expected release span (and sometimes an autoscaler on top), so joins,
	// warm-ups, drains and handoffs happen while the trial is under load.
	if rng.Intn(3) == 0 {
		ep := &ElasticParams{Initial: 1 + rng.Intn(p.M), Min: 1, Max: p.M}
		if rng.Intn(2) == 0 {
			ep.WarmUp = rng.Float64() * 2
		}
		horizon := float64(p.N) / workload.RateForLoad(p.Load, p.M)
		steps := 1 + rng.Intn(6)
		sign := 1
		if ep.Initial > (p.M+1)/2 {
			sign = -1
		}
		for s := 0; s < steps; s++ {
			ep.Script = append(ep.Script, elastic.Event{
				At:    core.Time(horizon * float64(s+1) / float64(steps+1)),
				Delta: sign * (1 + rng.Intn(2)),
			})
			sign = -sign
		}
		if rng.Intn(3) == 0 {
			ep.Auto = true
		}
		p.Elastic = ep
	}
	// A third of the trials hedge: a speculative duplicate races the primary
	// under one of the three trigger styles. Sampled last so enabling hedging
	// perturbs none of the draws above — a trial seed reproduces the same
	// workload, faults and churn with or without this block.
	if rng.Intn(3) == 0 {
		hp := &HedgeParams{CancelRunning: rng.Intn(2) == 0}
		switch rng.Intn(3) {
		case 0:
			hp.Delay = 0.2 + rng.Float64()*3
		case 1:
			hp.Quantile = 0.8 + rng.Float64()*0.19
			hp.MinSamples = 5 + rng.Intn(30)
		default:
			hp.Tied = true
		}
		if rng.Intn(3) == 0 {
			hp.MaxHedges = 1 + rng.Intn(p.N)
		}
		p.Hedge = hp
	}
	// A third of the trials run resilient: seeded retry jitter, a cluster
	// retry budget and per-server circuit breakers guard the failover path.
	// Sampled after the hedge block for the same re-draw stability — a trial
	// seed reproduces the same workload, faults, churn and hedging with or
	// without this block.
	if rng.Intn(3) == 0 {
		rp := &ResilienceParams{}
		switch rng.Intn(4) {
		case 0: // no jitter: pure budget/breaker trials stay covered
		case 1:
			rp.Jitter = "full"
		case 2:
			rp.Jitter = "equal"
		default:
			rp.Jitter = "decorrelated"
		}
		if rng.Intn(2) == 0 {
			rp.RetryBudget = 0.05 + rng.Float64()*0.45
			if rng.Intn(2) == 0 {
				rp.BudgetBurst = 1 + rng.Float64()*19
			}
		}
		if rng.Intn(2) == 0 {
			rp.BreakerWindow = 3 + rng.Intn(8)
			rp.FailureThreshold = 0.3 + rng.Float64()*0.7
			rp.Cooldown = 0.5 + rng.Float64()*10
			rp.HalfOpenProbes = 1 + rng.Intn(3)
			if rng.Intn(2) == 0 {
				rp.SlowFactor = 2 + rng.Float64()*8
			}
		}
		p.Resilience = rp
	}
	return p
}

// estimator builds the SLO guard for a trial. The LP-backed per-set
// estimator needs the trial's exact replication sets; those are
// rng-dependent for the offset/random strategies and degenerate (nil sets)
// for unrestricted, so only the deterministic strategies get the full
// estimator — the rest fall back to the trivial capacity bound λ* = m.
func (p Params) estimator() *overload.Estimator {
	switch p.Strategy {
	case "none", "overlapping", "disjoint":
		weights := popularity.Zipf(p.M, 0)
		rng := rand.New(rand.NewSource(p.Seed))
		if e, err := overload.NewEstimator(weights, p.strategy(rng)); err == nil {
			return e
		}
	}
	return overload.NewEstimatorCapacity(float64(p.M))
}

// overloadConfig rebuilds the trial's overload.Config deterministically from
// the params (nil when the trial is unguarded).
func (p Params) overloadConfig() (*overload.Config, error) {
	op := p.Overload
	if op == nil {
		return nil, nil
	}
	cfg := &overload.Config{}
	switch op.Mode {
	case "admit-queue":
		cfg.Admission = overload.QueueBound{MaxQueue: op.MaxQueue, MaxBacklog: op.MaxBacklog}
	case "admit-deadline":
		cfg.Admission = overload.DeadlineAdmit{D: op.Deadline}
	case "shed", "eject", "slo", "mixed":
		if op.Mode == "mixed" {
			cfg.Admission = overload.DeadlineAdmit{D: op.Deadline}
		}
	default:
		return nil, fmt.Errorf("chaos: unknown overload mode %q", op.Mode)
	}
	if op.Watermark > 0 {
		policy, err := overload.ShedPolicyByName(op.ShedPolicy)
		if err != nil {
			return nil, err
		}
		cfg.Shedder = &overload.Shedder{Policy: policy, Watermark: op.Watermark, Seed: p.Seed}
	}
	if op.EjectK > 0 {
		cfg.Ejector = &overload.Ejector{K: op.EjectK, Cooldown: core.Time(op.Cooldown), MinSamples: 5}
	}
	if op.Mode == "slo" || op.Mode == "mixed" {
		cfg.Guard = p.estimator()
	}
	return cfg, nil
}

// elasticConfig rebuilds the trial's elastic.Config for a cluster of m slots
// (nil when the trial has static membership). m is a parameter rather than
// p.M because the shrinker halves the cluster: the bounds clamp so the same
// params stay valid on the shrunk instance.
func (p Params) elasticConfig(m int) *elastic.Config {
	ep := p.Elastic
	if ep == nil || m < 1 {
		return nil
	}
	cfg := &elastic.Config{
		Initial: ep.Initial, Min: ep.Min, Max: ep.Max,
		WarmUp: core.Time(ep.WarmUp), Script: ep.Script,
	}
	if cfg.Initial > m {
		cfg.Initial = m
	}
	if cfg.Min > m {
		cfg.Min = m
	}
	if cfg.Max > m {
		cfg.Max = m
	}
	if cfg.Max > 0 && cfg.Min > cfg.Max {
		cfg.Min = cfg.Max
	}
	if cfg.Initial > 0 {
		if cfg.Min > 0 && cfg.Initial < cfg.Min {
			cfg.Initial = cfg.Min
		}
		if cfg.Max > 0 && cfg.Initial > cfg.Max {
			cfg.Initial = cfg.Max
		}
	}
	if ep.Auto {
		cfg.Auto = &elastic.Autoscaler{Guard: overload.NewEstimatorCapacity(float64(m))}
	}
	return cfg
}

// hedgeConfig rebuilds the trial's hedge.Config (nil when the trial does not
// hedge).
func (p Params) hedgeConfig() *hedge.Config {
	hp := p.Hedge
	if hp == nil {
		return nil
	}
	return &hedge.Config{
		Delay:         core.Time(hp.Delay),
		Quantile:      hp.Quantile,
		MinSamples:    hp.MinSamples,
		MaxHedges:     hp.MaxHedges,
		Tied:          hp.Tied,
		CancelRunning: hp.CancelRunning,
	}
}

// resilienceConfig rebuilds the trial's resilience.Config (nil when the
// trial runs unprotected). The jitter seed is the trial seed, so a replay
// draws bit-identical backoff delays.
func (p Params) resilienceConfig() *resilience.Config {
	rp := p.Resilience
	if rp == nil {
		return nil
	}
	cfg := &resilience.Config{
		Jitter:      resilience.JitterMode(rp.Jitter),
		Seed:        p.Seed,
		RetryBudget: rp.RetryBudget,
		BudgetBurst: rp.BudgetBurst,
	}
	if rp.BreakerWindow > 0 {
		cfg.Breaker = &resilience.BreakerConfig{
			Window:           rp.BreakerWindow,
			FailureThreshold: rp.FailureThreshold,
			Cooldown:         core.Time(rp.Cooldown),
			HalfOpenProbes:   rp.HalfOpenProbes,
			SlowFactor:       rp.SlowFactor,
		}
	}
	return cfg
}

func (p Params) strategy(rng *rand.Rand) replicate.Strategy {
	k := p.K
	if k > p.M {
		k = p.M
	}
	switch p.Strategy {
	case "overlapping":
		return replicate.Overlapping{K: k}
	case "disjoint":
		return replicate.Disjoint{K: k}
	case "offset":
		return replicate.OffsetDisjoint{K: k, Offset: rng.Intn(p.M)}
	case "random":
		return replicate.NewRandomK(k, rng)
	case "unrestricted":
		return unrestricted{}
	default:
		return replicate.None{}
	}
}

func (p Params) dist() workload.Dist {
	switch p.Dist {
	case "exponential":
		return workload.ProcExponential
	case "uniform":
		return workload.ProcUniform
	default:
		return workload.ProcConstant
	}
}

// Build materializes the trial: its instance and fault plan, regenerated
// deterministically from the params alone.
func (p Params) Build() (*core.Instance, *faults.Plan, error) {
	rng := rand.New(rand.NewSource(p.Seed))
	inst, err := workload.Generate(workload.Config{
		M:        p.M,
		N:        p.N,
		Rate:     workload.RateForLoad(p.Load, p.M),
		Dist:     p.dist(),
		Strategy: p.strategy(rng),
	}, rng)
	if err != nil {
		return nil, nil, fmt.Errorf("chaos: trial %d: %w", p.Trial, err)
	}
	horizon := core.Time(1)
	if n := inst.N(); n > 0 {
		if last := inst.Tasks[n-1].Release; last > horizon {
			horizon = last
		}
	}
	var plan *faults.Plan
	switch p.FaultMode {
	case "crash":
		plan = faults.Generate(p.M, horizon, p.MTBF, p.MTTR, rng)
	case "zones":
		plan = faults.GenerateCorrelated(p.M, horizon, faults.CorrelatedConfig{
			Zones: p.Zones, MTBF: p.MTBF, MTTR: p.MTTR,
		}, rng)
	case "gray":
		plan = faults.GenerateGray(p.M, horizon, faults.GrayConfig{MTBF: p.MTBF, MTTR: p.MTTR}, rng)
	case "mixed":
		crash := faults.Generate(p.M, horizon, p.MTBF, p.MTTR, rng)
		gray := faults.GenerateGray(p.M, horizon, faults.GrayConfig{MTBF: p.MTBF, MTTR: p.MTTR}, rng)
		plan = crash.Merge(gray)
	}
	return inst, plan, nil
}

// routerSpec resolves the params' router name against the configured specs.
func (p Params) routerSpec(routers []RouterSpec) (RouterSpec, error) {
	for _, spec := range routers {
		if spec.Name == p.Router {
			return spec, nil
		}
	}
	return RouterSpec{}, fmt.Errorf("chaos: unknown router %q", p.Router)
}

// arenas recycles run arenas across trials: parallel.MapErr exposes no worker
// identity, so a sync.Pool hands each in-flight Check a private arena and a
// soak reallocates per-run state only as often as trials overlap, not once per
// trial. The schedule and metrics a trial reads all die before the arena goes
// back in the pool.
var arenas = sync.Pool{New: func() any { return sim.NewArena() }}

// Check simulates (inst, plan) under the params' router and policy, audits
// the outcome and cross-checks the counting probe. It returns the combined
// violations (nil when the trial is clean).
func Check(inst *core.Instance, plan *faults.Plan, spec RouterSpec, p Params) []audit.Violation {
	return CheckRecorded(inst, plan, spec, p, nil)
}

// CheckRecorded is Check with a flight recorder riding the run: rec (reset
// first) receives the raw event stream, and audit violations naming a task
// carry that task's events as evidence. A nil rec is plain Check. The event
// stream is deterministic in (inst, plan, spec, p), so re-running a failing
// configuration with a fresh recorder reproduces the violating sequence
// exactly — the property make chaos-short asserts.
func CheckRecorded(inst *core.Instance, plan *faults.Plan, spec RouterSpec, p Params, rec *obs.FlightRecorder) []audit.Violation {
	router := spec.New(p.RouterSeed)
	probe := newCountProbe(inst.N())
	var simProbe obs.Probe = probe
	if rec != nil {
		rec.Reset()
		simProbe = obs.Multi(probe, rec)
	}
	cfg, err := p.overloadConfig()
	if err != nil {
		return []audit.Violation{{Invariant: InvSimError, Task: -1, Machine: -1, Detail: err.Error()}}
	}
	ecfg := p.elasticConfig(inst.M)
	hcfg := p.hedgeConfig()
	rcfg := p.resilienceConfig()
	arena := arenas.Get().(*sim.Arena)
	defer arenas.Put(arena)
	s, em, err := arena.RunResilient(inst, router, plan, p.Policy, cfg, ecfg, hcfg, rcfg, simProbe)
	if err != nil {
		return []audit.Violation{{Invariant: InvSimError, Task: -1, Machine: -1, Detail: err.Error()}}
	}
	om := &em.OverloadMetrics
	comps := make([]core.Time, inst.N())
	for i, task := range inst.Tasks {
		comps[i] = task.Release + om.Flows[i]
	}
	opts := audit.Options{
		Plan:        plan,
		Completions: comps,
		Dropped:     om.Dropped,
		Recorder:    rec,
	}
	if cfg != nil {
		info := &audit.OverloadInfo{Rejected: om.Rejected, Shed: om.Shed}
		if b, ok := cfg.Admission.(overload.Budgeted); ok {
			info.Deadline = b.Budget()
		}
		opts.Overload = info
	}
	if ecfg != nil {
		// The membership log swaps the static eligibility check for the
		// dispatch-time effective-set replay (and disables the fixed-m
		// FIFO ≡ EFT spot-check).
		opts.Membership = &audit.MembershipInfo{Membership: em.Membership, Dispatched: em.Dispatched}
	}
	if hcfg != nil {
		opts.Hedge = &audit.HedgeInfo{
			Hedged: em.Hedged, CopyServer: em.HedgeCopyServer, CopyAt: em.HedgeCopyAt,
			WonByCopy: em.HedgeWonByCopy, Busy: em.Busy, DuplicateWork: em.DuplicateWork,
		}
	}
	if rcfg != nil {
		opts.Resilience = &audit.ResilienceInfo{
			RetriesRequested: em.RetriesRequested,
			RetriesIssued:    em.RetriesIssued,
			RetriesDropped:   em.RetriesDropped,
			BudgetDropped:    em.BudgetDropped,
			Spans:            em.BreakerSpans,
			ProbeDispatch:    em.ProbeDispatch,
			Dispatched:       em.Dispatched,
			BreakerOpens:     em.BreakerOpens,
			BreakerCloses:    em.BreakerCloses,
		}
	}
	r := audit.Audit(inst, s, opts)
	vs := append(r.Violations, probe.crossCheck(inst, om)...)
	if ecfg != nil {
		vs = append(vs, probe.crossCheckElastic(inst, em)...)
	}
	vs = append(vs, probe.crossCheckHedge(inst, em, hcfg != nil)...)
	vs = append(vs, probe.crossCheckResilience(inst, em, rcfg != nil)...)
	return vs
}

// Failure is one failing trial: its parameters, the violations of the
// original run, the shrunk minimal reproduction, and the flight-recorder
// dump of the shrunk configuration's run.
type Failure struct {
	Params     Params            `json:"params"`
	Violations []audit.Violation `json:"violations"`
	Repro      *Repro            `json:"repro,omitempty"`
	// Events is the raw event stream of the shrunk repro's run (bounded by
	// the flight ring), written next to the repro by cmd/chaos as
	// <repro>.events.jsonl. Replaying the repro with a fresh recorder
	// reproduces it exactly.
	Events []obs.FlightEvent `json:"events,omitempty"`
}

// Summary is the outcome of a soak run.
type Summary struct {
	Trials   int
	Failures []Failure
}

// Ok reports whether every trial audited clean.
func (s *Summary) Ok() bool { return len(s.Failures) == 0 }

// Run executes the soak: cfg.Trials independent trials in parallel, each
// one sampled, built, simulated, audited and cross-checked. Failing trials
// are then shrunk sequentially (shrinking is deterministic, so order does
// not matter) and returned with their minimal repros. logf, when non-nil,
// receives progress lines.
func Run(cfg Config, logf func(format string, args ...any)) (*Summary, error) {
	cfg = cfg.withDefaults()
	say := func(format string, args ...any) {
		if logf != nil {
			logf(format, args...)
		}
	}
	type outcome struct {
		params     Params
		violations []audit.Violation
	}
	results, err := parallel.MapErr(cfg.Trials, cfg.Workers, func(i int) (outcome, error) {
		p := SampleParams(cfg, i)
		inst, plan, err := p.Build()
		if err != nil {
			return outcome{}, err
		}
		spec, err := p.routerSpec(cfg.Routers)
		if err != nil {
			return outcome{}, err
		}
		return outcome{params: p, violations: Check(inst, plan, spec, p)}, nil
	})
	if err != nil {
		return nil, err
	}
	sum := &Summary{Trials: cfg.Trials}
	for _, res := range results {
		if len(res.violations) == 0 {
			continue
		}
		say("chaos: trial %d (seed %d, router %s, faults %s, m=%d n=%d): %d violation(s); first: %s",
			res.params.Trial, res.params.Seed, res.params.Router, res.params.FaultMode,
			res.params.M, res.params.N, len(res.violations), res.violations[0])
		f := Failure{Params: res.params, Violations: res.violations}
		if repro, err := ShrinkFailure(cfg, res.params); err != nil {
			say("chaos: trial %d: shrink failed: %v", res.params.Trial, err)
		} else {
			f.Repro = repro
			// Flight-record the shrunk configuration so the failure ships
			// with its raw event sequence.
			rec := obs.NewFlightRecorder(0)
			if _, err := repro.ReplayRecorded(cfg.Routers, rec); err != nil {
				say("chaos: trial %d: flight recording failed: %v", res.params.Trial, err)
			} else {
				f.Events = rec.Events()
			}
			outages, slowdowns, m2 := 0, 0, res.params.M
			if repro.Plan != nil {
				outages, slowdowns = len(repro.Plan.Outages), len(repro.Plan.Slowdowns)
			}
			if inst, err := repro.Inst(); err == nil {
				m2 = inst.M
			}
			say("chaos: trial %d: shrunk to n=%d, %d outage(s), %d slowdown(s), m=%d",
				res.params.Trial, repro.N(), outages, slowdowns, m2)
		}
		sum.Failures = append(sum.Failures, f)
	}
	say("chaos: %d trials, %d failure(s)", sum.Trials, len(sum.Failures))
	return sum, nil
}
