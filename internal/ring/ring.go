// Package ring implements the consistent-hashing placement layer of
// Dynamo-style key-value stores (DeCandia et al., SOSP 2007), the system
// context of the paper: keys hash onto a circular token space, each
// physical machine owns one or more virtual nodes (tokens), and a key's
// primary is the machine owning the first token clockwise from the key's
// position. Replication on the "k−1 clockwise successors" of the primary
// is exactly the paper's overlapping interval strategy when every machine
// has one token and tokens are in machine order.
//
// The implementation is deterministic (FNV-1a hashing) and stdlib-only.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"

	"flowsched/internal/core"
)

// Ring is a consistent-hash ring over m machines.
type Ring struct {
	m      int
	tokens []token // sorted by position
}

type token struct {
	pos     uint64
	machine int
}

// hashString hashes an arbitrary key to a ring position: FNV-1a followed
// by a splitmix64 finalizer. Plain FNV-1a of short, similar keys
// ("key-1", "key-2", …) is visibly non-uniform in the high bits that the
// ring partitions on; the finalizer restores avalanche.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// KeyPosition returns the ring position of a key — exposed so callers can
// pre-hash keys once and use the *At methods afterwards.
func KeyPosition(key string) uint64 { return hashString(key) }

// mix64 is the splitmix64 finalizer (Steele et al.).
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New builds a ring for m machines with vnodes virtual nodes per machine.
// Token positions are derived by hashing "machine/replicaIndex", as real
// systems do; collisions (astronomically unlikely with 64-bit FNV) are
// resolved by machine index.
func New(m, vnodes int) (*Ring, error) {
	if m < 1 {
		return nil, fmt.Errorf("ring: need at least one machine")
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("ring: need at least one virtual node per machine")
	}
	r := &Ring{m: m}
	for j := 0; j < m; j++ {
		for v := 0; v < vnodes; v++ {
			r.tokens = append(r.tokens, token{
				pos:     hashString(fmt.Sprintf("node-%d/vnode-%d", j, v)),
				machine: j,
			})
		}
	}
	sort.Slice(r.tokens, func(a, b int) bool {
		if r.tokens[a].pos != r.tokens[b].pos {
			return r.tokens[a].pos < r.tokens[b].pos
		}
		return r.tokens[a].machine < r.tokens[b].machine
	})
	return r, nil
}

// NewOrdered builds the idealized ring of the paper: one token per machine,
// in machine order, equally spaced. Key positions then map to primaries
// uniformly and the successor lists are exactly the machine ring
// M_{u}, M_{u+1}, ..., so ReplicaSet coincides with the paper's I_k(u).
func NewOrdered(m int) (*Ring, error) {
	if m < 1 {
		return nil, fmt.Errorf("ring: need at least one machine")
	}
	r := &Ring{m: m}
	step := ^uint64(0) / uint64(m)
	for j := 0; j < m; j++ {
		r.tokens = append(r.tokens, token{pos: uint64(j) * step, machine: j})
	}
	return r, nil
}

// M returns the number of machines.
func (r *Ring) M() int { return r.m }

// NumTokens returns the number of virtual nodes on the ring.
func (r *Ring) NumTokens() int { return len(r.tokens) }

// successorIndex returns the index of the first token at or after pos,
// wrapping around.
func (r *Ring) successorIndex(pos uint64) int {
	i := sort.Search(len(r.tokens), func(i int) bool { return r.tokens[i].pos >= pos })
	if i == len(r.tokens) {
		return 0
	}
	return i
}

// Primary returns the machine owning the key.
func (r *Ring) Primary(key string) int {
	return r.tokens[r.successorIndex(hashString(key))].machine
}

// PrimaryAt returns the machine owning an explicit ring position (used by
// tests and by callers that pre-hash keys).
func (r *Ring) PrimaryAt(pos uint64) int {
	return r.tokens[r.successorIndex(pos)].machine
}

// ReplicaSet returns the k distinct machines holding the key: the primary
// plus the owners of the next tokens clockwise, skipping machines already
// in the set (Dynamo's preference list). It panics if k exceeds the number
// of machines.
func (r *Ring) ReplicaSet(key string, k int) core.ProcSet {
	return r.ReplicaSetAt(hashString(key), k)
}

// ReplicaSetAt is ReplicaSet for an explicit ring position.
func (r *Ring) ReplicaSetAt(pos uint64, k int) core.ProcSet {
	if k < 1 || k > r.m {
		panic(fmt.Sprintf("ring: k=%d out of range for m=%d machines", k, r.m))
	}
	seen := make(map[int]bool, k)
	var out []int
	i := r.successorIndex(pos)
	for len(out) < k {
		mach := r.tokens[i].machine
		if !seen[mach] {
			seen[mach] = true
			out = append(out, mach)
		}
		i++
		if i == len(r.tokens) {
			i = 0
		}
	}
	return core.NewProcSet(out...)
}

// OwnershipFractions returns, per machine, the fraction of the token space
// whose primary it is — the expected share of uniformly hashed keys. With
// many virtual nodes the shares concentrate around 1/m.
func (r *Ring) OwnershipFractions() []float64 {
	out := make([]float64, r.m)
	n := len(r.tokens)
	if n == 1 {
		// A single token owns the whole circle; the general arc formula
		// would overflow (the full circle, 2^64, is not a uint64).
		out[r.tokens[0].machine] = 1
		return out
	}
	total := 0.0
	for i := 0; i < n; i++ {
		cur := r.tokens[i]
		// Arc from this token to the next, clockwise; uint64 subtraction
		// wraps correctly for the last→first arc.
		arc := r.tokens[(i+1)%n].pos - cur.pos
		// The arc after token i is owned by the NEXT token's machine (keys
		// map to their clockwise successor); equivalently, token i's
		// machine owns the arc that precedes it. Attribute arcs that way.
		f := float64(arc) / float64(^uint64(0))
		next := r.tokens[(i+1)%n]
		out[next.machine] += f
		total += f
	}
	// Normalize tiny rounding drift.
	if total > 0 {
		for j := range out {
			out[j] /= total
		}
	}
	return out
}

// MachineWeights converts key popularity into machine popularity: given a
// popularity weight for every key (by ring position), it accumulates each
// key's weight onto its primary. This is how the paper's machine-level
// P(E_j) emerges from key-level popularity.
func (r *Ring) MachineWeights(keyPos []uint64, keyWeight []float64) ([]float64, error) {
	if len(keyPos) != len(keyWeight) {
		return nil, fmt.Errorf("ring: %d positions vs %d weights", len(keyPos), len(keyWeight))
	}
	out := make([]float64, r.m)
	for i, pos := range keyPos {
		out[r.PrimaryAt(pos)] += keyWeight[i]
	}
	return out, nil
}
