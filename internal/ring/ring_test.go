package ring

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowsched/internal/core"
	"flowsched/internal/psets"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Errorf("m=0 should fail")
	}
	if _, err := New(3, 0); err == nil {
		t.Errorf("vnodes=0 should fail")
	}
	if _, err := NewOrdered(0); err == nil {
		t.Errorf("ordered m=0 should fail")
	}
}

func TestOrderedRingMatchesPaperIntervals(t *testing.T) {
	// On the idealized ring, the replica set of any key is exactly the
	// paper's I_k(u) for the key's primary u.
	for _, m := range []int{3, 6, 15} {
		r, err := NewOrdered(m)
		if err != nil {
			t.Fatal(err)
		}
		for k := 1; k <= m; k++ {
			for trial := 0; trial < 50; trial++ {
				key := fmt.Sprintf("key-%d-%d", k, trial)
				u := r.Primary(key)
				got := r.ReplicaSet(key, k)
				want := core.MustRingInterval(u, k, m)
				if !got.Equal(want) {
					t.Fatalf("m=%d k=%d key %q primary %d: %v != %v", m, k, key, u, got, want)
				}
			}
		}
	}
}

func TestPrimaryDeterministic(t *testing.T) {
	r, err := New(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("user:%d", i)
		if r.Primary(key) != r.Primary(key) {
			t.Fatalf("Primary not deterministic for %q", key)
		}
	}
}

func TestReplicaSetProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(14)
		vn := 1 + rng.Intn(32)
		r, err := New(m, vn)
		if err != nil {
			return false
		}
		k := 1 + rng.Intn(m)
		for trial := 0; trial < 20; trial++ {
			key := fmt.Sprintf("k%d", rng.Int63())
			set := r.ReplicaSet(key, k)
			// Exactly k distinct machines, includes the primary.
			if set.Len() != k || !set.Contains(r.Primary(key)) {
				return false
			}
			if set.Min() < 0 || set.Max() >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaSetPanicsOnBadK(t *testing.T) {
	r, _ := New(3, 4)
	for _, k := range []int{0, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d should panic", k)
				}
			}()
			r.ReplicaSet("x", k)
		}()
	}
}

func TestOwnershipFractionsSumToOne(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(12)
		vn := 1 + rng.Intn(64)
		r, err := New(m, vn)
		if err != nil {
			return false
		}
		fr := r.OwnershipFractions()
		sum := 0.0
		for _, f := range fr {
			if f < 0 {
				return false
			}
			sum += f
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualNodesBalanceOwnership(t *testing.T) {
	// More virtual nodes concentrate ownership around 1/m: compare the
	// worst-case share with 1 vs 128 vnodes.
	m := 10
	spread := func(vn int) float64 {
		r, err := New(m, vn)
		if err != nil {
			t.Fatal(err)
		}
		fr := r.OwnershipFractions()
		worst := 0.0
		for _, f := range fr {
			if d := math.Abs(f - 1.0/float64(m)); d > worst {
				worst = d
			}
		}
		return worst
	}
	one, many := spread(1), spread(128)
	if many >= one {
		t.Fatalf("128 vnodes (spread %v) should balance better than 1 (spread %v)", many, one)
	}
	if many > 0.05 {
		t.Fatalf("128 vnodes spread %v still far from uniform", many)
	}
}

func TestOwnershipMatchesEmpiricalKeys(t *testing.T) {
	// The analytic ownership fractions predict the empirical distribution
	// of uniformly hashed keys.
	r, err := New(6, 32)
	if err != nil {
		t.Fatal(err)
	}
	fr := r.OwnershipFractions()
	const n = 200000
	counts := make([]float64, 6)
	for i := 0; i < n; i++ {
		counts[r.Primary(fmt.Sprintf("key-%d", i))]++
	}
	for j := range counts {
		got := counts[j] / n
		if math.Abs(got-fr[j]) > 0.01 {
			t.Fatalf("machine %d: empirical %v vs analytic %v", j, got, fr[j])
		}
	}
}

func TestOrderedRingUniformOwnership(t *testing.T) {
	r, err := NewOrdered(8)
	if err != nil {
		t.Fatal(err)
	}
	for j, f := range r.OwnershipFractions() {
		if math.Abs(f-0.125) > 1e-9 {
			t.Fatalf("machine %d owns %v, want 1/8", j, f)
		}
	}
}

func TestMachineWeights(t *testing.T) {
	r, err := NewOrdered(4)
	if err != nil {
		t.Fatal(err)
	}
	// Two keys, positions chosen to land on machines 0 and 2.
	step := ^uint64(0) / 4
	pos := []uint64{0, 2 * step}
	w := []float64{0.7, 0.3}
	mw, err := r.MachineWeights(pos, w)
	if err != nil {
		t.Fatal(err)
	}
	if mw[0] != 0.7 || mw[2] != 0.3 || mw[1] != 0 || mw[3] != 0 {
		t.Fatalf("MachineWeights = %v", mw)
	}
	if _, err := r.MachineWeights(pos, w[:1]); err == nil {
		t.Fatalf("length mismatch should fail")
	}
}

// TestReplicaFamilyIsIntervalOnOrderedRing checks that the family of
// replica sets on the idealized ring is an interval family of uniform size
// (the structure Theorems 8-10 attack).
func TestReplicaFamilyIsIntervalOnOrderedRing(t *testing.T) {
	m, k := 12, 4
	r, err := NewOrdered(m)
	if err != nil {
		t.Fatal(err)
	}
	var sets []core.ProcSet
	for i := 0; i < 100; i++ {
		sets = append(sets, r.ReplicaSet(fmt.Sprintf("key%d", i), k))
	}
	fam := psets.NewFamily(m, sets...)
	if !fam.IsInterval() {
		t.Fatalf("ordered-ring replica sets must be circular intervals")
	}
	if got, ok := fam.UniformSize(); !ok || got != k {
		t.Fatalf("uniform size = %d %v", got, ok)
	}
}

func TestOwnershipSingleToken(t *testing.T) {
	// Regression: a single-token ring owns the full circle (the general
	// arc formula would overflow 2^64 and report zero ownership).
	r, err := New(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	fr := r.OwnershipFractions()
	if len(fr) != 1 || fr[0] != 1 {
		t.Fatalf("single-token ownership = %v, want [1]", fr)
	}
	// Ordered single-machine ring likewise.
	ro, err := NewOrdered(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := ro.OwnershipFractions(); got[0] != 1 {
		t.Fatalf("ordered single-machine ownership = %v", got)
	}
	if ro.Primary("anything") != 0 {
		t.Fatalf("single machine must own every key")
	}
}
