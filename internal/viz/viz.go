// Package viz renders schedules and experiment grids as standalone SVG
// documents (stdlib only) — the publication-style counterparts of the
// ASCII Gantt charts and heat maps: a colored Gantt per machine row for
// schedules, and a continuous-shade matrix for the Figure 10 sweeps.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"

	"flowsched/internal/core"
)

// palette holds distinguishable task fill colors (cycled by task ID).
var palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// GanttSVG writes an SVG Gantt chart of the schedule: one row per machine,
// one rectangle per task colored by task ID, release markers as thin ticks.
// pxPerUnit scales time to pixels (≤ 0 chooses a scale that fits ~900px).
func GanttSVG(w io.Writer, s *core.Schedule, pxPerUnit float64) error {
	const (
		rowH   = 26
		rowGap = 6
		left   = 48
		top    = 24
	)
	horizon := s.Makespan()
	if horizon <= 0 {
		horizon = 1
	}
	if pxPerUnit <= 0 {
		pxPerUnit = 900 / horizon
	}
	width := left + int(horizon*pxPerUnit) + 24
	height := top + s.Inst.M*(rowH+rowGap) + 32

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")

	// Machine rows.
	for j := 0; j < s.Inst.M; j++ {
		y := top + j*(rowH+rowGap)
		fmt.Fprintf(&b, `<text x="8" y="%d">M%d</text>`+"\n", y+rowH/2+4, j+1)
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%.1f" height="%d" fill="#f4f4f4"/>`+"\n",
			left, y, horizon*pxPerUnit, rowH)
	}
	// Task rectangles with release ticks.
	for i := range s.Inst.Tasks {
		j := s.Machine[i]
		if j < 0 {
			continue
		}
		y := top + j*(rowH+rowGap)
		x := left + s.Start[i]*pxPerUnit
		wpx := s.Inst.Tasks[i].Proc * pxPerUnit
		color := palette[i%len(palette)]
		fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s" stroke="#333" stroke-width="0.5"><title>task %d: r=%.3g p=%.3g flow=%.3g on M%d</title></rect>`+"\n",
			x, y+2, math.Max(wpx, 1), rowH-4, color, i, s.Inst.Tasks[i].Release, s.Inst.Tasks[i].Proc, s.Flow(i), j+1)
		if wpx > 14 {
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="white">%d</text>`+"\n", x+3, y+rowH/2+4, i)
		}
		rx := left + s.Inst.Tasks[i].Release*pxPerUnit
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="1" stroke-dasharray="2,2"/>`+"\n",
			rx, y, rx, y+rowH, color)
	}
	// Time axis.
	axisY := top + s.Inst.M*(rowH+rowGap) + 8
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%.1f" y2="%d" stroke="#333"/>`+"\n",
		left, axisY, float64(left)+horizon*pxPerUnit, axisY)
	step := niceStep(horizon)
	for t := 0.0; t <= horizon+1e-9; t += step {
		x := float64(left) + t*pxPerUnit
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#333"/>`+"\n", x, axisY, x, axisY+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%g</text>`+"\n", x, axisY+16, t)
	}
	fmt.Fprintln(&b, `</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}

// niceStep picks a readable axis tick interval for a horizon.
func niceStep(horizon float64) float64 {
	raw := horizon / 10
	mag := math.Pow(10, math.Floor(math.Log10(math.Max(raw, 1e-9))))
	for _, m := range []float64{1, 2, 5, 10} {
		if raw <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

// HeatmapSVG writes an SVG heat map of a matrix with row/column labels,
// values linearly mapped between lo and hi onto a white→blue ramp (lo ≥ hi
// auto-scales).
func HeatmapSVG(w io.Writer, rows, cols []string, values [][]float64, lo, hi float64, title string) error {
	const (
		cell = 22
		left = 56
		top  = 40
	)
	if lo >= hi {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, row := range values {
			for _, v := range row {
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		if !(lo < hi) {
			hi = lo + 1
		}
	}
	width := left + len(cols)*cell + 24
	height := top + len(rows)*cell + 40

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="10">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13">%s</text>`+"\n", left, escape(title))
	for cj, c := range cols {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
			left+cj*cell+cell/2, top-6, escape(c))
	}
	for ri, r := range rows {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%s</text>`+"\n",
			left-6, top+ri*cell+cell/2+4, escape(r))
		for cj := range cols {
			v := values[ri][cj]
			x := (v - lo) / (hi - lo)
			if x < 0 {
				x = 0
			}
			if x > 1 {
				x = 1
			}
			// White (low) → deep blue (high).
			rC := int(255 - 205*x)
			gC := int(255 - 155*x)
			bC := 255
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="rgb(%d,%d,%d)" stroke="#ddd" stroke-width="0.5"><title>%s / %s: %.4g</title></rect>`+"\n",
				left+cj*cell, top+ri*cell, cell, cell, rC, gC, bC, escape(r), escape(cols[cj]), v)
		}
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d">scale: %.4g (white) … %.4g (blue)</text>`+"\n",
		left, top+len(rows)*cell+20, lo, hi)
	fmt.Fprintln(&b, `</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}

func escape(s string) string {
	s = strings.ReplaceAll(s, "&", "&amp;")
	s = strings.ReplaceAll(s, "<", "&lt;")
	s = strings.ReplaceAll(s, ">", "&gt;")
	return s
}
