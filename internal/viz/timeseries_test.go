package viz

import (
	"strings"
	"testing"

	"flowsched/internal/obs"
)

func TestTimeSeriesSVGWellFormed(t *testing.T) {
	samples := []obs.Sample{
		{Time: 0, Queue: []int{1, 0}, Backlog: 1, MaxAge: 0, Busy: 1},
		{Time: 1, Queue: []int{2, 1}, Backlog: 3, MaxAge: 1, Busy: 2},
		{Time: 2, Queue: []int{1, 1}, Backlog: 2, MaxAge: 1.5, Busy: 2},
		{Time: 3, Queue: []int{0, 0}, Backlog: 0, MaxAge: 0, Busy: 0},
	}
	var b strings.Builder
	if err := TimeSeriesSVG(&b, samples, "queue profile <EFT>"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	for _, want := range []string{
		"queue profile &lt;EFT&gt;", // title escaped
		"backlog",                   // area tooltip
		"M1 queue", "M2 queue",      // one line per server
		"max-flow watermark",
		"stroke-dasharray",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Backlog area + 2 server lines + watermark.
	if got := strings.Count(out, "<path "); got != 4 {
		t.Errorf("paths = %d, want 4", got)
	}
	if strings.Contains(out, "%!") {
		t.Errorf("stray format verb in output:\n%s", out)
	}
}

func TestTimeSeriesSVGEmpty(t *testing.T) {
	var b strings.Builder
	if err := TimeSeriesSVG(&b, nil, "empty"); err == nil {
		t.Fatal("empty sample series accepted")
	}
}

// TestTimeSeriesSVGSingleSample: a dt beyond the makespan leaves exactly one
// sample; the chart must still render (degenerate horizon).
func TestTimeSeriesSVGSingleSample(t *testing.T) {
	samples := []obs.Sample{{Time: 0, Queue: []int{1}, Backlog: 1, MaxAge: 0, Busy: 1}}
	var b strings.Builder
	if err := TimeSeriesSVG(&b, samples, "one sample"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "</svg>") {
		t.Fatal("incomplete SVG")
	}
}
