package viz

import (
	"fmt"
	"io"
	"strings"

	"flowsched/internal/obs"
)

// TimeSeriesSVG writes an SVG chart of a sampled run (obs.Sampler output):
// the total backlog as a filled step area, each server's queue length as a
// thin line, and the in-flight max-flow watermark (the live counterpart of
// Fmax, right axis) as a dashed overlay. Over a stable adversarial prefix
// the per-server lines fan out into the staircase profile w_τ(j) of the
// paper's Section 6.
func TimeSeriesSVG(w io.Writer, samples []obs.Sample, title string) error {
	if len(samples) == 0 {
		return fmt.Errorf("viz: no samples to plot (did the run call OnDone?)")
	}
	const (
		left   = 56
		right  = 56
		top    = 40
		plotW  = 720
		plotH  = 220
		bottom = 36
	)
	width := left + plotW + right
	height := top + plotH + bottom

	tMax := samples[len(samples)-1].Time
	if tMax <= 0 {
		tMax = 1
	}
	maxBacklog, maxAge := 1, 0.0
	for _, s := range samples {
		if s.Backlog > maxBacklog {
			maxBacklog = s.Backlog
		}
		for _, q := range s.Queue {
			if q > maxBacklog {
				maxBacklog = q
			}
		}
		if s.MaxAge > maxAge {
			maxAge = s.MaxAge
		}
	}
	if maxAge <= 0 {
		maxAge = 1
	}
	xOf := func(t float64) float64 { return left + t/tMax*plotW }
	yOf := func(v float64) float64 { return top + plotH - v/float64(maxBacklog)*plotH }
	yAge := func(v float64) float64 { return top + plotH - v/maxAge*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13">%s</text>`+"\n", left, escape(title))

	// Backlog as a filled step area.
	var area strings.Builder
	fmt.Fprintf(&area, "M%.1f,%.1f", xOf(samples[0].Time), yOf(0))
	for i, s := range samples {
		if i > 0 {
			fmt.Fprintf(&area, " L%.1f,%.1f", xOf(s.Time), yOf(float64(samples[i-1].Backlog)))
		}
		fmt.Fprintf(&area, " L%.1f,%.1f", xOf(s.Time), yOf(float64(s.Backlog)))
	}
	fmt.Fprintf(&area, " L%.1f,%.1f Z", xOf(samples[len(samples)-1].Time), yOf(0))
	fmt.Fprintf(&b, `<path d="%s" fill="#4e79a7" fill-opacity="0.25" stroke="#4e79a7" stroke-width="1.5"><title>backlog (released, unfinished)</title></path>`+"\n", area.String())

	// Per-server queue lengths as thin lines.
	for j := range samples[0].Queue {
		var line strings.Builder
		for i, s := range samples {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&line, "%s%.1f,%.1f ", cmd, xOf(s.Time), yOf(float64(s.Queue[j])))
		}
		color := palette[j%len(palette)]
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="0.8" stroke-opacity="0.7"><title>M%d queue</title></path>`+"\n",
			strings.TrimSpace(line.String()), color, j+1)
	}

	// In-flight max-flow watermark, dashed, on the right axis.
	var wm strings.Builder
	for i, s := range samples {
		cmd := "L"
		if i == 0 {
			cmd = "M"
		}
		fmt.Fprintf(&wm, "%s%.1f,%.1f ", cmd, xOf(s.Time), yAge(s.MaxAge))
	}
	fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="#e15759" stroke-width="1.5" stroke-dasharray="5,3"><title>in-flight max flow watermark</title></path>`+"\n",
		strings.TrimSpace(wm.String()))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", left, top+plotH, left+plotW, top+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n", left, top, left, top+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#e15759"/>`+"\n", left+plotW, top, left+plotW, top+plotH)
	step := niceStep(tMax)
	for t := 0.0; t <= tMax+1e-9; t += step {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#333"/>`+"\n", xOf(t), top+plotH, xOf(t), top+plotH+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%g</text>`+"\n", xOf(t), top+plotH+16, t)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">%d</text>`+"\n", left-4, top+8, maxBacklog)
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="end">0</text>`+"\n", left-4, top+plotH+4)
	fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#e15759">%.3g</text>`+"\n", left+plotW+4, top+8, maxAge)
	fmt.Fprintf(&b, `<text x="%d" y="%d">backlog / per-server queues (left), max-flow watermark (right, dashed)</text>`+"\n",
		left, top+plotH+32)
	fmt.Fprintln(&b, `</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}
