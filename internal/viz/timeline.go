package viz

import (
	"fmt"
	"io"
	"math"
	"strings"

	"flowsched/internal/core"
	"flowsched/internal/obs"
)

// Outcome colors of the timeline's service bars.
const (
	tlWait      = "#d9d9d9" // queue wait (release → service start, and re-queue gaps)
	tlCompleted = "#59a14f"
	tlCrashed   = "#e15759"
	tlHandedOff = "#f28e2b"
	tlShed      = "#b07aa1"
	tlPending   = "#9aa0a6"
)

func outcomeColor(o obs.AttemptOutcome) string {
	switch o {
	case obs.AttemptCompleted:
		return tlCompleted
	case obs.AttemptCrashed:
		return tlCrashed
	case obs.AttemptHandedOff:
		return tlHandedOff
	case obs.AttemptShed:
		return tlShed
	default:
		return tlPending
	}
}

// TraceTimelineSVG writes a span Gantt of per-task causal traces
// (obs.Tracer output), one row per task in the given order — pass
// Tracer.Worst(k) for a tail postmortem. Each row shows the queue wait
// from release to first service start as a gray bar, every attempt's
// service interval colored by its outcome (green completed, red crashed,
// orange handed-off, purple shed), the re-queue gaps between attempts as
// thinner gray bars, and crash/handoff/shed instants as markers. Hover
// titles carry the numbers (flow, retries, per-attempt intervals).
func TraceTimelineSVG(w io.Writer, traces []*obs.TaskTrace, makespan core.Time, title string) error {
	if len(traces) == 0 {
		return fmt.Errorf("viz: no traces to plot (did the run call OnDone, and did retention keep any?)")
	}
	const (
		rowH   = 20
		rowGap = 6
		left   = 64
		top    = 40
		plotW  = 760
		bottom = 30
	)
	height := top + len(traces)*(rowH+rowGap) + bottom
	width := left + plotW + 16

	// Horizon: the latest finite instant any trace mentions, or the makespan
	// if larger.
	horizon := float64(makespan)
	if math.IsNaN(horizon) || horizon <= 0 {
		horizon = 0
	}
	grow := func(t core.Time) {
		if v := float64(t); !math.IsNaN(v) && v > horizon {
			horizon = v
		}
	}
	for _, tr := range traces {
		grow(tr.Release)
		grow(tr.EndAt)
		for _, a := range tr.Attempts {
			grow(a.At)
			grow(a.End)
			grow(a.AbortAt)
		}
	}
	if horizon <= 0 {
		horizon = 1
	}
	xOf := func(t core.Time) float64 { return left + float64(t)/horizon*plotW }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="13">%s</text>`+"\n", left, escape(title))
	fmt.Fprintf(&b, `<text x="%d" y="30" font-size="10" fill="#555">green completed · red crashed · orange handed-off · purple shed · gray waiting</text>`+"\n", left)

	bar := func(y float64, from, to core.Time, h float64, color, hover string) {
		x0, x1 := xOf(from), xOf(to)
		if math.IsNaN(x0) || math.IsNaN(x1) || x1 <= x0 {
			return
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"><title>%s</title></rect>`+"\n",
			x0, y, x1-x0, h, color, escape(hover))
	}
	marker := func(y float64, at core.Time, color, hover string) {
		x := xOf(at)
		if math.IsNaN(x) {
			return
		}
		fmt.Fprintf(&b, `<path d="M%.1f,%.1f l4,%d l-8,0 Z" fill="%s"><title>%s</title></path>`+"\n",
			x, y, rowH, color, escape(hover))
	}

	for row, tr := range traces {
		y := float64(top + row*(rowH+rowGap))
		mid := y + float64(rowH)/4

		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" fill="#333">T%d</text>`+"\n",
			left-6, y+float64(rowH)-6, tr.Task)

		// Release tick.
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333" stroke-width="1"><title>T%d released t=%.3g</title></line>`+"\n",
			xOf(tr.Release), y-2, xOf(tr.Release), y+float64(rowH)+2, tr.Task, float64(tr.Release))

		// Waiting spans: release → first service start, and each abort →
		// next dispatch gap, as half-height gray bars.
		prev := tr.Release
		for k, a := range tr.Attempts {
			bar(mid, prev, a.Start, float64(rowH)/2, tlWait,
				fmt.Sprintf("T%d waiting %.3g before attempt %d", tr.Task, float64(a.Start-prev), k+1))
			srvEnd := a.End
			if (a.Outcome == obs.AttemptCrashed || a.Outcome == obs.AttemptHandedOff || a.Outcome == obs.AttemptShed) &&
				!math.IsNaN(float64(a.AbortAt)) && a.AbortAt < srvEnd {
				srvEnd = a.AbortAt
			}
			retimed := ""
			if a.Retimed {
				retimed = " (re-timed)"
			}
			bar(y, a.Start, srvEnd, rowH, outcomeColor(a.Outcome),
				fmt.Sprintf("T%d attempt %d on M%d: [%.3g, %.3g) %s%s",
					tr.Task, k+1, a.Server+1, float64(a.Start), float64(srvEnd), a.Outcome, retimed))
			switch a.Outcome {
			case obs.AttemptCrashed:
				marker(y, a.AbortAt, tlCrashed,
					fmt.Sprintf("T%d attempt %d crashed on M%d at t=%.3g", tr.Task, k+1, a.Server+1, float64(a.AbortAt)))
				prev = a.AbortAt
			case obs.AttemptHandedOff:
				marker(y, a.AbortAt, tlHandedOff,
					fmt.Sprintf("T%d attempt %d handed off from M%d at t=%.3g", tr.Task, k+1, a.Server+1, float64(a.AbortAt)))
				prev = a.AbortAt
			case obs.AttemptShed:
				marker(y, a.AbortAt, tlShed,
					fmt.Sprintf("T%d attempt %d shed from M%d's queue at t=%.3g", tr.Task, k+1, a.Server+1, float64(a.AbortAt)))
				prev = a.AbortAt
			default:
				prev = a.End
			}
		}
		if len(tr.Attempts) == 0 && !math.IsNaN(float64(tr.EndAt)) {
			// Rejected (or deadline-shed before dispatch): waited, never served.
			bar(mid, tr.Release, tr.EndAt, float64(rowH)/2, tlWait,
				fmt.Sprintf("T%d never served: %s %s", tr.Task, tr.State, tr.Reason))
		}

		// Terminal summary hover on an invisible full-row rect.
		flow := "unfinished"
		if !math.IsNaN(float64(tr.Flow)) {
			flow = fmt.Sprintf("flow %.4g", float64(tr.Flow))
		}
		reason := ""
		if tr.Reason != "" {
			reason = " (" + tr.Reason + ")"
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%.1f" width="%d" height="%d" fill="none" pointer-events="all"><title>T%d: %s%s, %s, %d attempt(s), %d retries</title></rect>`+"\n",
			left, y, plotW, rowH, tr.Task, tr.State, reason, flow, len(tr.Attempts), tr.Retries)
	}

	// Time axis.
	axisY := float64(top + len(traces)*(rowH+rowGap))
	fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#333" stroke-width="1"/>`+"\n",
		left, axisY, left+plotW, axisY)
	step := niceStep(horizon)
	for t := 0.0; t <= horizon+1e-9; t += step {
		x := left + t/horizon*float64(plotW)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333" stroke-width="1"/>`+"\n",
			x, axisY, x, axisY+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" fill="#333">%g</text>`+"\n",
			x, axisY+16, t)
	}

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
