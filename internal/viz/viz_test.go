package viz

import (
	"strings"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/sched"
)

func sampleSchedule(t *testing.T) *core.Schedule {
	t.Helper()
	inst := core.NewInstance(3, []core.Task{
		{Release: 0, Proc: 2, Set: core.Interval(0, 1)},
		{Release: 0, Proc: 1},
		{Release: 1, Proc: 1.5, Set: core.NewProcSet(2)},
	})
	s, err := sched.NewEFT(sched.MinTie{}).Run(inst)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGanttSVGWellFormed(t *testing.T) {
	var b strings.Builder
	if err := GanttSVG(&b, sampleSchedule(t), 0); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatalf("not a complete SVG document")
	}
	// One background row per machine plus one rect per task plus the page.
	if got := strings.Count(out, "<rect "); got < 3+3+1 {
		t.Fatalf("too few rects: %d", got)
	}
	for _, want := range []string{"M1", "M2", "M3", "task 0", "flow="} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q", want)
		}
	}
	// Balanced tags.
	if strings.Count(out, "<svg") != strings.Count(out, "</svg>") {
		t.Fatalf("unbalanced svg tags")
	}
}

func TestGanttSVGEmpty(t *testing.T) {
	inst := core.NewInstance(2, nil)
	s := core.NewSchedule(inst)
	var b strings.Builder
	if err := GanttSVG(&b, s, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "M2") {
		t.Fatalf("empty schedule should still render machine rows")
	}
}

func TestHeatmapSVG(t *testing.T) {
	var b strings.Builder
	err := HeatmapSVG(&b,
		[]string{"0.0", "1.0"},
		[]string{"k=1", "k=2"},
		[][]float64{{0, 50}, {100, 100}},
		0, 100, "max load % <test & check>")
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "rgb(255,255,255)") { // value 0 → white
		t.Fatalf("low cell not white")
	}
	if !strings.Contains(out, "rgb(50,100,255)") { // value 100 → deep blue
		t.Fatalf("high cell not deep blue")
	}
	if !strings.Contains(out, "&lt;test &amp; check&gt;") {
		t.Fatalf("title not escaped: %s", out[:200])
	}
	if strings.Count(out, "<rect ") != 1+4 { // page + 4 cells
		t.Fatalf("cell count wrong")
	}
}

func TestHeatmapSVGAutoScale(t *testing.T) {
	var b strings.Builder
	if err := HeatmapSVG(&b, []string{"a"}, []string{"x"}, [][]float64{{7}}, 1, 0, "t"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "scale: 7") {
		t.Fatalf("auto scale legend wrong:\n%s", b.String())
	}
}

func TestNiceStep(t *testing.T) {
	cases := map[float64]float64{
		10:   1,
		35:   5,
		100:  10,
		7:    1,
		1000: 100,
	}
	for horizon, want := range cases {
		if got := niceStep(horizon); got != want {
			t.Errorf("niceStep(%v) = %v, want %v", horizon, got, want)
		}
	}
}
