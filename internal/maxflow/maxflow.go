// Package maxflow implements Dinic's maximum-flow algorithm on directed
// graphs with float64 capacities. It is used as the feasibility oracle of
// the max-load analysis (Section 7.2 of the paper) and by the offline
// unit-task optimal scheduler (bipartite matching over machine/slot pairs).
package maxflow

import "math"

// Eps is the capacity tolerance below which residual capacity counts as
// zero. Capacities used by the library are either integers or sums of at
// most m popularity weights, so 1e-12 is far below any meaningful value.
const Eps = 1e-12

// Graph is a flow network under construction. Nodes are dense integers
// 0..NumNodes-1.
type Graph struct {
	n     int
	heads [][]int // adjacency: indices into edges
	edges []edge
}

type edge struct {
	to  int
	cap float64
}

// NewGraph creates a network with n nodes and no edges.
func NewGraph(n int) *Graph {
	return &Graph{n: n, heads: make([][]int, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a directed edge from u to v with the given capacity and
// returns its identifier (usable with Flow after a Run). The reverse
// residual edge is created automatically with zero capacity. Negative
// capacities and out-of-range nodes panic: they are programming errors.
func (g *Graph) AddEdge(u, v int, capacity float64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic("maxflow: node out of range")
	}
	if capacity < 0 || math.IsNaN(capacity) {
		panic("maxflow: negative or NaN capacity")
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: v, cap: capacity})
	g.edges = append(g.edges, edge{to: u, cap: 0})
	g.heads[u] = append(g.heads[u], id)
	g.heads[v] = append(g.heads[v], id+1)
	return id
}

// Result reports a computed maximum flow.
type Result struct {
	Value float64
	g     *Graph
	flow  []float64
}

// Flow returns the flow routed through edge id (as returned by AddEdge).
func (r *Result) Flow(id int) float64 { return r.flow[id] }

// MinCutSource returns the set of nodes reachable from s in the residual
// network — the source side of a minimum cut.
func (r *Result) MinCutSource(s int) []bool {
	g := r.g
	seen := make([]bool, g.n)
	stack := []int{s}
	seen[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range g.heads[u] {
			e := g.edges[id]
			residual := e.cap - r.flowOn(id)
			if residual > Eps && !seen[e.to] {
				seen[e.to] = true
				stack = append(stack, e.to)
			}
		}
	}
	return seen
}

func (r *Result) flowOn(id int) float64 { return r.flow[id] }

// Run computes the maximum flow from s to t with Dinic's algorithm and
// leaves the graph's capacities untouched (flows are tracked separately so
// the graph can be re-run with different terminals if needed).
func (g *Graph) Run(s, t int) *Result {
	if s == t {
		panic("maxflow: source equals sink")
	}
	flow := make([]float64, len(g.edges))
	level := make([]int, g.n)
	iter := make([]int, g.n)
	total := 0.0

	residual := func(id int) float64 { return g.edges[id].cap - flow[id] }

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		queue := []int{s}
		level[s] = 0
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, id := range g.heads[u] {
				e := g.edges[id]
				if residual(id) > Eps && level[e.to] < 0 {
					level[e.to] = level[u] + 1
					queue = append(queue, e.to)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(u int, pushed float64) float64
	dfs = func(u int, pushed float64) float64 {
		if u == t {
			return pushed
		}
		for ; iter[u] < len(g.heads[u]); iter[u]++ {
			id := g.heads[u][iter[u]]
			e := g.edges[id]
			if residual(id) <= Eps || level[e.to] != level[u]+1 {
				continue
			}
			d := dfs(e.to, math.Min(pushed, residual(id)))
			if d > Eps {
				flow[id] += d
				flow[id^1] -= d
				return d
			}
		}
		return 0
	}

	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(s, math.Inf(1))
			if f <= Eps {
				break
			}
			total += f
		}
	}
	return &Result{Value: total, g: g, flow: flow}
}
