package maxflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleEdge(t *testing.T) {
	g := NewGraph(2)
	e := g.AddEdge(0, 1, 3.5)
	r := g.Run(0, 1)
	if r.Value != 3.5 || r.Flow(e) != 3.5 {
		t.Fatalf("flow = %v, edge = %v", r.Value, r.Flow(e))
	}
}

func TestClassicNetwork(t *testing.T) {
	// CLRS-style example: max flow 23.
	g := NewGraph(6)
	s, v1, v2, v3, v4, tt := 0, 1, 2, 3, 4, 5
	g.AddEdge(s, v1, 16)
	g.AddEdge(s, v2, 13)
	g.AddEdge(v1, v3, 12)
	g.AddEdge(v2, v1, 4)
	g.AddEdge(v2, v4, 14)
	g.AddEdge(v3, v2, 9)
	g.AddEdge(v3, tt, 20)
	g.AddEdge(v4, v3, 7)
	g.AddEdge(v4, tt, 4)
	r := g.Run(s, tt)
	if math.Abs(r.Value-23) > 1e-9 {
		t.Fatalf("max flow = %v, want 23", r.Value)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 5)
	r := g.Run(0, 2)
	if r.Value != 0 {
		t.Fatalf("flow across disconnected graph = %v", r.Value)
	}
}

func TestBipartiteMatching(t *testing.T) {
	// Perfect matching on a 3x3 bipartite graph with unit capacities.
	// Left 1..3, right 4..6, source 0, sink 7.
	g := NewGraph(8)
	for l := 1; l <= 3; l++ {
		g.AddEdge(0, l, 1)
		g.AddEdge(l+3, 7, 1)
	}
	g.AddEdge(1, 4, 1)
	g.AddEdge(1, 5, 1)
	g.AddEdge(2, 4, 1)
	g.AddEdge(3, 6, 1)
	r := g.Run(0, 7)
	if math.Abs(r.Value-3) > 1e-9 {
		t.Fatalf("matching size = %v, want 3", r.Value)
	}
}

func TestHallViolation(t *testing.T) {
	// Two left vertices share one right vertex: matching 1.
	g := NewGraph(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	r := g.Run(0, 4)
	if math.Abs(r.Value-1) > 1e-9 {
		t.Fatalf("flow = %v, want 1", r.Value)
	}
}

func TestMinCut(t *testing.T) {
	// s -3-> a -1-> t : cut is the middle edge.
	g := NewGraph(3)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 1)
	r := g.Run(0, 2)
	cut := r.MinCutSource(0)
	if !cut[0] || !cut[1] || cut[2] {
		t.Fatalf("cut = %v, want {s,a}", cut)
	}
}

func TestFlowConservationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		g := NewGraph(n)
		type eref struct{ id, u, v int }
		var refs []eref
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			id := g.AddEdge(u, v, float64(rng.Intn(10)))
			refs = append(refs, eref{id, u, v})
		}
		r := g.Run(0, n-1)
		// Conservation at internal nodes; capacity respected everywhere.
		net := make([]float64, n)
		for _, e := range refs {
			f := r.Flow(e.id)
			if f < -Eps || f > g.edges[e.id].cap+Eps {
				return false
			}
			net[e.u] += f
			net[e.v] -= f
		}
		for v := 1; v < n-1; v++ {
			if math.Abs(net[v]) > 1e-6 {
				return false
			}
		}
		// Value equals net outflow of source.
		if math.Abs(net[0]-r.Value) > 1e-6 {
			return false
		}
		// Max-flow equals min-cut capacity.
		cut := r.MinCutSource(0)
		if cut[n-1] {
			// Sink reachable would mean augmenting path left.
			return false
		}
		cutCap := 0.0
		for _, e := range refs {
			if cut[e.u] && !cut[e.v] {
				cutCap += g.edges[e.id].cap
			}
		}
		return math.Abs(cutCap-r.Value) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPanics(t *testing.T) {
	g := NewGraph(2)
	for _, f := range []func(){
		func() { g.AddEdge(-1, 0, 1) },
		func() { g.AddEdge(0, 5, 1) },
		func() { g.AddEdge(0, 1, -2) },
		func() { g.Run(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic")
				}
			}()
			f()
		}()
	}
}
