package core

import (
	"math"
	"strings"
	"testing"
)

func mkInstance(m int, tasks ...Task) *Instance { return NewInstance(m, tasks) }

func TestNewInstanceSortsByRelease(t *testing.T) {
	inst := mkInstance(2,
		Task{Release: 3, Proc: 1},
		Task{Release: 1, Proc: 2},
		Task{Release: 2, Proc: 1},
	)
	if inst.N() != 3 {
		t.Fatalf("N = %d", inst.N())
	}
	for i := 1; i < inst.N(); i++ {
		if inst.Tasks[i].Release < inst.Tasks[i-1].Release {
			t.Fatalf("tasks not sorted by release: %v", inst.Tasks)
		}
	}
	for i, task := range inst.Tasks {
		if task.ID != i {
			t.Fatalf("task %d has ID %d", i, task.ID)
		}
	}
	if err := inst.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestNewInstanceStableOnTies(t *testing.T) {
	inst := mkInstance(2,
		Task{Release: 0, Proc: 1, Key: 10},
		Task{Release: 0, Proc: 1, Key: 20},
		Task{Release: 0, Proc: 1, Key: 30},
	)
	keys := []int{inst.Tasks[0].Key, inst.Tasks[1].Key, inst.Tasks[2].Key}
	if keys[0] != 10 || keys[1] != 20 || keys[2] != 30 {
		t.Fatalf("tie order not preserved: %v", keys)
	}
}

func TestInstanceValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		inst *Instance
	}{
		{"no machines", &Instance{M: 0}},
		{"negative release", &Instance{M: 1, Tasks: []Task{{ID: 0, Release: -1, Proc: 1}}}},
		{"zero proc", &Instance{M: 1, Tasks: []Task{{ID: 0, Release: 0, Proc: 0}}}},
		{"nan proc", &Instance{M: 1, Tasks: []Task{{ID: 0, Release: 0, Proc: math.NaN()}}}},
		{"bad ID", &Instance{M: 1, Tasks: []Task{{ID: 5, Release: 0, Proc: 1}}}},
		{"empty set", &Instance{M: 1, Tasks: []Task{{ID: 0, Release: 0, Proc: 1, Set: ProcSet{}}}}},
		{"set out of range", &Instance{M: 2, Tasks: []Task{{ID: 0, Release: 0, Proc: 1, Set: NewProcSet(2)}}}},
		{"unsorted", &Instance{M: 1, Tasks: []Task{
			{ID: 0, Release: 2, Proc: 1}, {ID: 1, Release: 1, Proc: 1}}}},
	}
	for _, c := range cases {
		if err := c.inst.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", c.name)
		}
	}
}

func TestScheduleObjectives(t *testing.T) {
	inst := mkInstance(2,
		Task{Release: 0, Proc: 2},
		Task{Release: 1, Proc: 1},
		Task{Release: 1, Proc: 3},
	)
	s := NewSchedule(inst)
	s.Assign(0, 0, 0) // C=2, F=2
	s.Assign(1, 1, 1) // C=2, F=1
	s.Assign(2, 1, 2) // C=5, F=4
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := s.MaxFlow(); got != 4 {
		t.Errorf("MaxFlow = %v, want 4", got)
	}
	if got := s.Makespan(); got != 5 {
		t.Errorf("Makespan = %v, want 5", got)
	}
	if got := s.MeanFlow(); math.Abs(got-7.0/3) > 1e-12 {
		t.Errorf("MeanFlow = %v, want %v", got, 7.0/3)
	}
	if got := s.MaxStretch(); got != 4.0/3 {
		t.Errorf("MaxStretch = %v, want 4/3", got)
	}
	flows := s.Flows()
	if len(flows) != 3 || flows[0] != 2 || flows[1] != 1 || flows[2] != 4 {
		t.Errorf("Flows = %v", flows)
	}
}

func TestScheduleValidateCatchesOverlap(t *testing.T) {
	inst := mkInstance(1,
		Task{Release: 0, Proc: 2},
		Task{Release: 0, Proc: 2},
	)
	s := NewSchedule(inst)
	s.Assign(0, 0, 0)
	s.Assign(1, 0, 1) // overlaps [0,2)
	if err := s.Validate(); err == nil {
		t.Fatalf("expected overlap error")
	}
	s.Assign(1, 0, 2)
	if err := s.Validate(); err != nil {
		t.Fatalf("back-to-back should be valid: %v", err)
	}
}

func TestScheduleValidateCatchesEligibility(t *testing.T) {
	inst := mkInstance(2, Task{Release: 0, Proc: 1, Set: NewProcSet(1)})
	s := NewSchedule(inst)
	s.Assign(0, 0, 0)
	if err := s.Validate(); err == nil {
		t.Fatalf("expected eligibility error")
	}
	s.Assign(0, 1, 0)
	if err := s.Validate(); err != nil {
		t.Fatalf("eligible assignment rejected: %v", err)
	}
}

func TestScheduleValidateCatchesEarlyStart(t *testing.T) {
	inst := mkInstance(1, Task{Release: 5, Proc: 1})
	s := NewSchedule(inst)
	s.Assign(0, 0, 4)
	if err := s.Validate(); err == nil {
		t.Fatalf("expected release-time error")
	}
}

func TestScheduleValidateUnassigned(t *testing.T) {
	inst := mkInstance(1, Task{Release: 0, Proc: 1})
	s := NewSchedule(inst)
	if err := s.Validate(); err == nil {
		t.Fatalf("expected unassigned error")
	}
}

func TestWaitingWork(t *testing.T) {
	inst := mkInstance(2,
		Task{Release: 0, Proc: 2},
		Task{Release: 0, Proc: 1},
		Task{Release: 0, Proc: 3},
	)
	s := NewSchedule(inst)
	s.Assign(0, 0, 0) // M1: [0,2)
	s.Assign(2, 0, 2) // M1: [2,5)
	s.Assign(1, 1, 0) // M2: [0,1)
	w := s.WaitingWork(1)
	// At t=1: M1 has 1 unit left of task0 plus 3 queued = 4; M2 idle.
	if w[0] != 4 || w[1] != 0 {
		t.Errorf("WaitingWork(1) = %v, want [4 0]", w)
	}
	w = s.WaitingWork(2.5)
	if math.Abs(w[0]-2.5) > 1e-12 {
		t.Errorf("WaitingWork(2.5)[0] = %v, want 2.5", w[0])
	}
}

func TestMachineTasks(t *testing.T) {
	inst := mkInstance(2,
		Task{Release: 0, Proc: 1},
		Task{Release: 0, Proc: 1},
		Task{Release: 1, Proc: 1},
	)
	s := NewSchedule(inst)
	s.Assign(0, 0, 0)
	s.Assign(1, 1, 0)
	s.Assign(2, 0, 1)
	mt := s.MachineTasks()
	if len(mt[0]) != 2 || mt[0][0] != 0 || mt[0][1] != 2 {
		t.Errorf("machine 0 tasks = %v", mt[0])
	}
	if len(mt[1]) != 1 || mt[1][0] != 1 {
		t.Errorf("machine 1 tasks = %v", mt[1])
	}
}

func TestGantt(t *testing.T) {
	inst := mkInstance(2,
		Task{Release: 0, Proc: 2},
		Task{Release: 0, Proc: 1},
	)
	s := NewSchedule(inst)
	s.Assign(0, 0, 0)
	s.Assign(1, 1, 0)
	g := s.Gantt(1)
	if !strings.Contains(g, "M1") || !strings.Contains(g, "00") || !strings.Contains(g, "1.") {
		t.Errorf("unexpected gantt output:\n%s", g)
	}
}

func TestInstanceAggregates(t *testing.T) {
	inst := mkInstance(3,
		Task{Release: 0, Proc: 1},
		Task{Release: 0, Proc: 2.5},
		Task{Release: 1, Proc: 1},
	)
	if inst.UnitTasks() {
		t.Errorf("instance has a non-unit task")
	}
	if got := inst.MaxProc(); got != 2.5 {
		t.Errorf("MaxProc = %v", got)
	}
	if got := inst.TotalWork(); got != 4.5 {
		t.Errorf("TotalWork = %v", got)
	}
	unit := mkInstance(1, Task{Release: 0, Proc: 1})
	if !unit.UnitTasks() {
		t.Errorf("unit instance misdetected")
	}
}

func TestInstanceSets(t *testing.T) {
	inst := mkInstance(3,
		Task{Release: 0, Proc: 1, Set: NewProcSet(0, 1)},
		Task{Release: 0, Proc: 1, Set: NewProcSet(0, 1)},
		Task{Release: 0, Proc: 1}, // unrestricted
		Task{Release: 0, Proc: 1, Set: NewProcSet(2)},
	)
	sets := inst.Sets()
	if len(sets) != 3 {
		t.Fatalf("Sets = %v, want 3 distinct", sets)
	}
	if !sets[1].Equal(Interval(0, 2)) {
		t.Errorf("unrestricted set should resolve to full interval, got %v", sets[1])
	}
}

func TestInstanceClone(t *testing.T) {
	inst := mkInstance(2, Task{Release: 0, Proc: 1, Set: NewProcSet(0)})
	cp := inst.Clone()
	cp.Tasks[0].Set[0] = 1
	if inst.Tasks[0].Set[0] != 0 {
		t.Fatalf("Clone should deep-copy processing sets")
	}
}

func TestGanttClampsWidth(t *testing.T) {
	// A very long schedule renders at most 200 columns.
	inst := mkInstance(1, Task{Release: 0, Proc: 1000})
	s := NewSchedule(inst)
	s.Assign(0, 0, 0)
	g := s.Gantt(1)
	line := strings.SplitN(g, "\n", 2)[0]
	if len(line) > 220 {
		t.Fatalf("gantt line too wide: %d chars", len(line))
	}
}

func TestGanttDefaultsCell(t *testing.T) {
	inst := mkInstance(1, Task{Release: 0, Proc: 2})
	s := NewSchedule(inst)
	s.Assign(0, 0, 0)
	if g := s.Gantt(0); !strings.Contains(g, "00") { // cell ≤ 0 defaults to 1
		t.Fatalf("gantt with cell=0: %q", g)
	}
}

func TestGanttEmptySchedule(t *testing.T) {
	inst := NewInstance(2, nil)
	s := NewSchedule(inst)
	if g := s.Gantt(1); !strings.Contains(g, "M1") {
		t.Fatalf("empty gantt should still print machine rows: %q", g)
	}
}

func TestProcSetMinMaxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Max on empty set should panic")
		}
	}()
	(ProcSet{}).Max()
}

func TestProcSetMinOnNil(t *testing.T) {
	if AllMachines.Min() != 0 {
		t.Fatalf("nil Min should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("Min on empty non-nil set should panic")
		}
	}()
	(ProcSet{}).Min()
}

func TestResolve(t *testing.T) {
	if got := AllMachines.Resolve(3); !got.Equal(Interval(0, 2)) {
		t.Fatalf("Resolve(nil) = %v", got)
	}
	s := NewProcSet(1)
	if got := s.Resolve(3); !got.Equal(s) {
		t.Fatalf("Resolve(non-nil) should be identity")
	}
}
