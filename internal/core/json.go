package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// NullTime is a Time whose JSON form survives the simulator's sentinel
// values: NaN (and ±Inf) encode as null, and null decodes back to NaN.
// encoding/json rejects non-finite float64s outright, yet the engine uses
// NaN deliberately — the start of an unassigned task, the dispatch instant
// of a never-dispatched one — so JSON boundaries carrying such fields use
// NullTime (or Times for slices) instead of raw Time. Finite values encode
// byte-identically to encoding/json's float encoding.
type NullTime Time

// MarshalJSON implements json.Marshaler: null for non-finite values.
func (t NullTime) MarshalJSON() ([]byte, error) {
	return appendTimeJSON(nil, Time(t)), nil
}

// UnmarshalJSON implements json.Unmarshaler: null decodes to NaN.
func (t *NullTime) UnmarshalJSON(data []byte) error {
	if string(data) == "null" {
		*t = NullTime(math.NaN())
		return nil
	}
	f, err := strconv.ParseFloat(string(data), 64)
	if err != nil {
		return fmt.Errorf("core: parsing time %q: %w", data, err)
	}
	*t = NullTime(f)
	return nil
}

// Times is a []Time with the NullTime encoding applied element-wise: NaN and
// ±Inf entries marshal as null and null entries unmarshal as NaN, while
// finite entries keep encoding/json's exact float form. It is assignable to
// and from []Time (core.Time slices), so engine-facing fields can adopt it
// without conversions.
type Times []Time

// MarshalJSON implements json.Marshaler.
func (ts Times) MarshalJSON() ([]byte, error) {
	if ts == nil {
		return []byte("null"), nil
	}
	buf := make([]byte, 0, 8*len(ts)+2)
	buf = append(buf, '[')
	for i, t := range ts {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendTimeJSON(buf, t)
	}
	return append(buf, ']'), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (ts *Times) UnmarshalJSON(data []byte) error {
	var raw []*float64
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("core: decoding times: %w", err)
	}
	if raw == nil {
		*ts = nil
		return nil
	}
	out := make(Times, len(raw))
	for i, p := range raw {
		if p == nil {
			out[i] = Time(math.NaN())
		} else {
			out[i] = Time(*p)
		}
	}
	*ts = out
	return nil
}

// appendTimeJSON appends t's JSON form: null for non-finite values, otherwise
// exactly encoding/json's float64 encoding (shortest round-trip form, %e only
// for very small or very large magnitudes, exponent zero-trimmed).
func appendTimeJSON(buf []byte, t Time) []byte {
	f := float64(t)
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(buf, "null"...)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	buf = strconv.AppendFloat(buf, f, format, -1, 64)
	if format == 'e' {
		// Trim the exponent's leading zero ("2.5e-09" → "2.5e-9"), as
		// encoding/json does.
		if n := len(buf); n >= 4 && buf[n-4] == 'e' && buf[n-3] == '-' && buf[n-2] == '0' {
			buf[n-2] = buf[n-1]
			buf = buf[:n-1]
		}
	}
	return buf
}

// instanceJSON is the stable on-disk form of an Instance.
type instanceJSON struct {
	M     int        `json:"m"`
	Tasks []taskJSON `json:"tasks"`
}

type taskJSON struct {
	Release Time   `json:"release"`
	Proc    Time   `json:"proc"`
	Set     []int  `json:"set,omitempty"` // nil/absent = unrestricted
	Key     int    `json:"key,omitempty"`
	Comment string `json:"comment,omitempty"`
}

// WriteJSON serializes the instance (task IDs are positional and omitted).
func (in *Instance) WriteJSON(w io.Writer) error {
	out := instanceJSON{M: in.M, Tasks: make([]taskJSON, in.N())}
	for i, t := range in.Tasks {
		out.Tasks[i] = taskJSON{Release: t.Release, Proc: t.Proc, Set: t.Set, Key: t.Key}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadInstanceJSON deserializes and validates an instance written by
// WriteJSON (or authored by hand in the same schema). Tasks are re-sorted
// by release time as NewInstance does.
func ReadInstanceJSON(r io.Reader) (*Instance, error) {
	var raw instanceJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("core: decoding instance: %w", err)
	}
	tasks := make([]Task, len(raw.Tasks))
	for i, t := range raw.Tasks {
		var set ProcSet
		if t.Set != nil {
			set = NewProcSet(t.Set...)
		}
		tasks[i] = Task{Release: t.Release, Proc: t.Proc, Set: set, Key: t.Key}
	}
	inst := NewInstance(raw.M, tasks)
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid instance: %w", err)
	}
	return inst, nil
}

// scheduleJSON is the stable on-disk form of a Schedule, embedding its
// instance so a file round-trips standalone. Start uses the NaN-safe Times
// encoding: a faulty/guarded run leaves dropped, rejected and shed tasks
// unassigned (Machine −1, Start NaN), and raw NaN would make encoding/json
// fail the whole write.
type scheduleJSON struct {
	Instance instanceJSON `json:"instance"`
	Machine  []int        `json:"machine"`
	Start    Times        `json:"start"`
}

// WriteJSON serializes the schedule together with its instance.
func (s *Schedule) WriteJSON(w io.Writer) error {
	out := scheduleJSON{
		Instance: instanceJSON{M: s.Inst.M, Tasks: make([]taskJSON, s.Inst.N())},
		Machine:  s.Machine,
		Start:    s.Start,
	}
	for i, t := range s.Inst.Tasks {
		out.Instance.Tasks[i] = taskJSON{Release: t.Release, Proc: t.Proc, Set: t.Set, Key: t.Key}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadScheduleJSON deserializes a schedule written by WriteJSON and
// validates both the instance and the schedule's feasibility.
func ReadScheduleJSON(r io.Reader) (*Schedule, error) {
	var raw scheduleJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("core: decoding schedule: %w", err)
	}
	tasks := make([]Task, len(raw.Instance.Tasks))
	for i, t := range raw.Instance.Tasks {
		var set ProcSet
		if t.Set != nil {
			set = NewProcSet(t.Set...)
		}
		tasks[i] = Task{Release: t.Release, Proc: t.Proc, Set: set, Key: t.Key}
	}
	inst := NewInstance(raw.Instance.M, tasks)
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid embedded instance: %w", err)
	}
	if len(raw.Machine) != inst.N() || len(raw.Start) != inst.N() {
		return nil, fmt.Errorf("core: schedule arrays sized %d/%d for %d tasks",
			len(raw.Machine), len(raw.Start), inst.N())
	}
	s := NewSchedule(inst)
	partial := false
	for i := range raw.Machine {
		if raw.Machine[i] < 0 || math.IsNaN(raw.Start[i]) {
			// Unassigned task (dropped/rejected/shed in a faulty run): both
			// sides must agree, and NewSchedule already holds (−1, NaN).
			if raw.Machine[i] != -1 || !math.IsNaN(raw.Start[i]) {
				return nil, fmt.Errorf("core: task %d: inconsistent unassigned state (machine %d, start %v)",
					i, raw.Machine[i], raw.Start[i])
			}
			partial = true
			continue
		}
		s.Assign(i, raw.Machine[i], raw.Start[i])
	}
	if partial {
		if err := s.ValidatePartial(); err != nil {
			return nil, fmt.Errorf("core: invalid schedule: %w", err)
		}
	} else if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid schedule: %w", err)
	}
	return s, nil
}
