package core

import (
	"encoding/json"
	"fmt"
	"io"
)

// instanceJSON is the stable on-disk form of an Instance.
type instanceJSON struct {
	M     int        `json:"m"`
	Tasks []taskJSON `json:"tasks"`
}

type taskJSON struct {
	Release Time   `json:"release"`
	Proc    Time   `json:"proc"`
	Set     []int  `json:"set,omitempty"` // nil/absent = unrestricted
	Key     int    `json:"key,omitempty"`
	Comment string `json:"comment,omitempty"`
}

// WriteJSON serializes the instance (task IDs are positional and omitted).
func (in *Instance) WriteJSON(w io.Writer) error {
	out := instanceJSON{M: in.M, Tasks: make([]taskJSON, in.N())}
	for i, t := range in.Tasks {
		out.Tasks[i] = taskJSON{Release: t.Release, Proc: t.Proc, Set: t.Set, Key: t.Key}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadInstanceJSON deserializes and validates an instance written by
// WriteJSON (or authored by hand in the same schema). Tasks are re-sorted
// by release time as NewInstance does.
func ReadInstanceJSON(r io.Reader) (*Instance, error) {
	var raw instanceJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("core: decoding instance: %w", err)
	}
	tasks := make([]Task, len(raw.Tasks))
	for i, t := range raw.Tasks {
		var set ProcSet
		if t.Set != nil {
			set = NewProcSet(t.Set...)
		}
		tasks[i] = Task{Release: t.Release, Proc: t.Proc, Set: set, Key: t.Key}
	}
	inst := NewInstance(raw.M, tasks)
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid instance: %w", err)
	}
	return inst, nil
}

// scheduleJSON is the stable on-disk form of a Schedule, embedding its
// instance so a file round-trips standalone.
type scheduleJSON struct {
	Instance instanceJSON `json:"instance"`
	Machine  []int        `json:"machine"`
	Start    []Time       `json:"start"`
}

// WriteJSON serializes the schedule together with its instance.
func (s *Schedule) WriteJSON(w io.Writer) error {
	out := scheduleJSON{
		Instance: instanceJSON{M: s.Inst.M, Tasks: make([]taskJSON, s.Inst.N())},
		Machine:  s.Machine,
		Start:    s.Start,
	}
	for i, t := range s.Inst.Tasks {
		out.Instance.Tasks[i] = taskJSON{Release: t.Release, Proc: t.Proc, Set: t.Set, Key: t.Key}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadScheduleJSON deserializes a schedule written by WriteJSON and
// validates both the instance and the schedule's feasibility.
func ReadScheduleJSON(r io.Reader) (*Schedule, error) {
	var raw scheduleJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("core: decoding schedule: %w", err)
	}
	tasks := make([]Task, len(raw.Instance.Tasks))
	for i, t := range raw.Instance.Tasks {
		var set ProcSet
		if t.Set != nil {
			set = NewProcSet(t.Set...)
		}
		tasks[i] = Task{Release: t.Release, Proc: t.Proc, Set: set, Key: t.Key}
	}
	inst := NewInstance(raw.Instance.M, tasks)
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid embedded instance: %w", err)
	}
	if len(raw.Machine) != inst.N() || len(raw.Start) != inst.N() {
		return nil, fmt.Errorf("core: schedule arrays sized %d/%d for %d tasks",
			len(raw.Machine), len(raw.Start), inst.N())
	}
	s := NewSchedule(inst)
	for i := range raw.Machine {
		s.Assign(i, raw.Machine[i], raw.Start[i])
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid schedule: %w", err)
	}
	return s, nil
}
