package core

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestTimesFiniteByteIdentity: for finite values the hand-rolled NaN-safe
// encoder must be byte-identical to encoding/json's float encoding — the
// NullTime adoption may not change a single existing log byte.
func TestTimesFiniteByteIdentity(t *testing.T) {
	vals := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.1, 2.0 / 3.0, 1e-6, 9.999999e-7,
		2.5e-9, 1e20, 1e21, -1e21, 1.7976931348623157e308, 5e-324,
		123456.789, -0.000125,
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		vals = append(vals, math.Ldexp(rng.NormFloat64(), rng.Intn(160)-80))
	}
	for _, v := range vals {
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NullTime(v).MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("NullTime(%v) = %s, encoding/json = %s", v, got, want)
		}
	}
	ts := make(Times, len(vals))
	for i, v := range vals {
		ts[i] = v
	}
	want, err := json.Marshal(vals)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(ts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("Times slice encoding differs from encoding/json on finite values")
	}
}

func TestNullTimeNonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		b, err := NullTime(v).MarshalJSON()
		if err != nil || string(b) != "null" {
			t.Fatalf("NullTime(%v) = %s, %v; want null", v, b, err)
		}
	}
	var back NullTime
	if err := back.UnmarshalJSON([]byte("null")); err != nil || !math.IsNaN(float64(back)) {
		t.Fatalf("null decoded to %v, %v; want NaN", back, nil)
	}
	if err := back.UnmarshalJSON([]byte("2.5")); err != nil || back != 2.5 {
		t.Fatalf("2.5 decoded to %v", back)
	}
	if err := back.UnmarshalJSON([]byte(`"x"`)); err == nil {
		t.Fatal("garbage accepted")
	}

	ts := Times{1, math.NaN(), 3}
	b, err := json.Marshal(ts)
	if err != nil || string(b) != "[1,null,3]" {
		t.Fatalf("Times = %s, %v", b, err)
	}
	var rt Times
	if err := json.Unmarshal(b, &rt); err != nil {
		t.Fatal(err)
	}
	if rt[0] != 1 || !math.IsNaN(float64(rt[1])) || rt[2] != 3 {
		t.Fatalf("round trip = %v", rt)
	}
	var nilTs Times
	b, err = json.Marshal(nilTs)
	if err != nil || string(b) != "null" {
		t.Fatalf("nil Times = %s, %v", b, err)
	}
}

// TestScheduleJSONDroppedTasksRoundTrip is the regression the NaN-safe
// boundary exists for: a faulty/guarded run's schedule leaves dropped,
// rejected and never-dispatched tasks unassigned (Machine −1, Start NaN),
// and writing such a schedule used to abort on encoding/json's non-finite
// float rejection. It must round-trip, sentinels intact.
func TestScheduleJSONDroppedTasksRoundTrip(t *testing.T) {
	inst := NewInstance(2, []Task{
		{Release: 0, Proc: 1, Set: NewProcSet(0)},
		{Release: 0.5, Proc: 2}, // never dispatched: stays (−1, NaN)
		{Release: 1, Proc: 1, Set: NewProcSet(1)},
		{Release: 2, Proc: 3}, // dropped mid-run: stays (−1, NaN)
	})
	s := NewSchedule(inst)
	s.Assign(0, 0, 0)
	s.Assign(2, 1, 1)

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("writing a partial schedule: %v", err)
	}
	if !strings.Contains(buf.String(), "null") {
		t.Fatal("unassigned starts did not encode as null")
	}
	back, err := ReadScheduleJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reading a partial schedule: %v", err)
	}
	for i := range inst.Tasks {
		if back.Machine[i] != s.Machine[i] {
			t.Fatalf("task %d machine %d, want %d", i, back.Machine[i], s.Machine[i])
		}
		same := back.Start[i] == s.Start[i] ||
			(math.IsNaN(back.Start[i]) && math.IsNaN(s.Start[i]))
		if !same {
			t.Fatalf("task %d start %v, want %v", i, back.Start[i], s.Start[i])
		}
	}
}

// TestReadScheduleJSONRejectsInconsistentUnassigned: the two halves of the
// unassigned sentinel must agree — a null start with a real machine (or the
// reverse) is a corrupted file, not a partial schedule.
func TestReadScheduleJSONRejectsInconsistentUnassigned(t *testing.T) {
	cases := []string{
		`{"instance":{"m":1,"tasks":[{"release":0,"proc":1}]},"machine":[0],"start":[null]}`,
		`{"instance":{"m":1,"tasks":[{"release":0,"proc":1}]},"machine":[-1],"start":[0]}`,
		`{"instance":{"m":1,"tasks":[{"release":0,"proc":1}]},"machine":[-2],"start":[null]}`,
	}
	for i, src := range cases {
		if _, err := ReadScheduleJSON(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted an inconsistent unassigned task", i)
		}
	}
}
