package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestInstanceJSONRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		n := rng.Intn(20)
		tasks := make([]Task, n)
		for i := range tasks {
			var set ProcSet
			if rng.Intn(2) == 0 {
				var ids []int
				for j := 0; j < m; j++ {
					if rng.Intn(2) == 0 {
						ids = append(ids, j)
					}
				}
				if len(ids) == 0 {
					ids = []int{rng.Intn(m)}
				}
				set = NewProcSet(ids...)
			}
			tasks[i] = Task{
				Release: float64(rng.Intn(10)),
				Proc:    0.25 * float64(1+rng.Intn(8)),
				Set:     set,
				Key:     rng.Intn(5),
			}
		}
		inst := NewInstance(m, tasks)
		var buf bytes.Buffer
		if err := inst.WriteJSON(&buf); err != nil {
			return false
		}
		back, err := ReadInstanceJSON(&buf)
		if err != nil {
			return false
		}
		if back.M != inst.M || back.N() != inst.N() {
			return false
		}
		for i := range inst.Tasks {
			a, b := inst.Tasks[i], back.Tasks[i]
			if a.Release != b.Release || a.Proc != b.Proc || a.Key != b.Key || !a.Set.Equal(b.Set) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	inst := NewInstance(2, []Task{
		{Release: 0, Proc: 1, Set: NewProcSet(0)},
		{Release: 0, Proc: 2},
	})
	s := NewSchedule(inst)
	s.Assign(0, 0, 0)
	s.Assign(1, 1, 0)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadScheduleJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.MaxFlow() != s.MaxFlow() {
		t.Fatalf("Fmax changed across round trip")
	}
}

func TestReadInstanceJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"m":0,"tasks":[]}`,                                 // no machines
		`{"m":1,"tasks":[{"release":-1,"proc":1}]}`,          // negative release
		`{"m":1,"tasks":[{"release":0,"proc":0}]}`,           // zero proc
		`{"m":1,"tasks":[{"release":0,"proc":1,"set":[5]}]}`, // set out of range
		`{"m":1,"bogus":true}`,                               // unknown field
		`{`,                                                  // malformed
	}
	for i, src := range cases {
		if _, err := ReadInstanceJSON(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted: %s", i, src)
		}
	}
}

func TestReadScheduleJSONRejectsInfeasible(t *testing.T) {
	// Two tasks overlapping on one machine.
	src := `{
	  "instance": {"m": 1, "tasks": [
	    {"release": 0, "proc": 2},
	    {"release": 0, "proc": 2}
	  ]},
	  "machine": [0, 0],
	  "start": [0, 1]
	}`
	if _, err := ReadScheduleJSON(strings.NewReader(src)); err == nil {
		t.Fatal("overlapping schedule accepted")
	}
	// Wrong array lengths.
	src2 := `{"instance":{"m":1,"tasks":[{"release":0,"proc":1}]},"machine":[0,0],"start":[0]}`
	if _, err := ReadScheduleJSON(strings.NewReader(src2)); err == nil {
		t.Fatal("mismatched arrays accepted")
	}
}

func TestJSONUnrestrictedStaysNil(t *testing.T) {
	inst := NewInstance(2, []Task{{Release: 0, Proc: 1}})
	var buf bytes.Buffer
	if err := inst.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"set"`) {
		t.Fatalf("unrestricted set should be omitted: %s", buf.String())
	}
	back, err := ReadInstanceJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Tasks[0].Set != nil {
		t.Fatalf("unrestricted set should stay nil")
	}
}
