package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewProcSetNormalizes(t *testing.T) {
	s := NewProcSet(3, 1, 2, 1, 3)
	want := ProcSet{1, 2, 3}
	if !s.Equal(want) {
		t.Fatalf("NewProcSet = %v, want %v", s, want)
	}
}

func TestNewProcSetNil(t *testing.T) {
	if s := NewProcSet(); s == nil || len(s) != 0 {
		t.Fatalf("NewProcSet() should be empty non-nil, got %#v", s)
	}
	var none []int
	if s := NewProcSet(none...); s == nil || len(s) != 0 {
		t.Fatalf("NewProcSet(nil...) should be empty non-nil, got %#v", s)
	}
}

func TestInterval(t *testing.T) {
	s := Interval(2, 5)
	if !s.Equal(ProcSet{2, 3, 4, 5}) {
		t.Fatalf("Interval(2,5) = %v", s)
	}
	if !s.IsContiguous() {
		t.Fatalf("Interval(2,5) should be contiguous")
	}
	one := Interval(4, 4)
	if !one.Equal(ProcSet{4}) {
		t.Fatalf("Interval(4,4) = %v", one)
	}
}

func TestIntervalPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Interval(5,2) should panic")
		}
	}()
	Interval(5, 2)
}

func TestRingInterval(t *testing.T) {
	// Paper Figure 9: m=6, k=3; overlapping set of M5 (0-based 4) is
	// {M5,M6,M1} = {0,4,5}.
	s, err := RingInterval(4, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(ProcSet{0, 4, 5}) {
		t.Fatalf("RingInterval(4,3,6) = %v, want {0,4,5}", s)
	}
	if !s.IsCircularInterval(6) {
		t.Fatalf("ring interval should be a circular interval")
	}
	if s.IsContiguous() {
		t.Fatalf("wrap-around set should not be contiguous")
	}
	// Non-wrapping case.
	s2 := MustRingInterval(2, 3, 6)
	if !s2.Equal(ProcSet{2, 3, 4}) {
		t.Fatalf("RingInterval(2,3,6) = %v", s2)
	}
}

func TestRingIntervalInvalid(t *testing.T) {
	// k outside [1, m] — e.g. a scale-down below the replication factor —
	// is an error, not a panic.
	for _, tc := range []struct{ start, k, m int }{
		{0, 4, 3}, {0, 0, 3}, {0, -1, 3}, {0, 1, 0},
	} {
		if s, err := RingInterval(tc.start, tc.k, tc.m); err == nil {
			t.Errorf("RingInterval(%d,%d,%d) = %v, want error", tc.start, tc.k, tc.m, s)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("MustRingInterval(0,4,3) should panic")
		}
	}()
	MustRingInterval(0, 4, 3)
}

func TestContains(t *testing.T) {
	s := NewProcSet(1, 3, 5)
	for _, j := range []int{1, 3, 5} {
		if !s.Contains(j) {
			t.Errorf("Contains(%d) = false", j)
		}
	}
	for _, j := range []int{0, 2, 4, 6, -1} {
		if s.Contains(j) {
			t.Errorf("Contains(%d) = true", j)
		}
	}
	if !AllMachines.Contains(42) {
		t.Errorf("unrestricted set should contain everything")
	}
}

func TestSubsetOf(t *testing.T) {
	a := NewProcSet(1, 2)
	b := NewProcSet(0, 1, 2, 3)
	if !a.SubsetOf(b) {
		t.Errorf("{1,2} should be subset of {0..3}")
	}
	if b.SubsetOf(a) {
		t.Errorf("{0..3} should not be subset of {1,2}")
	}
	if !a.SubsetOf(nil) {
		t.Errorf("every set is subset of unrestricted")
	}
	if ProcSet(nil).SubsetOf(a) {
		t.Errorf("unrestricted is not subset of finite set")
	}
	if !(ProcSet{}).SubsetOf(a) {
		t.Errorf("empty set is subset of everything")
	}
}

func TestIntersectUnionMinus(t *testing.T) {
	a := NewProcSet(1, 2, 3)
	b := NewProcSet(3, 4)
	if got := a.Intersect(b); !got.Equal(ProcSet{3}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); !got.Equal(ProcSet{1, 2, 3, 4}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Minus(b); !got.Equal(ProcSet{1, 2}) {
		t.Errorf("Minus = %v", got)
	}
	if !a.Intersects(b) {
		t.Errorf("{1,2,3} intersects {3,4}")
	}
	if a.Intersects(NewProcSet(5, 6)) {
		t.Errorf("{1,2,3} does not intersect {5,6}")
	}
}

func TestIsCircularInterval(t *testing.T) {
	cases := []struct {
		s    ProcSet
		m    int
		want bool
	}{
		{NewProcSet(0, 1, 2), 6, true},
		{NewProcSet(0, 5), 6, true},        // wrap {5,0}
		{NewProcSet(0, 1, 5), 6, true},     // wrap {5,0,1}
		{NewProcSet(0, 2), 6, false},       // gap, no wrap form
		{NewProcSet(0, 2, 4), 6, false},    // alternating
		{Interval(0, 5), 6, true},          // full ring
		{NewProcSet(1, 2, 4, 5), 6, false}, // two arcs not touching 0
		{ProcSet{}, 6, false},
	}
	for _, c := range cases {
		if got := c.s.IsCircularInterval(c.m); got != c.want {
			t.Errorf("IsCircularInterval(%v, m=%d) = %v, want %v", c.s, c.m, got, c.want)
		}
	}
}

func TestProcSetString(t *testing.T) {
	if got := NewProcSet(0, 1).String(); got != "{M1,M2}" {
		t.Errorf("String = %q", got)
	}
	if got := AllMachines.String(); got != "{*}" {
		t.Errorf("nil String = %q", got)
	}
}

// randomSet draws a random subset of 0..m-1 for property tests.
func randomSet(rng *rand.Rand, m int) ProcSet {
	var ids []int
	for j := 0; j < m; j++ {
		if rng.Intn(2) == 0 {
			ids = append(ids, j)
		}
	}
	return NewProcSet(ids...)
}

func TestProcSetProperties(t *testing.T) {
	const m = 12
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomSet(rng, m), randomSet(rng, m)
		inter := a.Intersect(b)
		uni := a.Union(b)
		// Intersection is subset of both; both are subsets of the union.
		if !inter.SubsetOf(a) || !inter.SubsetOf(b) {
			return false
		}
		if !a.SubsetOf(uni) || !b.SubsetOf(uni) {
			return false
		}
		// |A| + |B| = |A∪B| + |A∩B|.
		if len(a)+len(b) != len(uni)+len(inter) {
			return false
		}
		// Minus/intersect partition a.
		if len(a.Minus(b))+len(inter) != len(a) {
			return false
		}
		// Contains agrees with membership through intersect.
		for j := 0; j < m; j++ {
			if inter.Contains(j) != (a.Contains(j) && b.Contains(j)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRingIntervalProperties(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(14)
		k := 1 + rng.Intn(m)
		u := rng.Intn(m)
		s, err := RingInterval(u, k, m)
		if err != nil || len(s) != k {
			return false
		}
		if !s.IsCircularInterval(m) {
			return false
		}
		// Every element of the ring interval is reachable from u in < k steps.
		for _, j := range s {
			d := ((j-u)%m + m) % m
			if d >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
