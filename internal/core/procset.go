// Package core defines the scheduling model of the paper: tasks with release
// times, processing times and processing set restrictions, instances on m
// identical machines, schedules, and the max-flow objective
// Fmax = max_i (C_i - r_i).
//
// Machines are indexed 0..m-1 internally; the paper uses 1-based indices, so
// display helpers add one where it matters.
package core

import (
	"fmt"
	"sort"
)

// ProcSet is a processing set restriction: the sorted set of machine indices
// (0-based) allowed to process a task. A nil ProcSet means "all machines".
// ProcSets are value types; mutating methods return new sets.
type ProcSet []int

// AllMachines is the nil ProcSet, meaning no restriction.
var AllMachines ProcSet

// NewProcSet builds a normalized (sorted, deduplicated) ProcSet from the
// given machine indices. It always returns a non-nil set (possibly empty);
// the unrestricted set is represented by nil / AllMachines, never built here.
func NewProcSet(machines ...int) ProcSet {
	s := make(ProcSet, len(machines))
	copy(s, machines)
	sort.Ints(s)
	// Deduplicate in place.
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Interval returns the ProcSet {lo, lo+1, ..., hi} (inclusive, 0-based).
// It panics if lo > hi.
func Interval(lo, hi int) ProcSet {
	if lo > hi {
		panic(fmt.Sprintf("core.Interval: lo %d > hi %d", lo, hi))
	}
	s := make(ProcSet, 0, hi-lo+1)
	for j := lo; j <= hi; j++ {
		s = append(s, j)
	}
	return s
}

// RingInterval returns the circular interval of size k starting at machine
// start on a ring of m machines: {start, start+1, ..., start+k-1} mod m.
// This is the I_k(u) construction of Section 7.2 (overlapping strategy).
// Invalid parameters — k outside [1, m], e.g. a scale-down shrinking the
// ring below the replication factor — are reported as an error, not a panic
// (surfaced up front by replicate.ValidateReplication).
func RingInterval(start, k, m int) (ProcSet, error) {
	if k <= 0 || m <= 0 || k > m {
		return nil, fmt.Errorf("core.RingInterval: interval size k=%d outside [1, m=%d]", k, m)
	}
	s := make([]int, 0, k)
	for i := 0; i < k; i++ {
		s = append(s, ((start+i)%m+m)%m)
	}
	return NewProcSet(s...), nil
}

// MustRingInterval is RingInterval for parameters already validated (e.g.
// via replicate.CheckK); it panics on the error path.
func MustRingInterval(start, k, m int) ProcSet {
	s, err := RingInterval(start, k, m)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// Len reports the number of machines in the set; a nil set has length 0 but
// means "unrestricted" (use IsAll to distinguish).
func (s ProcSet) Len() int { return len(s) }

// IsAll reports whether the set is the unrestricted set (nil).
func (s ProcSet) IsAll() bool { return s == nil }

// Contains reports whether machine j belongs to the set. The unrestricted
// set contains every machine.
func (s ProcSet) Contains(j int) bool {
	if s == nil {
		return true
	}
	i := sort.SearchInts(s, j)
	return i < len(s) && s[i] == j
}

// Equal reports whether two sets contain exactly the same machines. Two nil
// sets are equal; a nil set never equals a non-nil set.
func (s ProcSet) Equal(t ProcSet) bool {
	if (s == nil) != (t == nil) {
		return false
	}
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether s ⊆ t. A nil (unrestricted) set is a subset only
// of another nil set; every set is a subset of the unrestricted set.
func (s ProcSet) SubsetOf(t ProcSet) bool {
	if t == nil {
		return true
	}
	if s == nil {
		return false
	}
	i := 0
	for _, v := range s {
		for i < len(t) && t[i] < v {
			i++
		}
		if i >= len(t) || t[i] != v {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ t ≠ ∅. The unrestricted set intersects
// every non-empty set.
func (s ProcSet) Intersects(t ProcSet) bool {
	if s == nil {
		return t == nil || len(t) > 0
	}
	if t == nil {
		return len(s) > 0
	}
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			return true
		case s[i] < t[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// Intersect returns s ∩ t as a new set. Intersecting with the unrestricted
// set returns a copy of the other operand.
func (s ProcSet) Intersect(t ProcSet) ProcSet {
	if s == nil {
		return t.Clone()
	}
	if t == nil {
		return s.Clone()
	}
	var out ProcSet
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < t[j]:
			i++
		default:
			j++
		}
	}
	if out == nil {
		out = ProcSet{}
	}
	return out
}

// Union returns s ∪ t as a new set. A nil operand makes the union
// unrestricted (nil).
func (s ProcSet) Union(t ProcSet) ProcSet {
	if s == nil || t == nil {
		return nil
	}
	out := make(ProcSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) || j < len(t) {
		switch {
		case j >= len(t) || (i < len(s) && s[i] < t[j]):
			out = append(out, s[i])
			i++
		case i >= len(s) || t[j] < s[i]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Minus returns s \ t as a new set (nil s is treated as an error-free no-op
// and returns nil, since the complement of a finite set is not representable).
func (s ProcSet) Minus(t ProcSet) ProcSet {
	if s == nil {
		return nil
	}
	out := make(ProcSet, 0, len(s))
	for _, v := range s {
		if !t.Contains(v) {
			out = append(out, v)
		}
	}
	return out
}

// Clone returns a copy of the set; nil stays nil.
func (s ProcSet) Clone() ProcSet {
	if s == nil {
		return nil
	}
	out := make(ProcSet, len(s))
	copy(out, s)
	return out
}

// Min returns the smallest machine index in the set. It panics on an empty
// non-nil set, and returns 0 for the unrestricted set.
func (s ProcSet) Min() int {
	if s == nil {
		return 0
	}
	if len(s) == 0 {
		panic("core.ProcSet.Min: empty set")
	}
	return s[0]
}

// Max returns the largest machine index in the set, or m-1 is unknown for
// the unrestricted set so it panics there; callers should resolve nil sets
// against the instance first.
func (s ProcSet) Max() int {
	if len(s) == 0 {
		panic("core.ProcSet.Max: empty or unrestricted set")
	}
	return s[len(s)-1]
}

// Resolve returns the concrete machine set for an instance with m machines:
// the set itself, or {0..m-1} if unrestricted.
func (s ProcSet) Resolve(m int) ProcSet {
	if s == nil {
		return Interval(0, m-1)
	}
	return s
}

// IsContiguous reports whether the set is a non-empty contiguous interval
// {a..b} of machine indices.
func (s ProcSet) IsContiguous() bool {
	if len(s) == 0 {
		return false
	}
	return s[len(s)-1]-s[0] == len(s)-1
}

// IsCircularInterval reports whether the set is a non-empty interval on the
// ring of m machines: either contiguous, or a "wrap-around" set of the form
// {0..a} ∪ {b..m-1}. This matches the paper's M_i(interval) definition,
// which allows both {a_i..b_i} and its two-sided complement form.
func (s ProcSet) IsCircularInterval(m int) bool {
	if len(s) == 0 || len(s) > m {
		return false
	}
	if s.IsContiguous() {
		return true
	}
	// Wrap-around: the complement within 0..m-1 must be contiguous.
	comp := Interval(0, m-1).Minus(s)
	return len(comp) == 0 || comp.IsContiguous()
}

// String renders the set in the paper's 1-based notation, e.g. {M1,M2,M3},
// or {*} for the unrestricted set.
func (s ProcSet) String() string {
	if s == nil {
		return "{*}"
	}
	b := []byte{'{'}
	for i, v := range s {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, fmt.Sprintf("M%d", v+1)...)
	}
	return string(append(b, '}'))
}
