package core

import (
	"bytes"
	"testing"
)

// FuzzReadInstanceJSON checks that arbitrary input never panics the
// decoder and that everything it accepts is a valid instance that
// round-trips.
func FuzzReadInstanceJSON(f *testing.F) {
	f.Add([]byte(`{"m":2,"tasks":[{"release":0,"proc":1},{"release":1,"proc":2,"set":[0]}]}`))
	f.Add([]byte(`{"m":1,"tasks":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"m":-1}`))
	f.Add([]byte(`{"m":3,"tasks":[{"release":1e300,"proc":1e-300,"set":[0,1,2]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		inst, err := ReadInstanceJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := inst.Validate(); verr != nil {
			t.Fatalf("accepted instance fails validation: %v", verr)
		}
		var buf bytes.Buffer
		if werr := inst.WriteJSON(&buf); werr != nil {
			t.Fatalf("re-encoding accepted instance: %v", werr)
		}
		back, rerr := ReadInstanceJSON(&buf)
		if rerr != nil {
			t.Fatalf("round trip rejected: %v", rerr)
		}
		if back.N() != inst.N() || back.M != inst.M {
			t.Fatalf("round trip changed shape")
		}
	})
}

// FuzzReadScheduleJSON checks the schedule decoder likewise.
func FuzzReadScheduleJSON(f *testing.F) {
	f.Add([]byte(`{"instance":{"m":1,"tasks":[{"release":0,"proc":1}]},"machine":[0],"start":[0]}`))
	f.Add([]byte(`{"instance":{"m":1,"tasks":[{"release":0,"proc":1}]},"machine":[0],"start":[-1]}`))
	f.Add([]byte(`{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadScheduleJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := s.Validate(); verr != nil {
			t.Fatalf("accepted schedule fails validation: %v", verr)
		}
	})
}
