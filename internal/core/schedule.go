package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// eps is the tolerance used when validating schedules built from
// floating-point arithmetic.
const eps = 1e-9

// Schedule maps every task of an instance to a machine and a start time.
// Machine[i] and Start[i] are the paper's μ_i and σ_i.
type Schedule struct {
	Inst    *Instance
	Machine []int
	Start   []Time
}

// NewSchedule allocates an empty schedule for the instance with all tasks
// unassigned (Machine -1, Start NaN).
func NewSchedule(inst *Instance) *Schedule {
	n := inst.N()
	s := &Schedule{
		Inst:    inst,
		Machine: make([]int, n),
		Start:   make([]Time, n),
	}
	for i := range s.Machine {
		s.Machine[i] = -1
		s.Start[i] = math.NaN()
	}
	return s
}

// Assign places task i on machine j starting at time start.
func (s *Schedule) Assign(i, j int, start Time) {
	s.Machine[i] = j
	s.Start[i] = start
}

// Completion returns C_i = σ_i + p_i.
func (s *Schedule) Completion(i int) Time { return s.Start[i] + s.Inst.Tasks[i].Proc }

// Flow returns F_i = C_i - r_i.
func (s *Schedule) Flow(i int) Time { return s.Completion(i) - s.Inst.Tasks[i].Release }

// MaxFlow returns the objective Fmax = max_i F_i (0 for an empty instance).
func (s *Schedule) MaxFlow() Time {
	var mx Time
	for i := range s.Inst.Tasks {
		if f := s.Flow(i); f > mx {
			mx = f
		}
	}
	return mx
}

// MeanFlow returns the average flow time (0 for an empty instance).
func (s *Schedule) MeanFlow() Time {
	if s.Inst.N() == 0 {
		return 0
	}
	var sum Time
	for i := range s.Inst.Tasks {
		sum += s.Flow(i)
	}
	return sum / Time(s.Inst.N())
}

// Flows returns the flow time of every task, indexed by task ID.
func (s *Schedule) Flows() []Time {
	out := make([]Time, s.Inst.N())
	for i := range out {
		out[i] = s.Flow(i)
	}
	return out
}

// Makespan returns max_i C_i.
func (s *Schedule) Makespan() Time {
	var mx Time
	for i := range s.Inst.Tasks {
		if c := s.Completion(i); c > mx {
			mx = c
		}
	}
	return mx
}

// MaxStretch returns max_i F_i / p_i.
func (s *Schedule) MaxStretch() Time {
	var mx Time
	for i := range s.Inst.Tasks {
		if st := s.Flow(i) / s.Inst.Tasks[i].Proc; st > mx {
			mx = st
		}
	}
	return mx
}

// Validate checks that the schedule is feasible:
//   - every task is assigned to an eligible machine,
//   - no task starts before its release time,
//   - tasks on the same machine do not overlap (non-preemptive, one task at
//     a time).
func (s *Schedule) Validate() error { return s.validate(false) }

// ValidatePartial checks feasibility like Validate but tolerates unassigned
// tasks — the dropped, rejected or shed requests of a faulty run, left at
// Machine −1 with a NaN start. An unassigned task must be consistently
// unassigned on both arrays; the assigned tasks must be feasible among
// themselves.
func (s *Schedule) ValidatePartial() error { return s.validate(true) }

func (s *Schedule) validate(allowUnassigned bool) error {
	n := s.Inst.N()
	if len(s.Machine) != n || len(s.Start) != n {
		return fmt.Errorf("schedule: assignment arrays sized %d/%d, want %d", len(s.Machine), len(s.Start), n)
	}
	byMachine := make([][]int, s.Inst.M)
	for i, t := range s.Inst.Tasks {
		j := s.Machine[i]
		if allowUnassigned && (j < 0 || math.IsNaN(s.Start[i])) {
			if j != -1 || !math.IsNaN(s.Start[i]) {
				return fmt.Errorf("task %d: inconsistent unassigned state (machine %d, start %v)", i, j, s.Start[i])
			}
			continue
		}
		if j < 0 || j >= s.Inst.M {
			return fmt.Errorf("task %d: assigned to invalid machine %d", i, j)
		}
		if !t.Eligible(j) {
			return fmt.Errorf("task %d: machine M%d not in processing set %v", i, j+1, t.Set)
		}
		if math.IsNaN(s.Start[i]) {
			return fmt.Errorf("task %d: unassigned start time", i)
		}
		if s.Start[i] < t.Release-eps {
			return fmt.Errorf("task %d: starts at %v before release %v", i, s.Start[i], t.Release)
		}
		byMachine[j] = append(byMachine[j], i)
	}
	for j, ids := range byMachine {
		sort.Slice(ids, func(a, b int) bool { return s.Start[ids[a]] < s.Start[ids[b]] })
		for x := 1; x < len(ids); x++ {
			prev, cur := ids[x-1], ids[x]
			if s.Completion(prev) > s.Start[cur]+eps {
				return fmt.Errorf("machine M%d: task %d (ends %v) overlaps task %d (starts %v)",
					j+1, prev, s.Completion(prev), cur, s.Start[cur])
			}
		}
	}
	return nil
}

// MachineTasks returns, for each machine, the IDs of its tasks sorted by
// start time.
func (s *Schedule) MachineTasks() [][]int {
	byMachine := make([][]int, s.Inst.M)
	for i := range s.Inst.Tasks {
		if j := s.Machine[i]; j >= 0 && j < s.Inst.M {
			byMachine[j] = append(byMachine[j], i)
		}
	}
	for _, ids := range byMachine {
		sort.Slice(ids, func(a, b int) bool { return s.Start[ids[a]] < s.Start[ids[b]] })
	}
	return byMachine
}

// WaitingWork returns, for each machine, the volume of work assigned to it
// and not yet completed at time t: w_t(j) in the paper's notation (remaining
// part of a running task plus queued tasks), considering only tasks with
// start already decided.
func (s *Schedule) WaitingWork(t Time) []Time {
	w := make([]Time, s.Inst.M)
	for i, task := range s.Inst.Tasks {
		j := s.Machine[i]
		if j < 0 {
			continue
		}
		c := s.Completion(i)
		if c <= t {
			continue
		}
		start := s.Start[i]
		if start >= t {
			w[j] += task.Proc
		} else {
			w[j] += c - t
		}
	}
	return w
}

// Gantt renders a small ASCII Gantt chart of the schedule, one line per
// machine, using one character per cell time units. Intended for unit-ish
// integral schedules (examples, Figure 3); larger or fractional schedules
// still render but coarsely.
func (s *Schedule) Gantt(cell Time) string {
	if cell <= 0 {
		cell = 1
	}
	horizon := s.Makespan()
	width := int(math.Ceil(horizon / cell))
	if width <= 0 {
		width = 1
	}
	if width > 200 {
		width = 200
	}
	rows := make([][]byte, s.Inst.M)
	for j := range rows {
		rows[j] = []byte(strings.Repeat(".", width))
	}
	glyphs := []byte("0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ")
	for i := range s.Inst.Tasks {
		j := s.Machine[i]
		if j < 0 {
			continue
		}
		from := int(s.Start[i] / cell)
		to := int(math.Ceil(s.Completion(i)/cell)) - 1
		if to < from {
			to = from
		}
		g := glyphs[i%len(glyphs)]
		for x := from; x <= to && x < width; x++ {
			rows[j][x] = g
		}
	}
	var b strings.Builder
	for j := range rows {
		fmt.Fprintf(&b, "M%-2d |%s|\n", j+1, rows[j])
	}
	return b.String()
}
