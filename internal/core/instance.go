package core

import (
	"fmt"
	"math"
	"sort"
)

// Time measures instants and durations. The model is continuous-time; unit
// tasks use Proc == 1.
type Time = float64

// Task is a request to be processed: released at Release, needing Proc time
// units on one machine of Set (nil Set = any machine). Key optionally records
// the key-value key that generated the task (-1 when not applicable).
type Task struct {
	ID      int
	Release Time
	Proc    Time
	Set     ProcSet
	Key     int
}

// Eligible reports whether machine j may process the task.
func (t Task) Eligible(j int) bool { return t.Set.Contains(j) }

// Instance is a scheduling problem: n tasks to run on M identical machines.
// Tasks must be ordered by non-decreasing release time (the paper's numbering
// convention i < j ⇒ r_i ≤ r_j); NewInstance establishes this order.
type Instance struct {
	M     int
	Tasks []Task
}

// NewInstance builds an instance on m machines, sorting the tasks by release
// time (stable, preserving submission order among equal releases) and
// assigning sequential IDs 0..n-1 in that order.
func NewInstance(m int, tasks []Task) *Instance {
	ts := make([]Task, len(tasks))
	copy(ts, tasks)
	sort.SliceStable(ts, func(i, j int) bool { return ts[i].Release < ts[j].Release })
	for i := range ts {
		ts[i].ID = i
	}
	return &Instance{M: m, Tasks: ts}
}

// N returns the number of tasks.
func (in *Instance) N() int { return len(in.Tasks) }

// Validate checks the instance invariants: m ≥ 1, non-negative releases,
// positive processing times, non-decreasing release order, IDs equal to
// positions, and processing sets that are non-empty subsets of 0..m-1.
func (in *Instance) Validate() error {
	if in.M < 1 {
		return fmt.Errorf("instance: need at least one machine, got %d", in.M)
	}
	prev := Time(0)
	for i, t := range in.Tasks {
		if t.ID != i {
			return fmt.Errorf("task %d: ID %d does not match position", i, t.ID)
		}
		if t.Release < 0 || math.IsNaN(t.Release) || math.IsInf(t.Release, 0) {
			return fmt.Errorf("task %d: invalid release time %v", i, t.Release)
		}
		if t.Release < prev {
			return fmt.Errorf("task %d: release %v decreases below %v", i, t.Release, prev)
		}
		prev = t.Release
		if t.Proc <= 0 || math.IsNaN(t.Proc) || math.IsInf(t.Proc, 0) {
			return fmt.Errorf("task %d: invalid processing time %v", i, t.Proc)
		}
		if t.Set != nil {
			if len(t.Set) == 0 {
				return fmt.Errorf("task %d: empty processing set", i)
			}
			if t.Set.Min() < 0 || t.Set.Max() >= in.M {
				return fmt.Errorf("task %d: processing set %v out of machine range [0,%d)", i, t.Set, in.M)
			}
		}
	}
	return nil
}

// UnitTasks reports whether every task has processing time exactly 1.
func (in *Instance) UnitTasks() bool {
	for _, t := range in.Tasks {
		if t.Proc != 1 {
			return false
		}
	}
	return true
}

// MaxProc returns max_i p_i (0 for an empty instance).
func (in *Instance) MaxProc() Time {
	var mx Time
	for _, t := range in.Tasks {
		if t.Proc > mx {
			mx = t.Proc
		}
	}
	return mx
}

// TotalWork returns Σ_i p_i.
func (in *Instance) TotalWork() Time {
	var w Time
	for _, t := range in.Tasks {
		w += t.Proc
	}
	return w
}

// Sets returns the distinct processing sets of the instance, in first-seen
// order. The unrestricted (nil) set, if present, is returned as the resolved
// full interval so callers can reason uniformly.
func (in *Instance) Sets() []ProcSet {
	var out []ProcSet
	for _, t := range in.Tasks {
		s := t.Set.Resolve(in.M)
		dup := false
		for _, u := range out {
			if u.Equal(s) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, s)
		}
	}
	return out
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	ts := make([]Task, len(in.Tasks))
	copy(ts, in.Tasks)
	for i := range ts {
		ts[i].Set = ts[i].Set.Clone()
	}
	return &Instance{M: in.M, Tasks: ts}
}
