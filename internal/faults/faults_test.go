package faults

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		ok   bool
	}{
		{"empty", Empty(3), true},
		{"scripted", Empty(3).Down(1, 10, 20), true},
		{"overlapping same server", Empty(3).Down(1, 10, 20).Down(1, 15, 30), true},
		{"no servers", &Plan{M: 0}, false},
		{"server out of range", Empty(3).Down(3, 0, 1), false},
		{"negative server", Empty(3).Down(-1, 0, 1), false},
		{"negative from", Empty(3).Down(0, -1, 1), false},
		{"until before from", Empty(3).Down(0, 5, 5), false},
		{"infinite outage", Empty(3).Down(0, 0, inf()), false},
	}
	for _, c := range cases {
		if err := c.plan.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func inf() float64 { return math.Inf(1) }

func TestNormalizeMergesAndSorts(t *testing.T) {
	p := Empty(4).Down(2, 10, 20).Down(2, 15, 25).Down(2, 25, 30).Down(1, 5, 8).Down(2, 40, 45)
	n := p.Normalize()
	want := []Outage{{1, 5, 8}, {2, 10, 30}, {2, 40, 45}}
	if len(n.Outages) != len(want) {
		t.Fatalf("normalized to %v, want %v", n.Outages, want)
	}
	for i, o := range n.Outages {
		if o != want[i] {
			t.Fatalf("normalized to %v, want %v", n.Outages, want)
		}
	}
	if len(p.Outages) != 5 {
		t.Fatal("Normalize modified its receiver")
	}
}

func TestDownAtAndAvailability(t *testing.T) {
	p := Empty(2).Down(0, 10, 20)
	for _, c := range []struct {
		t    float64
		down bool
	}{{9.9, false}, {10, true}, {19.9, true}, {20, false}} {
		if got := p.DownAt(0, c.t); got != c.down {
			t.Errorf("DownAt(0, %v) = %v, want %v", c.t, got, c.down)
		}
	}
	if p.DownAt(1, 15) {
		t.Error("server 1 never fails")
	}
	if !p.AnyDownAt(15) || p.AnyDownAt(25) {
		t.Error("AnyDownAt wrong")
	}
	down := p.Downtime(100)
	if down[0] != 10 || down[1] != 0 {
		t.Errorf("Downtime = %v, want [10 0]", down)
	}
	// Horizon 15 clips the outage to [10, 15).
	if d := p.Downtime(15)[0]; d != 5 {
		t.Errorf("clipped downtime = %v, want 5", d)
	}
	if got, want := p.Availability(100), 1-10.0/200; got != want {
		t.Errorf("Availability = %v, want %v", got, want)
	}
	if a := Empty(2).Availability(100); a != 1 {
		t.Errorf("healthy availability = %v, want 1", a)
	}
}

func TestMeanRepairTimeAndEnd(t *testing.T) {
	p := Empty(3).Down(0, 0, 10).Down(1, 5, 25)
	if got := p.MeanRepairTime(); got != 15 {
		t.Errorf("MeanRepairTime = %v, want 15", got)
	}
	if got := p.End(); got != 25 {
		t.Errorf("End = %v, want 25", got)
	}
	if Empty(3).MeanRepairTime() != 0 || Empty(3).End() != 0 {
		t.Error("healthy plan should have zero MTTR and end")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := Empty(5).Down(0, 1.5, 2.25).Down(4, 10, 11)
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlanJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.M != p.M || len(back.Outages) != len(p.Outages) {
		t.Fatalf("round trip changed shape: %+v", back)
	}
	for i := range p.Outages {
		if back.Outages[i] != p.Outages[i] {
			t.Fatalf("outage %d changed: %+v vs %+v", i, back.Outages[i], p.Outages[i])
		}
	}
}

func TestReadPlanJSONRejectsInvalid(t *testing.T) {
	for _, s := range []string{
		`{`,
		`{"m":0}`,
		`{"m":2,"outages":[{"server":5,"from":0,"until":1}]}`,
		`{"m":2,"outages":[{"server":0,"from":3,"until":2}]}`,
		`{"m":2,"unknown":true}`,
	} {
		if _, err := ReadPlanJSON(bytes.NewReader([]byte(s))); err == nil {
			t.Errorf("accepted invalid plan %s", s)
		}
	}
}

func TestGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := Generate(10, 1000, 100, 20, rng)
	if err := p.Validate(); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	if len(p.Outages) == 0 {
		t.Fatal("mtbf=100 over horizon 1000 on 10 servers should produce outages")
	}
	for _, o := range p.Outages {
		if o.From >= 1000 {
			t.Errorf("outage starts beyond horizon: %+v", o)
		}
		if o.Until > 2000 {
			t.Errorf("outage ends beyond 2x horizon: %+v", o)
		}
	}
	// Availability should be in the ballpark of mtbf/(mtbf+mttr) ≈ 0.83.
	if a := p.Availability(1000); a < 0.6 || a > 0.98 {
		t.Errorf("availability %v far from steady-state %v", a, 100.0/120)
	}
	// Degenerate parameters give the healthy plan.
	for _, q := range []*Plan{
		Generate(10, 1000, 0, 20, rng),
		Generate(10, 1000, 100, 0, rng),
		Generate(10, 0, 100, 20, rng),
	} {
		if !q.IsEmpty() {
			t.Error("degenerate Generate should be empty")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(5, 500, 50, 10, rand.New(rand.NewSource(3)))
	b := Generate(5, 500, 50, 10, rand.New(rand.NewSource(3)))
	if len(a.Outages) != len(b.Outages) {
		t.Fatal("same seed produced different plans")
	}
	for i := range a.Outages {
		if a.Outages[i] != b.Outages[i] {
			t.Fatal("same seed produced different plans")
		}
	}
}

func TestClone(t *testing.T) {
	p := Empty(3).Down(1, 1, 2)
	q := p.Clone()
	q.Outages[0].Server = 2
	if p.Outages[0].Server != 1 {
		t.Fatal("Clone shares outage storage")
	}
}
