package faults

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSON serializes the plan in the stable on-disk schema:
//
//	{"m": 15,
//	 "outages":   [{"server": 3, "from": 120, "until": 170}, …],
//	 "slowdowns": [{"server": 7, "from": 40, "until": 90, "factor": 4}, …]}
//
// Both lists are omitted when empty, so pre-gray-failure plans round-trip
// unchanged.
func (p *Plan) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// ReadPlanJSON deserializes and validates a plan written by WriteJSON (or
// authored by hand in the same schema).
func ReadPlanJSON(r io.Reader) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: decoding plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("faults: invalid plan: %w", err)
	}
	return &p, nil
}
