// Package faults models server failures for the cluster simulator: a
// FaultPlan is a scripted set of outages — server j is down on the
// half-open interval [From, Until) — that the simulator replays as
// discrete down/up events. Plans can be authored directly (Down), drawn
// from an MTBF/MTTR renewal process (Generate), validated, normalized and
// round-tripped through JSON so a faulty run is exactly reproducible, the
// same way instances are dumped and replayed.
//
// The model matches the replication story of Section 7: processing sets
// M_i exist because replicas fail; a plan describes *when* they fail so
// the flow-time behavior of the routing policies can be stress-tested
// under the very faults replication is for.
package faults

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"flowsched/internal/core"
)

// Outage marks server Server as down on [From, Until): it stops serving at
// From (in-flight work is lost) and accepts work again at Until.
type Outage struct {
	Server int       `json:"server"`
	From   core.Time `json:"from"`
	Until  core.Time `json:"until"`
}

// Duration returns Until - From.
func (o Outage) Duration() core.Time { return o.Until - o.From }

// Plan is a fault schedule for a cluster of M servers: binary outages
// (crash failures) plus gray-failure slowdown segments (see gray.go). The
// zero Outages/Slowdowns slices are the healthy plan: no server ever fails
// or degrades.
type Plan struct {
	M         int        `json:"m"`
	Outages   []Outage   `json:"outages,omitempty"`
	Slowdowns []Slowdown `json:"slowdowns,omitempty"`
}

// Empty returns the healthy plan for m servers (no outages). Simulating
// under it is exactly the fault-free simulation.
func Empty(m int) *Plan { return &Plan{M: m} }

// Down appends a scripted outage for server on [from, until) and returns
// the plan for chaining. Call Validate (or let the simulator do it) after
// building a plan by hand.
func (p *Plan) Down(server int, from, until core.Time) *Plan {
	p.Outages = append(p.Outages, Outage{Server: server, From: from, Until: until})
	return p
}

// IsEmpty reports whether the plan contains no outages and no slowdowns.
func (p *Plan) IsEmpty() bool {
	return p == nil || (len(p.Outages) == 0 && len(p.Slowdowns) == 0)
}

// Validate checks the plan invariants: m ≥ 1, every outage on a server in
// [0, m), finite non-negative From, finite Until strictly after From.
// Overlapping outages on one server are allowed (Normalize merges them);
// an outage must end — a server that never recovers would strand parked
// requests forever, which the simulator refuses to model.
func (p *Plan) Validate() error {
	if p.M < 1 {
		return fmt.Errorf("faults: need at least one server, got %d", p.M)
	}
	for i, o := range p.Outages {
		if o.Server < 0 || o.Server >= p.M {
			return fmt.Errorf("faults: outage %d: server %d out of range [0,%d)", i, o.Server, p.M)
		}
		if o.From < 0 || math.IsNaN(o.From) || math.IsInf(o.From, 0) {
			return fmt.Errorf("faults: outage %d: invalid start %v", i, o.From)
		}
		if math.IsNaN(o.Until) || math.IsInf(o.Until, 0) || o.Until <= o.From {
			return fmt.Errorf("faults: outage %d: invalid end %v (must be finite, after %v)", i, o.Until, o.From)
		}
	}
	perServer := make(map[int][]Slowdown)
	for i, s := range p.Slowdowns {
		if s.Server < 0 || s.Server >= p.M {
			return fmt.Errorf("faults: slowdown %d: server %d out of range [0,%d)", i, s.Server, p.M)
		}
		if s.From < 0 || math.IsNaN(s.From) || math.IsInf(s.From, 0) {
			return fmt.Errorf("faults: slowdown %d: invalid start %v", i, s.From)
		}
		if math.IsNaN(s.Until) || math.IsInf(s.Until, 0) || s.Until <= s.From {
			return fmt.Errorf("faults: slowdown %d: invalid end %v (must be finite, after %v)", i, s.Until, s.From)
		}
		if s.Factor <= 0 || math.IsNaN(s.Factor) || math.IsInf(s.Factor, 0) {
			return fmt.Errorf("faults: slowdown %d: invalid factor %v (must be finite, positive)", i, s.Factor)
		}
		perServer[s.Server] = append(perServer[s.Server], s)
	}
	// Overlapping slowdowns on one server have no well-defined speed; unlike
	// outages (where overlap just means "still down") they are rejected.
	for j, ss := range perServer {
		sort.Slice(ss, func(a, b int) bool { return ss[a].From < ss[b].From })
		for i := 1; i < len(ss); i++ {
			if ss[i].From < ss[i-1].Until && ss[i].Factor != ss[i-1].Factor {
				return fmt.Errorf("faults: server %d: slowdowns [%v,%v)@%v and [%v,%v)@%v overlap with different factors",
					j, ss[i-1].From, ss[i-1].Until, ss[i-1].Factor, ss[i].From, ss[i].Until, ss[i].Factor)
			}
		}
	}
	return nil
}

// Normalize returns an equivalent plan whose outages are sorted by (From,
// Server) with overlapping or touching intervals of the same server merged,
// so each server alternates strictly down/up. The receiver is not modified.
func (p *Plan) Normalize() *Plan {
	out := &Plan{M: p.M}
	if p.IsEmpty() {
		return out
	}
	perServer := make(map[int][]Outage)
	for _, o := range p.Outages {
		perServer[o.Server] = append(perServer[o.Server], o)
	}
	for j, os := range perServer {
		sort.Slice(os, func(a, b int) bool { return os[a].From < os[b].From })
		merged := []Outage{os[0]}
		for _, o := range os[1:] {
			last := &merged[len(merged)-1]
			if o.From <= last.Until {
				if o.Until > last.Until {
					last.Until = o.Until
				}
			} else {
				merged = append(merged, o)
			}
		}
		for i := range merged {
			merged[i].Server = j
		}
		out.Outages = append(out.Outages, merged...)
	}
	sort.Slice(out.Outages, func(a, b int) bool {
		if out.Outages[a].From != out.Outages[b].From {
			return out.Outages[a].From < out.Outages[b].From
		}
		return out.Outages[a].Server < out.Outages[b].Server
	})
	out.Slowdowns = p.normalizedSlowdowns()
	return out
}

// DownAt reports whether server j is down at instant t (From inclusive,
// Until exclusive).
func (p *Plan) DownAt(j int, t core.Time) bool {
	for _, o := range p.Outages {
		if o.Server == j && t >= o.From && t < o.Until {
			return true
		}
	}
	return false
}

// AnyDownAt reports whether any server is down at instant t.
func (p *Plan) AnyDownAt(t core.Time) bool {
	for _, o := range p.Outages {
		if t >= o.From && t < o.Until {
			return true
		}
	}
	return false
}

// Downtime returns each server's total down time, clipped to the horizon
// [0, horizon). Overlapping outages are merged first.
func (p *Plan) Downtime(horizon core.Time) []core.Time {
	return p.DowntimeInto(nil, horizon)
}

// DowntimeInto is Downtime with a caller-provided buffer: buf is resliced to
// M (reallocating only when its capacity is short), zeroed and filled. A
// healthy plan skips the normalization walk entirely, which keeps the
// simulator's per-run finalization allocation-free when an arena supplies
// the buffer.
func (p *Plan) DowntimeInto(buf []core.Time, horizon core.Time) []core.Time {
	down := buf
	if cap(down) < p.M {
		down = make([]core.Time, p.M)
	} else {
		down = down[:p.M]
		for j := range down {
			down[j] = 0
		}
	}
	if len(p.Outages) == 0 {
		return down
	}
	for _, o := range p.Normalize().Outages {
		from, until := o.From, o.Until
		if until > horizon {
			until = horizon
		}
		if from < until {
			down[o.Server] += until - from
		}
	}
	return down
}

// Availability returns the fraction of server·time the cluster was up over
// [0, horizon): 1 − Σ_j downtime_j / (m · horizon). A healthy plan (or a
// non-positive horizon) has availability 1.
func (p *Plan) Availability(horizon core.Time) float64 {
	if horizon <= 0 || p.M == 0 {
		return 1
	}
	var total core.Time
	for _, d := range p.Downtime(horizon) {
		total += d
	}
	return 1 - total/(horizon*core.Time(p.M))
}

// MeanRepairTime returns the mean outage duration of the normalized plan
// (0 for a healthy plan) — the empirical MTTR, used as the default
// recovery-spike window.
func (p *Plan) MeanRepairTime() core.Time {
	n := p.Normalize()
	if len(n.Outages) == 0 {
		return 0
	}
	var sum core.Time
	for _, o := range n.Outages {
		sum += o.Duration()
	}
	return sum / core.Time(len(n.Outages))
}

// End returns the last recovery instant of the plan — the end of its last
// outage or slowdown segment (0 for a healthy plan).
func (p *Plan) End() core.Time {
	var end core.Time
	for _, o := range p.Outages {
		if o.Until > end {
			end = o.Until
		}
	}
	for _, s := range p.Slowdowns {
		if s.Until > end {
			end = s.Until
		}
	}
	return end
}

// Extend lifts a plan authored for a smaller cluster onto m machine slots:
// outage and slowdown segments keep their server ids (machine ids are
// stable slots under elastic membership, so a slowdown scripted for server j
// still hits slot j after it joins mid-run), only the cluster size grows.
// Shrinking below the plan's size is rejected — segments for servers ≥ m
// would silently vanish; drop them explicitly instead.
func (p *Plan) Extend(m int) (*Plan, error) {
	if m < p.M {
		return nil, fmt.Errorf("faults: cannot extend a plan for %d servers onto %d: segments for servers %d..%d would be dropped",
			p.M, m, m, p.M-1)
	}
	out := p.Clone()
	out.M = m
	return out, nil
}

// Clone returns a deep copy of the plan.
func (p *Plan) Clone() *Plan {
	out := &Plan{M: p.M, Outages: make([]Outage, len(p.Outages))}
	copy(out.Outages, p.Outages)
	if len(p.Slowdowns) > 0 {
		out.Slowdowns = make([]Slowdown, len(p.Slowdowns))
		copy(out.Slowdowns, p.Slowdowns)
	}
	return out
}

// Generate draws a fault plan from a per-server renewal process over the
// horizon [0, horizon): each server alternates exponentially distributed
// up periods (mean mtbf) and down periods (mean mttr), independently of
// the others — the standard MTBF/MTTR availability model. Outages are
// clipped so they end within 2× the horizon (they must be finite); a
// non-positive mtbf or mttr, or horizon, yields the healthy plan.
func Generate(m int, horizon core.Time, mtbf, mttr float64, rng *rand.Rand) *Plan {
	p := &Plan{M: m}
	if mtbf <= 0 || mttr <= 0 || horizon <= 0 {
		return p
	}
	for j := 0; j < m; j++ {
		t := core.Time(rng.ExpFloat64() * mtbf)
		for t < horizon {
			d := core.Time(rng.ExpFloat64() * mttr)
			until := t + d
			if max := 2 * horizon; until > max {
				until = max
			}
			if until > t {
				p.Outages = append(p.Outages, Outage{Server: j, From: t, Until: until})
			}
			t = until + core.Time(rng.ExpFloat64()*mtbf)
		}
	}
	return p.Normalize()
}
