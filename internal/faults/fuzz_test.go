package faults

import (
	"bytes"
	"math"
	"testing"
)

// FuzzReadPlanJSON checks that arbitrary input never panics the decoder
// and that every plan it accepts validates, normalizes without losing
// downtime, and round-trips through WriteJSON (the dump/replay path of
// cmd/flowsim).
func FuzzReadPlanJSON(f *testing.F) {
	f.Add([]byte(`{"m":3,"outages":[{"server":0,"from":1,"until":2}]}`))
	f.Add([]byte(`{"m":1}`))
	f.Add([]byte(`{"m":2,"outages":[{"server":1,"from":0,"until":1},{"server":1,"from":0.5,"until":3}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"m":-4,"outages":[]}`))
	f.Add([]byte(`{"m":3,"outages":[{"server":2,"from":1e300,"until":1e301}]}`))
	f.Add([]byte(`{"m":3,"slowdowns":[{"server":0,"from":1,"until":2,"factor":4}]}`))
	f.Add([]byte(`{"m":2,"slowdowns":[{"server":1,"from":0,"until":5,"factor":1}]}`))
	f.Add([]byte(`{"m":2,"outages":[{"server":0,"from":1,"until":2}],"slowdowns":[{"server":1,"from":0,"until":3,"factor":0.5},{"server":1,"from":3,"until":6,"factor":8}]}`))
	f.Add([]byte(`{"m":2,"slowdowns":[{"server":0,"from":0,"until":10,"factor":2},{"server":0,"from":5,"until":15,"factor":3}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPlanJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("accepted plan fails validation: %v", verr)
		}
		n := p.Normalize()
		if nerr := n.Validate(); nerr != nil {
			t.Fatalf("normalized plan fails validation: %v", nerr)
		}
		if len(n.Outages) > len(p.Outages) {
			t.Fatalf("normalization grew the plan: %d -> %d", len(p.Outages), len(n.Outages))
		}
		if len(n.Slowdowns) > len(p.Slowdowns) {
			t.Fatalf("normalization grew the slowdowns: %d -> %d", len(p.Slowdowns), len(n.Slowdowns))
		}
		if p.M <= 1<<12 {
			for j, segs := range n.ServerSlowdowns() {
				for i, s := range segs {
					if s.Server != j || s.Factor == 1 {
						t.Fatalf("server %d effective segment %d wrong: %+v", j, i, s)
					}
					if i > 0 && s.From < segs[i-1].Until {
						t.Fatalf("server %d normalized segments overlap: %+v then %+v", j, segs[i-1], s)
					}
				}
				end := FinishTime(segs, 0, 1)
				if math.IsNaN(end) || end <= 0 {
					t.Fatalf("server %d: FinishTime(_, 0, 1) = %v", j, end)
				}
			}
		}
		if p.M <= 1<<12 { // Downtime allocates per server; skip absurd m
			horizon := p.End()
			pd, nd := p.Downtime(horizon), n.Downtime(horizon)
			for j := range pd {
				if diff := pd[j] - nd[j]; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("normalization changed server %d downtime: %v vs %v", j, pd[j], nd[j])
				}
			}
		}
		var buf bytes.Buffer
		if werr := p.WriteJSON(&buf); werr != nil {
			t.Fatalf("re-encoding accepted plan: %v", werr)
		}
		back, rerr := ReadPlanJSON(&buf)
		if rerr != nil {
			t.Fatalf("round trip rejected: %v", rerr)
		}
		if back.M != p.M || len(back.Outages) != len(p.Outages) || len(back.Slowdowns) != len(p.Slowdowns) {
			t.Fatalf("round trip changed shape")
		}
	})
}
