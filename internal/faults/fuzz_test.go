package faults

import (
	"bytes"
	"testing"
)

// FuzzReadPlanJSON checks that arbitrary input never panics the decoder
// and that every plan it accepts validates, normalizes without losing
// downtime, and round-trips through WriteJSON (the dump/replay path of
// cmd/flowsim).
func FuzzReadPlanJSON(f *testing.F) {
	f.Add([]byte(`{"m":3,"outages":[{"server":0,"from":1,"until":2}]}`))
	f.Add([]byte(`{"m":1}`))
	f.Add([]byte(`{"m":2,"outages":[{"server":1,"from":0,"until":1},{"server":1,"from":0.5,"until":3}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"m":-4,"outages":[]}`))
	f.Add([]byte(`{"m":3,"outages":[{"server":2,"from":1e300,"until":1e301}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadPlanJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("accepted plan fails validation: %v", verr)
		}
		n := p.Normalize()
		if nerr := n.Validate(); nerr != nil {
			t.Fatalf("normalized plan fails validation: %v", nerr)
		}
		if len(n.Outages) > len(p.Outages) {
			t.Fatalf("normalization grew the plan: %d -> %d", len(p.Outages), len(n.Outages))
		}
		if p.M <= 1<<12 { // Downtime allocates per server; skip absurd m
			horizon := p.End()
			pd, nd := p.Downtime(horizon), n.Downtime(horizon)
			for j := range pd {
				if diff := pd[j] - nd[j]; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("normalization changed server %d downtime: %v vs %v", j, pd[j], nd[j])
				}
			}
		}
		var buf bytes.Buffer
		if werr := p.WriteJSON(&buf); werr != nil {
			t.Fatalf("re-encoding accepted plan: %v", werr)
		}
		back, rerr := ReadPlanJSON(&buf)
		if rerr != nil {
			t.Fatalf("round trip rejected: %v", rerr)
		}
		if back.M != p.M || len(back.Outages) != len(p.Outages) {
			t.Fatalf("round trip changed shape")
		}
	})
}
