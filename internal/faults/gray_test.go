package faults

import (
	"bytes"
	"math/rand"
	"testing"

	"flowsched/internal/core"
)

func TestSlowdownValidate(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		ok   bool
	}{
		{"single", Empty(3).Slow(0, 10, 20, 4), true},
		{"factor one", Empty(3).Slow(0, 10, 20, 1), true},
		{"speedup", Empty(3).Slow(0, 10, 20, 0.5), true},
		{"overlap same factor", Empty(3).Slow(1, 0, 10, 2).Slow(1, 5, 15, 2), true},
		{"overlap different factor", Empty(3).Slow(1, 0, 10, 2).Slow(1, 5, 15, 3), false},
		{"touching different factor", Empty(3).Slow(1, 0, 10, 2).Slow(1, 10, 15, 3), true},
		{"overlap different servers", Empty(3).Slow(0, 0, 10, 2).Slow(1, 5, 15, 3), true},
		{"server out of range", Empty(3).Slow(3, 0, 1, 2), false},
		{"negative server", Empty(3).Slow(-1, 0, 1, 2), false},
		{"negative from", Empty(3).Slow(0, -1, 1, 2), false},
		{"until before from", Empty(3).Slow(0, 5, 5, 2), false},
		{"infinite until", Empty(3).Slow(0, 0, inf(), 2), false},
		{"zero factor", Empty(3).Slow(0, 0, 1, 0), false},
		{"negative factor", Empty(3).Slow(0, 0, 1, -2), false},
		{"infinite factor", Empty(3).Slow(0, 0, 1, inf()), false},
	}
	for _, c := range cases {
		if err := c.plan.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestSlowdownNormalize(t *testing.T) {
	p := Empty(4).
		Slow(2, 10, 20, 2).Slow(2, 20, 30, 2). // touching, equal factor: merge
		Slow(2, 40, 50, 3).                    // separate
		Slow(1, 0, 5, 1).                      // no-op: dropped
		Slow(0, 5, 8, 4)
	n := p.Normalize()
	want := []Slowdown{{0, 5, 8, 4}, {2, 10, 30, 2}, {2, 40, 50, 3}}
	if len(n.Slowdowns) != len(want) {
		t.Fatalf("normalized to %v, want %v", n.Slowdowns, want)
	}
	for i, s := range n.Slowdowns {
		if s != want[i] {
			t.Fatalf("normalized to %v, want %v", n.Slowdowns, want)
		}
	}
	if len(p.Slowdowns) != 5 {
		t.Fatal("Normalize modified its receiver")
	}
	// A plan with only no-op slowdowns normalizes to healthy.
	if n := Empty(2).Slow(0, 0, 10, 1).Normalize(); !n.IsEmpty() {
		t.Fatalf("all-factor-1 plan should normalize to empty, got %+v", n)
	}
}

func TestSlowdownAt(t *testing.T) {
	p := Empty(3).Slow(1, 10, 20, 4)
	for _, c := range []struct {
		j    int
		t    core.Time
		want float64
	}{
		{1, 9.9, 1}, {1, 10, 4}, {1, 19.9, 4}, {1, 20, 1}, {0, 15, 1},
	} {
		if got := p.SlowdownAt(c.j, c.t); got != c.want {
			t.Errorf("SlowdownAt(%d, %v) = %v, want %v", c.j, c.t, got, c.want)
		}
	}
}

func TestServerSlowdowns(t *testing.T) {
	p := Empty(3).Slow(1, 30, 40, 3).Slow(1, 0, 10, 2).Slow(2, 5, 6, 1)
	segs := p.ServerSlowdowns()
	if len(segs) != 3 {
		t.Fatalf("want one slice per server, got %d", len(segs))
	}
	if len(segs[0]) != 0 || len(segs[2]) != 0 {
		t.Errorf("servers 0/2 should have no effective slowdowns: %v", segs)
	}
	want := []Slowdown{{1, 0, 10, 2}, {1, 30, 40, 3}}
	if len(segs[1]) != 2 || segs[1][0] != want[0] || segs[1][1] != want[1] {
		t.Errorf("server 1 segments = %v, want %v", segs[1], want)
	}
}

func TestFinishTime(t *testing.T) {
	seg := func(from, until core.Time, f float64) Slowdown {
		return Slowdown{Server: 0, From: from, Until: until, Factor: f}
	}
	cases := []struct {
		name  string
		segs  []Slowdown
		start core.Time
		proc  core.Time
		want  core.Time
	}{
		{"no segments", nil, 3, 4, 7},
		{"ends before segment", []Slowdown{seg(10, 20, 2)}, 0, 5, 5},
		{"ends exactly at segment start", []Slowdown{seg(10, 20, 2)}, 0, 10, 10},
		{"crosses into segment", []Slowdown{seg(10, 20, 2)}, 0, 12, 14},
		{"crosses whole segment", []Slowdown{seg(10, 20, 2)}, 0, 20, 25},
		{"starts inside segment", []Slowdown{seg(10, 20, 2)}, 12, 3, 18},
		{"fills segment exactly", []Slowdown{seg(10, 20, 2)}, 10, 5, 20},
		{"starts after segment", []Slowdown{seg(10, 20, 2)}, 20, 5, 25},
		{"speedup", []Slowdown{seg(0, 10, 0.5)}, 0, 4, 2},
		{"two segments", []Slowdown{seg(10, 20, 2), seg(30, 40, 4)}, 0, 25,
			// [0,10): 10 units; [10,20): 5 units; [20,30): 10 units — done at t=30
			// except 10+5+10 = 25 exactly at 30.
			30},
		{"spans two segments", []Slowdown{seg(10, 20, 2), seg(30, 40, 4)}, 0, 27,
			// 25 units consumed by t=30 (as above); 2 remain at factor 4 → 8 wall.
			38},
	}
	for _, c := range cases {
		if got := FinishTime(c.segs, c.start, c.proc); got != c.want {
			t.Errorf("%s: FinishTime = %v, want %v", c.name, got, c.want)
		}
	}
}

// FinishTime with no segments must be the exact healthy arithmetic, bit for
// bit: byte-identical replay of all-factor-1 plans depends on never splitting
// start + proc.
func TestFinishTimeExactHealthyArithmetic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		start := core.Time(rng.Float64() * 1e3)
		proc := core.Time(rng.Float64() * 10)
		if got := FinishTime(nil, start, proc); got != start+proc {
			t.Fatalf("FinishTime(nil, %v, %v) = %v, want exactly %v", start, proc, got, start+proc)
		}
	}
}

func TestGenerateGray(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := GrayConfig{MTBF: 100, MTTR: 20}
	p := GenerateGray(10, 1000, cfg, rng)
	if err := p.Validate(); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	if len(p.Slowdowns) == 0 {
		t.Fatal("mtbf=100 over horizon 1000 on 10 servers should produce slowdowns")
	}
	if len(p.Outages) != 0 {
		t.Fatal("gray plan should have no crash outages")
	}
	for _, s := range p.Slowdowns {
		if s.From >= 1000 {
			t.Errorf("slowdown starts beyond horizon: %+v", s)
		}
		if s.Until > 2000 {
			t.Errorf("slowdown ends beyond 2x horizon: %+v", s)
		}
		if s.Factor < 2 || s.Factor > 8 {
			t.Errorf("default factor outside [2,8]: %+v", s)
		}
	}
	// Explicit factor range, clamped to ≥ 1.
	q := GenerateGray(5, 500, GrayConfig{MTBF: 50, MTTR: 10, MinFactor: 0.25, MaxFactor: 3}, rng)
	for _, s := range q.Slowdowns {
		if s.Factor < 1 || s.Factor > 3 {
			t.Errorf("clamped factor outside [1,3]: %+v", s)
		}
	}
	// Degenerate parameters give the healthy plan.
	if !GenerateGray(10, 1000, GrayConfig{MTBF: 0, MTTR: 20}, rng).IsEmpty() {
		t.Error("degenerate GenerateGray should be empty")
	}
	// Same seed, same plan.
	a := GenerateGray(5, 500, cfg, rand.New(rand.NewSource(3)))
	b := GenerateGray(5, 500, cfg, rand.New(rand.NewSource(3)))
	if len(a.Slowdowns) != len(b.Slowdowns) {
		t.Fatal("same seed produced different plans")
	}
	for i := range a.Slowdowns {
		if a.Slowdowns[i] != b.Slowdowns[i] {
			t.Fatal("same seed produced different plans")
		}
	}
}

func TestGenerateCorrelated(t *testing.T) {
	const m = 8
	cfg := CorrelatedConfig{Zones: 2, MTBF: 100, MTTR: 20}
	p := GenerateCorrelated(m, 1000, cfg, rand.New(rand.NewSource(7)))
	if err := p.Validate(); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	if len(p.Outages) == 0 {
		t.Fatal("two zones over horizon 1000 should produce outages")
	}
	// ZoneSize defaults to ⌈m/Zones⌉ = 4, so the zones tile the ring:
	// {0..3} and {4..7}. Outages sharing (From, Until) come from a single
	// zone event and must all live inside one zone.
	zones := make([]map[int]bool, cfg.Zones)
	for z := range zones {
		zones[z] = map[int]bool{}
		for _, j := range core.MustRingInterval(z*m/cfg.Zones, 4, m) {
			zones[z][j] = true
		}
	}
	type window struct{ from, until core.Time }
	groups := make(map[window][]int)
	for _, o := range p.Outages {
		w := window{o.From, o.Until}
		groups[w] = append(groups[w], o.Server)
	}
	for w, servers := range groups {
		ok := false
		for _, zone := range zones {
			inside := true
			for _, j := range servers {
				if !zone[j] {
					inside = false
					break
				}
			}
			if inside {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("outage window %+v spans servers %v outside any single zone", w, servers)
		}
	}
	// Same seed, same plan.
	a := GenerateCorrelated(m, 500, cfg, rand.New(rand.NewSource(3)))
	b := GenerateCorrelated(m, 500, cfg, rand.New(rand.NewSource(3)))
	if len(a.Outages) != len(b.Outages) {
		t.Fatal("same seed produced different plans")
	}
	for i := range a.Outages {
		if a.Outages[i] != b.Outages[i] {
			t.Fatal("same seed produced different plans")
		}
	}
	// Degenerate parameters give the healthy plan.
	if !GenerateCorrelated(m, 1000, CorrelatedConfig{Zones: 0, MTBF: 100, MTTR: 20}, rand.New(rand.NewSource(1))).IsEmpty() {
		t.Error("degenerate GenerateCorrelated should be empty")
	}
}

func TestGenerateCorrelatedWrapsRing(t *testing.T) {
	// m=5, 5 zones of size 2: zone 4 is the wrap-around interval {4, 0}.
	cfg := CorrelatedConfig{Zones: 5, ZoneSize: 2, MTBF: 10, MTTR: 50}
	p := GenerateCorrelated(5, 200, cfg, rand.New(rand.NewSource(9)))
	if err := p.Validate(); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
	seen := map[int]bool{}
	for _, o := range p.Outages {
		seen[o.Server] = true
	}
	for j := 0; j < 5; j++ {
		if !seen[j] {
			t.Fatalf("with mttr >> mtbf every server should fail at least once; missing %d (got %v)", j, seen)
		}
	}
}

func TestMerge(t *testing.T) {
	crash := Empty(4).Down(0, 10, 20)
	gray := Empty(4).Slow(2, 5, 15, 3)
	mixed := crash.Merge(gray)
	if len(mixed.Outages) != 1 || len(mixed.Slowdowns) != 1 {
		t.Fatalf("merge lost segments: %+v", mixed)
	}
	// Merge must not alias either input.
	mixed.Outages[0].Server = 3
	mixed.Slowdowns[0].Server = 3
	if crash.Outages[0].Server != 0 || gray.Slowdowns[0].Server != 2 {
		t.Fatal("Merge shares storage with its inputs")
	}
	if got := crash.Merge(nil); len(got.Outages) != 1 || len(got.Slowdowns) != 0 {
		t.Fatalf("Merge(nil) should clone: %+v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("merging plans with different m should panic")
		}
	}()
	crash.Merge(Empty(5))
}

func TestCloneAndEndWithSlowdowns(t *testing.T) {
	p := Empty(3).Down(0, 1, 2).Slow(1, 5, 30, 4)
	if got := p.End(); got != 30 {
		t.Errorf("End = %v, want 30 (last slowdown recovery)", got)
	}
	q := p.Clone()
	q.Slowdowns[0].Factor = 9
	if p.Slowdowns[0].Factor != 4 {
		t.Fatal("Clone shares slowdown storage")
	}
}

func TestSlowdownJSONRoundTrip(t *testing.T) {
	p := Empty(5).Down(0, 1.5, 2.25).Slow(3, 10, 20, 4.5).Slow(4, 0, 1, 0.5)
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlanJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.M != p.M || len(back.Outages) != len(p.Outages) || len(back.Slowdowns) != len(p.Slowdowns) {
		t.Fatalf("round trip changed shape: %+v", back)
	}
	for i := range p.Slowdowns {
		if back.Slowdowns[i] != p.Slowdowns[i] {
			t.Fatalf("slowdown %d changed: %+v vs %+v", i, back.Slowdowns[i], p.Slowdowns[i])
		}
	}
	// A crash-only plan must not grow a slowdowns key (schema compatibility
	// with pre-gray-failure dumps).
	buf.Reset()
	if err := Empty(2).Down(0, 1, 2).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("slowdowns")) {
		t.Fatalf("crash-only plan serialized a slowdowns key: %s", buf.String())
	}
	// Overlapping different-factor slowdowns are rejected on read.
	bad := `{"m":2,"slowdowns":[{"server":0,"from":0,"until":10,"factor":2},{"server":0,"from":5,"until":15,"factor":3}]}`
	if _, err := ReadPlanJSON(bytes.NewReader([]byte(bad))); err == nil {
		t.Fatal("accepted overlapping different-factor slowdowns")
	}
}
