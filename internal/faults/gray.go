package faults

import (
	"math/rand"
	"sort"

	"flowsched/internal/core"
)

// This file extends the binary up/down fault model with the two failure
// shapes that dominate real key-value store incidents (DeCandia et al.,
// SOSP 2007): gray failures — a server that keeps serving but slowly — and
// correlated zone outages that take down a ring-contiguous interval of
// machines at once, exactly the I_k(u) intervals the overlapping
// replication strategy maps to processing sets.

// Slowdown marks server Server as degraded on [From, Until): work on it
// advances at rate 1/Factor, so one unit of processing takes Factor
// wall-clock units inside the window (a gray failure when Factor > 1).
// Factor == 1 is a no-op segment; Factor < 1 models a transient speedup.
type Slowdown struct {
	Server int       `json:"server"`
	From   core.Time `json:"from"`
	Until  core.Time `json:"until"`
	Factor float64   `json:"factor"`
}

// Duration returns Until - From.
func (s Slowdown) Duration() core.Time { return s.Until - s.From }

// Slow appends a degradation segment for server on [from, until) with the
// given speed factor and returns the plan for chaining.
func (p *Plan) Slow(server int, from, until core.Time, factor float64) *Plan {
	p.Slowdowns = append(p.Slowdowns, Slowdown{Server: server, From: from, Until: until, Factor: factor})
	return p
}

// SlowdownAt returns the speed factor of server j at instant t (From
// inclusive, Until exclusive); 1 when the server is at full speed.
func (p *Plan) SlowdownAt(j int, t core.Time) float64 {
	for _, s := range p.Slowdowns {
		if s.Server == j && t >= s.From && t < s.Until {
			return s.Factor
		}
	}
	return 1
}

// ServerSlowdowns returns, for each server, its effective slowdown segments
// sorted by start time, with no-op Factor == 1 segments dropped. The
// simulator and the auditor both derive completion times from this view, so
// they cannot disagree.
func (p *Plan) ServerSlowdowns() [][]Slowdown {
	out := make([][]Slowdown, p.M)
	if len(p.Slowdowns) == 0 {
		return out
	}
	for _, s := range p.normalizedSlowdowns() {
		out[s.Server] = append(out[s.Server], s)
	}
	return out
}

// normalizedSlowdowns returns the plan's slowdowns sorted by (From, Server)
// with Factor == 1 no-ops dropped and touching equal-factor segments of the
// same server merged. Overlapping same-server segments with different
// factors are rejected by Validate; here they are left as-is.
func (p *Plan) normalizedSlowdowns() []Slowdown {
	if len(p.Slowdowns) == 0 {
		return nil
	}
	perServer := make(map[int][]Slowdown)
	for _, s := range p.Slowdowns {
		if s.Factor == 1 {
			continue
		}
		perServer[s.Server] = append(perServer[s.Server], s)
	}
	var out []Slowdown
	for j, ss := range perServer {
		sort.Slice(ss, func(a, b int) bool { return ss[a].From < ss[b].From })
		merged := []Slowdown{ss[0]}
		for _, s := range ss[1:] {
			last := &merged[len(merged)-1]
			if s.From <= last.Until && s.Factor == last.Factor {
				if s.Until > last.Until {
					last.Until = s.Until
				}
			} else {
				merged = append(merged, s)
			}
		}
		for i := range merged {
			merged[i].Server = j
		}
		out = append(out, merged...)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].From != out[b].From {
			return out[a].From < out[b].From
		}
		return out[a].Server < out[b].Server
	})
	return out
}

// FinishTime returns the completion instant of proc units of work started at
// start on a server with the given slowdown segments (as produced by
// ServerSlowdowns: sorted by From, non-overlapping, Factor != 1): work
// advances at rate 1/Factor inside a segment and at rate 1 outside. With no
// segments the result is exactly start + proc, bit for bit — the healthy
// arithmetic is never split, which is what keeps all-factors-1.0 plans
// byte-identical to plain runs.
func FinishTime(segs []Slowdown, start, proc core.Time) core.Time {
	if len(segs) == 0 {
		return start + proc
	}
	t, w := start, proc
	for _, s := range segs {
		if s.Until <= t {
			continue
		}
		if t < s.From {
			// Full-speed gap before the segment.
			if t+w <= s.From {
				return t + w
			}
			w -= s.From - t
			t = s.From
		}
		span := s.Until - t
		need := w * core.Time(s.Factor)
		if need <= span {
			return t + need
		}
		w -= span / core.Time(s.Factor)
		t = s.Until
	}
	return t + w
}

// CorrelatedConfig parameterizes GenerateCorrelated.
type CorrelatedConfig struct {
	// Zones is the number of failure domains covering the machine ring
	// (racks / availability zones). Zone z starts at machine ⌊z·m/Zones⌋.
	Zones int
	// ZoneSize is the number of ring-contiguous machines a zone outage
	// takes down at once; 0 defaults to ⌈m/Zones⌉ (zones tile the ring).
	ZoneSize int
	// MTBF is the mean up time between outages of one zone; MTTR the mean
	// outage duration (both exponential, a per-zone renewal process).
	MTBF, MTTR float64
}

// GenerateCorrelated draws correlated zone outages over the horizon
// [0, horizon): each zone is the ring-contiguous interval I_ZoneSize(start)
// of core.RingInterval — the same intervals the overlapping replication
// strategy uses as processing sets — and an outage downs every machine of
// the interval simultaneously. This is the failure shape binary per-server
// plans cannot express: it can eclipse an entire processing set at once.
// Non-positive MTBF, MTTR, horizon or Zones yields the healthy plan.
func GenerateCorrelated(m int, horizon core.Time, cfg CorrelatedConfig, rng *rand.Rand) *Plan {
	p := &Plan{M: m}
	if m < 1 || cfg.Zones < 1 || cfg.MTBF <= 0 || cfg.MTTR <= 0 || horizon <= 0 {
		return p
	}
	size := cfg.ZoneSize
	if size <= 0 {
		size = (m + cfg.Zones - 1) / cfg.Zones
	}
	if size > m {
		size = m
	}
	for z := 0; z < cfg.Zones; z++ {
		// size is clamped to [1, m] above, so the interval is always valid.
		zone := core.MustRingInterval(z*m/cfg.Zones, size, m)
		t := core.Time(rng.ExpFloat64() * cfg.MTBF)
		for t < horizon {
			d := core.Time(rng.ExpFloat64() * cfg.MTTR)
			until := t + d
			if max := 2 * horizon; until > max {
				until = max
			}
			if until > t {
				for _, j := range zone {
					p.Outages = append(p.Outages, Outage{Server: j, From: t, Until: until})
				}
			}
			t = until + core.Time(rng.ExpFloat64()*cfg.MTBF)
		}
	}
	return p.Normalize()
}

// GrayConfig parameterizes GenerateGray.
type GrayConfig struct {
	// MTBF is the mean healthy time between degradations of one server;
	// MTTR the mean degradation duration (both exponential).
	MTBF, MTTR float64
	// MinFactor/MaxFactor bound the slowdown factor, drawn uniformly per
	// segment. Zero values default to [2, 8]; factors are clamped to ≥ 1.
	MinFactor, MaxFactor float64
}

// GenerateGray draws gray failures from a per-server renewal process over
// [0, horizon): servers alternate exponentially distributed healthy periods
// (mean MTBF) and degraded periods (mean MTTR) during which they process at
// 1/Factor speed. Non-positive MTBF, MTTR or horizon yields the healthy
// plan.
func GenerateGray(m int, horizon core.Time, cfg GrayConfig, rng *rand.Rand) *Plan {
	p := &Plan{M: m}
	if cfg.MTBF <= 0 || cfg.MTTR <= 0 || horizon <= 0 {
		return p
	}
	lo, hi := cfg.MinFactor, cfg.MaxFactor
	if lo <= 0 {
		lo = 2
	}
	if hi <= 0 {
		hi = 8
	}
	if hi < lo {
		lo, hi = hi, lo
	}
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	for j := 0; j < m; j++ {
		t := core.Time(rng.ExpFloat64() * cfg.MTBF)
		for t < horizon {
			d := core.Time(rng.ExpFloat64() * cfg.MTTR)
			until := t + d
			if max := 2 * horizon; until > max {
				until = max
			}
			if until > t {
				f := lo + rng.Float64()*(hi-lo)
				p.Slowdowns = append(p.Slowdowns, Slowdown{Server: j, From: t, Until: until, Factor: f})
			}
			t = until + core.Time(rng.ExpFloat64()*cfg.MTBF)
		}
	}
	return p.Normalize()
}

// Merge returns a new plan combining the outages and slowdowns of p and q
// (both for the same cluster size; Merge panics otherwise). Used to compose
// crash and gray failure plans into one mixed scenario.
func (p *Plan) Merge(q *Plan) *Plan {
	if q == nil {
		return p.Clone()
	}
	if p.M != q.M {
		panic("faults: merging plans for different cluster sizes")
	}
	out := p.Clone()
	out.Outages = append(out.Outages, q.Outages...)
	out.Slowdowns = append(out.Slowdowns, q.Slowdowns...)
	return out
}
