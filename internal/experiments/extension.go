package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"flowsched/internal/loadlp"
	"flowsched/internal/popularity"
	"flowsched/internal/replicate"
	"flowsched/internal/sched"
	"flowsched/internal/sim"
	"flowsched/internal/stats"
	"flowsched/internal/table"
	"flowsched/internal/workload"
)

// ExtensionConfig controls the replication-strategy ablation around the
// paper's open question (Section 8): is there a strategy with both good
// practical behavior and worst-case guarantees?
type ExtensionConfig struct {
	M, K  int
	N     int
	Reps  int
	SBias float64
	Load  float64 // average load fraction for the simulation column
	Seed  int64
}

// DefaultExtension returns the default ablation configuration.
func DefaultExtension() ExtensionConfig {
	return ExtensionConfig{M: 15, K: 3, N: 10000, Reps: 10, SBias: 1, Load: 0.6, Seed: 1}
}

// ExtensionRow summarizes one strategy in the ablation.
type ExtensionRow struct {
	Strategy    string
	MaxLoadPct  float64 // median theoretical max load (Shuffled case)
	FmaxEFT     float64 // median simulated Fmax under EFT-Min at cfg.Load
	FmaxJSQ     float64 // same under the non-clairvoyant JSQ router
	WorstGuided string  // the known worst-case guarantee for EFT
}

// ExtensionStrategies compares the paper's two strategies with the
// extensions (random-k sets and offset-disjoint blocks) on both axes of the
// paper's trade-off: the theoretical max load (Figure 10 axis) and the
// simulated Fmax under load (Figure 11 axis), for the clairvoyant EFT-Min
// router and the non-clairvoyant JSQ router.
func ExtensionStrategies(w io.Writer, cfg ExtensionConfig) ([]ExtensionRow, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	mk := func(name string) replicate.Strategy {
		switch name {
		case "overlapping":
			return replicate.Overlapping{K: cfg.K}
		case "disjoint":
			return replicate.Disjoint{K: cfg.K}
		case "offset-disjoint":
			return replicate.OffsetDisjoint{K: cfg.K, Offset: cfg.K / 2}
		case "random-k":
			return replicate.NewRandomK(cfg.K, rand.New(rand.NewSource(cfg.Seed+7)))
		}
		panic("unknown strategy " + name)
	}
	guarantees := map[string]string{
		"overlapping":     fmt.Sprintf(">= m-k+1 = %d (Th. 8-10)", cfg.M-cfg.K+1),
		"disjoint":        fmt.Sprintf("3-2/k = %.2f (Cor. 1)", 3-2/float64(cfg.K)),
		"offset-disjoint": fmt.Sprintf("3-2/k = %.2f (Cor. 1, disjoint family)", 3-2/float64(cfg.K)),
		"random-k":        ">= Ω(m) (Anand et al., unstructured)",
	}

	var rows []ExtensionRow
	for _, name := range []string{"overlapping", "disjoint", "offset-disjoint", "random-k"} {
		// Median theoretical max load over permutations (Shuffled case).
		loads := make([]float64, 0, 50)
		for p := 0; p < 50; p++ {
			wts := popularity.Weights(popularity.Shuffled, cfg.M, cfg.SBias, rng)
			mo := loadlp.NewModel(wts, mk(name))
			loads = append(loads, mo.MaxLoadPercent(mo.MaxLoadHall()))
		}

		// Simulated Fmax at cfg.Load.
		var eftF, jsqF []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			wts := popularity.Weights(popularity.Shuffled, cfg.M, cfg.SBias, rng)
			inst, err := workload.Generate(workload.Config{
				M: cfg.M, N: cfg.N, Rate: workload.RateForLoad(cfg.Load, cfg.M),
				Weights: wts, Strategy: mk(name),
			}, rand.New(rand.NewSource(rng.Int63())))
			if err != nil {
				return nil, err
			}
			_, me, err := sim.Run(inst, sim.EFTRouter{Tie: sched.MinTie{}})
			if err != nil {
				return nil, err
			}
			_, mj, err := sim.Run(inst, sim.JSQRouter{})
			if err != nil {
				return nil, err
			}
			eftF = append(eftF, float64(me.MaxFlow()))
			jsqF = append(jsqF, float64(mj.MaxFlow()))
		}
		rows = append(rows, ExtensionRow{
			Strategy:    name,
			MaxLoadPct:  stats.Median(loads),
			FmaxEFT:     stats.Median(eftF),
			FmaxJSQ:     stats.Median(jsqF),
			WorstGuided: guarantees[name],
		})
	}

	fmt.Fprintf(w, "Extension — replication strategy ablation (m=%d, k=%d, Shuffled s=%v, load %.0f%%):\n",
		cfg.M, cfg.K, cfg.SBias, cfg.Load*100)
	out := table.New("strategy", "max load % (median)", "Fmax EFT-Min", "Fmax JSQ", "EFT worst-case guarantee")
	for _, r := range rows {
		out.AddRow(r.Strategy, r.MaxLoadPct, r.FmaxEFT, r.FmaxJSQ, r.WorstGuided)
	}
	out.Render(w)
	fmt.Fprintln(w, "\nThe open question of Section 8: no row has both the overlapping max-load column and the disjoint guarantee column.")
	return rows, nil
}
