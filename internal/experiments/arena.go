package experiments

import (
	"sync"

	"flowsched/internal/sim"
)

// arenas recycles sim run arenas across the repetition loops of the faulty,
// guarded and elastic experiments. The parallel.MapErr fan-outs expose no
// worker identity, so a sync.Pool gives each in-flight repetition a private
// arena; every repetition reduces its run's schedule/metrics to plain floats
// before returning, so nothing escapes into the pooled arena's next run.
var arenas = sync.Pool{New: func() any { return sim.NewArena() }}
