package experiments

import (
	"strings"
	"testing"
)

// TestMetastableHeadline pins the resilience experiment's headline: after
// the flapping outage heals, plain deterministic backoff keeps the admitted
// p99 of post-heal releases blown up — at least 5× the protected stack's —
// while jitter + retry budget + breakers recover to within 2× the pre-fault
// p99. The gray cell pins the breakers' slow-completion tripwire ejecting
// the gray server faster than the EWMA outlier ejector.
func TestMetastableHeadline(t *testing.T) {
	cfg := DefaultMetastable() // full 3-rep medians: the whole cell runs in ~0.1s
	var b strings.Builder
	res, err := Metastable(&b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Storm) != 2 || len(res.Gray) != 2 {
		t.Fatalf("rows = %d storm / %d gray, want 2/2", len(res.Storm), len(res.Gray))
	}
	plain, prot := res.Storm[0], res.Storm[1]
	if plain.Policy != "plain-backoff" || prot.Policy != "protected" {
		t.Fatalf("row order %q, %q", plain.Policy, prot.Policy)
	}

	// The metastable signature: the fault is gone, plain p99 is not.
	if plain.PostP99 < 5*prot.PostP99 {
		t.Errorf("post-heal p99 %.2f unprotected vs %.2f protected: not the ≥5× metastable gap",
			plain.PostP99, prot.PostP99)
	}
	if prot.PostP99 > 2*prot.PreP99 {
		t.Errorf("protected post-heal p99 %.2f did not recover to within 2× pre-fault %.2f",
			prot.PostP99, prot.PreP99)
	}

	// The protections actually engaged — and only on the protected run.
	if prot.RetriesDrop == 0 || prot.BreakerOpens == 0 {
		t.Errorf("protections idle: %v budget drops, %v breaker opens",
			prot.RetriesDrop, prot.BreakerOpens)
	}
	if plain.RetriesDrop != 0 || plain.BreakerOpens != 0 {
		t.Errorf("plain run used protections: %v drops, %v opens",
			plain.RetriesDrop, plain.BreakerOpens)
	}
	// Protection costs bounded goodput: the budget drops a slice of the
	// storm, not the workload.
	if prot.GoodputPct < 90 {
		t.Errorf("protected goodput %.2f%% collapsed", prot.GoodputPct)
	}

	// Gray cell: the breaker's outcome window fills before the ejector's
	// EWMA clears its sample floor, so the breaker ejects first.
	ej, brk := res.Gray[0], res.Gray[1]
	if ej.Policy != "ewma-ejector" || brk.Policy != "breaker" {
		t.Fatalf("gray row order %q, %q", ej.Policy, brk.Policy)
	}
	if brk.DetectLatency >= ej.DetectLatency {
		t.Errorf("breaker detected the gray server at %.2f, no faster than the ejector's %.2f",
			brk.DetectLatency, ej.DetectLatency)
	}

	if !strings.Contains(b.String(), "Metastable failure") {
		t.Errorf("output incomplete")
	}
}
