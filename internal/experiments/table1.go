// Package experiments contains one driver per table and figure of the
// paper's evaluation, shared by cmd/experiments and the benchmark harness
// (bench_test.go). Each driver prints the regenerated rows/series and
// returns the underlying data for programmatic checks.
package experiments

import (
	"fmt"
	"io"

	"flowsched/internal/core"
	"flowsched/internal/offline"
	"flowsched/internal/parallel"
	"flowsched/internal/preempt"
	"flowsched/internal/sched"
	"flowsched/internal/table"
)

// Table1Config controls the empirical verification attached to Table 1.
type Table1Config struct {
	Ms     []int // machine counts for the FIFO verification rows
	N      int   // tasks per random instance (≤ offline.MaxBruteForceTasks)
	Trials int   // random instances per machine count
	Seed   int64
	// Workers bounds the parallel fan-out over trials (0 = GOMAXPROCS).
	// Results are identical for any worker count: every trial derives its
	// randomness from (Seed, m, trial).
	Workers int
	// Progress, when set, receives completed-trial counts over the whole
	// table (all machine counts; calls are serialized).
	Progress parallel.Progress
}

// DefaultTable1 returns the default configuration.
func DefaultTable1() Table1Config {
	return Table1Config{Ms: []int{1, 2, 3, 4}, N: 9, Trials: 60, Seed: 1}
}

// Table1Row is one verified row of Table 1.
type Table1Row struct {
	M                 int
	Bound             float64 // 3 − 2/m
	WorstMeasured     float64 // max observed EFT/OPT ratio (non-preemptive OPT)
	WorstVsPreemptive float64 // max observed EFT/OPT ratio against the preemptive OPT
}

// Table1 reprints the literature table of the paper and empirically
// verifies its FIFO rows: on random unrestricted instances, the EFT (≡
// FIFO, Proposition 1) max-flow never exceeds (3 − 2/m) times the exact
// brute-force optimum.
func Table1(w io.Writer, cfg Table1Config) ([]Table1Row, error) {
	fmt.Fprintln(w, "Table 1 — existing results on max-flow optimization (literature):")
	lit := table.New("Env.", "Preemption", "Algorithm", "Type", "Ratio", "Ref.")
	lit.AddRow("P", "Non-preemptive", "FIFO", "Online", "3 - 2/m", "[11]")
	lit.AddRow("P", "Non-preemptive", "any", "Online", ">= 2 - 1/m", "[19]")
	lit.AddRow("P", "Preemptive", "FIFO", "Online", "3 - 2/m", "[12]")
	lit.AddRow("P", "Preemptive", "Ambühl et al.", "Online", "2 - 1/m", "[19]")
	lit.AddRow("P", "Preemptive", "any", "Online", ">= 2 - 1/m", "[19]")
	lit.AddRow("P|Mi", "Non-preemptive", "any", "Online", ">= Ω(m)", "[13]")
	lit.AddRow("Q", "Non-preemptive", "Double-Fit", "Online", "13.5", "[20]")
	lit.AddRow("Q", "Non-preemptive", "Slow-Fit", "Online", ">= Ω(m)", "[20]")
	lit.AddRow("Q", "Non-preemptive", "Greedy", "Online", ">= Ω(log m)", "[20]")
	lit.AddRow("R", "Non-preemptive", "Bansal et al.", "Offline", "O(log n)", "[22]")
	lit.AddRow("R", "Non-preemptive", "Bansal", "Offline PTAS", "1+eps", "[21]")
	lit.AddRow("R", "Non-preemptive", "Mastrolilli", "Offline FPTAS", "1+eps", "[12]")
	lit.AddRow("R", "Preemptive", "Legrand et al.", "Offline", "Optimal", "[18]")
	lit.Render(w)

	fmt.Fprintln(w)
	fmt.Fprintf(w, "Empirical verification of the FIFO rows (EFT ≡ FIFO by Prop. 1), %d random instances per m:\n", cfg.Trials)
	fmt.Fprintln(w, "(the preemptive column checks Mastrolilli [12]: FIFO stays within 3-2/m even of the PREEMPTIVE optimum)")
	rows := make([]Table1Row, 0, len(cfg.Ms))
	out := table.New("m", "bound 3-2/m", "worst EFT/OPT", "worst EFT/preemptive-OPT", "holds")
	// Progress counts trials across all machine-count blocks.
	trialsDone := 0
	for _, m := range cfg.Ms {
		m := m
		var report parallel.Progress
		if cfg.Progress != nil {
			base := trialsDone
			report = func(done, _ int) { cfg.Progress(base+done, len(cfg.Ms)*cfg.Trials) }
		}
		// Trials are independent brute-force solves — the slow part of this
		// table — so they fan out on the worker pool with per-trial seeds.
		type trialRatios struct{ r, rp float64 }
		ratios, err := parallel.MapErrProgress(cfg.Trials, cfg.Workers, report, func(trial int) (trialRatios, error) {
			rng := subRng(cfg.Seed, int64(m), int64(trial))
			tasks := make([]core.Task, cfg.N)
			for i := range tasks {
				tasks[i] = core.Task{
					Release: rng.Float64() * 4,
					Proc:    0.2 + rng.Float64()*2,
				}
			}
			inst := core.NewInstance(m, tasks)
			eft, err := sched.NewEFT(sched.MinTie{}).Run(inst)
			if err != nil {
				return trialRatios{}, err
			}
			opt, err := offline.BruteForce(inst)
			if err != nil {
				return trialRatios{}, err
			}
			pOpt, err := preempt.OptimalFmax(inst, 0, 0, 1e-8)
			if err != nil {
				return trialRatios{}, err
			}
			return trialRatios{
				r:  float64(eft.MaxFlow() / opt.MaxFlow()),
				rp: float64(eft.MaxFlow()) / pOpt,
			}, nil
		})
		if err != nil {
			return nil, err
		}
		worst, worstP := 0.0, 0.0
		for _, tr := range ratios {
			if tr.r > worst {
				worst = tr.r
			}
			if tr.rp > worstP {
				worstP = tr.rp
			}
		}
		bound := 3 - 2/float64(m)
		rows = append(rows, Table1Row{M: m, Bound: bound, WorstMeasured: worst, WorstVsPreemptive: worstP})
		out.AddRow(m, bound, worst, worstP, worst <= bound+1e-9 && worstP <= bound+1e-4)
		trialsDone += cfg.Trials
	}
	out.Render(w)
	return rows, nil
}
