package experiments

import (
	"fmt"
	"io"

	"flowsched/internal/adversary"
	"flowsched/internal/core"
	"flowsched/internal/sched"
	"flowsched/internal/table"
)

// The remaining figures of the paper are proof illustrations; each driver
// regenerates the illustrated phenomenon from the real construction rather
// than redrawing a static picture.

// Figure2 illustrates the Theorem 5 adversary (the paper's sketch of
// I(u_k, s_k) phases with task groups G0/G1/G2): it runs the adversary
// against EFT-Min and prints, per phase, the interval kept, the number of
// uncompleted tasks carried into the phase (|G0,k| ≥ k·s_k), and the
// released groups.
func Figure2(w io.Writer, m int) error {
	alg := sched.NewEFT(sched.MinTie{})
	res, err := adversary.Nested(alg, m)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 2 — Theorem 5 adversary phases against %s (m=%d)\n\n", alg.Name(), res.M)

	// Reconstruct phase data from the generated instance: G1 tasks are the
	// multi-machine ones, G2 are singletons; each phase starts when a new
	// multi-machine set appears.
	type phase struct {
		set         core.ProcSet
		start       core.Time
		g1, g2      int
		uncompleted int
	}
	var phases []phase
	for i, t := range res.Inst.Tasks {
		if t.Set.Len() > 1 || (t.Set.Len() == 1 && res.M == 1) {
			if len(phases) == 0 || !phases[len(phases)-1].set.Equal(t.Set) {
				phases = append(phases, phase{set: t.Set, start: t.Release})
			}
			phases[len(phases)-1].g1++
			_ = i
		} else if len(phases) > 0 {
			phases[len(phases)-1].g2++
		}
	}
	// Uncompleted tasks at each phase start, from the algorithm's schedule.
	for pi := range phases {
		cnt := 0
		for i := range res.Inst.Tasks {
			if res.Inst.Tasks[i].Release < phases[pi].start &&
				res.AlgSched.Completion(i) > phases[pi].start {
				cnt++
			}
		}
		phases[pi].uncompleted = cnt
	}

	out := table.New("phase k", "interval I(u_k,s_k)", "t_k", "|G1,k|", "|G2,k|", "uncompleted at t_k", "k·s_k (proof bound)")
	for k, ph := range phases {
		bound := k * ph.set.Len()
		out.AddRow(k, ph.set.String(), ph.start, ph.g1, ph.g2, ph.uncompleted, bound)
	}
	out.Render(w)
	fmt.Fprintf(w, "\nalgorithm Fmax = %v (≥ ⌊log2(m)+2⌋ = %v), proof's OPT Fmax = %v → ratio %v ≥ %.4g\n",
		res.AlgFmax, float64(res.TheoryRatio*3), res.OptFmax, res.Ratio, res.TheoryRatio)
	return nil
}

// Figure5and6 illustrates Lemma 2's invariant and the plateau propagation
// of Lemma 3 (the paper's Figures 5 and 6): starting strictly behind the
// stable profile, a plateau w_t(j') = w_t(j'+1) appears and moves right one
// machine per round until the last machine idles.
func Figure5and6(w io.Writer, m, k int) error {
	profiles := adversary.StreamProfiles(sched.MinTie{}, m, k, 3*m*m)
	stable := adversary.StableProfile(m, k)
	fmt.Fprintf(w, "Figures 5-6 — Lemma 2 monotonicity and Lemma 3 plateau propagation (m=%d, k=%d)\n\n", m, k)

	// Verify Lemma 2 across the whole run and find, for each time, the
	// rightmost plateau position among machines ≥ k.
	violations := 0
	plateauAt := make([]int, len(profiles))
	for t, prof := range profiles {
		for j := 0; j+1 < m; j++ {
			if prof[j+1] > prof[j] {
				violations++
			}
		}
		plateauAt[t] = -1
		for j := m - 2; j >= k-1; j-- {
			if prof[j] == prof[j+1] && prof[j] > 0 {
				plateauAt[t] = j
				break
			}
		}
	}
	fmt.Fprintf(w, "Lemma 2 (w_t non-increasing in j): %d violations across %d profiles\n\n", violations, len(profiles))

	out := table.New("t", "profile w_t (per machine)", "rightmost plateau", "behind w_τ?")
	show := []int{0, 1, 2, 3, 4, 5}
	for _, t := range show {
		if t >= len(profiles) {
			break
		}
		prof := profiles[t]
		behind := "no"
		for j := range prof {
			if prof[j] < stable[j] {
				behind = "yes"
				break
			}
		}
		pl := "-"
		if plateauAt[t] >= 0 {
			pl = fmt.Sprintf("M%d=M%d", plateauAt[t]+1, plateauAt[t]+2)
		}
		out.AddRow(t, fmt.Sprintf("%v", prof), pl, behind)
	}
	out.Render(w)
	fmt.Fprintf(w, "\nstable profile w_τ = %v\n", stable)
	return nil
}

// Figure7 illustrates the Theorem 10 construction (the paper's small-task
// padding): the first rounds of the padded stream against EFT-Max, showing
// that each machine M_j is staggered to finish its small tasks exactly at
// t + (j+1)·δ, which forces the regular tasks onto EFT-Min's trajectory.
func Figure7(w io.Writer, m, k int) error {
	res, err := adversary.EFTStreamPadded(sched.MaxTie{}, m, k, 3)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 7 — Theorem 10 small-task padding (m=%d, k=%d, δ=%g, ε=%g)\n\n",
		m, k, adversary.Delta, adversary.Epsilon)

	// Report per machine the completion of its small-task pair at t=0 in
	// units of δ, and where the regular tasks of the first rounds went.
	small := table.New("machine", "small tasks at t=0", "stagger (units of δ)")
	counts := make([]int, m)
	staggers := make([]float64, m)
	for i, t := range res.Inst.Tasks {
		if t.Proc < 1 && t.Release == 0 {
			j := res.AlgSched.Machine[i]
			counts[j]++
			if c := res.AlgSched.Completion(i); c > staggers[j] {
				staggers[j] = c
			}
		}
		_ = i
	}
	for j := 0; j < m; j++ {
		small.AddRow(fmt.Sprintf("M%d", j+1), counts[j], staggers[j]/adversary.Delta)
	}
	small.Render(w)

	full, err := adversary.EFTStreamPadded(sched.MaxTie{}, m, k, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nregular-task Fmax after the full run: %v ≥ m−k+1 = %d (any tie-break; here EFT-Max)\n",
		full.AlgFmax, m-k+1)
	fmt.Fprintf(w, "total small-task volume: %.4g (the o(1) of the proof)\n", float64(full.OptFmax-1))
	return nil
}
