package experiments

import (
	"fmt"
	"io"

	"flowsched/internal/adversary"
	"flowsched/internal/parallel"
	"flowsched/internal/popularity"
	"flowsched/internal/replicate"
	"flowsched/internal/sched"
	"flowsched/internal/sim"
	"flowsched/internal/stats"
	"flowsched/internal/table"
	"flowsched/internal/workload"
)

// RobustnessConfig controls the clairvoyance-noise study: Section 4 notes
// that EFT "implies that one must know the processing time of arriving
// tasks with precision"; this experiment measures the cost of not knowing.
type RobustnessConfig struct {
	M, K   int
	N      int
	Reps   int
	Load   float64
	SBias  float64
	Noises []float64 // relative errors on processing-time estimates
	Seed   int64
}

// DefaultRobustness returns the default noise sweep.
func DefaultRobustness() RobustnessConfig {
	return RobustnessConfig{
		M: 15, K: 3, N: 10000, Reps: 5, Load: 0.8, SBias: 1,
		Noises: []float64{0, 0.1, 0.25, 0.5, 1.0}, Seed: 1,
	}
}

// RobustnessRow is one noise level's outcome.
type RobustnessRow struct {
	RelErr         float64
	Fmax, MeanFlow float64 // medians over repetitions
}

// Robustness sweeps the processing-time estimation error of the EFT router
// on exponential (highly variable) service times, where clairvoyance
// actually matters, and reports the degradation against the JSQ and Random
// baselines at the same load.
func Robustness(w io.Writer, cfg RobustnessConfig) ([]RobustnessRow, error) {
	run := func(router func(rep int) sim.Router) ([]float64, []float64, error) {
		// Each repetition builds its own router and rng from the rep index,
		// so the parallel fan-out is byte-identical to the sequential loop.
		type repFlows struct{ fmax, mean float64 }
		reps, err := parallel.MapErr(cfg.Reps, 0, func(rep int) (repFlows, error) {
			rng := subRng(cfg.Seed, 7, int64(rep))
			weights := popularity.Weights(popularity.Shuffled, cfg.M, cfg.SBias, rng)
			inst, err := workload.Generate(workload.Config{
				M: cfg.M, N: cfg.N, Rate: workload.RateForLoad(cfg.Load, cfg.M),
				Proc: 1, Dist: workload.ProcExponential,
				Weights: weights, Strategy: replicate.Overlapping{K: cfg.K},
			}, rng)
			if err != nil {
				return repFlows{}, err
			}
			_, metrics, err := sim.Run(inst, router(rep))
			if err != nil {
				return repFlows{}, err
			}
			return repFlows{float64(metrics.MaxFlow()), float64(metrics.MeanFlow())}, nil
		})
		if err != nil {
			return nil, nil, err
		}
		fmaxes := make([]float64, len(reps))
		means := make([]float64, len(reps))
		for i, r := range reps {
			fmaxes[i] = r.fmax
			means[i] = r.mean
		}
		return fmaxes, means, nil
	}

	fmt.Fprintf(w, "Robustness — EFT under noisy processing-time estimates (m=%d, k=%d, load %.0f%%, exponential service):\n",
		cfg.M, cfg.K, cfg.Load*100)
	out := table.New("router", "rel. error", "median Fmax", "median mean flow")
	var rows []RobustnessRow
	for _, noise := range cfg.Noises {
		noise := noise
		fmaxes, means, err := run(func(rep int) sim.Router {
			return &sim.NoisyEFTRouter{
				Tie: sched.MinTie{}, RelErr: noise,
				Rng: subRng(cfg.Seed, 8, int64(rep), int64(noise*1000)),
			}
		})
		if err != nil {
			return nil, err
		}
		row := RobustnessRow{RelErr: noise, Fmax: stats.Median(fmaxes), MeanFlow: stats.Median(means)}
		rows = append(rows, row)
		out.AddRow("EFT-noisy", fmt.Sprintf("±%.0f%%", noise*100), row.Fmax, row.MeanFlow)
	}
	for _, base := range []struct {
		name string
		mk   func(rep int) sim.Router
	}{
		{"JSQ", func(rep int) sim.Router { return sim.JSQRouter{} }},
		{"Po2", func(rep int) sim.Router {
			return sim.PowerOfTwoRouter{Rng: subRng(cfg.Seed, 9, int64(rep))}
		}},
		{"Random", func(rep int) sim.Router {
			return &sim.RandomRouter{Rng: subRng(cfg.Seed, 10, int64(rep))}
		}},
	} {
		fmaxes, means, err := run(base.mk)
		if err != nil {
			return nil, err
		}
		out.AddRow(base.name, "-", stats.Median(fmaxes), stats.Median(means))
	}
	out.Render(w)
	fmt.Fprintln(w, "\nexpected shape: EFT degrades smoothly toward the non-clairvoyant baselines as the error grows;")
	fmt.Fprintln(w, "JSQ (no processing-time knowledge at all) is the natural limit, Random the floor.")
	return rows, nil
}

// ConvergenceRow records how long the Theorem 8 stream needs to drive
// EFT-Min to the stable profile w_τ for one (m, k).
type ConvergenceRow struct {
	M, K        int
	Rounds      int // first time w_t = w_τ
	PaperBound  int // m³
	FmaxReached bool
}

// Convergence measures the empirical convergence time of the Theorem 8
// adversary (the paper bounds it by m³ steps) across a grid of m and k.
func Convergence(w io.Writer, ms []int, ks []int) ([]ConvergenceRow, error) {
	var rows []ConvergenceRow
	out := table.New("m", "k", "rounds to w_τ", "paper bound m³", "Fmax = m−k+1 reached")
	for _, m := range ms {
		for _, k := range ks {
			if k <= 1 || k >= m {
				continue
			}
			steps := m * m * m
			profiles := adversary.StreamProfiles(sched.MinTie{}, m, k, steps)
			stable := adversary.StableProfile(m, k)
			conv := -1
			for t, prof := range profiles {
				eq := true
				for j := range prof {
					if prof[j] != stable[j] {
						eq = false
						break
					}
				}
				if eq {
					conv = t
					break
				}
			}
			if conv == -1 {
				return nil, fmt.Errorf("experiments: m=%d k=%d did not converge within m³", m, k)
			}
			res, err := adversary.EFTStream(sched.MinTie{}, m, k, conv+2)
			if err != nil {
				return nil, err
			}
			row := ConvergenceRow{
				M: m, K: k, Rounds: conv, PaperBound: steps,
				FmaxReached: res.AlgFmax >= float64(m-k+1),
			}
			rows = append(rows, row)
			out.AddRow(m, k, conv, steps, row.FmaxReached)
		}
	}
	fmt.Fprintln(w, "Convergence — rounds until EFT-Min's profile reaches w_τ on the Theorem 8 stream:")
	out.Render(w)
	fmt.Fprintln(w, "\nthe paper bounds convergence by m³ rounds; empirically it is far faster (roughly quadratic).")
	return rows, nil
}
