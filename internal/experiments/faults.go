package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"flowsched/internal/faults"
	"flowsched/internal/parallel"
	"flowsched/internal/popularity"
	"flowsched/internal/replicate"
	"flowsched/internal/sim"
	"flowsched/internal/stats"
	"flowsched/internal/table"
	"flowsched/internal/workload"
)

// FaultToleranceConfig controls the fault-injection sweep: the robustness
// analogue of the Figure 8–11 protocol. Replication strategies are
// compared as the failure intensity rises (MTBF falls at fixed MTTR).
type FaultToleranceConfig struct {
	M, K  int
	N     int
	Reps  int
	SBias float64
	Load  float64
	Seed  int64
	MTTR  float64         // mean repair time, in task service units
	MTBFs []float64       // mean time between failures per server; 0 = healthy
	Pol   sim.RetryPolicy // failover policy applied to every run
}

// DefaultFaultTolerance returns the default sweep: paper-sized cluster,
// MTTR of 50 service units and failure intensities from healthy to one
// crash per 250 service units per server.
func DefaultFaultTolerance() FaultToleranceConfig {
	return FaultToleranceConfig{
		M: 15, K: 3, N: 10000, Reps: 5, SBias: 1, Load: 0.6, Seed: 1,
		MTTR:  50,
		MTBFs: []float64{0, 2000, 1000, 500, 250},
		Pol:   sim.RetryPolicy{MaxAttempts: 3},
	}
}

// FaultToleranceRow is one strategy×router×intensity cell (medians over
// repetitions).
type FaultToleranceRow struct {
	Strategy     string
	Router       string
	MTBF         float64
	Availability float64
	Fmax         float64
	MeanFlow     float64
	SpikeFmax    float64
	Retries      float64 // median total failovers per run
	DropPct      float64 // median drop rate, percent
	ParkedPct    float64 // median parked rate, percent
}

// FaultTolerance sweeps failure intensity for each replication strategy
// under the clairvoyant EFT-Min router and the non-clairvoyant JSQ router.
// Replication is the paper's answer to failures; this experiment measures
// what each placement buys when failures actually happen: how max flow
// degrades, how many requests retry, park, or drop, and how big the
// post-recovery flow spike is.
func FaultTolerance(w io.Writer, cfg FaultToleranceConfig) ([]FaultToleranceRow, error) {
	if cfg.MTTR <= 0 {
		cfg.MTTR = 50
	}
	if len(cfg.MTBFs) == 0 {
		cfg.MTBFs = DefaultFaultTolerance().MTBFs
	}
	strategies := []replicate.Strategy{
		replicate.None{},
		replicate.Disjoint{K: cfg.K},
		replicate.Overlapping{K: cfg.K},
	}
	routers := []struct {
		name string
		mk   func() sim.Router
	}{
		{"EFT-Min", func() sim.Router { return sim.EFTRouter{} }},
		{"JSQ", func() sim.Router { return sim.JSQRouter{} }},
	}

	fmt.Fprintf(w, "Fault injection — replication strategies under server failures\n")
	fmt.Fprintf(w, "m=%d k=%d n=%d load=%.0f%% mttr=%v retry=%d attempts; medians over %d reps\n\n",
		cfg.M, cfg.K, cfg.N, cfg.Load*100, cfg.MTTR, cfg.Pol.MaxAttempts, cfg.Reps)

	out := table.New("strategy", "router", "MTBF", "avail %", "Fmax", "mean flow",
		"spike Fmax", "retries", "drop %", "parked %")
	var rows []FaultToleranceRow
	for si, strat := range strategies {
		for ri, rt := range routers {
			for mi, mtbf := range cfg.MTBFs {
				si, ri, mi, mtbf, strat, rt := si, ri, mi, mtbf, strat, rt
				// Repetitions are independent faulty runs; they fan out on
				// the worker pool with randomness derived from the cell and
				// repetition coordinates, so results do not depend on
				// scheduling order.
				type repStats struct {
					avail, fmax, mean, spike, retries, drop, park float64
				}
				reps, err := parallel.MapErr(cfg.Reps, 0, func(rep int) (repStats, error) {
					inst, err := workload.Generate(workload.Config{
						M: cfg.M, N: cfg.N, Rate: workload.RateForLoad(cfg.Load, cfg.M),
						Weights: shuffledWeights(cfg.M, cfg.SBias,
							subRng(cfg.Seed, 13, int64(si), int64(ri), int64(mi), int64(rep))),
						Strategy: strat,
					}, subRng(cfg.Seed, 14, int64(rep)))
					if err != nil {
						return repStats{}, err
					}
					horizon := inst.Tasks[inst.N()-1].Release
					plan := faults.Generate(cfg.M, horizon, mtbf, cfg.MTTR,
						subRng(cfg.Seed, 15, int64(mi), int64(rep)))
					arena := arenas.Get().(*sim.Arena)
					defer arenas.Put(arena)
					_, fm, err := arena.RunFaulty(inst, rt.mk(), plan, cfg.Pol)
					if err != nil {
						return repStats{}, err
					}
					return repStats{
						avail:   fm.Availability() * 100,
						fmax:    fm.MaxFlow(),
						mean:    fm.MeanFlow(),
						spike:   fm.RecoverySpikeMaxFlow(cfg.MTTR),
						retries: float64(fm.TotalRetries()),
						drop:    fm.DropRate() * 100,
						park:    float64(fm.ParkedCount()) / float64(inst.N()) * 100,
					}, nil
				})
				if err != nil {
					return nil, err
				}
				var avail, fmax, mean, spike, retries, drop, park []float64
				for _, r := range reps {
					avail = append(avail, r.avail)
					fmax = append(fmax, r.fmax)
					mean = append(mean, r.mean)
					spike = append(spike, r.spike)
					retries = append(retries, r.retries)
					drop = append(drop, r.drop)
					park = append(park, r.park)
				}
				row := FaultToleranceRow{
					Strategy:     strat.Name(),
					Router:       rt.name,
					MTBF:         mtbf,
					Availability: stats.Median(avail),
					Fmax:         stats.Median(fmax),
					MeanFlow:     stats.Median(mean),
					SpikeFmax:    stats.Median(spike),
					Retries:      stats.Median(retries),
					DropPct:      stats.Median(drop),
					ParkedPct:    stats.Median(park),
				}
				rows = append(rows, row)
				mtbfLabel := "∞ (healthy)"
				if mtbf > 0 {
					mtbfLabel = fmt.Sprintf("%.0f", mtbf)
				}
				out.AddRow(row.Strategy, row.Router, mtbfLabel,
					fmt.Sprintf("%.2f", row.Availability),
					row.Fmax, row.MeanFlow, row.SpikeFmax,
					row.Retries,
					fmt.Sprintf("%.2f", row.DropPct),
					fmt.Sprintf("%.2f", row.ParkedPct))
			}
		}
	}
	out.Render(w)
	fmt.Fprintln(w, "\nReading: without replication every crash parks its keys' requests until")
	fmt.Fprintln(w, "recovery (parked % tracks downtime); with k replicas requests fail over and")
	fmt.Fprintln(w, "the damage shows up as a bounded recovery spike instead of drops.")
	return rows, nil
}

// shuffledWeights draws one Shuffled-case popularity vector.
func shuffledWeights(m int, s float64, rng *rand.Rand) []float64 {
	return popularity.Weights(popularity.Shuffled, m, s, rng)
}
