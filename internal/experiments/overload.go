package experiments

import (
	"fmt"
	"io"

	"flowsched/internal/audit"
	"flowsched/internal/core"
	"flowsched/internal/loadlp"
	"flowsched/internal/overload"
	"flowsched/internal/parallel"
	"flowsched/internal/replicate"
	"flowsched/internal/sim"
	"flowsched/internal/stats"
	"flowsched/internal/table"
	"flowsched/internal/workload"
)

// OverloadSweepConfig controls the goodput-vs-load sweep: the same
// overlapping-replication cluster is pushed from comfortable load past its
// LP (15) capacity λ*, once per overload-control policy.
type OverloadSweepConfig struct {
	M, K      int
	N         int
	Reps      int
	SBias     float64
	Seed      int64
	Loads     []float64 // offered load as a fraction of m (ρ)
	Deadline  float64   // admission budget D of the deadline policy
	MaxQueue  int       // per-server queue bound of the queue policy
	Watermark float64   // shed watermark (max queue age)
}

// DefaultOverloadSweep returns the paper-sized sweep: load from 60% to 150%
// of the cluster, deadline 10 service units, queue bound 8, watermark 8.
func DefaultOverloadSweep() OverloadSweepConfig {
	return OverloadSweepConfig{
		M: 15, K: 3, N: 10000, Reps: 3, SBias: 1, Seed: 1,
		Loads:    []float64{0.6, 0.8, 0.9, 1.0, 1.1, 1.3, 1.5},
		Deadline: 10, MaxQueue: 8, Watermark: 8,
	}
}

// OverloadSweepRow is one policy×load cell (medians over repetitions).
type OverloadSweepRow struct {
	Policy      string
	Load        float64 // offered ρ, fraction of m
	GoodputPct  float64
	Fmax        float64 // admitted (completed-task) max flow
	P99         float64 // admitted p99 flow
	RejectedPct float64
	ShedPct     float64
}

// OverloadSweep compares overload-control policies as offered load crosses
// the capacity λ* of LP (15). Under admit-all the admitted Fmax grows with
// the excess load (the queue is unstable past λ*, Theorem 2's regime);
// admission control and shedding give up a bounded slice of goodput to keep
// the flow time of what they do serve bounded — the deadline policy's bound
// Fmax ≤ D + p_max is re-checked by the schedule auditor in every cell.
func OverloadSweep(w io.Writer, cfg OverloadSweepConfig) ([]OverloadSweepRow, error) {
	if len(cfg.Loads) == 0 {
		cfg.Loads = DefaultOverloadSweep().Loads
	}
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	strat := replicate.Overlapping{K: cfg.K}

	// λ* depends only on the popularity weights, not on the offered load:
	// median it over the per-repetition weight draws.
	var lambdas []float64
	for rep := 0; rep < cfg.Reps; rep++ {
		weights := shuffledWeights(cfg.M, cfg.SBias, subRng(cfg.Seed, 31, int64(rep)))
		lambda, err := loadlp.NewModel(weights, strat).MaxLoadLP()
		if err != nil {
			return nil, err
		}
		lambdas = append(lambdas, lambda)
	}
	lambdaStar := stats.Median(lambdas)

	policies := []struct {
		name string
		mk   func() *overload.Config
	}{
		{"admit-all", func() *overload.Config { return nil }},
		{"queue-bound", func() *overload.Config {
			return &overload.Config{Admission: overload.QueueBound{MaxQueue: cfg.MaxQueue}}
		}},
		{"deadline", func() *overload.Config {
			return &overload.Config{Admission: overload.DeadlineAdmit{D: core.Time(cfg.Deadline)}}
		}},
		{"shed-stretch", func() *overload.Config {
			return &overload.Config{Shedder: &overload.Shedder{
				Policy: overload.DropLargestStretch, Watermark: core.Time(cfg.Watermark), Seed: cfg.Seed}}
		}},
	}

	fmt.Fprintf(w, "Overload control — goodput vs offered load across the capacity λ*\n")
	fmt.Fprintf(w, "m=%d k=%d n=%d overlapping(k=%d), capacity λ* ≈ %.2f (%.0f%% of m);\n",
		cfg.M, cfg.K, cfg.N, cfg.K, lambdaStar, lambdaStar/float64(cfg.M)*100)
	fmt.Fprintf(w, "deadline D=%v queue bound %d watermark %v; medians over %d reps\n\n",
		cfg.Deadline, cfg.MaxQueue, cfg.Watermark, cfg.Reps)

	out := table.New("policy", "ρ %", "goodput %", "admitted Fmax", "admitted p99",
		"rejected %", "shed %")
	var rows []OverloadSweepRow
	for _, pol := range policies {
		for li, load := range cfg.Loads {
			li, load, pol := li, load, pol
			type repStats struct {
				goodput, fmax, p99, rejected, shed float64
			}
			reps, err := parallel.MapErr(cfg.Reps, 0, func(rep int) (repStats, error) {
				inst, err := workload.Generate(workload.Config{
					M: cfg.M, N: cfg.N, Rate: workload.RateForLoad(load, cfg.M),
					Weights:  shuffledWeights(cfg.M, cfg.SBias, subRng(cfg.Seed, 31, int64(rep))),
					Strategy: strat,
				}, subRng(cfg.Seed, 32, int64(li), int64(rep)))
				if err != nil {
					return repStats{}, err
				}
				c := pol.mk()
				arena := arenas.Get().(*sim.Arena)
				defer arenas.Put(arena)
				s, om, err := arena.RunGuarded(inst, sim.EFTRouter{}, nil, sim.RetryPolicy{}, c, nil)
				if err != nil {
					return repStats{}, err
				}
				if c != nil && c.Admission != nil {
					// Re-check the admitted-flow bound with the schedule
					// auditor: for the deadline policy this is the
					// Fmax ≤ D + p_max invariant the engine promises.
					info := &audit.OverloadInfo{Rejected: om.Rejected, Shed: om.Shed}
					if b, ok := c.Admission.(overload.Budgeted); ok {
						info.Deadline = b.Budget()
					}
					comps := make([]core.Time, inst.N())
					for i, task := range inst.Tasks {
						comps[i] = task.Release + om.Flows[i]
					}
					report := audit.Audit(inst, s, audit.Options{
						Completions:    comps,
						Dropped:        om.Dropped,
						Overload:       info,
						SkipLowerBound: true, SkipFIFOEquiv: true,
					})
					if !report.Ok() {
						return repStats{}, fmt.Errorf("policy %s ρ=%.0f%% rep %d: audit: %v",
							pol.name, load*100, rep, report.Violations[0])
					}
				}
				flows := om.AdmittedFlows()
				xs := make([]float64, len(flows))
				for i, f := range flows {
					xs[i] = float64(f)
				}
				return repStats{
					goodput:  om.Goodput() * 100,
					fmax:     float64(om.AdmittedMaxFlow()),
					p99:      stats.Quantile(xs, 0.99),
					rejected: float64(om.RejectedCount()) / float64(inst.N()) * 100,
					shed:     float64(om.ShedCount()) / float64(inst.N()) * 100,
				}, nil
			})
			if err != nil {
				return nil, err
			}
			var goodput, fmax, p99, rejected, shed []float64
			for _, r := range reps {
				goodput = append(goodput, r.goodput)
				fmax = append(fmax, r.fmax)
				p99 = append(p99, r.p99)
				rejected = append(rejected, r.rejected)
				shed = append(shed, r.shed)
			}
			row := OverloadSweepRow{
				Policy:      pol.name,
				Load:        load,
				GoodputPct:  stats.Median(goodput),
				Fmax:        stats.Median(fmax),
				P99:         stats.Median(p99),
				RejectedPct: stats.Median(rejected),
				ShedPct:     stats.Median(shed),
			}
			rows = append(rows, row)
			loadLabel := fmt.Sprintf("%.0f", load*100)
			if load*float64(cfg.M) > lambdaStar {
				loadLabel += " *" // past capacity
			}
			out.AddRow(row.Policy, loadLabel,
				fmt.Sprintf("%.2f", row.GoodputPct),
				row.Fmax, row.P99,
				fmt.Sprintf("%.2f", row.RejectedPct),
				fmt.Sprintf("%.2f", row.ShedPct))
		}
	}
	out.Render(w)
	fmt.Fprintln(w, "\nReading: rows marked * offer more than the capacity λ*. Admit-all serves")
	fmt.Fprintln(w, "everything and its admitted Fmax grows with the backlog; the controlled")
	fmt.Fprintln(w, "policies trade a bounded slice of goodput for a bounded flow time of the")
	fmt.Fprintln(w, "admitted work (the deadline rows are auditor-checked: Fmax ≤ D + p_max).")
	return rows, nil
}
