package experiments

import (
	"strings"
	"testing"
)

// TestHedgeTradeoffHeadline pins the hedging experiment's headline: under a
// gray fault the p95-triggered hedge cuts the admitted p99 flow time
// multiple-fold over no-hedging at a duplicate-work cost below 15% of busy
// time, while the same trigger under pure overload collapses goodput.
func TestHedgeTradeoffHeadline(t *testing.T) {
	cfg := DefaultHedgeTradeoff()
	cfg.Reps = 1 // one repetition keeps the test fast; the effect is ~60×
	var b strings.Builder
	rows, err := HedgeTradeoff(&b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	byCell := map[string]HedgeTradeoffRow{}
	for _, r := range rows {
		byCell[r.Scenario+"/"+r.Policy] = r
	}
	grayNone, grayHedge := byCell["gray/no-hedge"], byCell["gray/hedge-p95"]
	overNone, overHedge := byCell["overload/no-hedge"], byCell["overload/hedge-p95"]

	// Gray fault: multiple-fold p99 cut at a bounded duplicate-work cost.
	if grayHedge.P99*4 > grayNone.P99 {
		t.Errorf("gray hedge p99 %v is not a multiple-fold cut of %v",
			grayHedge.P99, grayNone.P99)
	}
	if grayHedge.DupPct <= 0 || grayHedge.DupPct >= 15 {
		t.Errorf("gray duplicate-work cost %.2f%% outside (0, 15)", grayHedge.DupPct)
	}
	if grayHedge.CopyWins == 0 || grayHedge.Hedges == 0 {
		t.Errorf("gray hedge never won by copy: %v hedges, %v wins",
			grayHedge.Hedges, grayHedge.CopyWins)
	}
	if grayNone.Hedges != 0 || overNone.Hedges != 0 {
		t.Errorf("no-hedge cells issued hedges: %v, %v", grayNone.Hedges, overNone.Hedges)
	}

	// Pure overload: the duplicates crowd real arrivals out of the bounded
	// queues and goodput collapses — hedging is harmful here.
	if overHedge.GoodputPct > overNone.GoodputPct-10 {
		t.Errorf("overload hedging is not harmful: goodput %.2f%% vs %.2f%% unhedged",
			overHedge.GoodputPct, overNone.GoodputPct)
	}

	if !strings.Contains(b.String(), "Hedged execution") {
		t.Errorf("output incomplete")
	}
}
