package experiments

import (
	"io"
	"strings"
	"testing"

	"flowsched/internal/popularity"
)

// Small configurations keep the test suite fast; cmd/experiments uses the
// paper-sized defaults.

func smallFig10() Fig10Config {
	return Fig10Config{M: 8, SMin: 0, SMax: 2, SStep: 0.5, Ks: []int{1, 2, 3, 4, 8}, Perms: 9, Seed: 1}
}

func smallFig11() Fig11Config {
	return Fig11Config{M: 8, K: 3, N: 1500, Reps: 3, SBias: 1,
		Loads: []float64{0.3, 0.6, 0.9}, Seed: 1}
}

func TestTable1Verifies(t *testing.T) {
	rows, err := Table1(io.Discard, Table1Config{Ms: []int{1, 2, 3}, N: 8, Trials: 25, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.WorstMeasured > r.Bound+1e-9 {
			t.Errorf("m=%d: measured %v exceeds bound %v", r.M, r.WorstMeasured, r.Bound)
		}
		if r.WorstMeasured <= 0 {
			t.Errorf("m=%d: no ratio measured", r.M)
		}
	}
}

func TestTable2AllRowsHold(t *testing.T) {
	cfg := Table2Config{MPrime: 8, M: 8, K: 3, Seed: 3, Trials: 20}
	rows, err := Table2(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("expected 8 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if !r.Holds {
			t.Errorf("row %q / %q: theory %v vs measured %v does not hold",
				r.Structure, r.Algorithm, r.Theory, r.Measured)
		}
	}
}

func TestFigure1(t *testing.T) {
	var b strings.Builder
	if err := Figure1(&b, 12, 4); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"disjoint blocks", "inclusive chain", "nested (laminar)", "general subsets"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in Figure 1 output", want)
		}
	}
}

func TestFigure3(t *testing.T) {
	var b strings.Builder
	if err := Figure3(&b, 6, 3, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "M1") || !strings.Contains(b.String(), "Fmax") {
		t.Errorf("Figure 3 output incomplete:\n%s", b.String())
	}
}

func TestFigure4(t *testing.T) {
	var b strings.Builder
	if err := Figure4(&b, 6, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "reaches w_τ") {
		t.Errorf("Figure 4 should report convergence:\n%s", b.String())
	}
}

func TestFigure8(t *testing.T) {
	var b strings.Builder
	if err := Figure8(&b, 6, 1, 5); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Uniform") || !strings.Contains(out, "Worst-case") || !strings.Contains(out, "Shuffled") {
		t.Errorf("Figure 8 output incomplete:\n%s", out)
	}
}

func TestFigure9(t *testing.T) {
	var b strings.Builder
	if err := Figure9(&b, 6, 3); err != nil {
		t.Fatal(err)
	}
	// The paper's example: primary M3 → disjoint {M1,M2,M3}, overlapping
	// {M3,M4,M5}.
	out := b.String()
	if !strings.Contains(out, "{M1,M2,M3}") || !strings.Contains(out, "{M3,M4,M5}") {
		t.Errorf("Figure 9 example sets missing:\n%s", out)
	}
}

func TestFig10SweepShape(t *testing.T) {
	data, err := SweepFig10(smallFig10())
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Ss) != 5 {
		t.Fatalf("s grid = %v", data.Ss)
	}
	for i := range data.Ss {
		for j := range data.Ks {
			ov, dj := data.Overlapping[i][j], data.Disjoint[i][j]
			// Loads are percentages in (0, 100].
			if ov <= 0 || ov > 100+1e-9 || dj <= 0 || dj > 100+1e-9 {
				t.Fatalf("cell (%d,%d) out of range: ov=%v dj=%v", i, j, ov, dj)
			}
			// Paper shape: overlapping ≥ disjoint everywhere.
			if ov < dj-1e-9 {
				t.Errorf("s=%v k=%d: overlapping %v below disjoint %v",
					data.Ss[i], data.Ks[j], ov, dj)
			}
		}
	}
	// s=0 row: both strategies reach 100%; k=m column: both reach 100%.
	for j := range data.Ks {
		if data.Overlapping[0][j] < 100-1e-6 || data.Disjoint[0][j] < 100-1e-6 {
			t.Errorf("s=0, k=%d: expected 100%%, got %v / %v",
				data.Ks[j], data.Overlapping[0][j], data.Disjoint[0][j])
		}
	}
	last := len(data.Ks) - 1
	if data.Ks[last] == 8 {
		for i := range data.Ss {
			if data.Overlapping[i][last] < 100-1e-6 || data.Disjoint[i][last] < 100-1e-6 {
				t.Errorf("k=m, s=%v: expected 100%%", data.Ss[i])
			}
		}
	}
	// The gain is real for biased cells.
	best, _, _ := data.MaxRatio()
	if best < 1.05 {
		t.Errorf("expected a visible overlapping gain, best ratio %v", best)
	}
}

func TestFigure10aAnd10bRender(t *testing.T) {
	var b strings.Builder
	if _, err := Figure10a(&b, smallFig10()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Overlapping") || !strings.Contains(b.String(), "Disjoint") {
		t.Errorf("Figure 10a output incomplete")
	}
	b.Reset()
	if _, err := Figure10b(&b, smallFig10()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "largest gain") {
		t.Errorf("Figure 10b output incomplete")
	}
}

func TestFig11SweepShape(t *testing.T) {
	cfg := smallFig11()
	data, err := SweepFig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 3 cases × 2 strategies × 2 heuristics × 3 loads = 36 points.
	if len(data.Points) != 36 {
		t.Fatalf("points = %d, want 36", len(data.Points))
	}
	for _, p := range data.Points {
		if p.Fmax < 1 {
			t.Errorf("%v %s %s @%v%%: Fmax %v below 1 (unit tasks)", p.Case, p.Heuristic, p.Strategy, p.LoadPct, p.Fmax)
		}
	}
	// Shape check at moderate load in the Uniform case: overlapping ≤
	// disjoint for EFT-Min (the paper's headline at 90%: 5 vs 10).
	ovHigh := lookupPoint(data, popularity.Uniform, "EFT-Min", "overlapping", 90)
	djHigh := lookupPoint(data, popularity.Uniform, "EFT-Min", "disjoint", 90)
	if ovHigh <= 0 || djHigh <= 0 {
		t.Fatalf("missing high-load points: %v %v", ovHigh, djHigh)
	}
	if ovHigh > djHigh {
		t.Errorf("Uniform 90%%: overlapping Fmax %v should not exceed disjoint %v", ovHigh, djHigh)
	}
	// Fmax grows with load for a fixed combination.
	lo := lookupPoint(data, popularity.Uniform, "EFT-Min", "overlapping", 30)
	if lo > ovHigh {
		t.Errorf("Fmax should not decrease with load: 30%%=%v 90%%=%v", lo, ovHigh)
	}
	// The LP verticals exist and are sane.
	for key, v := range data.MaxLoad {
		if v <= 0 || v > 100+1e-9 {
			t.Errorf("max load %q = %v out of range", key, v)
		}
	}
	// Uniform case tolerates 100%.
	if v := data.MaxLoad["Uniform/overlapping"]; v < 100-1e-6 {
		t.Errorf("Uniform overlapping max load = %v, want 100", v)
	}
}

func TestFigure11Renders(t *testing.T) {
	var b strings.Builder
	if _, err := Figure11(&b, smallFig11()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Uniform case", "Shuffled case", "Worst-case case", "EFT-Min/overlap"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 11 output missing %q", want)
		}
	}
}

func TestExtensionStrategies(t *testing.T) {
	cfg := ExtensionConfig{M: 8, K: 3, N: 1000, Reps: 2, SBias: 1, Load: 0.5, Seed: 2}
	var b strings.Builder
	rows, err := ExtensionStrategies(&b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ExtensionRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
		if r.MaxLoadPct <= 0 || r.FmaxEFT < 1 || r.FmaxJSQ < 1 {
			t.Errorf("row %+v has implausible values", r)
		}
	}
	// Overlapping should dominate disjoint on the max-load axis.
	if byName["overlapping"].MaxLoadPct < byName["disjoint"].MaxLoadPct-1e-9 {
		t.Errorf("overlapping max load %v below disjoint %v",
			byName["overlapping"].MaxLoadPct, byName["disjoint"].MaxLoadPct)
	}
}

func TestFigure2(t *testing.T) {
	var b strings.Builder
	if err := Figure2(&b, 8); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "phase k") || !strings.Contains(out, "ratio") {
		t.Errorf("Figure 2 output incomplete:\n%s", out)
	}
}

func TestFigure5and6(t *testing.T) {
	var b strings.Builder
	if err := Figure5and6(&b, 6, 3); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "0 violations") {
		t.Errorf("Lemma 2 must hold with 0 violations:\n%s", out)
	}
	if !strings.Contains(out, "plateau") {
		t.Errorf("Figure 5-6 output incomplete")
	}
}

func TestFigure7(t *testing.T) {
	var b strings.Builder
	if err := Figure7(&b, 6, 3); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "stagger") || !strings.Contains(out, "m−k+1 = 4") {
		t.Errorf("Figure 7 output incomplete:\n%s", out)
	}
}

func TestRobustness(t *testing.T) {
	cfg := RobustnessConfig{M: 8, K: 3, N: 2500, Reps: 2, Load: 0.75, SBias: 1,
		Noises: []float64{0, 0.5}, Seed: 4}
	var b strings.Builder
	rows, err := Robustness(&b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Fmax < 1 || r.MeanFlow < 0.5 {
			t.Errorf("implausible row %+v", r)
		}
	}
	if !strings.Contains(b.String(), "EFT-noisy") || !strings.Contains(b.String(), "Po2") {
		t.Errorf("robustness output incomplete")
	}
}

func TestConvergence(t *testing.T) {
	var b strings.Builder
	rows, err := Convergence(&b, []int{6, 8}, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.FmaxReached {
			t.Errorf("m=%d k=%d: Fmax bound not reached right after convergence", r.M, r.K)
		}
		if r.Rounds > r.PaperBound {
			t.Errorf("m=%d k=%d: convergence %d exceeds the paper's m³ = %d", r.M, r.K, r.Rounds, r.PaperBound)
		}
		// Empirically convergence is polynomial and well under m³.
		if r.Rounds > r.M*r.M {
			t.Errorf("m=%d k=%d: convergence %d unexpectedly above m²", r.M, r.K, r.Rounds)
		}
	}
}

func TestCSVExports(t *testing.T) {
	d10, err := SweepFig10(smallFig10())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	d10.WriteCSV(&b)
	if !strings.HasPrefix(b.String(), "strategy,s,k,max_load_pct\n") {
		t.Errorf("fig10 CSV header wrong:\n%s", b.String()[:60])
	}
	lines := strings.Count(b.String(), "\n")
	want := 1 + 2*len(d10.Ss)*len(d10.Ks)
	if lines != want {
		t.Errorf("fig10 CSV has %d lines, want %d", lines, want)
	}
	b.Reset()
	d10.WriteRatioCSV(&b)
	if !strings.HasPrefix(b.String(), "s,k,ratio\n") {
		t.Errorf("fig10b CSV header wrong")
	}

	d11, err := SweepFig11(smallFig11())
	if err != nil {
		t.Fatal(err)
	}
	b.Reset()
	d11.WriteCSV(&b)
	out := b.String()
	if !strings.HasPrefix(out, "case,heuristic,strategy,load_pct,fmax\n") {
		t.Errorf("fig11 CSV header wrong")
	}
	if !strings.Contains(out, "case_strategy,theoretical_max_load_pct") {
		t.Errorf("fig11 CSV missing verticals block")
	}
	// Deterministic output (sorted map keys).
	var b2 strings.Builder
	d11.WriteCSV(&b2)
	if b2.String() != out {
		t.Errorf("fig11 CSV not deterministic")
	}
}

func TestWriteFanout(t *testing.T) {
	cfg := WritesConfig{M: 8, K: 3, N: 2000, Reps: 2, Rate: 0.35 * 8, SBias: 1,
		Fractions: []float64{0, 0.5}, Seed: 5}
	var b strings.Builder
	rows, err := WriteFanout(&b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Effective load grows with the write fraction.
	if rows[1].EffLoadOv <= rows[0].EffLoadOv {
		t.Errorf("effective load should grow with writes: %v vs %v",
			rows[0].EffLoadOv, rows[1].EffLoadOv)
	}
	// And so should tail latency.
	if rows[1].FmaxOv < rows[0].FmaxOv {
		t.Errorf("Fmax should not improve with more writes: %v vs %v",
			rows[0].FmaxOv, rows[1].FmaxOv)
	}
	if !strings.Contains(b.String(), "Write fan-out") {
		t.Errorf("output incomplete")
	}
}

func TestPopularityDrift(t *testing.T) {
	cfg := DriftConfig{M: 8, K: 3, N: 2000, Reps: 2, Load: 0.5, SBias: 1,
		Segments: []int{1, 4}, Seed: 6}
	var b strings.Builder
	rows, err := PopularityDrift(&b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.FmaxOv < 1 || r.FmaxDj < 1 {
			t.Errorf("implausible row %+v", r)
		}
		// Overlapping should stay at least as good as disjoint under drift.
		if r.FmaxOv > r.FmaxDj*1.5 {
			t.Errorf("epochs=%d: overlapping %v much worse than disjoint %v",
				r.Segments, r.FmaxOv, r.FmaxDj)
		}
	}
	if !strings.Contains(b.String(), "Popularity drift") {
		t.Errorf("output incomplete")
	}
}

// TestAutoscaleSweepHeadline pins the elastic-provisioning story on a
// shortened trace: the autoscaler holds the admitted Fmax within the SLO at
// fewer machine-hours than static-peak, while static-for-mean blows through
// the SLO during the burst. Every cell is auditor-checked inside the sweep
// (membership invariants included), so a pass here also certifies the
// elastic schedules.
func TestAutoscaleSweepHeadline(t *testing.T) {
	cfg := DefaultAutoscale()
	cfg.BaseTime, cfg.BurstTime = 60, 30
	var b strings.Builder
	rows, err := AutoscaleSweep(&b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byCell := map[string]AutoscaleRow{}
	for _, r := range rows {
		byCell[r.Cell] = r
	}
	peak, mean, auto := byCell["static-peak"], byCell["static-mean"], byCell["autoscaled"]
	if !peak.SLOOk {
		t.Errorf("static-peak misses the SLO: Fmax %v", peak.Fmax)
	}
	if mean.SLOOk {
		t.Errorf("static-mean holds the SLO (%v ≤ %v): the burst is too gentle to tell the cells apart",
			mean.Fmax, cfg.SLO)
	}
	if !auto.SLOOk {
		t.Errorf("autoscaler misses the SLO: Fmax %v > %v", auto.Fmax, cfg.SLO)
	}
	if auto.MachineHours >= peak.MachineHours {
		t.Errorf("autoscaler spends %v machine-hours, static-peak only %v",
			auto.MachineHours, peak.MachineHours)
	}
	if auto.ScaleUps == 0 || auto.ScaleDowns == 0 {
		t.Errorf("autoscaler never churned: %d up, %d down", auto.ScaleUps, auto.ScaleDowns)
	}
	if !strings.Contains(b.String(), "Elastic provisioning") {
		t.Errorf("output incomplete")
	}
}
