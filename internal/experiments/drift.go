package experiments

import (
	"fmt"
	"io"

	"flowsched/internal/parallel"
	"flowsched/internal/replicate"
	"flowsched/internal/sim"
	"flowsched/internal/stats"
	"flowsched/internal/table"
	"flowsched/internal/workload"
)

// DriftConfig controls the popularity-drift extension: the Zipf
// permutation re-shuffles every epoch, so the hot machines move while the
// replication layout stays fixed.
type DriftConfig struct {
	M, K     int
	N        int
	Reps     int
	Load     float64
	SBias    float64
	Segments []int // epochs per run to sweep (1 = the paper's static case)
	Seed     int64
}

// DefaultDrift returns the default drift sweep.
func DefaultDrift() DriftConfig {
	return DriftConfig{
		M: 15, K: 3, N: 10000, Reps: 5, Load: 0.55, SBias: 1,
		Segments: []int{1, 2, 5, 10}, Seed: 1,
	}
}

// DriftRow is one epoch-count outcome.
type DriftRow struct {
	Segments       int
	FmaxOv, FmaxDj float64 // median Fmax (EFT-Min)
}

// PopularityDrift sweeps the number of popularity epochs and reports
// median Fmax for both strategies. Expected shape: drifting popularity
// helps rather than hurts — each epoch's hot spot saturates its block for
// a shorter time, and overlapping replication keeps absorbing it; the
// disjoint strategy's unlucky blocks change identity but not severity.
func PopularityDrift(w io.Writer, cfg DriftConfig) ([]DriftRow, error) {
	strategies := map[string]replicate.Strategy{
		"overlapping": replicate.Overlapping{K: cfg.K},
		"disjoint":    replicate.Disjoint{K: cfg.K},
	}
	var rows []DriftRow
	out := table.New("epochs", "Fmax overlap", "Fmax disjoint")
	for _, segs := range cfg.Segments {
		row := DriftRow{Segments: segs}
		for name, strat := range strategies {
			segs, strat := segs, strat
			// Per-rep seeds make the parallel fan-out byte-identical to the
			// sequential loop.
			fmaxes, err := parallel.MapErr(cfg.Reps, 0, func(rep int) (float64, error) {
				rng := subRng(cfg.Seed, 12, int64(rep), int64(segs))
				inst, err := workload.GenerateDrift(workload.DriftConfig{
					M: cfg.M, N: cfg.N, Rate: workload.RateForLoad(cfg.Load, cfg.M),
					SBias: cfg.SBias, Segments: segs, Strategy: strat,
				}, rng)
				if err != nil {
					return 0, err
				}
				_, metrics, err := sim.Run(inst, sim.EFTRouter{})
				if err != nil {
					return 0, err
				}
				return float64(metrics.MaxFlow()), nil
			})
			if err != nil {
				return nil, err
			}
			if name == "overlapping" {
				row.FmaxOv = stats.Median(fmaxes)
			} else {
				row.FmaxDj = stats.Median(fmaxes)
			}
		}
		rows = append(rows, row)
		out.AddRow(row.Segments, row.FmaxOv, row.FmaxDj)
	}
	fmt.Fprintf(w, "Popularity drift — Fmax vs number of popularity epochs (m=%d, k=%d, load %.0f%%, Shuffled s=%v, EFT-Min):\n",
		cfg.M, cfg.K, cfg.Load*100, cfg.SBias)
	out.Render(w)
	fmt.Fprintln(w, "\nepochs = 1 is the paper's static bias; with drift the hot spot moves while the replication")
	fmt.Fprintln(w, "layout stays fixed — overlapping intervals keep absorbing it, disjoint blocks keep saturating.")
	return rows, nil
}
