package experiments

import (
	"fmt"
	"io"
	"math"

	"flowsched/internal/core"
	"flowsched/internal/faults"
	"flowsched/internal/obs"
	"flowsched/internal/overload"
	"flowsched/internal/replicate"
	"flowsched/internal/resilience"
	"flowsched/internal/sim"
	"flowsched/internal/stats"
	"flowsched/internal/table"
	"flowsched/internal/workload"
)

// MetastableConfig controls the metastable-failure experiment: a flapping
// outage of a fixed fraction of the cluster that eventually heals, run with
// and without the resilience layer, plus a gray-detection cell comparing
// the breakers' slow-completion tripwire against the EWMA outlier ejector.
type MetastableConfig struct {
	M, K  int
	N     int
	Reps  int
	SBias float64
	Seed  int64
	Load  float64 // offered load (fraction of m)

	// Storm cell: ⌈OutageFrac·m⌉ servers flap — down for FlapDuty of each
	// FlapPeriod — from OutageStart for Flaps periods, then heal for good.
	OutageFrac  float64
	OutageStart core.Time
	FlapPeriod  core.Time
	FlapDuty    float64
	Flaps       int

	// Retry policy shared by both storm policies (plain exponential
	// backoff), and the protections of the resilient one.
	Backoff     core.Time
	RetryBudget float64
	BudgetBurst float64
	Breaker     resilience.BreakerConfig

	// Gray cell: one server runs GrayFactor× slow from the start (a gray
	// server joining the cluster); the breaker counts completions at
	// ≥ GraySlowFactor× nominal as failures, the ejector uses its
	// EWMA-vs-cluster-median rule. Routing is forecast-blind round-robin —
	// a gray fault is invisible to the scheduler's estimates by definition.
	GrayLoad       float64
	GrayFactor     float64
	GraySlowFactor float64
}

// DefaultMetastable returns the paper-sized experiment: 15 servers at 72%
// load, 30% of the cluster flapping through twenty-four 15-unit periods
// (down 60% of each), retries on a plain backoff of 2 doubling per attempt,
// against the protected stack — full jitter, a 10% retry budget with a
// burst of 3, and breakers that open after 3 failures in a window of 5 with
// a cooldown of one flap period. The healthy 70% of the cluster keeps slack
// through the outage, so the post-heal damage is the retry storm itself,
// not raw capacity loss — the regime the resilience layer targets.
func DefaultMetastable() MetastableConfig {
	return MetastableConfig{
		M: 15, K: 3, N: 10000, Reps: 3, SBias: 0, Seed: 1,
		Load:        0.72,
		OutageFrac:  0.3,
		OutageStart: 260, FlapPeriod: 15, FlapDuty: 0.6, Flaps: 24,
		Backoff: 2, RetryBudget: 0.1, BudgetBurst: 3,
		Breaker: resilience.BreakerConfig{
			Window: 5, FailureThreshold: 0.6, Cooldown: 15, HalfOpenProbes: 2,
		},
		GrayLoad: 0.7, GrayFactor: 8, GraySlowFactor: 3,
	}
}

// OutageEnd returns when the last flap heals for good.
func (c *MetastableConfig) OutageEnd() core.Time {
	return c.OutageStart + core.Time(float64(c.Flaps))*c.FlapPeriod
}

// MetastableStormRow is one policy of the storm cell (medians over reps).
type MetastableStormRow struct {
	Policy        string  // "plain-backoff" or "protected"
	PreP99        float64 // admitted p99 flow, released before the outage
	PostP99       float64 // admitted p99 flow, released after the heal
	GoodputPct    float64
	RetriesIssued float64
	RetriesDrop   float64
	BreakerOpens  float64
}

// MetastableGrayRow is one detector of the gray cell.
type MetastableGrayRow struct {
	Policy        string  // "ewma-ejector" or "breaker"
	DetectLatency float64 // gray onset → first ejection / breaker open
	PostP99       float64 // admitted p99 flow, released after detection
}

// MetastableResult bundles both cells for the pinning test.
type MetastableResult struct {
	Storm []MetastableStormRow
	Gray  []MetastableGrayRow
}

// ejectClock records the first ejection instant of a run (the overload
// observer hook rides along on the standard probe interface).
type ejectClock struct {
	obs.BaseProbe
	obs.BaseOverloadObserver
	first core.Time
	seen  bool
}

func (e *ejectClock) OnEject(server int, at core.Time) {
	if !e.seen {
		e.first, e.seen = at, true
	}
}

// Metastable measures the retry-storm regime the resilience layer targets.
//
// Storm cell: 30% of the cluster flaps — crashing and briefly healing —
// then heals for good. Every crash aborts the flapper's queue; plain
// deterministic backoff re-dispatches those tasks in synchronized doubling
// waves that keep re-feeding the flappers and finally collide with the
// post-heal arrivals, so the admitted p99 of tasks released AFTER the heal
// stays blown up long after the fault is gone — the metastable signature:
// the trigger has healed, the failure state sustains itself. The protected
// run breaks each link: jitter desynchronizes the waves, the retry budget
// drops over-budget retries instead of banking an unbounded storm, and the
// breakers stop feeding the flappers after a window of failures.
//
// Gray cell: one server runs GrayFactor× slow without ever crashing. The
// breaker's slow-completion rule (a completion at ≥ GraySlowFactor× nominal
// counts as a failure) trips after its outcome window fills — a handful of
// completions — while the EWMA ejector must accumulate MinSamples and drag
// its average past K× the cluster median, so the breaker ejects the gray
// server first.
func Metastable(w io.Writer, cfg MetastableConfig) (*MetastableResult, error) {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	if err := cfg.Breaker.Validate(); err != nil {
		return nil, err
	}
	res := &MetastableResult{}

	outM := int(math.Ceil(cfg.OutageFrac * float64(cfg.M)))
	flapPlan := &faults.Plan{M: cfg.M}
	for j := 0; j < outM; j++ {
		for f := 0; f < cfg.Flaps; f++ {
			from := cfg.OutageStart + core.Time(float64(f))*cfg.FlapPeriod
			flapPlan.Down(j, from, from+core.Time(cfg.FlapDuty)*cfg.FlapPeriod)
		}
	}
	pol := sim.RetryPolicy{Backoff: cfg.Backoff, BackoffFactor: 2}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	protected := &resilience.Config{
		Jitter: resilience.JitterFull, Seed: cfg.Seed,
		RetryBudget: cfg.RetryBudget, BudgetBurst: cfg.BudgetBurst,
		Breaker: &cfg.Breaker,
	}
	if err := protected.Validate(); err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "Metastable failure — a healed outage that plain retries keep alive\n")
	fmt.Fprintf(w, "m=%d k=%d n=%d overlapping(k=%d), EFT routing, %.0f%% load;\n",
		cfg.M, cfg.K, cfg.N, cfg.K, cfg.Load*100)
	fmt.Fprintf(w, "storm: %d servers flap (down %.0f%% of each %g-unit period × %d) on [%g, %g);\n",
		outM, cfg.FlapDuty*100, cfg.FlapPeriod, cfg.Flaps, cfg.OutageStart, cfg.OutageEnd())
	fmt.Fprintf(w, "retries: backoff %g doubling; protected adds full jitter, a %.0f%%/burst-%g\n",
		cfg.Backoff, cfg.RetryBudget*100, cfg.BudgetBurst)
	fmt.Fprintf(w, "retry budget and breakers (window %d, threshold %.0f%%, cooldown %g);\n",
		cfg.Breaker.Window, cfg.Breaker.FailureThreshold*100, cfg.Breaker.Cooldown)
	fmt.Fprintf(w, "medians over %d reps\n\n", cfg.Reps)

	policies := []struct {
		name string
		rcfg *resilience.Config
	}{
		{"plain-backoff", nil},
		{"protected", protected},
	}
	stormOut := table.New("policy", "pre-fault p99", "post-heal p99", "goodput %",
		"retries", "budget drops", "breaker opens")
	for _, p := range policies {
		var pre, post, goodput, issued, drops, opens []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			inst, err := workload.Generate(workload.Config{
				M: cfg.M, N: cfg.N, Rate: workload.RateForLoad(cfg.Load, cfg.M),
				Weights:  shuffledWeights(cfg.M, cfg.SBias, subRng(cfg.Seed, 71, int64(rep))),
				Strategy: replicate.Overlapping{K: cfg.K},
			}, subRng(cfg.Seed, 72, int64(rep)))
			if err != nil {
				return nil, err
			}
			arena := arenas.Get().(*sim.Arena)
			_, em, err := arena.RunResilient(inst, sim.EFTRouter{}, flapPlan,
				pol, nil, nil, nil, p.rcfg, nil)
			if err != nil {
				arenas.Put(arena)
				return nil, err
			}
			pre = append(pre, windowP99(inst, em, 0, cfg.OutageStart-20))
			post = append(post, windowP99(inst, em, cfg.OutageEnd(), core.Time(math.Inf(1))))
			goodput = append(goodput, em.Goodput()*100)
			issued = append(issued, float64(retryDispatches(em)))
			drops = append(drops, float64(em.RetriesDropped))
			opens = append(opens, float64(em.BreakerOpens))
			arenas.Put(arena)
		}
		row := MetastableStormRow{
			Policy: p.name,
			PreP99: stats.Median(pre), PostP99: stats.Median(post),
			GoodputPct:    stats.Median(goodput),
			RetriesIssued: stats.Median(issued),
			RetriesDrop:   stats.Median(drops),
			BreakerOpens:  stats.Median(opens),
		}
		res.Storm = append(res.Storm, row)
		stormOut.AddRow(row.Policy,
			fmt.Sprintf("%.2f", row.PreP99), fmt.Sprintf("%.2f", row.PostP99),
			fmt.Sprintf("%.2f", row.GoodputPct),
			fmt.Sprintf("%.0f", row.RetriesIssued), fmt.Sprintf("%.0f", row.RetriesDrop),
			fmt.Sprintf("%.0f", row.BreakerOpens))
	}
	stormOut.Render(w)

	fmt.Fprintf(w, "\nGray detection — breaker slow-tripwire vs the EWMA outlier ejector\n")
	fmt.Fprintf(w, "server 0 runs %g× slow from the start (never down), %.0f%% load, round-robin;\n",
		cfg.GrayFactor, cfg.GrayLoad*100)
	fmt.Fprintf(w, "breaker counts ≥%g× nominal as failure; ejector: EWMA > 3× cluster median\n",
		cfg.GraySlowFactor)
	fmt.Fprintf(w, "after 10 samples\n\n")

	grayPlan := (&faults.Plan{M: cfg.M}).Slow(0, 0, 1e9, cfg.GrayFactor)
	grayBrk := cfg.Breaker
	grayBrk.SlowFactor = cfg.GraySlowFactor
	grayBrk.Cooldown = 1e9 // eject for the rest of the run, like the ejector below
	detectors := []struct{ name string }{{"ewma-ejector"}, {"breaker"}}
	grayOut := table.New("detector", "detect latency", "post-detect p99")
	for _, d := range detectors {
		var lat, post []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			inst, err := workload.Generate(workload.Config{
				M: cfg.M, N: cfg.N, Rate: workload.RateForLoad(cfg.GrayLoad, cfg.M),
				Weights:  shuffledWeights(cfg.M, cfg.SBias, subRng(cfg.Seed, 73, int64(rep))),
				Strategy: replicate.Overlapping{K: cfg.K},
			}, subRng(cfg.Seed, 74, int64(rep)))
			if err != nil {
				return nil, err
			}
			arena := arenas.Get().(*sim.Arena)
			var detected core.Time
			var em *sim.ElasticMetrics
			if d.name == "breaker" {
				_, em2, err2 := arena.RunResilient(inst, &sim.RoundRobinRouter{}, grayPlan,
					sim.RetryPolicy{}, nil, nil, nil,
					&resilience.Config{Breaker: &grayBrk}, nil)
				if err2 != nil {
					arenas.Put(arena)
					return nil, err2
				}
				em = em2
				detected = core.Time(math.Inf(1))
				for _, sp := range em.BreakerSpans {
					if sp.Server == 0 && sp.OpenedAt < detected {
						detected = sp.OpenedAt
					}
				}
			} else {
				clock := &ejectClock{}
				ocfg := &overload.Config{Ejector: &overload.Ejector{K: 3, Cooldown: 1e9}}
				_, em2, err2 := arena.RunResilient(inst, &sim.RoundRobinRouter{}, grayPlan,
					sim.RetryPolicy{}, ocfg, nil, nil, nil, clock)
				if err2 != nil {
					arenas.Put(arena)
					return nil, err2
				}
				em = em2
				detected = core.Time(math.Inf(1))
				if clock.seen {
					detected = clock.first
				}
			}
			lat = append(lat, float64(detected))
			post = append(post, windowP99(inst, em, detected, core.Time(math.Inf(1))))
			arenas.Put(arena)
		}
		row := MetastableGrayRow{
			Policy:        d.name,
			DetectLatency: stats.Median(lat),
			PostP99:       stats.Median(post),
		}
		res.Gray = append(res.Gray, row)
		grayOut.AddRow(row.Policy,
			fmt.Sprintf("%.2f", row.DetectLatency), fmt.Sprintf("%.2f", row.PostP99))
	}
	grayOut.Render(w)

	fmt.Fprintln(w, "\nReading: the fault heals but plain backoff keeps the failure alive — the")
	fmt.Fprintln(w, "synchronized retry waves banked during the flapping collide with the")
	fmt.Fprintln(w, "post-heal arrivals, so tasks released AFTER the outage ended still see a")
	fmt.Fprintln(w, "blown-up p99. Jitter + a retry budget + breakers cut the storm at all")
	fmt.Fprintln(w, "three links and the post-heal p99 returns to the pre-fault regime. On the")
	fmt.Fprintln(w, "gray cell the breaker trips after one outcome window of slow completions,")
	fmt.Fprintln(w, "well before the ejector's EWMA clears its sample and median thresholds.")
	return res, nil
}

// retryDispatches counts re-dispatches after crash aborts (attempts beyond
// each task's first) — comparable across runs with and without the
// resilience layer, whose RetriesIssued ledger exists only when enabled.
func retryDispatches(em *sim.ElasticMetrics) int {
	total := 0
	for _, a := range em.Attempts {
		if a > 1 {
			total += a - 1
		}
	}
	return total
}

// windowP99 returns the p99 flow of tasks released in [from, to) that
// finally completed (NaN when the window holds no completions).
func windowP99(inst *core.Instance, em *sim.ElasticMetrics, from, to core.Time) float64 {
	var xs []float64
	for i := range inst.Tasks {
		r := inst.Tasks[i].Release
		if r < from || r >= to {
			continue
		}
		if em.Dropped[i] || (em.Rejected != nil && em.Rejected[i]) || (em.Shed != nil && em.Shed[i]) {
			continue
		}
		xs = append(xs, float64(em.Flows[i]))
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	return stats.Quantile(xs, 0.99)
}
