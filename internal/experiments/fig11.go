package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"flowsched/internal/core"
	"flowsched/internal/loadlp"
	"flowsched/internal/parallel"
	"flowsched/internal/popularity"
	"flowsched/internal/replicate"
	"flowsched/internal/sched"
	"flowsched/internal/sim"
	"flowsched/internal/stats"
	"flowsched/internal/table"
	"flowsched/internal/workload"
)

// Fig11Config controls the Section 7.4 simulations.
type Fig11Config struct {
	M     int       // cluster size (paper: 15)
	K     int       // replication factor (paper: 3)
	N     int       // tasks per run (paper: 10 000)
	Reps  int       // repetitions, median taken (paper: 10)
	SBias float64   // Zipf shape for the biased cases (paper: 1)
	Loads []float64 // average loads λ/m, as fractions
	Seed  int64
	// Workers bounds the parallel fan-out over (case, load) cells
	// (0 = GOMAXPROCS). Results are identical for any worker count: every
	// cell derives its randomness from (Seed, case, load, repetition).
	Workers int
	// Progress, when set, receives completed-cell counts while the sweep
	// runs (calls are serialized; counts only — completion order is
	// scheduling-dependent).
	Progress parallel.Progress
}

// DefaultFig11 returns the paper's configuration.
func DefaultFig11() Fig11Config {
	loads := []float64{0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 1.00}
	return Fig11Config{M: 15, K: 3, N: 10000, Reps: 10, SBias: 1, Loads: loads, Seed: 1}
}

// Fig11Point is one curve point: median Fmax at one load for one
// (case, heuristic, strategy) combination.
type Fig11Point struct {
	Case      popularity.Case
	Heuristic string // "EFT-Min" or "EFT-Max"
	Strategy  string // "overlapping" or "disjoint"
	LoadPct   float64
	Fmax      float64 // median over repetitions
}

// Fig11Data holds all curves plus the LP max-load verticals per case and
// strategy (the red lines of Figure 11).
type Fig11Data struct {
	Points  []Fig11Point
	MaxLoad map[string]float64 // "case/strategy" -> theoretical max load %
}

// subRng derives an independent random stream from the master seed and a
// list of coordinates (splitmix64-style mixing), so parallel cells are
// deterministic regardless of scheduling order.
func subRng(seed int64, coords ...int64) *rand.Rand {
	z := uint64(seed)
	for _, c := range coords {
		z ^= uint64(c) + 0x9e3779b97f4a7c15 + (z << 6) + (z >> 2)
		z += 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return rand.New(rand.NewSource(int64(z)))
}

var fig11Ties = []struct {
	name string
	tie  sched.TieBreak
}{
	{"EFT-Min", sched.MinTie{}},
	{"EFT-Max", sched.MaxTie{}},
}

func fig11Strategies(k int) []replicate.Strategy {
	return []replicate.Strategy{
		replicate.Overlapping{K: k},
		replicate.Disjoint{K: k},
	}
}

// SweepFig11 runs the Figure 11 protocol: for each popularity case
// (Uniform, Shuffled s, Worst-case s), each replication strategy
// (overlapping, disjoint) and each heuristic (EFT-Min, EFT-Max), simulate N
// Poisson unit tasks at every load and report the median Fmax over Reps
// repetitions. Within a repetition the arrival process and the sampled
// primaries are shared across strategies and heuristics (paired
// comparison); Shuffled repetitions redraw the permutation. Cells run in
// parallel with per-cell derived seeds.
func SweepFig11(cfg Fig11Config) (*Fig11Data, error) {
	data := &Fig11Data{MaxLoad: make(map[string]float64)}
	cases := []popularity.Case{popularity.Uniform, popularity.Shuffled, popularity.Worst}
	strategies := fig11Strategies(cfg.K)

	// LP verticals.
	for ci, c := range cases {
		for si, strat := range strategies {
			key := fmt.Sprintf("%s/%s", c, stratLabel(strat))
			data.MaxLoad[key] = theoreticalMaxLoadPct(c, cfg, strat, subRng(cfg.Seed, 1, int64(ci), int64(si)))
		}
	}

	// Simulation cells: one job per (case, load).
	type cell struct {
		ci, li int
	}
	var cells []cell
	for ci := range cases {
		for li := range cfg.Loads {
			cells = append(cells, cell{ci, li})
		}
	}
	type cellResult struct {
		points []Fig11Point
	}
	results, err := parallel.MapErrProgress(len(cells), cfg.Workers, cfg.Progress, func(x int) (cellResult, error) {
		ci, li := cells[x].ci, cells[x].li
		c := cases[ci]
		load := cfg.Loads[li]
		rate := workload.RateForLoad(load, cfg.M)
		fmaxes := make(map[string][]float64)
		for rep := 0; rep < cfg.Reps; rep++ {
			weights := popularity.Weights(c, cfg.M, cfg.SBias,
				subRng(cfg.Seed, 2, int64(ci), int64(li), int64(rep)))
			// Shared arrival process + primaries for the paired comparison.
			arrRng := subRng(cfg.Seed, 3, int64(ci), int64(li), int64(rep))
			releases, primaries := drawArrivals(cfg.N, rate, weights, arrRng)
			for _, strat := range strategies {
				inst := instanceFor(cfg.M, releases, primaries, strat)
				for _, tb := range fig11Ties {
					_, metrics, err := sim.Run(inst, sim.EFTRouter{Tie: tb.tie})
					if err != nil {
						return cellResult{}, err
					}
					key := stratLabel(strat) + "/" + tb.name
					fmaxes[key] = append(fmaxes[key], float64(metrics.MaxFlow()))
				}
			}
		}
		var out cellResult
		for _, strat := range strategies {
			for _, tb := range fig11Ties {
				key := stratLabel(strat) + "/" + tb.name
				out.points = append(out.points, Fig11Point{
					Case:      c,
					Heuristic: tb.name,
					Strategy:  stratLabel(strat),
					LoadPct:   load * 100,
					Fmax:      stats.Median(fmaxes[key]),
				})
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		data.Points = append(data.Points, r.points...)
	}
	return data, nil
}

// drawArrivals samples the Poisson release times and popularity-weighted
// primary machines shared by all strategies of one repetition.
func drawArrivals(n int, rate float64, weights []float64, rng *rand.Rand) ([]core.Time, []int) {
	sampler := popularity.NewSampler(weights)
	releases := make([]core.Time, n)
	primaries := make([]int, n)
	t := core.Time(0)
	for i := 0; i < n; i++ {
		t += rng.ExpFloat64() / rate
		releases[i] = t
		primaries[i] = sampler.Sample(rng)
	}
	return releases, primaries
}

// instanceFor applies a replication strategy to a shared arrival pattern.
func instanceFor(m int, releases []core.Time, primaries []int, strat replicate.Strategy) *core.Instance {
	tasks := make([]core.Task, len(releases))
	for i := range tasks {
		tasks[i] = core.Task{
			Release: releases[i],
			Proc:    1,
			Set:     strat.Set(primaries[i], m),
			Key:     primaries[i],
		}
	}
	return core.NewInstance(m, tasks)
}

func stratLabel(s replicate.Strategy) string {
	switch s.(type) {
	case replicate.Overlapping:
		return "overlapping"
	case replicate.Disjoint:
		return "disjoint"
	default:
		return s.Name()
	}
}

// theoreticalMaxLoadPct computes the red vertical of Figure 11: the LP (15)
// maximum load of the case, as a percentage (median over 100 permutations
// for the Shuffled case).
func theoreticalMaxLoadPct(c popularity.Case, cfg Fig11Config, strat replicate.Strategy, rng *rand.Rand) float64 {
	solve := func(w []float64) float64 {
		mo := loadlp.NewModel(w, strat)
		return mo.MaxLoadPercent(mo.MaxLoadHall())
	}
	switch c {
	case popularity.Shuffled:
		vals := make([]float64, 0, 100)
		for p := 0; p < 100; p++ {
			vals = append(vals, solve(popularity.Weights(c, cfg.M, cfg.SBias, rng)))
		}
		return stats.Median(vals)
	default:
		return solve(popularity.Weights(c, cfg.M, cfg.SBias, rng))
	}
}

// Figure11 runs the sweep and prints one table per popularity case with the
// four curves (heuristic × strategy) and the LP verticals.
func Figure11(w io.Writer, cfg Fig11Config) (*Fig11Data, error) {
	data, err := SweepFig11(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Figure 11 — median Fmax vs average load; m=%d, k=%d, n=%d, %d repetitions, s=%v for biased cases\n",
		cfg.M, cfg.K, cfg.N, cfg.Reps, cfg.SBias)
	for _, c := range []popularity.Case{popularity.Uniform, popularity.Shuffled, popularity.Worst} {
		fmt.Fprintf(w, "\n%s case (theoretical max load: overlapping %.0f%%, disjoint %.0f%%):\n",
			c,
			data.MaxLoad[fmt.Sprintf("%s/overlapping", c)],
			data.MaxLoad[fmt.Sprintf("%s/disjoint", c)])
		out := table.New("load %", "EFT-Min/overlap", "EFT-Max/overlap", "EFT-Min/disjoint", "EFT-Max/disjoint")
		for _, load := range cfg.Loads {
			row := []interface{}{fmt.Sprintf("%.0f", load*100)}
			for _, combo := range []struct{ strat, tie string }{
				{"overlapping", "EFT-Min"}, {"overlapping", "EFT-Max"},
				{"disjoint", "EFT-Min"}, {"disjoint", "EFT-Max"},
			} {
				v := lookupPoint(data, c, combo.tie, combo.strat, load*100)
				row = append(row, v)
			}
			out.AddRow(row...)
		}
		out.Render(w)
	}
	return data, nil
}

func lookupPoint(d *Fig11Data, c popularity.Case, tie, strat string, loadPct float64) float64 {
	for _, p := range d.Points {
		if p.Case == c && p.Heuristic == tie && p.Strategy == strat && p.LoadPct == loadPct {
			return p.Fmax
		}
	}
	return -1
}
