package experiments

import (
	"testing"

	"flowsched/internal/audit"
	"flowsched/internal/core"
	"flowsched/internal/faults"
	"flowsched/internal/replicate"
	"flowsched/internal/sched"
	"flowsched/internal/sim"
	"flowsched/internal/workload"
)

// TestTable1SchedulesAuditClean regenerates every schedule behind the Table 1
// verification rows (same (Seed, m, trial) randomness as Table1) and runs the
// invariant auditor over each: the experiment data rests on these schedules
// being structurally valid, not just on their max-flow ratios.
func TestTable1SchedulesAuditClean(t *testing.T) {
	cfg := DefaultTable1()
	for _, m := range cfg.Ms {
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := subRng(cfg.Seed, int64(m), int64(trial))
			tasks := make([]core.Task, cfg.N)
			for i := range tasks {
				tasks[i] = core.Task{
					Release: rng.Float64() * 4,
					Proc:    0.2 + rng.Float64()*2,
				}
			}
			inst := core.NewInstance(m, tasks)
			s, err := sched.NewEFT(sched.MinTie{}).Run(inst)
			if err != nil {
				t.Fatal(err)
			}
			if rep := audit.Audit(inst, s, audit.Options{}); !rep.Ok() {
				t.Fatalf("m=%d trial=%d: %v", m, trial, rep)
			}
		}
	}
}

// TestFaultSweepSchedulesAuditClean regenerates the workload × fault-plan
// cells of the fault-tolerance sweep (same subRng salts as FaultTolerance)
// and audits every faulty schedule, including crashed-and-dropped tasks and
// downtime consistency against the generating plan.
func TestFaultSweepSchedulesAuditClean(t *testing.T) {
	cfg := smallFaultTolerance()
	strategies := []replicate.Strategy{
		replicate.None{},
		replicate.Disjoint{K: cfg.K},
		replicate.Overlapping{K: cfg.K},
	}
	routers := []struct {
		name string
		mk   func() sim.Router
	}{
		{"EFT-Min", func() sim.Router { return sim.EFTRouter{} }},
		{"JSQ", func() sim.Router { return sim.JSQRouter{} }},
	}
	for si, strat := range strategies {
		for ri, rt := range routers {
			for mi, mtbf := range cfg.MTBFs {
				for rep := 0; rep < cfg.Reps; rep++ {
					inst, err := workload.Generate(workload.Config{
						M: cfg.M, N: cfg.N, Rate: workload.RateForLoad(cfg.Load, cfg.M),
						Weights: shuffledWeights(cfg.M, cfg.SBias,
							subRng(cfg.Seed, 13, int64(si), int64(ri), int64(mi), int64(rep))),
						Strategy: strat,
					}, subRng(cfg.Seed, 14, int64(rep)))
					if err != nil {
						t.Fatal(err)
					}
					horizon := inst.Tasks[inst.N()-1].Release
					plan := faults.Generate(cfg.M, horizon, mtbf, cfg.MTTR,
						subRng(cfg.Seed, 15, int64(mi), int64(rep)))
					s, fm, err := sim.RunFaulty(inst, rt.mk(), plan, cfg.Pol)
					if err != nil {
						t.Fatal(err)
					}
					comps := make([]core.Time, inst.N())
					for i, task := range inst.Tasks {
						comps[i] = task.Release + fm.Flows[i]
					}
					report := audit.Audit(inst, s, audit.Options{
						Plan:        plan,
						Completions: comps,
						Dropped:     fm.Dropped,
					})
					if !report.Ok() {
						t.Fatalf("%s/%s mtbf=%v rep=%d: %v", strat.Name(), rt.name, mtbf, rep, report)
					}
				}
			}
		}
	}
}
