package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"flowsched/internal/loadlp"
	"flowsched/internal/parallel"
	"flowsched/internal/popularity"
	"flowsched/internal/replicate"
	"flowsched/internal/stats"
	"flowsched/internal/table"
)

// Fig10Config controls the max-load sweep of Figures 10a/10b.
type Fig10Config struct {
	M     int     // cluster size (paper: 15)
	SMin  float64 // popularity bias range (paper: 0..5, step 0.25)
	SMax  float64
	SStep float64
	Ks    []int // interval sizes (paper: 1..m)
	Perms int   // permutations per cell in the Shuffled case (paper: 100)
	Seed  int64
	// Workers bounds the parallel fan-out over s rows (0 = GOMAXPROCS);
	// output is identical for any worker count.
	Workers int
}

// DefaultFig10 returns the paper's configuration.
func DefaultFig10() Fig10Config {
	ks := make([]int, 15)
	for i := range ks {
		ks[i] = i + 1
	}
	return Fig10Config{M: 15, SMin: 0, SMax: 5, SStep: 0.25, Ks: ks, Perms: 100, Seed: 1}
}

// Fig10Data holds the sweep results: median max-load percentages indexed by
// [s index][k index] for each strategy.
type Fig10Data struct {
	Ss          []float64
	Ks          []int
	Overlapping [][]float64 // median max-load %
	Disjoint    [][]float64
}

// Ratio returns the Figure 10b matrix: overlapping/disjoint per cell.
func (d *Fig10Data) Ratio() [][]float64 {
	out := make([][]float64, len(d.Ss))
	for i := range out {
		out[i] = make([]float64, len(d.Ks))
		for j := range out[i] {
			if d.Disjoint[i][j] > 0 {
				out[i][j] = d.Overlapping[i][j] / d.Disjoint[i][j]
			}
		}
	}
	return out
}

// MaxRatio returns the largest overlapping/disjoint gain of the sweep and
// its (s, k) location.
func (d *Fig10Data) MaxRatio() (best float64, sAt float64, kAt int) {
	r := d.Ratio()
	for i, s := range d.Ss {
		for j, k := range d.Ks {
			if r[i][j] > best {
				best, sAt, kAt = r[i][j], s, k
			}
		}
	}
	return best, sAt, kAt
}

// SweepFig10 computes the Figure 10 data: for every bias s and interval
// size k, the median (over Perms random permutations, Shuffled case) of the
// theoretical maximum load of LP (15) for both replication strategies. The
// same permutations are used for every cell and both strategies, as needed
// for a meaningful Figure 10b ratio. Exact solvers are used (Hall
// enumeration for overlapping sets, the closed form for disjoint blocks).
func SweepFig10(cfg Fig10Config) (*Fig10Data, error) {
	if cfg.M < 1 || cfg.M > 25 {
		return nil, fmt.Errorf("experiments: Fig10 needs 1 ≤ m ≤ 25, got %d", cfg.M)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	perms := make([][]int, cfg.Perms)
	for p := range perms {
		perms[p] = rng.Perm(cfg.M)
	}

	var ss []float64
	for s := cfg.SMin; s <= cfg.SMax+1e-9; s += cfg.SStep {
		ss = append(ss, s)
	}
	data := &Fig10Data{
		Ss:          ss,
		Ks:          cfg.Ks,
		Overlapping: make([][]float64, len(ss)),
		Disjoint:    make([][]float64, len(ss)),
	}
	// Rows (one per s value) are independent; fan them out. Each row only
	// writes its own slices, and the shared permutations are read-only.
	_, err := parallel.MapErr(len(ss), cfg.Workers, func(i int) (struct{}, error) {
		s := ss[i]
		data.Overlapping[i] = make([]float64, len(cfg.Ks))
		data.Disjoint[i] = make([]float64, len(cfg.Ks))
		base := popularity.Zipf(cfg.M, s)
		for j, k := range cfg.Ks {
			ovs := make([]float64, 0, cfg.Perms)
			djs := make([]float64, 0, cfg.Perms)
			for _, perm := range perms {
				w := make([]float64, cfg.M)
				for x, px := range perm {
					w[x] = base[px]
				}
				ov := loadlp.NewModel(w, replicate.Overlapping{K: k})
				dj := loadlp.NewModel(w, replicate.Disjoint{K: k})
				ovs = append(ovs, ov.MaxLoadPercent(ov.MaxLoadHall()))
				cf, err := dj.MaxLoadDisjoint()
				if err != nil {
					return struct{}{}, err
				}
				djs = append(djs, dj.MaxLoadPercent(cf))
			}
			data.Overlapping[i][j] = stats.Median(ovs)
			data.Disjoint[i][j] = stats.Median(djs)
		}
		return struct{}{}, nil
	})
	if err != nil {
		return nil, err
	}
	return data, nil
}

// Figure10a prints the median max-load sweep (the heat map of Figure 10a)
// as two tables, one per strategy.
func Figure10a(w io.Writer, cfg Fig10Config) (*Fig10Data, error) {
	data, err := SweepFig10(cfg)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Figure 10a — median max-load %% (Shuffled case, m=%d, %d permutations)\n",
		cfg.M, cfg.Perms)
	for _, strat := range []struct {
		name string
		grid [][]float64
	}{
		{"Overlapping", data.Overlapping},
		{"Disjoint", data.Disjoint},
	} {
		fmt.Fprintf(w, "\n%s:\n", strat.name)
		header := []string{"s \\ k"}
		for _, k := range data.Ks {
			header = append(header, fmt.Sprintf("%d", k))
		}
		out := table.New(header...)
		for i, s := range data.Ss {
			row := make([]interface{}, 0, len(data.Ks)+1)
			row = append(row, fmt.Sprintf("%.2f", s))
			for j := range data.Ks {
				row = append(row, fmt.Sprintf("%.0f", strat.grid[i][j]))
			}
			out.AddRow(row...)
		}
		out.Render(w)

		// The same grid as an ASCII heat map (darker = higher load), the
		// terminal rendering of the paper's color map.
		hm := &table.Heatmap{
			RowLabel: "s\\k", ColLabel: "k: last digit per column",
			Rows:   make([]string, len(data.Ss)),
			Cols:   make([]string, len(data.Ks)),
			Values: strat.grid,
			Lo:     0, Hi: 100,
		}
		for i, s := range data.Ss {
			hm.Rows[i] = fmt.Sprintf("%.2f", s)
		}
		for j, k := range data.Ks {
			hm.Cols[j] = fmt.Sprintf("%d", k)
		}
		fmt.Fprintln(w)
		hm.Render(w)
	}
	return data, nil
}

// Figure10b prints the overlapping/disjoint gain matrix and its maximum
// (the paper reports gains up to ~1.5×).
func Figure10b(w io.Writer, cfg Fig10Config) (*Fig10Data, error) {
	data, err := SweepFig10(cfg)
	if err != nil {
		return nil, err
	}
	RenderFig10b(w, data, cfg)
	return data, nil
}

// RenderFig10b prints the Figure 10b ratio matrix for precomputed data.
func RenderFig10b(w io.Writer, data *Fig10Data, cfg Fig10Config) {
	ratio := data.Ratio()
	fmt.Fprintf(w, "Figure 10b — max-load ratio overlapping/disjoint (m=%d, %d permutations)\n\n", cfg.M, cfg.Perms)
	header := []string{"s \\ k"}
	for _, k := range data.Ks {
		header = append(header, fmt.Sprintf("%d", k))
	}
	out := table.New(header...)
	for i, s := range data.Ss {
		row := make([]interface{}, 0, len(data.Ks)+1)
		row = append(row, fmt.Sprintf("%.2f", s))
		for j := range data.Ks {
			row = append(row, fmt.Sprintf("%.2f", ratio[i][j]))
		}
		out.AddRow(row...)
	}
	out.Render(w)
	best, sAt, kAt := data.MaxRatio()
	fmt.Fprintf(w, "\nlargest gain: %.2fx at s=%.2f, k=%d (paper: up to ~1.5x around s=1.25, k=6)\n", best, sAt, kAt)
}
