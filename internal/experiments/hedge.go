package experiments

import (
	"fmt"
	"io"

	"flowsched/internal/faults"
	"flowsched/internal/hedge"
	"flowsched/internal/overload"
	"flowsched/internal/replicate"
	"flowsched/internal/sim"
	"flowsched/internal/stats"
	"flowsched/internal/table"
	"flowsched/internal/workload"
)

// HedgeTradeoffConfig controls the hedging trade-off experiment: the same
// overlapping-replication cluster, behind a queue-bound admission policy,
// is run with and without a p-quantile hedge trigger — once under a gray
// fault (one server silently slowed, never marked down) and once under
// pure overload (no fault, offered load past capacity).
type HedgeTradeoffConfig struct {
	M, K       int
	N          int
	Reps       int
	SBias      float64
	Seed       int64
	Load       float64 // offered load of the gray scenario (fraction of m)
	Overload   float64 // offered load of the overload scenario
	GrayFactor float64 // service-time multiplier of the gray server
	MaxQueue   int     // queue-bound admission cap
	Quantile   float64 // hedge trigger quantile (e.g. 0.95)
	MinSamples int     // quantile warm-up
}

// DefaultHedgeTradeoff returns the paper-sized experiment: a 15-server
// cluster at 70% load with one server running 25× slow, hedged at the live
// p95 of the flow-time distribution behind a queue bound of 20, against a
// 130% overload run under the same controls.
func DefaultHedgeTradeoff() HedgeTradeoffConfig {
	return HedgeTradeoffConfig{
		M: 15, K: 3, N: 10000, Reps: 3, SBias: 1, Seed: 1,
		Load: 0.7, Overload: 1.3,
		GrayFactor: 25, MaxQueue: 20,
		Quantile: 0.95, MinSamples: 20,
	}
}

// HedgeTradeoffRow is one scenario×policy cell (medians over repetitions).
type HedgeTradeoffRow struct {
	Scenario   string // "gray" or "overload"
	Policy     string // "no-hedge" or "hedge-p95"
	GoodputPct float64
	Fmax       float64 // admitted max flow
	P99        float64 // admitted p99 flow
	Hedges     float64 // median hedges issued
	CopyWins   float64 // median copy wins
	DupPct     float64 // duplicate work as % of total busy time
}

// HedgeTradeoff measures when speculative duplicate dispatch helps and when
// it hurts. Under a gray fault — a server that runs far slower than its
// forecasts claim but is never marked down — a quantile-triggered hedge
// races a copy of each straggling task on another replica of its processing
// set and the first completion wins: the admitted p99 flow time drops
// multiple-fold for a bounded (<15% of busy time) duplicate-work cost.
// Under pure overload the same trigger misfires on every queue-delayed
// task: the copies occupy queue slots a saturated cluster has none of, the
// admission policy turns real arrivals away to make room for duplicates,
// and goodput collapses. The router is deliberately forecast-blind
// (round-robin): a gray fault is by definition invisible to the scheduler's
// estimates, and the EFT router — which reads true completion forecasts —
// would route around the fault on its own, hiding exactly the tail hedging
// is for.
func HedgeTradeoff(w io.Writer, cfg HedgeTradeoffConfig) ([]HedgeTradeoffRow, error) {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	strat := replicate.Overlapping{K: cfg.K}
	hcfg := &hedge.Config{Quantile: cfg.Quantile, MinSamples: cfg.MinSamples, CancelRunning: true}
	if err := hcfg.Validate(); err != nil {
		return nil, err
	}
	grayPlan := (&faults.Plan{M: cfg.M}).Slow(0, 0, 1e9, cfg.GrayFactor)

	scenarios := []struct {
		name string
		load float64
		plan *faults.Plan
	}{
		{"gray", cfg.Load, grayPlan},
		{"overload", cfg.Overload, nil},
	}
	policies := []struct {
		name string
		cfg  *hedge.Config
	}{
		{"no-hedge", nil},
		{fmt.Sprintf("hedge-p%g", cfg.Quantile*100), hcfg},
	}

	fmt.Fprintf(w, "Hedged execution — when speculative duplicates help and when they hurt\n")
	fmt.Fprintf(w, "m=%d k=%d n=%d overlapping(k=%d), round-robin routing, queue bound %d;\n",
		cfg.M, cfg.K, cfg.N, cfg.K, cfg.MaxQueue)
	fmt.Fprintf(w, "trigger: live p%g flow, cancel-mid-service; gray: %.0f%% load, one server %g× slow;\n",
		cfg.Quantile*100, cfg.Load*100, cfg.GrayFactor)
	fmt.Fprintf(w, "overload: %.0f%% load, no fault; medians over %d reps\n\n",
		cfg.Overload*100, cfg.Reps)

	out := table.New("scenario", "policy", "goodput %", "admitted Fmax", "admitted p99",
		"hedges", "copy wins", "dup %")
	var rows []HedgeTradeoffRow
	for _, sc := range scenarios {
		for _, pol := range policies {
			var goodput, fmax, p99, hedges, wins, dup []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				inst, err := workload.Generate(workload.Config{
					M: cfg.M, N: cfg.N, Rate: workload.RateForLoad(sc.load, cfg.M),
					Weights:  shuffledWeights(cfg.M, cfg.SBias, subRng(cfg.Seed, 41, int64(rep))),
					Strategy: strat,
				}, subRng(cfg.Seed, 42, int64(rep)))
				if err != nil {
					return nil, err
				}
				ocfg := &overload.Config{Admission: overload.QueueBound{MaxQueue: cfg.MaxQueue}}
				arena := arenas.Get().(*sim.Arena)
				_, em, err := arena.RunHedged(inst, &sim.RoundRobinRouter{}, sc.plan,
					sim.RetryPolicy{}, ocfg, nil, pol.cfg, nil)
				if err != nil {
					arenas.Put(arena)
					return nil, err
				}
				flows := em.AdmittedFlows()
				xs := make([]float64, len(flows))
				for i, f := range flows {
					xs[i] = float64(f)
				}
				goodput = append(goodput, em.Goodput()*100)
				fmax = append(fmax, float64(em.AdmittedMaxFlow()))
				p99 = append(p99, stats.Quantile(xs, 0.99))
				hedges = append(hedges, float64(em.HedgesIssued))
				wins = append(wins, float64(em.HedgeWinsCopy))
				dup = append(dup, em.DuplicateRatio()*100)
				arenas.Put(arena)
			}
			row := HedgeTradeoffRow{
				Scenario: sc.name, Policy: pol.name,
				GoodputPct: stats.Median(goodput),
				Fmax:       stats.Median(fmax),
				P99:        stats.Median(p99),
				Hedges:     stats.Median(hedges),
				CopyWins:   stats.Median(wins),
				DupPct:     stats.Median(dup),
			}
			rows = append(rows, row)
			out.AddRow(row.Scenario, row.Policy,
				fmt.Sprintf("%.2f", row.GoodputPct),
				row.Fmax, row.P99,
				fmt.Sprintf("%.0f", row.Hedges),
				fmt.Sprintf("%.0f", row.CopyWins),
				fmt.Sprintf("%.2f", row.DupPct))
		}
	}
	out.Render(w)
	fmt.Fprintln(w, "\nReading: under the gray fault the hedge races each straggler on a healthy")
	fmt.Fprintln(w, "replica and the admitted p99 collapses for a duplicate-work cost under 15%")
	fmt.Fprintln(w, "of busy time (plus a goodput slice spent on the copies' queue slots).")
	fmt.Fprintln(w, "Under pure overload the same trigger duplicates queue-delayed tasks into a")
	fmt.Fprintln(w, "cluster with no spare capacity: admission turns real work away to queue")
	fmt.Fprintln(w, "copies and goodput collapses. Hedge against stragglers, not saturation.")
	return rows, nil
}
