package experiments

import (
	"fmt"
	"io"
	"math"

	"flowsched/internal/core"
	"flowsched/internal/obs"
	"flowsched/internal/overload"
	"flowsched/internal/replicate"
	"flowsched/internal/sim"
	"flowsched/internal/workload"
)

// PostmortemConfig controls the worst-task postmortem: one overloaded
// repetition of the overload-sweep workload per policy, traced with a
// KeepWorst tracer, reported as causal chains.
type PostmortemConfig struct {
	M, K      int
	N         int
	SBias     float64
	Seed      int64
	Load      float64 // offered load as a fraction of m (push past λ*)
	Deadline  float64 // admission budget D of the deadline policy
	Watermark float64 // shed watermark (max queue age)
	Worst     int     // traces reported per policy
}

// DefaultPostmortem mirrors the overload sweep at its worst sampled point:
// 130% offered load, deadline 10, watermark 8, five traces per policy.
func DefaultPostmortem() PostmortemConfig {
	return PostmortemConfig{
		M: 15, K: 3, N: 10000, SBias: 1, Seed: 1,
		Load: 1.3, Deadline: 10, Watermark: 8, Worst: 5,
	}
}

// Postmortem re-runs the overload sweep's overloaded cell with a span
// tracer attached (obs.Tracer, KeepWorst retention) and prints the causal
// chain of each policy's worst-flow tasks: when the task arrived, every
// dispatch attempt with its forecast interval and outcome, and how it ended.
// Where the sweep's table says "the tail got worse", the postmortem says
// which tasks are the tail and what happened to each of them — with O(k)
// trace memory no matter how large the run.
func Postmortem(w io.Writer, cfg PostmortemConfig) error {
	if cfg.Worst < 1 {
		cfg.Worst = 5
	}
	strat := replicate.Overlapping{K: cfg.K}
	policies := []struct {
		name string
		mk   func() *overload.Config
	}{
		{"admit-all", func() *overload.Config { return nil }},
		{"deadline", func() *overload.Config {
			return &overload.Config{Admission: overload.DeadlineAdmit{D: core.Time(cfg.Deadline)}}
		}},
		{"shed-stretch", func() *overload.Config {
			return &overload.Config{Shedder: &overload.Shedder{
				Policy: overload.DropLargestStretch, Watermark: core.Time(cfg.Watermark), Seed: cfg.Seed}}
		}},
	}

	fmt.Fprintf(w, "Postmortem — causal chains of the %d worst-flow tasks per overload policy\n", cfg.Worst)
	fmt.Fprintf(w, "m=%d k=%d n=%d overlapping(k=%d), offered load %.0f%% of m (past capacity)\n\n",
		cfg.M, cfg.K, cfg.N, cfg.K, cfg.Load*100)

	for pi, pol := range policies {
		inst, err := workload.Generate(workload.Config{
			M: cfg.M, N: cfg.N, Rate: workload.RateForLoad(cfg.Load, cfg.M),
			Weights:  shuffledWeights(cfg.M, cfg.SBias, subRng(cfg.Seed, 31, 0)),
			Strategy: strat,
		}, subRng(cfg.Seed, 33, int64(pi)))
		if err != nil {
			return err
		}
		tracer := obs.NewTracer(obs.KeepWorst(cfg.Worst))
		arena := arenas.Get().(*sim.Arena)
		_, _, err = arena.RunGuarded(inst, sim.EFTRouter{}, nil, sim.RetryPolicy{}, pol.mk(), tracer)
		arenas.Put(arena)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "policy %s: %d worst of %d tasks (makespan %.4g)\n",
			pol.name, cfg.Worst, inst.N(), float64(tracer.Makespan()))
		for _, tr := range tracer.Worst(cfg.Worst) {
			fmt.Fprintf(w, "  %s\n", causalChain(tr))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "Reading: admit-all's tail is pure queueing (one late attempt after a long")
	fmt.Fprintln(w, "wait); the controlled policies convert that wait into explicit rejections")
	fmt.Fprintln(w, "and sheds, so their worst chains end early instead of late.")
	return nil
}

// causalChain renders one task trace as a single-line causal chain.
func causalChain(tr *obs.TaskTrace) string {
	flow := "unfinished"
	if !math.IsNaN(float64(tr.Flow)) {
		flow = fmt.Sprintf("flow %.4g", float64(tr.Flow))
	}
	s := fmt.Sprintf("T%-6d %-9s %-12s released t=%.4g", tr.Task, tr.State, flow, float64(tr.Release))
	for k, a := range tr.Attempts {
		s += fmt.Sprintf("; attempt %d on M%d [%.4g,%.4g)", k+1, a.Server+1, float64(a.Start), float64(a.End))
		switch a.Outcome {
		case obs.AttemptCrashed:
			s += fmt.Sprintf(" crashed t=%.4g", float64(a.AbortAt))
		case obs.AttemptHandedOff:
			s += fmt.Sprintf(" handed off t=%.4g", float64(a.AbortAt))
		case obs.AttemptShed:
			s += fmt.Sprintf(" shed t=%.4g", float64(a.AbortAt))
		}
	}
	switch {
	case tr.State == obs.TraceRejected:
		s += fmt.Sprintf("; rejected at t=%.4g (%s)", float64(tr.EndAt), tr.Reason)
	case tr.State == obs.TraceShed && len(tr.Attempts) == 0:
		s += fmt.Sprintf("; shed before dispatch at t=%.4g (%s)", float64(tr.EndAt), tr.Reason)
	case tr.State == obs.TraceCompleted:
		s += fmt.Sprintf("; completed t=%.4g", float64(tr.EndAt))
	case tr.State == obs.TraceDropped:
		s += fmt.Sprintf("; dropped t=%.4g", float64(tr.EndAt))
	}
	return s
}
