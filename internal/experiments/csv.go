package experiments

import (
	"fmt"
	"io"
	"sort"

	"flowsched/internal/table"
)

// WriteCSV emits the Figure 10 sweep in long format
// (strategy,s,k,max_load_pct), ready for external plotting.
func (d *Fig10Data) WriteCSV(w io.Writer) {
	t := table.New("strategy", "s", "k", "max_load_pct")
	for i, s := range d.Ss {
		for j, k := range d.Ks {
			t.AddRow("overlapping", fmt.Sprintf("%.2f", s), k, d.Overlapping[i][j])
			t.AddRow("disjoint", fmt.Sprintf("%.2f", s), k, d.Disjoint[i][j])
		}
	}
	t.RenderCSV(w)
}

// WriteRatioCSV emits the Figure 10b gain matrix in long format
// (s,k,ratio).
func (d *Fig10Data) WriteRatioCSV(w io.Writer) {
	r := d.Ratio()
	t := table.New("s", "k", "ratio")
	for i, s := range d.Ss {
		for j, k := range d.Ks {
			t.AddRow(fmt.Sprintf("%.2f", s), k, r[i][j])
		}
	}
	t.RenderCSV(w)
}

// WriteCSV emits the Figure 11 curves in long format
// (case,heuristic,strategy,load_pct,fmax) followed by the LP verticals as
// (case,strategy,max_load_pct) rows in a second block separated by a blank
// line.
func (d *Fig11Data) WriteCSV(w io.Writer) {
	t := table.New("case", "heuristic", "strategy", "load_pct", "fmax")
	for _, p := range d.Points {
		t.AddRow(p.Case.String(), p.Heuristic, p.Strategy, p.LoadPct, p.Fmax)
	}
	t.RenderCSV(w)
	fmt.Fprintln(w)
	keys := make([]string, 0, len(d.MaxLoad))
	for key := range d.MaxLoad {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	v := table.New("case_strategy", "theoretical_max_load_pct")
	for _, key := range keys {
		v.AddRow(key, d.MaxLoad[key])
	}
	v.RenderCSV(w)
}
