package experiments

import (
	"fmt"
	"io"

	"flowsched/internal/parallel"
	"flowsched/internal/popularity"
	"flowsched/internal/replicate"
	"flowsched/internal/sim"
	"flowsched/internal/stats"
	"flowsched/internal/table"
	"flowsched/internal/workload"
)

// WritesConfig controls the write fan-out extension: the paper models
// reads only; real stores also write to every replica, so larger k helps
// reads and hurts writes.
type WritesConfig struct {
	M, K      int
	N         int // requests per run
	Reps      int
	Rate      float64 // request rate (before write fan-out)
	SBias     float64
	Fractions []float64 // write fractions to sweep
	Seed      int64
}

// DefaultWrites returns the default sweep: 40% base load so the fan-out
// head-room is visible before saturation.
func DefaultWrites() WritesConfig {
	return WritesConfig{
		M: 15, K: 3, N: 10000, Reps: 5, Rate: 0.4 * 15, SBias: 1,
		Fractions: []float64{0, 0.1, 0.25, 0.5, 1.0}, Seed: 1,
	}
}

// WritesRow is one write-fraction outcome.
type WritesRow struct {
	WriteFraction        float64
	EffLoadOv, EffLoadDj float64 // effective machine load per strategy
	FmaxOv, FmaxDj       float64 // median Fmax per strategy (EFT-Min)
}

// WriteFanout sweeps the write fraction and reports the effective load and
// the simulated Fmax for both replication strategies under EFT-Min. The
// shape to expect: at fraction 0 this is the paper's model (overlapping
// wins); as writes dominate, the fan-out multiplies the load by up to k
// and both strategies saturate — replication stops being free.
func WriteFanout(w io.Writer, cfg WritesConfig) ([]WritesRow, error) {
	strategies := map[string]replicate.Strategy{
		"overlapping": replicate.Overlapping{K: cfg.K},
		"disjoint":    replicate.Disjoint{K: cfg.K},
	}
	var rows []WritesRow
	out := table.New("write %", "eff. load ov %", "eff. load dj %", "Fmax overlap", "Fmax disjoint")
	for _, wf := range cfg.Fractions {
		row := WritesRow{WriteFraction: wf}
		for name, strat := range strategies {
			wf, strat := wf, strat
			// Repetitions fan out on the worker pool; each derives its
			// randomness from (Seed, rep, wf), so the parallel sweep is
			// byte-identical to the sequential one.
			fmaxes, err := parallel.MapErr(cfg.Reps, 0, func(rep int) (float64, error) {
				rng := subRng(cfg.Seed, 11, int64(rep), int64(wf*1000))
				weights := popularity.Weights(popularity.Shuffled, cfg.M, cfg.SBias, rng)
				mcfg := workload.MixedConfig{
					M: cfg.M, N: cfg.N, Rate: cfg.Rate,
					WriteFraction: wf, Weights: weights, Strategy: strat,
				}
				inst, err := workload.GenerateMixed(mcfg, rng)
				if err != nil {
					return 0, err
				}
				_, metrics, err := sim.Run(inst, sim.EFTRouter{})
				if err != nil {
					return 0, err
				}
				return float64(metrics.MaxFlow()), nil
			})
			if err != nil {
				return nil, err
			}
			med := stats.Median(fmaxes)
			eff := 100 * workload.EffectiveLoad(workload.MixedConfig{
				M: cfg.M, Rate: cfg.Rate, WriteFraction: wf, Strategy: strat,
			})
			if name == "overlapping" {
				row.FmaxOv, row.EffLoadOv = med, eff
			} else {
				row.FmaxDj, row.EffLoadDj = med, eff
			}
		}
		rows = append(rows, row)
		out.AddRow(fmt.Sprintf("%.0f", wf*100),
			fmt.Sprintf("%.0f", row.EffLoadOv), fmt.Sprintf("%.0f", row.EffLoadDj),
			row.FmaxOv, row.FmaxDj)
	}
	fmt.Fprintf(w, "Write fan-out — Fmax vs write fraction (m=%d, k=%d, request rate %.1f, Shuffled s=%v, EFT-Min):\n",
		cfg.M, cfg.K, cfg.Rate, cfg.SBias)
	out.Render(w)
	fmt.Fprintln(w, "\nreads see any replica (the paper's model); writes fan out to every replica, so the")
	fmt.Fprintln(w, "effective load grows toward k× the request rate — replication is not free once writes dominate.")
	return rows, nil
}
