package experiments

import (
	"fmt"
	"io"
	"math"

	"flowsched/internal/audit"
	"flowsched/internal/core"
	"flowsched/internal/elastic"
	"flowsched/internal/overload"
	"flowsched/internal/replicate"
	"flowsched/internal/sim"
	"flowsched/internal/stats"
	"flowsched/internal/table"
)

// AutoscaleConfig controls the elastic-provisioning experiment: one bursty
// trace (base load, a burst window, base load again) served by three
// provisioning policies on the same slot capacity — statically provisioned
// for the peak, statically provisioned for the mean, and autoscaled between
// them by the estimator-driven controller.
type AutoscaleConfig struct {
	M, K int
	Seed int64
	// BaseLoad / BurstLoad are offered load as a fraction of m.
	BaseLoad, BurstLoad float64
	// BaseTime is the duration of each base phase (before and after the
	// burst); BurstTime the duration of the burst window.
	BaseTime, BurstTime float64
	// SLO is the admitted-Fmax target the provisioning is judged against.
	SLO float64
	// WarmUp is the joiner setup delay of the elastic cells.
	WarmUp float64
	// MeanUtil is the target utilization used to size the static-for-mean
	// cell (members = mean rate / MeanUtil).
	MeanUtil float64
}

// DefaultAutoscale returns the paper-sized experiment: a 12-slot cluster,
// base load 25% with a burst to 85%, SLO of 15 service units.
func DefaultAutoscale() AutoscaleConfig {
	return AutoscaleConfig{
		M: 12, K: 3, Seed: 1,
		BaseLoad: 0.25, BurstLoad: 0.85,
		BaseTime: 120, BurstTime: 60,
		SLO: 15, WarmUp: 1, MeanUtil: 0.8,
	}
}

// AutoscaleRow is one provisioning cell on the shared trace.
type AutoscaleRow struct {
	Cell         string
	Members      string // membership trajectory (initial→peak→final)
	MachineHours float64
	Fmax         float64 // admitted max flow
	P99          float64
	ScaleUps     int
	ScaleDowns   int
	Handoffs     int
	SLOOk        bool
}

// burstyTrace draws the shared workload: unit tasks on overlapping-k sets,
// Poisson arrivals at the base rate, then the burst rate, then the base rate
// again.
func burstyTrace(cfg AutoscaleConfig) *core.Instance {
	rng := subRng(cfg.Seed, 41)
	strat := replicate.Overlapping{K: cfg.K}
	m := cfg.M
	phases := []struct{ rate, dur float64 }{
		{cfg.BaseLoad * float64(m), cfg.BaseTime},
		{cfg.BurstLoad * float64(m), cfg.BurstTime},
		{cfg.BaseLoad * float64(m), cfg.BaseTime},
	}
	var tasks []core.Task
	t := 0.0
	for _, ph := range phases {
		end := t + ph.dur
		for {
			t += rng.ExpFloat64() / ph.rate
			if t >= end {
				t = end
				break
			}
			primary := rng.Intn(m)
			tasks = append(tasks, core.Task{
				Release: core.Time(t), Proc: 1,
				Set: strat.Set(primary, m), Key: primary,
			})
		}
	}
	return core.NewInstance(m, tasks)
}

// AutoscaleSweep runs the elastic-provisioning comparison: the same bursty
// trace under static-peak, static-mean and autoscaled membership, all through
// sim.RunElastic on the same m-slot ring, each cell audited (including the
// membership invariants). The headline — asserted by the experiments tests —
// is that the autoscaler holds the admitted Fmax within the SLO at fewer
// machine-hours than peak provisioning, while static-for-mean blows through
// the SLO during the burst.
func AutoscaleSweep(w io.Writer, cfg AutoscaleConfig) ([]AutoscaleRow, error) {
	def := DefaultAutoscale()
	if cfg.M == 0 {
		cfg = def
	}
	if cfg.BaseLoad == 0 {
		cfg.BaseLoad, cfg.BurstLoad = def.BaseLoad, def.BurstLoad
	}
	if cfg.BaseTime == 0 {
		cfg.BaseTime, cfg.BurstTime = def.BaseTime, def.BurstTime
	}
	if cfg.SLO == 0 {
		cfg.SLO = def.SLO
	}
	if cfg.WarmUp == 0 {
		cfg.WarmUp = def.WarmUp
	}
	if cfg.MeanUtil == 0 {
		cfg.MeanUtil = def.MeanUtil
	}
	m := cfg.M
	inst := burstyTrace(cfg)

	total := 2*cfg.BaseTime + cfg.BurstTime
	meanRate := (2*cfg.BaseTime*cfg.BaseLoad + cfg.BurstTime*cfg.BurstLoad) * float64(m) / total
	mMean := int(math.Ceil(meanRate / cfg.MeanUtil))
	if mMean < cfg.K {
		mMean = cfg.K
	}
	if mMean > m {
		mMean = m
	}

	auto := func() *elastic.Config {
		return &elastic.Config{
			Initial: mMean, Min: cfg.K, Max: m, WarmUp: core.Time(cfg.WarmUp),
			Auto: &elastic.Autoscaler{
				Guard:           overload.NewEstimatorCapacity(float64(m)),
				MachineCapacity: 1, // unit tasks: one machine sustains rate 1
				UpUtil:          0.85,
				DownUtil:        0.6,
				Sustain:         1,
				Cooldown:        2,
				Step:            2,
			},
		}
	}
	cells := []struct {
		name string
		ecfg *elastic.Config
	}{
		{"static-peak", &elastic.Config{Initial: m, Min: m, Max: m}},
		{"static-mean", &elastic.Config{Initial: mMean, Min: mMean, Max: mMean}},
		{"autoscaled", auto()},
	}

	fmt.Fprintf(w, "Elastic provisioning — machine-hours vs admitted Fmax on a bursty trace\n")
	fmt.Fprintf(w, "capacity %d slots, overlapping(k=%d), n=%d tasks; base ρ=%.0f%%, burst ρ=%.0f%% for %v of %v;\n",
		m, cfg.K, inst.N(), cfg.BaseLoad*100, cfg.BurstLoad*100, cfg.BurstTime, total)
	fmt.Fprintf(w, "mean rate %.2f → static-mean %d machines; SLO Fmax ≤ %v, warm-up %v\n\n",
		meanRate, mMean, cfg.SLO, cfg.WarmUp)

	out := table.New("provisioning", "members", "machine-hours", "admitted Fmax", "p99",
		"scale-ups", "scale-downs", "handoffs", "SLO ok")
	var rows []AutoscaleRow
	// The cells run sequentially and each one's metrics are reduced to a row
	// before the next run, so a single arena serves all three.
	arena := arenas.Get().(*sim.Arena)
	defer arenas.Put(arena)
	for _, cell := range cells {
		s, em, err := arena.RunElastic(inst, sim.EFTRouter{}, nil, sim.RetryPolicy{}, nil, cell.ecfg, nil)
		if err != nil {
			return nil, fmt.Errorf("autoscale: %s: %w", cell.name, err)
		}
		comps := make([]core.Time, inst.N())
		for i, task := range inst.Tasks {
			comps[i] = task.Release + em.Flows[i]
		}
		report := audit.Audit(inst, s, audit.Options{
			Completions:    comps,
			Dropped:        em.Dropped,
			Membership:     &audit.MembershipInfo{Membership: em.Membership, Dispatched: em.Dispatched},
			SkipLowerBound: true,
		})
		if !report.Ok() {
			return nil, fmt.Errorf("autoscale: %s: audit: %v", cell.name, report.Violations[0])
		}
		flows := em.AdmittedFlows()
		xs := make([]float64, len(flows))
		for i, f := range flows {
			xs[i] = float64(f)
		}
		peak, final := em.Membership.Initial, em.Membership.Final()
		for _, ch := range em.Membership.Changes {
			if ch.Members > peak {
				peak = ch.Members
			}
		}
		row := AutoscaleRow{
			Cell:         cell.name,
			Members:      fmt.Sprintf("%d→%d→%d", em.Membership.Initial, peak, final),
			MachineHours: float64(em.MachineHours),
			Fmax:         float64(em.AdmittedMaxFlow()),
			P99:          stats.Quantile(xs, 0.99),
			ScaleUps:     em.ScaleUps,
			ScaleDowns:   em.ScaleDowns,
			Handoffs:     em.Handoffs,
			SLOOk:        float64(em.AdmittedMaxFlow()) <= cfg.SLO,
		}
		rows = append(rows, row)
		slo := "yes"
		if !row.SLOOk {
			slo = "NO"
		}
		out.AddRow(row.Cell, row.Members,
			fmt.Sprintf("%.0f", row.MachineHours),
			fmt.Sprintf("%.2f", row.Fmax),
			fmt.Sprintf("%.2f", row.P99),
			row.ScaleUps, row.ScaleDowns, row.Handoffs, slo)
	}
	out.Render(w)
	fmt.Fprintln(w, "\nReading: static-peak holds the SLO by paying for the burst the whole run;")
	fmt.Fprintln(w, "static-mean pays the least but its backlog during the burst blows through the")
	fmt.Fprintln(w, "SLO; the autoscaler grows into the burst (warm-up included) and drains back")
	fmt.Fprintln(w, "out, holding the SLO at a fraction of the peak machine-hours. Every cell's")
	fmt.Fprintln(w, "schedule is auditor-checked, membership invariants included.")
	return rows, nil
}
