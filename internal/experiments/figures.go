package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"flowsched/internal/adversary"
	"flowsched/internal/core"
	"flowsched/internal/popularity"
	"flowsched/internal/psets"
	"flowsched/internal/replicate"
	"flowsched/internal/sched"
	"flowsched/internal/table"
)

// Figure1 demonstrates the reduction graph of processing set structures
// (Figure 1) by classifying generated witnesses of each structure and
// verifying the implications disjoint → nested, inclusive → nested, and
// nested → interval after renumbering.
func Figure1(w io.Writer, m int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	fmt.Fprintln(w, "Figure 1 — reduction graph of processing set structures (A → B: A is a special case of B):")
	fmt.Fprintln(w, "  disjoint  → nested;  inclusive → nested;  nested → interval (after machine renumbering);  interval → Mi")
	fmt.Fprintln(w)

	out := table.New("witness family", "disjoint", "inclusive", "nested", "interval(as given)", "interval(after renumbering)")
	report := func(name string, f psets.Family) error {
		renum := "n/a"
		if f.IsNested() {
			perm, err := f.IntervalOrder()
			if err != nil {
				return err
			}
			ok := true
			for _, s := range f.Renumber(perm).Sets {
				if !s.IsContiguous() {
					ok = false
				}
			}
			renum = fmt.Sprintf("%v", ok)
		}
		out.AddRow(name, f.IsDisjoint(), f.IsInclusive(), f.IsNested(), f.IsInterval(), renum)
		return nil
	}
	if err := report("disjoint blocks", psets.RandomDisjointPartition(m, 3)); err != nil {
		return err
	}
	if err := report("inclusive chain", psets.RandomInclusiveChain(m, 4, rng)); err != nil {
		return err
	}
	if err := report("nested (laminar)", psets.RandomNested(m, rng)); err != nil {
		return err
	}
	if err := report("overlapping intervals", psets.RandomIntervals(m, 3, m, rng)); err != nil {
		return err
	}
	if err := report("general subsets", psets.RandomGeneral(m, m, rng)); err != nil {
		return err
	}
	out.Render(w)
	return nil
}

// Figure3 renders the EFT-Min schedule of the Theorem 8 adversary stream
// (the paper shows m=6, k=3 over t = 0..3) as an ASCII Gantt chart.
func Figure3(w io.Writer, m, k, steps int) error {
	if steps <= 0 {
		steps = 4
	}
	inst, s := adversary.StreamSchedule(sched.MinTie{}, m, k, steps)
	if err := s.Validate(); err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 3 — EFT-Min schedule of the adversary stream, m=%d, k=%d, t=0..%d\n", m, k, steps-1)
	fmt.Fprintf(w, "(each round releases %d typed tasks then %d type-1 tasks; one glyph per task, '.' idle)\n\n", m-k, k)
	fmt.Fprint(w, s.Gantt(1))
	fmt.Fprintf(w, "\nFmax after %d rounds: %v (bound: m-k+1 = %d)\n", steps, s.MaxFlow(), m-k+1)
	_ = inst
	return nil
}

// Figure4 prints the EFT-Min schedule profile w_t against the stable
// profile w_τ(j) = min(m−j, m−k) (Figure 4 shows them mid-convergence).
func Figure4(w io.Writer, m, k int) error {
	steps := m * m * m
	profiles := adversary.StreamProfiles(sched.MinTie{}, m, k, steps)
	stable := adversary.StableProfile(m, k)

	// Locate the convergence time.
	conv := -1
	for t, prof := range profiles {
		eq := true
		for j := range prof {
			if prof[j] != stable[j] {
				eq = false
				break
			}
		}
		if eq {
			conv = t
			break
		}
	}
	fmt.Fprintf(w, "Figure 4 — schedule profile w_t vs stable profile w_τ (m=%d, k=%d)\n\n", m, k)
	out := table.New("machine", "w_t (t=1)", "w_t (mid)", "w_τ (stable)")
	mid := conv / 2
	if mid < 1 {
		mid = 1
	}
	for j := 0; j < m; j++ {
		out.AddRow(fmt.Sprintf("M%d", j+1), profiles[1][j], profiles[mid][j], stable[j])
	}
	out.Render(w)
	if conv >= 0 {
		fmt.Fprintf(w, "\nprofile reaches w_τ at t=%d and stays there (Lemmas 3-4)\n", conv)
	} else {
		fmt.Fprintf(w, "\nprofile did not reach w_τ within %d rounds\n", steps)
	}
	return nil
}

// Figure8 prints the per-machine load distribution λ·P(E_j) of the three
// popularity cases (the paper shows m=6, λ=m, s=1).
func Figure8(w io.Writer, m int, s float64, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	lambda := float64(m)
	uni := popularity.Weights(popularity.Uniform, m, s, nil)
	wc := popularity.Weights(popularity.Worst, m, s, nil)
	sh := popularity.Weights(popularity.Shuffled, m, s, rng)

	fmt.Fprintf(w, "Figure 8 — load distribution λ·P(E_j) with m=%d, λ=m, s=%v\n\n", m, s)
	out := table.New("machine", "Uniform", "Worst-case", "Shuffled")
	for j := 0; j < m; j++ {
		out.AddRow(fmt.Sprintf("M%d", j+1), lambda*uni[j], lambda*wc[j], lambda*sh[j])
	}
	out.Render(w)
	fmt.Fprintf(w, "\nmax machine load: Uniform %.3g, Worst-case %.3g, Shuffled %.3g (loads > 1 saturate without replication)\n",
		lambda*maxOf(uni), lambda*maxOf(wc), lambda*maxOf(sh))
	return nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Figure9 prints the replication strategy example of Figure 9: the
// processing set of every primary under the overlapping and disjoint
// strategies.
func Figure9(w io.Writer, m, k int) error {
	fmt.Fprintf(w, "Figure 9 — replication strategies, m=%d, k=%d\n\n", m, k)
	out := table.New("primary", "no replication", "disjoint", "overlapping")
	ov := replicate.Overlapping{K: k}
	dj := replicate.Disjoint{K: k}
	no := replicate.None{}
	for u := 0; u < m; u++ {
		out.AddRow(fmt.Sprintf("M%d", u+1),
			no.Set(u, m).String(), dj.Set(u, m).String(), ov.Set(u, m).String())
	}
	out.Render(w)
	return nil
}

// mustValidate panics if a schedule is invalid; experiment drivers use it
// where invalidity means a library bug rather than bad input.
func mustValidate(s *core.Schedule) {
	if err := s.Validate(); err != nil {
		panic(err)
	}
}
