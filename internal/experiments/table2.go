package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"flowsched/internal/adversary"
	"flowsched/internal/core"
	"flowsched/internal/offline"
	"flowsched/internal/sched"
	"flowsched/internal/table"
)

// Table2Config controls the adversary runs that regenerate Table 2.
type Table2Config struct {
	MPrime int   // machines for the logarithmic bounds (Theorems 3-5)
	M      int   // machines for the interval bounds (Theorems 8-10)
	K      int   // set size
	Seed   int64 // randomness for EFT-Rand and the disjoint verification
	Trials int   // random instances for the Corollary 1 row
}

// DefaultTable2 returns the paper-flavored configuration (m=16 for the
// logarithmic rows, m=15 and k=3 as in Section 7 for the interval rows).
func DefaultTable2() Table2Config {
	return Table2Config{MPrime: 16, M: 15, K: 3, Seed: 1, Trials: 40}
}

// Table2Row is one regenerated row of Table 2.
type Table2Row struct {
	Structure string
	Algorithm string
	Kind      string  // "lower bound" or "upper bound"
	Theory    float64 // the stated guarantee
	Measured  float64 // measured ratio (adversary) or worst observed ratio
	Holds     bool
}

// Table2 regenerates Table 2: it runs every lower-bound adversary of
// Section 6 against the matching scheduler and verifies the Corollary 1
// upper bound on random disjoint instances.
func Table2(w io.Writer, cfg Table2Config) ([]Table2Row, error) {
	var rows []Table2Row
	add := func(structure, alg, kind string, theory, measured float64, holds bool) {
		rows = append(rows, Table2Row{structure, alg, kind, theory, measured, holds})
	}

	// Theorem 3: inclusive, immediate dispatch.
	r3, err := adversary.Inclusive(sched.NewEFT(sched.MinTie{}), cfg.MPrime, 0)
	if err != nil {
		return nil, err
	}
	add("inclusive", "Immediate Dispatch (EFT-Min)", "lower bound",
		r3.TheoryRatio, r3.Ratio, r3.Ratio >= r3.TheoryRatio-0.01)

	// Theorem 4: |Mi| = k, immediate dispatch.
	r4, err := adversary.FixedSizeK(sched.NewEFT(sched.MinTie{}), cfg.MPrime, cfg.K, 0)
	if err != nil {
		return nil, err
	}
	add(fmt.Sprintf("|Mi| = %d", cfg.K), "Immediate Dispatch (EFT-Min)", "lower bound",
		r4.TheoryRatio, r4.Ratio, r4.Ratio >= r4.TheoryRatio-0.01)

	// Theorem 5: nested, any online.
	r5, err := adversary.Nested(sched.NewEFT(sched.MinTie{}), cfg.MPrime)
	if err != nil {
		return nil, err
	}
	add("nested", "Online (EFT-Min)", "lower bound",
		r5.TheoryRatio, r5.Ratio, r5.Ratio >= r5.TheoryRatio-1e-9)

	// Corollary 1: disjoint |Mi| = k, EFT is (3 − 2/k)-competitive.
	worst, err := disjointWorstRatio(cfg)
	if err != nil {
		return nil, err
	}
	bound := 3 - 2/float64(cfg.K)
	add(fmt.Sprintf("disjoint, |Mi| = %d", cfg.K), "EFT", "upper bound",
		bound, worst, worst <= bound+1e-9)

	// Theorem 7: fixed-size interval, any online.
	r7, err := adversary.IntervalAnyOnline(sched.NewEFT(sched.MinTie{}), 1000)
	if err != nil {
		return nil, err
	}
	add("interval, |Mi| = 2", "Online (EFT-Min)", "lower bound",
		r7.TheoryRatio, r7.Ratio, r7.Ratio >= 2-2/1000.0)

	// Theorem 8: fixed-size interval, EFT-Min.
	r8, err := adversary.EFTStream(sched.MinTie{}, cfg.M, cfg.K, 0)
	if err != nil {
		return nil, err
	}
	add(fmt.Sprintf("interval, |Mi| = %d", cfg.K), "EFT-Min", "lower bound",
		r8.TheoryRatio, r8.Ratio, r8.Ratio >= r8.TheoryRatio)

	// Theorem 9: fixed-size interval, EFT-Rand.
	r9, err := adversary.EFTStream(sched.RandTie{Rng: rand.New(rand.NewSource(cfg.Seed))},
		cfg.M, cfg.K, 2*cfg.M*cfg.M*cfg.M)
	if err != nil {
		return nil, err
	}
	add(fmt.Sprintf("interval, |Mi| = %d", cfg.K), "EFT-Rand", "lower bound",
		r9.TheoryRatio, r9.Ratio, r9.Ratio >= r9.TheoryRatio)

	// Theorem 10: fixed-size interval, EFT with an adversarial (Max)
	// tie-break, on the padded stream.
	r10, err := adversary.EFTStreamPadded(sched.MaxTie{}, cfg.M, cfg.K, 0)
	if err != nil {
		return nil, err
	}
	add(fmt.Sprintf("interval, |Mi| = %d", cfg.K), "EFT (any tie-break: Max)", "lower bound",
		r10.TheoryRatio, r10.Ratio, r10.AlgFmax >= core.Time(cfg.M-cfg.K+1))

	fmt.Fprintf(w, "Table 2 — competitive ratios for P|online-r_i,M_i|Fmax (m'=%d for log bounds; m=%d, k=%d for interval bounds):\n",
		cfg.MPrime, cfg.M, cfg.K)
	out := table.New("Processing Set Structure", "Algorithm", "Kind", "Theory", "Measured", "Holds")
	for _, r := range rows {
		out.AddRow(r.Structure, r.Algorithm, r.Kind, r.Theory, r.Measured, r.Holds)
	}
	out.Render(w)
	return rows, nil
}

// disjointWorstRatio measures the worst EFT/OPT ratio over random disjoint
// size-k instances (Corollary 1 verification).
func disjointWorstRatio(cfg Table2Config) (float64, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	k := cfg.K
	blocks := 2
	m := k * blocks
	worst := 0.0
	for trial := 0; trial < cfg.Trials; trial++ {
		n := 4 + rng.Intn(6)
		tasks := make([]core.Task, n)
		for i := range tasks {
			b := rng.Intn(blocks)
			tasks[i] = core.Task{
				Release: rng.Float64() * 3,
				Proc:    0.2 + rng.Float64()*2,
				Set:     core.Interval(b*k, b*k+k-1),
			}
		}
		inst := core.NewInstance(m, tasks)
		eft, err := sched.NewEFT(sched.MinTie{}).Run(inst)
		if err != nil {
			return 0, err
		}
		opt, err := offline.BruteForce(inst)
		if err != nil {
			return 0, err
		}
		if r := float64(eft.MaxFlow() / opt.MaxFlow()); r > worst {
			worst = r
		}
	}
	return worst, nil
}
