package experiments

import (
	"io"
	"strings"
	"testing"

	"flowsched/internal/sim"
)

func smallFaultTolerance() FaultToleranceConfig {
	return FaultToleranceConfig{
		M: 8, K: 3, N: 800, Reps: 2, SBias: 1, Load: 0.5, Seed: 1,
		MTTR:  20,
		MTBFs: []float64{0, 200},
		Pol:   sim.RetryPolicy{MaxAttempts: 3},
	}
}

func TestFaultToleranceSweep(t *testing.T) {
	rows, err := FaultTolerance(io.Discard, smallFaultTolerance())
	if err != nil {
		t.Fatal(err)
	}
	// 3 strategies × 2 routers × 2 intensities.
	if len(rows) != 12 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	byKey := map[string]FaultToleranceRow{}
	for _, r := range rows {
		byKey[r.Strategy+"|"+r.Router+"|"+fmtMTBF(r.MTBF)] = r
		if r.Availability < 0 || r.Availability > 100 {
			t.Errorf("%s/%s: availability %v out of range", r.Strategy, r.Router, r.Availability)
		}
		if r.MTBF == 0 {
			if r.Availability != 100 || r.Retries != 0 || r.DropPct != 0 || r.ParkedPct != 0 {
				t.Errorf("%s/%s healthy row reports fault activity: %+v", r.Strategy, r.Router, r)
			}
			if r.SpikeFmax != 0 {
				t.Errorf("%s/%s healthy row has a recovery spike", r.Strategy, r.Router)
			}
		} else if r.Availability >= 100 {
			t.Errorf("%s/%s mtbf=%v: no downtime recorded", r.Strategy, r.Router, r.MTBF)
		}
	}
	// Without replication, crashes must park requests (|M_i| = 1 means no
	// failover target); with replication, almost all requests fail over.
	none := byKey["none|EFT-Min|200"]
	if none.ParkedPct <= 0 {
		t.Errorf("no-replication run parked nothing under faults: %+v", none)
	}
	for _, strat := range []string{"disjoint(k=3)", "overlapping(k=3)"} {
		r := byKey[strat+"|EFT-Min|200"]
		if r.ParkedPct > none.ParkedPct {
			t.Errorf("%s parks more than no replication: %v > %v", strat, r.ParkedPct, none.ParkedPct)
		}
	}
}

func fmtMTBF(v float64) string {
	if v == 0 {
		return "0"
	}
	return "200"
}

func TestFaultToleranceRendersTable(t *testing.T) {
	var sb strings.Builder
	if _, err := FaultTolerance(&sb, smallFaultTolerance()); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"avail %", "spike Fmax", "drop %", "overlapping(k=3)"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}
