package obs

import (
	"testing"
)

func TestObserveExemplarLargestWins(t *testing.T) {
	h := NewHistogram()
	// Same bucket (values within one growth factor): the larger value's task
	// becomes the exemplar regardless of order.
	h.ObserveExemplar(10.0, 1)
	h.ObserveExemplar(10.5, 2)
	h.ObserveExemplar(10.2, 3)
	if _, task := h.QuantileExemplar(1); task != 2 {
		t.Fatalf("bucket exemplar task = %d, want 2 (largest value)", task)
	}
	// Exact tie: first seen wins, so replays are deterministic.
	h2 := NewHistogram()
	h2.ObserveExemplar(5, 7)
	h2.ObserveExemplar(5, 8)
	if _, task := h2.QuantileExemplar(1); task != 7 {
		t.Fatalf("tie exemplar task = %d, want 7 (first seen)", task)
	}
}

func TestQuantileExemplar(t *testing.T) {
	h := NewHistogram()
	// Values far apart land in distinct buckets: the quantile names the task
	// of its own bucket.
	h.ObserveExemplar(1, 10)
	h.ObserveExemplar(100, 20)
	h.ObserveExemplar(10000, 30)
	v, task := h.QuantileExemplar(1)
	if task != 30 || v != h.Quantile(1) {
		t.Fatalf("p100 = (%v, T%d), want (%v, T30)", v, task, h.Quantile(1))
	}
	if _, task := h.QuantileExemplar(0); task != 10 {
		t.Fatalf("p0 task = %d, want 10", task)
	}
	if _, task := h.QuantileExemplar(0.5); task != 20 {
		t.Fatalf("p50 task = %d, want 20", task)
	}
	if h.Exemplars() != 3 {
		t.Fatalf("Exemplars() = %d, want 3", h.Exemplars())
	}
}

func TestQuantileExemplarZeroBucket(t *testing.T) {
	h := NewHistogram()
	h.ObserveExemplar(0, 5)
	h.ObserveExemplar(-1, 6) // ≤ 0 shares the zero bucket; 0 > −1 keeps T5
	if _, task := h.QuantileExemplar(0); task != 5 {
		t.Fatalf("zero-bucket task = %d, want 5", task)
	}
}

func TestQuantileExemplarWithoutExemplars(t *testing.T) {
	h := NewHistogram()
	if _, task := h.QuantileExemplar(0.5); task != -1 {
		t.Fatalf("empty histogram task = %d, want -1", task)
	}
	h.Observe(3) // plain path records no exemplar
	v, task := h.QuantileExemplar(0.5)
	if task != -1 || v != h.Quantile(0.5) {
		t.Fatalf("plain-observe = (%v, %d), want (%v, -1)", v, task, h.Quantile(0.5))
	}
	// Mixed: the bucket fed only by Observe stays exemplar-less while the
	// instrumented one answers.
	h.ObserveExemplar(1000, 9)
	if _, task := h.QuantileExemplar(1); task != 9 {
		t.Fatalf("instrumented bucket task = %d, want 9", task)
	}
	if _, task := h.QuantileExemplar(0); task != -1 {
		t.Fatalf("plain bucket task = %d, want -1", task)
	}
}

func TestHistogramProbeExemplars(t *testing.T) {
	p := NewHistogramProbe()
	p.OnComplete(3, 0, 0, 2, 10)  // flow 10, stretch 5
	p.OnComplete(4, 0, 5, 1, 105) // flow 100, stretch 100
	if _, task := p.Flow.QuantileExemplar(1); task != 4 {
		t.Fatalf("flow tail exemplar = T%d, want T4", task)
	}
	if _, task := p.Stretch.QuantileExemplar(1); task != 4 {
		t.Fatalf("stretch tail exemplar = T%d, want T4", task)
	}
	// Zero-proc completions mirror sim.stretchOf (stretch 0) and land in the
	// zero bucket with the task attached.
	p.OnComplete(7, 0, 0, 0, 1)
	if _, task := p.Stretch.QuantileExemplar(0); task != 7 {
		t.Fatalf("zero-proc stretch exemplar = T%d, want T7", task)
	}
}
