package obs

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/trace"
)

// TestJSONLSinkSchema: each hook writes one line keyed by "ev" with the
// documented fields.
func TestJSONLSinkSchema(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.OnArrival(3, 1.5)
	s.OnDispatch(3, 2, 1.5, 1.5, 4.5)
	s.OnComplete(3, 2, 1.5, 3, 4.5)
	s.OnRetry(3, 1, 5)
	s.OnDrop(3, 1.5, 6)
	s.OnFailover(2, 5, 4)
	s.OnDone(7.25)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	want := []string{
		`{"ev":"arrival","t":1.5,"task":3}`,
		`{"ev":"dispatch","t":1.5,"task":3,"server":2,"start":1.5,"end":4.5}`,
		`{"ev":"complete","t":4.5,"task":3,"server":2,"release":1.5,"proc":3}`,
		`{"ev":"retry","t":5,"task":3,"attempt":1}`,
		`{"ev":"drop","t":6,"task":3,"release":1.5}`,
		`{"ev":"failover","t":5,"server":2,"lost":4}`,
		`{"ev":"done","t":7.25}`,
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d = %s, want %s", i, lines[i], w)
		}
	}
}

func TestJSONLSinkStickyError(t *testing.T) {
	s := NewJSONLSink(failWriter{})
	for i := 0; i < 20000; i++ { // exceed the buffer so a flush is forced
		s.OnArrival(i, 0)
	}
	s.OnDone(1)
	if s.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if !errors.Is(s.Flush(), errShort) {
		t.Errorf("Flush = %v, want the sticky first error", s.Flush())
	}
}

var errShort = errors.New("short write")

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errShort }

// TestReplayTraceHandStream: replay orders like trace.FromSchedule and skips
// incomplete tasks.
func TestReplayTraceHandStream(t *testing.T) {
	in := strings.Join([]string{
		`{"ev":"arrival","t":0,"task":0}`,
		`{"ev":"dispatch","t":0,"task":0,"server":1,"start":0,"end":2}`,
		`{"ev":"complete","t":2,"task":0,"server":1,"release":0,"proc":2}`,
		`{"ev":"arrival","t":2,"task":1}`, // ties completion at t=2: completion sorts first
		`{"ev":"dispatch","t":2,"task":1,"server":0,"start":2,"end":3}`,
		`{"ev":"complete","t":3,"task":1,"server":0,"release":2,"proc":1}`,
		`{"ev":"arrival","t":4,"task":2}`, // dropped: no dispatch/complete
		`{"ev":"drop","t":5,"task":2,"release":4}`,
		`{"ev":"done","t":3}`,
		``,
	}, "\n")
	events, err := ReplayTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []trace.Event{
		{Time: 0, Kind: trace.Arrival, Task: 0, Machine: -1},
		{Time: 0, Kind: trace.Start, Task: 0, Machine: 1},
		{Time: 2, Kind: trace.Completion, Task: 0, Machine: 1},
		{Time: 2, Kind: trace.Arrival, Task: 1, Machine: -1},
		{Time: 2, Kind: trace.Start, Task: 1, Machine: 0},
		{Time: 3, Kind: trace.Completion, Task: 1, Machine: 0},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events %+v, want %d", len(events), events, len(want))
	}
	for i, w := range want {
		if events[i] != w {
			t.Errorf("event %d = %+v, want %+v", i, events[i], w)
		}
	}
}

func TestReplayTraceErrors(t *testing.T) {
	if _, err := ReplayTrace(strings.NewReader("{not json\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ReplayTrace(strings.NewReader(`{"ev":"warp","t":1}` + "\n")); err == nil {
		t.Error("unknown event kind accepted")
	}
	events, err := ReplayTrace(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Errorf("empty stream: %v, %v", events, err)
	}
}

// TestJSONLSinkNonFiniteInstants is the satellite regression for the NaN-safe
// boundary: the engine uses NaN deliberately (a never-dispatched task has no
// dispatch instant), and a sink fed such a sentinel must keep writing — one
// null field — instead of poisoning the sticky error and silently dropping
// the rest of the log, which is what encoding/json's non-finite rejection
// did. The stream must also still replay.
func TestJSONLSinkNonFiniteInstants(t *testing.T) {
	nan := core.Time(math.NaN())
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.OnArrival(0, 0)
	s.OnDispatch(0, 1, 0, 0, 2)
	s.OnComplete(0, 1, 0, 2, 2)
	s.OnArrival(1, 1)
	s.OnDrop(1, 1, nan) // dropped with no final instant
	s.OnDone(nan)       // e.g. a run with no completed work
	if err := s.Flush(); err != nil {
		t.Fatalf("non-finite instants poisoned the sink: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `"t":null`) {
		t.Fatalf("NaN instant did not encode as null:\n%s", out)
	}
	events, err := ReplayTrace(strings.NewReader(out))
	if err != nil {
		t.Fatalf("replaying a log with null instants: %v", err)
	}
	if len(events) != 3 { // arrival, start, completion — a dropped task yields no trace events
		t.Fatalf("replayed %d events, want 3: %+v", len(events), events)
	}
}
