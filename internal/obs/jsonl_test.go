package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"flowsched/internal/trace"
)

// TestJSONLSinkSchema: each hook writes one line keyed by "ev" with the
// documented fields.
func TestJSONLSinkSchema(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.OnArrival(3, 1.5)
	s.OnDispatch(3, 2, 1.5, 1.5, 4.5)
	s.OnComplete(3, 2, 1.5, 3, 4.5)
	s.OnRetry(3, 1, 5)
	s.OnDrop(3, 1.5, 6)
	s.OnFailover(2, 5, 4)
	s.OnDone(7.25)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	want := []string{
		`{"ev":"arrival","t":1.5,"task":3}`,
		`{"ev":"dispatch","t":1.5,"task":3,"server":2,"start":1.5,"end":4.5}`,
		`{"ev":"complete","t":4.5,"task":3,"server":2,"release":1.5,"proc":3}`,
		`{"ev":"retry","t":5,"task":3,"attempt":1}`,
		`{"ev":"drop","t":6,"task":3,"release":1.5}`,
		`{"ev":"failover","t":5,"server":2,"lost":4}`,
		`{"ev":"done","t":7.25}`,
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d = %s, want %s", i, lines[i], w)
		}
	}
}

func TestJSONLSinkStickyError(t *testing.T) {
	s := NewJSONLSink(failWriter{})
	for i := 0; i < 20000; i++ { // exceed the buffer so a flush is forced
		s.OnArrival(i, 0)
	}
	s.OnDone(1)
	if s.Err() == nil {
		t.Fatal("write error not surfaced")
	}
	if !errors.Is(s.Flush(), errShort) {
		t.Errorf("Flush = %v, want the sticky first error", s.Flush())
	}
}

var errShort = errors.New("short write")

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errShort }

// TestReplayTraceHandStream: replay orders like trace.FromSchedule and skips
// incomplete tasks.
func TestReplayTraceHandStream(t *testing.T) {
	in := strings.Join([]string{
		`{"ev":"arrival","t":0,"task":0}`,
		`{"ev":"dispatch","t":0,"task":0,"server":1,"start":0,"end":2}`,
		`{"ev":"complete","t":2,"task":0,"server":1,"release":0,"proc":2}`,
		`{"ev":"arrival","t":2,"task":1}`, // ties completion at t=2: completion sorts first
		`{"ev":"dispatch","t":2,"task":1,"server":0,"start":2,"end":3}`,
		`{"ev":"complete","t":3,"task":1,"server":0,"release":2,"proc":1}`,
		`{"ev":"arrival","t":4,"task":2}`, // dropped: no dispatch/complete
		`{"ev":"drop","t":5,"task":2,"release":4}`,
		`{"ev":"done","t":3}`,
		``,
	}, "\n")
	events, err := ReplayTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []trace.Event{
		{Time: 0, Kind: trace.Arrival, Task: 0, Machine: -1},
		{Time: 0, Kind: trace.Start, Task: 0, Machine: 1},
		{Time: 2, Kind: trace.Completion, Task: 0, Machine: 1},
		{Time: 2, Kind: trace.Arrival, Task: 1, Machine: -1},
		{Time: 2, Kind: trace.Start, Task: 1, Machine: 0},
		{Time: 3, Kind: trace.Completion, Task: 1, Machine: 0},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events %+v, want %d", len(events), events, len(want))
	}
	for i, w := range want {
		if events[i] != w {
			t.Errorf("event %d = %+v, want %+v", i, events[i], w)
		}
	}
}

func TestReplayTraceErrors(t *testing.T) {
	if _, err := ReplayTrace(strings.NewReader("{not json\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ReplayTrace(strings.NewReader(`{"ev":"warp","t":1}` + "\n")); err == nil {
		t.Error("unknown event kind accepted")
	}
	events, err := ReplayTrace(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Errorf("empty stream: %v, %v", events, err)
	}
}
