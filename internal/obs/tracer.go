package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"flowsched/internal/core"
)

// AttemptOutcome classifies how one dispatch attempt of a task ended.
type AttemptOutcome uint8

const (
	// AttemptPending is an attempt still occupying its server (or the final
	// state of a run that ended mid-attempt, which the engine never does).
	AttemptPending AttemptOutcome = iota
	// AttemptCompleted is an attempt that ran to completion.
	AttemptCompleted
	// AttemptCrashed is an attempt aborted by its server's crash; the task
	// re-entered through a retry or was dropped.
	AttemptCrashed
	// AttemptHandedOff is an attempt aborted by a scale-down drain; the task
	// was handed off to a surviving member.
	AttemptHandedOff
	// AttemptShed is an attempt abandoned by the watermark shedder while the
	// task sat in its server's queue.
	AttemptShed
	// AttemptHedgeCancelled is a losing hedge attempt (a speculative copy, or
	// a primary beaten by its copy) abandoned by first-win cancellation, a
	// tied-mode revocation, or the copy's death.
	AttemptHedgeCancelled
)

// String returns the attempt outcome's wire name.
func (o AttemptOutcome) String() string {
	switch o {
	case AttemptCompleted:
		return "completed"
	case AttemptCrashed:
		return "crashed"
	case AttemptHandedOff:
		return "handed-off"
	case AttemptShed:
		return "shed"
	case AttemptHedgeCancelled:
		return "hedge-cancelled"
	default:
		return "pending"
	}
}

// MarshalJSON implements json.Marshaler: outcomes encode as their names.
func (o AttemptOutcome) MarshalJSON() ([]byte, error) {
	return json.Marshal(o.String())
}

// TraceState is the terminal disposition of a task's span tree.
type TraceState uint8

const (
	// TraceUnfinished is a task with no terminal event yet: still queued,
	// in flight, or parked without an eligible live machine when the run
	// ended.
	TraceUnfinished TraceState = iota
	// TraceCompleted is a task that completed.
	TraceCompleted
	// TraceDropped is a task the retry policy gave up on after a crash.
	TraceDropped
	// TraceRejected is a task turned away by admission control on arrival.
	TraceRejected
	// TraceShed is a task abandoned mid-run by the watermark shedder or by
	// deadline enforcement at dispatch.
	TraceShed
)

// String returns the state's wire name.
func (s TraceState) String() string {
	switch s {
	case TraceCompleted:
		return "completed"
	case TraceDropped:
		return "dropped"
	case TraceRejected:
		return "rejected"
	case TraceShed:
		return "shed"
	default:
		return "unfinished"
	}
}

// MarshalJSON implements json.Marshaler: states encode as their names.
func (s TraceState) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// AttemptSpan is one dispatch attempt of a task: the server it was assigned
// to at instant At, the service interval [Start, End) the engine forecast
// (or, for the completing attempt, the final one), and how it ended.
type AttemptSpan struct {
	Server  int            `json:"server"`
	At      core.Time      `json:"-"` // dispatch instant
	Start   core.Time      `json:"-"` // service start
	End     core.Time      `json:"-"` // service end (exact for the completing attempt)
	Outcome AttemptOutcome `json:"outcome"`
	AbortAt core.Time      `json:"-"` // crash/handoff/shed instant; NaN otherwise

	// Retimed marks a completing attempt whose service interval was silently
	// re-timed after a watermark shed ahead of it in the queue. End is still
	// exact (it comes from the completion event); Start is reconstructed as
	// End − proc, which is exact on healthy servers and an upper bound under
	// a gray slowdown.
	Retimed bool `json:"retimed,omitempty"`

	// Hedge marks a speculative copy dispatched by sim.RunHedged: a sibling
	// span racing the primary attempt, resolved by first-win cancellation.
	Hedge bool `json:"hedge,omitempty"`
}

// attemptSpanJSON is the NaN-safe wire form of an AttemptSpan.
type attemptSpanJSON struct {
	Server  int            `json:"server"`
	At      core.NullTime  `json:"at"`
	Start   core.NullTime  `json:"start"`
	End     core.NullTime  `json:"end"`
	Outcome AttemptOutcome `json:"outcome"`
	AbortAt core.NullTime  `json:"abort_at"`
	Retimed bool           `json:"retimed,omitempty"`
	Hedge   bool           `json:"hedge,omitempty"`
}

// MarshalJSON implements json.Marshaler with the engine's NaN sentinels
// encoded as null (core.NullTime).
func (a AttemptSpan) MarshalJSON() ([]byte, error) {
	return json.Marshal(attemptSpanJSON{
		Server: a.Server, At: core.NullTime(a.At), Start: core.NullTime(a.Start),
		End: core.NullTime(a.End), Outcome: a.Outcome,
		AbortAt: core.NullTime(a.AbortAt), Retimed: a.Retimed, Hedge: a.Hedge,
	})
}

// TaskTrace is the causal span tree of one task: the queued root span
// opened at Release, the dispatch attempts in causal order, and the
// terminal disposition.
type TaskTrace struct {
	Task    int        `json:"task"`
	Release core.Time  `json:"-"`
	State   TraceState `json:"state"`
	// EndAt is the terminal instant: the completion end, the drop / shed
	// instant, or the (arrival-time) rejection instant. NaN while
	// unfinished.
	EndAt core.Time `json:"-"`
	// Flow is EndAt − Release: the flow time for completed tasks, the age
	// at disposition for dropped/rejected/shed ones (matching the engine's
	// Metrics.Flows convention). NaN while unfinished.
	Flow core.Time `json:"-"`
	// Reason is the overload disposition reason (reject/shed); empty
	// otherwise.
	Reason string `json:"reason,omitempty"`
	// Retries counts crash-aborted attempts that were rescheduled.
	Retries  int           `json:"retries,omitempty"`
	Attempts []AttemptSpan `json:"attempts,omitempty"`
}

// taskTraceJSON is the NaN-safe wire form of a TaskTrace.
type taskTraceJSON struct {
	Task     int           `json:"task"`
	Release  core.NullTime `json:"release"`
	State    TraceState    `json:"state"`
	EndAt    core.NullTime `json:"end_at"`
	Flow     core.NullTime `json:"flow"`
	Reason   string        `json:"reason,omitempty"`
	Retries  int           `json:"retries,omitempty"`
	Attempts []AttemptSpan `json:"attempts,omitempty"`
}

// MarshalJSON implements json.Marshaler with NaN-safe times.
func (t *TaskTrace) MarshalJSON() ([]byte, error) {
	return json.Marshal(taskTraceJSON{
		Task: t.Task, Release: core.NullTime(t.Release), State: t.State,
		EndAt: core.NullTime(t.EndAt), Flow: core.NullTime(t.Flow),
		Reason: t.Reason, Retries: t.Retries, Attempts: t.Attempts,
	})
}

// QueueWait returns the time the task spent waiting before its first
// (possibly later aborted) service start; NaN if it was never dispatched.
func (t *TaskTrace) QueueWait() core.Time {
	if len(t.Attempts) == 0 {
		return core.Time(math.NaN())
	}
	return t.Attempts[0].Start - t.Release
}

// rank orders traces for KeepWorst retention: terminal traces by their flow
// (age at disposition), unfinished ones as +Inf so a task the run never
// resolved is always worth keeping.
func (t *TaskTrace) rank() float64 {
	if t.State == TraceUnfinished {
		return math.Inf(1)
	}
	return float64(t.Flow)
}

// open returns the task's pending primary attempt — hedge sibling spans are
// skipped: crash/shed/handoff events always target the primary, while hedge
// spans resolve only through OnComplete or OnHedgeCancel.
func (t *TaskTrace) open() *AttemptSpan {
	for i := len(t.Attempts) - 1; i >= 0; i-- {
		a := &t.Attempts[i]
		if a.Hedge {
			continue
		}
		if a.Outcome == AttemptPending {
			return a
		}
		return nil // the newest primary attempt is already closed
	}
	return nil
}

// openOn returns the task's most recent pending attempt on the given server
// (hedge spans included), nil if none — the server disambiguates the racing
// attempts of a hedged task.
func (t *TaskTrace) openOn(server int) *AttemptSpan {
	for i := len(t.Attempts) - 1; i >= 0; i-- {
		if a := &t.Attempts[i]; a.Outcome == AttemptPending && a.Server == server {
			return a
		}
	}
	return nil
}

// abort closes the pending primary attempt (if any) with the given outcome
// at the given instant.
func (t *TaskTrace) abort(o AttemptOutcome, at core.Time) {
	if a := t.open(); a != nil {
		a.Outcome = o
		a.AbortAt = at
	}
}

// Retention bounds a Tracer's memory. The zero value keeps every trace.
type Retention struct {
	k int // 0 = keep all
}

// KeepAll retains every task's trace — fine for analysis runs, unbounded
// for production-sized ones.
func KeepAll() Retention { return Retention{} }

// KeepWorst retains exactly the k traces with the largest flow times (ties
// broken toward smaller task ids; tasks the run never resolved rank above
// every finite flow). Benign tasks are discarded the moment they resolve,
// so tracing a million-task run keeps O(k) memory for the tail.
func KeepWorst(k int) Retention {
	if k < 1 {
		k = 1
	}
	return Retention{k: k}
}

// Tracer is a Probe (plus OverloadObserver and MembershipObserver) that
// assembles per-task causal span trees from the engine's event stream with
// zero engine changes: queued → attempt[k] (server, [start,end),
// aborted-by-crash / handed-off / shed) → complete | drop | reject.
//
// The engine re-times attempts queued behind a watermark shed without a
// probe event; the tracer reconciles at completion time — the completion
// instant is always exact, and a mismatch with the forecast interval marks
// the attempt Retimed (see AttemptSpan.Retimed).
//
// A Tracer is not safe for concurrent use; attach one per run.
type Tracer struct {
	retain Retention

	live     map[int]*TaskTrace // tasks with no terminal event yet
	all      []*TaskTrace       // KeepAll: every trace in arrival order
	heap     []*TaskTrace       // KeepWorst: min-heap by (rank, task)
	retained map[int]*TaskTrace // KeepWorst: heap membership by task

	makespan core.Time
	done     bool
}

// NewTracer returns a tracer with the given retention policy (KeepAll() or
// KeepWorst(k)).
func NewTracer(r Retention) *Tracer {
	t := &Tracer{retain: r, live: make(map[int]*TaskTrace)}
	if r.k > 0 {
		t.heap = make([]*TaskTrace, 0, r.k)
		t.retained = make(map[int]*TaskTrace, r.k)
	}
	return t
}

// Done reports whether the traced run has finished (OnDone fired).
func (t *Tracer) Done() bool { return t.done }

// Makespan returns the traced run's makespan (0 before OnDone).
func (t *Tracer) Makespan() core.Time { return t.makespan }

// Trace returns the task's trace, nil if it was never seen or was discarded
// by KeepWorst retention.
func (t *Tracer) Trace(task int) *TaskTrace {
	if tr, ok := t.live[task]; ok {
		return tr
	}
	if t.retained != nil {
		return t.retained[task]
	}
	return nil
}

// Traces returns every retained trace sorted by task id.
func (t *Tracer) Traces() []*TaskTrace {
	var out []*TaskTrace
	if t.retain.k > 0 {
		out = append(out, t.heap...)
		for _, tr := range t.live {
			out = append(out, tr)
		}
	} else {
		out = append(out, t.all...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out
}

// Worst returns the k retained traces with the largest flow times, worst
// first (ties toward smaller task ids; unfinished tasks rank above every
// finite flow).
func (t *Tracer) Worst(k int) []*TaskTrace {
	out := t.Traces()
	sort.Slice(out, func(i, j int) bool {
		ri, rj := out[i].rank(), out[j].rank()
		if ri != rj {
			return ri > rj
		}
		return out[i].Task < out[j].Task
	})
	if k >= 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// worse reports whether a outranks b in the (rank, task) total order.
func worse(a, b *TaskTrace) bool {
	ra, rb := a.rank(), b.rank()
	if ra != rb {
		return ra > rb
	}
	return a.Task < b.Task
}

func (t *Tracer) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worse(t.heap[p], t.heap[i]) {
			break
		}
		t.heap[p], t.heap[i] = t.heap[i], t.heap[p]
		i = p
	}
}

func (t *Tracer) siftDown(i int) {
	for {
		least, l, r := i, 2*i+1, 2*i+2
		if l < len(t.heap) && worse(t.heap[least], t.heap[l]) {
			least = l
		}
		if r < len(t.heap) && worse(t.heap[least], t.heap[r]) {
			least = r
		}
		if least == i {
			return
		}
		t.heap[i], t.heap[least] = t.heap[least], t.heap[i]
		i = least
	}
}

// terminal moves a resolved trace into the retention structure.
func (t *Tracer) terminal(tr *TaskTrace) {
	if t.retain.k == 0 {
		return // KeepAll: the trace already lives in t.all
	}
	delete(t.live, tr.Task)
	if len(t.heap) < t.retain.k {
		t.heap = append(t.heap, tr)
		t.retained[tr.Task] = tr
		t.siftUp(len(t.heap) - 1)
		return
	}
	if !worse(tr, t.heap[0]) {
		return // benign: not among the k worst seen so far
	}
	delete(t.retained, t.heap[0].Task)
	t.heap[0] = tr
	t.retained[tr.Task] = tr
	t.siftDown(0)
}

// OnArrival implements Probe: it opens the task's queued root span.
func (t *Tracer) OnArrival(task int, release core.Time) {
	tr := &TaskTrace{
		Task: task, Release: release,
		EndAt: core.Time(math.NaN()), Flow: core.Time(math.NaN()),
	}
	t.live[task] = tr
	if t.retain.k == 0 {
		t.all = append(t.all, tr)
	}
}

// OnDispatch implements Probe: it opens attempt k with the engine's
// forecast service interval.
func (t *Tracer) OnDispatch(task, server int, at, start, end core.Time) {
	tr := t.live[task]
	if tr == nil {
		return // tracer attached mid-run; ignore tasks we never saw arrive
	}
	tr.Attempts = append(tr.Attempts, AttemptSpan{
		Server: server, At: at, Start: start, End: end,
		AbortAt: core.Time(math.NaN()),
	})
}

// OnComplete implements Probe: it closes the pending attempt, reconciling
// a silent watermark re-time — the completion end is exact, so a forecast
// mismatch flags Retimed and reconstructs the start as end − proc.
func (t *Tracer) OnComplete(task, server int, release, proc, end core.Time) {
	tr := t.live[task]
	if tr == nil {
		return
	}
	a := tr.openOn(server) // the winning attempt of a hedged task, by server
	if a == nil {
		a = tr.open()
	}
	if a == nil {
		// Defensive: a completion with no pending attempt (cannot happen with
		// the engine's hook contract). Record a synthetic attempt.
		tr.Attempts = append(tr.Attempts, AttemptSpan{
			Server: server, At: core.Time(math.NaN()), Start: end - proc, End: end,
			AbortAt: core.Time(math.NaN()), Retimed: true,
		})
		a = &tr.Attempts[len(tr.Attempts)-1]
	} else if a.End != end {
		// faults.FinishTime is strictly increasing in the start instant, so
		// same end ⟺ same start: a changed end is a complete re-time detector.
		a.Retimed = true
		a.End = end
		a.Start = end - proc
	}
	a.Outcome = AttemptCompleted
	tr.State = TraceCompleted
	tr.EndAt = end
	tr.Flow = end - release
	t.terminal(tr)
}

// OnDrop implements Probe: the pending attempt (aborted by the crash that
// triggered the retry decision) closes as crashed and the task resolves
// dropped.
func (t *Tracer) OnDrop(task int, release, at core.Time) {
	tr := t.live[task]
	if tr == nil {
		return
	}
	tr.abort(AttemptCrashed, at)
	tr.State = TraceDropped
	tr.EndAt = at
	tr.Flow = at - release
	t.terminal(tr)
}

// OnRetry implements Probe: the crash-aborted attempt closes and the task
// re-enters the queued state until its re-dispatch.
func (t *Tracer) OnRetry(task, attempt int, at core.Time) {
	tr := t.live[task]
	if tr == nil {
		return
	}
	tr.abort(AttemptCrashed, at)
	tr.Retries++
}

// OnFailover implements Probe. Per-task crash consequences arrive through
// OnRetry/OnDrop, so the tracer needs nothing here.
func (t *Tracer) OnFailover(server int, at core.Time, lost int) {}

// OnDone implements Probe: unresolved tasks are flushed into retention
// (ranking above every finite flow) in task order.
func (t *Tracer) OnDone(makespan core.Time) {
	t.makespan = makespan
	t.done = true
	if t.retain.k == 0 {
		return
	}
	ids := make([]int, 0, len(t.live))
	for id := range t.live {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		t.terminal(t.live[id])
	}
}

// OnReject implements OverloadObserver: the task resolves rejected with no
// attempts.
func (t *Tracer) OnReject(task int, at core.Time, reason string) {
	tr := t.live[task]
	if tr == nil {
		return
	}
	tr.State = TraceRejected
	tr.Reason = reason
	tr.EndAt = at
	tr.Flow = at - tr.Release
	t.terminal(tr)
}

// OnShed implements OverloadObserver: the pending attempt (if any — a
// deadline shed happens before dispatch and has none) closes as shed and
// the task resolves shed.
func (t *Tracer) OnShed(task, server int, release, at core.Time, reason string) {
	tr := t.live[task]
	if tr == nil {
		return
	}
	tr.abort(AttemptShed, at)
	tr.State = TraceShed
	tr.Reason = reason
	tr.EndAt = at
	tr.Flow = at - release
	t.terminal(tr)
}

// OnEject implements OverloadObserver (no per-task consequence).
func (t *Tracer) OnEject(server int, at core.Time) {}

// OnReadmit implements OverloadObserver (no per-task consequence).
func (t *Tracer) OnReadmit(server int, at core.Time) {}

// OnBrownout implements OverloadObserver (no per-task consequence).
func (t *Tracer) OnBrownout(at core.Time, active bool) {}

// OnScaleUp implements MembershipObserver (no per-task consequence).
func (t *Tracer) OnScaleUp(machine int, at, ready core.Time) {}

// OnJoin implements MembershipObserver (no per-task consequence).
func (t *Tracer) OnJoin(machine int, at core.Time, members int) {}

// OnScaleDown implements MembershipObserver (per-task consequences arrive
// through OnHandoff).
func (t *Tracer) OnScaleDown(machine int, at core.Time, members, handoffs int) {}

// OnHandoff implements MembershipObserver: the pending attempt closes as
// handed-off; the re-dispatch (or parking) follows through OnDispatch.
func (t *Tracer) OnHandoff(task, from int, at core.Time) {
	tr := t.live[task]
	if tr == nil {
		return
	}
	tr.abort(AttemptHandedOff, at)
}

// OnHedge implements HedgeObserver: the speculative copy opens as a sibling
// span racing the pending primary attempt.
func (t *Tracer) OnHedge(task, from, to int, at, start, end core.Time) {
	tr := t.live[task]
	if tr == nil {
		return
	}
	tr.Attempts = append(tr.Attempts, AttemptSpan{
		Server: to, At: at, Start: start, End: end,
		AbortAt: core.Time(math.NaN()), Hedge: true,
	})
}

// OnHedgeWin implements HedgeObserver. The winning attempt closes through
// OnComplete (server-matched) and the loser through OnHedgeCancel, so the
// tracer needs nothing here.
func (t *Tracer) OnHedgeWin(task, server int, byCopy bool, at core.Time) {}

// OnHedgeCancel implements HedgeObserver: the losing attempt on the given
// server (primary or copy) closes as hedge-cancelled.
func (t *Tracer) OnHedgeCancel(task, server int, at core.Time, started bool) {
	tr := t.live[task]
	if tr == nil {
		return
	}
	if a := tr.openOn(server); a != nil {
		a.Outcome = AttemptHedgeCancelled
		a.AbortAt = at
	}
}

// WriteJSON writes the retained traces (sorted by task id) and the run's
// makespan as one indented JSON document, NaN-safe.
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := struct {
		Makespan core.NullTime `json:"makespan"`
		Tasks    []*TaskTrace  `json:"tasks"`
	}{core.NullTime(t.makespan), t.Traces()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("obs: writing traces: %w", err)
	}
	return nil
}
