package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestHistogramGrowthValidation(t *testing.T) {
	for _, g := range []float64{0, 1, 0.5, -2, math.Inf(1), math.NaN()} {
		if _, err := NewHistogramGrowth(g); err == nil {
			t.Errorf("NewHistogramGrowth(%v) accepted, want error", g)
		}
	}
	h, err := NewHistogramGrowth(2)
	if err != nil || h.Growth() != 2 {
		t.Fatalf("NewHistogramGrowth(2) = %v, %v", h, err)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("empty histogram aggregates nonzero: count=%d mean=%v q50=%v", h.Count(), h.Mean(), h.Quantile(0.5))
	}
}

// TestHistogramQuantileBound: the quantile of a random sample is within the
// documented relative error of the anchoring order statistic, across value
// scales spanning many decades.
func TestHistogramQuantileBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		h := NewHistogram()
		n := 1 + rng.Intn(3000)
		scale := math.Pow(10, float64(rng.Intn(9)-4)) // 1e-4 .. 1e4
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = scale * (0.01 + rng.ExpFloat64()*3)
			h.Observe(xs[i])
		}
		sort.Float64s(xs)
		g := h.Growth()
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
			anchor := xs[int(math.Floor(q*float64(n-1)))]
			hq := h.Quantile(q)
			if hq < anchor/g*(1-1e-12) || hq > anchor*g*(1+1e-12) {
				t.Fatalf("trial %d: q=%v quantile %v outside [%v, %v] (anchor %v)",
					trial, q, hq, anchor/g, anchor*g, anchor)
			}
		}
		if got := h.Mean(); math.Abs(got-mean(xs)) > 1e-9*math.Abs(mean(xs)) {
			t.Fatalf("mean %v != %v", got, mean(xs))
		}
		if h.Max() != xs[n-1] || h.Min() != xs[0] {
			t.Fatalf("extremes %v/%v != %v/%v", h.Min(), h.Max(), xs[0], xs[n-1])
		}
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// TestHistogramBoundedMemory: bucket count grows with the value range, not
// the observation count.
func TestHistogramBoundedMemory(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200000; i++ {
		h.Observe(0.1 + rng.Float64()*99.9) // three decades
	}
	// log_g(1000) buckets suffice for [0.1, 100]; allow slack for edges.
	limit := int(math.Log(1e4)/math.Log(h.Growth())) + 8
	if h.Buckets() > limit {
		t.Errorf("%d buckets for a 3-decade sample, want ≤ %d", h.Buckets(), limit)
	}
	if h.Count() != 200000 {
		t.Errorf("count %d", h.Count())
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)
	h.Observe(-3)
	h.Observe(5)
	if h.Count() != 3 {
		t.Fatalf("count %d", h.Count())
	}
	if q := h.Quantile(0); q != 0 { // zero-bucket representative
		t.Errorf("q0 = %v, want 0", q)
	}
	if h.Min() != -3 { // the exact extreme is still tracked
		t.Errorf("min = %v, want -3", h.Min())
	}
	if q := h.Quantile(1); q != 5 {
		t.Errorf("q1 = %v, want 5", q)
	}
}

func TestHistogramWriteProm(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	var b strings.Builder
	if err := h.WriteProm(&b, "flowsched_flow_time"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE flowsched_flow_time summary",
		`flowsched_flow_time{quantile="0.5"}`,
		"flowsched_flow_time_count 100",
		"flowsched_flow_time_sum 5050",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramProbeStretch(t *testing.T) {
	p := NewHistogramProbe()
	p.OnComplete(0, 0, 1, 2, 5) // flow 4, stretch 2
	p.OnComplete(1, 1, 0, 0, 3) // zero-proc: flow 3, stretch 0
	if p.Flow.Count() != 2 || p.Stretch.Count() != 2 {
		t.Fatalf("counts %d/%d", p.Flow.Count(), p.Stretch.Count())
	}
	if p.Flow.Max() != 4 || p.Stretch.Max() != 2 || p.Stretch.Min() != 0 {
		t.Errorf("flow max %v stretch max %v min %v", p.Flow.Max(), p.Stretch.Max(), p.Stretch.Min())
	}
}
