package obs

import (
	"strings"
	"testing"

	"flowsched/internal/core"
)

type countingProbe struct {
	BaseProbe
	events []string
}

func (p *countingProbe) OnArrival(task int, release core.Time) { p.events = append(p.events, "arr") }
func (p *countingProbe) OnDone(makespan core.Time)             { p.events = append(p.events, "done") }

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() != nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) != nil")
	}
	single := &countingProbe{}
	if Multi(nil, single) != Probe(single) {
		t.Error("Multi with one live probe should return it unwrapped")
	}
	a, b := &countingProbe{}, &countingProbe{}
	m := Multi(a, nil, b)
	m.OnArrival(0, 0)
	m.OnDispatch(0, 0, 0, 0, 1)
	m.OnComplete(0, 0, 0, 1, 1)
	m.OnDrop(1, 0, 1)
	m.OnRetry(2, 1, 1)
	m.OnFailover(0, 1, 3)
	m.OnDone(1)
	for _, p := range []*countingProbe{a, b} {
		if len(p.events) != 2 || p.events[0] != "arr" || p.events[1] != "done" {
			t.Errorf("fan-out events = %v", p.events)
		}
	}
}

func TestCounters(t *testing.T) {
	var c Counters
	c.OnArrival(0, 0)
	c.OnArrival(1, 1)
	c.OnDispatch(0, 0, 0, 0, 1)
	c.OnDispatch(1, 1, 1, 1, 2)
	c.OnDispatch(1, 0, 3, 3, 4) // failover re-dispatch
	c.OnComplete(0, 0, 0, 1, 1)
	c.OnFailover(1, 2, 1)
	c.OnRetry(1, 1, 2)
	c.OnComplete(1, 0, 1, 1, 4)
	if c.Arrivals != 2 || c.Dispatches != 3 || c.Completions != 2 ||
		c.Retries != 1 || c.Failovers != 1 || c.Lost != 1 || c.Drops != 0 {
		t.Fatalf("counters = %+v", c)
	}
	var b strings.Builder
	if err := c.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE flowsched_arrivals_total counter",
		"flowsched_arrivals_total 2",
		"flowsched_dispatches_total 3",
		"flowsched_completions_total 2",
		"flowsched_retries_total 1",
		"flowsched_failovers_total 1",
		"flowsched_lost_tasks_total 1",
		"flowsched_drops_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}
