package obs

import (
	"strings"
	"testing"
)

// TestCountersPromExposition is the promlint-style contract of WriteProm:
// every metric family carries a HELP line, a TYPE line and a sample, in that
// order; counter families use the _total suffix; no sample appears without
// its family metadata. A rename that breaks scrape continuity (e.g. dropping
// a _total suffix) fails here instead of in a dashboard.
func TestCountersPromExposition(t *testing.T) {
	c := Counters{
		Arrivals: 1, Dispatches: 2, Completions: 3, Retries: 4, Drops: 5,
		Failovers: 6, Lost: 7, Rejections: 8, Sheds: 9, Ejections: 10,
		Readmissions: 11, Brownouts: 12, ScaleUps: 13, Joins: 14,
		ScaleDowns: 15, Handoffs: 16, WarmUpTime: 17.5,
		Hedges: 18, HedgeWins: 19, HedgeCopyWins: 20, HedgeCancels: 21,
		BreakerOpens: 22, BreakerCloses: 23, BreakerProbes: 24,
		RetryBudgetDrops: 25,
	}
	var b strings.Builder
	if err := c.WriteProm(&b); err != nil {
		t.Fatal(err)
	}

	help := map[string]bool{}
	typ := map[string]string{}
	sample := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(b.String(), "\n"), "\n") {
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if len(fields) < 4 {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			help[fields[2]] = true
		case strings.HasPrefix(line, "# TYPE "):
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			name, kind := fields[2], fields[3]
			typ[name] = kind
			if !help[name] {
				t.Errorf("line %d: TYPE for %s before its HELP", ln+1, name)
			}
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		default:
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed sample %q", ln+1, line)
			}
			name := fields[0]
			sample[name] = true
			if typ[name] == "" {
				t.Errorf("line %d: sample for %s without a TYPE", ln+1, name)
			}
		}
	}

	for name, kind := range typ {
		if !strings.HasPrefix(name, "flowsched_") {
			t.Errorf("family %s outside the flowsched_ namespace", name)
		}
		if kind != "counter" {
			t.Errorf("family %s has type %s, want counter", name, kind)
		}
		if !strings.HasSuffix(name, "_total") {
			t.Errorf("counter family %s lacks the _total suffix", name)
		}
		if !sample[name] {
			t.Errorf("family %s declared but never sampled", name)
		}
	}

	// Every counter field must surface, including the seconds-valued
	// warm-up total (renamed to carry _total like the rest).
	for _, want := range []string{
		"flowsched_arrivals_total 1", "flowsched_handoffs_total 16",
		"flowsched_hedges_total 18", "flowsched_hedge_cancels_total 21",
		"flowsched_breaker_opens_total 22", "flowsched_breaker_closes_total 23",
		"flowsched_breaker_probes_total 24", "flowsched_retry_budget_drops_total 25",
		"flowsched_warm_up_time_total 17.5",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition missing %q in:\n%s", want, b.String())
		}
	}
	if len(typ) != 25 {
		t.Errorf("%d families exposed, want 25", len(typ))
	}
}
