package obs

import "flowsched/internal/core"

// ResilienceObserver is the optional extension interface for probes that
// want the resilience event stream of sim.RunResilient: breaker opens,
// half-open probes, probe-success closes and retry-budget drops. The
// simulator type-asserts its probe once per run, exactly like
// OverloadObserver; probes that don't implement the interface never see
// these events.
//
// Multi forwards resilience events to each member that implements the
// interface. Embed BaseResilienceObserver to opt in selectively.
type ResilienceObserver interface {
	// OnBreakerOpen fires when server's breaker trips open (a window of
	// failures in the closed state, or a probe failure in half-open).
	OnBreakerOpen(server int, at core.Time)
	// OnBreakerProbe fires when a half-open dispatch of task to server is
	// registered as a probe.
	OnBreakerProbe(server, task int, at core.Time)
	// OnBreakerClose fires when a probe success closes server's breaker.
	OnBreakerClose(server int, at core.Time)
	// OnRetryBudgetDrop fires when the retry budget refuses task's retry
	// after attempts completed attempts; the task takes the BudgetDropped
	// disposition.
	OnRetryBudgetDrop(task, attempts int, at core.Time)
}

// BaseResilienceObserver is a no-op ResilienceObserver for embedding.
type BaseResilienceObserver struct{}

// OnBreakerOpen implements ResilienceObserver.
func (BaseResilienceObserver) OnBreakerOpen(server int, at core.Time) {}

// OnBreakerProbe implements ResilienceObserver.
func (BaseResilienceObserver) OnBreakerProbe(server, task int, at core.Time) {}

// OnBreakerClose implements ResilienceObserver.
func (BaseResilienceObserver) OnBreakerClose(server int, at core.Time) {}

// OnRetryBudgetDrop implements ResilienceObserver.
func (BaseResilienceObserver) OnRetryBudgetDrop(task, attempts int, at core.Time) {}

// OnBreakerOpen implements ResilienceObserver, forwarding to members that
// observe resilience events.
func (m multi) OnBreakerOpen(server int, at core.Time) {
	for _, p := range m {
		if o, ok := p.(ResilienceObserver); ok {
			o.OnBreakerOpen(server, at)
		}
	}
}

// OnBreakerProbe implements ResilienceObserver.
func (m multi) OnBreakerProbe(server, task int, at core.Time) {
	for _, p := range m {
		if o, ok := p.(ResilienceObserver); ok {
			o.OnBreakerProbe(server, task, at)
		}
	}
}

// OnBreakerClose implements ResilienceObserver.
func (m multi) OnBreakerClose(server int, at core.Time) {
	for _, p := range m {
		if o, ok := p.(ResilienceObserver); ok {
			o.OnBreakerClose(server, at)
		}
	}
}

// OnRetryBudgetDrop implements ResilienceObserver.
func (m multi) OnRetryBudgetDrop(task, attempts int, at core.Time) {
	for _, p := range m {
		if o, ok := p.(ResilienceObserver); ok {
			o.OnRetryBudgetDrop(task, attempts, at)
		}
	}
}
