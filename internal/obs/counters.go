package obs

import (
	"fmt"
	"io"

	"flowsched/internal/core"
)

// Counters is a Probe that tallies the run's event totals — the counter set
// a production scheduler would export. WriteProm renders them in the
// Prometheus text exposition format.
type Counters struct {
	BaseProbe
	Arrivals    int64 // requests released
	Dispatches  int64 // dispatch attempts (> Arrivals under failover)
	Completions int64 // final completions
	Retries     int64 // re-dispatches scheduled after a crash
	Drops       int64 // requests given up (attempt cap or timeout)
	Failovers   int64 // server crashes observed
	Lost        int64 // queued-or-running requests lost to crashes

	// Overload-control totals (sim.RunGuarded with a config; zero otherwise).
	Rejections   int64 // tasks turned away by admission control
	Sheds        int64 // tasks shed mid-run (watermark trims, deadline enforcement)
	Ejections    int64 // servers ejected by the outlier detector
	Readmissions int64 // ejected servers re-admitted after cooldown
	Brownouts    int64 // rising edges of the SLO guard's brownout signal

	// Elastic-membership totals (sim.RunElastic with a config; zero otherwise).
	ScaleUps   int64     // scale-up decisions committed
	Joins      int64     // machines that finished warm-up and went active
	ScaleDowns int64     // machines drained out of the ring
	Handoffs   int64     // queued tasks handed off from draining machines
	WarmUpTime core.Time // total warm-up delay imposed on joiners

	// Hedged-execution totals (sim.RunHedged with a config; zero otherwise).
	Hedges        int64 // speculative copies dispatched
	HedgeWins     int64 // hedged tasks completed (either attempt)
	HedgeCopyWins int64 // hedged tasks whose speculative copy won
	HedgeCancels  int64 // losing attempts abandoned (cancelled, revoked, crashed)

	// Resilience totals (sim.RunResilient with a config; zero otherwise).
	BreakerOpens     int64 // breaker open episodes (window trips and probe failures)
	BreakerCloses    int64 // probe-success closes
	BreakerProbes    int64 // half-open probe dispatches
	RetryBudgetDrops int64 // retries refused by the retry budget
}

// OnArrival implements Probe.
func (c *Counters) OnArrival(task int, release core.Time) { c.Arrivals++ }

// OnDispatch implements Probe.
func (c *Counters) OnDispatch(task, server int, at, start, end core.Time) { c.Dispatches++ }

// OnComplete implements Probe.
func (c *Counters) OnComplete(task, server int, release, proc, end core.Time) { c.Completions++ }

// OnDrop implements Probe.
func (c *Counters) OnDrop(task int, release, at core.Time) { c.Drops++ }

// OnRetry implements Probe.
func (c *Counters) OnRetry(task, attempt int, at core.Time) { c.Retries++ }

// OnFailover implements Probe.
func (c *Counters) OnFailover(server int, at core.Time, lost int) {
	c.Failovers++
	c.Lost += int64(lost)
}

// OnReject implements OverloadObserver.
func (c *Counters) OnReject(task int, at core.Time, reason string) { c.Rejections++ }

// OnShed implements OverloadObserver.
func (c *Counters) OnShed(task, server int, release, at core.Time, reason string) { c.Sheds++ }

// OnEject implements OverloadObserver.
func (c *Counters) OnEject(server int, at core.Time) { c.Ejections++ }

// OnReadmit implements OverloadObserver.
func (c *Counters) OnReadmit(server int, at core.Time) { c.Readmissions++ }

// OnBrownout implements OverloadObserver.
func (c *Counters) OnBrownout(at core.Time, active bool) {
	if active {
		c.Brownouts++
	}
}

// OnScaleUp implements MembershipObserver.
func (c *Counters) OnScaleUp(machine int, at, ready core.Time) {
	c.ScaleUps++
	c.WarmUpTime += ready - at
}

// OnJoin implements MembershipObserver.
func (c *Counters) OnJoin(machine int, at core.Time, members int) { c.Joins++ }

// OnScaleDown implements MembershipObserver.
func (c *Counters) OnScaleDown(machine int, at core.Time, members, handoffs int) { c.ScaleDowns++ }

// OnHandoff implements MembershipObserver.
func (c *Counters) OnHandoff(task, from int, at core.Time) { c.Handoffs++ }

// OnHedge implements HedgeObserver.
func (c *Counters) OnHedge(task, from, to int, at, start, end core.Time) { c.Hedges++ }

// OnHedgeWin implements HedgeObserver.
func (c *Counters) OnHedgeWin(task, server int, byCopy bool, at core.Time) {
	c.HedgeWins++
	if byCopy {
		c.HedgeCopyWins++
	}
}

// OnHedgeCancel implements HedgeObserver.
func (c *Counters) OnHedgeCancel(task, server int, at core.Time, started bool) { c.HedgeCancels++ }

// OnBreakerOpen implements ResilienceObserver.
func (c *Counters) OnBreakerOpen(server int, at core.Time) { c.BreakerOpens++ }

// OnBreakerProbe implements ResilienceObserver.
func (c *Counters) OnBreakerProbe(server, task int, at core.Time) { c.BreakerProbes++ }

// OnBreakerClose implements ResilienceObserver.
func (c *Counters) OnBreakerClose(server int, at core.Time) { c.BreakerCloses++ }

// OnRetryBudgetDrop implements ResilienceObserver.
func (c *Counters) OnRetryBudgetDrop(task, attempts int, at core.Time) { c.RetryBudgetDrops++ }

// WriteProm writes the counters in the Prometheus text exposition format
// under the flowsched_ namespace.
func (c *Counters) WriteProm(w io.Writer) error {
	for _, row := range []struct {
		name, help string
		value      int64
	}{
		{"flowsched_arrivals_total", "Requests released.", c.Arrivals},
		{"flowsched_dispatches_total", "Dispatch attempts (failover re-dispatches included).", c.Dispatches},
		{"flowsched_completions_total", "Requests completed.", c.Completions},
		{"flowsched_retries_total", "Failover re-dispatches scheduled after a crash.", c.Retries},
		{"flowsched_drops_total", "Requests dropped by the retry policy.", c.Drops},
		{"flowsched_failovers_total", "Server crashes observed.", c.Failovers},
		{"flowsched_lost_tasks_total", "Queued-or-running requests lost to crashes.", c.Lost},
		{"flowsched_rejections_total", "Tasks rejected by admission control.", c.Rejections},
		{"flowsched_sheds_total", "Tasks shed mid-run by overload control.", c.Sheds},
		{"flowsched_ejections_total", "Servers ejected by outlier detection.", c.Ejections},
		{"flowsched_readmissions_total", "Ejected servers re-admitted after cooldown.", c.Readmissions},
		{"flowsched_brownouts_total", "Brownout signal rising edges.", c.Brownouts},
		{"flowsched_scale_ups_total", "Elastic scale-up decisions committed.", c.ScaleUps},
		{"flowsched_joins_total", "Machines that finished warm-up and went active.", c.Joins},
		{"flowsched_scale_downs_total", "Machines drained out of the ring.", c.ScaleDowns},
		{"flowsched_handoffs_total", "Queued tasks handed off from draining machines.", c.Handoffs},
		{"flowsched_hedges_total", "Speculative hedge copies dispatched.", c.Hedges},
		{"flowsched_hedge_wins_total", "Hedged tasks completed.", c.HedgeWins},
		{"flowsched_hedge_copy_wins_total", "Hedged tasks won by the speculative copy.", c.HedgeCopyWins},
		{"flowsched_hedge_cancels_total", "Losing hedge attempts abandoned.", c.HedgeCancels},
		{"flowsched_breaker_opens_total", "Circuit breaker open episodes.", c.BreakerOpens},
		{"flowsched_breaker_closes_total", "Circuit breakers closed by probe success.", c.BreakerCloses},
		{"flowsched_breaker_probes_total", "Half-open breaker probe dispatches.", c.BreakerProbes},
		{"flowsched_retry_budget_drops_total", "Retries refused by the retry budget.", c.RetryBudgetDrops},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			row.name, row.help, row.name, row.name, row.value); err != nil {
			return err
		}
	}
	// Seconds-valued counter: the float renders with %g, and the family
	// carries the _total suffix like every other counter here (promlint
	// contract pinned by TestCountersPromExposition).
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %g\n",
		"flowsched_warm_up_time_total", "Total warm-up delay imposed on joining machines.",
		"flowsched_warm_up_time_total", "flowsched_warm_up_time_total", float64(c.WarmUpTime))
	return err
}
