package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"flowsched/internal/core"
)

// FlightEvent is one raw engine event in the flight recorder's ring: the
// flat union of every hook's payload, keyed by Ev (the JSONLSink record
// kinds plus the overload and membership event streams). Fields that do not
// apply to a kind carry -1 (ids/counts) or NaN (instants), so records
// round-trip through JSON Lines unambiguously.
type FlightEvent struct {
	Ev       string        `json:"ev"`
	T        core.NullTime `json:"t"`
	Task     int           `json:"task"`
	Server   int           `json:"server"`
	Start    core.NullTime `json:"start"`
	End      core.NullTime `json:"end"`
	Release  core.NullTime `json:"release"`
	Proc     core.NullTime `json:"proc"`
	Ready    core.NullTime `json:"ready"`
	Attempt  int           `json:"attempt"`
	Lost     int           `json:"lost"`
	Members  int           `json:"members"`
	Handoffs int           `json:"handoffs"`
	Reason   string        `json:"reason,omitempty"`
	Active   bool          `json:"active,omitempty"`
	From     int           `json:"from"`              // primary's server at hedge issue (-1 if parked)
	Copy     bool          `json:"copy,omitempty"`    // hedge-win: the speculative copy won
	Started  bool          `json:"started,omitempty"` // hedge-cancel: loser was mid-service
}

// nanT is the absent-instant sentinel of a FlightEvent.
func nanT() core.NullTime { return core.NullTime(math.NaN()) }

// blankEvent is a FlightEvent with every optional field at its absent
// sentinel; hook recorders fill in what applies.
func blankEvent(ev string, t core.Time) FlightEvent {
	return FlightEvent{
		Ev: ev, T: core.NullTime(t),
		Task: -1, Server: -1, Attempt: -1, Lost: -1, Members: -1, Handoffs: -1, From: -1,
		Start: nanT(), End: nanT(), Release: nanT(), Proc: nanT(), Ready: nanT(),
	}
}

// DefaultFlightSize is the ring capacity a FlightRecorder gets when
// constructed with size ≤ 0.
const DefaultFlightSize = 4096

// FlightRecorder is a Probe (plus OverloadObserver, MembershipObserver,
// HedgeObserver and ResilienceObserver)
// keeping the last N raw events of a run in a fixed-size ring — the
// always-on crash recorder. When a soak trial fails or an audit violation
// names a task, the ring holds the causal context without anyone having
// planned to trace that run; internal/chaos dumps it next to the shrunk
// repro and internal/audit attaches per-task evidence to its report.
//
// A FlightRecorder is not safe for concurrent use; attach one per run.
type FlightRecorder struct {
	buf   []FlightEvent
	total int // events ever appended; ring start is total - len(buf)
}

// NewFlightRecorder returns a recorder keeping the last size events
// (DefaultFlightSize when size ≤ 0).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSize
	}
	return &FlightRecorder{buf: make([]FlightEvent, 0, size)}
}

func (r *FlightRecorder) append(ev FlightEvent) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.total%cap(r.buf)] = ev
	}
	r.total++
}

// Len returns the number of events currently held (≤ the ring capacity).
func (r *FlightRecorder) Len() int { return len(r.buf) }

// Dropped returns how many older events the ring has overwritten.
func (r *FlightRecorder) Dropped() int { return r.total - len(r.buf) }

// Reset empties the ring for reuse across runs.
func (r *FlightRecorder) Reset() {
	r.buf = r.buf[:0]
	r.total = 0
}

// Events returns the held events oldest-first (a copy).
func (r *FlightRecorder) Events() []FlightEvent {
	out := make([]FlightEvent, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		copy(out, r.buf)
		return out
	}
	split := r.total % cap(r.buf) // oldest event's ring slot
	n := copy(out, r.buf[split:])
	copy(out[n:], r.buf[:split])
	return out
}

// TaskEvents returns the held events naming the task, oldest-first.
func (r *FlightRecorder) TaskEvents(task int) []FlightEvent {
	var out []FlightEvent
	for _, ev := range r.Events() {
		if ev.Task == task {
			out = append(out, ev)
		}
	}
	return out
}

// WriteJSONL writes the held events oldest-first, one JSON object per line
// — the flight-recorder dump format read back by ReadFlightEvents.
func (r *FlightRecorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("obs: writing flight events: %w", err)
		}
	}
	return bw.Flush()
}

// WriteFlightEvents writes an event slice in the WriteJSONL dump format.
func WriteFlightEvents(w io.Writer, events []FlightEvent) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return fmt.Errorf("obs: writing flight events: %w", err)
		}
	}
	return bw.Flush()
}

// ReadFlightEvents reads a WriteJSONL dump back, absent instants decoding
// to NaN.
func ReadFlightEvents(rd io.Reader) ([]FlightEvent, error) {
	var out []FlightEvent
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		ev := blankEvent("", core.Time(math.NaN()))
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("obs: flight events line %d: %w", line, err)
		}
		if ev.Ev == "" {
			return nil, fmt.Errorf("obs: flight events line %d: missing event kind", line)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading flight events: %w", err)
	}
	return out, nil
}

// OnArrival implements Probe.
func (r *FlightRecorder) OnArrival(task int, release core.Time) {
	ev := blankEvent("arrival", release)
	ev.Task = task
	r.append(ev)
}

// OnDispatch implements Probe.
func (r *FlightRecorder) OnDispatch(task, server int, at, start, end core.Time) {
	ev := blankEvent("dispatch", at)
	ev.Task, ev.Server = task, server
	ev.Start, ev.End = core.NullTime(start), core.NullTime(end)
	r.append(ev)
}

// OnComplete implements Probe.
func (r *FlightRecorder) OnComplete(task, server int, release, proc, end core.Time) {
	ev := blankEvent("complete", end)
	ev.Task, ev.Server = task, server
	ev.Release, ev.Proc = core.NullTime(release), core.NullTime(proc)
	r.append(ev)
}

// OnDrop implements Probe.
func (r *FlightRecorder) OnDrop(task int, release, at core.Time) {
	ev := blankEvent("drop", at)
	ev.Task = task
	ev.Release = core.NullTime(release)
	r.append(ev)
}

// OnRetry implements Probe.
func (r *FlightRecorder) OnRetry(task, attempt int, at core.Time) {
	ev := blankEvent("retry", at)
	ev.Task, ev.Attempt = task, attempt
	r.append(ev)
}

// OnFailover implements Probe.
func (r *FlightRecorder) OnFailover(server int, at core.Time, lost int) {
	ev := blankEvent("failover", at)
	ev.Server, ev.Lost = server, lost
	r.append(ev)
}

// OnDone implements Probe.
func (r *FlightRecorder) OnDone(makespan core.Time) {
	r.append(blankEvent("done", makespan))
}

// OnReject implements OverloadObserver.
func (r *FlightRecorder) OnReject(task int, at core.Time, reason string) {
	ev := blankEvent("reject", at)
	ev.Task, ev.Reason = task, reason
	r.append(ev)
}

// OnShed implements OverloadObserver.
func (r *FlightRecorder) OnShed(task, server int, release, at core.Time, reason string) {
	ev := blankEvent("shed", at)
	ev.Task, ev.Server, ev.Reason = task, server, reason
	ev.Release = core.NullTime(release)
	r.append(ev)
}

// OnEject implements OverloadObserver.
func (r *FlightRecorder) OnEject(server int, at core.Time) {
	ev := blankEvent("eject", at)
	ev.Server = server
	r.append(ev)
}

// OnReadmit implements OverloadObserver.
func (r *FlightRecorder) OnReadmit(server int, at core.Time) {
	ev := blankEvent("readmit", at)
	ev.Server = server
	r.append(ev)
}

// OnBrownout implements OverloadObserver.
func (r *FlightRecorder) OnBrownout(at core.Time, active bool) {
	ev := blankEvent("brownout", at)
	ev.Active = active
	r.append(ev)
}

// OnScaleUp implements MembershipObserver.
func (r *FlightRecorder) OnScaleUp(machine int, at, ready core.Time) {
	ev := blankEvent("scale-up", at)
	ev.Server = machine
	ev.Ready = core.NullTime(ready)
	r.append(ev)
}

// OnJoin implements MembershipObserver.
func (r *FlightRecorder) OnJoin(machine int, at core.Time, members int) {
	ev := blankEvent("join", at)
	ev.Server, ev.Members = machine, members
	r.append(ev)
}

// OnScaleDown implements MembershipObserver.
func (r *FlightRecorder) OnScaleDown(machine int, at core.Time, members, handoffs int) {
	ev := blankEvent("scale-down", at)
	ev.Server, ev.Members, ev.Handoffs = machine, members, handoffs
	r.append(ev)
}

// OnHandoff implements MembershipObserver.
func (r *FlightRecorder) OnHandoff(task, from int, at core.Time) {
	ev := blankEvent("handoff", at)
	ev.Task, ev.Server = task, from
	r.append(ev)
}

// OnHedge implements HedgeObserver.
func (r *FlightRecorder) OnHedge(task, from, to int, at, start, end core.Time) {
	ev := blankEvent("hedge", at)
	ev.Task, ev.Server, ev.From = task, to, from
	ev.Start, ev.End = core.NullTime(start), core.NullTime(end)
	r.append(ev)
}

// OnHedgeWin implements HedgeObserver.
func (r *FlightRecorder) OnHedgeWin(task, server int, byCopy bool, at core.Time) {
	ev := blankEvent("hedge-win", at)
	ev.Task, ev.Server, ev.Copy = task, server, byCopy
	r.append(ev)
}

// OnHedgeCancel implements HedgeObserver.
func (r *FlightRecorder) OnHedgeCancel(task, server int, at core.Time, started bool) {
	ev := blankEvent("hedge-cancel", at)
	ev.Task, ev.Server, ev.Started = task, server, started
	r.append(ev)
}

// OnBreakerOpen implements ResilienceObserver.
func (r *FlightRecorder) OnBreakerOpen(server int, at core.Time) {
	ev := blankEvent("breaker-open", at)
	ev.Server = server
	r.append(ev)
}

// OnBreakerProbe implements ResilienceObserver.
func (r *FlightRecorder) OnBreakerProbe(server, task int, at core.Time) {
	ev := blankEvent("breaker-probe", at)
	ev.Task, ev.Server = task, server
	r.append(ev)
}

// OnBreakerClose implements ResilienceObserver.
func (r *FlightRecorder) OnBreakerClose(server int, at core.Time) {
	ev := blankEvent("breaker-close", at)
	ev.Server = server
	r.append(ev)
}

// OnRetryBudgetDrop implements ResilienceObserver.
func (r *FlightRecorder) OnRetryBudgetDrop(task, attempts int, at core.Time) {
	ev := blankEvent("retry-budget-drop", at)
	ev.Task, ev.Attempt = task, attempts
	r.append(ev)
}
