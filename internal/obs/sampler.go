package obs

import (
	"fmt"

	"flowsched/internal/core"
	"flowsched/internal/eventq"
)

// Sample is one instant of the time series: the cluster state after every
// event at Time ≤ the sample instant has been applied.
type Sample struct {
	Time    core.Time
	Queue   []int     // per-server unfinished requests (queued + running)
	Backlog int       // total released-but-unfinished requests (Σ queues + parked/failing-over)
	MaxAge  core.Time // age of the oldest in-flight request — the max-flow watermark
	Busy    int       // servers with a non-empty queue
	Members int       // active cluster membership (= m unless elastic events arrive)
}

// Utilization returns the instantaneous fraction of busy servers.
func (s Sample) Utilization() float64 {
	if len(s.Queue) == 0 {
		return 0
	}
	return float64(s.Busy) / float64(len(s.Queue))
}

// Sampler is a Probe recording the cluster state at a fixed interval dt:
// per-server queue lengths, the total backlog, the in-flight max-flow
// watermark (age of the oldest unfinished request — the live counterpart of
// Fmax) and utilization. Over the stable adversarial prefixes of the
// paper's Section 6, the recorded queue profile is exactly the stable
// profile w_τ(j) = min(m − j, m − k) driven by Theorems 8–10; under fault
// plans it shows the PR 1 failover spikes as they happen.
//
// Samples are taken at t = 0, dt, 2dt, …, makespan; a sample at instant b
// reflects every event with time ≤ b. The fault-free simulator reports
// completions eagerly at dispatch (see Probe), so the sampler reorders them
// through an internal pending-completion heap.
type Sampler struct {
	dt      core.Time
	m       int
	samples []Sample

	next    core.Time // next sample boundary to emit
	queue   []int     // per-server unfinished requests
	backlog int
	members int // active membership; updated by elastic join/drain events

	pending eventq.Queue[sampDone] // future completions, keyed by end time

	releases  []core.Time // arrival order ⇒ non-decreasing
	arrived   []int       // task ids in arrival order
	finished  []bool      // indexed like arrived (by arrival position)
	posOf     map[int]int // task id → arrival position
	oldest    int         // arrival position of the oldest in-flight candidate
	inFlight  int
	clockMax  core.Time
	doneEmits bool
}

type sampDone struct{ task, server int }

// NewSampler returns a sampler for m servers at interval dt. dt ≤ 0 and
// m ≤ 0 are rejected: a non-positive interval would make the sample
// boundary sequence ill-defined.
func NewSampler(m int, dt core.Time) (*Sampler, error) {
	if m <= 0 {
		return nil, fmt.Errorf("obs: sampler needs at least one server, got m=%d", m)
	}
	if !(dt > 0) {
		return nil, fmt.Errorf("obs: sampling interval must be positive, got dt=%v", dt)
	}
	return &Sampler{
		dt:      dt,
		m:       m,
		members: m,
		queue:   make([]int, m),
		posOf:   make(map[int]int),
	}, nil
}

// SetMembers primes the membership gauge for an elastic run that starts with
// fewer than m active machines (the simulator only reports *changes* through
// MembershipObserver). Call it before the run; the default is m.
func (s *Sampler) SetMembers(n int) { s.members = n }

// Interval returns the sampling interval dt.
func (s *Sampler) Interval() core.Time { return s.dt }

// Samples returns the recorded time series (valid after OnDone).
func (s *Sampler) Samples() []Sample { return s.samples }

// PeakBacklog returns the largest sampled backlog and the sample instant it
// was recorded at.
func (s *Sampler) PeakBacklog() (int, core.Time) {
	peak, at := 0, core.Time(0)
	for _, sm := range s.samples {
		if sm.Backlog > peak {
			peak, at = sm.Backlog, sm.Time
		}
	}
	return peak, at
}

// PeakMaxAge returns the largest sampled in-flight watermark and its sample
// instant — a lower bound on the run's Fmax observable mid-run.
func (s *Sampler) PeakMaxAge() (core.Time, core.Time) {
	peak, at := core.Time(0), core.Time(0)
	for _, sm := range s.samples {
		if sm.MaxAge > peak {
			peak, at = sm.MaxAge, sm.Time
		}
	}
	return peak, at
}

// record captures the current state as the sample at instant at.
func (s *Sampler) record(at core.Time) {
	q := make([]int, s.m)
	copy(q, s.queue)
	busy := 0
	for _, n := range q {
		if n > 0 {
			busy++
		}
	}
	age := core.Time(0)
	if pos := s.oldestInFlight(); pos >= 0 {
		age = at - s.releases[pos]
	}
	s.samples = append(s.samples, Sample{Time: at, Queue: q, Backlog: s.backlog, MaxAge: age, Busy: busy, Members: s.members})
}

// oldestInFlight advances past finished arrivals and returns the arrival
// position of the oldest unfinished request, or -1.
func (s *Sampler) oldestInFlight() int {
	for s.oldest < len(s.arrived) && s.finished[s.oldest] {
		s.oldest++
	}
	if s.oldest >= len(s.arrived) || s.inFlight == 0 {
		return -1
	}
	return s.oldest
}

// advance applies pending completions up to instant to, emitting sample
// boundaries strictly before each applied event and before to, so a sample
// at boundary b sees every event with time ≤ b.
func (s *Sampler) advance(to core.Time) {
	for s.pending.Len() > 0 {
		when, _ := s.pending.Peek()
		if when > to {
			break
		}
		_, c := s.pending.Pop()
		s.emitBefore(when)
		s.applyComplete(c.task, c.server)
	}
	s.emitBefore(to)
	if to > s.clockMax {
		s.clockMax = to
	}
}

// emitBefore records every unemitted boundary strictly before instant t.
func (s *Sampler) emitBefore(t core.Time) {
	for s.next < t {
		s.record(s.next)
		s.next += s.dt
	}
}

func (s *Sampler) applyComplete(task, server int) {
	if server >= 0 && server < s.m && s.queue[server] > 0 {
		s.queue[server]--
	}
	s.markFinished(task)
}

func (s *Sampler) markFinished(task int) {
	if pos, ok := s.posOf[task]; ok && !s.finished[pos] {
		s.finished[pos] = true
		s.inFlight--
		s.backlog--
	}
}

// OnArrival implements Probe.
func (s *Sampler) OnArrival(task int, release core.Time) {
	s.advance(release)
	s.posOf[task] = len(s.arrived)
	s.arrived = append(s.arrived, task)
	s.releases = append(s.releases, release)
	s.finished = append(s.finished, false)
	s.inFlight++
	s.backlog++
}

// OnDispatch implements Probe.
func (s *Sampler) OnDispatch(task, server int, at, start, end core.Time) {
	s.advance(at)
	if server >= 0 && server < s.m {
		s.queue[server]++
	}
}

// OnComplete implements Probe.
func (s *Sampler) OnComplete(task, server int, release, proc, end core.Time) {
	// The fault-free simulator reports completions at dispatch with a
	// future end; buffer and apply in time order.
	s.pending.Push(end, sampDone{task: task, server: server})
}

// OnDrop implements Probe.
func (s *Sampler) OnDrop(task int, release, at core.Time) {
	s.advance(at)
	s.markFinished(task)
}

// OnRetry implements Probe.
func (s *Sampler) OnRetry(task, attempt int, at core.Time) { s.advance(at) }

// OnFailover implements Probe: a crashing server loses its whole queue.
func (s *Sampler) OnFailover(server int, at core.Time, lost int) {
	s.advance(at)
	if server >= 0 && server < s.m {
		s.queue[server] = 0
	}
}

// OnScaleUp implements MembershipObserver (membership only changes at the
// join, warm-up later).
func (s *Sampler) OnScaleUp(machine int, at, ready core.Time) { s.advance(at) }

// OnJoin implements MembershipObserver.
func (s *Sampler) OnJoin(machine int, at core.Time, members int) {
	s.advance(at)
	s.members = members
}

// OnScaleDown implements MembershipObserver.
func (s *Sampler) OnScaleDown(machine int, at core.Time, members, handoffs int) {
	s.advance(at)
	s.members = members
}

// OnHandoff implements MembershipObserver.
func (s *Sampler) OnHandoff(task, from int, at core.Time) { s.advance(at) }

// OnDone implements Probe: it flushes pending completions and emits every
// remaining boundary up to and including the makespan.
func (s *Sampler) OnDone(makespan core.Time) {
	if s.doneEmits {
		return
	}
	s.doneEmits = true
	s.advance(makespan)
	for s.next <= makespan {
		s.record(s.next)
		s.next += s.dt
	}
}
