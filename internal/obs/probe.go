// Package obs is the in-flight observability layer of the cluster
// simulator: probes that watch a run while it executes instead of replaying
// the finished core.Schedule through trace.FromSchedule.
//
// A Probe receives the simulator's event stream (arrivals, dispatches,
// completions, plus the fault hooks of sim.RunFaulty) through plain method
// calls. The simulator invokes every hook behind a `probe != nil` guard, so
// a run without a probe pays nothing — the hot loops stay allocation-free
// (pinned by the alloc guards in internal/sim and the ProbeOverheadSim
// benchreg pair). Probes themselves may allocate: they are only on the
// instrumented path.
//
// Six built-in probes cover the production observables:
//
//   - Histogram / HistogramProbe: streaming log-bucketed flow-time and
//     stretch distributions with bounded memory, quantile queries, and
//     per-bucket task exemplars (QuantileExemplar);
//   - Sampler: a fixed-interval time series of per-server queue length,
//     in-flight max-flow watermark and instantaneous utilization — the
//     w_τ(j) profile of the paper's Section 6 lower bounds, live;
//   - JSONLSink: a buffered structured event log for offline analysis,
//     replayable into a trace (ReplayTrace);
//   - Counters: dispatch/retry/drop/failover/overload/membership totals
//     with Prometheus-style text exposition;
//   - Tracer: per-task causal span trees (queued → attempts → terminal
//     disposition) with KeepAll or KeepWorst(k) retention;
//   - FlightRecorder: a fixed-size ring of the last N raw events — the
//     crash recorder chaos and audit dump next to their findings.
//
// Four optional extension interfaces widen the base 7-hook Probe contract:
// OverloadObserver (reject/shed/eject/readmit/brownout, fired by
// sim.RunGuarded), MembershipObserver (scale-up/join/scale-down/handoff,
// fired by sim.RunElastic), HedgeObserver (hedge/hedge-win/hedge-cancel,
// fired by sim.RunHedged) and ResilienceObserver (breaker
// open/probe/close and retry-budget drops, fired by sim.RunResilient). The
// simulator type-asserts its probe once per run, so probes opt in by
// implementing the methods — Counters and FlightRecorder observe all 23
// hooks, Tracer everything but the resilience stream, the other probes only
// the base stream.
//
// Multi fans one event stream out to several probes, forwarding extension
// hooks to the members that implement them.
package obs

import "flowsched/internal/core"

// Probe observes a simulation run in flight. All hooks are invoked
// synchronously from the simulator loop; implementations must not retain
// the goroutine or block.
//
// Event-time contract: the fault-free simulator (sim.Run) determines a
// request's completion at dispatch, so OnComplete fires immediately after
// OnDispatch with the — possibly future — completion instant in end.
// Probes that need events in time order must reorder internally (Sampler
// does, with a pending-completion heap). The faulty simulator
// (sim.RunFaulty) reports OnComplete only when a completion becomes final,
// in time order; attempts invalidated by a crash are never completed —
// their server's backlog is reported through OnFailover instead.
type Probe interface {
	// OnArrival fires when a request is released.
	OnArrival(task int, release core.Time)
	// OnDispatch fires when the router assigns a request (or a failover
	// re-dispatch) to server at instant at; the attempt occupies
	// [start, end) if it is not aborted.
	OnDispatch(task, server int, at, start, end core.Time)
	// OnComplete fires when a request's completion at end is final.
	// release and proc echo the task so probes need no per-task state to
	// derive flow (end − release) and stretch ((end − release) / proc).
	OnComplete(task, server int, release, proc, end core.Time)
	// OnDrop fires when the retry policy gives up on a request at instant
	// at (attempt cap or timeout).
	OnDrop(task int, release, at core.Time)
	// OnRetry fires when a request aborted by a crash is rescheduled;
	// attempt counts the dispatches completed so far (≥ 1).
	OnRetry(task, attempt int, at core.Time)
	// OnFailover fires when server crashes at instant at, losing lost
	// queued-or-running requests (they re-enter through OnRetry/OnDrop).
	OnFailover(server int, at core.Time, lost int)
	// OnDone fires once after the last event with the run's makespan.
	OnDone(makespan core.Time)
}

// BaseProbe is a no-op Probe for embedding: custom probes override only the
// hooks they care about.
type BaseProbe struct{}

// OnArrival implements Probe.
func (BaseProbe) OnArrival(task int, release core.Time) {}

// OnDispatch implements Probe.
func (BaseProbe) OnDispatch(task, server int, at, start, end core.Time) {}

// OnComplete implements Probe.
func (BaseProbe) OnComplete(task, server int, release, proc, end core.Time) {}

// OnDrop implements Probe.
func (BaseProbe) OnDrop(task int, release, at core.Time) {}

// OnRetry implements Probe.
func (BaseProbe) OnRetry(task, attempt int, at core.Time) {}

// OnFailover implements Probe.
func (BaseProbe) OnFailover(server int, at core.Time, lost int) {}

// OnDone implements Probe.
func (BaseProbe) OnDone(makespan core.Time) {}

// multi fans events out to several probes in order.
type multi []Probe

// Multi combines probes into one: every event is forwarded to each probe in
// argument order. Nil entries are skipped; Multi() and Multi(nil...) return
// nil, so the simulator's nil guard still short-circuits.
func Multi(probes ...Probe) Probe {
	kept := make(multi, 0, len(probes))
	for _, p := range probes {
		if p != nil {
			kept = append(kept, p)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return kept
}

// OnArrival implements Probe.
func (m multi) OnArrival(task int, release core.Time) {
	for _, p := range m {
		p.OnArrival(task, release)
	}
}

// OnDispatch implements Probe.
func (m multi) OnDispatch(task, server int, at, start, end core.Time) {
	for _, p := range m {
		p.OnDispatch(task, server, at, start, end)
	}
}

// OnComplete implements Probe.
func (m multi) OnComplete(task, server int, release, proc, end core.Time) {
	for _, p := range m {
		p.OnComplete(task, server, release, proc, end)
	}
}

// OnDrop implements Probe.
func (m multi) OnDrop(task int, release, at core.Time) {
	for _, p := range m {
		p.OnDrop(task, release, at)
	}
}

// OnRetry implements Probe.
func (m multi) OnRetry(task, attempt int, at core.Time) {
	for _, p := range m {
		p.OnRetry(task, attempt, at)
	}
}

// OnFailover implements Probe.
func (m multi) OnFailover(server int, at core.Time, lost int) {
	for _, p := range m {
		p.OnFailover(server, at, lost)
	}
}

// OnDone implements Probe.
func (m multi) OnDone(makespan core.Time) {
	for _, p := range m {
		p.OnDone(makespan)
	}
}
