package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"flowsched/internal/core"
)

func TestTracerSpanAssembly(t *testing.T) {
	tr := NewTracer(KeepAll())

	// Task 0: clean single-attempt completion.
	tr.OnArrival(0, 1)
	tr.OnDispatch(0, 2, 1, 3, 5)
	tr.OnComplete(0, 2, 1, 2, 5)

	// Task 1: crash-aborted attempt, retry, second attempt completes.
	tr.OnArrival(1, 2)
	tr.OnDispatch(1, 0, 2, 2, 6)
	tr.OnFailover(0, 4, 1)
	tr.OnRetry(1, 1, 4)
	tr.OnDispatch(1, 1, 4, 7, 11)
	tr.OnComplete(1, 1, 2, 4, 11)

	// Task 2: crash then drop.
	tr.OnArrival(2, 3)
	tr.OnDispatch(2, 0, 3, 8, 9)
	tr.OnDrop(2, 3, 10)

	tr.OnDone(11)
	if !tr.Done() || tr.Makespan() != 11 {
		t.Fatalf("Done=%v Makespan=%v", tr.Done(), tr.Makespan())
	}

	t0 := tr.Trace(0)
	if t0 == nil || t0.State != TraceCompleted || t0.Flow != 4 || t0.EndAt != 5 {
		t.Fatalf("task 0 trace = %+v", t0)
	}
	if len(t0.Attempts) != 1 || t0.Attempts[0].Outcome != AttemptCompleted ||
		t0.Attempts[0].Server != 2 || t0.Attempts[0].Start != 3 || t0.Attempts[0].Retimed {
		t.Fatalf("task 0 attempts = %+v", t0.Attempts)
	}
	if w := t0.QueueWait(); w != 2 {
		t.Fatalf("task 0 queue wait = %v", w)
	}

	t1 := tr.Trace(1)
	if t1 == nil || t1.State != TraceCompleted || t1.Retries != 1 || len(t1.Attempts) != 2 {
		t.Fatalf("task 1 trace = %+v", t1)
	}
	if a := t1.Attempts[0]; a.Outcome != AttemptCrashed || a.AbortAt != 4 || a.Server != 0 {
		t.Fatalf("task 1 attempt 0 = %+v", a)
	}
	if a := t1.Attempts[1]; a.Outcome != AttemptCompleted || a.End != 11 {
		t.Fatalf("task 1 attempt 1 = %+v", a)
	}

	t2 := tr.Trace(2)
	if t2 == nil || t2.State != TraceDropped || t2.Flow != 7 || len(t2.Attempts) != 1 {
		t.Fatalf("task 2 trace = %+v", t2)
	}
	if a := t2.Attempts[0]; a.Outcome != AttemptCrashed || a.AbortAt != 10 {
		t.Fatalf("task 2 attempt = %+v", a)
	}
}

func TestTracerRetimeReconciliation(t *testing.T) {
	tr := NewTracer(KeepAll())
	tr.OnArrival(0, 0)
	tr.OnDispatch(0, 1, 0, 5, 8) // forecast [5, 8)
	// A watermark shed ahead in the queue silently re-timed the attempt; the
	// completion arrives with a different end.
	tr.OnComplete(0, 1, 0, 3, 7)
	a := tr.Trace(0).Attempts[0]
	if !a.Retimed {
		t.Fatal("forecast-end mismatch not flagged Retimed")
	}
	if a.End != 7 || a.Start != 4 {
		t.Fatalf("reconciled interval [%v, %v), want [4, 7)", a.Start, a.End)
	}

	// Matching forecast stays untouched.
	tr.OnArrival(1, 0)
	tr.OnDispatch(1, 0, 0, 2, 6)
	tr.OnComplete(1, 0, 0, 4, 6)
	if a := tr.Trace(1).Attempts[0]; a.Retimed || a.Start != 2 {
		t.Fatalf("clean completion mangled: %+v", a)
	}
}

func TestTracerOverloadAndMembershipHooks(t *testing.T) {
	tr := NewTracer(KeepAll())

	// Rejection on arrival: no attempts, reason recorded.
	tr.OnArrival(0, 1)
	tr.OnReject(0, 1, "queue-bound")
	t0 := tr.Trace(0)
	if t0.State != TraceRejected || t0.Reason != "queue-bound" || len(t0.Attempts) != 0 || t0.Flow != 0 {
		t.Fatalf("rejected trace = %+v", t0)
	}

	// Watermark shed closes the open attempt; deadline shed (no dispatch)
	// leaves none.
	tr.OnArrival(1, 0)
	tr.OnDispatch(1, 2, 0, 5, 6)
	tr.OnShed(1, 2, 0, 9, "watermark")
	t1 := tr.Trace(1)
	if t1.State != TraceShed || t1.Flow != 9 || t1.Attempts[0].Outcome != AttemptShed ||
		t1.Attempts[0].AbortAt != 9 {
		t.Fatalf("shed trace = %+v", t1)
	}
	tr.OnArrival(2, 4)
	tr.OnShed(2, 3, 4, 7, "deadline")
	if t2 := tr.Trace(2); t2.State != TraceShed || len(t2.Attempts) != 0 || t2.Flow != 3 {
		t.Fatalf("deadline-shed trace = %+v", t2)
	}

	// Handoff closes the attempt as handed-off; the re-dispatch opens a new
	// one and the completion closes it.
	tr.OnArrival(3, 0)
	tr.OnDispatch(3, 0, 0, 1, 4)
	tr.OnScaleDown(0, 2, 3, 1)
	tr.OnHandoff(3, 0, 2)
	tr.OnDispatch(3, 1, 2, 2, 5)
	tr.OnComplete(3, 1, 0, 3, 5)
	t3 := tr.Trace(3)
	if len(t3.Attempts) != 2 || t3.Attempts[0].Outcome != AttemptHandedOff ||
		t3.Attempts[0].AbortAt != 2 || t3.Attempts[1].Outcome != AttemptCompleted {
		t.Fatalf("handoff trace = %+v", t3.Attempts)
	}
	if t3.Retries != 0 {
		t.Fatalf("handoff counted as retry: %+v", t3)
	}
}

// TestTracerKeepWorstExact pins the KeepWorst contract: after the run, the
// retained set is exactly the k tasks with the largest flows under the
// (rank, task) total order, no matter the resolution order.
func TestTracerKeepWorstExact(t *testing.T) {
	const n, k = 200, 7
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		tr := NewTracer(KeepWorst(k))
		flows := make([]float64, n)
		order := rng.Perm(n)
		for _, id := range order {
			// Coarse quantization forces rank ties so the task-id tiebreak is
			// exercised, not just the float order.
			flow := float64(rng.Intn(12))
			flows[id] = flow
			tr.OnArrival(id, 0)
			tr.OnDispatch(id, 0, 0, 0, core.Time(flow))
			tr.OnComplete(id, 0, 0, 1, core.Time(flow))
		}
		tr.OnDone(100)

		// Oracle: sort all tasks by (flow desc, id asc), take the first k.
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		sort.Slice(ids, func(a, b int) bool {
			if flows[ids[a]] != flows[ids[b]] {
				return flows[ids[a]] > flows[ids[b]]
			}
			return ids[a] < ids[b]
		})
		want := ids[:k]

		got := tr.Worst(k)
		if len(got) != k {
			t.Fatalf("trial %d: retained %d traces, want %d", trial, len(got), k)
		}
		for i, tr := range got {
			if tr.Task != want[i] {
				t.Fatalf("trial %d: worst[%d] = T%d (flow %v), want T%d (flow %v)",
					trial, i, tr.Task, tr.Flow, want[i], flows[want[i]])
			}
		}
		// Traces() and Trace() agree with the heap contents.
		if len(tr.Traces()) != k {
			t.Fatalf("trial %d: Traces() returned %d, want %d", trial, len(tr.Traces()), k)
		}
		for _, id := range want {
			if tr.Trace(id) == nil {
				t.Fatalf("trial %d: retained task %d not addressable", trial, id)
			}
		}
	}
}

func TestTracerKeepWorstUnfinishedRanksWorst(t *testing.T) {
	tr := NewTracer(KeepWorst(2))
	for id := 0; id < 5; id++ {
		tr.OnArrival(id, 0)
		tr.OnDispatch(id, 0, 0, 0, core.Time(100+id))
		tr.OnComplete(id, 0, 0, 1, core.Time(100+id))
	}
	tr.OnArrival(9, 50) // never resolves
	tr.OnDone(200)

	worst := tr.Worst(2)
	if len(worst) != 2 || worst[0].Task != 9 || worst[0].State != TraceUnfinished {
		t.Fatalf("worst = %+v", worst)
	}
	if worst[1].Task != 4 { // largest finite flow
		t.Fatalf("worst[1] = T%d, want T4", worst[1].Task)
	}
	if !math.IsInf(worst[0].rank(), 1) {
		t.Fatalf("unfinished rank = %v, want +Inf", worst[0].rank())
	}
}

func TestTracerWriteJSON(t *testing.T) {
	tr := NewTracer(KeepAll())
	tr.OnArrival(0, 1)
	tr.OnDispatch(0, 2, 1, 3, 5)
	tr.OnComplete(0, 2, 1, 2, 5)
	tr.OnArrival(1, 2) // unfinished: NaN instants must encode as null
	tr.OnDone(5)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Makespan *float64 `json:"makespan"`
		Tasks    []struct {
			Task  int      `json:"task"`
			State string   `json:"state"`
			EndAt *float64 `json:"end_at"`
			Flow  *float64 `json:"flow"`
			Att   []struct {
				Server  int      `json:"server"`
				Outcome string   `json:"outcome"`
				AbortAt *float64 `json:"abort_at"`
			} `json:"attempts"`
		} `json:"tasks"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v\n%s", err, buf.String())
	}
	if doc.Makespan == nil || *doc.Makespan != 5 || len(doc.Tasks) != 2 {
		t.Fatalf("doc = %+v", doc)
	}
	if doc.Tasks[0].State != "completed" || *doc.Tasks[0].Flow != 4 ||
		doc.Tasks[0].Att[0].Outcome != "completed" || doc.Tasks[0].Att[0].AbortAt != nil {
		t.Fatalf("task 0 wire form = %+v", doc.Tasks[0])
	}
	if doc.Tasks[1].State != "unfinished" || doc.Tasks[1].EndAt != nil || doc.Tasks[1].Flow != nil {
		t.Fatalf("unfinished wire form = %+v", doc.Tasks[1])
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatalf("NaN leaked into trace JSON:\n%s", buf.String())
	}
}

func TestTracerHedgeSiblingSpans(t *testing.T) {
	tr := NewTracer(KeepAll())

	// Task 0: hedge issued, the copy wins, the primary is hedge-cancelled.
	tr.OnArrival(0, 0)
	tr.OnDispatch(0, 1, 0, 5, 15) // slow primary
	tr.OnHedge(0, 1, 2, 3, 4, 7)  // sibling copy on server 2
	tr.OnHedgeWin(0, 2, true, 7)
	tr.OnComplete(0, 2, 0, 3, 7)
	tr.OnHedgeCancel(0, 1, 7, true)

	t0 := tr.Trace(0)
	if t0.State != TraceCompleted || len(t0.Attempts) != 2 {
		t.Fatalf("task 0 trace = %+v", t0)
	}
	pri, cp := t0.Attempts[0], t0.Attempts[1]
	if pri.Hedge || pri.Outcome != AttemptHedgeCancelled || pri.AbortAt != 7 {
		t.Fatalf("primary span = %+v", pri)
	}
	if !cp.Hedge || cp.Outcome != AttemptCompleted || cp.Server != 2 || cp.End != 7 {
		t.Fatalf("copy span = %+v", cp)
	}

	// Task 1: hedge issued, the primary wins, the copy is hedge-cancelled
	// before service — the cancellation must close the copy span, not the
	// pending primary.
	tr.OnArrival(1, 0)
	tr.OnDispatch(1, 0, 0, 0, 4)
	tr.OnHedge(1, 0, 3, 2, 6, 10)
	tr.OnHedgeWin(1, 0, false, 4)
	tr.OnComplete(1, 0, 0, 4, 4)
	tr.OnHedgeCancel(1, 3, 4, false)

	t1 := tr.Trace(1)
	if len(t1.Attempts) != 2 {
		t.Fatalf("task 1 trace = %+v", t1)
	}
	if a := t1.Attempts[0]; a.Hedge || a.Outcome != AttemptCompleted {
		t.Fatalf("task 1 primary = %+v", a)
	}
	if a := t1.Attempts[1]; !a.Hedge || a.Outcome != AttemptHedgeCancelled || a.AbortAt != 4 {
		t.Fatalf("task 1 copy = %+v", a)
	}

	// Task 2: a crash aborts the primary while a copy is pending — the
	// crash must close the primary span, skipping the hedge sibling.
	tr.OnArrival(2, 0)
	tr.OnDispatch(2, 0, 0, 0, 9)
	tr.OnHedge(2, 0, 1, 2, 5, 14)
	tr.OnFailover(0, 3, 1)
	tr.OnRetry(2, 1, 3)
	t2 := tr.Trace(2)
	if a := t2.Attempts[0]; a.Hedge || a.Outcome != AttemptCrashed || a.AbortAt != 3 {
		t.Fatalf("task 2 primary after crash = %+v", a)
	}
	if a := t2.Attempts[1]; !a.Hedge || a.Outcome != AttemptPending {
		t.Fatalf("task 2 copy must stay pending across the primary's crash: %+v", a)
	}

	// The outcome names round-trip through the wire form.
	if AttemptHedgeCancelled.String() != "hedge-cancelled" {
		t.Fatalf("outcome string = %q", AttemptHedgeCancelled.String())
	}
}
