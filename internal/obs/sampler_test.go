package obs

import (
	"testing"

	"flowsched/internal/core"
)

func TestNewSamplerValidation(t *testing.T) {
	if _, err := NewSampler(0, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewSampler(-2, 1); err == nil {
		t.Error("m=-2 accepted")
	}
	for _, dt := range []core.Time{0, -1, core.Time(nan())} {
		if _, err := NewSampler(2, dt); err == nil {
			t.Errorf("dt=%v accepted", dt)
		}
	}
	s, err := NewSampler(3, 0.5)
	if err != nil || s.Interval() != 0.5 {
		t.Fatalf("NewSampler(3, 0.5) = %v, %v", s, err)
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

// TestSamplerHandRun drives the sampler with the eager completion reporting
// of the fault-free simulator and checks every boundary sample: two servers,
// task 0 on M1 over [0,2), task 1 on M2 over [1,3), dt = 1.
func TestSamplerHandRun(t *testing.T) {
	s, err := NewSampler(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.OnArrival(0, 0)
	s.OnDispatch(0, 0, 0, 0, 2)
	s.OnComplete(0, 0, 0, 2, 2) // eager: end is in the future
	s.OnArrival(1, 1)
	s.OnDispatch(1, 1, 1, 1, 3)
	s.OnComplete(1, 1, 1, 2, 3)
	s.OnDone(3)

	want := []Sample{
		{Time: 0, Queue: []int{1, 0}, Backlog: 1, MaxAge: 0, Busy: 1},
		{Time: 1, Queue: []int{1, 1}, Backlog: 2, MaxAge: 1, Busy: 2},
		{Time: 2, Queue: []int{0, 1}, Backlog: 1, MaxAge: 1, Busy: 1},
		{Time: 3, Queue: []int{0, 0}, Backlog: 0, MaxAge: 0, Busy: 0},
	}
	got := s.Samples()
	if len(got) != len(want) {
		t.Fatalf("got %d samples %v, want %d", len(got), got, len(want))
	}
	for i, w := range want {
		g := got[i]
		if g.Time != w.Time || g.Backlog != w.Backlog || g.MaxAge != w.MaxAge || g.Busy != w.Busy {
			t.Errorf("sample %d = %+v, want %+v", i, g, w)
		}
		for j := range w.Queue {
			if g.Queue[j] != w.Queue[j] {
				t.Errorf("sample %d queue = %v, want %v", i, g.Queue, w.Queue)
			}
		}
	}
	if pb, at := s.PeakBacklog(); pb != 2 || at != 1 {
		t.Errorf("PeakBacklog = %d@%v, want 2@1", pb, at)
	}
	if pa, at := s.PeakMaxAge(); pa != 1 || at != 1 {
		t.Errorf("PeakMaxAge = %v@%v, want 1@1", pa, at)
	}
	if u := got[1].Utilization(); u != 1 {
		t.Errorf("utilization at t=1 = %v, want 1", u)
	}
}

// TestSamplerCoarseInterval: dt greater than the makespan still yields the
// t = 0 sample (and only it).
func TestSamplerCoarseInterval(t *testing.T) {
	s, err := NewSampler(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	s.OnArrival(0, 0)
	s.OnDispatch(0, 0, 0, 0, 1)
	s.OnComplete(0, 0, 0, 1, 1)
	s.OnDone(1)
	got := s.Samples()
	if len(got) != 1 || got[0].Time != 0 || got[0].Backlog != 1 || got[0].Busy != 1 {
		t.Fatalf("samples = %+v, want single t=0 sample with backlog 1", got)
	}
	// OnDone must be idempotent — the facade may call it defensively.
	s.OnDone(1)
	if len(s.Samples()) != 1 {
		t.Errorf("second OnDone appended samples: %+v", s.Samples())
	}
}

// TestSamplerFailover: a crash zeroes the server's queue; the lost request
// re-enters via retry and the backlog watermark tracks it throughout.
func TestSamplerFailover(t *testing.T) {
	s, err := NewSampler(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.OnArrival(0, 0)
	s.OnDispatch(0, 0, 0, 0, 5)
	// Faulty runs report completions only when final: none here. Server 0
	// crashes at t = 2 losing the request, which retries onto server 1.
	s.OnFailover(0, 2, 1)
	s.OnRetry(0, 1, 2)
	s.OnDispatch(0, 1, 2, 2, 7)
	s.OnComplete(0, 1, 0, 5, 7)
	s.OnDone(7)

	got := s.Samples()
	// t=0,1: queued on M1. t=2..6: queued on M2. t=7: done.
	if len(got) != 8 {
		t.Fatalf("got %d samples: %+v", len(got), got)
	}
	for _, g := range got {
		switch {
		case g.Time < 2:
			if g.Queue[0] != 1 || g.Queue[1] != 0 || g.Backlog != 1 {
				t.Errorf("pre-crash sample %+v", g)
			}
		case g.Time < 7:
			if g.Queue[0] != 0 || g.Queue[1] != 1 || g.Backlog != 1 {
				t.Errorf("post-failover sample %+v", g)
			}
		default:
			if g.Backlog != 0 || g.Busy != 0 {
				t.Errorf("final sample %+v", g)
			}
		}
	}
	// The watermark keeps aging across the failover: at t=6 the request has
	// been in flight since t=0.
	if got[6].MaxAge != 6 {
		t.Errorf("MaxAge at t=6 = %v, want 6", got[6].MaxAge)
	}
}

// TestSamplerDrop: a dropped request leaves the backlog without a completion.
func TestSamplerDrop(t *testing.T) {
	s, err := NewSampler(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.OnArrival(0, 0)
	s.OnDispatch(0, 0, 0, 0, 4)
	s.OnFailover(0, 1, 1)
	s.OnDrop(0, 0, 1)
	s.OnDone(2)
	got := s.Samples()
	if len(got) != 3 {
		t.Fatalf("got %d samples: %+v", len(got), got)
	}
	if got[1].Backlog != 0 || got[1].MaxAge != 0 {
		t.Errorf("post-drop sample %+v, want empty backlog", got[1])
	}
}
