package obs

import (
	"fmt"
	"io"
	"math"

	"flowsched/internal/core"
)

// DefaultGrowth is the default per-bucket growth factor of a Histogram:
// 2^(1/8) ≈ 1.0905, eight buckets per doubling (≈ 4.4% worst-case quantile
// error, see Quantile).
var DefaultGrowth = math.Pow(2, 0.125)

// Histogram is a streaming log-bucketed (HDR-style) histogram: bucket i
// counts observations in [base·g^i, base·g^(i+1)), so memory is
// O(log_g(max/min)) regardless of how many values are observed — huge runs
// no longer need the full Metrics.Flows slice retained to answer quantile
// queries. Observations ≤ 0 land in a dedicated zero bucket.
//
// The zero value is not usable; construct with NewHistogram or
// NewHistogramGrowth.
type Histogram struct {
	growth  float64
	logG    float64
	logBase float64

	counts []uint64 // counts[i] is bucket lo+i
	lo     int      // bucket index of counts[0]
	zeros  uint64   // observations ≤ 0

	// ex mirrors counts bucket-for-bucket (ex[i] is bucket exLo+i) and holds
	// each bucket's exemplar: the task behind the largest value observed in
	// it. Lazily allocated by the first ObserveExemplar and re-aligned to
	// counts on demand, nil on the plain Observe path; memory is bounded by
	// the bucket count. The zero bucket's exemplar lives in exZero.
	ex     []exemplar
	exLo   int
	exZero exemplar
	exN    int // buckets carrying an exemplar, zero bucket included

	count    uint64
	sum      float64
	minSeen  float64
	maxSeen  float64
	observed bool
}

// exemplar ties a bucket to one representative task: the task of the
// largest value recorded in the bucket (first seen wins ties, so replaying
// the same event stream reproduces the same exemplars).
type exemplar struct {
	task int
	val  float64
	ok   bool
}

// exZeroBucket stands in for the zero bucket in QuantileExemplar's rank
// walk; real bucket indices of positive values never reach it.
const exZeroBucket = math.MinInt

// histBase is the lower edge of bucket 0; values this small are far below
// any meaningful flow time, so the bucket index of real observations stays
// moderate.
const histBase = 1e-12

// NewHistogram returns a histogram with the DefaultGrowth bucket scheme.
func NewHistogram() *Histogram {
	h, _ := NewHistogramGrowth(DefaultGrowth)
	return h
}

// NewHistogramGrowth returns a histogram whose buckets grow by the given
// factor (must exceed 1). Smaller factors mean finer quantiles and more
// buckets: relative quantile error is at most √growth − 1.
func NewHistogramGrowth(growth float64) (*Histogram, error) {
	if !(growth > 1) || math.IsInf(growth, 0) {
		return nil, fmt.Errorf("obs: histogram growth factor must be > 1, got %v", growth)
	}
	return &Histogram{
		growth:  growth,
		logG:    math.Log(growth),
		logBase: math.Log(histBase),
	}, nil
}

// Growth returns the per-bucket growth factor.
func (h *Histogram) Growth() float64 { return h.growth }

// RelativeError returns the documented worst-case relative error of
// Quantile: √growth − 1.
func (h *Histogram) RelativeError() float64 { return math.Sqrt(h.growth) - 1 }

// bucketOf returns the bucket index of a positive value.
func (h *Histogram) bucketOf(v float64) int {
	return int(math.Floor((math.Log(v) - h.logBase) / h.logG))
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.count++
	h.sum += v
	if !h.observed || v < h.minSeen {
		h.minSeen = v
	}
	if !h.observed || v > h.maxSeen {
		h.maxSeen = v
	}
	h.observed = true
	if v <= 0 || math.IsNaN(v) {
		h.zeros++
		return
	}
	idx := h.bucketOf(v)
	if h.counts == nil {
		h.counts = make([]uint64, 1, 64)
		h.lo = idx
	}
	switch {
	case idx < h.lo:
		grown := make([]uint64, len(h.counts)+(h.lo-idx))
		copy(grown[h.lo-idx:], h.counts)
		h.counts, h.lo = grown, idx
	case idx >= h.lo+len(h.counts):
		for idx >= h.lo+len(h.counts) {
			h.counts = append(h.counts, 0)
		}
	}
	h.counts[idx-h.lo]++
}

// ObserveExemplar records one value attributed to a task, additionally
// remembering the task behind each bucket's largest value so quantile
// queries can answer "show me the trace behind this" (QuantileExemplar).
// Ties keep the first-seen task, so a deterministic event stream yields
// deterministic exemplars.
func (h *Histogram) ObserveExemplar(v float64, task int) {
	h.Observe(v)
	if v <= 0 || math.IsNaN(v) {
		h.setExemplar(&h.exZero, v, task)
		return
	}
	idx := h.bucketOf(v)
	if h.exLo != h.lo || len(h.ex) != len(h.counts) {
		// counts grew (or this is the first exemplar): re-align the mirror.
		if h.ex == nil {
			h.exLo = h.lo
		}
		grown := make([]exemplar, len(h.counts))
		copy(grown[h.exLo-h.lo:], h.ex)
		h.ex, h.exLo = grown, h.lo
	}
	h.setExemplar(&h.ex[idx-h.lo], v, task)
}

func (h *Histogram) setExemplar(e *exemplar, v float64, task int) {
	if e.ok && e.val >= v {
		return
	}
	if !e.ok {
		h.exN++
	}
	*e = exemplar{task: task, val: v, ok: true}
}

// Exemplars returns the number of buckets carrying an exemplar.
func (h *Histogram) Exemplars() int { return h.exN }

// QuantileExemplar returns Quantile(q) together with the exemplar task of
// the bucket the quantile falls in: the task behind the bucket's largest
// recorded value, or −1 when the bucket carries no exemplar (values
// recorded through plain Observe, or an empty histogram).
func (h *Histogram) QuantileExemplar(q float64) (float64, int) {
	v := h.Quantile(q)
	if h.count == 0 || h.exN == 0 {
		return v, -1
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Floor(q * float64(h.count-1)))
	idx := exZeroBucket
	if rank >= h.zeros {
		cum := h.zeros
		for i, c := range h.counts {
			cum += c
			if cum > rank {
				idx = h.lo + i
				break
			}
		}
	}
	e := h.exZero
	if idx != exZeroBucket {
		e = exemplar{}
		if i := idx - h.exLo; h.ex != nil && i >= 0 && i < len(h.ex) {
			e = h.ex[i]
		}
	}
	if e.ok {
		return v, e.task
	}
	return v, -1
}

// Count returns the number of observations.
func (h *Histogram) Count() int { return int(h.count) }

// Sum returns the exact running sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the exact smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	if !h.observed {
		return 0
	}
	return h.minSeen
}

// Max returns the exact largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if !h.observed {
		return 0
	}
	return h.maxSeen
}

// Buckets returns the number of allocated buckets — the memory bound.
func (h *Histogram) Buckets() int { return len(h.counts) }

// Quantile returns an approximation of the q-quantile (q clamped to [0,1];
// 0 when empty): the log-bucket representative — the geometric midpoint of
// the bucket's edges, clamped to the observed [Min, Max] — of the order
// statistic of rank ⌊q·(Count−1)⌋. The representative is within a factor
// √growth of every value in its bucket, so the result is within relative
// error √growth − 1 of that order statistic; the exact (interpolated)
// quantile lies between ranks ⌊q·(Count−1)⌋ and ⌈q·(Count−1)⌉, one
// log-bucket's error away (property-tested against stats.Quantile in
// internal/sim).
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Floor(q * float64(h.count-1))) // 0-based order statistic
	if rank < h.zeros {
		return h.clamp(0)
	}
	cum := h.zeros
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			rep := math.Exp(h.logBase + (float64(h.lo+i)+0.5)*h.logG)
			return h.clamp(rep)
		}
	}
	return h.maxSeen // unreachable unless counts drifted; fail toward the max
}

// clamp bounds a bucket representative by the exactly-tracked extremes.
func (h *Histogram) clamp(v float64) float64 {
	if v < h.minSeen {
		return h.minSeen
	}
	if v > h.maxSeen {
		return h.maxSeen
	}
	return v
}

// WriteProm writes the histogram as a Prometheus summary: quantile gauges
// plus _sum and _count.
func (h *Histogram) WriteProm(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "# HELP %s Streaming log-bucketed distribution (max relative error %.3g).\n# TYPE %s summary\n",
		name, h.RelativeError(), name); err != nil {
		return err
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if _, err := fmt.Fprintf(w, "%s{quantile=%q} %g\n", name, fmt.Sprintf("%g", q), h.Quantile(q)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.sum, name, h.count)
	return err
}

// HistogramProbe streams completed requests' flow times and stretches into
// two histograms.
type HistogramProbe struct {
	BaseProbe
	Flow    *Histogram // flow time C_i − r_i
	Stretch *Histogram // stretch (C_i − r_i) / p_i
}

// NewHistogramProbe returns a probe with DefaultGrowth histograms.
func NewHistogramProbe() *HistogramProbe {
	return &HistogramProbe{Flow: NewHistogram(), Stretch: NewHistogram()}
}

// OnComplete implements Probe. Observations carry the task id as the
// bucket exemplar, so the tail quantiles always name a concrete task whose
// trace explains them.
func (p *HistogramProbe) OnComplete(task, server int, release, proc, end core.Time) {
	flow := end - release
	p.Flow.ObserveExemplar(flow, task)
	if proc > 0 {
		p.Stretch.ObserveExemplar(flow/proc, task)
	} else {
		p.Stretch.ObserveExemplar(0, task) // mirrors sim.stretchOf: zero-proc stretch is 0
	}
}
