package obs

import "flowsched/internal/core"

// OverloadObserver is the optional extension interface for probes that want
// the overload-control event stream of sim.RunGuarded: admission rejections,
// shedding, outlier ejection/re-admission and the SLO guard's brownout
// transitions. The simulator type-asserts its probe once per run; probes
// that don't implement the interface simply never see these events, so the
// base Probe contract (and every existing probe) is untouched.
//
// Multi forwards overload events to each member that implements the
// interface. Embed BaseOverloadObserver to opt in selectively.
type OverloadObserver interface {
	// OnReject fires when the admission policy turns a task away at its
	// arrival instant.
	OnReject(task int, at core.Time, reason string)
	// OnShed fires when a queued task is abandoned mid-run: by the watermark
	// shedder (server = the machine it was queued on) or by deadline
	// enforcement at dispatch.
	OnShed(task, server int, release, at core.Time, reason string)
	// OnEject fires when the outlier ejector removes a server from routing.
	OnEject(server int, at core.Time)
	// OnReadmit fires when an ejected server's cooldown expires.
	OnReadmit(server int, at core.Time)
	// OnBrownout fires on every transition of the SLO guard's brownout
	// signal.
	OnBrownout(at core.Time, active bool)
}

// BaseOverloadObserver is a no-op OverloadObserver for embedding.
type BaseOverloadObserver struct{}

// OnReject implements OverloadObserver.
func (BaseOverloadObserver) OnReject(task int, at core.Time, reason string) {}

// OnShed implements OverloadObserver.
func (BaseOverloadObserver) OnShed(task, server int, release, at core.Time, reason string) {}

// OnEject implements OverloadObserver.
func (BaseOverloadObserver) OnEject(server int, at core.Time) {}

// OnReadmit implements OverloadObserver.
func (BaseOverloadObserver) OnReadmit(server int, at core.Time) {}

// OnBrownout implements OverloadObserver.
func (BaseOverloadObserver) OnBrownout(at core.Time, active bool) {}

// OnReject implements OverloadObserver, forwarding to members that observe
// overload events.
func (m multi) OnReject(task int, at core.Time, reason string) {
	for _, p := range m {
		if o, ok := p.(OverloadObserver); ok {
			o.OnReject(task, at, reason)
		}
	}
}

// OnShed implements OverloadObserver.
func (m multi) OnShed(task, server int, release, at core.Time, reason string) {
	for _, p := range m {
		if o, ok := p.(OverloadObserver); ok {
			o.OnShed(task, server, release, at, reason)
		}
	}
}

// OnEject implements OverloadObserver.
func (m multi) OnEject(server int, at core.Time) {
	for _, p := range m {
		if o, ok := p.(OverloadObserver); ok {
			o.OnEject(server, at)
		}
	}
}

// OnReadmit implements OverloadObserver.
func (m multi) OnReadmit(server int, at core.Time) {
	for _, p := range m {
		if o, ok := p.(OverloadObserver); ok {
			o.OnReadmit(server, at)
		}
	}
}

// OnBrownout implements OverloadObserver.
func (m multi) OnBrownout(at core.Time, active bool) {
	for _, p := range m {
		if o, ok := p.(OverloadObserver); ok {
			o.OnBrownout(at, active)
		}
	}
}
