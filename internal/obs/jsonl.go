package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"flowsched/internal/core"
	"flowsched/internal/trace"
)

// JSONLSink is a Probe that writes one JSON object per event, newline
// delimited, through a buffered writer — the structured event log for
// offline analysis. Schema (one record kind per line, keyed by "ev"):
//
//	{"ev":"arrival","t":<release>,"task":<id>}
//	{"ev":"dispatch","t":<at>,"task":<id>,"server":<j>,"start":<s>,"end":<e>}
//	{"ev":"complete","t":<end>,"task":<id>,"server":<j>,"release":<r>,"proc":<p>}
//	{"ev":"retry","t":<at>,"task":<id>,"attempt":<a>}
//	{"ev":"drop","t":<at>,"task":<id>,"release":<r>}
//	{"ev":"failover","t":<at>,"server":<j>,"lost":<n>}
//	{"ev":"done","t":<makespan>}
//
// Times are written with Go's shortest round-trip float encoding, so a
// replay through ReplayTrace reproduces the exact instants; non-finite
// instants (the engine's deliberate NaN sentinels) encode as null instead of
// aborting the whole log write (core.NullTime). Errors are
// sticky: the first write error is retained and reported by Flush/Err, and
// subsequent events are dropped.
type JSONLSink struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONLSink returns a sink writing to w. Call Flush (or check Err) when
// the run is done; the sink buffers aggressively.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
}

// Err returns the first write error, if any.
func (s *JSONLSink) Err() error { return s.err }

// Flush drains the buffer and returns the first error seen.
func (s *JSONLSink) Flush() error {
	if s.err != nil {
		return s.err
	}
	s.err = s.w.Flush()
	return s.err
}

func (s *JSONLSink) emit(rec interface{}) {
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(rec)
}

// OnArrival implements Probe.
func (s *JSONLSink) OnArrival(task int, release core.Time) {
	s.emit(struct {
		Ev   string        `json:"ev"`
		T    core.NullTime `json:"t"`
		Task int           `json:"task"`
	}{"arrival", core.NullTime(release), task})
}

// OnDispatch implements Probe.
func (s *JSONLSink) OnDispatch(task, server int, at, start, end core.Time) {
	s.emit(struct {
		Ev     string        `json:"ev"`
		T      core.NullTime `json:"t"`
		Task   int           `json:"task"`
		Server int           `json:"server"`
		Start  core.NullTime `json:"start"`
		End    core.NullTime `json:"end"`
	}{"dispatch", core.NullTime(at), task, server, core.NullTime(start), core.NullTime(end)})
}

// OnComplete implements Probe.
func (s *JSONLSink) OnComplete(task, server int, release, proc, end core.Time) {
	s.emit(struct {
		Ev      string        `json:"ev"`
		T       core.NullTime `json:"t"`
		Task    int           `json:"task"`
		Server  int           `json:"server"`
		Release core.NullTime `json:"release"`
		Proc    core.NullTime `json:"proc"`
	}{"complete", core.NullTime(end), task, server, core.NullTime(release), core.NullTime(proc)})
}

// OnDrop implements Probe.
func (s *JSONLSink) OnDrop(task int, release, at core.Time) {
	s.emit(struct {
		Ev      string        `json:"ev"`
		T       core.NullTime `json:"t"`
		Task    int           `json:"task"`
		Release core.NullTime `json:"release"`
	}{"drop", core.NullTime(at), task, core.NullTime(release)})
}

// OnRetry implements Probe.
func (s *JSONLSink) OnRetry(task, attempt int, at core.Time) {
	s.emit(struct {
		Ev      string        `json:"ev"`
		T       core.NullTime `json:"t"`
		Task    int           `json:"task"`
		Attempt int           `json:"attempt"`
	}{"retry", core.NullTime(at), task, attempt})
}

// OnFailover implements Probe.
func (s *JSONLSink) OnFailover(server int, at core.Time, lost int) {
	s.emit(struct {
		Ev     string        `json:"ev"`
		T      core.NullTime `json:"t"`
		Server int           `json:"server"`
		Lost   int           `json:"lost"`
	}{"failover", core.NullTime(at), server, lost})
}

// OnDone implements Probe: it writes the trailer record and flushes.
func (s *JSONLSink) OnDone(makespan core.Time) {
	s.emit(struct {
		Ev string        `json:"ev"`
		T  core.NullTime `json:"t"`
	}{"done", core.NullTime(makespan)})
	s.Flush()
}

// jsonlRecord is the union read-side schema of a sink line.
type jsonlRecord struct {
	Ev      string        `json:"ev"`
	T       core.NullTime `json:"t"`
	Task    int           `json:"task"`
	Server  int           `json:"server"`
	Start   core.NullTime `json:"start"`
	End     core.NullTime `json:"end"`
	Release core.NullTime `json:"release"`
	Proc    core.NullTime `json:"proc"`
	Attempt int           `json:"attempt"`
	Lost    int           `json:"lost"`
}

// ReplayTrace reads a JSONL event stream and reconstructs the trace of the
// run: one arrival, start and completion per completed task, ordered
// exactly like trace.FromSchedule (time, then completion < arrival < start,
// then task ID). For a fault-free run the result is identical to
// trace.FromSchedule on the run's schedule (property-tested in
// internal/sim); under faults the last dispatch attempt provides the start
// and dropped tasks (no completion) are omitted.
func ReplayTrace(r io.Reader) ([]trace.Event, error) {
	type slot struct {
		arrival, start, end    core.Time
		server                 int
		hasArr, hasDis, hasCmp bool
	}
	slots := map[int]*slot{}
	at := func(task int) *slot {
		s, ok := slots[task]
		if !ok {
			s = &slot{}
			slots[task] = s
		}
		return s
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec jsonlRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("obs: events line %d: %w", line, err)
		}
		switch rec.Ev {
		case "arrival":
			s := at(rec.Task)
			s.arrival, s.hasArr = core.Time(rec.T), true
		case "dispatch":
			s := at(rec.Task)
			s.start, s.server, s.hasDis = core.Time(rec.Start), rec.Server, true
		case "complete":
			s := at(rec.Task)
			s.end, s.server, s.hasCmp = core.Time(rec.T), rec.Server, true
		case "retry", "drop", "failover", "done":
			// Not part of the schedule trace.
		default:
			return nil, fmt.Errorf("obs: events line %d: unknown event kind %q", line, rec.Ev)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading events: %w", err)
	}
	var events []trace.Event
	for task, s := range slots {
		if !s.hasArr || !s.hasDis || !s.hasCmp {
			continue // dropped or truncated: not a completed task
		}
		events = append(events,
			trace.Event{Time: s.arrival, Kind: trace.Arrival, Task: task, Machine: -1},
			trace.Event{Time: s.start, Kind: trace.Start, Task: task, Machine: s.server},
			trace.Event{Time: s.end, Kind: trace.Completion, Task: task, Machine: s.server},
		)
	}
	sort.Slice(events, func(a, b int) bool {
		if events[a].Time != events[b].Time {
			return events[a].Time < events[b].Time
		}
		if events[a].Kind != events[b].Kind {
			return events[a].Kind < events[b].Kind
		}
		return events[a].Task < events[b].Task
	})
	return events, nil
}
