package obs

import (
	"testing"

	"flowsched/internal/core"
)

// extProbe records every hook it sees, including the extension interfaces.
type extProbe struct {
	BaseProbe
	events []string
}

func (p *extProbe) OnDone(makespan core.Time)                  { p.events = append(p.events, "done") }
func (p *extProbe) OnReject(task int, at core.Time, r string)  { p.events = append(p.events, "reject") }
func (p *extProbe) OnShed(t, s int, r, at core.Time, x string) { p.events = append(p.events, "shed") }
func (p *extProbe) OnEject(server int, at core.Time)           { p.events = append(p.events, "eject") }
func (p *extProbe) OnReadmit(server int, at core.Time)         { p.events = append(p.events, "readmit") }
func (p *extProbe) OnBrownout(at core.Time, active bool)       { p.events = append(p.events, "brownout") }
func (p *extProbe) OnScaleUp(m int, at, ready core.Time)       { p.events = append(p.events, "scale-up") }
func (p *extProbe) OnJoin(m int, at core.Time, members int)    { p.events = append(p.events, "join") }
func (p *extProbe) OnScaleDown(m int, at core.Time, mm, h int) {
	p.events = append(p.events, "scale-down")
}
func (p *extProbe) OnHandoff(task, from int, at core.Time) { p.events = append(p.events, "handoff") }

// fireExtensions drives every extension hook through the simulator's
// type-assert pattern, exactly as sim.RunGuarded / sim.RunElastic do.
func fireExtensions(p Probe) (overload, membership bool) {
	if ov, ok := p.(OverloadObserver); ok {
		overload = true
		ov.OnReject(0, 1, "r")
		ov.OnShed(1, 0, 0, 2, "s")
		ov.OnEject(0, 3)
		ov.OnReadmit(0, 4)
		ov.OnBrownout(5, true)
	}
	if ms, ok := p.(MembershipObserver); ok {
		membership = true
		ms.OnScaleUp(1, 6, 7)
		ms.OnJoin(1, 7, 3)
		ms.OnScaleDown(2, 8, 2, 1)
		ms.OnHandoff(3, 2, 8)
	}
	return
}

var allExtEvents = []string{"reject", "shed", "eject", "readmit", "brownout",
	"scale-up", "join", "scale-down", "handoff"}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMultiSingleForwardsExtensions pins the kept[0] fast path: Multi with
// one live probe returns it unwrapped, so its extension interfaces survive
// the simulator's type assertion.
func TestMultiSingleForwardsExtensions(t *testing.T) {
	p := &extProbe{}
	m := Multi(nil, p, nil)
	if m != Probe(p) {
		t.Fatal("single live probe not returned unwrapped")
	}
	ov, ms := fireExtensions(m)
	if !ov || !ms {
		t.Fatalf("extension interfaces lost through Multi: overload=%v membership=%v", ov, ms)
	}
	if !eqStrings(p.events, allExtEvents) {
		t.Fatalf("events = %v", p.events)
	}
}

// TestMultiForwardsExtensionsSelectively checks that a fan-out forwards each
// extension hook only to the members that implement it — a plain Probe next
// to an extended one must not break the stream.
func TestMultiForwardsExtensionsSelectively(t *testing.T) {
	ext := &extProbe{}
	plain := &countingProbe{}
	m := Multi(plain, ext)
	ov, ms := fireExtensions(m)
	if !ov || !ms {
		t.Fatalf("multi dropped extension interfaces: overload=%v membership=%v", ov, ms)
	}
	if !eqStrings(ext.events, allExtEvents) {
		t.Fatalf("extended member events = %v", ext.events)
	}
	if len(plain.events) != 0 {
		t.Fatalf("plain member saw extension traffic: %v", plain.events)
	}
}

// TestMultiNested pins Multi(Multi(...), ...): base and extension hooks
// reach every leaf through the inner fan-out.
func TestMultiNested(t *testing.T) {
	a, b, c := &extProbe{}, &extProbe{}, &extProbe{}
	m := Multi(Multi(a, b), c)
	m.OnDone(1)
	fireExtensions(m)
	want := append([]string{"done"}, allExtEvents...)
	for i, p := range []*extProbe{a, b, c} {
		if !eqStrings(p.events, want) {
			t.Fatalf("leaf %d events = %v, want %v", i, p.events, want)
		}
	}
}

// TestMultiOnDoneOrdering pins the fan-out order: members observe OnDone in
// registration order, so a sink flushed by OnDone sees upstream aggregates
// final.
func TestMultiOnDoneOrdering(t *testing.T) {
	var order []int
	mk := func(id int) Probe {
		return &funcProbe{onDone: func() { order = append(order, id) }}
	}
	m := Multi(mk(0), nil, mk(1), mk(2))
	m.OnDone(1)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("OnDone order = %v", order)
	}
}

type funcProbe struct {
	BaseProbe
	onDone func()
}

func (p *funcProbe) OnDone(makespan core.Time) { p.onDone() }
