package obs

import "flowsched/internal/core"

// MembershipObserver is the optional extension interface for probes that
// want the elastic-membership event stream of sim.RunElastic: scale-up
// announcements, joins at the end of warm-up, drains and per-task handoffs.
// The simulator type-asserts its probe once per run, exactly like
// OverloadObserver; probes that don't implement the interface never see
// these events.
//
// Multi forwards membership events to each member that implements the
// interface. Embed BaseMembershipObserver to opt in selectively.
type MembershipObserver interface {
	// OnScaleUp fires when the controller (script or autoscaler) commits to
	// adding machine; it accepts work from instant ready (= at + warm-up).
	OnScaleUp(machine int, at, ready core.Time)
	// OnJoin fires when machine finishes warming up and becomes active;
	// members is the membership size including it.
	OnJoin(machine int, at core.Time, members int)
	// OnScaleDown fires when machine is drained out of the ring; members is
	// the membership size without it and handoffs the number of queued
	// tasks handed off to survivors (the running task, if any, finishes in
	// place).
	OnScaleDown(machine int, at core.Time, members, handoffs int)
	// OnHandoff fires for each queued task moved off a draining machine,
	// just before its re-dispatch.
	OnHandoff(task, from int, at core.Time)
}

// BaseMembershipObserver is a no-op MembershipObserver for embedding.
type BaseMembershipObserver struct{}

// OnScaleUp implements MembershipObserver.
func (BaseMembershipObserver) OnScaleUp(machine int, at, ready core.Time) {}

// OnJoin implements MembershipObserver.
func (BaseMembershipObserver) OnJoin(machine int, at core.Time, members int) {}

// OnScaleDown implements MembershipObserver.
func (BaseMembershipObserver) OnScaleDown(machine int, at core.Time, members, handoffs int) {}

// OnHandoff implements MembershipObserver.
func (BaseMembershipObserver) OnHandoff(task, from int, at core.Time) {}

// OnScaleUp implements MembershipObserver, forwarding to members that
// observe membership events.
func (m multi) OnScaleUp(machine int, at, ready core.Time) {
	for _, p := range m {
		if o, ok := p.(MembershipObserver); ok {
			o.OnScaleUp(machine, at, ready)
		}
	}
}

// OnJoin implements MembershipObserver.
func (m multi) OnJoin(machine int, at core.Time, members int) {
	for _, p := range m {
		if o, ok := p.(MembershipObserver); ok {
			o.OnJoin(machine, at, members)
		}
	}
}

// OnScaleDown implements MembershipObserver.
func (m multi) OnScaleDown(machine int, at core.Time, members, handoffs int) {
	for _, p := range m {
		if o, ok := p.(MembershipObserver); ok {
			o.OnScaleDown(machine, at, members, handoffs)
		}
	}
}

// OnHandoff implements MembershipObserver.
func (m multi) OnHandoff(task, from int, at core.Time) {
	for _, p := range m {
		if o, ok := p.(MembershipObserver); ok {
			o.OnHandoff(task, from, at)
		}
	}
}
