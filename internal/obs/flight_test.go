package obs

import (
	"bytes"
	"strings"
	"testing"
)

// drive pushes one event of every kind through the recorder (19 hooks).
func drive(r *FlightRecorder) {
	r.OnArrival(0, 1)
	r.OnDispatch(0, 2, 1, 3, 5)
	r.OnComplete(0, 2, 1, 2, 5)
	r.OnDrop(1, 0, 6)
	r.OnRetry(2, 1, 7)
	r.OnFailover(3, 8, 2)
	r.OnReject(4, 9, "queue-bound")
	r.OnShed(5, 1, 2, 10, "watermark")
	r.OnEject(2, 11)
	r.OnReadmit(2, 12)
	r.OnBrownout(13, true)
	r.OnScaleUp(6, 14, 15)
	r.OnJoin(6, 15, 4)
	r.OnScaleDown(1, 16, 3, 2)
	r.OnHandoff(7, 1, 16)
	r.OnHedge(8, 0, 3, 16.5, 17, 19)
	r.OnHedgeWin(8, 3, true, 16.75)
	r.OnHedgeCancel(8, 0, 16.75, true)
	r.OnDone(17)
}

func TestFlightRecorderRingWrap(t *testing.T) {
	r := NewFlightRecorder(8)
	for i := 0; i < 20; i++ {
		r.OnArrival(i, float64(i))
	}
	if r.Len() != 8 || r.Dropped() != 12 {
		t.Fatalf("Len=%d Dropped=%d, want 8/12", r.Len(), r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("Events() returned %d", len(evs))
	}
	for i, ev := range evs {
		if want := 12 + i; ev.Task != want || float64(ev.T) != float64(want) {
			t.Fatalf("events[%d] = task %d t=%v, want task %d (oldest-first after wrap)",
				i, ev.Task, ev.T, want)
		}
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 || len(r.Events()) != 0 {
		t.Fatalf("Reset left Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
}

func TestFlightRecorderDefaultSize(t *testing.T) {
	r := NewFlightRecorder(0)
	for i := 0; i < DefaultFlightSize+5; i++ {
		r.OnArrival(i, 0)
	}
	if r.Len() != DefaultFlightSize || r.Dropped() != 5 {
		t.Fatalf("Len=%d Dropped=%d", r.Len(), r.Dropped())
	}
}

func TestFlightRecorderAllKindsRoundTrip(t *testing.T) {
	r := NewFlightRecorder(64)
	drive(r)
	if r.Len() != 19 {
		t.Fatalf("recorded %d events, want 19", r.Len())
	}
	kinds := []string{"arrival", "dispatch", "complete", "drop", "retry", "failover",
		"reject", "shed", "eject", "readmit", "brownout",
		"scale-up", "join", "scale-down", "handoff",
		"hedge", "hedge-win", "hedge-cancel", "done"}
	for i, ev := range r.Events() {
		if ev.Ev != kinds[i] {
			t.Fatalf("events[%d].Ev = %q, want %q", i, ev.Ev, kinds[i])
		}
	}

	var dump bytes.Buffer
	if err := r.WriteJSONL(&dump); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(dump.String(), "NaN") {
		t.Fatalf("NaN leaked into the dump:\n%s", dump.String())
	}
	back, err := ReadFlightEvents(bytes.NewReader(dump.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// NaN sentinels defeat ==; compare through the canonical serialized form.
	var dump2 bytes.Buffer
	if err := WriteFlightEvents(&dump2, back); err != nil {
		t.Fatal(err)
	}
	if dump.String() != dump2.String() {
		t.Fatalf("round trip changed the dump:\n--- wrote\n%s--- read back\n%s",
			dump.String(), dump2.String())
	}
}

func TestFlightRecorderTaskEvents(t *testing.T) {
	r := NewFlightRecorder(64)
	drive(r)
	evs := r.TaskEvents(0)
	if len(evs) != 3 || evs[0].Ev != "arrival" || evs[1].Ev != "dispatch" || evs[2].Ev != "complete" {
		t.Fatalf("task 0 events = %+v", evs)
	}
	// Server-only events (eject, failover) name no task and must not bleed
	// into any task's history.
	for _, ev := range r.TaskEvents(3) {
		if ev.Ev == "failover" {
			t.Fatalf("failover (server event) attributed to task 3: %+v", ev)
		}
	}
	if got := r.TaskEvents(7); len(got) != 1 || got[0].Ev != "handoff" {
		t.Fatalf("task 7 events = %+v", got)
	}
}

func TestReadFlightEventsErrors(t *testing.T) {
	if _, err := ReadFlightEvents(strings.NewReader(`{"t":1}` + "\n")); err == nil {
		t.Error("missing event kind not rejected")
	}
	if _, err := ReadFlightEvents(strings.NewReader("{broken\n")); err == nil {
		t.Error("malformed JSON not rejected")
	}
	evs, err := ReadFlightEvents(strings.NewReader("\n\n"))
	if err != nil || len(evs) != 0 {
		t.Errorf("blank lines: evs=%v err=%v", evs, err)
	}
}
