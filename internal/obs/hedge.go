package obs

import "flowsched/internal/core"

// HedgeObserver is the optional extension interface for probes that want
// the hedged-execution event stream of sim.RunHedged: speculative copy
// dispatches, first-win decisions, and loser cancellations. The simulator
// type-asserts its probe once per run, exactly like OverloadObserver and
// MembershipObserver; probes that don't implement the interface never see
// these events.
//
// Event-time contract: OnHedge fires at the copy's dispatch instant;
// exactly one OnHedgeWin fires per hedged task that completes (reporting
// which attempt won); OnHedgeCancel fires for every losing attempt the
// moment it is abandoned — removed from its queue, revoked at service
// start, killed by a crash or drain, or left to run to completion as
// duplicate work (started = true then).
//
// Multi forwards hedge events to each member that implements the
// interface. Embed BaseHedgeObserver to opt in selectively.
type HedgeObserver interface {
	// OnHedge fires when a speculative copy of task is dispatched to
	// server to at instant at, scheduled to occupy [start, end). from is
	// the primary attempt's server, or −1 when the primary is not in
	// flight (between failover and retry).
	OnHedge(task, from, to int, at, start, end core.Time)
	// OnHedgeWin fires when a hedged task completes: server ran the
	// winning attempt; byCopy reports whether the speculative copy won.
	OnHedgeWin(task, server int, byCopy bool, at core.Time)
	// OnHedgeCancel fires when a losing attempt of task on server is
	// abandoned at instant at. started reports whether the attempt had
	// already entered service (a started loser without cancel-mid-service
	// runs to completion as duplicate work).
	OnHedgeCancel(task, server int, at core.Time, started bool)
}

// BaseHedgeObserver is a no-op HedgeObserver for embedding.
type BaseHedgeObserver struct{}

// OnHedge implements HedgeObserver.
func (BaseHedgeObserver) OnHedge(task, from, to int, at, start, end core.Time) {}

// OnHedgeWin implements HedgeObserver.
func (BaseHedgeObserver) OnHedgeWin(task, server int, byCopy bool, at core.Time) {}

// OnHedgeCancel implements HedgeObserver.
func (BaseHedgeObserver) OnHedgeCancel(task, server int, at core.Time, started bool) {}

// OnHedge implements HedgeObserver, forwarding to members that observe
// hedge events.
func (m multi) OnHedge(task, from, to int, at, start, end core.Time) {
	for _, p := range m {
		if o, ok := p.(HedgeObserver); ok {
			o.OnHedge(task, from, to, at, start, end)
		}
	}
}

// OnHedgeWin implements HedgeObserver.
func (m multi) OnHedgeWin(task, server int, byCopy bool, at core.Time) {
	for _, p := range m {
		if o, ok := p.(HedgeObserver); ok {
			o.OnHedgeWin(task, server, byCopy, at)
		}
	}
}

// OnHedgeCancel implements HedgeObserver.
func (m multi) OnHedgeCancel(task, server int, at core.Time, started bool) {
	for _, p := range m {
		if o, ok := p.(HedgeObserver); ok {
			o.OnHedgeCancel(task, server, at, started)
		}
	}
}
