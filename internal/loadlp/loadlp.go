// Package loadlp computes the theoretical maximum cluster load of
// Section 7.2: the largest arrival rate λ such that, after replication, the
// per-machine load stays below 100%. It implements the paper's Linear
// Program (15) three independent ways so Figures 10a/10b rest on
// cross-checked numbers:
//
//   - MaxLoadLP: the LP solved literally with the simplex of internal/lp;
//   - MaxLoadFlow: bisection on λ with a max-flow feasibility oracle
//     (internal/maxflow);
//   - MaxLoadHall: exact enumeration of the Gale–Hoffman/Hall condition
//     λ·P(A) ≤ |N(A)| over all primary subsets A (m ≤ 25).
//
// MaxLoadDisjoint gives the closed form for disjoint strategies.
package loadlp

import (
	"fmt"
	"math"
	"math/bits"

	"flowsched/internal/core"
	"flowsched/internal/lp"
	"flowsched/internal/maxflow"
	"flowsched/internal/psets"
	"flowsched/internal/replicate"
)

// Model is a max-load problem: machine popularity weights P(E_j) and, for
// every primary machine j, the set of machines that may process its work
// after replication (I_k(j) in the paper).
type Model struct {
	M       int
	Weights []float64
	Sets    []core.ProcSet // Sets[j] = I_k(j)
}

// NewModel builds the model for a weight vector and a replication strategy.
// It panics on an empty weight vector (no machines).
func NewModel(weights []float64, strategy replicate.Strategy) *Model {
	m := len(weights)
	if m == 0 {
		panic("loadlp: empty weight vector")
	}
	sets := make([]core.ProcSet, m)
	for j := 0; j < m; j++ {
		sets[j] = strategy.Set(j, m)
	}
	return &Model{M: m, Weights: weights, Sets: sets}
}

// MaxLoadLP solves LP (15) with the simplex method and returns the maximal
// λ. Variables: x_0 = λ and one a_ij per admissible (machine i, primary j)
// pair; constraints (15b)-(15f) as in the paper.
func (mo *Model) MaxLoadLP() (float64, error) {
	// Index admissible pairs.
	type pair struct{ i, j int }
	var pairs []pair
	index := make(map[pair]int)
	for j := 0; j < mo.M; j++ {
		for _, i := range mo.Sets[j] {
			index[pair{i, j}] = len(pairs) + 1 // +1: variable 0 is λ
			pairs = append(pairs, pair{i, j})
		}
	}
	numVars := 1 + len(pairs)
	p := lp.NewProblem(numVars, true)
	p.SetObjectiveCoef(0, 1) // maximize λ (15a)

	// (15b): Σ_i a_ij - λ P(E_j) = 0 for all j.
	for j := 0; j < mo.M; j++ {
		idx := []int{0}
		val := []float64{-mo.Weights[j]}
		for _, i := range mo.Sets[j] {
			idx = append(idx, index[pair{i, j}])
			val = append(val, 1)
		}
		p.AddConstraintSparse(idx, val, lp.EQ, 0)
	}
	// (15c): Σ_j a_ij ≤ 1 for all i.
	for i := 0; i < mo.M; i++ {
		var idx []int
		var val []float64
		for j := 0; j < mo.M; j++ {
			if mo.Sets[j].Contains(i) {
				idx = append(idx, index[pair{i, j}])
				val = append(val, 1)
			}
		}
		if len(idx) == 0 {
			continue
		}
		p.AddConstraintSparse(idx, val, lp.LE, 1)
	}
	// (15d) is enforced structurally (absent variables); (15e)-(15f) are the
	// solver's non-negativity.
	sol, err := p.Solve()
	if err != nil {
		return 0, fmt.Errorf("loadlp: %w", err)
	}
	return sol.Objective, nil
}

// feasibleFlow reports whether arrival rate lambda is sustainable, using a
// max-flow feasibility network: source → primary j (capacity λ·P(E_j)),
// primary j → machine i for admissible pairs (∞), machine i → sink
// (capacity 1).
func (mo *Model) feasibleFlow(lambda float64) bool {
	m := mo.M
	src, sink := 2*m, 2*m+1
	g := maxflow.NewGraph(2*m + 2)
	demand := 0.0
	for j := 0; j < m; j++ {
		d := lambda * mo.Weights[j]
		demand += d
		g.AddEdge(src, j, d)
		for _, i := range mo.Sets[j] {
			g.AddEdge(j, m+i, math.Inf(1))
		}
	}
	for i := 0; i < m; i++ {
		g.AddEdge(m+i, sink, 1)
	}
	r := g.Run(src, sink)
	return r.Value >= demand-1e-9
}

// MaxLoadFlow computes the maximal λ by bisection over the max-flow
// feasibility oracle, to absolute precision tol (1e-9 when tol ≤ 0).
func (mo *Model) MaxLoadFlow(tol float64) float64 {
	if tol <= 0 {
		tol = 1e-9
	}
	lo, hi := 0.0, float64(mo.M)+1
	if !mo.feasibleFlow(tol) {
		// Degenerate weights: nothing is sustainable beyond 0.
		return 0
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if mo.feasibleFlow(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// MaxLoadHall computes the exact maximal λ by enumerating the Hall
// condition: λ is feasible iff λ·P(A) ≤ |N(A)| for every subset A of
// primaries, where N(A) = ∪_{j∈A} I_k(j). Hence
//
//	λ* = min_{A ≠ ∅, P(A) > 0} |N(A)| / P(A).
//
// It panics for m > 25 (the enumeration is 2^m).
func (mo *Model) MaxLoadHall() float64 {
	m := mo.M
	if m > 25 {
		panic("loadlp: MaxLoadHall limited to m ≤ 25")
	}
	targets := make([]uint32, m)
	for j := 0; j < m; j++ {
		var b uint32
		for _, i := range mo.Sets[j] {
			b |= 1 << uint(i)
		}
		targets[j] = b
	}
	size := 1 << uint(m)
	union := make([]uint32, size)
	weight := make([]float64, size)
	best := math.Inf(1)
	for mask := 1; mask < size; mask++ {
		low := mask & (-mask)
		j := bits.TrailingZeros32(uint32(low))
		rest := mask ^ low
		union[mask] = union[rest] | targets[j]
		weight[mask] = weight[rest] + mo.Weights[j]
		if weight[mask] <= 0 {
			continue
		}
		ratio := float64(bits.OnesCount32(union[mask])) / weight[mask]
		if ratio < best {
			best = ratio
		}
	}
	return best
}

// MaxLoadDisjoint computes the closed form for a disjoint family: the work
// of a block can spread anywhere inside the block and nowhere else, so
//
//	λ* = min_B |B| / P(B).
//
// It returns an error if the model's sets do not form a disjoint family.
func (mo *Model) MaxLoadDisjoint() (float64, error) {
	fam := psets.NewFamily(mo.M, mo.Sets...)
	if !fam.IsDisjoint() {
		return 0, fmt.Errorf("loadlp: sets are not a disjoint family")
	}
	best := math.Inf(1)
	for _, block := range fam.Sets {
		p := 0.0
		for j := 0; j < mo.M; j++ {
			if mo.Sets[j].Equal(block) {
				p += mo.Weights[j]
			}
		}
		if p > 0 {
			if r := float64(block.Len()) / p; r < best {
				best = r
			}
		}
	}
	return best, nil
}

// MaxLoadPercent converts a λ value to the cluster load percentage
// 100·λ/m reported in Figure 10.
func (mo *Model) MaxLoadPercent(lambda float64) float64 {
	return 100 * lambda / float64(mo.M)
}
