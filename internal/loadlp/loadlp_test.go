package loadlp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowsched/internal/popularity"
	"flowsched/internal/replicate"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNoReplicationUniform(t *testing.T) {
	// Uniform weights, no replication: λ* = m.
	m := 6
	mo := NewModel(popularity.Zipf(m, 0), replicate.None{})
	lpv, err := mo.MaxLoadLP()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lpv, 6, 1e-6) {
		t.Fatalf("LP = %v, want 6", lpv)
	}
	if got := mo.MaxLoadHall(); !almost(got, 6, 1e-9) {
		t.Fatalf("Hall = %v", got)
	}
	if got := mo.MaxLoadFlow(1e-9); !almost(got, 6, 1e-6) {
		t.Fatalf("Flow = %v", got)
	}
	dj, err := mo.MaxLoadDisjoint()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(dj, 6, 1e-9) {
		t.Fatalf("Disjoint closed form = %v", dj)
	}
}

func TestNoReplicationZipf(t *testing.T) {
	// No replication: λ* = 1/max_j P(E_j) (Section 7.2).
	m := 8
	w := popularity.Zipf(m, 1.3)
	mo := NewModel(w, replicate.None{})
	want := popularity.MaxLoadNoReplication(w)
	if got := mo.MaxLoadHall(); !almost(got, want, 1e-9) {
		t.Fatalf("Hall = %v, want %v", got, want)
	}
	lpv, err := mo.MaxLoadLP()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lpv, want, 1e-6) {
		t.Fatalf("LP = %v, want %v", lpv, want)
	}
}

func TestFullReplicationIgnoresBias(t *testing.T) {
	// k = m: any bias is irrelevant, λ* = m (paper: "popularity bias has
	// obviously no effect when data are fully replicated").
	m := 6
	for _, s := range []float64{0, 1, 3} {
		w := popularity.Zipf(m, s)
		for _, strat := range []replicate.Strategy{
			replicate.Overlapping{K: m}, replicate.Disjoint{K: m},
		} {
			mo := NewModel(w, strat)
			if got := mo.MaxLoadHall(); !almost(got, float64(m), 1e-9) {
				t.Fatalf("s=%v %s: λ* = %v, want %v", s, strat.Name(), got, m)
			}
		}
	}
}

func TestNoBiasNoStrategyDifference(t *testing.T) {
	// s = 0: both strategies tolerate full load for every k (paper:
	// "replication strategies exhibit no difference ... when no bias").
	m := 6
	w := popularity.Zipf(m, 0)
	for k := 1; k <= m; k++ {
		ov := NewModel(w, replicate.Overlapping{K: k}).MaxLoadHall()
		dj := NewModel(w, replicate.Disjoint{K: k}).MaxLoadHall()
		if !almost(ov, float64(m), 1e-9) || !almost(dj, float64(m), 1e-9) {
			t.Fatalf("k=%d: overlapping %v disjoint %v, want %v", k, ov, dj, m)
		}
	}
}

func TestHandComputedDisjoint(t *testing.T) {
	// m=4, k=2, weights (0.4, 0.3, 0.2, 0.1): blocks {0,1} P=0.7 and {2,3}
	// P=0.3 → λ* = min(2/0.7, 2/0.3) = 2/0.7.
	w := []float64{0.4, 0.3, 0.2, 0.1}
	mo := NewModel(w, replicate.Disjoint{K: 2})
	want := 2 / 0.7
	got, err := mo.MaxLoadDisjoint()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got, want, 1e-9) {
		t.Fatalf("closed form = %v, want %v", got, want)
	}
	if hall := mo.MaxLoadHall(); !almost(hall, want, 1e-9) {
		t.Fatalf("Hall = %v, want %v", hall, want)
	}
}

func TestHandComputedOverlapping(t *testing.T) {
	// m=4, k=2, weights (0.7, 0.1, 0.1, 0.1): overlapping ring intervals
	// I(0)={0,1}, I(1)={1,2}, I(2)={2,3}, I(3)={3,0}.
	// Binding subset is A={0}: N={0,1} → λ ≤ 2/0.7. Check a few others:
	// A={0,1}: N={0,1,2} → 3/0.8 > 2/0.7? 2/0.7=2.857, 3/0.8=3.75 ✓.
	// Full set: 4/1 = 4. So λ* = 2/0.7.
	w := []float64{0.7, 0.1, 0.1, 0.1}
	mo := NewModel(w, replicate.Overlapping{K: 2})
	want := 2 / 0.7
	if got := mo.MaxLoadHall(); !almost(got, want, 1e-9) {
		t.Fatalf("Hall = %v, want %v", got, want)
	}
	lpv, err := mo.MaxLoadLP()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lpv, want, 1e-6) {
		t.Fatalf("LP = %v, want %v", lpv, want)
	}
}

func TestMaxLoadDisjointRejectsOverlapping(t *testing.T) {
	mo := NewModel(popularity.Zipf(4, 1), replicate.Overlapping{K: 2})
	if _, err := mo.MaxLoadDisjoint(); err == nil {
		t.Fatalf("overlapping sets should be rejected by the closed form")
	}
}

// TestSolversAgree cross-checks the three solvers (plus the closed form for
// disjoint strategies) on random popularity vectors and strategies.
func TestSolversAgree(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(9)
		k := 1 + rng.Intn(m)
		s := rng.Float64() * 4
		w := popularity.Weights(popularity.Shuffled, m, s, rng)
		var strat replicate.Strategy
		disjoint := rng.Intn(2) == 0
		if disjoint {
			strat = replicate.Disjoint{K: k}
		} else {
			strat = replicate.Overlapping{K: k}
		}
		mo := NewModel(w, strat)
		hall := mo.MaxLoadHall()
		lpv, err := mo.MaxLoadLP()
		if err != nil {
			return false
		}
		flow := mo.MaxLoadFlow(1e-8)
		if !almost(hall, lpv, 1e-5) || !almost(hall, flow, 1e-5) {
			return false
		}
		if disjoint {
			cf, err := mo.MaxLoadDisjoint()
			if err != nil || !almost(hall, cf, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestOverlappingDominatesDisjoint verifies the headline of Figure 10: with
// the same weights and k, the overlapping strategy's max load is at least
// the disjoint strategy's (its sets are supersets of what a disjoint block
// offers... precisely, the paper observes this empirically; here it must
// hold on every drawn configuration).
func TestOverlappingDominatesDisjoint(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(9)
		k := 1 + rng.Intn(m)
		w := popularity.Weights(popularity.Shuffled, m, rng.Float64()*4, rng)
		ov := NewModel(w, replicate.Overlapping{K: k}).MaxLoadHall()
		dj := NewModel(w, replicate.Disjoint{K: k}).MaxLoadHall()
		return ov >= dj-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxLoadMonotoneInK(t *testing.T) {
	// More replication never hurts: λ*(k) is non-decreasing in k for the
	// overlapping strategy (sets grow with k).
	rng := rand.New(rand.NewSource(11))
	m := 8
	w := popularity.Weights(popularity.Shuffled, m, 1.5, rng)
	prev := 0.0
	for k := 1; k <= m; k++ {
		cur := NewModel(w, replicate.Overlapping{K: k}).MaxLoadHall()
		if cur < prev-1e-9 {
			t.Fatalf("λ*(k=%d) = %v < λ*(k=%d) = %v", k, cur, k-1, prev)
		}
		prev = cur
	}
}

func TestMaxLoadPercent(t *testing.T) {
	mo := NewModel(popularity.Zipf(10, 0), replicate.None{})
	if got := mo.MaxLoadPercent(5); !almost(got, 50, 1e-12) {
		t.Fatalf("percent = %v", got)
	}
}

func TestHallPanicsOnHugeM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	mo := &Model{M: 26, Weights: make([]float64, 26)}
	mo.MaxLoadHall()
}

func TestNewModelPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewModel(nil, replicate.None{})
}
