package workload

import (
	"fmt"
	"math/rand"

	"flowsched/internal/core"
	"flowsched/internal/popularity"
	"flowsched/internal/replicate"
)

// DriftConfig describes a workload whose popularity bias drifts over time:
// the Zipf weights are re-shuffled every segment, so the hot machines move
// while the replication layout stays fixed — the situation a static
// replication strategy must survive in a long-running store.
type DriftConfig struct {
	M        int
	N        int
	Rate     float64
	Proc     core.Time
	SBias    float64 // Zipf shape of every segment
	Segments int     // number of popularity epochs (≥ 1)
	Strategy replicate.Strategy
}

// GenerateDrift draws the drifting workload. Within each of the Segments
// epochs (equal task counts), primaries follow a freshly shuffled Zipf
// distribution.
func GenerateDrift(cfg DriftConfig, rng *rand.Rand) (*core.Instance, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("workload: need at least one machine")
	}
	if cfg.N < 0 {
		return nil, fmt.Errorf("workload: negative task count")
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("workload: arrival rate must be positive")
	}
	if cfg.Segments < 1 {
		return nil, fmt.Errorf("workload: need at least one segment")
	}
	if cfg.SBias < 0 {
		return nil, fmt.Errorf("workload: negative bias")
	}
	proc := cfg.Proc
	if proc == 0 {
		proc = 1
	}
	if proc < 0 {
		return nil, fmt.Errorf("workload: negative processing time")
	}
	strategy := cfg.Strategy
	if strategy == nil {
		strategy = replicate.None{}
	}

	tasks := make([]core.Task, cfg.N)
	t := core.Time(0)
	perSegment := cfg.N / cfg.Segments
	if perSegment == 0 {
		perSegment = 1
	}
	var sampler *popularity.Sampler
	for i := range tasks {
		if i%perSegment == 0 || sampler == nil {
			weights := popularity.Weights(popularity.Shuffled, cfg.M, cfg.SBias, rng)
			sampler = popularity.NewSampler(weights)
		}
		t += rng.ExpFloat64() / cfg.Rate
		primary := sampler.Sample(rng)
		tasks[i] = core.Task{
			Release: t,
			Proc:    proc,
			Set:     strategy.Set(primary, cfg.M),
			Key:     primary,
		}
	}
	return core.NewInstance(cfg.M, tasks), nil
}
