package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowsched/internal/replicate"
	"flowsched/internal/sched"
)

func TestGenerateMixedAllReads(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst, err := GenerateMixed(MixedConfig{
		M: 6, N: 200, Rate: 3, WriteFraction: 0,
		Strategy: replicate.Overlapping{K: 3},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if inst.N() != 200 {
		t.Fatalf("all-read workload should have N tasks, got %d", inst.N())
	}
	for _, task := range inst.Tasks {
		if task.Set.Len() != 3 {
			t.Fatalf("read set size = %d", task.Set.Len())
		}
	}
}

func TestGenerateMixedAllWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inst, err := GenerateMixed(MixedConfig{
		M: 6, N: 100, Rate: 3, WriteFraction: 1,
		Strategy: replicate.Overlapping{K: 3},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if inst.N() != 300 {
		t.Fatalf("all-write workload should fan out to N·k tasks, got %d", inst.N())
	}
	for _, task := range inst.Tasks {
		if task.Set.Len() != 1 {
			t.Fatalf("write replica task must be pinned, set = %v", task.Set)
		}
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateMixedWriteGroups(t *testing.T) {
	// Each write's k pinned tasks share the release time and key, and their
	// machines reconstruct the replica set.
	rng := rand.New(rand.NewSource(3))
	inst, err := GenerateMixed(MixedConfig{
		M: 6, N: 50, Rate: 2, WriteFraction: 1,
		Strategy: replicate.Overlapping{K: 3},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	byRelease := make(map[float64][]int)
	for i, task := range inst.Tasks {
		byRelease[task.Release] = append(byRelease[task.Release], i)
	}
	for rel, ids := range byRelease {
		if len(ids) != 3 {
			t.Fatalf("write at %v has %d replica tasks", rel, len(ids))
		}
		key := inst.Tasks[ids[0]].Key
		var machines []int
		for _, i := range ids {
			if inst.Tasks[i].Key != key {
				t.Fatalf("write group keys differ")
			}
			machines = append(machines, inst.Tasks[i].Set[0])
		}
		want := replicate.Overlapping{K: 3}.Set(key, 6)
		got := machines
		for _, j := range got {
			if !want.Contains(j) {
				t.Fatalf("write replica on M%d outside %v", j+1, want)
			}
		}
	}
}

func TestGenerateMixedValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bad := []MixedConfig{
		{M: 0, N: 1, Rate: 1},
		{M: 2, N: -1, Rate: 1},
		{M: 2, N: 1, Rate: 0},
		{M: 2, N: 1, Rate: 1, WriteFraction: -0.1},
		{M: 2, N: 1, Rate: 1, WriteFraction: 1.1},
		{M: 2, N: 1, Rate: 1, Proc: -1},
		{M: 2, N: 1, Rate: 1, Weights: []float64{1}},
	}
	for i, cfg := range bad {
		if _, err := GenerateMixed(cfg, rng); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestEffectiveLoad(t *testing.T) {
	// Uniform weights, overlapping k=3, 30% writes at rate λ:
	// per-request cost = 0.7 + 0.3·3 = 1.6; load = λ·1.6/m.
	cfg := MixedConfig{
		M: 6, Rate: 3, WriteFraction: 0.3,
		Strategy: replicate.Overlapping{K: 3},
	}
	want := 3 * 1.6 / 6
	if got := EffectiveLoad(cfg); math.Abs(got-want) > 1e-12 {
		t.Fatalf("EffectiveLoad = %v, want %v", got, want)
	}
	// No writes, no replication: load = λ/m.
	cfg2 := MixedConfig{M: 4, Rate: 2}
	if got := EffectiveLoad(cfg2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("EffectiveLoad = %v, want 0.5", got)
	}
}

// TestMixedWorkloadSchedulable: EFT schedules mixed workloads feasibly, and
// more writes means more total work at the same request rate.
func TestMixedWorkloadSchedulable(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + rng.Intn(8)
		k := 1 + rng.Intn(m)
		wf := rng.Float64()
		inst, err := GenerateMixed(MixedConfig{
			M: m, N: 100, Rate: 0.4 * float64(m), WriteFraction: wf,
			Strategy: replicate.Overlapping{K: k},
		}, rng)
		if err != nil {
			return false
		}
		s, err := sched.NewEFT(sched.MinTie{}).Run(inst)
		return err == nil && s.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
