package workload

import (
	"math"
	"math/rand"
	"testing"

	"flowsched/internal/stats"
)

func drawProcs(t *testing.T, dist Dist, mean float64, n int) []float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	inst, err := Generate(Config{M: 2, N: n, Rate: 1, Proc: mean, Dist: dist}, rng)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, n)
	for i, task := range inst.Tasks {
		out[i] = task.Proc
	}
	return out
}

func TestProcConstant(t *testing.T) {
	for _, p := range drawProcs(t, ProcConstant, 2.5, 100) {
		if p != 2.5 {
			t.Fatalf("constant dist drew %v", p)
		}
	}
}

func TestProcExponentialMoments(t *testing.T) {
	ps := drawProcs(t, ProcExponential, 2, 200000)
	mean := stats.Mean(ps)
	if math.Abs(mean-2)/2 > 0.02 {
		t.Fatalf("exponential mean %v, want 2", mean)
	}
	// Exponential: sd = mean.
	sd := stats.StdDev(ps)
	if math.Abs(sd-2)/2 > 0.03 {
		t.Fatalf("exponential sd %v, want 2", sd)
	}
	for _, p := range ps {
		if p <= 0 {
			t.Fatalf("non-positive processing time %v", p)
		}
	}
}

func TestProcUniformMoments(t *testing.T) {
	ps := drawProcs(t, ProcUniform, 3, 200000)
	mean := stats.Mean(ps)
	if math.Abs(mean-3)/3 > 0.02 {
		t.Fatalf("uniform mean %v, want 3", mean)
	}
	mx := stats.Max(ps)
	if mx > 6 {
		t.Fatalf("uniform max %v exceeds 2·mean", mx)
	}
	// Uniform(0,6): sd = 6/√12.
	sd := stats.StdDev(ps)
	want := 6 / math.Sqrt(12)
	if math.Abs(sd-want)/want > 0.03 {
		t.Fatalf("uniform sd %v, want %v", sd, want)
	}
}

func TestGenerateDrift(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	inst, err := GenerateDrift(DriftConfig{
		M: 8, N: 4000, Rate: 5, SBias: 1.5, Segments: 4,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.N() != 4000 {
		t.Fatalf("n = %d", inst.N())
	}
	// The hot machine should move across segments: compare the modal
	// primary of the first and last quarter.
	mode := func(from, to int) int {
		counts := make(map[int]int)
		for _, task := range inst.Tasks[from:to] {
			counts[task.Key]++
		}
		best, bestN := -1, 0
		for k, n := range counts {
			if n > bestN {
				best, bestN = k, n
			}
		}
		return best
	}
	first := mode(0, 1000)
	last := mode(3000, 4000)
	if first == last {
		// A 1/8 chance per pair of segments; with bias 1.5 and this seed it
		// should differ — if not, the shuffle is broken.
		t.Fatalf("hot machine did not move across segments (both M%d)", first+1)
	}
}

func TestGenerateDriftValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bad := []DriftConfig{
		{M: 0, N: 1, Rate: 1, Segments: 1},
		{M: 2, N: -1, Rate: 1, Segments: 1},
		{M: 2, N: 1, Rate: 0, Segments: 1},
		{M: 2, N: 1, Rate: 1, Segments: 0},
		{M: 2, N: 1, Rate: 1, Segments: 1, SBias: -1},
		{M: 2, N: 1, Rate: 1, Segments: 1, Proc: -1},
	}
	for i, cfg := range bad {
		if _, err := GenerateDrift(cfg, rng); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
