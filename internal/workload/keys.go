package workload

import (
	"fmt"
	"math/rand"

	"flowsched/internal/core"
	"flowsched/internal/popularity"
	"flowsched/internal/ring"
)

// KeyConfig describes a key-level workload: requests target keys (not
// machines); keys are placed on a consistent-hash ring, which induces the
// primary machine and, through the k−1 clockwise successors, the
// processing set. This is the full Dynamo-style pipeline the paper
// abstracts into machine-level popularity.
type KeyConfig struct {
	M       int       // cluster size
	N       int       // number of requests
	Rate    float64   // Poisson arrival rate λ
	Proc    core.Time // processing time per request (default 1)
	NumKeys int       // distinct keys in the store
	KeyBias float64   // Zipf shape over key ranks (0 = uniform keys)
	K       int       // replication factor
	VNodes  int       // virtual nodes per machine; 0 = idealized ordered ring
}

// KeyWorkload is a generated key-level workload: the instance plus the
// placement metadata that produced it.
type KeyWorkload struct {
	Inst *core.Instance
	Ring *ring.Ring
	// KeyPos[i] is the ring position of key i; KeyWeight[i] its popularity.
	KeyPos    []uint64
	KeyWeight []float64
}

// GenerateKeys draws a key-level workload: key popularity follows
// Zipf(KeyBias) over key ranks, each request samples a key, the ring maps
// it to a primary and replica set. The Task.Key field records the key id.
func GenerateKeys(cfg KeyConfig, rng *rand.Rand) (*KeyWorkload, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("workload: need at least one machine")
	}
	if cfg.NumKeys < 1 {
		return nil, fmt.Errorf("workload: need at least one key")
	}
	if cfg.N < 0 {
		return nil, fmt.Errorf("workload: negative request count")
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("workload: arrival rate must be positive, got %v", cfg.Rate)
	}
	if cfg.K < 1 || cfg.K > cfg.M {
		return nil, fmt.Errorf("workload: replication factor k=%d out of range for m=%d", cfg.K, cfg.M)
	}
	if cfg.KeyBias < 0 {
		return nil, fmt.Errorf("workload: negative key bias %v", cfg.KeyBias)
	}
	proc := cfg.Proc
	if proc == 0 {
		proc = 1
	}
	if proc < 0 {
		return nil, fmt.Errorf("workload: negative processing time %v", proc)
	}

	var r *ring.Ring
	var err error
	if cfg.VNodes <= 0 {
		r, err = ring.NewOrdered(cfg.M)
	} else {
		r, err = ring.New(cfg.M, cfg.VNodes)
	}
	if err != nil {
		return nil, err
	}

	// Key popularity: Zipf over ranks; ring placement decorrelates rank
	// from machine index, which is exactly the paper's Shuffled flavor.
	keyWeight := popularity.Zipf(cfg.NumKeys, cfg.KeyBias)
	keyPos := make([]uint64, cfg.NumKeys)
	keySet := make([]core.ProcSet, cfg.NumKeys)
	for i := 0; i < cfg.NumKeys; i++ {
		keyPos[i] = ring.KeyPosition(fmt.Sprintf("key-%d", i))
		keySet[i] = r.ReplicaSetAt(keyPos[i], cfg.K)
	}
	sampler := popularity.NewSampler(keyWeight)

	tasks := make([]core.Task, cfg.N)
	t := core.Time(0)
	for i := range tasks {
		t += rng.ExpFloat64() / cfg.Rate
		key := sampler.Sample(rng)
		tasks[i] = core.Task{
			Release: t,
			Proc:    proc,
			Set:     keySet[key],
			Key:     key,
		}
	}
	return &KeyWorkload{
		Inst:      core.NewInstance(cfg.M, tasks),
		Ring:      r,
		KeyPos:    keyPos,
		KeyWeight: keyWeight,
	}, nil
}

// MachineWeights returns the machine-level popularity P(E_j) induced by
// the key popularity and ring placement — the bridge between this
// key-level model and the paper's machine-level model of Section 7.1.
func (kw *KeyWorkload) MachineWeights() []float64 {
	w, err := kw.Ring.MachineWeights(kw.KeyPos, kw.KeyWeight)
	if err != nil {
		panic(err) // lengths are constructed equal
	}
	return w
}
