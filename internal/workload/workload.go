// Package workload generates the task streams of Section 7: tasks with unit
// processing times released by a Poisson process with rate λ, each carrying
// a key whose primary machine is drawn from a popularity distribution and
// whose processing set is derived through a replication strategy.
package workload

import (
	"fmt"
	"math/rand"

	"flowsched/internal/core"
	"flowsched/internal/popularity"
	"flowsched/internal/replicate"
)

// Dist selects the service-time distribution of generated tasks.
type Dist int

// Service-time distributions.
const (
	// ProcConstant gives every task processing time Proc (the paper's
	// unit-task setting when Proc = 1).
	ProcConstant Dist = iota
	// ProcExponential draws processing times exponentially with mean Proc
	// (an M/M/· system, used to validate the simulator against queueing
	// theory).
	ProcExponential
	// ProcUniform draws uniformly from (0, 2·Proc), mean Proc.
	ProcUniform
)

// Config describes a generated workload.
type Config struct {
	M        int                // cluster size
	N        int                // number of tasks
	Rate     float64            // Poisson arrival rate λ (tasks per time unit)
	Proc     core.Time          // processing time of every task (default 1)
	Dist     Dist               // service-time distribution (default constant)
	Weights  []float64          // machine popularity P(E_j); nil = uniform
	Strategy replicate.Strategy // replication strategy; nil = no replication
}

// Generate draws an instance from the configuration using rng. Arrivals
// follow a Poisson process (exponential inter-arrival times with mean 1/λ);
// the task's key primary is drawn from Weights and its processing set is the
// strategy's replication interval of that primary. The Key field records the
// primary machine.
func Generate(cfg Config, rng *rand.Rand) (*core.Instance, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("workload: need at least one machine")
	}
	if cfg.N < 0 {
		return nil, fmt.Errorf("workload: negative task count")
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("workload: arrival rate must be positive, got %v", cfg.Rate)
	}
	proc := cfg.Proc
	if proc == 0 {
		proc = 1
	}
	if proc < 0 {
		return nil, fmt.Errorf("workload: negative processing time %v", proc)
	}
	weights := cfg.Weights
	if weights == nil {
		weights = popularity.Zipf(cfg.M, 0)
	}
	if len(weights) != cfg.M {
		return nil, fmt.Errorf("workload: %d weights for %d machines", len(weights), cfg.M)
	}
	strategy := cfg.Strategy
	if strategy == nil {
		strategy = replicate.None{}
	}
	if err := replicate.Validate(strategy, cfg.M); err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	sampler := popularity.NewSampler(weights)

	drawProc := func() core.Time {
		switch cfg.Dist {
		case ProcExponential:
			return proc * rng.ExpFloat64()
		case ProcUniform:
			return 2 * proc * rng.Float64()
		default:
			return proc
		}
	}

	tasks := make([]core.Task, cfg.N)
	t := core.Time(0)
	for i := range tasks {
		t += rng.ExpFloat64() / cfg.Rate
		primary := sampler.Sample(rng)
		p := drawProc()
		for p <= 0 { // redraw the measure-zero degenerate samples
			p = drawProc()
		}
		tasks[i] = core.Task{
			Release: t,
			Proc:    p,
			Set:     strategy.Set(primary, cfg.M),
			Key:     primary,
		}
	}
	return core.NewInstance(cfg.M, tasks), nil
}

// UnitBatches builds a deterministic instance that releases, at each integer
// time 0..rounds-1, one unit task per entry of batch, where batch[i] gives
// the processing set of the i-th task of the round (nil = unrestricted).
// Tasks within a round keep the order of batch. This is the building block
// of the adversary streams.
func UnitBatches(m, rounds int, batch []core.ProcSet) *core.Instance {
	var tasks []core.Task
	for t := 0; t < rounds; t++ {
		for _, set := range batch {
			tasks = append(tasks, core.Task{
				Release: core.Time(t),
				Proc:    1,
				Set:     set.Clone(),
				Key:     -1,
			})
		}
	}
	return core.NewInstance(m, tasks)
}

// AverageLoad returns the cluster load λ/m implied by a rate, as a fraction
// (1.0 = 100%).
func AverageLoad(rate float64, m int) float64 { return rate / float64(m) }

// RateForLoad returns the Poisson rate λ giving the requested average
// cluster load (fraction of 1).
func RateForLoad(load float64, m int) float64 { return load * float64(m) }
