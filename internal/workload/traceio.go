package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"flowsched/internal/core"
	"flowsched/internal/replicate"
)

// FromTrace builds an instance from a request trace in the simple
// CSV/whitespace format used by key-value store benchmarks:
//
//	<arrival-time> <key> [<processing-time>]
//
// one request per line, '#' comments and blank lines ignored, fields
// separated by commas or whitespace. Keys are arbitrary strings; distinct
// keys are assigned primaries round-robin by first appearance order hashed
// onto machines via the key index modulo m (a trace replays the same
// placement every time). The processing time defaults to 1 when the third
// field is absent. The strategy derives each request's processing set from
// its key's primary.
func FromTrace(r io.Reader, m int, strategy replicate.Strategy) (*core.Instance, error) {
	if m < 1 {
		return nil, fmt.Errorf("workload: need at least one machine")
	}
	if strategy == nil {
		strategy = replicate.None{}
	}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	keyIndex := make(map[string]int)
	var tasks []core.Task
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		})
		if len(fields) < 2 {
			return nil, fmt.Errorf("workload: trace line %d: need <time> <key> [<proc>], got %q", lineNo, line)
		}
		at, err := strconv.ParseFloat(fields[0], 64)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("workload: trace line %d: bad arrival time %q", lineNo, fields[0])
		}
		key := fields[1]
		proc := 1.0
		if len(fields) >= 3 {
			proc, err = strconv.ParseFloat(fields[2], 64)
			if err != nil || proc <= 0 {
				return nil, fmt.Errorf("workload: trace line %d: bad processing time %q", lineNo, fields[2])
			}
		}
		idx, ok := keyIndex[key]
		if !ok {
			idx = len(keyIndex)
			keyIndex[key] = idx
		}
		primary := idx % m
		tasks = append(tasks, core.Task{
			Release: at,
			Proc:    proc,
			Set:     strategy.Set(primary, m),
			Key:     idx,
		})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	sort.SliceStable(tasks, func(a, b int) bool { return tasks[a].Release < tasks[b].Release })
	inst := core.NewInstance(m, tasks)
	if err := inst.Validate(); err != nil {
		return nil, fmt.Errorf("workload: invalid trace: %w", err)
	}
	return inst, nil
}

// WriteTrace writes an instance back out in the FromTrace format (keys are
// emitted as key-<id>).
func WriteTrace(w io.Writer, inst *core.Instance) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# arrival-time key processing-time")
	for _, t := range inst.Tasks {
		if _, err := fmt.Fprintf(bw, "%g key-%d %g\n", t.Release, t.Key, t.Proc); err != nil {
			return err
		}
	}
	return bw.Flush()
}
