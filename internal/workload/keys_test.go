package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowsched/internal/psets"
	"flowsched/internal/sched"
)

func TestGenerateKeysBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	kw, err := GenerateKeys(KeyConfig{
		M: 9, N: 500, Rate: 5, NumKeys: 100, KeyBias: 1, K: 3,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := kw.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if kw.Inst.N() != 500 || !kw.Inst.UnitTasks() {
		t.Fatalf("n=%d unit=%v", kw.Inst.N(), kw.Inst.UnitTasks())
	}
	for _, task := range kw.Inst.Tasks {
		if task.Key < 0 || task.Key >= 100 {
			t.Fatalf("key %d out of range", task.Key)
		}
		if task.Set.Len() != 3 {
			t.Fatalf("replica set %v has wrong size", task.Set)
		}
		// The set matches the ring's replica set for the key.
		want := kw.Ring.ReplicaSetAt(kw.KeyPos[task.Key], 3)
		if !task.Set.Equal(want) {
			t.Fatalf("set %v != ring set %v", task.Set, want)
		}
	}
}

func TestGenerateKeysOrderedRingIsIntervalFamily(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	kw, err := GenerateKeys(KeyConfig{
		M: 12, N: 300, Rate: 6, NumKeys: 200, KeyBias: 0.8, K: 4,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	fam := psets.FromInstance(kw.Inst)
	if !fam.IsInterval() {
		t.Fatalf("ordered-ring workload must have interval structure, got %v", fam.Classify())
	}
	if k, ok := fam.UniformSize(); !ok || k != 4 {
		t.Fatalf("uniform size = %d %v", k, ok)
	}
}

func TestGenerateKeysMachineWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	kw, err := GenerateKeys(KeyConfig{
		M: 6, N: 50000, Rate: 10, NumKeys: 500, KeyBias: 1.2, K: 2,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	mw := kw.MachineWeights()
	sum := 0.0
	for _, w := range mw {
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("machine weights sum to %v", sum)
	}
	// Empirical primary frequencies track the analytic machine weights.
	counts := make([]float64, 6)
	for _, task := range kw.Inst.Tasks {
		counts[kw.Ring.PrimaryAt(kw.KeyPos[task.Key])]++
	}
	for j := range counts {
		got := counts[j] / float64(kw.Inst.N())
		if math.Abs(got-mw[j]) > 0.02 {
			t.Fatalf("machine %d: empirical %v vs analytic %v", j, got, mw[j])
		}
	}
}

func TestGenerateKeysValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bad := []KeyConfig{
		{M: 0, N: 1, Rate: 1, NumKeys: 1, K: 1},
		{M: 2, N: 1, Rate: 1, NumKeys: 0, K: 1},
		{M: 2, N: -1, Rate: 1, NumKeys: 1, K: 1},
		{M: 2, N: 1, Rate: 0, NumKeys: 1, K: 1},
		{M: 2, N: 1, Rate: 1, NumKeys: 1, K: 3},
		{M: 2, N: 1, Rate: 1, NumKeys: 1, K: 0},
		{M: 2, N: 1, Rate: 1, NumKeys: 1, K: 1, KeyBias: -1},
		{M: 2, N: 1, Rate: 1, NumKeys: 1, K: 1, Proc: -2},
	}
	for i, cfg := range bad {
		if _, err := GenerateKeys(cfg, rng); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
}

func TestGenerateKeysVirtualNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	kw, err := GenerateKeys(KeyConfig{
		M: 8, N: 200, Rate: 4, NumKeys: 64, KeyBias: 0.5, K: 3, VNodes: 16,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if kw.Ring.NumTokens() != 8*16 {
		t.Fatalf("tokens = %d", kw.Ring.NumTokens())
	}
	if err := kw.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
	// With vnodes the replica family is generally NOT an interval family
	// of the machine numbering — that is the point of the comparison.
	// (We only require validity here; structure depends on the hash.)
}

// TestKeyWorkloadSchedulable runs EFT end to end on key workloads.
func TestKeyWorkloadSchedulable(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 3 + rng.Intn(10)
		k := 1 + rng.Intn(m)
		vn := rng.Intn(3) * 8 // 0, 8, 16
		kw, err := GenerateKeys(KeyConfig{
			M: m, N: 200, Rate: 0.7 * float64(m),
			NumKeys: 50 + rng.Intn(200), KeyBias: rng.Float64() * 2,
			K: k, VNodes: vn,
		}, rng)
		if err != nil {
			return false
		}
		s, err := sched.NewEFT(sched.MinTie{}).Run(kw.Inst)
		return err == nil && s.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
