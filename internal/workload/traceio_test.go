package workload

import (
	"math/rand"
	"strings"
	"testing"

	"flowsched/internal/replicate"
)

func TestFromTraceBasic(t *testing.T) {
	src := `# a comment
0.5 user:alice 2
0.0, user:bob
1.5	user:alice	1

2.0 user:carol 0.5
`
	inst, err := FromTrace(strings.NewReader(src), 4, replicate.Overlapping{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if inst.N() != 4 {
		t.Fatalf("n = %d, want 4", inst.N())
	}
	// Sorted by arrival: bob(0.0), alice(0.5), alice(1.5), carol(2.0).
	if inst.Tasks[0].Release != 0 || inst.Tasks[1].Release != 0.5 {
		t.Fatalf("order wrong: %v", inst.Tasks)
	}
	// Default proc = 1 for bob.
	if inst.Tasks[0].Proc != 1 {
		t.Fatalf("default proc = %v", inst.Tasks[0].Proc)
	}
	// Same key → same processing set.
	if !inst.Tasks[1].Set.Equal(inst.Tasks[2].Set) {
		t.Fatalf("alice's two requests have different sets: %v vs %v",
			inst.Tasks[1].Set, inst.Tasks[2].Set)
	}
	// Sets have size k=2.
	for _, task := range inst.Tasks {
		if task.Set.Len() != 2 {
			t.Fatalf("set size = %d", task.Set.Len())
		}
	}
}

func TestFromTraceErrors(t *testing.T) {
	cases := []string{
		"not-a-number key",
		"1.0",          // missing key
		"-1 key",       // negative time
		"1.0 key zero", // bad proc
		"1.0 key 0",    // non-positive proc
	}
	for i, src := range cases {
		if _, err := FromTrace(strings.NewReader(src), 2, nil); err == nil {
			t.Errorf("case %d accepted: %q", i, src)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	orig, err := Generate(Config{M: 5, N: 200, Rate: 3, Strategy: replicate.Disjoint{K: 2}}, rng)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteTrace(&b, orig); err != nil {
		t.Fatal(err)
	}
	back, err := FromTrace(strings.NewReader(b.String()), 5, replicate.Disjoint{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != orig.N() {
		t.Fatalf("n changed: %d vs %d", back.N(), orig.N())
	}
	for i := range orig.Tasks {
		a, bt := orig.Tasks[i], back.Tasks[i]
		if a.Release != bt.Release || a.Proc != bt.Proc {
			t.Fatalf("task %d changed: %+v vs %+v", i, a, bt)
		}
	}
}

func TestFromTraceUnknownStrategyDefaultsToNone(t *testing.T) {
	inst, err := FromTrace(strings.NewReader("0 k1\n1 k2\n"), 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range inst.Tasks {
		if task.Set.Len() != 1 {
			t.Fatalf("no-replication set size = %d", task.Set.Len())
		}
	}
	// Distinct keys get distinct primaries (round-robin).
	if inst.Tasks[0].Set.Equal(inst.Tasks[1].Set) {
		t.Fatalf("two keys mapped to the same primary unexpectedly")
	}
}
