package workload

import (
	"fmt"
	"math/rand"

	"flowsched/internal/core"
	"flowsched/internal/popularity"
	"flowsched/internal/replicate"
)

// MixedConfig extends the Section 7 read workload with write fan-out, the
// replication cost the paper's read-only model abstracts away: a read is
// one task eligible on any replica (the paper's M_i), while a write must
// update EVERY replica — it fans out into |I_k(u)| tasks, each pinned to
// one specific machine. Higher replication factors therefore help reads
// and hurt writes, which is the classic KV-store trade-off.
type MixedConfig struct {
	M             int
	N             int     // number of REQUESTS (writes expand into k tasks)
	Rate          float64 // Poisson request rate
	Proc          core.Time
	WriteFraction float64 // probability a request is a write (0..1)
	Weights       []float64
	Strategy      replicate.Strategy
}

// GenerateMixed draws a read/write workload. The returned instance contains
// one task per read and |set| tasks per write (all released at the write's
// arrival, one per replica). Task.Key records the primary machine of the
// requested key for both kinds.
func GenerateMixed(cfg MixedConfig, rng *rand.Rand) (*core.Instance, error) {
	if cfg.M < 1 {
		return nil, fmt.Errorf("workload: need at least one machine")
	}
	if cfg.N < 0 {
		return nil, fmt.Errorf("workload: negative request count")
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("workload: arrival rate must be positive")
	}
	if cfg.WriteFraction < 0 || cfg.WriteFraction > 1 {
		return nil, fmt.Errorf("workload: write fraction %v out of [0,1]", cfg.WriteFraction)
	}
	proc := cfg.Proc
	if proc == 0 {
		proc = 1
	}
	if proc < 0 {
		return nil, fmt.Errorf("workload: negative processing time %v", proc)
	}
	weights := cfg.Weights
	if weights == nil {
		weights = popularity.Zipf(cfg.M, 0)
	}
	if len(weights) != cfg.M {
		return nil, fmt.Errorf("workload: %d weights for %d machines", len(weights), cfg.M)
	}
	strategy := cfg.Strategy
	if strategy == nil {
		strategy = replicate.None{}
	}
	sampler := popularity.NewSampler(weights)

	var tasks []core.Task
	t := core.Time(0)
	for i := 0; i < cfg.N; i++ {
		t += rng.ExpFloat64() / cfg.Rate
		primary := sampler.Sample(rng)
		set := strategy.Set(primary, cfg.M)
		if rng.Float64() < cfg.WriteFraction {
			// Write: one pinned task per replica.
			for _, j := range set {
				tasks = append(tasks, core.Task{
					Release: t,
					Proc:    proc,
					Set:     core.NewProcSet(j),
					Key:     primary,
				})
			}
		} else {
			// Read: any replica will do.
			tasks = append(tasks, core.Task{
				Release: t,
				Proc:    proc,
				Set:     set,
				Key:     primary,
			})
		}
	}
	return core.NewInstance(cfg.M, tasks), nil
}

// EffectiveLoad returns the average machine load implied by a mixed
// workload: each read costs proc, each write costs |set|·proc, so the
// cluster-wide load fraction is rate·proc·(1 − w + w·k̄)/m with k̄ the
// average replica count (exactly k for the overlapping strategy, ≤ k for
// disjoint tails).
func EffectiveLoad(cfg MixedConfig) float64 {
	proc := float64(cfg.Proc)
	if proc == 0 {
		proc = 1
	}
	strategy := cfg.Strategy
	if strategy == nil {
		strategy = replicate.None{}
	}
	weights := cfg.Weights
	if weights == nil {
		weights = popularity.Zipf(cfg.M, 0)
	}
	// Average replica count under the popularity distribution.
	kbar := 0.0
	total := 0.0
	for u := 0; u < cfg.M; u++ {
		kbar += weights[u] * float64(strategy.Set(u, cfg.M).Len())
		total += weights[u]
	}
	if total > 0 {
		kbar /= total
	}
	perRequest := (1-cfg.WriteFraction)*proc + cfg.WriteFraction*kbar*proc
	return cfg.Rate * perRequest / float64(cfg.M)
}
