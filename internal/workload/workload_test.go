package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowsched/internal/core"
	"flowsched/internal/popularity"
	"flowsched/internal/replicate"
)

func TestGenerateBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inst, err := Generate(Config{M: 6, N: 100, Rate: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if inst.N() != 100 || inst.M != 6 {
		t.Fatalf("n=%d m=%d", inst.N(), inst.M)
	}
	if !inst.UnitTasks() {
		t.Fatalf("default tasks should be unit")
	}
	for _, task := range inst.Tasks {
		if task.Set.Len() != 1 || task.Set[0] != task.Key {
			t.Fatalf("no-replication set should be the primary: %v key %d", task.Set, task.Key)
		}
	}
}

func TestGenerateInterArrivalMean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const rate = 4.0
	inst, err := Generate(Config{M: 3, N: 20000, Rate: rate}, rng)
	if err != nil {
		t.Fatal(err)
	}
	last := inst.Tasks[inst.N()-1].Release
	gotRate := float64(inst.N()) / last
	if math.Abs(gotRate-rate)/rate > 0.05 {
		t.Fatalf("empirical rate %v, want ~%v", gotRate, rate)
	}
}

func TestGeneratePrimariesFollowWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := popularity.Zipf(5, 1)
	inst, err := Generate(Config{M: 5, N: 50000, Rate: 5, Weights: w}, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, 5)
	for _, task := range inst.Tasks {
		counts[task.Key]++
	}
	for j := range counts {
		got := counts[j] / float64(inst.N())
		if math.Abs(got-w[j]) > 0.01 {
			t.Fatalf("primary %d frequency %v, want %v", j, got, w[j])
		}
	}
}

func TestGenerateWithStrategy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inst, err := Generate(Config{
		M: 6, N: 200, Rate: 2,
		Strategy: replicate.Overlapping{K: 3},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range inst.Tasks {
		want := core.MustRingInterval(task.Key, 3, 6)
		if !task.Set.Equal(want) {
			t.Fatalf("set %v for primary %d, want %v", task.Set, task.Key, want)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cases := []Config{
		{M: 0, N: 1, Rate: 1},
		{M: 2, N: -1, Rate: 1},
		{M: 2, N: 1, Rate: 0},
		{M: 2, N: 1, Rate: 1, Proc: -1},
		{M: 2, N: 1, Rate: 1, Weights: []float64{1}},
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg, rng); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestGenerateCustomProc(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	inst, err := Generate(Config{M: 2, N: 10, Rate: 1, Proc: 2.5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range inst.Tasks {
		if task.Proc != 2.5 {
			t.Fatalf("proc = %v", task.Proc)
		}
	}
}

func TestUnitBatches(t *testing.T) {
	batch := []core.ProcSet{core.NewProcSet(0), core.NewProcSet(1), nil}
	inst := UnitBatches(2, 3, batch)
	if inst.N() != 9 {
		t.Fatalf("n = %d, want 9", inst.N())
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	// Round 1 (tasks 3..5) released at t=1, in batch order.
	if inst.Tasks[3].Release != 1 || !inst.Tasks[3].Set.Equal(core.NewProcSet(0)) {
		t.Fatalf("round structure broken: %+v", inst.Tasks[3])
	}
	if inst.Tasks[5].Set != nil {
		t.Fatalf("nil set should stay unrestricted")
	}
}

func TestLoadHelpers(t *testing.T) {
	if RateForLoad(0.9, 15) != 13.5 {
		t.Fatalf("RateForLoad wrong")
	}
	if AverageLoad(13.5, 15) != 0.9 {
		t.Fatalf("AverageLoad wrong")
	}
}

func TestGenerateInstancesValidProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(10)
		k := 1 + rng.Intn(m)
		var strat replicate.Strategy
		switch rng.Intn(3) {
		case 0:
			strat = replicate.Overlapping{K: k}
		case 1:
			strat = replicate.Disjoint{K: k}
		default:
			strat = replicate.None{}
		}
		w := popularity.Weights(popularity.Shuffled, m, rng.Float64()*3, rng)
		inst, err := Generate(Config{M: m, N: 50, Rate: 1 + rng.Float64()*5, Weights: w, Strategy: strat}, rng)
		if err != nil {
			return false
		}
		return inst.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
