package sim

import (
	"sort"

	"flowsched/internal/core"
	"flowsched/internal/stats"
)

// KeyStats summarizes the response times of one key's requests — the
// hot-key breakdown operators of key-value stores look at.
type KeyStats struct {
	Key      int
	Requests int
	MeanFlow core.Time
	MaxFlow  core.Time
	P99      core.Time
}

// FlowsByKey groups a run's flow times by the originating key (Task.Key)
// and returns per-key summaries sorted by descending request count (the
// hottest keys first). Tasks with Key < 0 are skipped.
func FlowsByKey(inst *core.Instance, m *Metrics) []KeyStats {
	groups := make(map[int][]core.Time)
	for i, t := range inst.Tasks {
		if t.Key < 0 {
			continue
		}
		groups[t.Key] = append(groups[t.Key], m.Flows[i])
	}
	out := make([]KeyStats, 0, len(groups))
	for key, flows := range groups {
		out = append(out, KeyStats{
			Key:      key,
			Requests: len(flows),
			MeanFlow: stats.Mean(flows),
			MaxFlow:  stats.Max(flows),
			P99:      stats.Quantile(flows, 0.99),
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Requests != out[b].Requests {
			return out[a].Requests > out[b].Requests
		}
		return out[a].Key < out[b].Key
	})
	return out
}

// HotKeyPenalty compares the mean response time of the hottest keys (top
// fraction of request volume) against everyone else, returning
// (hotMean, coldMean). It quantifies whether popular data suffers worse
// latency — the motivation for popularity-aware replication.
func HotKeyPenalty(inst *core.Instance, m *Metrics, topFraction float64) (core.Time, core.Time) {
	byKey := FlowsByKey(inst, m)
	if len(byKey) == 0 {
		return 0, 0
	}
	total := 0
	for _, ks := range byKey {
		total += ks.Requests
	}
	cut := int(topFraction * float64(total))
	var hotSum, coldSum core.Time
	hotN, coldN := 0, 0
	seen := 0
	for _, ks := range byKey {
		if seen < cut {
			hotSum += ks.MeanFlow * core.Time(ks.Requests)
			hotN += ks.Requests
		} else {
			coldSum += ks.MeanFlow * core.Time(ks.Requests)
			coldN += ks.Requests
		}
		seen += ks.Requests
	}
	var hot, cold core.Time
	if hotN > 0 {
		hot = hotSum / core.Time(hotN)
	}
	if coldN > 0 {
		cold = coldSum / core.Time(coldN)
	}
	return hot, cold
}
