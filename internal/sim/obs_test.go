package sim

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/faults"
	"flowsched/internal/obs"
	"flowsched/internal/trace"
)

// fullInstance builds an unrestricted instance (every Set nil), the shape
// that takes the EFT-Min O(log m) fast path.
func fullInstance(m, n int, rng *rand.Rand) *core.Instance {
	tasks := make([]core.Task, n)
	t := 0.0
	for i := range tasks {
		t += rng.ExpFloat64() / float64(m)
		tasks[i] = core.Task{Release: t, Proc: 0.5 + rng.Float64()}
	}
	return core.NewInstance(m, tasks)
}

// allProbes returns one of each built-in probe plus their fan-out.
func allProbes(t *testing.T, m int, dt core.Time) (*obs.Counters, *obs.HistogramProbe, *obs.Sampler, *obs.JSONLSink, *bytes.Buffer, obs.Probe) {
	t.Helper()
	counters := &obs.Counters{}
	hist := obs.NewHistogramProbe()
	sampler, err := obs.NewSampler(m, dt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := obs.NewJSONLSink(&buf)
	return counters, hist, sampler, sink, &buf, obs.Multi(counters, hist, sampler, sink)
}

// TestProbedRunEquivalence: attaching probes must not change the run — the
// probed schedule and metrics are identical to the unprobed ones, on both
// the generic loop and the EFT-Min fast path.
func TestProbedRunEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(7)
		instances := []*core.Instance{
			randomInstance(m, 300, rng), // generic loop
			fullInstance(m, 300, rng),   // EFT-Min fast path
		}
		for _, inst := range instances {
			for _, router := range []Router{EFTRouter{}, JSQRouter{}} {
				sPlain, mPlain, err := Run(inst, router)
				if err != nil {
					t.Fatal(err)
				}
				counters, hist, sampler, sink, _, probe := allProbes(t, inst.M, mPlain.Makespan/17)
				sProbed, mProbed, err := RunProbed(inst, router, probe)
				if err != nil {
					t.Fatal(err)
				}
				sameSchedule(t, router.Name(), sPlain, sProbed)
				sameMetrics(t, router.Name(), mPlain, mProbed)
				n := int64(inst.N())
				if counters.Arrivals != n || counters.Dispatches != n || counters.Completions != n {
					t.Fatalf("%s: counters %+v, want %d arrivals = dispatches = completions", router.Name(), counters, n)
				}
				if hist.Flow.Count() != inst.N() || hist.Flow.Max() != mPlain.MaxFlow() {
					t.Errorf("%s: flow histogram count %d max %v, want %d / %v",
						router.Name(), hist.Flow.Count(), hist.Flow.Max(), inst.N(), mPlain.MaxFlow())
				}
				if len(sampler.Samples()) == 0 {
					t.Errorf("%s: sampler recorded nothing", router.Name())
				}
				if err := sink.Err(); err != nil {
					t.Errorf("%s: sink error %v", router.Name(), err)
				}
			}
		}
	}
}

// TestProbedRunFaultyEquivalence: same property for the faulty simulator,
// plus the counter conservation laws of the fault model.
func TestProbedRunFaultyEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		m := 2 + rng.Intn(5)
		inst := randomInstance(m, 300, rng)
		plan := faults.Empty(m).
			Down(rng.Intn(m), 5+10*rng.Float64(), 40+20*rng.Float64()).
			Down(rng.Intn(m), 60+10*rng.Float64(), 90+20*rng.Float64())
		policy := RetryPolicy{MaxAttempts: 4, Backoff: 0.1}

		sPlain, mPlain, err := RunFaulty(inst, EFTRouter{}, plan, policy)
		if err != nil {
			t.Fatal(err)
		}
		counters, hist, sampler, sink, _, probe := allProbes(t, m, mPlain.Horizon/23)
		sProbed, mProbed, err := RunFaultyProbed(inst, EFTRouter{}, plan, policy, probe)
		if err != nil {
			t.Fatal(err)
		}
		sameSchedule(t, "faulty", sPlain, sProbed)
		if !reflect.DeepEqual(mPlain, mProbed) {
			t.Fatalf("faulty metrics diverge:\n%+v\n%+v", mPlain, mProbed)
		}

		// Conservation: every request either completes or is dropped; every
		// dispatch beyond the first per request was preceded by a retry.
		n := int64(inst.N())
		if counters.Arrivals != n {
			t.Errorf("arrivals %d, want %d", counters.Arrivals, n)
		}
		if counters.Completions+counters.Drops != n {
			t.Errorf("completions %d + drops %d != %d requests", counters.Completions, counters.Drops, n)
		}
		if counters.Drops != int64(mPlain.DroppedCount()) {
			t.Errorf("drops %d, metrics say %d", counters.Drops, mPlain.DroppedCount())
		}
		if counters.Dispatches < counters.Completions {
			t.Errorf("dispatches %d < completions %d", counters.Dispatches, counters.Completions)
		}
		if hist.Flow.Count() != int(counters.Completions) {
			t.Errorf("flow histogram count %d, want one entry per completion %d", hist.Flow.Count(), counters.Completions)
		}
		if len(sampler.Samples()) == 0 {
			t.Error("sampler recorded nothing")
		}
		if err := sink.Err(); err != nil {
			t.Errorf("sink error %v", err)
		}
	}
}

// TestProbeNilRunAllocs pins the zero-overhead contract of the nil probe:
// RunProbed(…, nil) stays within the same constant allocation bound as Run
// (DESIGN.md §7), on both dispatch paths.
func TestProbeNilRunAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, inst := range []*core.Instance{
		randomInstance(8, 2000, rng), // generic loop
		fullInstance(8, 2000, rng),   // EFT-Min fast path
	} {
		avg := testing.AllocsPerRun(5, func() {
			if _, _, err := RunProbed(inst, EFTRouter{}, nil); err != nil {
				t.Fatal(err)
			}
		})
		if avg > 64 {
			t.Errorf("%v allocs per nil-probe run of %d tasks: the probe hooks leak onto the hot path", avg, inst.N())
		}
	}
}

// TestProbeNilRunFaultyAllocs: the faulty simulator's nil-probe path also
// stays constant-allocation (it was ~350 allocs per run before the probe
// hooks landed; the bound is far below one alloc per request).
func TestProbeNilRunFaultyAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := randomInstance(8, 2000, rng)
	plan := faults.Empty(8).Down(0, 5, 50).Down(3, 20, 80)
	avg := testing.AllocsPerRun(5, func() {
		if _, _, err := RunFaultyProbed(inst, EFTRouter{}, plan, RetryPolicy{MaxAttempts: 3}, nil); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 512 {
		t.Errorf("%v allocs per nil-probe faulty run of %d tasks", avg, inst.N())
	}
}

// TestHistogramMatchesStatsQuantile is the accuracy property of the
// streaming histogram against the exact per-run flow data: for every q, the
// histogram quantile is within one log-bucket (factor Growth) of the order
// statistic of rank ⌊q·(n−1)⌋ that anchors stats.Quantile's interpolation,
// and the exactly-tracked aggregates (count, mean, min, max) agree with
// stats to float precision.
func TestHistogramMatchesStatsQuantile(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(200 + seed))
		inst := randomInstance(2+rng.Intn(7), 1000, rng)
		hist := obs.NewHistogramProbe()
		_, metrics, err := RunProbed(inst, EFTRouter{}, hist)
		if err != nil {
			t.Fatal(err)
		}
		flows := append([]core.Time(nil), metrics.Flows...)
		sort.Float64s(flows)
		n := len(flows)
		g := hist.Flow.Growth()
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			lo := int(math.Floor(q * float64(n-1)))
			anchor := flows[lo]
			hq := hist.Flow.Quantile(q)
			if hq < anchor/g*(1-1e-12) || hq > anchor*g*(1+1e-12) {
				t.Fatalf("seed %d q=%v: histogram %v outside one bucket of order statistic %v (stats.Quantile %v)",
					seed, q, hq, anchor, metrics.FlowQuantile(q))
			}
			// stats.Quantile interpolates between ranks lo and lo+1, so it
			// can only sit above the anchor: the histogram never
			// overestimates it by more than the bucket factor.
			if sq := metrics.FlowQuantile(q); hq > sq*g*(1+1e-12) {
				t.Fatalf("seed %d q=%v: histogram %v exceeds stats.Quantile %v by more than factor %v", seed, q, hq, sq, g)
			}
		}
		if hist.Flow.Count() != n || hist.Flow.Max() != metrics.MaxFlow() || hist.Flow.Min() != flows[0] {
			t.Fatalf("seed %d: exact aggregates diverge", seed)
		}
		if mf := metrics.MeanFlow(); math.Abs(hist.Flow.Mean()-mf) > 1e-9*mf {
			t.Fatalf("seed %d: mean %v != %v", seed, hist.Flow.Mean(), mf)
		}
	}
}

// TestJSONLReplayMatchesTrace: replaying a run's JSONL event stream
// reconstructs the exact trace of its schedule — same events, same order,
// byte-identical rendering.
func TestJSONLReplayMatchesTrace(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		m := 2 + rng.Intn(7)
		for _, inst := range []*core.Instance{
			randomInstance(m, 250, rng),
			fullInstance(m, 250, rng),
		} {
			var buf bytes.Buffer
			sink := obs.NewJSONLSink(&buf)
			sched, _, err := RunProbed(inst, EFTRouter{}, sink)
			if err != nil {
				t.Fatal(err)
			}
			if err := sink.Err(); err != nil {
				t.Fatal(err)
			}
			replayed, err := obs.ReplayTrace(&buf)
			if err != nil {
				t.Fatal(err)
			}
			want := trace.FromSchedule(sched)
			if !reflect.DeepEqual(replayed, want) {
				t.Fatalf("seed %d: replayed trace diverges from trace.FromSchedule (%d vs %d events)",
					seed, len(replayed), len(want))
			}
			var a, b bytes.Buffer
			trace.Write(&a, replayed)
			trace.Write(&b, want)
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("seed %d: rendered traces differ", seed)
			}
			if err := trace.Validate(replayed, inst.N()); err != nil {
				t.Fatalf("seed %d: replayed trace invalid: %v", seed, err)
			}
		}
	}
}

// TestSamplerMatchesQueueProfile cross-checks the in-flight backlog series
// against the post-hoc trace.QueueProfile of the same run: at every sample
// boundary the live backlog equals the trace's waiting+running count.
func TestSamplerMatchesQueueProfile(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(400 + seed))
		m := 2 + rng.Intn(7)
		inst := randomInstance(m, 400, rng)
		_, mPlain, err := Run(inst, EFTRouter{})
		if err != nil {
			t.Fatal(err)
		}
		sampler, err := obs.NewSampler(m, mPlain.Makespan/31)
		if err != nil {
			t.Fatal(err)
		}
		sched, _, err := RunProbed(inst, EFTRouter{}, sampler)
		if err != nil {
			t.Fatal(err)
		}
		profile := trace.QueueProfile(trace.FromSchedule(sched))
		for _, s := range sampler.Samples() {
			ref := 0
			for _, p := range profile {
				if p.Time <= s.Time {
					ref = p.Waiting + p.Running
				} else {
					break
				}
			}
			if s.Backlog != ref {
				t.Fatalf("seed %d: backlog at t=%v is %d, trace says %d", seed, s.Time, s.Backlog, ref)
			}
			queued := 0
			for _, q := range s.Queue {
				if q < 0 {
					t.Fatalf("seed %d: negative queue length at t=%v: %v", seed, s.Time, s.Queue)
				}
				queued += q
			}
			if queued != s.Backlog {
				t.Fatalf("seed %d: per-server queues sum to %d, backlog %d", seed, queued, s.Backlog)
			}
		}
	}
}
