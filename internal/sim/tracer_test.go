package sim

import (
	"math"
	"math/rand"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/elastic"
	"flowsched/internal/faults"
	"flowsched/internal/obs"
	"flowsched/internal/overload"
)

// checkTraceCompleteness is the oracle of the tracing property test: every
// task of the instance has a retained trace whose terminal state, flow and
// final attempt reconstruct the engine's own outputs (Schedule +
// ElasticMetrics), NaN-aware.
func checkTraceCompleteness(t *testing.T, label string, inst *core.Instance,
	s *core.Schedule, em *ElasticMetrics, tracer *obs.Tracer, seen map[obs.TraceState]int) {
	t.Helper()
	if !tracer.Done() || !eqTime(tracer.Makespan(), em.Makespan) {
		t.Fatalf("%s: tracer done=%v makespan=%v, engine makespan=%v",
			label, tracer.Done(), tracer.Makespan(), em.Makespan)
	}
	rejected := func(i int) bool { return em.Rejected != nil && em.Rejected[i] }
	shed := func(i int) bool { return em.Shed != nil && em.Shed[i] }
	for i := range inst.Tasks {
		tr := tracer.Trace(i)
		if tr == nil {
			t.Fatalf("%s: task %d has no trace", label, i)
		}
		if tr.Release != inst.Tasks[i].Release {
			t.Fatalf("%s: task %d release %v, want %v", label, i, tr.Release, inst.Tasks[i].Release)
		}
		if len(tr.Attempts) != em.Attempts[i] {
			t.Fatalf("%s: task %d traced %d attempts, engine counted %d",
				label, i, len(tr.Attempts), em.Attempts[i])
		}
		crashed := 0
		for k, a := range tr.Attempts {
			if a.Outcome == obs.AttemptPending {
				t.Fatalf("%s: task %d attempt %d left pending in state %v", label, i, k, tr.State)
			}
			if a.Outcome == obs.AttemptCompleted && k != len(tr.Attempts)-1 {
				t.Fatalf("%s: task %d completed mid-chain (attempt %d of %d)",
					label, i, k, len(tr.Attempts))
			}
			if a.Outcome == obs.AttemptCrashed {
				crashed++
			}
		}

		var wantState obs.TraceState
		switch {
		case rejected(i):
			wantState = obs.TraceRejected
		case shed(i):
			wantState = obs.TraceShed
		case em.Dropped[i]:
			wantState = obs.TraceDropped
		case !math.IsNaN(float64(em.Flows[i])):
			wantState = obs.TraceCompleted
		default:
			wantState = obs.TraceUnfinished
		}
		if tr.State != wantState {
			t.Fatalf("%s: task %d traced %v, engine disposition %v (dropped=%v flows=%v)",
				label, i, tr.State, wantState, em.Dropped[i], em.Flows[i])
		}
		seen[wantState]++

		switch wantState {
		case obs.TraceRejected:
			// Admission rejects at the arrival instant with no dispatch.
			if len(tr.Attempts) != 0 || tr.Flow != 0 || tr.Reason != em.Reason[i] {
				t.Fatalf("%s: rejected task %d trace = %+v (reason %q)", label, i, tr, em.Reason[i])
			}
		case obs.TraceShed:
			if !eqTime(tr.Flow, em.Flows[i]) || tr.Reason != em.Reason[i] {
				t.Fatalf("%s: shed task %d flow %v reason %q, engine %v %q",
					label, i, tr.Flow, tr.Reason, em.Flows[i], em.Reason[i])
			}
		case obs.TraceDropped:
			if !eqTime(tr.Flow, em.Flows[i]) {
				t.Fatalf("%s: dropped task %d flow %v, engine %v", label, i, tr.Flow, em.Flows[i])
			}
			if crashed != tr.Retries+1 {
				t.Fatalf("%s: dropped task %d has %d crashed attempts, %d retries",
					label, i, crashed, tr.Retries)
			}
		case obs.TraceCompleted:
			if !eqTime(tr.Flow, em.Flows[i]) {
				t.Fatalf("%s: task %d flow %v, engine %v", label, i, tr.Flow, em.Flows[i])
			}
			last := tr.Attempts[len(tr.Attempts)-1]
			if last.Outcome != obs.AttemptCompleted {
				t.Fatalf("%s: completed task %d final attempt %v", label, i, last.Outcome)
			}
			if last.Server != s.Machine[i] {
				t.Fatalf("%s: task %d completed on M%d, schedule says M%d",
					label, i, last.Server, s.Machine[i])
			}
			if last.End != tr.EndAt {
				t.Fatalf("%s: task %d attempt end %v ≠ trace end %v", label, i, last.End, tr.EndAt)
			}
			if !last.Retimed && last.Start != s.Start[i] {
				t.Fatalf("%s: task %d traced start %v, schedule start %v",
					label, i, last.Start, s.Start[i])
			}
			if last.Retimed && float64(last.Start) < float64(s.Start[i])-1e-9 {
				// Reconstructed start (end − proc) is exact on healthy servers
				// and an upper bound under a gray slowdown — never early.
				t.Fatalf("%s: task %d re-timed start %v before schedule start %v",
					label, i, last.Start, s.Start[i])
			}
			if crashed != tr.Retries {
				t.Fatalf("%s: task %d has %d crashed attempts, %d retries", label, i, crashed, tr.Retries)
			}
		case obs.TraceUnfinished:
			if !math.IsNaN(float64(tr.Flow)) || !math.IsNaN(float64(tr.EndAt)) {
				t.Fatalf("%s: unfinished task %d carries flow %v end %v", label, i, tr.Flow, tr.EndAt)
			}
			if !em.Parked[i] {
				t.Fatalf("%s: task %d unfinished but not parked", label, i)
			}
		}
	}
}

// TestTracerCompleteness is the tentpole property: over randomized
// RunElastic trials — all seven routers, crash and gray fault plans,
// admission + shedding + ejection, membership churn with drains and
// handoffs — every task's trace reconstructs the engine's disposition
// exactly. Same trial shapes as TestArenaReuseEquivalence.
func TestTracerCompleteness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	shedPolicies := []overload.ShedPolicy{
		overload.DropOldest, overload.DropNewest, overload.DropLargestStretch, overload.DropRandom,
	}
	seen := map[obs.TraceState]int{}
	for trial := 0; trial < 12; trial++ {
		m := 3 + rng.Intn(8)
		n := 20 + rng.Intn(150)
		load := 0.5 + 1.2*rng.Float64()
		inst := overloadedInstance(m, n, load, rng)
		horizon := inst.Tasks[n-1].Release + 10

		var plan *faults.Plan
		switch trial % 3 {
		case 1:
			plan = faults.Generate(m, horizon, 40, 10, rand.New(rand.NewSource(int64(trial))))
		case 2:
			plan = faults.GenerateGray(m, horizon, faults.GrayConfig{MTBF: 40, MTTR: 15},
				rand.New(rand.NewSource(int64(trial))))
		}
		var cfg *overload.Config
		if trial%2 == 1 {
			cfg = &overload.Config{
				Admission: overload.DeadlineAdmit{D: 15},
				Shedder:   &overload.Shedder{Policy: shedPolicies[trial%len(shedPolicies)], Watermark: 8, Seed: 3},
				Ejector:   &overload.Ejector{},
			}
		}
		var ecfg *elastic.Config
		if trial%4 >= 2 {
			ecfg = &elastic.Config{
				Initial: m, Min: 1 + (m-1)/2, Max: m, WarmUp: 0.5,
				Script: []elastic.Event{{At: horizon * 0.25, Delta: -2}, {At: horizon * 0.6, Delta: 2}},
			}
		}
		pol := RetryPolicy{MaxAttempts: 3}

		for _, kind := range allRouterKinds {
			seed := rng.Int63()
			router, _ := routerPair(kind, seed)
			tracer := obs.NewTracer(obs.KeepAll())
			s, em, err := RunElastic(inst, router, plan, pol, cfg, ecfg, tracer)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, kind, err)
			}
			label := kind
			checkTraceCompleteness(t, label, inst, s, em, tracer, seen)
		}
	}
	// Harsh epilogue trial: crash-heavy servers with a single-attempt budget
	// and a tight admission deadline, so drop and reject chains show up in
	// force (the randomized trials above rarely exhaust three attempts).
	{
		harshRng := rand.New(rand.NewSource(5))
		inst := overloadedInstance(4, 120, 2.0, harshRng)
		horizon := inst.Tasks[len(inst.Tasks)-1].Release + 10
		plan := faults.Generate(4, horizon, 5, 20, rand.New(rand.NewSource(5)))
		cfg := &overload.Config{
			Admission: overload.DeadlineAdmit{D: 2},
			Shedder:   &overload.Shedder{Policy: overload.DropOldest, Watermark: 4, Seed: 3},
		}
		for _, kind := range allRouterKinds {
			router, _ := routerPair(kind, harshRng.Int63())
			tracer := obs.NewTracer(obs.KeepAll())
			s, em, err := RunElastic(inst, router, plan, RetryPolicy{MaxAttempts: 1}, cfg, nil, tracer)
			if err != nil {
				t.Fatalf("harsh %s: %v", kind, err)
			}
			checkTraceCompleteness(t, "harsh-"+kind, inst, s, em, tracer, seen)
		}
	}

	// The property is only meaningful if the trials reached every terminal
	// state; a generator change that quietly stops producing (say) rejects
	// should fail loudly here rather than shrink the oracle's coverage.
	for _, st := range []obs.TraceState{
		obs.TraceCompleted, obs.TraceDropped, obs.TraceRejected, obs.TraceShed,
	} {
		if seen[st] == 0 {
			t.Errorf("no trial produced a %v task (coverage: %v)", st, seen)
		}
	}
}

// TestTracerKeepWorstMatchesKeepAll runs the same configuration twice — once
// traced with KeepAll, once with KeepWorst(k) — and checks the bounded
// tracer retained exactly the k worst traces of the full set, span for span.
func TestTracerKeepWorstMatchesKeepAll(t *testing.T) {
	const k = 9
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 4; trial++ {
		m := 4 + rng.Intn(6)
		n := 60 + rng.Intn(100)
		inst := overloadedInstance(m, n, 1.0+rng.Float64(), rng)
		horizon := inst.Tasks[n-1].Release + 10
		plan := faults.Generate(m, horizon, 40, 10, rand.New(rand.NewSource(int64(trial))))
		pol := RetryPolicy{MaxAttempts: 3}

		seed := rng.Int63()
		ra, rb := routerPair("EFT-noisy", seed)
		full := obs.NewTracer(obs.KeepAll())
		if _, _, err := RunElastic(inst, ra, plan, pol, nil, nil, full); err != nil {
			t.Fatal(err)
		}
		bounded := obs.NewTracer(obs.KeepWorst(k))
		if _, _, err := RunElastic(inst, rb, plan, pol, nil, nil, bounded); err != nil {
			t.Fatal(err)
		}

		want := full.Worst(k)
		got := bounded.Worst(k)
		if len(got) != k || len(want) != k {
			t.Fatalf("trial %d: got %d / want %d traces", trial, len(got), len(want))
		}
		for i := range want {
			w, g := want[i], got[i]
			if w.Task != g.Task || w.State != g.State || !eqTime(w.Flow, g.Flow) ||
				len(w.Attempts) != len(g.Attempts) {
				t.Fatalf("trial %d: worst[%d] diverges: keep-all T%d %v flow %v (%d attempts), keep-worst T%d %v flow %v (%d attempts)",
					trial, i, w.Task, w.State, w.Flow, len(w.Attempts),
					g.Task, g.State, g.Flow, len(g.Attempts))
			}
		}
	}
}

// TestTracerNilRunAllocs pins the tracing-off contract: RunElastic with a
// nil probe keeps the same steady-state allocation ceiling as before the
// tracer existed — tracing is pay-for-use, the unobserved hot path is
// untouched (the benchreg TracerOverheadSimOff pair guards the same line).
func TestTracerNilRunAllocs(t *testing.T) {
	inst := allocInstance(2000, 0.8)
	arena := NewArena()
	pinAllocs(t, 50, func() {
		if _, _, err := arena.RunElastic(inst, EFTRouter{}, nil, RetryPolicy{}, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
	})
}
