package sim

import (
	"fmt"
	"math"

	"flowsched/internal/core"
	"flowsched/internal/elastic"
	"flowsched/internal/faults"
	"flowsched/internal/hedge"
	"flowsched/internal/obs"
	"flowsched/internal/overload"
	"flowsched/internal/resilience"
)

// ElasticMetrics extends OverloadMetrics with the membership observables of
// an elastic run. Membership and Dispatched are nil when the run had no
// elastic config (RunElastic with nil ecfg, or the RunGuarded/RunFaulty
// wrappers): the ring never changed and the struct carries exactly
// OverloadMetrics.
type ElasticMetrics struct {
	OverloadMetrics
	// Membership is the replayable membership history: capacity, initial
	// active prefix and every join/drain. The auditor replays it to re-derive
	// dispatch-time eligibility.
	Membership *elastic.Membership
	// Dispatched records each task's final dispatch instant (NaN for tasks
	// that never dispatched: rejected, or parked forever). The auditor checks
	// membership eligibility at this instant. The core.Times type keeps the
	// deliberate NaN sentinels JSON-encodable (they marshal as null).
	// Breaker-enabled runs (sim.RunResilient with a Breaker config) populate
	// it too, so the auditor can check dispatch instants against the
	// breaker's open spans even without an elastic config.
	Dispatched core.Times
	// ScaleUps / ScaleDowns count committed scale decisions (per machine);
	// Handoffs counts queued tasks moved off draining machines.
	ScaleUps   int
	ScaleDowns int
	Handoffs   int
	// WarmUpTime is the total setup delay imposed on joiners (ScaleUps ×
	// the config's WarmUp).
	WarmUpTime core.Time
	// MachineHours is ∫ members dt over [0, Horizon] — the provisioning cost
	// the autoscale experiment trades against Fmax. Warming machines are not
	// counted (they do no work yet).
	MachineHours core.Time

	// Hedged-execution observables (sim.RunHedged). The per-task vectors are
	// nil and every counter zero when the run had no hedge config.
	//
	// Hedged marks tasks for which a speculative copy was issued;
	// HedgeCopyServer / HedgeCopyAt record the copy's destination and
	// dispatch instant (−1 / NaN when never hedged); HedgeWonByCopy marks
	// tasks whose copy beat the primary. The auditor re-checks the copy's
	// dispatch-time eligibility and the winner's consistency from these.
	Hedged          []bool
	HedgeCopyServer []int
	HedgeCopyAt     core.Times
	HedgeWonByCopy  []bool
	// HedgesIssued counts speculative copies dispatched; every issued copy
	// resolves as exactly one of HedgeWinsCopy (it finished first),
	// HedgesCancelled (first-win, crash, drain or trim killed it) or
	// HedgesRevoked (tied mode revoked it at service start).
	// HedgeWinsPrimary counts hedged tasks whose primary finished first.
	HedgesIssued     int
	HedgeWinsPrimary int
	HedgeWinsCopy    int
	HedgesCancelled  int
	HedgesRevoked    int
	// CancelledWork is busy time reclaimed by cancellations (work that was
	// scheduled but never executed); DuplicateWork is busy time actually
	// burned on losing attempts — the real cost of hedging, bounded in the
	// headline experiment via DuplicateRatio.
	CancelledWork core.Time
	DuplicateWork core.Time

	// Resilience observables (sim.RunResilient). The per-task vectors are
	// nil and every counter zero when the run had no resilience config.
	//
	// Every retry that survives the policy's attempt-cap and timeout
	// checks is Requested; with a retry budget it is then either Issued
	// (a token was available) or Dropped (over budget — the task takes
	// the BudgetDropped disposition instead of parking forever). Without
	// a budget every requested retry is issued, so the conservation
	// equation RetriesIssued + RetriesDropped == RetriesRequested holds
	// exactly either way (audited per run).
	RetriesRequested int
	RetriesIssued    int
	RetriesDropped   int
	// BudgetDropped marks tasks whose retry was refused by the budget.
	// Such a task is dropped — unless a live hedge copy completed it.
	BudgetDropped []bool
	// BreakerOpens/BreakerCloses/BreakerProbes count breaker open
	// episodes, probe-success closes and issued half-open probes;
	// BreakerSpans records each open episode for the auditor.
	BreakerOpens   int
	BreakerCloses  int
	BreakerProbes  int
	BreakerSpans   []resilience.Span
	// ProbeDispatch marks tasks whose completing dispatch was a half-open
	// probe (the only dispatches legal against a non-closed breaker).
	ProbeDispatch []bool
}

// elRun is the engine-side runtime of an elastic config: the active/warming
// slot vectors, the autoscaler's controller, the membership log under
// construction and scratch space for the effective-set walk. It exists only
// when a config is present, so the disabled path touches none of it and stays
// byte-identical to RunGuarded.
type elRun struct {
	cfg      *elastic.Config
	mo       obs.MembershipObserver
	ctrl     *elastic.Controller
	guard    *overload.Estimator
	ownGuard bool // guard not shared with the overload config: engine feeds it

	active  []bool
	warming []bool
	members int
	heating int // machines announced but still warming up
	minM    int
	maxM    int

	primary []int // per-task ring-walk origin (elastic.RingStart, precomputed)
	effBuf  core.ProcSet

	ms *elastic.Membership
}

// RunElastic is the elastic superset of RunGuarded: the same fault-replaying,
// overload-controlled simulation with online membership attached. The
// instance's M is the slot capacity; ecfg (see elastic.Config) starts the run
// on the first Initial slots and grows or shrinks the active set mid-run,
// scripted and/or autoscaled. A nil ecfg is byte-identical to RunGuarded —
// identical schedules and metrics, with nil Membership/Dispatched — asserted
// by TestRunElasticNilConfigEquivalence and alloc-pinned by
// TestRunElasticNilConfigAllocs.
//
// With a config:
//
//   - Machine ids are stable slots 0..M−1. Fault plans, per-server metrics
//     and routers keep their indexing; a plan authored for a smaller cluster
//     is lifted with faults.Plan.Extend.
//   - Every task's processing set is remapped at dispatch time onto the
//     active subring: the first k active machines walking clockwise from the
//     set's ring origin (elastic.Effective — the one routing rule, shared
//     with the auditor). At full membership this is the static set.
//   - Scale-up activates the lowest inactive slot after the warm-up delay;
//     the joiner counts toward committed capacity immediately (so the
//     autoscaler doesn't double-provision) but accepts work only at the join.
//     Joins wake every parked task.
//   - Scale-down drains the highest active slot: its running request
//     finishes in place (non-preemptive execution), its queued requests hand
//     off to surviving members of their effective sets, immediately, in FIFO
//     order. No admitted task is ever lost: a handoff re-enters the normal
//     dispatch path (it may re-queue, park or be deadline-shed, never
//     vanish) — enforced by the audit membership invariants on every chaos
//     churn trial.
//   - The autoscaler (ecfg.Auto) is evaluated once per arrival; its guard is
//     fed by the engine unless it is the same estimator as the overload
//     config's Guard, which the arrival path already feeds.
//
// Deliberate limits: membership moves within [Min, Max] and scale decisions
// clamp rather than fail; draining below a set's replication factor parks
// nothing (the walk just yields fewer machines), but Min should stay ≥ k so
// restricted sets keep their width.
//
// Each call runs in a private Arena; batch callers reuse one arena's
// RunElastic method to amortize the per-run allocations away.
func RunElastic(inst *core.Instance, router Router, plan *faults.Plan, policy RetryPolicy, cfg *overload.Config, ecfg *elastic.Config, probe obs.Probe) (*core.Schedule, *ElasticMetrics, error) {
	return NewArena().RunElastic(inst, router, plan, policy, cfg, ecfg, probe)
}

// RunElastic is the arena variant of the package-level RunElastic. It is
// RunHedged with hedging disabled — the engine lives there; a nil hedge
// config is byte-identical by construction (and property-tested).
func (a *Arena) RunElastic(inst *core.Instance, router Router, plan *faults.Plan, policy RetryPolicy, cfg *overload.Config, ecfg *elastic.Config, probe obs.Probe) (*core.Schedule, *ElasticMetrics, error) {
	return a.RunHedged(inst, router, plan, policy, cfg, ecfg, nil, probe)
}

// RunResilient is the unified engine (see the package-level RunElastic,
// RunHedged and RunResilient for the model). All per-run state lives in the
// arena: repeat calls on one arena reuse every buffer, and the returned
// schedule and metrics point into the arena — valid until its next run.
func (a *Arena) RunResilient(inst *core.Instance, router Router, plan *faults.Plan, policy RetryPolicy, cfg *overload.Config, ecfg *elastic.Config, hcfg *hedge.Config, rcfg *resilience.Config, probe obs.Probe) (*core.Schedule, *ElasticMetrics, error) {
	if err := inst.Validate(); err != nil {
		return nil, nil, fmt.Errorf("sim: %w", err)
	}
	if err := policy.Validate(); err != nil {
		return nil, nil, err
	}
	if plan == nil {
		plan = faults.Empty(inst.M)
	}
	if err := plan.Validate(); err != nil {
		return nil, nil, fmt.Errorf("sim: %w", err)
	}
	if plan.M != inst.M {
		return nil, nil, fmt.Errorf("sim: fault plan for %d servers, instance has %d (faults.Plan.Extend lifts a plan onto more slots)", plan.M, inst.M)
	}
	if err := cfg.Validate(inst.M); err != nil {
		return nil, nil, fmt.Errorf("sim: %w", err)
	}
	if err := ecfg.Validate(inst.M); err != nil {
		return nil, nil, fmt.Errorf("sim: %w", err)
	}
	if err := hcfg.Validate(); err != nil {
		return nil, nil, fmt.Errorf("sim: %w", err)
	}
	if err := rcfg.Validate(); err != nil {
		return nil, nil, fmt.Errorf("sim: %w", err)
	}
	plan = plan.Normalize()
	if r, ok := router.(Resettable); ok {
		r.Reset()
	}

	m := inst.M
	n := inst.N()
	a.Reset(n, m)
	if hcfg != nil {
		// Speculative copies are virtual attempts n..2n−1: grow the
		// attempt-indexed engine state so a copy can occupy a queue and the
		// completion heap alongside its primary. Everything task-indexed
		// (flows, schedule, dispositions) stays at n.
		a.gen = resliceZero(a.gen, 2*n)
		a.curStart = resliceZero(a.curStart, 2*n)
		a.curEnd = resliceZero(a.curEnd, 2*n)
		a.busyAdd = resliceZero(a.busyAdd, 2*n)
		a.fq.next = grow(a.fq.next, 2*n)
	}
	st := &a.st
	fq := &a.fq
	a.sched = core.Schedule{Inst: inst, Machine: a.machine, Start: a.start}
	sched := &a.sched
	a.metrics = ElasticMetrics{
		OverloadMetrics: OverloadMetrics{
			FaultMetrics: FaultMetrics{
				Metrics:  Metrics{Flows: a.flows, Stretches: a.stretches, Busy: a.busy},
				Attempts: a.attempts,
				Dropped:  a.dropped,
				Parked:   a.parkedBits,
				plan:     plan,
				releases: a.releases,
			},
		},
	}
	metrics := &a.metrics
	for i, t := range inst.Tasks {
		a.releases[i] = t.Release
	}

	live := a.live
	// slow holds each server's effective gray-failure segments; nil when the
	// plan has none, so the healthy dispatch arithmetic below is untouched
	// (and all-factor-1 segments were dropped by Normalize above).
	var slow [][]faults.Slowdown
	if len(plan.Slowdowns) > 0 {
		slow = plan.ServerSlowdowns()
	}
	downCount := 0
	gen := a.gen           // attempt generation, invalidates stale completions
	curStart := a.curStart // start of the current attempt
	curEnd := a.curEnd     // end of the current attempt
	busyAdd := a.busyAdd   // busy time credited for the current attempt
	parked := a.parked     // requests waiting for any replica to recover
	completions := &a.completions
	events := &a.events
	completions.Reserve(reserveFor(n))
	events.Reserve(2 * len(plan.Outages))
	for _, o := range plan.Outages {
		events.Push(o.From, faultEvent{kind: evDown, server: o.Server})
		events.Push(o.Until, faultEvent{kind: evUp, server: o.Server})
	}

	// Everything overload-control hangs off ov; ov == nil is the disabled
	// path and must stay byte-identical to RunFaulty (and allocation-free
	// relative to it), so every use below sits behind an ov != nil guard.
	var ov *ovRun
	if cfg != nil {
		cfg.Reset(m)
		ov = &a.ov
		*ov = ovRun{cfg: cfg, cands: a.ov.cands, ejBuf: a.ov.ejBuf}
		a.rejected = resliceZero(a.rejected, n)
		a.shedded = resliceZero(a.shedded, n)
		a.reason = resliceZero(a.reason, n)
		metrics.Rejected = a.rejected
		metrics.Shed = a.shedded
		metrics.Reason = a.reason
		ov.view = overload.View{M: m, Completion: st.Completion, QueueLen: st.QueueLen, Live: live}
		if cfg.Ejector != nil {
			ov.view.Ejected = cfg.Ejector.EjectedVec()
			if cap(ov.ejBuf) < m {
				ov.ejBuf = make(core.ProcSet, 0, m)
			}
		}
		if b, ok := cfg.Admission.(overload.Budgeted); ok {
			ov.budget = b.Budget()
		}
		ov.op, _ = probe.(obs.OverloadObserver)
		if cfg.Shedder.Enabled() {
			if ov.cands == nil {
				ov.cands = make([]overload.Candidate, 0, 16)
			}
			ov.cands = ov.cands[:0]
			// One concatenation per run instead of one per trim.
			ov.shedReason = cfg.Shedder.Policy.Reason()
		}
	}

	// Everything elastic hangs off el, with the same discipline as ov: every
	// use below sits behind an el != nil guard so the disabled path is
	// byte-identical to RunGuarded.
	var el *elRun
	if ecfg != nil {
		el = &a.el
		*el = elRun{
			cfg:     ecfg,
			active:  resliceZero(a.el.active, m),
			warming: resliceZero(a.el.warming, m),
			primary: grow(a.el.primary, n),
			effBuf:  a.el.effBuf,
		}
		if cap(el.effBuf) < m {
			el.effBuf = make(core.ProcSet, 0, m)
		}
		el.members = ecfg.InitialMembers(m)
		for j := 0; j < el.members; j++ {
			el.active[j] = true
		}
		el.minM, el.maxM = ecfg.MinMembers(), ecfg.MaxMembers(m)
		for i, t := range inst.Tasks {
			el.primary[i] = elastic.RingStart(t.Set, m)
		}
		a.membership = elastic.Membership{Capacity: m, Initial: el.members, Changes: a.membership.Changes[:0]}
		el.ms = &a.membership
		el.mo, _ = probe.(obs.MembershipObserver)
		if a.ctrl.Reset(ecfg, m) {
			el.ctrl = &a.ctrl
		} else {
			el.ctrl = nil
		}
		if ecfg.Auto != nil {
			el.guard = ecfg.Auto.Guard
			el.ownGuard = cfg == nil || cfg.Guard != el.guard
			if el.ownGuard {
				el.guard.Reset()
			}
		}
		for _, ev := range ecfg.Script {
			events.Push(ev.At, faultEvent{kind: evScale, task: ev.Delta})
		}
		a.dispatched = grow(a.dispatched, n)
		for i := range a.dispatched {
			a.dispatched[i] = core.Time(math.NaN())
		}
		metrics.Membership = el.ms
		metrics.Dispatched = a.dispatched
	}

	// Everything hedging hangs off hd, with the same discipline as ov and
	// el: every use below sits behind an hd != nil guard (including the
	// closure assignments — they allocate), so the disabled path is
	// byte-identical to RunElastic and allocation-free relative to it.
	var hd *hdRun
	if hcfg != nil {
		hd = &a.hd
		*hd = hdRun{
			cfg:        hcfg,
			minSamples: hcfg.MinSamplesOrDefault(),
			done:       resliceZero(a.hd.done, n),
			hedged:     resliceZero(a.hd.hedged, n),
			copyLive:   resliceZero(a.hd.copyLive, n),
			priIn:      resliceZero(a.hd.priIn, n),
			priDropped: resliceZero(a.hd.priDropped, n),
			priRevoked: resliceZero(a.hd.priRevoked, n),
			wonByCopy:  resliceZero(a.hd.wonByCopy, n),
			copySrv:    grow(a.hd.copySrv, n),
			copyAt:     grow(a.hd.copyAt, n),
			effBuf:     a.hd.effBuf,
			kills:      a.hd.kills[:0],
		}
		for i := range hd.copySrv {
			hd.copySrv[i] = -1
		}
		for i := range hd.copyAt {
			hd.copyAt[i] = core.Time(math.NaN())
		}
		if cap(hd.effBuf) < m {
			hd.effBuf = make(core.ProcSet, 0, m)
		}
		if hcfg.Quantile > 0 && !hcfg.Tied {
			hd.hist = obs.NewHistogram()
		}
		hd.ho, _ = probe.(obs.HedgeObserver)
		metrics.Hedged = hd.hedged
		metrics.HedgeCopyServer = hd.copySrv
		metrics.HedgeCopyAt = hd.copyAt
		metrics.HedgeWonByCopy = hd.wonByCopy
	}

	// Everything resilience hangs off rs, with the same discipline as ov,
	// el and hd: every use below sits behind an rs != nil guard, so the
	// disabled path is byte-identical to RunHedged and allocation-free
	// relative to it. No closures are assigned here — all resilience work
	// is straight-line code inside the existing ones.
	var rs *rsRun
	if rcfg != nil {
		rs = &a.rs
		// The composite literal wipes a.rs, so every recycled buffer is
		// carried through it (the conditional ones at length 0, resliced to
		// size below only when their mechanism is on).
		*rs = rsRun{
			cfg:     rcfg,
			bdrop:   resliceZero(a.rs.bdrop, n),
			prev:    a.rs.prev[:0],
			probe:   a.rs.probe[:0],
			curSpan: a.rs.curSpan[:0],
			spans:   a.rs.spans[:0],
			brkBuf:  a.rs.brkBuf,
		}
		rs.ro, _ = probe.(obs.ResilienceObserver)
		if rcfg.RetryBudget > 0 {
			rs.budgetOn = true
			rs.budget.Reset(rcfg.RetryBudget, rcfg.BudgetBurstOrDefault())
		}
		if rcfg.Jitter == resilience.JitterDecorrelated {
			rs.prev = resliceZero(rs.prev, n)
		}
		metrics.BudgetDropped = rs.bdrop
		if rcfg.Breaker != nil {
			rs.brk = &a.breakers
			rs.brk.Reset(rcfg.Breaker, m)
			rs.probe = resliceZero(rs.probe, n)
			rs.curSpan = resliceZero(rs.curSpan, m)
			metrics.ProbeDispatch = rs.probe
			if cap(rs.brkBuf) < m {
				rs.brkBuf = make(core.ProcSet, 0, m)
			}
			if el == nil {
				// Breaker legality is audited against dispatch instants, so
				// record them even without an elastic config (which fills
				// this same arena vector itself).
				a.dispatched = grow(a.dispatched, n)
				for i := range a.dispatched {
					a.dispatched[i] = core.Time(math.NaN())
				}
				metrics.Dispatched = a.dispatched
			}
			rs.disp = a.dispatched
		}
	}

	// Hedge helpers, assigned only on hedged runs (closure values allocate;
	// the nil-config path must not). Declared up front so drain and dispatch
	// can call them; every call site sits behind an hd != nil guard.
	var (
		hedgeIssue     func(id int, now core.Time) error
		hedgeThreshold func() core.Time
		killCopy       func(rid int, now core.Time)
		copyGone       func(rid int, now core.Time)
		tiedResolve    func(id int, when core.Time)
	)

	drain := func(upTo core.Time) {
		for completions.Len() > 0 {
			when, c := completions.Peek()
			if when > upTo {
				return
			}
			if rs != nil && events.Len() > 0 {
				// A completion in this drain may have armed a breaker
				// event due before the next completion — a close waking
				// parked work at its own instant, an open's cooldown
				// expiry. Yield so the caller's event loop interleaves it
				// in time order; a same-instant completion still settles
				// first (strict <).
				if te, _ := events.Peek(); te < when {
					return
				}
			}
			completions.Pop()
			if c.gen != gen[c.task] {
				continue // stale: that attempt was aborted
			}
			if hd != nil {
				rid := c.task
				if rid >= n {
					rid -= n
				}
				if hd.done[rid] || metrics.Dropped[rid] || (ov != nil && metrics.Shed[rid]) {
					// A losing attempt ran to completion: silently reclaim
					// its queue slot. All of its busy time was duplicate
					// work; no OnComplete fires and the ejector sees nothing
					// — the task completed earlier, exactly once (or was
					// excluded, and this un-cancellable attempt just drained).
					st.QueueLen[c.server]--
					if fq.head[c.server] == c.task {
						fq.popHead(c.server)
					} else {
						fq.remove(c.server, c.task)
					}
					metrics.DuplicateWork += busyAdd[c.task]
					if c.task >= n {
						hd.copyLive[rid] = false
					}
					continue
				}
				hd.done[rid] = true
				if when > hd.maxEnd {
					hd.maxEnd = when
				}
				if hd.hist != nil {
					hd.hist.Observe(float64(when - inst.Tasks[rid].Release))
				}
				if c.task >= n {
					// The speculative copy finished first: it is the
					// effective completion. Record it as the task's schedule
					// entry, then cancel (or abandon) the primary attempt.
					t := inst.Tasks[rid]
					pj := a.machine[rid] // primary's server, before the winner overwrites it
					if probe != nil {
						probe.OnComplete(rid, c.server, t.Release, t.Proc, when)
					}
					st.QueueLen[c.server]--
					if fq.head[c.server] == c.task {
						fq.popHead(c.server)
					} else {
						fq.remove(c.server, c.task)
					}
					hd.copyLive[rid] = false
					hd.wonByCopy[rid] = true
					metrics.HedgeWinsCopy++
					metrics.Flows[rid] = when - t.Release
					metrics.Stretches[rid] = stretchOf(when-t.Release, t.Proc)
					sched.Assign(rid, c.server, curStart[c.task])
					if el != nil {
						metrics.Dispatched[rid] = hd.copyAt[rid]
					} else if rs != nil && rs.disp != nil {
						rs.disp[rid] = hd.copyAt[rid]
					}
					if hd.priIn[rid] {
						started := curStart[rid] < when
						a.cancelAttempt(inst, slow, rid, pj, when, hd.cfg.CancelRunning)
						hd.priIn[rid] = false
						if rs != nil && rs.brk != nil && rs.probe[rid] {
							// The cancelled primary was a half-open probe:
							// refund its slot, it resolves without an outcome.
							// The freed slot is admissible capacity — wake
							// parked work via a same-instant breaker event.
							rs.brk.AbortProbe(pj)
							rs.probe[rid] = false
							events.Push(when, faultEvent{kind: evBreaker, server: pj})
						}
						if hd.ho != nil {
							hd.ho.OnHedgeCancel(rid, pj, when, started)
						}
					}
					if ov != nil && ov.cfg.Ejector != nil {
						if proc := t.Proc; proc > 0 {
							factor := float64((when - curStart[c.task]) / proc)
							if ov.cfg.Ejector.Observe(c.server, factor, when) {
								metrics.Ejections++
								if ov.op != nil {
									ov.op.OnEject(c.server, when)
								}
							}
						}
					}
					if rs != nil && rs.brk != nil {
						// A copy is never a probe (it goes only to closed
						// breakers), so its completion feeds the window.
						if rs.brk.Observe(c.server, rs.failed(inst, rid, curStart[c.task], when), when) {
							rs.opened(c.server, when, metrics, events)
						}
					}
					if hd.ho != nil {
						hd.ho.OnHedgeWin(rid, c.server, true, when)
					}
					continue
				}
				// The primary finished first: first-win cancels the copy.
				hd.priIn[rid] = false
				if hd.copyLive[rid] {
					killCopy(rid, when)
				}
				if hd.hedged[rid] {
					metrics.HedgeWinsPrimary++
					if hd.ho != nil {
						hd.ho.OnHedgeWin(rid, c.server, false, when)
					}
				}
			}
			if probe != nil {
				t := inst.Tasks[c.task]
				probe.OnComplete(c.task, c.server, t.Release, t.Proc, when)
			}
			st.QueueLen[c.server]--
			if fq.head[c.server] == c.task {
				fq.popHead(c.server)
			} else { // defensive; FIFO service should make this unreachable
				fq.remove(c.server, c.task)
			}
			if ov != nil && ov.cfg.Ejector != nil {
				if proc := inst.Tasks[c.task].Proc; proc > 0 {
					factor := float64((when - curStart[c.task]) / proc)
					if ov.cfg.Ejector.Observe(c.server, factor, when) {
						metrics.Ejections++
						if ov.op != nil {
							ov.op.OnEject(c.server, when)
						}
					}
				}
			}
			if rs != nil && rs.brk != nil {
				// An effective completion feeds the server's breaker: on time
				// is a success, SlowFactor-late is a failure (how a gray-slow
				// server trips without ever crashing). A completing probe
				// settles the half-open state instead; its probe mark stays
				// set — that is the ProbeDispatch metric the auditor reads.
				f := rs.failed(inst, c.task, curStart[c.task], when)
				if rs.probe[c.task] {
					closedNow, openedNow := rs.brk.ObserveProbe(c.server, f, when)
					if closedNow {
						rs.closed(c.server, when, metrics, events)
					}
					if openedNow {
						rs.opened(c.server, when, metrics, events)
					}
				} else if rs.brk.Observe(c.server, f, when) {
					rs.opened(c.server, when, metrics, events)
				}
			}
		}
	}

	drop := func(id int, now core.Time) {
		metrics.Dropped[id] = true
		metrics.Flows[id] = now - inst.Tasks[id].Release
		metrics.Stretches[id] = stretchOf(metrics.Flows[id], inst.Tasks[id].Proc)
		sched.Assign(id, -1, math.NaN())
		if probe != nil {
			probe.OnDrop(id, inst.Tasks[id].Release, now)
		}
	}

	// shed records the overload disposition of request id abandoned at now;
	// queue surgery (for watermark trims) happens at the call sites.
	shed := func(id, server int, now core.Time, reason string) {
		metrics.Shed[id] = true
		metrics.Reason[id] = reason
		metrics.Flows[id] = now - inst.Tasks[id].Release
		metrics.Stretches[id] = stretchOf(metrics.Flows[id], inst.Tasks[id].Proc)
		sched.Assign(id, -1, math.NaN())
		if ov.op != nil {
			ov.op.OnShed(id, server, inst.Tasks[id].Release, now, reason)
		}
	}

	reject := func(id int, now core.Time, reason string) {
		metrics.Rejected[id] = true
		metrics.Reason[id] = reason
		sched.Assign(id, -1, math.NaN())
		if ov.op != nil {
			ov.op.OnReject(id, now, reason)
		}
	}

	// liveBuf is reused across dispatches: the live view handed to the
	// router is only read within the Pick call, never retained.
	liveSubset := func(set core.ProcSet) core.ProcSet {
		out := a.liveBuf[:0]
		if set == nil {
			for j := 0; j < m; j++ {
				if live[j] {
					out = append(out, j)
				}
			}
		} else {
			for _, j := range set {
				if live[j] {
					out = append(out, j)
				}
			}
		}
		return out
	}

	// dispatch routes request id at instant now (its release, a failover
	// instant, a recovery instant, or a drain handoff). The arithmetic
	// mirrors Run exactly so an empty plan reproduces it bit for bit.
	dispatch := func(id int, now core.Time) error {
		if hd != nil && hd.done[id] {
			// Already completed by its hedge copy: a retry, wake or handoff
			// racing the win resolves to a no-op (never a second completion).
			return nil
		}
		task := inst.Tasks[id]
		view := task
		if el != nil {
			// Remap the static set onto the active subring. With at least one
			// active member (members ≥ minM ≥ 1) the walk always yields a
			// non-empty set, so parking here is defensive only; crashed
			// machines are filtered below, exactly as in the static engine.
			k := len(task.Set)
			if task.Set == nil {
				k = el.members
			} else if k == 0 {
				return fmt.Errorf("sim: task %d has an empty processing set: no eligible server", id)
			}
			eff := elastic.Effective(el.active, el.primary[id], k, el.effBuf)
			el.effBuf = eff
			if len(eff) == 0 {
				if hd != nil {
					hd.priIn[id] = false
				}
				metrics.Parked[id] = true
				parked = append(parked, id)
				return nil
			}
			view.Set = eff
		}
		ejecting := false
		if ov != nil && ov.cfg.Ejector != nil {
			ov.cfg.Ejector.Readmit(now, func(j int) {
				metrics.Readmissions++
				if ov.op != nil {
					ov.op.OnReadmit(j, now)
				}
			})
			ejecting = ov.cfg.Ejector.NumEjected() > 0
		}
		if downCount > 0 || ejecting {
			eff := liveSubset(view.Set)
			if len(eff) == 0 {
				if hd != nil {
					hd.priIn[id] = false
				}
				metrics.Parked[id] = true
				parked = append(parked, id)
				return nil
			}
			if ejecting {
				// Prefer non-ejected live replicas; if the whole live set is
				// ejected, fall back to it — ejection is advisory and never
				// parks work on its own.
				keep := ov.ejBuf[:0]
				for _, j := range eff {
					if !ov.view.Ejected[j] {
						keep = append(keep, j)
					}
				}
				if len(keep) > 0 {
					eff = keep
				}
			}
			view.Set = eff
		}
		if rs != nil && rs.brk != nil {
			// Failover routing consults the breakers: open servers leave the
			// candidate set, half-open ones stay only while a probe slot is
			// free. Unlike ejection this is mandatory, so a task whose whole
			// set is breaker-blocked parks — it wakes at the next breaker
			// transition (every open arms a cooldown event and every close
			// pushes one), never livelocks.
			out := rs.brkBuf[:0]
			if view.Set == nil {
				for j := 0; j < m; j++ {
					if live[j] && rs.brk.Allow(j) {
						out = append(out, j)
					}
				}
			} else {
				for _, j := range view.Set {
					if rs.brk.Allow(j) {
						out = append(out, j)
					}
				}
			}
			if len(out) == 0 {
				if hd != nil {
					hd.priIn[id] = false
				}
				metrics.Parked[id] = true
				parked = append(parked, id)
				return nil
			}
			view.Set = out
		}
		view.Release = now // failover re-dispatches cannot start before now
		j := router.Pick(st, view)
		if j < 0 || j >= m || !view.Eligible(j) {
			return fmt.Errorf("sim: router %s picked invalid server M%d for task %d (live set %v)",
				router.Name(), j+1, id, view.Set)
		}
		if !live[j] {
			return fmt.Errorf("sim: router %s picked dead server M%d for task %d at t=%v",
				router.Name(), j+1, id, now)
		}
		start := st.Completion[j]
		if now > start {
			start = now
		}
		end := start + task.Proc
		busy := task.Proc
		if slow != nil && len(slow[j]) > 0 {
			// Gray failure: work on j advances at rate 1/Factor inside its
			// slowdown segments, so the attempt occupies [start, end) with
			// end from the piecewise integration, and all of it is busy time.
			end = faults.FinishTime(slow[j], start, task.Proc)
			busy = end - start
		}
		if ov != nil && ov.budget > 0 && end-task.Release > ov.budget+task.Proc {
			// Deadline enforcement: this attempt would already blow the
			// admitted-task budget, so completing it is pointless — shed
			// before committing any server time.
			if hd != nil {
				hd.priIn[id] = false
				if hd.copyLive[id] {
					killCopy(id, now)
				}
			}
			shed(id, j, now, overload.ReasonDeadline)
			return nil
		}
		metrics.Attempts[id]++
		if el != nil {
			metrics.Dispatched[id] = now
		} else if rs != nil && rs.disp != nil {
			rs.disp[id] = now
		}
		if rs != nil {
			if rs.budgetOn && metrics.Attempts[id] == 1 {
				rs.budget.Refill()
			}
			if rs.brk != nil {
				if rs.brk.State(j) == resilience.HalfOpen {
					// Every half-open dispatch is a probe (Allow admitted it
					// into a probe slot above).
					rs.brk.StartProbe(j)
					rs.probe[id] = true
					metrics.BreakerProbes++
					if rs.ro != nil {
						rs.ro.OnBreakerProbe(j, id, now)
					}
				} else if rs.probe[id] {
					rs.probe[id] = false // defensive: a fresh attempt is not a probe
				}
			}
		}
		st.Completion[j] = end
		st.QueueLen[j]++
		completions.Push(end, compEvent{server: j, task: id, gen: gen[id]})
		fq.push(j, id)
		curStart[id], curEnd[id] = start, end
		busyAdd[id] = busy
		sched.Assign(id, j, start)
		metrics.Flows[id] = end - task.Release
		metrics.Stretches[id] = stretchOf(end-task.Release, task.Proc)
		metrics.Busy[j] += busy
		if probe != nil {
			probe.OnDispatch(id, j, now, start, end)
		}
		if hd != nil {
			hd.priIn[id] = true
			if metrics.Attempts[id] == 1 {
				// Arm the hedge on the first attempt only: tied mode enqueues
				// the pair up front and revokes the loser at service start;
				// otherwise the trigger fires once the attempt's age crosses
				// the threshold (a fixed delay, or the live flow quantile).
				if hd.cfg.Tied {
					if err := hedgeIssue(id, now); err != nil {
						return err
					}
					if hd.copyLive[id] {
						at := curStart[id]
						if cs := curStart[n+id]; cs < at {
							at = cs
						}
						a.armTaskEvent(evTied, id, at)
					}
				} else if thr := hedgeThreshold(); thr >= 0 {
					a.armTaskEvent(evHedge, id, now+thr)
				}
			}
		}
		return nil
	}

	// requeue decides the fate of request id aborted at instant now: the
	// policy's attempt cap and timeout first, then (on resilient runs) the
	// jittered delay and the retry-budget gate. A retry that survives the
	// policy checks is Requested; the budget then either Issues it or Drops
	// it with the BudgetDropped disposition — the conservation equation
	// RetriesIssued + RetriesDropped == RetriesRequested is exact.
	requeue := func(id int, now core.Time) {
		if policy.MaxAttempts > 0 && metrics.Attempts[id] >= policy.MaxAttempts {
			if hd != nil && hd.copyLive[id] {
				// The copy is still in flight and may yet complete the task:
				// defer the drop until the copy resolves (copyGone).
				hd.priDropped[id] = true
				return
			}
			drop(id, now)
			return
		}
		d := policy.delay(metrics.Attempts[id])
		if rs != nil && rs.cfg.Jitter != resilience.JitterNone {
			var prev core.Time
			if len(rs.prev) > 0 { // decorrelated mode tracks the previous draw
				prev = rs.prev[id]
			}
			d = resilience.Jitter(rs.cfg.Jitter, rs.cfg.Seed, id, metrics.Attempts[id], d, policy.Backoff, prev)
			if len(rs.prev) > 0 {
				rs.prev[id] = d
			}
		}
		next := now + d
		if policy.Timeout > 0 && next-inst.Tasks[id].Release > policy.Timeout {
			if hd != nil && hd.copyLive[id] {
				hd.priDropped[id] = true
				return
			}
			drop(id, now)
			return
		}
		if rs != nil {
			metrics.RetriesRequested++
			if rs.budgetOn && !rs.budget.Take() {
				metrics.RetriesDropped++
				rs.bdrop[id] = true
				if rs.ro != nil {
					rs.ro.OnRetryBudgetDrop(id, metrics.Attempts[id], now)
				}
				if hd != nil && hd.copyLive[id] {
					// Dropped unless its live hedge copy completes it.
					hd.priDropped[id] = true
					return
				}
				drop(id, now)
				return
			}
			metrics.RetriesIssued++
		}
		events.Push(next, faultEvent{kind: evRetry, task: id})
		if probe != nil {
			probe.OnRetry(id, metrics.Attempts[id], now)
		}
	}

	if hd != nil {
		// hedgeThreshold returns the trigger age for a fresh dispatch, or −1
		// when no trigger is armable yet (quantile trigger still warming up
		// with no fixed delay backing it).
		hedgeThreshold = func() core.Time {
			if hd.hist != nil && hd.hist.Count() >= hd.minSamples {
				return core.Time(hd.hist.Quantile(hd.cfg.Quantile))
			}
			if hd.cfg.Delay > 0 {
				return hd.cfg.Delay
			}
			return -1
		}
		// copyGone resolves the primary's deferred fate once its copy is gone:
		// a drop decision postponed while the copy was live, or a tied-mode
		// revocation that left the copy as the sole attempt. Callers settle
		// the copy's own bookkeeping (copyLive, HedgesCancelled, OnHedgeCancel)
		// before calling.
		copyGone = func(rid int, now core.Time) {
			if hd.priDropped[rid] {
				hd.priDropped[rid] = false
				drop(rid, now)
				return
			}
			if hd.priRevoked[rid] {
				hd.priRevoked[rid] = false
				requeue(rid, now)
			}
		}
		// killCopy cancels task rid's live copy at instant now (first-win, or
		// an exclusion decision on the primary). A started copy without
		// cancel-mid-service cannot be removed and runs to completion as
		// duplicate work; either way the attempt resolves as cancelled.
		killCopy = func(rid int, now core.Time) {
			cs := hd.copySrv[rid]
			cid := n + rid
			started := curStart[cid] < now
			if a.cancelAttempt(inst, slow, cid, cs, now, hd.cfg.CancelRunning) {
				hd.copyLive[rid] = false
			}
			metrics.HedgesCancelled++
			if hd.ho != nil {
				hd.ho.OnHedgeCancel(rid, cs, now, started)
			}
		}
		// hedgeIssue dispatches a speculative copy of task id to the best
		// *other* eligible server. It declines silently (no copy, no error)
		// when the task is settled or excluded, the hedge cap is reached, the
		// copy would blow the admission budget, or no alternate server exists
		// — a routing violation is a real error, exactly as in dispatch.
		hedgeIssue = func(id int, now core.Time) error {
			if hd.done[id] || hd.hedged[id] || metrics.Dropped[id] || metrics.Parked[id] {
				return nil
			}
			if ov != nil && (metrics.Rejected[id] || metrics.Shed[id]) {
				return nil
			}
			if hd.cfg.MaxHedges > 0 && metrics.HedgesIssued >= hd.cfg.MaxHedges {
				return nil
			}
			task := inst.Tasks[id]
			view := task
			set := task.Set
			if el != nil {
				// Remap onto the active subring, exactly as dispatch does.
				k := len(set)
				if set == nil {
					k = el.members
				}
				set = elastic.Effective(el.active, el.primary[id], k, hd.effBuf)
				hd.effBuf = set
			}
			ejecting := false
			if ov != nil && ov.cfg.Ejector != nil {
				ejecting = ov.cfg.Ejector.NumEjected() > 0
			}
			pj := -1
			if hd.priIn[id] {
				pj = a.machine[id]
			}
			// Candidates: the (effective) set minus the primary's server, the
			// dead, and (on resilient runs) servers whose breaker is not
			// closed — a speculative copy is never spent as a half-open
			// probe. When set aliases hd.effBuf the filter runs in place.
			cands := hd.effBuf[:0]
			if set == nil {
				for j := 0; j < m; j++ {
					if j != pj && live[j] && (rs == nil || rs.brk == nil || rs.brk.State(j) == resilience.Closed) {
						cands = append(cands, j)
					}
				}
			} else {
				for _, j := range set {
					if j != pj && live[j] && (rs == nil || rs.brk == nil || rs.brk.State(j) == resilience.Closed) {
						cands = append(cands, j)
					}
				}
			}
			hd.effBuf = cands
			if ejecting {
				// Prefer non-ejected candidates, with the same advisory
				// fallback as dispatch.
				keep := ov.ejBuf[:0]
				for _, j := range cands {
					if !ov.view.Ejected[j] {
						keep = append(keep, j)
					}
				}
				if len(keep) > 0 {
					cands = keep
				}
			}
			if len(cands) == 0 {
				return nil // no alternate server exists: skip the hedge
			}
			view.Set = cands
			view.Release = now
			j := router.Pick(st, view)
			if j < 0 || j >= m || !view.Eligible(j) {
				return fmt.Errorf("sim: router %s picked invalid server M%d for hedge copy of task %d (live set %v)",
					router.Name(), j+1, id, view.Set)
			}
			if !live[j] {
				return fmt.Errorf("sim: router %s picked dead server M%d for hedge copy of task %d at t=%v",
					router.Name(), j+1, id, now)
			}
			start := st.Completion[j]
			if now > start {
				start = now
			}
			end := start + task.Proc
			busy := task.Proc
			if slow != nil && len(slow[j]) > 0 {
				end = faults.FinishTime(slow[j], start, task.Proc)
				busy = end - start
			}
			if ov != nil && ov.budget > 0 && end-task.Release > ov.budget+task.Proc {
				return nil // the copy could not beat the admitted budget either
			}
			cid := n + id
			gen[cid]++
			st.Completion[j] = end
			st.QueueLen[j]++
			completions.Push(end, compEvent{server: j, task: cid, gen: gen[cid]})
			fq.push(j, cid)
			curStart[cid], curEnd[cid] = start, end
			busyAdd[cid] = busy
			metrics.Busy[j] += busy
			hd.hedged[id] = true
			hd.copyLive[id] = true
			hd.copySrv[id] = j
			hd.copyAt[id] = now
			metrics.HedgesIssued++
			if hd.ho != nil {
				hd.ho.OnHedge(id, pj, j, now, start, end)
			}
			return nil
		}
		// tiedResolve revokes the losing half of a tied pair the moment the
		// first attempt reaches service (start ties favor the primary). If
		// queue churn pushed both starts out it re-arms; a loser that already
		// started without cancel-mid-service cannot be revoked, and the pair
		// degenerates to plain first-win.
		tiedResolve = func(id int, when core.Time) {
			if hd.done[id] || !hd.copyLive[id] || !hd.priIn[id] {
				return
			}
			cid := n + id
			s1, s2 := curStart[id], curStart[cid]
			first := s1
			if s2 < first {
				first = s2
			}
			if first > when {
				a.armTaskEvent(evTied, id, first)
				return
			}
			if s1 <= s2 {
				// The primary reaches service first: revoke the copy.
				cs := hd.copySrv[id]
				started := curStart[cid] < when
				if a.cancelAttempt(inst, slow, cid, cs, when, hd.cfg.CancelRunning) {
					hd.copyLive[id] = false
					metrics.HedgesRevoked++
					if hd.ho != nil {
						hd.ho.OnHedgeCancel(id, cs, when, started)
					}
				}
				return
			}
			// The copy reaches service first: revoke the primary and leave
			// the copy as the sole attempt (it resolves as HedgeWinsCopy, or
			// HedgesCancelled if it dies — HedgesRevoked counts only revoked
			// copies, so the resolution equation stays exact). priRevoked
			// re-enters the task through the retry path if the copy dies.
			pj := a.machine[id]
			started := curStart[id] < when
			if a.cancelAttempt(inst, slow, id, pj, when, hd.cfg.CancelRunning) {
				hd.priIn[id] = false
				hd.priRevoked[id] = true
				if rs != nil && rs.brk != nil && rs.probe[id] {
					// The revoked primary was a half-open probe: refund,
					// and wake parked work — the slot is free again.
					rs.brk.AbortProbe(pj)
					rs.probe[id] = false
					events.Push(when, faultEvent{kind: evBreaker, server: pj})
				}
				if hd.ho != nil {
					hd.ho.OnHedgeCancel(id, pj, when, started)
				}
			}
		}
	}

	fail := func(j int, now core.Time) {
		live[j] = false
		downCount++
		lost := 0
		for id := fq.head[j]; id >= 0; id = fq.next[id] {
			lost++
		}
		head := fq.takeAll(j)
		st.QueueLen[j] -= lost
		st.Completion[j] = now
		if probe != nil {
			probe.OnFailover(j, now, lost)
		}
		for id := head; id >= 0; {
			nxt := fq.next[id] // before requeue: a re-dispatch relinks id
			gen[id]++          // invalidate the queued completion
			executed := core.Time(0)
			if curStart[id] < now {
				executed = now - curStart[id] // the running request's wasted partial work
			}
			metrics.Busy[j] -= busyAdd[id] - executed
			if rs != nil && rs.brk != nil {
				// Every attempt lost to the crash is a failure outcome. A
				// lost half-open probe reports through ObserveProbe (a probe
				// failure re-opens the breaker).
				if id < n && rs.probe[id] {
					_, openedNow := rs.brk.ObserveProbe(j, true, now)
					rs.probe[id] = false
					if openedNow {
						rs.opened(j, now, metrics, events)
					}
				} else if rs.brk.Observe(j, true, now) {
					rs.opened(j, now, metrics, events)
				}
			}
			if hd != nil {
				if id >= n {
					// A crashed speculative copy: its executed part is burned
					// duplicate work; a copy is never retried. Resolve the
					// primary's deferred fate if the copy was its last hope.
					rid := id - n
					metrics.DuplicateWork += executed
					hd.copyLive[rid] = false
					if !hd.done[rid] {
						metrics.HedgesCancelled++
						if hd.ho != nil {
							hd.ho.OnHedgeCancel(rid, j, now, curStart[id] < now)
						}
						copyGone(rid, now)
					}
					id = nxt
					continue
				}
				if hd.done[id] {
					// A losing primary killed by the crash: the task already
					// completed elsewhere, nothing to retry.
					metrics.DuplicateWork += executed
					id = nxt
					continue
				}
				hd.priIn[id] = false
			}
			requeue(id, now)
			id = nxt
		}
	}

	// wakeAll re-dispatches every parked task (membership changes remap
	// effective sets, so the static per-machine eligibility filter would wake
	// too few; dispatch re-parks the still-unservable ones). The parked and
	// wake buffers ping-pong: re-parks during the walk land in the other
	// backing array, so nothing is overwritten mid-iteration.
	wakeAll := func(now core.Time) error {
		wake := parked
		parked = a.wake[:0]
		a.wake = wake[:0] // recycled once the walk below has consumed it
		// Re-anchor a.parked immediately: a breaker-closing final drain runs
		// wakeAll after the loop-exit a.parked assignment, and leaving the
		// swap unrecorded would hand the NEXT run a.parked and a.wake on the
		// same backing array — restore would then build its still/wake lists
		// aliased, waking tasks that are already queued.
		a.parked = parked
		for _, id := range wake {
			if hd != nil && hd.done[id] {
				continue // completed by its copy while parked
			}
			if policy.Timeout > 0 && now-inst.Tasks[id].Release > policy.Timeout {
				if hd != nil && hd.copyLive[id] {
					hd.priDropped[id] = true
					continue
				}
				drop(id, now)
				continue
			}
			if err := dispatch(id, now); err != nil {
				return err
			}
		}
		return nil
	}

	restore := func(j int, now core.Time) error {
		live[j] = true
		downCount--
		if el != nil {
			return wakeAll(now)
		}
		still := parked[:0]
		wake := a.wake[:0]
		for _, id := range parked {
			if inst.Tasks[id].Eligible(j) {
				wake = append(wake, id)
			} else {
				still = append(still, id)
			}
		}
		parked = still
		a.wake = wake // keep (possibly re-grown) backing for the next restore
		for _, id := range wake {
			if hd != nil && hd.done[id] {
				continue // completed by its copy while parked
			}
			if policy.Timeout > 0 && now-inst.Tasks[id].Release > policy.Timeout {
				if hd != nil && hd.copyLive[id] {
					hd.priDropped[id] = true
					continue
				}
				drop(id, now)
				continue
			}
			if err := dispatch(id, now); err != nil {
				return err
			}
		}
		return nil
	}

	// scaleUp commits to activating d machines at instant now: each picks the
	// lowest slot that is neither active nor warming, counts toward committed
	// capacity immediately, and joins (accepts work) WarmUp later.
	scaleUp := func(d int, now core.Time) {
		for ; d > 0; d-- {
			if el.members+el.heating >= el.maxM {
				return
			}
			slot := -1
			for j := 0; j < m; j++ {
				if !el.active[j] && !el.warming[j] {
					slot = j
					break
				}
			}
			if slot < 0 {
				return
			}
			el.warming[slot] = true
			el.heating++
			ready := now + el.cfg.WarmUp
			metrics.ScaleUps++
			metrics.WarmUpTime += el.cfg.WarmUp
			events.Push(ready, faultEvent{kind: evJoin, server: slot})
			if el.mo != nil {
				el.mo.OnScaleUp(slot, now, ready)
			}
		}
	}

	// join activates a warmed-up machine and wakes parked work.
	join := func(j int, now core.Time) error {
		if el == nil || !el.warming[j] {
			return nil
		}
		el.warming[j] = false
		el.heating--
		el.active[j] = true
		el.members++
		el.ms.Changes = append(el.ms.Changes, elastic.Change{At: now, Machine: j, Join: true, Members: el.members})
		if el.mo != nil {
			el.mo.OnJoin(j, now, el.members)
		}
		return wakeAll(now)
	}

	// scaleDown drains d machines at instant now, highest active slot first:
	// the running head (curStart ≤ now) finishes in place, every queued task
	// hands off through the normal dispatch path — re-queued on a survivor,
	// parked, or deadline-shed, but never lost (the audit membership
	// invariants check this on every churn trial).
	scaleDown := func(d int, now core.Time) error {
		for ; d > 0; d-- {
			if el.members <= el.minM {
				return nil
			}
			victim := -1
			for j := m - 1; j >= 0; j-- {
				if el.active[j] {
					victim = j
					break
				}
			}
			if victim < 0 {
				return nil
			}
			// Detach the moved suffix: the running head (if any) stays as the
			// victim's whole queue, everything behind it hands off.
			var movedHead int
			if q0 := fq.head[victim]; q0 >= 0 && curStart[q0] <= now {
				movedHead = fq.next[q0]
				fq.next[q0] = -1
				fq.tail[victim] = q0
				st.Completion[victim] = curEnd[q0]
			} else {
				movedHead = fq.takeAll(victim)
				st.Completion[victim] = now
			}
			moved := 0  // detached queue entries (speculative copies included)
			handed := 0 // real tasks that will hand off through dispatch
			for id := movedHead; id >= 0; id = fq.next[id] {
				moved++
				if hd == nil || (id < n && !hd.done[id]) {
					handed++
				}
			}
			st.QueueLen[victim] -= moved
			el.active[victim] = false
			el.members--
			metrics.ScaleDowns++
			el.ms.Changes = append(el.ms.Changes, elastic.Change{At: now, Machine: victim, Join: false, Members: el.members})
			if el.mo != nil {
				el.mo.OnScaleDown(victim, now, el.members, handed)
			}
			for id := movedHead; id >= 0; {
				nxt := fq.next[id] // before dispatch: a re-queue relinks id
				gen[id]++          // invalidate the queued completion
				metrics.Busy[victim] -= busyAdd[id]
				if rs != nil && rs.brk != nil && id < n && rs.probe[id] {
					// A half-open probe racing the drain: the attempt hands
					// off without an outcome, so refund the probe slot and
					// wake parked work — the slot is free again.
					rs.brk.AbortProbe(victim)
					rs.probe[id] = false
					events.Push(now, faultEvent{kind: evBreaker, server: victim})
				}
				if hd != nil {
					if id >= n {
						// A drained speculative copy is cancelled, not handed
						// off — the primary (wherever it is) carries the task.
						rid := id - n
						hd.copyLive[rid] = false
						metrics.CancelledWork += busyAdd[id]
						if !hd.done[rid] {
							metrics.HedgesCancelled++
							if hd.ho != nil {
								hd.ho.OnHedgeCancel(rid, victim, now, false)
							}
							copyGone(rid, now)
						}
						id = nxt
						continue
					}
					if hd.done[id] {
						// A losing primary in the drained queue: reclaim it.
						metrics.CancelledWork += busyAdd[id]
						id = nxt
						continue
					}
					hd.priIn[id] = false
				}
				metrics.Handoffs++
				if el.mo != nil {
					el.mo.OnHandoff(id, victim, now)
				}
				if err := dispatch(id, now); err != nil {
					return err
				}
				id = nxt
			}
		}
		return nil
	}

	// applyScale replays one scale decision (scripted or autoscaled).
	applyScale := func(d int, now core.Time) error {
		if d > 0 {
			scaleUp(d, now)
			return nil
		}
		if d < 0 {
			return scaleDown(-d, now)
		}
		return nil
	}

	// elArrive evaluates the autoscaler at an arrival: feed the guard (unless
	// the overload config's arrival path already does) and apply its decision.
	elArrive := func(task core.Task) error {
		if el.ownGuard {
			el.guard.Observe(task.Release, task.Key)
		}
		return applyScale(el.ctrl.Decide(task.Release, el.members, el.heating, el.minM, el.maxM), task.Release)
	}

	// trim sheds queued work from server j at instant now: victims are
	// ranked by the shed policy and dropped until the backlog is at most the
	// target, then the surviving suffix is re-timed in place. The running
	// head (curStart ≤ now) is never shed.
	trim := func(j int, now core.Time) {
		sh := ov.cfg.Shedder
		run := -1 // running head, exempt from shedding
		h := fq.head[j]
		if h >= 0 && curStart[h] <= now {
			run = h
			h = fq.next[h]
		}
		if h < 0 {
			return
		}
		backlog := st.Completion[j] - now
		target := sh.EffectiveTarget()
		if backlog <= target {
			return
		}
		cands := ov.cands[:0]
		pos := 0
		for id := h; id >= 0; id = fq.next[id] {
			rid := id
			if hd != nil && rid >= n {
				rid -= n // rank a speculative copy by its task's release/proc
			}
			cands = append(cands, overload.Candidate{
				ID: id, Release: inst.Tasks[rid].Release, Proc: inst.Tasks[rid].Proc, Pos: pos,
			})
			pos++
		}
		ov.cands = cands
		sh.Rank(now, cands)
		dropped := 0
		for _, c := range cands {
			if backlog <= target {
				break
			}
			backlog -= busyAdd[c.ID]
			gen[c.ID]++ // invalidate the queued completion
			st.QueueLen[j]--
			metrics.Busy[j] -= busyAdd[c.ID]
			if hd != nil && c.ID >= n {
				// Trimming a speculative copy cancels just the copy; the task
				// keeps its primary attempt and no shed disposition is taken.
				rid := c.ID - n
				hd.copyLive[rid] = false
				metrics.CancelledWork += busyAdd[c.ID]
				if !hd.done[rid] {
					metrics.HedgesCancelled++
					if hd.ho != nil {
						hd.ho.OnHedgeCancel(rid, j, now, false)
					}
					copyGone(rid, now)
				}
				dropped++
				continue
			}
			if rs != nil && rs.brk != nil && rs.probe[c.ID] {
				// A queued probe trimmed by the shedder: no outcome, refund
				// and wake parked work — the slot is free again.
				rs.brk.AbortProbe(j)
				rs.probe[c.ID] = false
				events.Push(now, faultEvent{kind: evBreaker, server: j})
			}
			shed(c.ID, j, now, ov.shedReason)
			if hd != nil {
				hd.priIn[c.ID] = false
				if hd.copyLive[c.ID] {
					// Kill the orphaned copy after the queue surgery below —
					// cancelAttempt re-times a queue, and this one is mid-trim.
					hd.kills = append(hd.kills, c.ID)
				}
			}
			dropped++
		}
		if dropped == 0 {
			return
		}
		// Unlink the shed tasks in place (preserving FIFO order of survivors).
		prev := run
		for id := h; id >= 0; {
			nxt := fq.next[id]
			gone := false
			if hd != nil && id >= n {
				gone = !hd.copyLive[id-n]
			} else {
				gone = metrics.Shed[id]
			}
			if gone {
				if prev < 0 {
					fq.head[j] = nxt
				} else {
					fq.next[prev] = nxt
				}
			} else {
				prev = id
			}
			id = nxt
		}
		fq.tail[j] = prev
		// Re-time the unstarted suffix back to back (the shared re-arm rule,
		// also used by the hedge layer's cancellations).
		a.retime(inst, slow, j, now)
		if hd != nil && len(hd.kills) > 0 {
			for _, id := range hd.kills {
				killCopy(id, now)
			}
			hd.kills = hd.kills[:0]
		}
	}

	// arrive runs the per-arrival overload controls, in order: offered-load
	// tracking (brownout edge detection), watermark shedding (so admission
	// sees trimmed queues), then admission. It reports whether the task was
	// rejected.
	arrive := func(id int, task core.Task) bool {
		if g := ov.cfg.Guard; g != nil {
			g.Observe(task.Release, task.Key)
			if b := g.Brownout(); b != ov.brown {
				ov.brown = b
				if b {
					metrics.Brownouts++
				}
				if ov.op != nil {
					ov.op.OnBrownout(task.Release, b)
				}
			}
		}
		if sh := ov.cfg.Shedder; sh.Enabled() {
			for j := 0; j < m; j++ {
				h := fq.head[j]
				if h < 0 {
					continue
				}
				if hd != nil && h >= n {
					h -= n // the waiting head may be a speculative copy
				}
				if task.Release-inst.Tasks[h].Release > sh.Watermark {
					trim(j, task.Release)
				}
			}
		}
		if ap := ov.cfg.Admission; ap != nil {
			ov.view.Now = task.Release
			if ok, reason := ap.Admit(&ov.view, task); !ok {
				reject(id, task.Release, reason)
				return true
			}
		}
		return false
	}

	next := 0 // next arrival index
	for next < n || events.Len() > 0 {
		if events.Len() > 0 {
			when, _ := events.Peek()
			if next >= n || when <= inst.Tasks[next].Release {
				st.Now = when
				drain(when)
				if rs != nil && events.Len() > 0 {
					// The drain yielded to an earlier breaker event it
					// armed; restart the loop so that event pops first,
					// in time order.
					if w2, _ := events.Peek(); w2 < when {
						continue
					}
				}
				when, ev := events.Pop()
				st.Now = when
				switch ev.kind {
				case evDown:
					fail(ev.server, when)
				case evUp:
					if err := restore(ev.server, when); err != nil {
						return nil, nil, err
					}
				case evRetry:
					if err := dispatch(ev.task, when); err != nil {
						return nil, nil, err
					}
				case evScale:
					if err := applyScale(ev.task, when); err != nil {
						return nil, nil, err
					}
				case evJoin:
					if err := join(ev.server, when); err != nil {
						return nil, nil, err
					}
				case evHedge:
					if err := hedgeIssue(ev.task, when); err != nil {
						return nil, nil, err
					}
				case evTied:
					tiedResolve(ev.task, when)
				case evBreaker:
					if rs != nil && rs.brk != nil {
						// Cooldown expiry: the timed open → half-open
						// transition fires here (and only here, so the state
						// stream is a pure function of the event sequence). A
						// close pushes a same-instant event through this case
						// too; either way newly admissible capacity exists, so
						// wake parked work. Stale events (the breaker
						// re-opened meanwhile) tick to a no-op.
						if rs.brk.Tick(ev.server, when) {
							rs.halfOpened(ev.server, when)
						}
						if err := wakeAll(when); err != nil {
							return nil, nil, err
						}
					}
				}
				continue
			}
		}
		task := inst.Tasks[next]
		st.Now = task.Release
		drain(st.Now)
		if rs != nil && events.Len() > 0 {
			// The drain yielded to a breaker event due at or before this
			// arrival; restart the loop so the event branch takes it first.
			if te, _ := events.Peek(); te <= task.Release {
				continue
			}
		}
		if probe != nil {
			probe.OnArrival(next, task.Release)
		}
		if el != nil && el.ctrl != nil {
			if err := elArrive(task); err != nil {
				return nil, nil, err
			}
		}
		if ov != nil && arrive(next, task) {
			next++
			continue
		}
		if err := dispatch(next, task.Release); err != nil {
			return nil, nil, err
		}
		next++
	}
	a.parked = parked[:0] // keep a re-grown backing for the next run

	if rs != nil && rs.brk != nil {
		// Completions in the final drain can still move breakers — a close
		// wakes parked work (whose fresh completions extend the run), an
		// open arms a cooldown that must fire in time order — so the drain
		// re-enters event processing until both queues are dry. Only
		// breaker, retry, and hedge timer events can appear here: the
		// fault plan and the membership script were consumed by the main
		// loop. The makespan is derived afterwards, from what actually
		// completed.
		for {
			drain(core.Time(math.Inf(1)))
			if events.Len() == 0 {
				break
			}
			when, ev := events.Pop()
			st.Now = when
			switch ev.kind {
			case evRetry:
				if err := dispatch(ev.task, when); err != nil {
					return nil, nil, err
				}
			case evHedge:
				if err := hedgeIssue(ev.task, when); err != nil {
					return nil, nil, err
				}
			case evTied:
				tiedResolve(ev.task, when)
			case evBreaker:
				if rs.brk.Tick(ev.server, when) {
					rs.halfOpened(ev.server, when)
				}
				if err := wakeAll(when); err != nil {
					return nil, nil, err
				}
			}
		}
		if hd != nil {
			metrics.Makespan = hd.maxEnd
		} else {
			for id := 0; id < n; id++ {
				if metrics.Dropped[id] {
					continue
				}
				if ov != nil && (metrics.Rejected[id] || metrics.Shed[id]) {
					continue
				}
				if curEnd[id] > metrics.Makespan {
					metrics.Makespan = curEnd[id]
				}
			}
		}
	} else if hd != nil {
		// Under hedging a task's curEnd may belong to a losing attempt, so
		// the makespan is the latest *effective* completion, tracked by
		// drain; draining to +Inf also settles losing attempts that ran to
		// completion after the last effective one.
		drain(core.Time(math.Inf(1)))
		metrics.Makespan = hd.maxEnd
	} else {
		for id := 0; id < n; id++ {
			if metrics.Dropped[id] {
				continue
			}
			if ov != nil && (metrics.Rejected[id] || metrics.Shed[id]) {
				continue
			}
			if curEnd[id] > metrics.Makespan {
				metrics.Makespan = curEnd[id]
			}
		}
		drain(metrics.Makespan)
	}
	metrics.Horizon = metrics.Makespan
	if end := plan.End(); end > metrics.Horizon {
		metrics.Horizon = end
	}
	a.downtime = plan.DowntimeInto(a.downtime, metrics.Horizon)
	metrics.Downtime = a.downtime
	if el != nil {
		metrics.MachineHours = el.ms.MachineHours(metrics.Horizon)
	}
	if rs != nil && rs.brk != nil {
		// Assigned at the end: the opens above may have regrown the backing.
		metrics.BreakerSpans = rs.spans
	}
	if probe != nil {
		probe.OnDone(metrics.Makespan)
	}
	return sched, metrics, nil
}
