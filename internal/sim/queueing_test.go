package sim

import (
	"math"
	"math/rand"
	"testing"

	"flowsched/internal/stats"
	"flowsched/internal/workload"
)

// These tests validate the discrete-event simulator against closed-form
// queueing theory: with Poisson arrivals, exponential service and the EFT
// router on unrestricted tasks (≡ central-queue FCFS by Proposition 1), the
// cluster is an M/M/m queue.

// erlangC returns the M/M/m probability of waiting (Erlang C formula) for
// arrival rate lambda, service rate mu and m servers.
func erlangC(m int, lambda, mu float64) float64 {
	a := lambda / mu // offered load
	rho := a / float64(m)
	if rho >= 1 {
		return 1
	}
	// Σ_{k<m} a^k/k! and a^m/m!.
	sum := 0.0
	term := 1.0
	for k := 0; k < m; k++ {
		if k > 0 {
			term *= a / float64(k)
		}
		sum += term
	}
	top := term * a / float64(m) // a^m/m!
	top = top / (1 - rho)
	return top / (sum + top)
}

func runMMm(t *testing.T, m int, lambda float64, n int, seed int64) *Metrics {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	inst, err := workload.Generate(workload.Config{
		M: m, N: n, Rate: lambda,
		Proc: 1, Dist: workload.ProcExponential,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Strip the processing sets ({primary} singletons from the default
	// no-replication strategy) to get the unrestricted M/M/m system.
	for i := range inst.Tasks {
		inst.Tasks[i].Set = nil
	}
	_, metrics, err := Run(inst, EFTRouter{})
	if err != nil {
		t.Fatal(err)
	}
	return metrics
}

func TestMM1MeanSojourn(t *testing.T) {
	// M/M/1 with λ=0.7, μ=1: W = 1/(μ−λ) = 10/3.
	const lambda, mu = 0.7, 1.0
	metrics := runMMm(t, 1, lambda, 400000, 1)
	want := 1 / (mu - lambda)
	got := float64(metrics.MeanFlow())
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("M/M/1 mean sojourn %v, theory %v", got, want)
	}
}

func TestMMmMeanSojourn(t *testing.T) {
	// M/M/3 with λ=2.1, μ=1 (ρ=0.7): W = C(m,a)/(mμ−λ) + 1/μ.
	const lambda, mu = 2.1, 1.0
	const m = 3
	metrics := runMMm(t, m, lambda, 400000, 2)
	want := erlangC(m, lambda, mu)/(float64(m)*mu-lambda) + 1/mu
	got := float64(metrics.MeanFlow())
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("M/M/%d mean sojourn %v, theory %v", m, got, want)
	}
}

func TestMM1SojournDistributionIsExponential(t *testing.T) {
	// In M/M/1-FCFS the sojourn time is exponential with rate μ−λ, so the
	// q-quantile is −ln(1−q)/(μ−λ).
	const lambda, mu = 0.5, 1.0
	metrics := runMMm(t, 1, lambda, 400000, 3)
	rate := mu - lambda
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := -math.Log(1-q) / rate
		got := float64(metrics.FlowQuantile(q))
		if math.Abs(got-want)/want > 0.08 {
			t.Fatalf("M/M/1 p%v sojourn %v, theory %v", q*100, got, want)
		}
	}
}

func TestUtilizationMatchesLoad(t *testing.T) {
	// Long-run utilization approaches ρ = λ/(mμ).
	const lambda = 2.1
	const m = 3
	metrics := runMMm(t, m, lambda, 200000, 4)
	got := metrics.Utilization()
	if math.Abs(got-0.7) > 0.03 {
		t.Fatalf("utilization %v, want ≈ 0.7", got)
	}
}

func TestSteadyState(t *testing.T) {
	// The paper's protocol: 10 000 unit tasks are enough to reach steady
	// state. Check that the second half of a run behaves like the second
	// half of a much longer run (medians of per-run steady-state Fmax agree
	// within noise).
	const m, k, load = 15, 3, 0.8
	measure := func(n int, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		inst, err := workload.Generate(workload.Config{
			M: m, N: n, Rate: load * m,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := range inst.Tasks {
			inst.Tasks[i].Set = nil
		}
		_, metrics, err := Run(inst, EFTRouter{})
		if err != nil {
			t.Fatal(err)
		}
		return float64(metrics.SteadyStateMaxFlow(0.5))
	}
	var short, long []float64
	for rep := int64(0); rep < 8; rep++ {
		short = append(short, measure(10000, 10+rep))
		long = append(long, measure(40000, 100+rep))
	}
	ms, ml := stats.Median(short), stats.Median(long)
	// Fmax grows slowly (extreme statistic) with run length; steady state
	// means the medians stay within a factor ~2.
	if ml > 2.5*ms || ms > 2.5*ml {
		t.Fatalf("steady-state medians diverge: 10k → %v, 40k → %v", ms, ml)
	}
}

func TestStretchMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst, err := workload.Generate(workload.Config{
		M: 4, N: 2000, Rate: 2.8, Proc: 1, Dist: workload.ProcUniform,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inst.Tasks {
		inst.Tasks[i].Set = nil
	}
	_, metrics, err := Run(inst, EFTRouter{})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.MaxStretch() < 1 || metrics.MeanStretch() < 1 {
		t.Fatalf("stretch must be at least 1: max %v mean %v",
			metrics.MaxStretch(), metrics.MeanStretch())
	}
	if metrics.MeanStretch() > metrics.MaxStretch() {
		t.Fatalf("mean stretch above max")
	}
}

func TestMD1MeanSojourn(t *testing.T) {
	// M/D/1 (deterministic unit service, the paper's task model) with
	// λ=0.7: Pollaczek–Khinchine gives W = 1 + ρ/(2(1−ρ)).
	const lambda = 0.7
	rng := rand.New(rand.NewSource(11))
	inst, err := workload.Generate(workload.Config{M: 1, N: 400000, Rate: lambda}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inst.Tasks {
		inst.Tasks[i].Set = nil
	}
	_, metrics, err := Run(inst, EFTRouter{})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + lambda/(2*(1-lambda))
	got := float64(metrics.MeanFlow())
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("M/D/1 mean sojourn %v, theory %v", got, want)
	}
}
