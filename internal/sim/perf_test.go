package sim

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"flowsched/internal/core"
	"flowsched/internal/sched"
)

// --- Reference (pre-optimization) routers ---------------------------------
//
// These are the seed implementations the allocation-free rewrites replaced:
// closure-based scans building a fresh candidate slice per Pick. They are
// the oracles for the equivalence tests below — the optimized routers must
// make byte-identical decisions.

type refEFTRouter struct{ Tie sched.TieBreak }

func (refEFTRouter) Name() string { return "refEFT" }

func (r refEFTRouter) Pick(st *State, t core.Task) int {
	tie := r.Tie
	if tie == nil {
		tie = sched.MinTie{}
	}
	var candidates []int
	tmin := core.Time(0)
	first := true
	forEach := func(f func(j int)) {
		if t.Set == nil {
			for j := 0; j < st.M; j++ {
				f(j)
			}
		} else {
			for _, j := range t.Set {
				f(j)
			}
		}
	}
	forEach(func(j int) {
		if first || st.Completion[j] < tmin {
			tmin = st.Completion[j]
			first = false
		}
	})
	if t.Release > tmin {
		tmin = t.Release
	}
	forEach(func(j int) {
		if st.Completion[j] <= tmin {
			candidates = append(candidates, j)
		}
	})
	if len(candidates) == 0 {
		return -1
	}
	return tie.Pick(candidates)
}

type refJSQRouter struct{}

func (refJSQRouter) Name() string { return "refJSQ" }

func (refJSQRouter) Pick(st *State, t core.Task) int {
	best := -1
	consider := func(j int) {
		if best == -1 || st.QueueLen[j] < st.QueueLen[best] {
			best = j
		}
	}
	if t.Set == nil {
		for j := 0; j < st.M; j++ {
			consider(j)
		}
	} else {
		for _, j := range t.Set {
			consider(j)
		}
	}
	return best
}

func sameSchedule(t *testing.T, label string, a, b *core.Schedule) {
	t.Helper()
	if !reflect.DeepEqual(a.Machine, b.Machine) {
		t.Fatalf("%s: machine assignments diverge", label)
	}
	if !reflect.DeepEqual(a.Start, b.Start) {
		t.Fatalf("%s: start times diverge", label)
	}
}

func sameMetrics(t *testing.T, label string, a, b *Metrics) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: metrics diverge:\n%+v\n%+v", label, a, b)
	}
}

// TestRouterEquivalence pins the scratch-buffer routers to the seed
// implementations on random restricted instances.
func TestRouterEquivalence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(1+rng.Intn(8), 200, rng)
		sOpt, mOpt, err := Run(inst, EFTRouter{})
		if err != nil {
			t.Fatal(err)
		}
		sRef, mRef, err := Run(inst, refEFTRouter{})
		if err != nil {
			t.Fatal(err)
		}
		sameSchedule(t, "EFT", sOpt, sRef)
		sameMetrics(t, "EFT", mOpt, mRef)

		sOpt, mOpt, err = Run(inst, JSQRouter{})
		if err != nil {
			t.Fatal(err)
		}
		sRef, mRef, err = Run(inst, refJSQRouter{})
		if err != nil {
			t.Fatal(err)
		}
		sameSchedule(t, "JSQ", sOpt, sRef)
		sameMetrics(t, "JSQ", mOpt, mRef)
	}
}

// TestEFTMinFastPathEquivalence pins the O(log m) EFTMinPicker fast path
// (full-set instances under EFT-Min) to the generic completion-scan loop,
// which refEFTRouter forces Run through.
func TestEFTMinFastPathEquivalence(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(16)
		n := 100 + rng.Intn(400)
		tasks := make([]core.Task, n)
		tm := 0.0
		for i := range tasks {
			tm += rng.ExpFloat64() / float64(m)
			if rng.Intn(30) == 0 {
				tm += 20 // idle gaps: exercise the all-idle dispatch case
			}
			tasks[i] = core.Task{Release: tm, Proc: 0.1 + rng.Float64()*2}
		}
		inst := core.NewInstance(m, tasks)
		sFast, mFast, err := Run(inst, EFTRouter{})
		if err != nil {
			t.Fatal(err)
		}
		sRef, mRef, err := Run(inst, refEFTRouter{})
		if err != nil {
			t.Fatal(err)
		}
		sameSchedule(t, "fast path", sFast, sRef)
		sameMetrics(t, "fast path", mFast, mRef)
	}
}

// TestFastPathGate: the EFTMinPicker shortcut must engage exactly for
// EFT-Min (explicit or default tie) on full-set instances.
func TestFastPathGate(t *testing.T) {
	if !isEFTMin(EFTRouter{}) || !isEFTMin(EFTRouter{Tie: sched.MinTie{}}) {
		t.Error("EFT with nil/Min tie should take the fast path")
	}
	if isEFTMin(EFTRouter{Tie: sched.MaxTie{}}) || isEFTMin(JSQRouter{}) {
		t.Error("non-Min ties and other routers must not take the fast path")
	}
	full := core.NewInstance(2, []core.Task{{Release: 0, Proc: 1}})
	if !unrestricted(full) {
		t.Error("nil-set instance should count as unrestricted")
	}
	restricted := core.NewInstance(2, []core.Task{{Release: 0, Proc: 1, Set: core.Interval(0, 1)}})
	if unrestricted(restricted) {
		t.Error("a full Interval set is still a restriction marker: the generic path must validate eligibility")
	}
}

// FuzzRouterEquivalence drives the optimized and reference routers over
// fuzz-shaped instances and requires byte-identical schedules.
func FuzzRouterEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(50))
	f.Add(int64(7), uint8(1), uint8(10))
	f.Add(int64(42), uint8(12), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, m8, n8 uint8) {
		m := 1 + int(m8)%16
		n := 1 + int(n8)
		rng := rand.New(rand.NewSource(seed))
		inst := randomInstance(m, n, rng)
		for _, pair := range []struct {
			label    string
			opt, ref Router
		}{
			{"EFT", EFTRouter{}, refEFTRouter{}},
			{"EFT-Max", EFTRouter{Tie: sched.MaxTie{}}, refEFTRouter{Tie: sched.MaxTie{}}},
			{"JSQ", JSQRouter{}, refJSQRouter{}},
		} {
			sOpt, mOpt, err := Run(inst, pair.opt)
			if err != nil {
				t.Fatal(err)
			}
			sRef, mRef, err := Run(inst, pair.ref)
			if err != nil {
				t.Fatal(err)
			}
			sameSchedule(t, pair.label, sOpt, sRef)
			sameMetrics(t, pair.label, mOpt, mRef)
		}
	})
}

// --- Allocation guards ----------------------------------------------------

// TestRouterPickAllocs pins the hot-path contract from DESIGN.md §7:
// router Pick allocates nothing once the State's scratch buffer is warm.
func TestRouterPickAllocs(t *testing.T) {
	const m = 15
	st := &State{M: m, Completion: make([]core.Time, m), QueueLen: make([]int, m)}
	restricted := core.Task{Release: 1, Proc: 1, Set: core.Interval(2, 6)}
	full := core.Task{Release: 1, Proc: 1}
	cases := []struct {
		name   string
		router Router
		task   core.Task
	}{
		{"EFTRouter.Pick/set", EFTRouter{}, restricted},
		{"EFTRouter.Pick/full", EFTRouter{}, full},
		{"EFTRouter.Pick/maxTie", EFTRouter{Tie: sched.MaxTie{}}, restricted},
		{"JSQRouter.Pick/set", JSQRouter{}, restricted},
		{"JSQRouter.Pick/full", JSQRouter{}, full},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.router.Pick(st, tc.task) // warm the scratch buffer
			avg := testing.AllocsPerRun(200, func() {
				j := tc.router.Pick(st, tc.task)
				st.Completion[j] += 0.1
				st.QueueLen[j]++
			})
			if avg != 0 {
				t.Errorf("%s allocates %v per call, want 0", tc.name, avg)
			}
		})
	}
}

// TestRunAllocsConstant asserts the per-task dispatch loop of Run is
// allocation-free: total allocations per Run must not scale with n (they
// would exceed n if any per-task path allocated).
func TestRunAllocsConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := randomInstance(8, 2000, rng)
	for _, router := range []Router{EFTRouter{}, JSQRouter{}} {
		avg := testing.AllocsPerRun(5, func() {
			if _, _, err := Run(inst, router); err != nil {
				t.Fatal(err)
			}
		})
		// Setup allocations (schedule, metrics, state, reserved queue) are
		// O(1) in count; 64 is far below one alloc per task.
		if avg > 64 {
			t.Errorf("%s: %v allocs per Run of %d tasks: per-task dispatch allocates", router.Name(), avg, inst.N())
		}
	}
}

// --- Bugfix satellites ----------------------------------------------------

// TestEmptySetError: a non-nil empty Set means "no eligible server". Every
// router's Pick reports it as -1 instead of panicking (the RandomRouter
// used to crash in rand.Intn(0), EFT in the tie-break), and Run — whose
// Validate normally screens such instances out — turns a -1 from a task
// that really has no eligible server into a clear error rather than
// blaming the router for an invalid pick.
func TestEmptySetError(t *testing.T) {
	st := &State{M: 2, Completion: make([]core.Time, 2), QueueLen: make([]int, 2)}
	empty := core.Task{Release: 0, Proc: 1, Set: core.ProcSet{}}
	for _, router := range []Router{EFTRouter{}, JSQRouter{}, &RandomRouter{}, &NoisyEFTRouter{}, &RoundRobinRouter{}} {
		if r, ok := router.(Resettable); ok {
			r.Reset()
		}
		if j := router.Pick(st, empty); j != -1 {
			t.Errorf("%s.Pick on empty set = %d, want -1", router.Name(), j)
		}
	}
	// Run screens empty-set tasks out at validation with a clear error.
	inst := core.NewInstance(2, []core.Task{
		{Release: 0, Proc: 1},
		{Release: 1, Proc: 1, Set: core.ProcSet{}},
	})
	if _, _, err := Run(inst, EFTRouter{}); err == nil || !containsStr(err.Error(), "empty processing set") {
		t.Errorf("Run error = %v, should reject the empty processing set", err)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestRandomRouterReplay: the zero value lazily seeds itself, Reset rewinds
// the stream, and a reused router replays identical schedules run to run.
func TestRandomRouterReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := randomInstance(4, 80, rng)

	r := &RandomRouter{} // zero value: must not panic (the seed bug)
	s1, _, err := Run(inst, r)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := Run(inst, r)
	if err != nil {
		t.Fatal(err)
	}
	sameSchedule(t, "reused zero-value RandomRouter", s1, s2)

	// Distinct seeds give distinct streams; same seed on a fresh value
	// replays the first run.
	s3, _, err := Run(inst, &RandomRouter{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(s1.Machine, s3.Machine) {
		t.Fatal("seed 0 and seed 99 produced identical schedules: Seed is ignored")
	}
	s4, _, err := Run(inst, &RandomRouter{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	sameSchedule(t, "same-seed fresh RandomRouter", s3, s4)

	// Pick without a prior Reset lazily seeds (direct router use, no Run).
	lazy := &RandomRouter{Seed: 7}
	st := &State{M: 3, Completion: make([]core.Time, 3), QueueLen: make([]int, 3)}
	if j := lazy.Pick(st, core.Task{}); j < 0 || j >= 3 {
		t.Fatalf("lazy Pick = %d", j)
	}

	// Empty sets are reported as no-pick, not a panic.
	if j := lazy.Pick(st, core.Task{Set: core.ProcSet{}}); j != -1 {
		t.Fatalf("empty set Pick = %d, want -1", j)
	}
}

// TestMetricsEmptyRun: aggregates of an empty run are zeros (not ±Inf, the
// stats.Min/Max regression) and the metrics marshal cleanly.
func TestMetricsEmptyRun(t *testing.T) {
	m := &Metrics{}
	if m.MaxFlow() != 0 || m.MaxStretch() != 0 || m.SteadyStateMaxFlow(0.5) != 0 {
		t.Errorf("empty-run maxima = %v %v %v, want zeros",
			m.MaxFlow(), m.MaxStretch(), m.SteadyStateMaxFlow(0.5))
	}
	if m.MeanFlow() != 0 || m.Utilization() != 0 {
		t.Errorf("empty-run means = %v %v, want zeros", m.MeanFlow(), m.Utilization())
	}
	data, err := json.Marshal(struct {
		MaxFlow, MaxStretch core.Time
	}{m.MaxFlow(), m.MaxStretch()})
	if err != nil {
		t.Fatalf("empty-run metrics not marshalable: %v", err)
	}
	var round struct{ MaxFlow, MaxStretch float64 }
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if math.IsInf(round.MaxFlow, 0) || math.IsInf(round.MaxStretch, 0) {
		t.Errorf("empty-run metrics round-tripped to ±Inf")
	}
}
