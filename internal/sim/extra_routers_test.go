package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flowsched/internal/core"
	"flowsched/internal/sched"
)

func TestPowerOfTwoRespectsSets(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := genInstance(seed, 8, 150, 3)
		s, _, err := Run(inst, PowerOfTwoRouter{Rng: rng})
		return err == nil && s.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerOfTwoBeatsRandom(t *testing.T) {
	// The classic result: two choices beat one by a lot under load.
	inst := genInstance(21, 12, 6000, 3)
	_, po2, err := Run(inst, PowerOfTwoRouter{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	_, rnd, err := Run(inst, &RandomRouter{Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if po2.MeanFlow() > rnd.MeanFlow() {
		t.Fatalf("Po2 mean flow %v worse than random %v", po2.MeanFlow(), rnd.MeanFlow())
	}
}

func TestRoundRobinCyclesAndRespectsSets(t *testing.T) {
	inst := core.NewInstance(3, []core.Task{
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
	})
	s, _, err := Run(inst, &RoundRobinRouter{})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0}
	for i, w := range want {
		if s.Machine[i] != w {
			t.Fatalf("task %d on M%d, want M%d", i, s.Machine[i]+1, w+1)
		}
	}
	restricted := genInstance(22, 6, 100, 2)
	s2, _, err := Run(restricted, &RoundRobinRouter{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNoisyEFTZeroNoiseMatchesEFT(t *testing.T) {
	prop := func(seed int64) bool {
		inst := genInstance(seed, 7, 200, 3)
		noisy := &NoisyEFTRouter{Tie: sched.MinTie{}, RelErr: 0, Rng: rand.New(rand.NewSource(1))}
		s1, _, err := Run(inst, noisy)
		if err != nil {
			return false
		}
		s2, _, err := Run(inst, EFTRouter{Tie: sched.MinTie{}})
		if err != nil {
			return false
		}
		for i := range inst.Tasks {
			if s1.Machine[i] != s2.Machine[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNoisyEFTDegradesGracefully(t *testing.T) {
	// Noise should hurt, but moderate noise must not collapse to
	// random-level performance.
	inst := genInstance(23, 12, 8000, 3)
	_, exact, err := Run(inst, EFTRouter{})
	if err != nil {
		t.Fatal(err)
	}
	_, noisy, err := Run(inst, &NoisyEFTRouter{RelErr: 0.5, Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	_, rnd, err := Run(inst, &RandomRouter{Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.MeanFlow() < exact.MeanFlow()-1e-9 {
		t.Logf("noisy unexpectedly beat exact (possible on one instance): %v vs %v",
			noisy.MeanFlow(), exact.MeanFlow())
	}
	if noisy.MeanFlow() > rnd.MeanFlow() {
		t.Fatalf("50%% noise should stay far better than random: noisy %v vs random %v",
			noisy.MeanFlow(), rnd.MeanFlow())
	}
}

func TestNoisyEFTValidSchedules(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inst := genInstance(seed, 6, 150, 3)
		s, _, err := Run(inst, &NoisyEFTRouter{RelErr: rng.Float64(), Rng: rng})
		return err == nil && s.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRouterNames(t *testing.T) {
	if (PowerOfTwoRouter{}).Name() != "Po2" ||
		(&RoundRobinRouter{}).Name() != "RR" ||
		(&NoisyEFTRouter{}).Name() != "EFT-noisy" ||
		(EFTRouter{}).Name() != "EFT-Min" ||
		(EFTRouter{Tie: sched.MaxTie{}}).Name() != "EFT-Max" ||
		(JSQRouter{}).Name() != "JSQ" ||
		(&RandomRouter{}).Name() != "Random" {
		t.Fatalf("router names wrong")
	}
}

func TestUnrestrictedRouterPaths(t *testing.T) {
	// Exercise the nil-set branches of every router.
	tasks := make([]core.Task, 50)
	tm := 0.0
	rng := rand.New(rand.NewSource(33))
	for i := range tasks {
		tm += rng.ExpFloat64()
		tasks[i] = core.Task{Release: tm, Proc: 1}
	}
	inst := core.NewInstance(4, tasks)
	for _, r := range []Router{
		PowerOfTwoRouter{Rng: rand.New(rand.NewSource(1))},
		&RoundRobinRouter{},
		&NoisyEFTRouter{RelErr: 0.2, Rng: rand.New(rand.NewSource(2))},
		&RandomRouter{Rng: rand.New(rand.NewSource(3))},
		JSQRouter{},
	} {
		s, _, err := Run(inst, r)
		if err != nil || s.Validate() != nil {
			t.Fatalf("%s on unrestricted: %v", r.Name(), err)
		}
	}
}

func TestSteadyStateMaxFlowEdges(t *testing.T) {
	inst := core.NewInstance(1, []core.Task{
		{Release: 0, Proc: 1},
		{Release: 0, Proc: 1},
	})
	_, m, err := Run(inst, EFTRouter{})
	if err != nil {
		t.Fatal(err)
	}
	if m.SteadyStateMaxFlow(-1) != m.MaxFlow() {
		t.Fatalf("negative skip should clamp to 0")
	}
	if m.SteadyStateMaxFlow(1.5) != 0 {
		t.Fatalf("skip ≥ 1 should return 0")
	}
	if m.SteadyStateMaxFlow(0.5) != 2 {
		t.Fatalf("second half max = %v", m.SteadyStateMaxFlow(0.5))
	}
}
