package sim

import (
	"math/rand"

	"flowsched/internal/core"
	"flowsched/internal/sched"
)

// EFTRouter is the clairvoyant Earliest-Finish-Time router: it sends each
// request to the eligible server finishing it earliest, breaking ties with
// the configured policy (nil = Min). It is the simulator-side twin of
// sched.EFT (tests assert the schedules coincide).
type EFTRouter struct {
	Tie sched.TieBreak
}

// Name implements Router.
func (r EFTRouter) Name() string {
	if r.Tie == nil {
		return "EFT-Min"
	}
	return "EFT-" + r.Tie.Name()
}

// Pick implements Router.
func (r EFTRouter) Pick(st *State, t core.Task) int {
	tie := r.Tie
	if tie == nil {
		tie = sched.MinTie{}
	}
	var candidates []int
	tmin := core.Time(0)
	first := true
	forEach := func(f func(j int)) {
		if t.Set == nil {
			for j := 0; j < st.M; j++ {
				f(j)
			}
		} else {
			for _, j := range t.Set {
				f(j)
			}
		}
	}
	forEach(func(j int) {
		if first || st.Completion[j] < tmin {
			tmin = st.Completion[j]
			first = false
		}
	})
	if t.Release > tmin {
		tmin = t.Release
	}
	forEach(func(j int) {
		if st.Completion[j] <= tmin {
			candidates = append(candidates, j)
		}
	})
	return tie.Pick(candidates)
}

// JSQRouter sends each request to the eligible server with the fewest
// unfinished requests (join shortest queue), ties to the smallest index. It
// is non-clairvoyant: it never reads completion times.
type JSQRouter struct{}

// Name implements Router.
func (JSQRouter) Name() string { return "JSQ" }

// Pick implements Router.
func (JSQRouter) Pick(st *State, t core.Task) int {
	best := -1
	consider := func(j int) {
		if best == -1 || st.QueueLen[j] < st.QueueLen[best] {
			best = j
		}
	}
	if t.Set == nil {
		for j := 0; j < st.M; j++ {
			consider(j)
		}
	} else {
		for _, j := range t.Set {
			consider(j)
		}
	}
	return best
}

// RandomRouter sends each request to a uniformly random eligible server —
// the weakest sensible baseline (what a stateless load balancer does).
type RandomRouter struct{ Rng *rand.Rand }

// Name implements Router.
func (RandomRouter) Name() string { return "Random" }

// Pick implements Router.
func (r RandomRouter) Pick(st *State, t core.Task) int {
	if t.Set == nil {
		return r.Rng.Intn(st.M)
	}
	return t.Set[r.Rng.Intn(len(t.Set))]
}
