package sim

import (
	"math/rand"

	"flowsched/internal/core"
	"flowsched/internal/sched"
)

// EFTRouter is the clairvoyant Earliest-Finish-Time router: it sends each
// request to the eligible server finishing it earliest, breaking ties with
// the configured policy (nil = Min). It is the simulator-side twin of
// sched.EFT (tests assert the schedules coincide).
//
// Pick is allocation-free: the tie set is built in the State's scratch
// buffer (see State.Candidates) and handed to the tie-break, so routing a
// request costs one scan of the eligible set and no garbage. A task with a
// non-nil empty Set has no eligible server; Pick reports that as -1 and Run
// turns it into a "no eligible server" error.
type EFTRouter struct {
	Tie sched.TieBreak
}

// Name implements Router.
func (r EFTRouter) Name() string {
	if r.Tie == nil {
		return "EFT-Min"
	}
	return "EFT-" + r.Tie.Name()
}

// Pick implements Router.
func (r EFTRouter) Pick(st *State, t core.Task) int {
	tie := r.Tie
	if tie == nil {
		tie = sched.MinTie{}
	}
	candidates := eftTieSet(st, t, st.Completion)
	if len(candidates) == 0 {
		return -1
	}
	return tie.Pick(candidates)
}

// eftTieSet builds the EFT tie set U = { j eligible : comp[j] ≤ t'_min },
// t'_min = max(release, min over the eligible set), into the State's scratch
// buffer. It returns an empty slice when the task has a non-nil empty Set.
// The result is valid until the next call that reuses the scratch buffer.
func eftTieSet(st *State, t core.Task, comp []core.Time) []int {
	var tmin core.Time
	if t.Set == nil {
		if st.M == 0 {
			return nil
		}
		tmin = comp[0]
		for _, c := range comp[1:st.M] {
			if c < tmin {
				tmin = c
			}
		}
	} else {
		if len(t.Set) == 0 {
			return nil
		}
		tmin = comp[t.Set[0]]
		for _, j := range t.Set[1:] {
			if c := comp[j]; c < tmin {
				tmin = c
			}
		}
	}
	if t.Release > tmin {
		tmin = t.Release
	}
	candidates := st.Candidates(len(t.Set))
	if t.Set == nil {
		for j := 0; j < st.M; j++ {
			if comp[j] <= tmin {
				candidates = append(candidates, j)
			}
		}
	} else {
		for _, j := range t.Set {
			if comp[j] <= tmin {
				candidates = append(candidates, j)
			}
		}
	}
	st.keepScratch(candidates)
	return candidates
}

// JSQRouter sends each request to the eligible server with the fewest
// unfinished requests (join shortest queue), ties to the smallest index. It
// is non-clairvoyant: it never reads completion times. Pick is
// allocation-free.
type JSQRouter struct{}

// Name implements Router.
func (JSQRouter) Name() string { return "JSQ" }

// Pick implements Router.
func (JSQRouter) Pick(st *State, t core.Task) int {
	if t.Set == nil {
		if st.M == 0 {
			return -1
		}
		best := 0
		for j := 1; j < st.M; j++ {
			if st.QueueLen[j] < st.QueueLen[best] {
				best = j
			}
		}
		return best
	}
	if len(t.Set) == 0 {
		return -1
	}
	best := t.Set[0]
	for _, j := range t.Set[1:] {
		if st.QueueLen[j] < st.QueueLen[best] {
			best = j
		}
	}
	return best
}

// RandomRouter sends each request to a uniformly random eligible server —
// the weakest sensible baseline (what a stateless load balancer does).
//
// The zero value is ready to use: the generator is lazily seeded from Seed.
// Reset (called automatically by Run and RunFaulty) rewinds the stream to
// Seed, so a reused router replays the same decisions on every run, like
// every other router. An explicitly provided Rng takes precedence over Seed;
// such a router keeps consuming its external stream across runs and is not
// replayable (callers own the generator's state).
type RandomRouter struct {
	Seed int64      // seeds the internal stream (used when Rng is nil)
	Rng  *rand.Rand // optional external generator; overrides Seed

	rng *rand.Rand // active generator
}

// Name implements Router.
func (*RandomRouter) Name() string { return "Random" }

// Reset implements Resettable: it rewinds the internal stream to Seed so a
// reused router replays deterministically. With an external Rng the stream
// cannot be rewound; Reset only re-adopts the caller's generator.
func (r *RandomRouter) Reset() {
	if r.Rng != nil {
		r.rng = r.Rng
		return
	}
	r.rng = rand.New(rand.NewSource(r.Seed))
}

// Pick implements Router.
func (r *RandomRouter) Pick(st *State, t core.Task) int {
	if r.rng == nil {
		r.Reset()
	}
	if t.Set == nil {
		if st.M == 0 {
			return -1
		}
		return r.rng.Intn(st.M)
	}
	if len(t.Set) == 0 {
		return -1
	}
	return t.Set[r.rng.Intn(len(t.Set))]
}
